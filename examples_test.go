package certainty_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example binary end to end and checks a
// signature line of its output — the examples double as integration tests.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run subprocesses")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "certain: false"},
		{"./examples/conference", "holds in 3/4 repairs"},
		{"./examples/cyclequeries", "certain: false (Fig. 7 exhibits falsifying repairs)"},
		{"./examples/probabilistic", "Pr(q) by safe plan"},
		{"./examples/rewriting", "C(2) rewriting with x1 free succeeds"},
		{"./examples/datacleaning", "certain   Ada"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
