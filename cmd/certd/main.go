// Command certd serves CERTAINTY(q) over HTTP/JSON. It wraps the governed
// solver stack (internal/solver + internal/govern) in the resilient
// service layer of internal/server: a bounded worker pool with admission
// control and load shedding, operator-clamped per-request deadlines and
// step budgets, per-query-class circuit breakers that degrade persistent
// coNP cutoffs to bounded Monte-Carlo verdicts, and graceful drain on
// SIGINT/SIGTERM.
//
// Endpoints (see API.md for the wire contract):
//
//	POST /v1/solve        decide CERTAINTY(q) for a query + database
//	POST /v1/solve/batch  solve many items in one request (JSON or NDJSON stream)
//	POST /v1/classify     classify a query's complexity (no database)
//	GET  /v1/db           hosted database metadata (requires -data-dir)
//	POST /v1/db/facts     durably insert facts (WAL + fsync, CAS via if_version)
//	DELETE /v1/db/facts   durably delete facts
//	GET  /v1/statsz       serving-layer cache counters (JSON)
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (503 once draining)
//	GET  /metrics         Prometheus text exposition of the whole process
//	GET  /debug/pprof     profiling endpoints (only with -pprof)
//
// The unversioned paths /solve, /solve/batch, and /classify answer with
// 308 Permanent Redirect to their /v1/ successors; GET /statsz still
// serves in place. All legacy responses carry a Deprecation header.
//
// With -fleet, certd runs as a COORDINATOR instead of a worker: it serves
// the same read API but routes every request across the listed worker
// processes with shard-aware placement, hedged requests, replica failover,
// and version fencing (see internal/fleet and the Fleet section of
// ARCHITECTURE.md). A coordinator holds no database and refuses /v1/db
// mutations; point writers at a worker.
//
// Example:
//
//	certd -addr :8377 -workers 8 -max-budget 5000000 -max-timeout 10s
//	curl -s localhost:8377/v1/solve -d '{"query":"R(x | y)","db":"R(a | b)"}'
//	curl -s localhost:8377/v1/solve/batch -d '{"query":"R(x | y)","items":[{"db":"R(a | b)"},{"db":"R(a | b) R(a | c)"}]}'
//	curl -s localhost:8377/metrics | grep certd_solve_total
//
//	certd -addr :8378 -fleet http://127.0.0.1:8377,http://127.0.0.1:8379
//	curl -s localhost:8378/v1/fleet
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strings"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/fleet"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/wal"
)

func main() {
	var (
		addr           = flag.String("addr", ":8377", "listen address")
		workers        = flag.Int("workers", 4, "concurrent solve slots")
		queue          = flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
		maxTimeout     = flag.Duration("max-timeout", 30*time.Second, "hard cap on per-request solve time")
		maxBudget      = flag.Int64("max-budget", 10_000_000, "hard cap on per-request search steps")
		defTimeout     = flag.Duration("default-timeout", 5*time.Second, "solve time applied when the request asks for none")
		defBudget      = flag.Int64("default-budget", 1_000_000, "search steps applied when the request asks for none")
		rejectOverAsk  = flag.Bool("reject-over-ask", false, "reject requests exceeding the caps instead of clamping them")
		breakThresh    = flag.Int("breaker-threshold", 3, "consecutive cutoffs that trip a class breaker (<0 disables)")
		breakCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a recovery probe")
		retryAfter     = flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		degradeSamples = flag.Int("degrade-samples", 0, "cap on Monte-Carlo samples per degraded verdict (0 = solver default)")
		grace          = flag.Duration("grace", 10*time.Second, "shutdown grace period for draining in-flight solves")
		planCache      = flag.Int("plan-cache", 0, "compiled-plan cache capacity (0 = default)")
		verdictCache   = flag.Int("verdict-cache", 0, "verdict cache capacity (0 = default, <0 disables)")
		maxBatch       = flag.Int("max-batch", 0, "maximum items per /v1/solve/batch request (0 = default)")
		pprofOn        = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		dataDir        = flag.String("data-dir", "", "directory for the durable hosted database (enables /v1/db; empty = stateless)")
		fsyncMode      = flag.String("fsync", "batch", "WAL durability: batch (one fsync per group commit), always, or never")
		segmentBytes   = flag.Int64("segment-bytes", 0, "WAL segment rotation size in bytes (0 = default 64 MiB)")
		snapshotEvery  = flag.Int("snapshot-every", 0, "checkpoint after this many WAL records (0 = default, <0 disables)")
		seedDB         = flag.String("db", "", "db-text file seeding a fresh -data-dir (ignored once the store has state)")
		fleetList      = flag.String("fleet", "", "comma-separated worker base URLs; run as a fleet coordinator instead of a worker")
		hedgeQuantile  = flag.Float64("hedge-quantile", 0.95, "latency quantile the hedging delay tracks (coordinator)")
		hedgeMin       = flag.Duration("hedge-min-delay", 5*time.Millisecond, "floor (and cold-start value) of the hedging delay (coordinator)")
		hedgeMax       = flag.Duration("hedge-max-delay", 2*time.Second, "ceiling of the hedging delay (coordinator)")
		noHedge        = flag.Bool("no-hedge", false, "disable hedged requests; failover still applies (coordinator)")
		probeEvery     = flag.Duration("probe-interval", time.Second, "period of the worker /readyz health sweep (coordinator)")
		groupSplit     = flag.Int("group-split", 0, "batch-group size above which one placement group splits across replicas (0 = default, coordinator)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "certd: ", log.LstdFlags)

	if *fleetList != "" {
		if *dataDir != "" {
			logger.Fatalf("-fleet and -data-dir are mutually exclusive: a coordinator holds no database")
		}
		runCoordinator(logger, coordinatorFlags{
			addr:          *addr,
			backends:      splitURLs(*fleetList),
			hedgeQuantile: *hedgeQuantile,
			hedgeMin:      *hedgeMin,
			hedgeMax:      *hedgeMax,
			noHedge:       *noHedge,
			probeEvery:    *probeEvery,
			groupSplit:    *groupSplit,
			maxBatch:      *maxBatch,
			grace:         *grace,
		})
		return
	}

	// The durable store opens BEFORE the server: crash recovery (snapshot
	// load + WAL replay) must finish so the first request sees the
	// recovered database, and an unrecoverable data-dir should fail the
	// process before it starts accepting traffic.
	var store *wal.Store
	if *dataDir != "" {
		mode, err := wal.ParseFsyncMode(*fsyncMode)
		if err != nil {
			logger.Fatalf("-fsync: %v", err)
		}
		var seed *db.DB
		if *seedDB != "" {
			text, err := os.ReadFile(*seedDB)
			if err != nil {
				logger.Fatalf("-db: %v", err)
			}
			if seed, err = db.Parse(string(text)); err != nil {
				logger.Fatalf("-db %s: %v", *seedDB, err)
			}
		}
		store, err = wal.Open(wal.Options{
			Dir:           *dataDir,
			Fsync:         mode,
			SegmentBytes:  *segmentBytes,
			SnapshotEvery: *snapshotEvery,
			Seed:          seed,
			Registry:      obs.Default,
			Logger:        logger,
		})
		if err != nil {
			logger.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		_, v := store.DB()
		logger.Printf("hosted database open at version %d (dir %s, fsync %s)", v, *dataDir, mode)
	}

	s := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Policy: govern.Policy{
			MaxTimeout:     *maxTimeout,
			MaxBudget:      *maxBudget,
			DefaultTimeout: *defTimeout,
			DefaultBudget:  *defBudget,
			Reject:         *rejectOverAsk,
		},
		BreakerThreshold: *breakThresh,
		BreakerCooldown:  *breakCooldown,
		RetryAfter:       *retryAfter,
		DegradeSamples:   *degradeSamples,
		PlanCacheSize:    *planCache,
		VerdictCacheSize: *verdictCache,
		MaxBatchItems:    *maxBatch,
		Logger:           logger,
		// The process-wide registry, so /metrics also exposes the solver,
		// db, governor, and engine counters recorded below the service
		// layer.
		Registry:    obs.Default,
		EnablePprof: *pprofOn,
		Store:       store,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (%d workers, budget cap %d, timeout cap %v)",
			*addr, *workers, *maxBudget, *maxTimeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	// Graceful shutdown: stop admitting (new requests get 503), cancel
	// in-flight governors so searches return partial verdicts, let the HTTP
	// layer flush those responses, then wait for the pool to empty.
	logger.Printf("signal received; draining (grace %v)", *grace)
	s.BeginDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(graceCtx); err != nil {
		logger.Printf("drain: %v", err)
		if store != nil {
			store.Close() // best effort: still fsync what we can
		}
		os.Exit(1)
	}
	// Close the store only after the drain: every in-flight mutation has
	// committed and written its response by now.
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Printf("close store: %v", err)
			os.Exit(1)
		}
	}
	logger.Printf("drained cleanly")
}

// splitURLs parses the -fleet list, trimming blanks.
func splitURLs(list string) []string {
	var out []string
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

type coordinatorFlags struct {
	addr          string
	backends      []string
	hedgeQuantile float64
	hedgeMin      time.Duration
	hedgeMax      time.Duration
	noHedge       bool
	probeEvery    time.Duration
	groupSplit    int
	maxBatch      int
	grace         time.Duration
}

// runCoordinator serves the fleet coordinator until SIGINT/SIGTERM, then
// drains: stop admitting, let in-flight routed requests finish, exit.
func runCoordinator(logger *log.Logger, f coordinatorFlags) {
	if len(f.backends) == 0 {
		logger.Fatalf("-fleet: no worker URLs")
	}
	c := fleet.New(fleet.Config{
		Backends:      f.backends,
		HedgeQuantile: f.hedgeQuantile,
		HedgeMinDelay: f.hedgeMin,
		HedgeMaxDelay: f.hedgeMax,
		HedgeDisabled: f.noHedge,
		ProbeInterval: f.probeEvery,
		GroupSplit:    f.groupSplit,
		MaxBatchItems: f.maxBatch,
		Registry:      obs.Default,
		Logger:        logger,
	})
	c.Start()
	defer c.Close()

	httpSrv := &http.Server{Addr: f.addr, Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("coordinating %d workers on %s (hedge %v..%v at p%.0f, probe every %v)",
			len(f.backends), f.addr, f.hedgeMin, f.hedgeMax, f.hedgeQuantile*100, f.probeEvery)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	logger.Printf("signal received; draining coordinator (grace %v)", f.grace)
	c.BeginDrain()
	graceCtx, cancel := context.WithTimeout(context.Background(), f.grace)
	defer cancel()
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
		os.Exit(1)
	}
	logger.Printf("coordinator drained cleanly")
}
