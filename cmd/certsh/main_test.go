package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runScript executes commands against a fresh shell and returns the
// combined output.
func runScript(t *testing.T, lines ...string) string {
	t.Helper()
	var b strings.Builder
	sh := newShell(&b)
	for _, l := range lines {
		if sh.exec(l) {
			break
		}
	}
	return b.String()
}

func TestShellConferenceSession(t *testing.T) {
	out := runScript(t,
		"add C(PODS, 2016 | Rome)",
		"add C(PODS, 2016 | Paris)",
		"add C(KDD, 2017 | Rome)",
		"add R(PODS | A), R(KDD | A), R(KDD | B)",
		"stats",
		"blocks",
		"eval C(x, y | 'Rome'), R(x | 'A')",
		"classify C(x, y | 'Rome'), R(x | 'A')",
		"certain C(x, y | 'Rome'), R(x | 'A')",
		"count C(x, y | 'Rome'), R(x | 'A')",
		"prob C(x, y | 'Rome'), R(x | 'A')",
		"answers x : R(x | 'A')",
	)
	for _, want := range []string{
		"facts: 6  blocks: 4  repairs: 4",
		"satisfied (some repair): true",
		"first-order expressible",
		"certain: false",
		"falsifying repair:",
		"satisfying repairs: 3 of 4",
		"Pr(q) under uniform repairs: 3/4",
		"certain answers (1):",
		"[PODS]",
		"!", // uncertain-block marker
	} {
		if !strings.Contains(out, want) {
			t.Errorf("session output missing %q:\n%s", want, out)
		}
	}
}

func TestShellRewrite(t *testing.T) {
	out := runScript(t, "rewrite R(x | y), S(y | z)")
	for _, want := range []string{"φ =", "SQL: SELECT", "EXISTS"} {
		if !strings.Contains(out, want) {
			t.Errorf("rewrite output missing %q:\n%s", want, out)
		}
	}
	out = runScript(t, "rewrite R(x | y), S(y | x)")
	if !strings.Contains(out, "error:") {
		t.Errorf("cyclic attack graph should error:\n%s", out)
	}
}

func TestShellLoadAndCSV(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "facts.txt")
	os.WriteFile(dbPath, []byte("R(a | b)\nR(a | c)\n"), 0o644)
	csvPath := filepath.Join(dir, "s.csv")
	os.WriteFile(csvPath, []byte("b,1\nc,2\n"), 0o644)
	out := runScript(t,
		"load "+dbPath,
		"loadcsv S 1 "+csvPath,
		"stats",
		"certain R(x | y), S(y | z)",
	)
	for _, want := range []string{"facts: 4", "certain: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellClearShowHelpExit(t *testing.T) {
	out := runScript(t, "add R(a | b)", "clear", "stats", "help", "show")
	if !strings.Contains(out, "facts: 0") {
		t.Errorf("clear failed:\n%s", out)
	}
	if !strings.Contains(out, "commands:") {
		t.Errorf("help missing:\n%s", out)
	}
	var b strings.Builder
	sh := newShell(&b)
	if !sh.exec("exit") || !sh.exec("quit") {
		t.Error("exit/quit must end the session")
	}
	if sh.exec("") || sh.exec("# comment") {
		t.Error("blank/comment lines must not end the session")
	}
}

func TestShellErrors(t *testing.T) {
	cases := []string{
		"bogus",
		"add",
		"add R(",
		"add R(x | y)", // variables are constants in db files, so this is OK...
		"load /nonexistent/path",
		"loadcsv S 1",
		"loadcsv S x file",
		"loadcsv S 1 /nonexistent/path",
		"certain",
		"certain R(",
		"answers x R(x | y)",          // missing colon
		"answers x : R(",              // bad query
		"answers zz : R(x | y)",       // unknown variable
		"classify R(x | y), R(y | x)", // self-join
	}
	for _, c := range cases {
		if c == "add R(x | y)" {
			continue // legal: identifiers are constants in fact syntax
		}
		out := runScript(t, c)
		if !strings.Contains(out, "error:") {
			t.Errorf("command %q should report an error, got:\n%s", c, out)
		}
	}
}

func TestShellExplainAndDel(t *testing.T) {
	out := runScript(t,
		"add R(a | b), R(a | c), S(b | x)",
		"explain R(u | v), S(v | w)",
		"del R(a | c)",
		"stats",
		"del R(zz | zz)",
	)
	for _, want := range []string{"1.", "candidates", "removed 1 fact(s)", "facts: 2", "removed 0 fact(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if out := runScript(t, "del"); !strings.Contains(out, "error:") {
		t.Error("del without args should error")
	}
	if out := runScript(t, "explain"); !strings.Contains(out, "error:") {
		t.Error("explain without args should error")
	}
}

func TestShellTimeoutBudgetSettings(t *testing.T) {
	out := runScript(t,
		"timeout",
		"timeout 5s",
		"budget",
		"budget 1000",
		"timeout 0s",
		"budget 0",
	)
	for _, want := range []string{"timeout: 0s", "timeout: 5s", "budget: 0", "budget: 1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(runScript(t, "timeout abc"), "error:") {
		t.Error("bad timeout should report an error")
	}
	if !strings.Contains(runScript(t, "budget -3"), "error:") {
		t.Error("bad budget should report an error")
	}
}

func TestShellCertainBudgetUnknown(t *testing.T) {
	// A strong-cycle (coNP) instance under a one-step budget: the governed
	// solve is cut off and degrades to an unknown verdict with evidence.
	out := runScript(t,
		"add R0(a | b), R0(a | c)",
		"add S0(b, z | a), S0(c, z | a)",
		"budget 1",
		"certain R0(x | y), S0(y, z | x)",
	)
	if !strings.Contains(out, "certain: unknown") {
		t.Fatalf("expected an unknown verdict:\n%s", out)
	}
	if !strings.Contains(out, "search steps:") {
		t.Errorf("unknown verdict missing evidence:\n%s", out)
	}
}
