// Command certsh is an interactive shell for exploring uncertain databases
// and certain query answering. Facts are added directly, databases loaded
// from files or CSV, queries classified and solved in place.
//
//	$ certsh
//	> add C(PODS, 2016 | Rome)
//	> add C(PODS, 2016 | Paris)
//	> add R(PODS | A)
//	> blocks
//	> classify C(x, y | 'Rome'), R(x | 'A')
//	> certain  C(x, y | 'Rome'), R(x | 'A')
//	> answers x : R(x | 'A')
//	> help
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/cqa-go/certainty/internal/answers"
	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/solver"
)

func main() {
	sh := newShell(os.Stdout)
	fmt.Println("certsh — certain query answering shell (type 'help')")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		if sh.exec(scanner.Text()) {
			return
		}
	}
}

// shell holds the session state: one mutable uncertain database plus the
// resource limits applied to every solve ('timeout' and 'budget' commands).
type shell struct {
	d       *db.DB
	out     io.Writer
	timeout time.Duration
	budget  int64
}

func newShell(out io.Writer) *shell {
	return &shell{d: db.New(), out: out}
}

// solveContext returns the context a governed command runs under: Ctrl-C
// cancels the running solve without killing the shell.
func (s *shell) solveContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}

// exec runs one command line; it returns true when the session should end.
func (s *shell) exec(line string) bool {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return false
	}
	cmd, rest := line, ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	var err error
	switch cmd {
	case "exit", "quit":
		return true
	case "help":
		s.help()
	case "add":
		err = s.add(rest)
	case "load":
		err = s.load(rest)
	case "loadcsv":
		err = s.loadCSV(rest)
	case "clear":
		s.d = db.New()
		fmt.Fprintln(s.out, "cleared")
	case "show":
		fmt.Fprint(s.out, s.d.String())
	case "blocks":
		s.blocks()
	case "stats":
		s.stats()
	case "eval":
		err = s.withQuery(rest, func(q cq.Query) error {
			fmt.Fprintf(s.out, "satisfied (some repair): %v\n", engine.Eval(q, s.d))
			return nil
		})
	case "classify":
		err = s.withQuery(rest, s.classify)
	case "certain":
		err = s.withQuery(rest, s.certain)
	case "count":
		err = s.withQuery(rest, func(q cq.Query) error {
			n := prob.CountSatisfyingRepairs(q, s.d)
			fmt.Fprintf(s.out, "satisfying repairs: %v of %v\n", n, s.d.NumRepairs())
			return nil
		})
	case "prob":
		err = s.withQuery(rest, func(q cq.Query) error {
			pr, perr := prob.Probability(q, prob.Uniform(s.d))
			if perr != nil {
				return perr
			}
			fmt.Fprintf(s.out, "Pr(q) under uniform repairs: %v\n", pr)
			return nil
		})
	case "explain":
		err = s.withQuery(rest, func(q cq.Query) error {
			fmt.Fprint(s.out, engine.Explain(q, s.d))
			return nil
		})
	case "del":
		err = s.del(rest)
	case "rewrite":
		err = s.withQuery(rest, func(q cq.Query) error {
			phi, rerr := fo.RewriteAcyclic(q)
			if rerr != nil {
				return rerr
			}
			fmt.Fprintf(s.out, "φ = %s\n", phi)
			sql, rerr := fo.SQL(phi)
			if rerr != nil {
				return rerr
			}
			fmt.Fprintf(s.out, "SQL: SELECT %s;\n", sql)
			return nil
		})
	case "answers":
		err = s.answers(rest)
	case "timeout":
		err = s.setTimeout(rest)
	case "budget":
		err = s.setBudget(rest)
	default:
		err = fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
	if err != nil {
		fmt.Fprintln(s.out, "error:", err)
	}
	return false
}

func (s *shell) help() {
	fmt.Fprint(s.out, `commands:
  add <fact>             add a fact, e.g. add R(a, b | c)
  load <file>            load facts from a file in the textual format
  loadcsv <rel> <k> <f>  load relation <rel> with key length <k> from CSV
  show                   print all facts
  blocks                 print facts grouped by block
  stats                  facts, blocks, repairs, relations
  clear                  drop all facts
  del <fact>             remove a fact
  explain <query>        show the evaluation plan for the query
  eval <query>           is the query satisfied by the database itself?
  classify <query>       complexity of CERTAINTY(query)
  certain <query>        does every repair satisfy the query?
  count <query>          number of repairs satisfying the query
  prob <query>           probability under uniform repair semantics
  rewrite <query>        certain first-order rewriting (logic + SQL)
  answers <vars> : <q>   certain/possible answers, e.g. answers x, y : R(x | y)
  timeout <duration>     wall-clock limit per solve, e.g. timeout 5s (0 = none)
  budget <steps>         search-step limit per solve (0 = none)
  exit                   leave

Ctrl-C during 'certain' cancels the solve, not the shell. A solve cut off
by the timeout, budget, or Ctrl-C reports an unknown verdict with partial
evidence and a sampled repair-satisfaction estimate.
`)
}

func (s *shell) setTimeout(rest string) error {
	if rest == "" {
		fmt.Fprintf(s.out, "timeout: %v\n", s.timeout)
		return nil
	}
	d, err := time.ParseDuration(rest)
	if err != nil || d < 0 {
		return fmt.Errorf("usage: timeout <duration>, e.g. timeout 5s (got %q)", rest)
	}
	s.timeout = d
	fmt.Fprintf(s.out, "timeout: %v\n", s.timeout)
	return nil
}

func (s *shell) setBudget(rest string) error {
	if rest == "" {
		fmt.Fprintf(s.out, "budget: %d\n", s.budget)
		return nil
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("usage: budget <steps> (got %q)", rest)
	}
	s.budget = n
	fmt.Fprintf(s.out, "budget: %d\n", s.budget)
	return nil
}

func (s *shell) add(text string) error {
	if text == "" {
		return fmt.Errorf("usage: add R(a, b | c)")
	}
	facts, err := db.Parse(text)
	if err != nil {
		return err
	}
	for _, f := range facts.Facts() {
		if err := s.d.Add(f); err != nil {
			return err
		}
	}
	fmt.Fprintf(s.out, "%d fact(s)\n", s.d.Len())
	return nil
}

func (s *shell) del(text string) error {
	if text == "" {
		return fmt.Errorf("usage: del R(a, b | c)")
	}
	facts, err := db.Parse(text)
	if err != nil {
		return err
	}
	removed := 0
	for _, f := range facts.Facts() {
		if s.d.Remove(f) {
			removed++
		}
	}
	fmt.Fprintf(s.out, "removed %d fact(s); %d remain\n", removed, s.d.Len())
	return nil
}

func (s *shell) load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	loaded, err := db.Parse(string(data))
	if err != nil {
		return err
	}
	for _, f := range loaded.Facts() {
		if err := s.d.Add(f); err != nil {
			return err
		}
	}
	fmt.Fprintf(s.out, "loaded; %d fact(s) total\n", s.d.Len())
	return nil
}

func (s *shell) loadCSV(rest string) error {
	parts := strings.Fields(rest)
	if len(parts) != 3 {
		return fmt.Errorf("usage: loadcsv <relation> <keyLen> <file>")
	}
	var keyLen int
	if _, err := fmt.Sscanf(parts[1], "%d", &keyLen); err != nil {
		return fmt.Errorf("bad key length %q", parts[1])
	}
	f, err := os.Open(parts[2])
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.d.ReadCSV(parts[0], keyLen, f); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "loaded; %d fact(s) total\n", s.d.Len())
	return nil
}

func (s *shell) blocks() {
	for _, blk := range s.d.Blocks() {
		marker := " "
		if len(blk) > 1 {
			marker = "!" // uncertain block
		}
		for i, f := range blk {
			if i == 0 {
				fmt.Fprintf(s.out, "%s %s\n", marker, f)
			} else {
				fmt.Fprintf(s.out, "%s   ⊕ %s\n", marker, f)
			}
		}
	}
}

func (s *shell) stats() {
	fmt.Fprintf(s.out, "facts: %d  blocks: %d  repairs: %v  consistent: %v\n",
		s.d.Len(), s.d.NumBlocks(), s.d.NumRepairs(), s.d.IsConsistent())
	for _, rel := range s.d.Relations() {
		ar, kl, _ := s.d.Signature(rel)
		fmt.Fprintf(s.out, "  %s[%d,%d]: %d facts\n", rel, ar, kl, len(s.d.FactsOf(rel)))
	}
}

func (s *shell) withQuery(text string, f func(cq.Query) error) error {
	if text == "" {
		return fmt.Errorf("missing query")
	}
	q, err := cq.ParseQuery(text)
	if err != nil {
		return err
	}
	return f(q)
}

func (s *shell) classify(q cq.Query) error {
	cls, err := core.Classify(q)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "CERTAINTY(q): %s\n%s\n", cls.Class, cls.Reason)
	return nil
}

func (s *shell) certain(q cq.Query) error {
	ctx, stop := s.solveContext()
	defer stop()
	v, err := solver.SolveCtx(ctx, q, s.d, solver.Options{Budget: s.budget, Timeout: s.timeout})
	if err != nil {
		return err
	}
	if v.Outcome == solver.OutcomeUnknown {
		fmt.Fprintf(s.out, "certain: unknown  (%v; class: %s, method: %s)\n",
			v.Err, v.Result.Classification.Class, v.Result.Method)
		if ev := v.Evidence; ev != nil {
			fmt.Fprintf(s.out, "  search steps: %d\n", ev.Steps)
			if ev.TotalBlocks > 0 {
				fmt.Fprintf(s.out, "  best falsifying candidate: %d of %d blocks fixed\n",
					ev.BestDepth, ev.TotalBlocks)
			}
			if ev.Samples > 0 {
				fmt.Fprintf(s.out, "  sampled %d uniform repairs: %.1f%% satisfy the query\n",
					ev.Samples, 100*ev.Estimate)
			}
		}
		return nil
	}
	fmt.Fprintf(s.out, "certain: %v  (class: %s, method: %s)\n",
		v.Result.Certain, v.Result.Classification.Class, v.Result.Method)
	if !v.Result.Certain {
		if ev := v.Evidence; ev != nil && ev.FalsifyingSample != nil {
			fmt.Fprintln(s.out, "falsifying repair (sampled after cutoff):")
			for _, f := range ev.FalsifyingSample.Facts() {
				fmt.Fprintf(s.out, "  %s\n", f)
			}
			return nil
		}
		if rep, found, err := solver.FalsifyingRepairContext(ctx, q, s.d); err == nil && found {
			fmt.Fprintln(s.out, "falsifying repair:")
			for _, f := range rep {
				fmt.Fprintf(s.out, "  %s\n", f)
			}
		}
	}
	return nil
}

func (s *shell) answers(rest string) error {
	i := strings.Index(rest, ":")
	if i < 0 {
		return fmt.Errorf("usage: answers x, y : R(x | y)")
	}
	var free []string
	for _, v := range strings.Split(rest[:i], ",") {
		v = strings.TrimSpace(v)
		if v != "" {
			free = append(free, v)
		}
	}
	q, err := cq.ParseQuery(strings.TrimSpace(rest[i+1:]))
	if err != nil {
		return err
	}
	res, err := answers.Certain(q, free, s.d)
	if err != nil {
		return err
	}
	fmt.Fprintf(s.out, "certain answers (%d):\n", len(res.Certain))
	for _, a := range res.Certain {
		fmt.Fprintf(s.out, "  %v\n", []string(a))
	}
	fmt.Fprintf(s.out, "possible answers (%d):\n", len(res.Possible))
	for _, a := range res.Possible {
		fmt.Fprintf(s.out, "  %v\n", []string(a))
	}
	return nil
}
