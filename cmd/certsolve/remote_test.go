package main

import (
	"net/http/httptest"
	"testing"

	"github.com/cqa-go/certainty/internal/server"
)

// TestRunRemote drives the -remote path against an in-process certd
// handler: a clean solve, an option conflict, and a permanent server-side
// rejection (surfaced without retries as an error).
func TestRunRemote(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	dbPath := writeTemp(t, "db.txt", confDB)

	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "auto", true, false, "", 0, 0, 0, ts.URL, false); err != nil {
		t.Errorf("remote solve: %v", err)
	}
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "brute", false, false, "", 0, 0, 0, ts.URL, false); err == nil {
		t.Error("-remote with -method brute should fail")
	}
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "auto", false, true, "", 0, 0, 0, ts.URL, false); err == nil {
		t.Error("-remote with -count should fail")
	}
	// A self-join parses locally but the server rejects it as unsupported;
	// the client must surface that as a permanent error.
	if err := run(bg(), "R(x | y), R(y | x)", "", dbPath, "auto", false, false, "", 0, 0, 0, ts.URL, false); err == nil {
		t.Error("unsupported query should surface the server rejection")
	}
}
