package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const confDB = `
C(PODS, 2016 | Rome)
C(PODS, 2016 | Paris)
C(KDD, 2017 | Rome)
R(PODS | A)
R(KDD | A)
R(KDD | B)
`

func bg() context.Context { return context.Background() }

func TestRunMethods(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	for _, method := range []string{"auto", "brute", "falsify"} {
		if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, method, true, true, "", 0, 0, 0, "", false); err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestRunQueryFile(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	qPath := writeTemp(t, "q.cq", "R(x | 'A')")
	if err := run(bg(), "", qPath, dbPath, "auto", false, false, "", 0, 0, 0, "", false); err != nil {
		t.Error(err)
	}
}

func TestRunAnswers(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	if err := run(bg(), "R(x | r)", "", dbPath, "auto", false, false, "x, r", 0, 0, 0, "", false); err != nil {
		t.Error(err)
	}
	if err := run(bg(), "R(x | r)", "", dbPath, "auto", false, false, "zzz", 0, 0, 0, "", false); err == nil {
		t.Error("bad free variable should fail")
	}
}

func TestRunSharded(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	for _, shards := range []int{-1, 2, 64} {
		if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "auto", true, false, "", 0, 0, shards, "", false); err != nil {
			t.Errorf("shards=%d: %v", shards, err)
		}
	}
	// Sharding only exists in the span-instrumented auto dispatcher.
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "brute", false, false, "", 0, 0, 2, "", false); err == nil {
		t.Error("-shards with -method brute should fail")
	}
}

func TestRunTimeout(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	// Generous timeout: completes normally.
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "falsify", false, false, "", time.Second, 0, 0, "", false); err != nil {
		t.Errorf("generous timeout: %v", err)
	}
}

func TestRunBudget(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	// A one-step budget trips the explicit search methods...
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "falsify", false, false, "", 0, 1, 0, "", false); err == nil {
		t.Error("one-step budget on -method falsify should report an aborted search")
	}
	// ...while auto degrades to an unknown verdict instead of failing.
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "auto", false, false, "", 0, 1, 0, "", false); err != nil {
		t.Errorf("auto with a tiny budget should degrade, got %v", err)
	}
}

func TestRunCanceled(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-canceled context (the SIGINT path) must not hang; auto degrades,
	// explicit methods report the abort.
	if err := run(ctx, "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "auto", false, false, "", 0, 0, 0, "", false); err != nil {
		t.Errorf("auto under canceled context: %v", err)
	}
}

func TestRunTrace(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "auto", false, false, "", 0, 0, 0, "", true); err != nil {
		t.Errorf("-trace with auto: %v", err)
	}
	// -trace only makes sense where the span-instrumented dispatcher runs.
	if err := run(bg(), "C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "brute", false, false, "", 0, 0, 0, "", true); err == nil {
		t.Error("-trace with -method brute should fail")
	}
	if err := run(bg(), "R(x | y)", "", dbPath, "auto", false, false, "", 0, 0, 0, "http://127.0.0.1:1", true); err == nil {
		t.Error("-trace with -remote should fail")
	}
}

func TestRunErrors(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	if err := run(bg(), "", "", dbPath, "auto", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("missing query should fail")
	}
	if err := run(bg(), "R(x | y)", "", "", "auto", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("missing db should fail")
	}
	if err := run(bg(), "R(x", "", dbPath, "auto", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("bad query should fail")
	}
	if err := run(bg(), "R(x | y)", "", dbPath, "zzz", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("bad method should fail")
	}
	if err := run(bg(), "R(x | y)", "", "/nonexistent/db", "auto", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("missing db file should fail")
	}
	badDB := writeTemp(t, "bad.txt", "R(x |")
	if err := run(bg(), "R(x | y)", "", badDB, "auto", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("bad db syntax should fail")
	}
	if err := run(bg(), "", "/nonexistent/q", dbPath, "auto", false, false, "", 0, 0, 0, "", false); err == nil {
		t.Error("missing query file should fail")
	}
}
