package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const confDB = `
C(PODS, 2016 | Rome)
C(PODS, 2016 | Paris)
C(KDD, 2017 | Rome)
R(PODS | A)
R(KDD | A)
R(KDD | B)
`

func TestRunMethods(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	for _, method := range []string{"auto", "brute", "falsify"} {
		if err := run("C(x, y | 'Rome'), R(x | 'A')", "", dbPath, method, true, true, "", 0); err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestRunQueryFile(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	qPath := writeTemp(t, "q.cq", "R(x | 'A')")
	if err := run("", qPath, dbPath, "auto", false, false, "", 0); err != nil {
		t.Error(err)
	}
}

func TestRunAnswers(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	if err := run("R(x | r)", "", dbPath, "auto", false, false, "x, r", 0); err != nil {
		t.Error(err)
	}
	if err := run("R(x | r)", "", dbPath, "auto", false, false, "zzz", 0); err == nil {
		t.Error("bad free variable should fail")
	}
}

func TestRunTimeout(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	// Generous timeout: completes normally.
	if err := run("C(x, y | 'Rome'), R(x | 'A')", "", dbPath, "falsify", false, false, "", time.Second); err != nil {
		t.Errorf("generous timeout: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dbPath := writeTemp(t, "db.txt", confDB)
	if err := run("", "", dbPath, "auto", false, false, "", 0); err == nil {
		t.Error("missing query should fail")
	}
	if err := run("R(x | y)", "", "", "auto", false, false, "", 0); err == nil {
		t.Error("missing db should fail")
	}
	if err := run("R(x", "", dbPath, "auto", false, false, "", 0); err == nil {
		t.Error("bad query should fail")
	}
	if err := run("R(x | y)", "", dbPath, "zzz", false, false, "", 0); err == nil {
		t.Error("bad method should fail")
	}
	if err := run("R(x | y)", "", "/nonexistent/db", "auto", false, false, "", 0); err == nil {
		t.Error("missing db file should fail")
	}
	badDB := writeTemp(t, "bad.txt", "R(x |")
	if err := run("R(x | y)", "", badDB, "auto", false, false, "", 0); err == nil {
		t.Error("bad db syntax should fail")
	}
	if err := run("", "/nonexistent/q", dbPath, "auto", false, false, "", 0); err == nil {
		t.Error("missing query file should fail")
	}
}
