// Command certsolve decides CERTAINTY(q): whether every repair of an
// uncertain database satisfies a Boolean conjunctive query.
//
// Usage:
//
//	certsolve -q 'C(x, y | "Rome"), R(x | "A")' -d db.txt
//	certsolve -qf query.cq -d db.txt -method auto -witness
//
// The database file holds one fact per line, e.g. C(PODS, 2016 | Rome).
// Methods: auto (classifier dispatch, default), brute (repair
// enumeration), falsify (pruned search). With -witness, a falsifying
// repair is printed when the instance is not certain. With -count, the
// number of satisfying repairs (♯CERTAINTY) is printed too.
//
// Solving is resource-governed: -timeout bounds wall-clock time, -budget
// caps search steps, and Ctrl-C (SIGINT) cancels the search. With
// -shards N the instance is partitioned into independent sub-instances
// (connected components of the fact co-occurrence graph) solved in
// parallel, N capping the shard count (-1 = one shard per CPU); the
// verdict is identical to the single-shard solve. A solve cut
// off on a coNP-hard instance does not just die — it reports an "unknown"
// verdict with the partial search evidence and a sampled estimate of the
// fraction of repairs satisfying the query.
//
// With -trace, the solver records a span per phase (classification,
// simplification, the method's evaluation, degradation sampling) and the
// span tree is printed with per-phase durations after the verdict. Tracing
// works with the local auto method only.
//
// With -remote URL the solve runs on a certd server (see cmd/certd)
// instead of in-process: the request is retried with backoff on shedding,
// and the remote three-valued verdict prints exactly as a local one would.
// Omitting -d with -remote solves against the server's durable hosted
// database, and -db-insert/-db-delete/-db-info (with -if-version for
// compare-and-set) mutate and inspect it over /v1/db.
//
// With -emit sql|datalog the query is not solved: its consistent
// first-order rewriting is compiled to an executable backend program and
// printed to stdout (comments carry the schema convention). Local by
// default; with -remote the program comes from the server's /v1/compile.
// Non-FO queries fail with their classification — fall back to a solve.
// The inverse direction, -eval-sql FILE and -eval-datalog FILE, evaluates
// a previously emitted program against the -d database with the built-in
// reference evaluators and prints the same certain verdict a solve would.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"strings"

	"github.com/cqa-go/certainty/internal/answers"
	"github.com/cqa-go/certainty/internal/client"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/emit"
	"github.com/cqa-go/certainty/internal/emit/sqleval"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/solver"
)

func main() {
	queryText := flag.String("q", "", "query text")
	queryFile := flag.String("qf", "", "query file")
	dbFile := flag.String("d", "", "database file (one fact per line); '-' for stdin")
	method := flag.String("method", "auto", "decision method: auto, brute, falsify")
	witness := flag.Bool("witness", false, "print a falsifying repair when not certain")
	count := flag.Bool("count", false, "also print the number of satisfying repairs")
	free := flag.String("answers", "", "comma-separated free variables: compute certain/possible answers instead of the Boolean decision")
	timeout := flag.Duration("timeout", 0, "abort the search after this duration (0 = no limit)")
	budget := flag.Int64("budget", 0, "abort the search after this many search steps (0 = no limit)")
	shards := flag.Int("shards", 0, "solve independent sub-instances in parallel, capped at this many shards (-1 = one per CPU, 0 = off; auto method only)")
	remote := flag.String("remote", "", "solve on a certd server at this base URL instead of in-process")
	trace := flag.Bool("trace", false, "print the solver's span tree with per-phase durations (local auto method)")
	dbInsert := flag.String("db-insert", "", "insert facts from this file ('-' for stdin) into the remote hosted database (requires -remote)")
	dbDelete := flag.String("db-delete", "", "delete facts from this file ('-' for stdin) from the remote hosted database (requires -remote)")
	dbInfo := flag.Bool("db-info", false, "print the remote hosted database's version and stats (requires -remote)")
	ifVersion := flag.Int64("if-version", -1, "CAS guard for -db-insert/-db-delete: fail unless the remote database is at this version (-1 = unconditional)")
	emitDialect := flag.String("emit", "", "compile the query's FO rewriting to this dialect (sql, datalog) and print the program instead of solving")
	evalSQL := flag.String("eval-sql", "", "evaluate an emitted SQL program from this file ('-' for stdin) against the -d database")
	evalDatalog := flag.String("eval-datalog", "", "evaluate an emitted Datalog program from this file ('-' for stdin) against the -d database")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *dbInsert != "" || *dbDelete != "" || *dbInfo {
		if err := runRemoteDB(ctx, *remote, *dbInsert, *dbDelete, *dbInfo, *ifVersion); err != nil {
			fmt.Fprintln(os.Stderr, "certsolve:", err)
			os.Exit(1)
		}
		return
	}

	if *evalSQL != "" || *evalDatalog != "" {
		if err := runEval(*evalSQL, *evalDatalog, *dbFile); err != nil {
			fmt.Fprintln(os.Stderr, "certsolve:", err)
			os.Exit(1)
		}
		return
	}

	if *emitDialect != "" {
		if err := runEmit(ctx, *emitDialect, *queryText, *queryFile, *remote); err != nil {
			fmt.Fprintln(os.Stderr, "certsolve:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(ctx, *queryText, *queryFile, *dbFile, *method, *witness, *count, *free, *timeout, *budget, *shards, *remote, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "certsolve:", err)
		os.Exit(1)
	}
}

// runRemoteDB is the mutation/metadata mode: no query, no solve — just
// the durable /v1/db surface of a certd server.
func runRemoteDB(ctx context.Context, baseURL, insertFile, deleteFile string, info bool, ifVersion int64) error {
	if baseURL == "" {
		return fmt.Errorf("-db-insert, -db-delete, and -db-info require -remote URL")
	}
	if insertFile != "" && deleteFile != "" {
		return fmt.Errorf("use -db-insert or -db-delete, not both (ordering would be ambiguous)")
	}
	cl := client.New(baseURL)

	var cas *uint64
	if ifVersion >= 0 {
		v := uint64(ifVersion)
		cas = &v
	}
	mutFile, op := insertFile, "insert"
	mutate := cl.InsertFacts
	if deleteFile != "" {
		mutFile, op, mutate = deleteFile, "delete", cl.DeleteFacts
	}
	if mutFile != "" {
		var data []byte
		var err error
		if mutFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(mutFile)
		}
		if err != nil {
			return err
		}
		resp, err := mutate(ctx, string(data), cas)
		if err != nil {
			var vc *client.VersionConflictError
			if errors.As(err, &vc) {
				return fmt.Errorf("%s rejected: database moved to version %d (you conditioned on %d); re-read with -db-info and retry if your change still applies", op, vc.Have, vc.Want)
			}
			return err
		}
		fmt.Printf("%s: %d facts applied, database now at version %d\n", op, resp.Applied, resp.Version)
		if !info {
			return nil
		}
	}

	resp, err := cl.GetDB(ctx, false)
	if err != nil {
		return err
	}
	fmt.Printf("version: %d\n", resp.Version)
	fmt.Printf("facts: %d in %d blocks\n", resp.NumFacts, resp.NumBlocks)
	fmt.Printf("relations: %v\n", resp.Relations)
	fmt.Printf("digest: %s\n", resp.Digest)
	if resp.ReadOnly {
		fmt.Println("read-only: true  (disk trouble — mutations rejected until a probe heals it)")
	}
	return nil
}

// parseQueryArg resolves -q / -qf into a parsed query.
func parseQueryArg(queryText, queryFile string) (cq.Query, error) {
	switch {
	case queryText != "":
		return cq.ParseQuery(queryText)
	case queryFile != "":
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return cq.Query{}, err
		}
		return cq.ParseQuery(string(data))
	}
	return cq.Query{}, fmt.Errorf("provide -q or -qf")
}

// runEmit compiles the query's FO rewriting to the requested dialect and
// prints the bare program (ready to pipe into a file or a database shell).
// Classification metadata goes to stderr so stdout stays machine-readable.
func runEmit(ctx context.Context, dialect, queryText, queryFile, remote string) error {
	if dialect != emit.DialectSQL && dialect != emit.DialectDatalog {
		return fmt.Errorf("unknown -emit dialect %q (want sql or datalog)", dialect)
	}
	q, err := parseQueryArg(queryText, queryFile)
	if err != nil {
		return err
	}

	if remote != "" {
		resp, err := client.New(remote).Compile(ctx, q.String(), dialect)
		if err != nil {
			var eb *server.ErrorBody
			if errors.As(err, &eb) && eb.Code == server.CodeUnsupported && eb.Class != "" {
				return fmt.Errorf("CERTAINTY(q) is %s: no first-order rewriting to emit; solve instead", eb.Class)
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "class: %s\nmethod: %s  (remote)\n", resp.Class, resp.Method)
		fmt.Print(resp.Program)
		return nil
	}

	p, err := solver.CompilePlan(q)
	if err != nil {
		return err
	}
	var prog emit.Program
	if dialect == emit.DialectSQL {
		prog, err = p.EmitSQL()
	} else {
		prog, err = p.EmitDatalog()
	}
	if err != nil {
		var ne *solver.NotEmittableError
		if errors.As(err, &ne) {
			return fmt.Errorf("CERTAINTY(q) is %s: no first-order rewriting to emit; solve instead", ne.Classification.Class)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "class: %s\nmethod: %s\n", p.Class, p.Method)
	fmt.Print(prog.Text)
	return nil
}

// runEval evaluates an emitted program against the -d database with the
// reference evaluators and prints the boolean verdict.
func runEval(sqlFile, dlogFile, dbFile string) error {
	if sqlFile != "" && dlogFile != "" {
		return fmt.Errorf("use -eval-sql or -eval-datalog, not both")
	}
	if dbFile == "" {
		return fmt.Errorf("-eval-sql/-eval-datalog require -d database file")
	}
	progFile := sqlFile
	if dlogFile != "" {
		progFile = dlogFile
	}
	if progFile == "-" && dbFile == "-" {
		return fmt.Errorf("the program and the database cannot both come from stdin")
	}
	var prog []byte
	var err error
	if progFile == "-" {
		prog, err = io.ReadAll(os.Stdin)
	} else {
		prog, err = os.ReadFile(progFile)
	}
	if err != nil {
		return err
	}
	var data []byte
	if dbFile == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(dbFile)
	}
	if err != nil {
		return err
	}
	d, err := db.Parse(string(data))
	if err != nil {
		return err
	}
	var certain bool
	if sqlFile != "" {
		certain, err = sqleval.Eval(string(prog), d)
	} else {
		certain, err = emit.EvalDatalog(string(prog), d)
	}
	if err != nil {
		return err
	}
	fmt.Printf("certain: %v\n", certain)
	return nil
}

func run(ctx context.Context, queryText, queryFile, dbFile, method string, witness, count bool, free string, timeout time.Duration, budget int64, shards int, remote string, trace bool) error {
	var q cq.Query
	var err error
	switch {
	case queryText != "":
		q, err = cq.ParseQuery(queryText)
	case queryFile != "":
		var data []byte
		data, err = os.ReadFile(queryFile)
		if err == nil {
			q, err = cq.ParseQuery(string(data))
		}
	default:
		return fmt.Errorf("provide -q or -qf")
	}
	if err != nil {
		return err
	}

	if dbFile == "" && remote == "" {
		return fmt.Errorf("provide -d database file (or -remote to solve against a server's hosted database)")
	}
	var data []byte
	var d *db.DB
	if dbFile != "" {
		if dbFile == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(dbFile)
		}
		if err != nil {
			return err
		}
		if d, err = db.Parse(string(data)); err != nil {
			return err
		}
		fmt.Printf("query: %s\n", q)
		fmt.Printf("database: %d facts in %d blocks, %v repairs\n",
			d.Len(), d.NumBlocks(), d.NumRepairs())
	} else {
		// Empty db text: the server solves against its durable hosted
		// database at whatever version is current.
		fmt.Printf("query: %s\n", q)
		fmt.Printf("database: hosted on %s\n", remote)
	}

	if remote != "" {
		if free != "" || count || method != "auto" {
			return fmt.Errorf("-remote supports only the default method (no -answers, -count, or -method)")
		}
		if trace {
			return fmt.Errorf("-trace is local-only (the span tree lives in the serving process)")
		}
		return runRemote(ctx, remote, q, string(data), timeout, budget, witness)
	}

	if free != "" {
		vars := strings.Split(free, ",")
		for i := range vars {
			vars[i] = strings.TrimSpace(vars[i])
		}
		res, err := answers.Certain(q, vars, d)
		if err != nil {
			return err
		}
		fmt.Printf("free variables: %v\n", res.Free)
		fmt.Printf("certain answers (%d):\n", len(res.Certain))
		for _, a := range res.Certain {
			fmt.Printf("  %v\n", []string(a))
		}
		fmt.Printf("possible answers (%d):\n", len(res.Possible))
		for _, a := range res.Possible {
			fmt.Printf("  %v\n", []string(a))
		}
		return nil
	}

	if trace && method != "auto" {
		return fmt.Errorf("-trace requires the auto method")
	}
	var tracer *obs.Tracer
	if trace {
		tracer = obs.NewTracer(obs.TracerOptions{})
		ctx = obs.WithTracer(ctx, tracer)
	}

	if shards != 0 && method != "auto" {
		return fmt.Errorf("-shards requires the auto method")
	}

	opts := solver.Options{Budget: budget, Timeout: timeout}
	var certain bool
	switch method {
	case "auto":
		var v solver.Verdict
		var err error
		if shards != 0 {
			v, err = solver.Solve(ctx, q, d,
				solver.WithShards(shards),
				solver.WithBudget(budget),
				solver.WithDeadline(timeout))
		} else {
			v, err = solver.SolveCtx(ctx, q, d, opts)
		}
		if err != nil {
			return err
		}
		if tracer != nil {
			fmt.Println("trace:")
			fmt.Print(obs.FormatTree(tracer.Snapshot()))
		}
		fmt.Printf("class: %s\n", v.Result.Classification.Class)
		fmt.Printf("method: %s\n", v.Result.Method)
		if v.Outcome == solver.OutcomeUnknown {
			printUnknown(v)
			return nil
		}
		if witness && v.Evidence != nil && v.Evidence.FalsifyingSample != nil {
			// The sampler found the witness after the exact search was cut
			// off; print it rather than re-running the search below.
			fmt.Printf("certain: false  (%s)\n", cutoffReason(v.Evidence))
			fmt.Println("falsifying repair (sampled):")
			for _, f := range v.Evidence.FalsifyingSample.Facts() {
				fmt.Printf("  %s\n", f)
			}
			return nil
		}
		certain = v.Result.Certain
	case "brute":
		g := govern.New(ctx, govern.Options{Budget: budget, Timeout: timeout})
		defer g.Close()
		var err error
		certain, err = solver.BruteForceCtx(g.Attach(), q, d)
		if err != nil {
			return fmt.Errorf("search aborted after %d steps: %w", g.Steps(), err)
		}
		fmt.Printf("method: %s\n", solver.MethodBruteForce)
	case "falsify":
		g := govern.New(ctx, govern.Options{Budget: budget, Timeout: timeout})
		defer g.Close()
		var err error
		certain, err = solver.CertainByFalsifyingCtx(g.Attach(), q, d)
		if err != nil {
			return fmt.Errorf("search aborted after %d steps: %w", g.Steps(), err)
		}
		fmt.Printf("method: %s\n", solver.MethodFalsifying)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	fmt.Printf("certain: %v\n", certain)

	if witness && !certain {
		rep, found, err := solver.FalsifyingRepairContext(ctx, q, d)
		if err != nil {
			return fmt.Errorf("witness search aborted: %w", err)
		}
		if found {
			fmt.Println("falsifying repair:")
			for _, f := range rep {
				fmt.Printf("  %s\n", f)
			}
		}
	}
	if count {
		n := prob.CountSatisfyingRepairs(q, d)
		fmt.Printf("satisfying repairs: %v of %v\n", n, d.NumRepairs())
	}
	return nil
}

// runRemote solves on a certd server and prints the verdict exactly as
// the local path does, plus the service envelope (clamped limits, breaker
// state) when the server reports it.
func runRemote(ctx context.Context, baseURL string, q cq.Query, dbText string, timeout time.Duration, budget int64, witness bool) error {
	cl := client.New(baseURL)
	resp, err := cl.Solve(ctx, server.SolveRequest{
		Query:     q.String(),
		DB:        dbText,
		TimeoutMS: timeout.Milliseconds(),
		Budget:    budget,
	})
	if err != nil {
		return err
	}
	v := resp.Verdict
	fmt.Printf("class: %s\n", v.Result.Classification.Class)
	fmt.Printf("method: %s  (remote, %dms)\n", v.Result.Method, resp.ElapsedMS)
	if resp.DBVersion != nil {
		fmt.Printf("database version: %d\n", *resp.DBVersion)
	}
	if c := resp.Clamped; c != nil {
		fmt.Printf("server clamped limits: budget %d, timeout %dms\n", c.BudgetVal, c.TimeoutMS)
	}
	switch resp.Breaker {
	case server.BreakerOpen:
		fmt.Println("breaker: open — exact search skipped, degraded sampling verdict")
	case server.BreakerProbe:
		fmt.Println("breaker: half-open — this solve was the recovery probe")
	}
	if v.Outcome == solver.OutcomeUnknown {
		printUnknown(v)
		return nil
	}
	if witness && v.Evidence != nil && v.Evidence.FalsifyingSample != nil {
		fmt.Printf("certain: false  (%s)\n", cutoffReason(v.Evidence))
		fmt.Println("falsifying repair (sampled):")
		for _, f := range v.Evidence.FalsifyingSample.Facts() {
			fmt.Printf("  %s\n", f)
		}
		return nil
	}
	fmt.Printf("certain: %v\n", v.Result.Certain)
	return nil
}

// cutoffReason names what stopped the solve.
func cutoffReason(ev *solver.Evidence) string {
	return fmt.Sprintf("search cut off after %d steps", ev.Steps)
}

// printUnknown reports a cut-off solve: the cause, the partial progress of
// the exact search, and the degradation sampler's estimate.
func printUnknown(v solver.Verdict) {
	fmt.Printf("certain: unknown  (%v)\n", v.Err)
	ev := v.Evidence
	if ev == nil {
		return
	}
	fmt.Printf("  search steps: %d\n", ev.Steps)
	if ev.TotalBlocks > 0 {
		fmt.Printf("  best falsifying candidate: %d of %d blocks fixed\n", ev.BestDepth, ev.TotalBlocks)
	}
	if ev.Samples > 0 {
		fmt.Printf("  sampled %d uniform repairs: %.1f%% satisfy the query\n", ev.Samples, 100*ev.Estimate)
		if ev.Estimate == 1 {
			fmt.Println("  (no sampled repair falsifies the query — evidence for certainty, not proof)")
		}
	}
}
