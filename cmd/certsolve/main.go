// Command certsolve decides CERTAINTY(q): whether every repair of an
// uncertain database satisfies a Boolean conjunctive query.
//
// Usage:
//
//	certsolve -q 'C(x, y | "Rome"), R(x | "A")' -d db.txt
//	certsolve -qf query.cq -d db.txt -method auto -witness
//
// The database file holds one fact per line, e.g. C(PODS, 2016 | Rome).
// Methods: auto (classifier dispatch, default), brute (repair
// enumeration), falsify (pruned search). With -witness, a falsifying
// repair is printed when the instance is not certain. With -count, the
// number of satisfying repairs (♯CERTAINTY) is printed too.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"strings"

	"github.com/cqa-go/certainty/internal/answers"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/solver"
)

func main() {
	queryText := flag.String("q", "", "query text")
	queryFile := flag.String("qf", "", "query file")
	dbFile := flag.String("d", "", "database file (one fact per line); '-' for stdin")
	method := flag.String("method", "auto", "decision method: auto, brute, falsify")
	witness := flag.Bool("witness", false, "print a falsifying repair when not certain")
	count := flag.Bool("count", false, "also print the number of satisfying repairs")
	free := flag.String("answers", "", "comma-separated free variables: compute certain/possible answers instead of the Boolean decision")
	timeout := flag.Duration("timeout", 0, "abort the falsifying-repair search after this duration (0 = no limit; applies to -method falsify)")
	flag.Parse()

	if err := run(*queryText, *queryFile, *dbFile, *method, *witness, *count, *free, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "certsolve:", err)
		os.Exit(1)
	}
}

func run(queryText, queryFile, dbFile, method string, witness, count bool, free string, timeout time.Duration) error {
	var q cq.Query
	var err error
	switch {
	case queryText != "":
		q, err = cq.ParseQuery(queryText)
	case queryFile != "":
		var data []byte
		data, err = os.ReadFile(queryFile)
		if err == nil {
			q, err = cq.ParseQuery(string(data))
		}
	default:
		return fmt.Errorf("provide -q or -qf")
	}
	if err != nil {
		return err
	}

	if dbFile == "" {
		return fmt.Errorf("provide -d database file")
	}
	var data []byte
	if dbFile == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(dbFile)
	}
	if err != nil {
		return err
	}
	d, err := db.Parse(string(data))
	if err != nil {
		return err
	}

	fmt.Printf("query: %s\n", q)
	fmt.Printf("database: %d facts in %d blocks, %v repairs\n",
		d.Len(), d.NumBlocks(), d.NumRepairs())

	if free != "" {
		vars := strings.Split(free, ",")
		for i := range vars {
			vars[i] = strings.TrimSpace(vars[i])
		}
		res, err := answers.Certain(q, vars, d)
		if err != nil {
			return err
		}
		fmt.Printf("free variables: %v\n", res.Free)
		fmt.Printf("certain answers (%d):\n", len(res.Certain))
		for _, a := range res.Certain {
			fmt.Printf("  %v\n", []string(a))
		}
		fmt.Printf("possible answers (%d):\n", len(res.Possible))
		for _, a := range res.Possible {
			fmt.Printf("  %v\n", []string(a))
		}
		return nil
	}

	var certain bool
	switch method {
	case "auto":
		res, err := solver.Solve(q, d)
		if err != nil {
			return err
		}
		certain = res.Certain
		fmt.Printf("class: %s\n", res.Classification.Class)
		fmt.Printf("method: %s\n", res.Method)
	case "brute":
		certain = solver.BruteForce(q, d)
		fmt.Printf("method: %s\n", solver.MethodBruteForce)
	case "falsify":
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			_, found, err := solver.FalsifyingRepairContext(ctx, q, d)
			if err != nil {
				return fmt.Errorf("search aborted: %w", err)
			}
			certain = !found
		} else {
			certain = solver.CertainByFalsifying(q, d)
		}
		fmt.Printf("method: %s\n", solver.MethodFalsifying)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	fmt.Printf("certain: %v\n", certain)

	if witness && !certain {
		rep, found := solver.FalsifyingRepair(q, d)
		if found {
			fmt.Println("falsifying repair:")
			for _, f := range rep {
				fmt.Printf("  %s\n", f)
			}
		}
	}
	if count {
		n := prob.CountSatisfyingRepairs(q, d)
		fmt.Printf("satisfying repairs: %v of %v\n", n, d.NumRepairs())
	}
	return nil
}
