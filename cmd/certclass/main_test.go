package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
)

func TestFamilyQuery(t *testing.T) {
	cases := map[string]int{
		"q0": 2, "q1": 4, "conference": 2, "terminal": 7, "open": 3,
		"C3": 3, "c4": 4, "AC3": 4, "ac5": 6,
	}
	for name, atoms := range cases {
		q, err := familyQuery(name)
		if err != nil {
			t.Errorf("familyQuery(%q): %v", name, err)
			continue
		}
		if q.Len() != atoms {
			t.Errorf("familyQuery(%q) has %d atoms, want %d", name, q.Len(), atoms)
		}
	}
	for _, bad := range []string{"", "zzz", "C1", "AC1", "Cx"} {
		if _, err := familyQuery(bad); err == nil {
			t.Errorf("familyQuery(%q) should fail", bad)
		}
	}
}

func TestLoadQuery(t *testing.T) {
	q, err := loadQuery("", "", []string{"R(x | y)"})
	if err != nil || q.Len() != 1 {
		t.Errorf("inline query: %v %v", q, err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "q.cq")
	os.WriteFile(path, []byte("R(x | y), S(y | z)"), 0o644)
	q, err = loadQuery(path, "", nil)
	if err != nil || q.Len() != 2 {
		t.Errorf("file query: %v %v", q, err)
	}
	if _, err := loadQuery("", "", nil); err == nil {
		t.Error("no input should fail")
	}
	if _, err := loadQuery(filepath.Join(dir, "missing"), "", nil); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := loadQuery("", "", []string{"R(x"}); err == nil {
		t.Error("bad syntax should fail")
	}
}

func TestReportFOQuery(t *testing.T) {
	var b strings.Builder
	if err := report(&b, cq.MustParseQuery("R(x | y), S(y | z)")); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"first-order expressible",
		"certain FO rewriting",
		"as SQL",
		"attacks:",
		"safe (Dalvi–Ré–Suciu): false",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportStrongCycle(t *testing.T) {
	var b strings.Builder
	if err := report(&b, cq.Q1()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"coNP-complete", "strong", "R ↝ S"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportUnsupported(t *testing.T) {
	var b strings.Builder
	// A cyclic hypergraph that is neither C(k) nor safe.
	q := cq.MustParseQuery("R(x, y | a), S(y, z | b), T(z, x | c)")
	if err := report(&b, q); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "unsupported") {
		t.Errorf("expected unsupported classification:\n%s", b.String())
	}
}

func TestEmitDOT(t *testing.T) {
	if err := emitDOT(cq.Q1(), "attack"); err != nil {
		t.Errorf("attack DOT: %v", err)
	}
	if err := emitDOT(cq.Q1(), "jointree"); err != nil {
		t.Errorf("jointree DOT: %v", err)
	}
	if err := emitDOT(cq.Q1(), "zzz"); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := emitDOT(cq.Ck(3), "attack"); err == nil {
		t.Error("cyclic query has no attack graph")
	}
}

func TestJSONReport(t *testing.T) {
	rep := buildJSONReport(cq.Q1())
	if rep.Class == "" || rep.Unsupported != "" || rep.InP {
		t.Errorf("q1 report: %+v", rep)
	}
	if len(rep.Attacks) != 7 || len(rep.Cycles) != 3 || len(rep.Atoms) != 4 {
		t.Errorf("q1 structure: %d attacks, %d cycles, %d atoms",
			len(rep.Attacks), len(rep.Cycles), len(rep.Atoms))
	}
	strong := 0
	for _, a := range rep.Attacks {
		if a.Kind == "strong" {
			strong++
		}
	}
	if strong != 1 {
		t.Errorf("q1 has exactly one strong attack, got %d", strong)
	}
	fo := buildJSONReport(cq.MustParseQuery("R(x | y), S(y | z)"))
	if fo.Rewriting == "" || fo.SQL == "" || !fo.InP {
		t.Errorf("FO report missing rewriting: %+v", fo)
	}
	// Cyclic-safe query: rewriting via Theorem 6.
	cs := buildJSONReport(cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)"))
	if cs.Rewriting == "" || cs.Acyclic {
		t.Errorf("cyclic-safe report: %+v", cs)
	}
	bad := buildJSONReport(cq.MustParseQuery("R(x, y | a), S(y, z | b), T(z, x | c)"))
	if bad.Unsupported == "" {
		t.Errorf("unsupported report: %+v", bad)
	}
	var b strings.Builder
	if err := emitJSON(&b, cq.Q1()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"class\"") {
		t.Errorf("JSON output: %s", b.String())
	}
}
