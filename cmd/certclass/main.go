// Command certclass classifies the complexity of CERTAINTY(q) for a
// Boolean conjunctive query using the attack-graph method of Wijsen
// (PODS 2013). It prints the join tree, the attack graph with weak/strong
// labels and closures, the cycle structure, the complexity verdict, the
// Dalvi–Ré–Suciu safety status, and — when one exists — the certain
// first-order rewriting (logic and SQL forms).
//
// Usage:
//
//	certclass 'R(x | y), S(y | x)'
//	certclass -f query.cq
//	certclass -family q1|q0|conference|terminal|C3|AC3|...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
)

func main() {
	file := flag.String("f", "", "read the query from a file")
	family := flag.String("family", "", "use a built-in family: q0, q1, conference, terminal, open, Ck, ACk (e.g. C3, AC4)")
	dot := flag.String("dot", "", "emit Graphviz output instead of the report: 'attack' or 'jointree'")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: certclass [-f file | -family name] ['query text']\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	q, err := loadQuery(*file, *family, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "certclass:", err)
		os.Exit(1)
	}
	if *dot != "" {
		if err := emitDOT(q, *dot); err != nil {
			fmt.Fprintln(os.Stderr, "certclass:", err)
			os.Exit(1)
		}
		return
	}
	if *asJSON {
		if err := emitJSON(os.Stdout, q); err != nil {
			fmt.Fprintln(os.Stderr, "certclass:", err)
			os.Exit(1)
		}
		return
	}
	if err := report(os.Stdout, q); err != nil {
		fmt.Fprintln(os.Stderr, "certclass:", err)
		os.Exit(1)
	}
}

func loadQuery(file, family string, args []string) (cq.Query, error) {
	switch {
	case family != "":
		return familyQuery(family)
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return cq.Query{}, err
		}
		return cq.ParseQuery(string(data))
	case len(args) == 1:
		return cq.ParseQuery(args[0])
	default:
		return cq.Query{}, fmt.Errorf("provide a query argument, -f file, or -family name")
	}
}

func familyQuery(name string) (cq.Query, error) {
	switch strings.ToLower(name) {
	case "q0":
		return cq.Q0(), nil
	case "q1":
		return cq.Q1(), nil
	case "conference":
		return cq.ConferenceQuery(), nil
	case "terminal":
		return cq.TerminalCyclesQuery(), nil
	case "open":
		return gen.OpenCaseQuery(), nil
	}
	lower := strings.ToLower(name)
	if strings.HasPrefix(lower, "ac") {
		if k, err := strconv.Atoi(lower[2:]); err == nil && k >= 2 {
			return cq.ACk(k), nil
		}
	} else if strings.HasPrefix(lower, "c") {
		if k, err := strconv.Atoi(lower[1:]); err == nil && k >= 2 {
			return cq.Ck(k), nil
		}
	}
	return cq.Query{}, fmt.Errorf("unknown family %q", name)
}

func emitDOT(q cq.Query, kind string) error {
	switch kind {
	case "attack":
		g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return err
		}
		fmt.Print(g.DOT())
		return nil
	case "jointree":
		t, err := jointree.Build(q, jointree.TieBreakLex)
		if err != nil {
			return err
		}
		fmt.Print(t.DOT())
		return nil
	default:
		return fmt.Errorf("unknown -dot kind %q (want attack or jointree)", kind)
	}
}

func report(w io.Writer, q cq.Query) error {
	fmt.Fprintf(w, "query: %s\n", q)
	fmt.Fprintf(w, "self-join-free: %v\n", !q.HasSelfJoin())
	fmt.Fprintf(w, "acyclic (has join tree): %v\n", jointree.IsAcyclic(q))
	fmt.Fprintf(w, "safe (Dalvi–Ré–Suciu): %v\n", prob.IsSafe(q))

	cls, err := core.Classify(q)
	if err != nil {
		fmt.Fprintf(w, "classification: unsupported (%v)\n", err)
		return nil
	}
	if cls.Graph != nil {
		g := cls.Graph
		fmt.Fprintf(w, "join tree: %s\n", g.Tree)
		fmt.Fprintln(w, "closures:")
		for i, a := range q.Atoms {
			fmt.Fprintf(w, "  %s: key=%s  F+=%s  F⊕=%s\n",
				a.Rel, a.KeyVars(), g.Plus(i), g.Full(i))
		}
		fmt.Fprintln(w, "attacks:")
		any := false
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < g.Len(); j++ {
				if i == j || !g.Attacks(i, j) {
					continue
				}
				any = true
				kind := "weak"
				if g.IsStrong(i, j) {
					kind = "strong"
				}
				fmt.Fprintf(w, "  %s ↝ %s (%s)\n", q.Atoms[i].Rel, q.Atoms[j].Rel, kind)
			}
		}
		if !any {
			fmt.Fprintln(w, "  (none)")
		}
		fmt.Fprintln(w, "attack cycles:")
		cycles := g.Cycles()
		if len(cycles) == 0 {
			fmt.Fprintln(w, "  (none — attack graph acyclic)")
		}
		for _, c := range cycles {
			names := make([]string, len(c))
			for i, v := range c {
				names[i] = q.Atoms[v].Rel
			}
			kind := "weak"
			if g.CycleIsStrong(c) {
				kind = "strong"
			}
			term := "terminal"
			if !g.CycleIsTerminal(c) {
				term = "nonterminal"
			}
			fmt.Fprintf(w, "  %s (%s, %s)\n", strings.Join(names, " ↝ "), kind, term)
		}
	}
	fmt.Fprintf(w, "CERTAINTY(q): %s\n", cls.Class)
	fmt.Fprintf(w, "reason: %s\n", cls.Reason)

	if cls.Class == core.ClassFO {
		phi, err := fo.RewriteAcyclic(q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "certain FO rewriting:\n  %s\n", phi)
		sql, err := fo.SQL(phi)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "as SQL:\n  SELECT %s;\n", sql)
	}
	return nil
}
