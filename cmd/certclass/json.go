package main

import (
	"encoding/json"
	"io"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
)

// jsonReport is the machine-readable form of the classification report.
type jsonReport struct {
	Query        string       `json:"query"`
	SelfJoinFree bool         `json:"selfJoinFree"`
	Acyclic      bool         `json:"acyclic"`
	Safe         bool         `json:"safe"`
	Class        string       `json:"class,omitempty"`
	Reason       string       `json:"reason,omitempty"`
	Unsupported  string       `json:"unsupported,omitempty"`
	InP          bool         `json:"inP"`
	Atoms        []jsonAtom   `json:"atoms,omitempty"`
	Attacks      []jsonAttack `json:"attacks,omitempty"`
	Cycles       []jsonCycle  `json:"cycles,omitempty"`
	Rewriting    string       `json:"rewriting,omitempty"`
	SQL          string       `json:"sql,omitempty"`
}

type jsonAtom struct {
	Atom        string   `json:"atom"`
	Key         []string `json:"key"`
	PlusClosure []string `json:"plusClosure"`
	FullClosure []string `json:"fullClosure"`
}

type jsonAttack struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"`
}

type jsonCycle struct {
	Atoms    []string `json:"atoms"`
	Strong   bool     `json:"strong"`
	Terminal bool     `json:"terminal"`
}

func buildJSONReport(q cq.Query) jsonReport {
	rep := jsonReport{
		Query:        q.String(),
		SelfJoinFree: !q.HasSelfJoin(),
		Acyclic:      jointree.IsAcyclic(q),
		Safe:         prob.IsSafe(q),
	}
	cls, err := core.Classify(q)
	if err != nil {
		rep.Unsupported = err.Error()
		return rep
	}
	rep.Class = cls.Class.String()
	rep.Reason = cls.Reason
	rep.InP = cls.Class.InP()
	if g := cls.Graph; g != nil {
		for i, a := range q.Atoms {
			rep.Atoms = append(rep.Atoms, jsonAtom{
				Atom:        a.String(),
				Key:         a.KeyVars().Sorted(),
				PlusClosure: g.Plus(i).Sorted(),
				FullClosure: g.Full(i).Sorted(),
			})
		}
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < g.Len(); j++ {
				if i == j || !g.Attacks(i, j) {
					continue
				}
				kind := "weak"
				if g.IsStrong(i, j) {
					kind = "strong"
				}
				rep.Attacks = append(rep.Attacks, jsonAttack{
					From: q.Atoms[i].Rel, To: q.Atoms[j].Rel, Kind: kind,
				})
			}
		}
		for _, c := range g.Cycles() {
			names := make([]string, len(c))
			for i, v := range c {
				names[i] = q.Atoms[v].Rel
			}
			rep.Cycles = append(rep.Cycles, jsonCycle{
				Atoms:    names,
				Strong:   g.CycleIsStrong(c),
				Terminal: g.CycleIsTerminal(c),
			})
		}
	}
	if cls.Class == core.ClassFO {
		if phi, err := fo.RewriteAcyclic(q); err == nil {
			rep.Rewriting = phi.String()
			if sql, err := fo.SQL(phi); err == nil {
				rep.SQL = sql
			}
		} else if phi, err := fo.RewriteSafe(q); err == nil {
			rep.Rewriting = phi.String()
			if sql, err := fo.SQL(phi); err == nil {
				rep.SQL = sql
			}
		}
	}
	return rep
}

func emitJSON(w io.Writer, q cq.Query) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildJSONReport(q))
}
