// Command certgen emits generated uncertain databases in the textual
// format, for use with certsolve and certbench.
//
// Usage:
//
//	certgen -kind conference                   # the Fig. 1 database
//	certgen -kind figure6                      # the Fig. 6 database
//	certgen -kind random -query 'R(x|y), S(y|x)' -embeddings 5 -noise 3 -domain 4 -seed 1
//	certgen -kind cycle -k 3 -components 2 -width 2 -encode all
//	certgen -kind q0 -n 5 -block 2 -domain 3 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
)

func main() {
	kind := flag.String("kind", "", "workload: conference, figure6, random, cycle, q0")
	query := flag.String("query", "", "query for -kind random")
	embeddings := flag.Int("embeddings", 3, "random: embeddings inserted")
	noise := flag.Int("noise", 2, "random: noise facts per relation")
	domain := flag.Int("domain", 3, "random/q0: domain size")
	seed := flag.Int64("seed", 1, "random seed")
	k := flag.Int("k", 3, "cycle: k")
	components := flag.Int("components", 1, "cycle: number of strong components")
	width := flag.Int("width", 2, "cycle: parallel values per position")
	encode := flag.String("encode", "aligned", "cycle: S_k contents: all, aligned, none")
	n := flag.Int("n", 4, "q0: number of R0 blocks")
	block := flag.Int("block", 2, "q0: block size")
	flag.Parse()

	out, err := generate(*kind, *query, *embeddings, *noise, *domain, *seed,
		*k, *components, *width, *encode, *n, *block)
	if err != nil {
		fmt.Fprintln(os.Stderr, "certgen:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func generate(kind, query string, embeddings, noise, domain int, seed int64,
	k, components, width int, encode string, n, block int) (string, error) {
	switch kind {
	case "conference":
		return gen.ConferenceDB().String(), nil
	case "figure6":
		return gen.Figure6DB().String(), nil
	case "random":
		if query == "" {
			return "", fmt.Errorf("-kind random requires -query")
		}
		q, err := cq.ParseQuery(query)
		if err != nil {
			return "", err
		}
		d := gen.RandomDB(q, gen.Config{Embeddings: embeddings, Noise: noise, Domain: domain}, seed)
		return d.String(), nil
	case "cycle":
		cfg := gen.CycleConfig{K: k, Components: components, Width: width}
		switch encode {
		case "all":
			cfg.EncodeAll = true
		case "aligned":
		case "none":
			cfg.SkipSk = true
		default:
			return "", fmt.Errorf("unknown -encode %q (want all, aligned, none)", encode)
		}
		return gen.CycleDB(cfg).String(), nil
	case "q0":
		return gen.Q0DB(n, block, domain, seed).String(), nil
	default:
		return "", fmt.Errorf("unknown -kind %q", kind)
	}
}
