package main

import (
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/db"
)

func gen1(t *testing.T, kind, query string, k, comps, width int, encode string) string {
	t.Helper()
	out, err := generate(kind, query, 3, 2, 3, 1, k, comps, width, encode, 4, 2)
	if err != nil {
		t.Fatalf("generate(%s): %v", kind, err)
	}
	return out
}

func TestGenerateKinds(t *testing.T) {
	conf := gen1(t, "conference", "", 3, 1, 2, "aligned")
	if !strings.Contains(conf, "C(PODS, 2016 | Rome)") {
		t.Errorf("conference output:\n%s", conf)
	}
	fig6 := gen1(t, "figure6", "", 3, 1, 2, "aligned")
	if !strings.Contains(fig6, "S3(") {
		t.Errorf("figure6 output:\n%s", fig6)
	}
	rnd := gen1(t, "random", "R(x | y), S(y | x)", 3, 1, 2, "aligned")
	if _, err := db.Parse(rnd); err != nil {
		t.Errorf("random output not parseable: %v", err)
	}
	for _, enc := range []string{"all", "aligned", "none"} {
		out := gen1(t, "cycle", "", 3, 2, 2, enc)
		d, err := db.Parse(out)
		if err != nil {
			t.Fatalf("cycle output not parseable: %v", err)
		}
		hasSk := len(d.FactsOf("S3")) > 0
		if (enc == "none") == hasSk {
			t.Errorf("encode=%s: S3 presence wrong", enc)
		}
	}
	q0 := gen1(t, "q0", "", 3, 1, 2, "aligned")
	d, err := db.Parse(q0)
	if err != nil || len(d.FactsOf("R0")) == 0 {
		t.Errorf("q0 output: %v", err)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct {
		kind, query, encode string
	}{
		{"", "", "aligned"},
		{"zzz", "", "aligned"},
		{"random", "", "aligned"},    // missing query
		{"random", "R(x", "aligned"}, // bad query
		{"cycle", "", "zzz"},         // bad encode
	}
	for _, c := range cases {
		if _, err := generate(c.kind, c.query, 1, 1, 2, 1, 3, 1, 1, c.encode, 2, 2); err == nil {
			t.Errorf("generate(%q,%q,%q) should fail", c.kind, c.query, c.encode)
		}
	}
}

// TestGenerateRoundTripsThroughSolver: generated output feeds certsolve's
// input path.
func TestGenerateRoundTripsThroughSolver(t *testing.T) {
	out := gen1(t, "cycle", "", 3, 1, 1, "all")
	d, err := db.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() == 0 {
		t.Error("empty generation")
	}
}
