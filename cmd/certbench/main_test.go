package main

import "testing"

// TestExperimentsQuickSmoke runs every experiment in quick mode; the
// experiments contain their own agreement assertions (panic via must on
// internal errors), so completing without panic is the test.
func TestExperimentsQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still run seconds of work")
	}
	ctx := &benchCtx{quick: true}
	for _, e := range []struct {
		name string
		run  func(*benchCtx)
	}{
		{"E1", runE1}, {"E2", runE2}, {"E3", runE3}, {"E4", runE4},
		{"E5", runE5}, {"E6", runE6}, {"E7", runE7}, {"E8", runE8},
		{"E9", runE9}, {"E10", runE10}, {"E11", runE11}, {"E12", runE12}, {"E13", runE13},
	} {
		e := e
		t.Run(e.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s panicked: %v", e.name, r)
				}
			}()
			e.run(ctx)
		})
	}
}

func TestHelpers(t *testing.T) {
	if got := splitLines("a\nb\n"); len(got) != 2 || got[0] != "a" {
		t.Errorf("splitLines = %v", got)
	}
	if got := splitLines("a"); len(got) != 1 {
		t.Errorf("splitLines without newline = %v", got)
	}
	if got := indent("x\ny\n"); got != "  x\n  y\n" {
		t.Errorf("indent = %q", got)
	}
	if got := ms(1500000); got != "1.500ms" {
		t.Errorf("ms = %q", got)
	}
}
