package main

import (
	"fmt"
	"math/big"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/reduction"
	"github.com/cqa-go/certainty/internal/solver"
)

// timed runs f and returns its duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000.0)
}

// runE1 reproduces Figure 1 and the introduction's discussion.
func runE1(ctx *benchCtx) {
	d := gen.ConferenceDB()
	q := cq.ConferenceQuery()
	fmt.Printf("database (Fig. 1):\n%s", indent(d.String()))
	fmt.Printf("query: %s  (\"Will Rome host some A conference?\")\n", q)
	fmt.Printf("blocks: %d, repairs: %v (paper: 4)\n", d.NumBlocks(), d.NumRepairs())
	sat := prob.CountSatisfyingRepairs(q, d)
	fmt.Printf("repairs satisfying q: %v of %v (paper: \"true in only three repairs\")\n",
		sat, d.NumRepairs())
	res, err := solver.SolveResult(q, d)
	must(err)
	fmt.Printf("certain: %v  via %s\n", res.Certain, res.Method)
	fmt.Printf("agrees with brute force: %v\n", res.Certain == solver.BruteForce(q, d))
	if rep, found := solver.FalsifyingRepair(q, d); found {
		fmt.Println("a falsifying repair:")
		for _, f := range rep {
			fmt.Printf("  %s\n", f)
		}
	}
}

// runE2 reproduces Examples 2–4 and Figure 2.
func runE2(ctx *benchCtx) {
	q := cq.Q1()
	fmt.Printf("q1 = %s\n", q)
	g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
	must(err)
	fmt.Printf("join tree: %s\n", g.Tree)
	fmt.Println("closures (Examples 2 and 4):")
	fmt.Printf("  %-4s %-12s %-16s %-16s\n", "atom", "key(F)", "F^{+,q1}", "F^{⊕,q1}")
	for i, a := range q.Atoms {
		fmt.Printf("  %-4s %-12s %-16s %-16s\n", a.Rel, a.KeyVars(), g.Plus(i), g.Full(i))
	}
	fmt.Println("attack graph (Figure 2 right):")
	for i := 0; i < g.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			if i != j && g.Attacks(i, j) {
				kind := "weak"
				if g.IsStrong(i, j) {
					kind = "strong"
				}
				fmt.Printf("  %s ↝ %s  (%s)\n", q.Atoms[i].Rel, q.Atoms[j].Rel, kind)
			}
		}
	}
	fmt.Println("cycles (Example 4):")
	for _, c := range g.Cycles() {
		names := make([]string, 0, len(c))
		for _, v := range c {
			names = append(names, q.Atoms[v].Rel)
		}
		kind := "weak"
		if g.CycleIsStrong(c) {
			kind = "strong"
		}
		fmt.Printf("  %v (%s)\n", names, kind)
	}
	// Paper ground truth.
	F, G := 0, 1
	ok := g.Attacks(G, F) && g.IsStrong(G, F) && g.HasStrongCycle()
	fmt.Printf("matches paper (G↝F is the unique strong attack; strong cycle exists): %v\n", ok)
	cls, err := core.Classify(q)
	must(err)
	fmt.Printf("classification: %s\n", cls.Class)
}

// runE3 exercises the Theorem 2 reduction and the coNP-side scaling.
func runE3(ctx *benchCtx) {
	q0 := cq.Q0()
	red, err := reduction.NewTheorem2(cq.Q1())
	must(err)
	fmt.Println("reduction CERTAINTY(q0) → CERTAINTY(q1) on random instances:")
	fmt.Printf("  %-6s %-10s %-12s %-10s %-10s %-8s\n",
		"blocks", "src-facts", "image-facts", "src-cert", "img-cert", "agree")
	sizes := []int{2, 3, 4}
	if ctx.quick {
		sizes = []int{2, 3}
	}
	for _, n := range sizes {
		d0 := gen.Q0DB(n, 2, 3, int64(n))
		img, err := red.Apply(d0)
		must(err)
		src := solver.BruteForce(q0, d0)
		dst := solver.BruteForce(cq.Q1(), img)
		fmt.Printf("  %-6d %-10d %-12d %-10v %-10v %-8v\n",
			n, d0.Len(), img.Len(), src, dst, src == dst)
	}

	fmt.Println("hard instances (Monotone 3SAT encoded into falsifying-repair search on q0):")
	fmt.Printf("  %-6s %-8s %-8s %-8s %-22s %-10s %-12s\n",
		"vars", "ratio", "clauses", "facts", "repairs", "certain", "time")
	ns := []int{8, 12, 16, 20, 24}
	if ctx.quick {
		ns = []int{8, 12}
	}
	for _, n := range ns {
		// Ratio 5 instances are satisfiable (falsifying repair found);
		// ratio 8 instances are unsatisfiable, so the search must prove
		// that no falsifying repair exists — the coNP-hard direction.
		for _, ratio := range []int{5, 8} {
			f := gen.RandomMonotoneSAT(n, ratio*n, 3, int64(n*100+ratio))
			d0 := gen.MonotoneSATQ0DB(f)
			var certain bool
			dur := timed(func() { certain = solver.CertainByFalsifying(q0, d0) })
			fmt.Printf("  %-6d %-8d %-8d %-8d %-22v %-10v %-12s\n",
				n, ratio, ratio*n, d0.Len(), d0.NumRepairs(), certain, ms(dur))
		}
	}
}

// runE4 measures the Theorem 3 algorithm against brute force.
func runE4(ctx *benchCtx) {
	q := cq.TerminalCyclesBaseQuery()
	fmt.Printf("query (Fig. 4 style, all cycles weak and terminal): %s\n", q)
	cls, err := core.Classify(q)
	must(err)
	fmt.Printf("classification: %s\n", cls.Class)
	fmt.Printf("  %-6s %-8s %-14s %-12s %-12s %-8s\n",
		"emb", "facts", "repairs", "thm3", "brute", "agree")
	sizes := []int{2, 4, 6, 8, 12}
	if ctx.quick {
		sizes = []int{2, 4}
	}
	for _, n := range sizes {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: 2, Domain: 2}, int64(n))
		var fast, slow bool
		fastT := timed(func() {
			var err error
			fast, err = solver.CertainTerminal(q, d)
			must(err)
		})
		slowS := "-"
		agree := "-"
		if d.NumRepairs().Cmp(big.NewInt(1_000_000)) <= 0 {
			slowT := timed(func() { slow = solver.BruteForce(q, d) })
			slowS = ms(slowT)
			agree = fmt.Sprintf("%v", fast == slow)
		}
		fmt.Printf("  %-6d %-8d %-14v %-12s %-12s %-8s\n",
			n, d.Len(), d.NumRepairs(), ms(fastT), slowS, agree)
	}
}

// runE5 reproduces Figures 5–7 and measures the AC(k) algorithm.
func runE5(ctx *benchCtx) {
	q := cq.ACk(3)
	g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
	must(err)
	fmt.Printf("AC(3) = %s\n", q)
	fmt.Printf("attack graph (Fig. 5): all weak: %v, nonterminal cycles: %v, strong cycle: %v\n",
		!g.HasStrongCycle(), !g.AllCyclesWeakAndTerminal(), g.HasStrongCycle())
	d := gen.Figure6DB()
	fmt.Printf("Fig. 6 database: %d facts, purified: %v\n", d.Len(), engine.IsPurified(q, d))
	shape, _ := core.MatchCycleShape(q, true)
	certain, err := solver.CertainACk(q, shape, d)
	must(err)
	fmt.Printf("certain: %v (paper, Fig. 7: falsifying repairs exist → false)\n", certain)
	fmt.Printf("agrees with brute force: %v\n", certain == solver.BruteForce(q, d))

	fmt.Println("scaling (CycleDB, all k-cycles encoded):")
	fmt.Printf("  %-4s %-6s %-8s %-8s %-14s %-12s %-10s\n",
		"k", "comps", "width", "facts", "repairs", "thm4", "certain")
	ks := []int{2, 3, 4}
	comps := []int{2, 8, 32}
	if ctx.quick {
		ks = []int{2, 3}
		comps = []int{2, 8}
	}
	for _, k := range ks {
		qk := cq.ACk(k)
		shapeK, _ := core.MatchCycleShape(qk, true)
		for _, c := range comps {
			dk := gen.CycleDB(gen.CycleConfig{K: k, Components: c, Width: 2, EncodeAll: true})
			var res bool
			dur := timed(func() {
				var err error
				res, err = solver.CertainACk(qk, shapeK, dk)
				must(err)
			})
			fmt.Printf("  %-4d %-6d %-8d %-8d %-14v %-12s %-10v\n",
				k, c, 2, dk.Len(), dk.NumRepairs(), ms(dur), res)
		}
	}
}

// runE6 compares the direct C(k) solver with the Lemma 9 reduction.
func runE6(ctx *benchCtx) {
	fmt.Printf("  %-4s %-8s %-10s %-10s %-10s %-12s %-12s\n",
		"k", "facts", "direct", "lemma9", "brute", "t-direct", "t-lemma9")
	ks := []int{2, 3}
	if !ctx.quick {
		ks = []int{2, 3, 4}
	}
	for _, k := range ks {
		q := cq.Ck(k)
		aq := cq.ACk(k)
		shape, _ := core.MatchCycleShape(q, false)
		shapeA, _ := core.MatchCycleShape(aq, true)
		d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 3}, int64(k))
		var direct, viaLemma bool
		tDirect := timed(func() {
			var err error
			direct, err = solver.CertainCk(q, shape, d)
			must(err)
		})
		tLemma := timed(func() {
			completed, err := reduction.Lemma9(aq, q, d)
			must(err)
			viaLemma, err = solver.CertainACk(aq, shapeA, completed)
			must(err)
		})
		bruteS := "-"
		if d.NumRepairs().Cmp(big.NewInt(1_000_000)) <= 0 {
			bruteS = fmt.Sprintf("%v", solver.BruteForce(q, d))
		}
		fmt.Printf("  %-4d %-8d %-10v %-10v %-10s %-12s %-12s\n",
			k, d.Len(), direct, viaLemma, bruteS, ms(tDirect), ms(tLemma))
	}
}

// runE7 exhibits certain first-order rewritings and their evaluation.
func runE7(ctx *benchCtx) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.ConferenceQuery(),
	}
	for _, q := range queries {
		phi, err := fo.RewriteAcyclic(q)
		must(err)
		fmt.Printf("q = %s\nφ = %s\n", q, phi)
	}
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	phi, err := fo.RewriteAcyclic(q)
	must(err)
	fmt.Println("evaluation scaling (rewriting vs direct recursion vs brute force):")
	fmt.Printf("  %-6s %-8s %-14s %-12s %-12s %-12s %-8s\n",
		"emb", "facts", "repairs", "fo-eval", "fo-rec", "brute", "agree")
	sizes := []int{5, 10, 20}
	if ctx.quick {
		sizes = []int{5}
	}
	for _, n := range sizes {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		var viaFormula, viaRec bool
		tF := timed(func() {
			var err error
			viaFormula, err = fo.Eval(phi, d)
			must(err)
		})
		tR := timed(func() {
			var err error
			viaRec, err = solver.CertainFO(q, d)
			must(err)
		})
		bruteS, agree := "-", fmt.Sprintf("%v", viaFormula == viaRec)
		if d.NumRepairs().Cmp(big.NewInt(200_000)) <= 0 {
			var brute bool
			tB := timed(func() { brute = solver.BruteForce(q, d) })
			bruteS = ms(tB)
			agree = fmt.Sprintf("%v", viaFormula == viaRec && viaRec == brute)
		}
		fmt.Printf("  %-6d %-8d %-14v %-12s %-12s %-12s %-8s\n",
			n, d.Len(), d.NumRepairs(), ms(tF), ms(tR), bruteS, agree)
	}
}

// runE8 charts safety against certainty and validates Proposition 1.
func runE8(ctx *benchCtx) {
	fmt.Println("safety vs CERTAINTY class (Theorem 6 / Corollary 2):")
	fmt.Printf("  %-34s %-7s %-44s %-22s\n", "query", "safe", "CERTAINTY class", "PROBABILITY")
	for _, q := range frontierCatalog() {
		safe := prob.IsSafe(q.q)
		cls := "-"
		if c, err := core.Classify(q.q); err == nil {
			cls = c.Class.String()
		}
		probClass := "♯P-hard (unsafe)"
		if safe {
			probClass = "FP (safe plan)"
		}
		fmt.Printf("  %-34s %-7v %-44s %-22s\n", q.name, safe, cls, probClass)
	}

	fmt.Println("safe-plan evaluation vs world enumeration (uniform BID):")
	q := cq.ConferenceQuery()
	fmt.Printf("  %-6s %-8s %-12s %-12s %-8s\n", "emb", "facts", "safe-plan", "worlds", "agree")
	sizes := []int{2, 4, 8}
	if ctx.quick {
		sizes = []int{2, 4}
	}
	for _, n := range sizes {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: 2, Domain: 3}, int64(n))
		p := prob.Uniform(d)
		var fast, slow *big.Rat
		tF := timed(func() {
			var err error
			fast, err = prob.Probability(q, p)
			must(err)
		})
		slowS, agree := "-", "-"
		if d.NumBlocks() <= 18 {
			tS := timed(func() { slow = prob.ProbabilityByWorlds(q, p) })
			slowS = ms(tS)
			agree = fmt.Sprintf("%v", fast.Cmp(slow) == 0)
		}
		fmt.Printf("  %-6d %-8d %-12s %-12s %-8s\n", n, d.Len(), ms(tF), slowS, agree)
	}

	fmt.Println("Proposition 1 on the Fig. 1 database:")
	d := gen.ConferenceDB()
	p := prob.Uniform(d)
	pr, err := prob.Probability(q, p)
	must(err)
	certain := solver.BruteForce(q, p.CertainSubset())
	fmt.Printf("  Pr(q) = %v; Pr(q) = 1: %v; db′ certain: %v; equivalent: %v\n",
		pr, pr.Cmp(big.NewRat(1, 1)) == 0, certain,
		(pr.Cmp(big.NewRat(1, 1)) == 0) == certain)
}

// runE9 measures repair counting.
func runE9(ctx *benchCtx) {
	// A constant-free safe query so generated facts collide on keys and
	// instances have many repairs.
	q := cq.MustParseQuery("R(x | y), S(x | z)")
	fmt.Printf("  %-6s %-8s %-14s %-14s %-12s %-12s %-8s\n",
		"emb", "facts", "repairs", "♯sat", "t-brute", "t-uniform", "agree")
	sizes := []int{4, 8, 12}
	if ctx.quick {
		sizes = []int{4, 8}
	}
	for _, n := range sizes {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: 2 + n/2}, int64(7*n))
		var uniform *big.Int
		tU := timed(func() {
			var err error
			uniform, err = prob.CountViaUniform(q, d)
			must(err)
		})
		bruteS, agree := "-", "-"
		if d.NumRepairs().Cmp(big.NewInt(100_000)) <= 0 {
			var brute *big.Int
			tB := timed(func() { brute = prob.CountSatisfyingRepairs(q, d) })
			bruteS = ms(tB)
			agree = fmt.Sprintf("%v", brute.Cmp(uniform) == 0)
		}
		fmt.Printf("  %-6d %-8d %-14v %-14v %-12s %-12s %-8s\n",
			n, d.Len(), d.NumRepairs(), uniform, bruteS, ms(tU), agree)
	}
}

type namedQuery struct {
	name string
	q    cq.Query
}

func frontierCatalog() []namedQuery {
	return []namedQuery{
		{"R(x|y)", cq.MustParseQuery("R(x | y)")},
		{"R(x|y), S(y|z)", cq.MustParseQuery("R(x | y), S(y | z)")},
		{"R(x|y), S(x|z)", cq.MustParseQuery("R(x | y), S(x | z)")},
		{"R(x|y), S(u|w)", cq.MustParseQuery("R(x | y), S(u | w)")},
		{"conference (Fig. 1)", cq.ConferenceQuery()},
		{"C(2)", cq.Ck(2)},
		{"C(3)", cq.Ck(3)},
		{"C(4)", cq.Ck(4)},
		{"AC(2)", cq.ACk(2)},
		{"AC(3)", cq.ACk(3)},
		{"AC(4)", cq.ACk(4)},
		{"terminal cycles (Fig. 4)", cq.TerminalCyclesQuery()},
		{"terminal base", cq.TerminalCyclesBaseQuery()},
		{"q0", cq.Q0()},
		{"q1 (Fig. 2)", cq.Q1()},
		{"R(x|y), S(y|x,z)", cq.MustParseQuery("R(x | y), S(y | x, z)")},
		{"R(x,y|z), S(y,z|x)", cq.MustParseQuery("R(x, y | z), S(y, z | x)")},
		{"R(x|y,z), S(y,z|w)", cq.MustParseQuery("R(x | y, z), S(y, z | w)")},
		{"open case (§6.2)", gen.OpenCaseQuery()},
		{"terminal pairs n=4", gen.TerminalPairsQuery(4, true)},
	}
}

// runE10 prints the frontier chart and cross-validates every dispatched
// solver against brute force on random instances.
func runE10(ctx *benchCtx) {
	fmt.Printf("  %-26s %-44s %-28s %-8s\n", "query", "CERTAINTY class", "method", "validated")
	seeds := int64(8)
	if ctx.quick {
		seeds = 3
	}
	for _, nq := range frontierCatalog() {
		cls, err := core.Classify(nq.q)
		if err != nil {
			fmt.Printf("  %-26s %-44s %-28s %-8s\n", nq.name, "unsupported", "-", "-")
			continue
		}
		validated := true
		var method solver.Method
		for seed := int64(0); seed < seeds; seed++ {
			d := gen.RandomDB(nq.q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, seed)
			res, err := solver.SolveResult(nq.q, d)
			must(err)
			method = res.Method
			if res.Certain != solver.BruteForce(nq.q, d) {
				validated = false
			}
		}
		fmt.Printf("  %-26s %-44s %-28s %-8v\n", nq.name, cls.Class, method, validated)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// runE11 probes the only case the paper leaves open: attack graphs with a
// weak nonterminal cycle, no strong cycle, and not AC(k). Conjecture 1
// holds CERTAINTY(q) to be in P; the exact search provides supporting
// evidence by deciding growing instances with sub-exponential effort.
func runE11(ctx *benchCtx) {
	q := gen.OpenCaseQuery()
	cls, err := core.Classify(q)
	must(err)
	fmt.Printf("q = %s\n", q)
	fmt.Printf("classification: %s\n", cls.Class)
	fmt.Printf("reason: %s\n", cls.Reason)
	fmt.Printf("  %-6s %-8s %-16s %-10s %-12s %-12s %-10s\n",
		"emb", "facts", "repairs", "certain", "search", "solve", "agree")
	sizes := []int{4, 8, 16, 32, 64}
	if ctx.quick {
		sizes = []int{4, 8}
	}
	var method string
	for _, n := range sizes {
		d := gen.RandomDB(q, gen.Config{Embeddings: n, Noise: n, Domain: 1 + n/2}, int64(n))
		var searchCert bool
		durSearch := timed(func() { searchCert = solver.CertainByFalsifying(q, d) })
		var res solver.Result
		durSolve := timed(func() {
			var err error
			res, err = solver.SolveResult(q, d)
			must(err)
		})
		method = res.Method.String()
		agree := fmt.Sprintf("%v", searchCert == res.Certain)
		if d.NumRepairs().Cmp(big.NewInt(200_000)) <= 0 {
			agree = fmt.Sprintf("%v", searchCert == res.Certain && res.Certain == solver.BruteForce(q, d))
		}
		fmt.Printf("  %-6d %-8d %-16v %-10v %-12s %-12s %-10s\n",
			n, d.Len(), d.NumRepairs(), res.Certain, ms(durSearch), ms(durSolve), agree)
	}
	fmt.Printf("Solve dispatches via projection simplification: %s\n", method)
	fmt.Println("(the private z-column of S projects away, leaving AC(2): polynomial, per Conjecture 1)")
}

// runE12 reports the design ablations DESIGN.md calls out.
func runE12(ctx *benchCtx) {
	fmt.Println("(a) falsifying search: fail-first dynamic vs static block ordering")
	fmt.Println("    (width-2 instances: static ordering is already orders of magnitude")
	fmt.Println("    slower here and does not terminate on the width-3 E3 instances)")
	fmt.Printf("  %-6s %-8s %-10s %-12s %-12s\n", "vars", "certain", "agree", "dynamic", "static")
	ns := []int{4, 6, 8}
	if ctx.quick {
		ns = []int{4}
	}
	q0 := cq.Q0()
	for _, n := range ns {
		f := gen.RandomMonotoneSAT(n, 3*n, 2, int64(n*100+3))
		d := gen.MonotoneSATQ0DB(f)
		var dynCert, statCert bool
		tD := timed(func() { _, found := solver.FalsifyingRepair(q0, d); dynCert = !found })
		tS := timed(func() { _, found := solver.FalsifyingRepairStatic(q0, d); statCert = !found })
		fmt.Printf("  %-6d %-8v %-10v %-12s %-12s\n", n, dynCert, dynCert == statCert, ms(tD), ms(tS))
	}

	fmt.Println("(b) purification (Lemma 1): cost and shrinkage on AC(3) workloads")
	fmt.Printf("  %-6s %-8s %-10s %-12s\n", "comps", "facts", "kept", "time")
	comps := []int{4, 16, 64}
	if ctx.quick {
		comps = []int{4, 16}
	}
	qa := cq.ACk(3)
	for _, c := range comps {
		d := gen.CycleDB(gen.CycleConfig{K: 3, Components: c, Width: 2, EncodeAll: true})
		// Add noise facts that purification must strip.
		noisy := d.Clone()
		for i := 0; i < c*3; i++ {
			must(noisy.Add(db.NewFact("R1", 1, fmt.Sprintf("junk%d", i), fmt.Sprintf("junk%d", i+1))))
		}
		var kept int
		dur := timed(func() { kept = engine.Purify(qa, noisy).Len() })
		fmt.Printf("  %-6d %-8d %-10d %-12s\n", c, noisy.Len(), kept, ms(dur))
	}

	fmt.Println("(c) C(k): direct algorithm vs Lemma 9 completion (see E6 for details)")
	k := 3
	q := cq.Ck(k)
	aq := cq.ACk(k)
	shape, _ := core.MatchCycleShape(q, false)
	shapeA, _ := core.MatchCycleShape(aq, true)
	d := gen.CycleDB(gen.CycleConfig{K: k, Components: 8, Width: 2, SkipSk: true})
	tDirect := timed(func() {
		_, err := solver.CertainCk(q, shape, d)
		must(err)
	})
	tLemma := timed(func() {
		completed, err := reduction.Lemma9(aq, q, d)
		must(err)
		_, err = solver.CertainACk(aq, shapeA, completed)
		must(err)
	})
	fmt.Printf("  direct: %s   lemma9 (materializes |D|^%d S%d facts): %s\n",
		ms(tDirect), k, k, ms(tLemma))
}

// runE13 prints the exhaustive two-atom dichotomy census: every two-atom
// query shape over arities ≤ 3 and three variables, classified by the
// effective method. The Kolaitis–Pema dichotomy (P vs coNP-complete, with
// the FO subclass refined by Theorem 1) emerges as an exact count, and —
// per the paper's remark before Theorem 3 — every attack cycle among them
// is terminal.
func runE13(ctx *benchCtx) {
	census := make(map[core.Class]int)
	total := 0
	nonterminal := 0
	dur := timed(func() {
		gen.EnumerateTwoAtomQueries(3, func(q cq.Query) {
			total++
			cls, err := core.Classify(q)
			must(err)
			census[cls.Class]++
			if g := cls.Graph; g != nil {
				for _, c := range g.Cycles() {
					if !g.CycleIsTerminal(c) {
						nonterminal++
					}
				}
			}
		})
	})
	fmt.Printf("shapes classified: %d (in %s)\n", total, ms(dur))
	fmt.Printf("  %-48s %s\n", "class", "count")
	for _, cl := range []core.Class{core.ClassFO, core.ClassPTimeTerminal, core.ClassCoNPComplete} {
		fmt.Printf("  %-48s %d\n", cl, census[cl])
	}
	fmt.Printf("nonterminal cycles found: %d (paper: two-atom cycles are always terminal)\n", nonterminal)
	fmt.Println("⇒ every two-atom query is in P or coNP-complete (Kolaitis–Pema, via Theorems 2+3)")
}
