package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"github.com/cqa-go/certainty/internal/fleet"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
)

// fleetEntry is one measurement of the fleet benchmark: batch throughput at
// a worker count, or the solve latency profile with hedging on or off
// against a deliberately slow replica.
type fleetEntry struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	Items       int     `json:"items,omitempty"`
	WallNs      int64   `json:"wall_ns,omitempty"`
	ItemsPerSec float64 `json:"items_per_sec,omitempty"`
	P50Ns       int64   `json:"p50_ns,omitempty"`
	P95Ns       int64   `json:"p95_ns,omitempty"`
	P99Ns       int64   `json:"p99_ns,omitempty"`
	Hedged      bool    `json:"hedged,omitempty"`
}

type fleetReport struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Cores     int          `json:"cores"`
	Quick     bool         `json:"quick"`
	Entries   []fleetEntry `json:"benchmarks"`
}

// benchWorker boots one in-process worker; slow > 0 adds a fixed handling
// delay to every request, standing in for an overloaded replica.
func benchWorker(slow time.Duration) *httptest.Server {
	h := server.New(server.Config{
		Registry: obs.NewRegistry(),
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
		// One solve slot per worker: the benchmark models each worker as a
		// small machine, so adding workers adds compute. On a host with
		// fewer cores than workers the 1→N curve flattens at the core
		// count — the report records cores for that reason.
		Workers:    1,
		QueueDepth: 256,
		// Repeated rounds replay the same items; without this the rounds
		// after warm-up would measure the verdict cache, not the fleet.
		VerdictCacheSize: -1,
	}).Handler()
	if slow > 0 {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(slow)
			inner.ServeHTTP(w, r)
		})
	}
	return httptest.NewServer(h)
}

// fleetBatch builds groups placement groups of perGroup items each, every
// group over its own relation pair so rendezvous placement spreads them.
// Each item carries factsPer R/S fact pairs with key-violating doubles, so
// the worker does real per-item work (parse, index, attack-graph solve) and
// the 1→N scaling measures compute spread, not connection overhead.
func fleetBatch(groups, perGroup, factsPer int) server.BatchSolveRequest {
	req := server.BatchSolveRequest{Stream: true}
	for g := 0; g < groups; g++ {
		query := fmt.Sprintf("R%02d(x | y), S%02d(y | x)", g, g)
		for i := 0; i < perGroup; i++ {
			var db bytes.Buffer
			for f := 0; f < factsPer; f++ {
				fmt.Fprintf(&db, "R%02d(a%d | b%d_%d), R%02d(a%d | c%d_%d), S%02d(b%d_%d | a%d), S%02d(c%d_%d | x%d), ",
					g, f, f, i, g, f, f, i, g, f, i, f, g, f, i, f)
			}
			req.Items = append(req.Items, server.BatchSolveItem{
				Query: query,
				DB:    db.String()[:db.Len()-2],
			})
		}
	}
	return req
}

// postCoordinator runs one request through the coordinator handler.
func postCoordinator(c *fleet.Coordinator, path string, body any) (int, string, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String(), nil
}

// runFleetJSON measures (1) batch throughput through the coordinator as the
// fleet grows 1→N workers — the scaling the shard-aware group splitting is
// for — and (2) the sequential-solve latency profile against a fleet with
// one slow replica, hedged vs unhedged: the hedge turns the slow replica's
// delay from a p50 event on its keys into nothing, at the cost of duplicate
// work. Writes the machine-readable report to path.
func runFleetJSON(path string, quick bool) error {
	report := fleetReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.NumCPU(),
		Quick:     quick,
	}
	groups, perGroup, factsPer, rounds := 8, 8, 120, 5
	if quick {
		groups, perGroup, factsPer, rounds = 4, 4, 40, 2
	}

	// Throughput 1→N: the same batch against coordinators over growing
	// prefixes of the same worker pool.
	var workers []*httptest.Server
	for i := 0; i < 4; i++ {
		workers = append(workers, benchWorker(0))
	}
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	batch := fleetBatch(groups, perGroup, factsPer)
	for _, n := range []int{1, 2, 4} {
		urls := make([]string, n)
		for i := 0; i < n; i++ {
			urls[i] = workers[i].URL
		}
		c := fleet.New(fleet.Config{
			Backends:   urls,
			Registry:   obs.NewRegistry(),
			GroupSplit: 4,
		})
		// One warm-up round (connection setup, verdict-cache misses), then
		// the timed rounds.
		if code, body, err := postCoordinator(c, "/v1/solve/batch", batch); err != nil || code != http.StatusOK {
			c.Close()
			return fmt.Errorf("fleet batch warm-up with %d workers: HTTP %d: %s (%v)", n, code, body, err)
		}
		start := time.Now()
		for r := 0; r < rounds; r++ {
			if code, body, err := postCoordinator(c, "/v1/solve/batch", batch); err != nil || code != http.StatusOK {
				c.Close()
				return fmt.Errorf("fleet batch with %d workers: HTTP %d: %s (%v)", n, code, body, err)
			}
		}
		wall := time.Since(start)
		c.Close()
		items := rounds * len(batch.Items)
		e := fleetEntry{
			Name:        fmt.Sprintf("fleet/batch/workers=%d", n),
			Workers:     n,
			Items:       items,
			WallNs:      wall.Nanoseconds(),
			ItemsPerSec: float64(items) / wall.Seconds(),
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("  %-28s %6d items in %10v  %10.0f items/s\n", e.Name, items, wall, e.ItemsPerSec)
	}

	// Hedged vs unhedged p99 with one slow replica. Many distinct keys so
	// roughly half place their primary on the slow worker; without hedging
	// those requests eat the full delay, with hedging the fast replica's
	// verdict wins after the hedge delay.
	slowDelay := 20 * time.Millisecond
	nSolves := 120
	if quick {
		nSolves = 40
	}
	slow := benchWorker(slowDelay)
	defer slow.Close()
	fast := benchWorker(0)
	defer fast.Close()
	for _, hedged := range []bool{false, true} {
		c := fleet.New(fleet.Config{
			Backends:      []string{slow.URL, fast.URL},
			Registry:      obs.NewRegistry(),
			HedgeDisabled: !hedged,
			HedgeMinDelay: 2 * time.Millisecond,
			HedgeMaxDelay: 5 * time.Millisecond,
		})
		h := obs.NewHistogram(perfBuckets())
		for i := 0; i < nSolves; i++ {
			req := server.SolveRequest{
				Query: fmt.Sprintf("H%03d(x | y)", i),
				DB:    fmt.Sprintf("H%03d(a | b), H%03d(a | c)", i, i),
			}
			start := time.Now()
			code, body, err := postCoordinator(c, "/v1/solve", req)
			if err != nil || code != http.StatusOK {
				c.Close()
				return fmt.Errorf("hedge bench solve %d: HTTP %d: %s (%v)", i, code, body, err)
			}
			h.Observe(time.Since(start).Seconds())
		}
		c.Close()
		e := fleetEntry{
			Name:    fmt.Sprintf("fleet/solve/hedged=%v", hedged),
			Workers: 2,
			Items:   nSolves,
			Hedged:  hedged,
			P50Ns:   quantileNs(h, 0.50),
			P95Ns:   quantileNs(h, 0.95),
			P99Ns:   quantileNs(h, 0.99),
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("  %-28s %6d solves  p50=%v p95=%v p99=%v\n", e.Name, nSolves,
			time.Duration(e.P50Ns), time.Duration(e.P95Ns), time.Duration(e.P99Ns))
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(report.Entries))
	return nil
}
