package main

import (
	"context"
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
)

// runTraceDemo solves one representative instance per paper family with
// tracing on and prints each span tree: which phases ran, in what nesting,
// and where the time went. The coNP case runs twice — once unbounded on a
// small instance (exact falsifying search) and once budget-cut on a larger
// one, so the degrade/sample phase shows up too.
func runTraceDemo(quick bool) error {
	n := 32
	if quick {
		n = 8
	}
	termQ := gen.TerminalPairsQuery(2, true)
	ackQ := cq.ACk(3)
	demos := []struct {
		name string
		q    cq.Query
		d    *db.DB
		opts solver.Options
	}{
		{"fo (Theorem 1)", cq.MustParseQuery("R(x | y), S(y | z)"),
			gen.RandomDB(cq.MustParseQuery("R(x | y), S(y | z)"), gen.Config{Embeddings: n, Noise: n, Domain: n}, 1),
			solver.Options{}},
		{"terminal (Theorem 3)", termQ,
			gen.RandomDB(termQ, gen.Config{Embeddings: 4, Noise: 2, Domain: 3}, 1),
			solver.Options{}},
		{"ack (Theorem 4)", ackQ,
			gen.CycleDB(gen.CycleConfig{K: 3, Components: n, Width: 2, EncodeAll: true}),
			solver.Options{}},
		{"conp exact (Theorem 2)", cq.Q0(), gen.Q0DB(n, 2, n, 1), solver.Options{}},
		{"conp cutoff + degrade", cq.Q0(),
			gen.MonotoneSATQ0DB(gen.RandomMonotoneSAT(3*n, 15*n, 3, 1)),
			solver.Options{Budget: 10, DegradeSamples: 64, SampleSeed: 1}},
	}
	for _, demo := range demos {
		tr := obs.NewTracer(obs.TracerOptions{})
		ctx := obs.WithTracer(context.Background(), tr)
		v, err := solver.SolveCtx(ctx, demo.q, demo.d, demo.opts)
		if err != nil {
			return fmt.Errorf("%s: %w", demo.name, err)
		}
		fmt.Printf("---- %s: outcome=%s ----\n", demo.name, v.Outcome)
		fmt.Print(obs.FormatTree(tr.Snapshot()))
		fmt.Println()
	}
	return nil
}
