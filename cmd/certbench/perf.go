package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/solver"
)

// perfEntry is one (method, variant, scale) measurement of the performance
// baseline matrix. Variants come in pairs — "seed" measures the pre-index
// code path retained as a baseline, "indexed" the production path — so the
// file records the speedup each optimization layer bought and gives future
// PRs a trajectory to beat.
type perfEntry struct {
	Name      string  `json:"name"`
	Method    string  `json:"method"`
	Variant   string  `json:"variant"`
	Scale     int     `json:"scale"`
	NsPerOp   int64   `json:"ns_per_op"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	SpeedupVs string  `json:"speedup_vs,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

type perfReport struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	Quick     bool        `json:"quick"`
	Entries   []perfEntry `json:"benchmarks"`
}

// measure runs fn under testing.Benchmark and extracts ns/op and allocs/op.
func measure(name, method, variant string, scale int, fn func(b *testing.B)) perfEntry {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return perfEntry{
		Name:     name,
		Method:   method,
		Variant:  variant,
		Scale:    scale,
		NsPerOp:  r.NsPerOp(),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}
}

// pairSpeedup annotates the indexed entry of a seed/indexed pair.
func pairSpeedup(seed, indexed perfEntry) perfEntry {
	indexed.SpeedupVs = seed.Name
	if indexed.NsPerOp > 0 {
		indexed.Speedup = float64(seed.NsPerOp) / float64(indexed.NsPerOp)
	}
	return indexed
}

// runPerfJSON runs the PR 3 performance matrix — FO rewriting (seed vs
// indexed+compiled), Terminal, AC(k) (sequential vs parallel), the
// falsifying search, and end-to-end Solve (per-call vs compiled plan) at
// three database scales each — and writes the machine-readable report.
func runPerfJSON(path string, quick bool) error {
	scales := []int{8, 32, 128}
	satVars := []int{6, 9, 12}
	comps := []int{8, 32, 128}
	if quick {
		scales = []int{4, 8, 16}
		satVars = []int{4, 6, 8}
		comps = []int{4, 8, 16}
	}
	report := perfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	add := func(e perfEntry) {
		report.Entries = append(report.Entries, e)
		fmt.Printf("  %-28s scale=%-4d %12d ns/op %8d allocs/op %10d B/op\n",
			e.Name, e.Scale, e.NsPerOp, e.AllocsOp, e.BytesOp)
	}

	// FO rewriting: the seed path re-derives block lists per recursive step
	// and memoizes shape keys lazily; the indexed path runs the compiled
	// program over the memoized block index with pooled valuations.
	foQ := cq.MustParseQuery("R(x | y), S(y | z)")
	for _, n := range scales {
		d := gen.RandomDB(foQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest() // build the index outside the timed region, as a server would
		seed := measure(fmt.Sprintf("fo/seed/emb=%d", n), "fo", "seed", n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainFOBaseline(foQ, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		prog, err := solver.CompileFO(foQ)
		if err != nil {
			return err
		}
		indexed := measure(fmt.Sprintf("fo/indexed/emb=%d", n), "fo", "indexed", n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Certain(foQ, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(seed)
		add(pairSpeedup(seed, indexed))
	}

	// Terminal weak cycles (Theorem 3).
	termQ := gen.TerminalPairsQuery(2, true)
	for _, n := range scales {
		emb := n / 4
		if emb < 1 {
			emb = 1
		}
		d := gen.RandomDB(termQ, gen.Config{Embeddings: emb, Noise: 2, Domain: 3}, int64(n))
		d.Digest()
		add(measure(fmt.Sprintf("terminal/indexed/emb=%d", emb), "terminal", "indexed", emb, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainTerminal(termQ, d); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// AC(k) graph marking, sequential vs parallel fan-out.
	ackQ := cq.ACk(3)
	shape, ok := core.MatchCycleShape(ackQ, true)
	if !ok {
		return fmt.Errorf("AC(3) shape match failed")
	}
	for _, c := range comps {
		d := gen.CycleDB(gen.CycleConfig{K: 3, Components: c, Width: 2, EncodeAll: true})
		d.Digest()
		seq := measure(fmt.Sprintf("ack/seq/comps=%d", c), "ack", "seq", c, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainACk(ackQ, shape, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		par := measure(fmt.Sprintf("ack/par/comps=%d", c), "ack", "par", c, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.CertainACkParallel(ackQ, shape, d, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(seq)
		add(pairSpeedup(seq, par))
	}

	// Falsifying-repair search on Monotone-SAT-encoded q0 instances.
	falsQ := cq.Q0()
	for _, v := range satVars {
		f := gen.RandomMonotoneSAT(v, 5*v, 3, int64(100*v))
		d := gen.MonotoneSATQ0DB(f)
		d.Digest()
		add(measure(fmt.Sprintf("falsifying/indexed/vars=%d", v), "falsifying", "indexed", v, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solver.CertainByFalsifying(falsQ, d)
			}
		}))
	}

	// End-to-end Solve: per-call classification vs the compiled plan.
	for _, n := range scales {
		d := gen.RandomDB(foQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest()
		seed := measure(fmt.Sprintf("solve/per-call/emb=%d", n), "solve", "seed", n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.Solve(foQ, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		p, err := solver.CompilePlan(foQ)
		if err != nil {
			return err
		}
		planned := measure(fmt.Sprintf("solve/plan/emb=%d", n), "solve", "plan", n, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Solve(d); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(seed)
		add(pairSpeedup(seed, planned))
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(report.Entries))
	return nil
}
