package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/solver"
)

// perfEntry is one (method, variant, scale) measurement of the performance
// baseline matrix. Variants come in pairs — "seed" measures the pre-index
// code path retained as a baseline, "indexed" the production path — so the
// file records the speedup each optimization layer bought and gives future
// PRs a trajectory to beat. Alongside the ns/op mean, each entry reports
// p50/p95/p99 per-op latency from an internal/obs histogram: tail latency is
// what the serving layer's deadlines actually meet, and a mean alone hides
// it.
type perfEntry struct {
	Name      string  `json:"name"`
	Method    string  `json:"method"`
	Variant   string  `json:"variant"`
	Scale     int     `json:"scale"`
	NsPerOp   int64   `json:"ns_per_op"`
	P50Ns     int64   `json:"p50_ns"`
	P95Ns     int64   `json:"p95_ns"`
	P99Ns     int64   `json:"p99_ns"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	SpeedupVs string  `json:"speedup_vs,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

type perfReport struct {
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	Quick     bool         `json:"quick"`
	Entries   []perfEntry  `json:"benchmarks"`
	Summary   *perfSummary `json:"summary,omitempty"`
}

// perfSummary compares this run against a previous baseline report
// (certbench -json NEW -baseline OLD): for every benchmark name present in
// both files it records baseline_ns / current_ns, so a PR's report carries
// its own before/after story instead of requiring the reader to diff two
// JSON files by hand.
type perfSummary struct {
	Baseline string             `json:"baseline"`
	Compared int                `json:"compared"`
	Geomean  float64            `json:"geomean_speedup"`
	Speedups map[string]float64 `json:"speedups"`
}

// summarize loads the baseline report and computes per-name speedups for
// the intersection of benchmark names.
func summarize(baselinePath string, entries []perfEntry) (*perfSummary, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseNs := make(map[string]int64, len(base.Entries))
	for _, e := range base.Entries {
		baseNs[e.Name] = e.NsPerOp
	}
	s := &perfSummary{Baseline: baselinePath, Speedups: map[string]float64{}}
	logSum := 0.0
	for _, e := range entries {
		b, ok := baseNs[e.Name]
		if !ok || b <= 0 || e.NsPerOp <= 0 {
			continue
		}
		sp := float64(b) / float64(e.NsPerOp)
		s.Speedups[e.Name] = sp
		logSum += math.Log(sp)
		s.Compared++
	}
	if s.Compared > 0 {
		s.Geomean = math.Exp(logSum / float64(s.Compared))
	}
	return s, nil
}

// checkSpeedupRegressions is the CI gate: every within-run pair speedup
// recorded in both this run and the baseline report must not have shrunk by
// more than pct percent. Pair speedups compare two code paths measured
// seconds apart on the same machine, so — unlike raw ns/op — they are
// stable across hardware and make an honest cross-run gate.
func checkSpeedupRegressions(baselinePath string, entries []perfEntry, pct float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseSp := make(map[string]float64, len(base.Entries))
	for _, e := range base.Entries {
		if e.Speedup > 0 {
			baseSp[e.Name] = e.Speedup
		}
	}
	var regressed []string
	checked := 0
	for _, e := range entries {
		b, ok := baseSp[e.Name]
		if !ok || e.Speedup <= 0 {
			continue
		}
		checked++
		if e.Speedup < b*(1-pct/100) {
			regressed = append(regressed,
				fmt.Sprintf("%s: pair speedup %.2fx, baseline %.2fx", e.Name, e.Speedup, b))
		}
	}
	fmt.Printf("  regression gate: %d pair speedups checked against %s at -%.0f%%\n", checked, baselinePath, pct)
	if len(regressed) > 0 {
		return fmt.Errorf("pair speedups regressed more than %.0f%% vs %s:\n  %s",
			pct, baselinePath, strings.Join(regressed, "\n  "))
	}
	return nil
}

// perfBuckets is a 1-2-5 series from 100ns to 10s: three edges per decade,
// so interpolated percentiles resolve within a factor of ~2 instead of the
// full decade obs.DefBuckets would give. The serving layer keeps the coarse
// fixed buckets (exposition stability matters there); this histogram is
// local to one certbench run, so finer edges cost nothing.
func perfBuckets() []float64 {
	var edges []float64
	for e := -7; e <= 0; e++ {
		d := math.Pow(10, float64(e))
		edges = append(edges, 1*d, 2*d, 5*d)
	}
	return append(edges, 10)
}

// measure benchmarks one operation: testing.Benchmark supplies the mean
// (ns/op, allocs/op), then a separate sampling pass times individual ops
// into an obs histogram for the percentile columns. The passes are distinct
// so the per-op clock reads never perturb the mean the speedup pairs
// compare.
func measure(name, method, variant string, scale int, op func() error) (perfEntry, error) {
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return perfEntry{}, fmt.Errorf("%s: %w", name, benchErr)
	}
	h := obs.NewHistogram(perfBuckets())
	samples := r.N
	if samples > 2000 {
		samples = 2000
	}
	if samples < 50 {
		samples = 50
	}
	for i := 0; i < samples; i++ {
		start := time.Now()
		if err := op(); err != nil {
			return perfEntry{}, fmt.Errorf("%s: %w", name, err)
		}
		h.Observe(time.Since(start).Seconds())
	}
	return perfEntry{
		Name:     name,
		Method:   method,
		Variant:  variant,
		Scale:    scale,
		NsPerOp:  r.NsPerOp(),
		P50Ns:    quantileNs(h, 0.50),
		P95Ns:    quantileNs(h, 0.95),
		P99Ns:    quantileNs(h, 0.99),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}, nil
}

// quantileNs reads a histogram quantile in nanoseconds (0 when empty).
func quantileNs(h *obs.Histogram, p float64) int64 {
	q := h.Quantile(p)
	if math.IsNaN(q) {
		return 0
	}
	return int64(q * 1e9)
}

// pairSpeedup annotates the indexed entry of a seed/indexed pair.
func pairSpeedup(seed, indexed perfEntry) perfEntry {
	indexed.SpeedupVs = seed.Name
	if indexed.NsPerOp > 0 {
		indexed.Speedup = float64(seed.NsPerOp) / float64(indexed.NsPerOp)
	}
	return indexed
}

// chainComponentsDB builds an instance for the FO join query
// R(x | y), S(y | z) whose fact co-occurrence graph has exactly comps
// connected components: component i contributes the block R(a_i | b_i,
// b_i') and the block S(b_i | c_i, c_i') over constants private to i. Per
// component there are 4 repairs of which 2 satisfy the query (those where
// the R block keeps b_i), so the instance is not certain, the total repair
// count is 4^comps, and monolithic repair enumeration is exponential in
// comps while the shard decomposition solves comps independent 4-repair
// sub-instances.
func chainComponentsDB(comps int) *db.DB {
	facts := make([]db.Fact, 0, 4*comps)
	for i := 0; i < comps; i++ {
		a, b, b2 := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i), fmt.Sprintf("b%d'", i)
		c, c2 := fmt.Sprintf("c%d", i), fmt.Sprintf("c%d'", i)
		facts = append(facts,
			db.Fact{Rel: "R", KeyLen: 1, Args: []string{a, b}},
			db.Fact{Rel: "R", KeyLen: 1, Args: []string{a, b2}},
			db.Fact{Rel: "S", KeyLen: 1, Args: []string{b, c}},
			db.Fact{Rel: "S", KeyLen: 1, Args: []string{b, c2}},
		)
	}
	return db.MustFromFacts(facts...)
}

// deltaComponentsDB builds a wider variant of chainComponentsDB for the
// delta re-solve pairs: component i contributes the R block {R(a_i | b_i),
// R(a_i | x_i)} plus S blocks of `width` facts under both b_i and x_i, so
// every shard holds 2·width² repairs and counting one shard is real work
// (the delta pair's full side must be dominated by per-shard counting, not
// by the decomposition both sides share).
func deltaComponentsDB(comps, width int) *db.DB {
	facts := make([]db.Fact, 0, comps*(2+2*width))
	for i := 0; i < comps; i++ {
		a, b, x := fmt.Sprintf("da%d", i), fmt.Sprintf("db%d", i), fmt.Sprintf("dx%d", i)
		facts = append(facts,
			db.Fact{Rel: "R", KeyLen: 1, Args: []string{a, b}},
			db.Fact{Rel: "R", KeyLen: 1, Args: []string{a, x}},
		)
		for j := 0; j < width; j++ {
			facts = append(facts,
				db.Fact{Rel: "S", KeyLen: 1, Args: []string{b, fmt.Sprintf("dc%d_%d", i, j)}},
				db.Fact{Rel: "S", KeyLen: 1, Args: []string{x, fmt.Sprintf("de%d_%d", i, j)}},
			)
		}
	}
	return db.MustFromFacts(facts...)
}

// runPerfJSON runs the performance matrix — FO rewriting (seed vs
// indexed+compiled vs interned), embedding enumeration (string-indexed vs
// interned), Terminal, AC(k) (sequential vs parallel), the falsifying
// search, end-to-end Solve (per-call vs compiled plan), component-sharded
// counting/probability/solving (monolithic vs 8-way shard decomposition),
// batch serving (per-call loop vs memoized SolveBatch), and delta re-solve
// (mutate one block, then full sharded recompute vs block-granular memoized
// recompute for counting, probability, and the decision) — and writes the
// machine-readable report. With a baseline file, the report also carries a
// per-name speedup summary against it; with failRegressPct > 0 it fails if
// any within-run pair speedup regressed by more than that percentage
// against the baseline's recorded pair speedup.
func runPerfJSON(path, baseline string, quick bool, failRegressPct float64) error {
	scales := []int{8, 32, 128}
	satVars := []int{6, 9, 12}
	comps := []int{8, 32, 128}
	if quick {
		scales = []int{4, 8, 16}
		satVars = []int{4, 6, 8}
		comps = []int{4, 8, 16}
	}
	report := perfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	add := func(e perfEntry) {
		report.Entries = append(report.Entries, e)
		fmt.Printf("  %-28s scale=%-4d %12d ns/op  p50=%d p95=%d p99=%d ns %8d allocs/op %10d B/op\n",
			e.Name, e.Scale, e.NsPerOp, e.P50Ns, e.P95Ns, e.P99Ns, e.AllocsOp, e.BytesOp)
	}

	// FO rewriting triple: the seed path re-derives block lists per
	// recursive step and memoizes shape keys lazily; the indexed path runs
	// the compiled program over the memoized block index with pooled
	// valuations; the interned path runs the same schedule over dense
	// uint32 ids and block-offset arrays with a pooled slot environment
	// (zero allocations on a warm run).
	foQ := cq.MustParseQuery("R(x | y), S(y | z)")
	for _, n := range scales {
		d := gen.RandomDB(foQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest()   // build the index outside the timed region, as a server would
		d.Interned() // likewise the columnar view
		seed, err := measure(fmt.Sprintf("fo/seed/emb=%d", n), "fo", "seed", n, func() error {
			_, err := solver.CertainFOBaseline(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		prog, err := solver.CompileFO(foQ)
		if err != nil {
			return err
		}
		indexed, err := measure(fmt.Sprintf("fo/indexed/emb=%d", n), "fo", "indexed", n, func() error {
			_, err := prog.CertainIndexed(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		interned, err := measure(fmt.Sprintf("fo/interned/emb=%d", n), "fo", "interned", n, func() error {
			_, err := prog.Certain(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		add(seed)
		indexed = pairSpeedup(seed, indexed)
		add(indexed)
		add(pairSpeedup(indexed, interned))
	}

	// Embedding enumeration: the engine's search on the string-indexed
	// plane (map valuations, per-fact posting lists) vs the interned plane
	// (posting intersection over uint32 fact indices, slot environments).
	engQ := cq.MustParseQuery("R(x | y), S(y | z), T(z | w)")
	for _, n := range scales {
		d := gen.RandomDB(engQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest()
		d.Interned()
		countAll := func(each func(cq.Query, *db.DB, func(cq.Valuation) bool) bool) func() error {
			return func() error {
				each(engQ, d, func(cq.Valuation) bool { return true })
				return nil
			}
		}
		indexed, err := measure(fmt.Sprintf("engine/indexed/emb=%d", n), "engine", "indexed", n,
			countAll(engine.EachEmbeddingIndexed))
		if err != nil {
			return err
		}
		interned, err := measure(fmt.Sprintf("engine/interned/emb=%d", n), "engine", "interned", n,
			countAll(engine.EachEmbedding))
		if err != nil {
			return err
		}
		add(indexed)
		add(pairSpeedup(indexed, interned))
	}

	// Terminal weak cycles (Theorem 3).
	termQ := gen.TerminalPairsQuery(2, true)
	for _, n := range scales {
		emb := n / 4
		if emb < 1 {
			emb = 1
		}
		d := gen.RandomDB(termQ, gen.Config{Embeddings: emb, Noise: 2, Domain: 3}, int64(n))
		d.Digest()
		e, err := measure(fmt.Sprintf("terminal/indexed/emb=%d", emb), "terminal", "indexed", emb, func() error {
			_, err := solver.CertainTerminal(termQ, d)
			return err
		})
		if err != nil {
			return err
		}
		add(e)
	}

	// AC(k) graph marking, sequential vs parallel fan-out.
	ackQ := cq.ACk(3)
	shape, ok := core.MatchCycleShape(ackQ, true)
	if !ok {
		return fmt.Errorf("AC(3) shape match failed")
	}
	for _, c := range comps {
		d := gen.CycleDB(gen.CycleConfig{K: 3, Components: c, Width: 2, EncodeAll: true})
		d.Digest()
		seq, err := measure(fmt.Sprintf("ack/seq/comps=%d", c), "ack", "seq", c, func() error {
			_, err := solver.CertainACk(ackQ, shape, d)
			return err
		})
		if err != nil {
			return err
		}
		par, err := measure(fmt.Sprintf("ack/par/comps=%d", c), "ack", "par", c, func() error {
			_, err := solver.CertainACkParallel(ackQ, shape, d, 0)
			return err
		})
		if err != nil {
			return err
		}
		add(seq)
		add(pairSpeedup(seq, par))
	}

	// Falsifying-repair search on Monotone-SAT-encoded q0 instances.
	falsQ := cq.Q0()
	for _, v := range satVars {
		f := gen.RandomMonotoneSAT(v, 5*v, 3, int64(100*v))
		d := gen.MonotoneSATQ0DB(f)
		d.Digest()
		e, err := measure(fmt.Sprintf("falsifying/indexed/vars=%d", v), "falsifying", "indexed", v, func() error {
			solver.CertainByFalsifying(falsQ, d)
			return nil
		})
		if err != nil {
			return err
		}
		add(e)
	}

	// End-to-end Solve: per-call classification vs the compiled plan.
	for _, n := range scales {
		d := gen.RandomDB(foQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest()
		seed, err := measure(fmt.Sprintf("solve/per-call/emb=%d", n), "solve", "seed", n, func() error {
			_, err := solver.SolveResult(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		p, err := solver.CompilePlan(foQ)
		if err != nil {
			return err
		}
		planned, err := measure(fmt.Sprintf("solve/plan/emb=%d", n), "solve", "plan", n, func() error {
			_, err := p.Solve(d)
			return err
		})
		if err != nil {
			return err
		}
		add(seed)
		add(pairSpeedup(seed, planned))
	}

	// Component-sharded ♯CERTAINTY and PROBABILITY (§7): monolithic repair
	// enumeration visits 4^comps repairs; the shard decomposition visits
	// comps independent 4-repair sub-instances and combines with the exact
	// product algebra. The speedup is algorithmic (sum of shard spaces
	// instead of their product), on top of the worker-pool parallelism.
	shardComps := []int{4, 6, 8}
	if quick {
		shardComps = []int{2, 3, 4}
	}
	const shardWorkers = 8
	for _, c := range shardComps {
		d := chainComponentsDB(c)
		d.Digest()
		mono, err := measure(fmt.Sprintf("count/mono/comps=%d", c), "count", "mono", c, func() error {
			prob.CountSatisfyingRepairs(foQ, d)
			return nil
		})
		if err != nil {
			return err
		}
		sharded, err := measure(fmt.Sprintf("count/sharded/comps=%d", c), "count", "sharded", c, func() error {
			prob.CountSatisfyingSharded(foQ, d, shardWorkers)
			return nil
		})
		if err != nil {
			return err
		}
		add(mono)
		add(pairSpeedup(mono, sharded))
	}
	{
		c := shardComps[len(shardComps)-1]
		d := chainComponentsDB(c)
		d.Digest()
		mono, err := measure(fmt.Sprintf("prob/mono/comps=%d", c), "prob", "mono", c, func() error {
			prob.UniformProbability(foQ, d)
			return nil
		})
		if err != nil {
			return err
		}
		sharded, err := measure(fmt.Sprintf("prob/sharded/comps=%d", c), "prob", "sharded", c, func() error {
			prob.UniformProbabilitySharded(foQ, d, shardWorkers)
			return nil
		})
		if err != nil {
			return err
		}
		add(mono)
		add(pairSpeedup(mono, sharded))
	}

	// End-to-end sharded decision on the same multi-component instances:
	// records what the shard machinery costs (or buys) for a query whose
	// monolithic method is already polynomial — the honest overhead number
	// next to the exponential counting win above.
	{
		c := shardComps[len(shardComps)-1]
		d := chainComponentsDB(c)
		d.Digest()
		mono, err := measure(fmt.Sprintf("solve/mono/comps=%d", c), "solve", "mono", c, func() error {
			_, err := solver.SolveCtx(context.Background(), foQ, d, solver.Options{})
			return err
		})
		if err != nil {
			return err
		}
		sharded, err := measure(fmt.Sprintf("solve/sharded/comps=%d", c), "solve", "sharded", c, func() error {
			_, err := solver.Solve(context.Background(), foQ, d, solver.WithShards(shardWorkers))
			return err
		})
		if err != nil {
			return err
		}
		add(mono)
		add(pairSpeedup(mono, sharded))
	}

	// Batch serving: a loop of independent SolveCtx calls re-classifies the
	// query per item; SolveBatch memoizes the compiled plan per canonical
	// query and fans items out on the worker pool.
	batchSizes := []int{32, 128}
	if quick {
		batchSizes = []int{8, 16}
	}
	for _, n := range batchSizes {
		items := make([]solver.BatchItem, n)
		for i := range items {
			d := gen.RandomDB(foQ, gen.Config{Embeddings: 8, Noise: 8, Domain: 8}, int64(i+1))
			d.Digest()
			items[i] = solver.BatchItem{Query: foQ, DB: d}
		}
		loop, err := measure(fmt.Sprintf("batch/loop/items=%d", n), "batch", "loop", n, func() error {
			for _, it := range items {
				if _, err := solver.SolveCtx(context.Background(), it.Query, it.DB, solver.Options{}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		memo, err := measure(fmt.Sprintf("batch/memo/items=%d", n), "batch", "memo", n, func() error {
			for _, r := range solver.SolveBatch(context.Background(), items) {
				if r.Err != nil {
					return r.Err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		add(loop)
		add(pairSpeedup(loop, memo))
	}

	// Delta re-solve: every pair measures "mutate one block, then re-answer".
	// The full side re-solves the post-mutation snapshot from scratch; the
	// delta side invalidates the covering memo entries and recomputes only
	// the touched shard, reusing every other shard's memoized result. Both
	// sides use maxShards=0 (finest partition, one shard per co-occurrence
	// group) and run with the worker pool pinned to one slot: the pair must
	// record the work the memo *skipped*, and that ratio is only
	// hardware-independent (gateable) if the full side cannot hide its extra
	// shards behind the host's core count. The parallelism win is already
	// recorded by the mono/sharded pairs above. Quick mode starts at 8
	// components because the 4-component ratio is structurally capped near
	// 4x (only 4 shards to skip) and sits too close to the regression gate's
	// tolerance to be a stable CI signal.
	deltaComps := []int{4, 8, 16}
	if quick {
		deltaComps = []int{8, 16}
	}
	restoreWorkers := govern.SetWorkerLimit(1)
	const deltaWidth = 16
	for _, c := range deltaComps {
		d := deltaComponentsDB(c, deltaWidth)
		d.Digest()
		// Toggling one fact in component 0's S block makes every measured
		// iteration a genuine one-block mutation (a steady-state snapshot
		// would degenerate the delta side to pure memo hits).
		toggle := db.Fact{Rel: "S", KeyLen: 1, Args: []string{"db0", "dtoggle"}}
		toggleBlocks := []string{toggle.BlockID()}
		present := false
		mutate := func() error {
			if present {
				d.Remove(toggle)
			} else if err := d.Add(toggle); err != nil {
				return err
			}
			present = !present
			return nil
		}
		full, err := measure(fmt.Sprintf("deltacount/full/comps=%d", c), "deltacount", "full", c, func() error {
			if err := mutate(); err != nil {
				return err
			}
			prob.CountSatisfyingSharded(foQ, d, 0)
			return nil
		})
		if err != nil {
			return err
		}
		cm := prob.NewCountMemo(0, nil)
		prob.CountSatisfyingShardedMemo(foQ, d, 0, cm)
		delta, err := measure(fmt.Sprintf("deltacount/delta/comps=%d", c), "deltacount", "delta", c, func() error {
			if err := mutate(); err != nil {
				return err
			}
			cm.Invalidate(toggleBlocks)
			prob.CountSatisfyingShardedMemo(foQ, d, 0, cm)
			return nil
		})
		if err != nil {
			return err
		}
		add(full)
		add(pairSpeedup(full, delta))
	}
	{
		c := deltaComps[len(deltaComps)-1]
		d := deltaComponentsDB(c, deltaWidth)
		d.Digest()
		toggle := db.Fact{Rel: "S", KeyLen: 1, Args: []string{"db0", "dtoggle"}}
		toggleBlocks := []string{toggle.BlockID()}
		present := false
		mutate := func() error {
			if present {
				d.Remove(toggle)
			} else if err := d.Add(toggle); err != nil {
				return err
			}
			present = !present
			return nil
		}
		full, err := measure(fmt.Sprintf("deltaprob/full/comps=%d", c), "deltaprob", "full", c, func() error {
			if err := mutate(); err != nil {
				return err
			}
			prob.UniformProbabilitySharded(foQ, d, 0)
			return nil
		})
		if err != nil {
			return err
		}
		cm := prob.NewCountMemo(0, nil)
		prob.UniformProbabilityShardedMemo(foQ, d, 0, cm)
		delta, err := measure(fmt.Sprintf("deltaprob/delta/comps=%d", c), "deltaprob", "delta", c, func() error {
			if err := mutate(); err != nil {
				return err
			}
			cm.Invalidate(toggleBlocks)
			prob.UniformProbabilityShardedMemo(foQ, d, 0, cm)
			return nil
		})
		if err != nil {
			return err
		}
		add(full)
		add(pairSpeedup(full, delta))
	}
	// The decision pair uses the never-certain chain instance (a certain
	// shard would settle the disjunction on both sides and hide the memo):
	// full is a from-scratch sharded solve of the post-mutation snapshot,
	// delta is Plan.Resolve — invalidate the touched blocks, reuse the rest.
	{
		c := deltaComps[len(deltaComps)-1]
		d := chainComponentsDB(c)
		d.Digest()
		p, err := solver.CompilePlan(foQ)
		if err != nil {
			return err
		}
		toggle := db.Fact{Rel: "S", KeyLen: 1, Args: []string{"b0", "ctoggle"}}
		present := false
		mutate := func() (solver.Delta, error) {
			var dl solver.Delta
			if present {
				d.Remove(toggle)
				dl.Del = []db.Fact{toggle}
			} else {
				if err := d.Add(toggle); err != nil {
					return dl, err
				}
				dl.Ins = []db.Fact{toggle}
			}
			present = !present
			return dl, nil
		}
		full, err := measure(fmt.Sprintf("deltasolve/full/comps=%d", c), "deltasolve", "full", c, func() error {
			if _, err := mutate(); err != nil {
				return err
			}
			_, err := p.SolveSharded(context.Background(), d, 0, solver.Options{})
			return err
		})
		if err != nil {
			return err
		}
		memo := solver.NewShardMemo(0, nil)
		if _, _, err := p.SolveShardedMemo(context.Background(), d, 0, solver.Options{}, memo); err != nil {
			return err
		}
		delta, err := measure(fmt.Sprintf("deltasolve/delta/comps=%d", c), "deltasolve", "delta", c, func() error {
			dl, err := mutate()
			if err != nil {
				return err
			}
			_, _, err = p.Resolve(context.Background(), d, dl, memo, 0, solver.Options{})
			return err
		})
		if err != nil {
			return err
		}
		add(full)
		add(pairSpeedup(full, delta))
	}
	restoreWorkers()

	if baseline != "" {
		s, err := summarize(baseline, report.Entries)
		if err != nil {
			return err
		}
		report.Summary = s
		fmt.Printf("  summary vs %s: %d shared benchmarks, geomean speedup %.2fx\n",
			s.Baseline, s.Compared, s.Geomean)
		if failRegressPct > 0 {
			if err := checkSpeedupRegressions(baseline, report.Entries, failRegressPct); err != nil {
				return err
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(report.Entries))
	return nil
}
