package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
)

// perfEntry is one (method, variant, scale) measurement of the performance
// baseline matrix. Variants come in pairs — "seed" measures the pre-index
// code path retained as a baseline, "indexed" the production path — so the
// file records the speedup each optimization layer bought and gives future
// PRs a trajectory to beat. Alongside the ns/op mean, each entry reports
// p50/p95/p99 per-op latency from an internal/obs histogram: tail latency is
// what the serving layer's deadlines actually meet, and a mean alone hides
// it.
type perfEntry struct {
	Name      string  `json:"name"`
	Method    string  `json:"method"`
	Variant   string  `json:"variant"`
	Scale     int     `json:"scale"`
	NsPerOp   int64   `json:"ns_per_op"`
	P50Ns     int64   `json:"p50_ns"`
	P95Ns     int64   `json:"p95_ns"`
	P99Ns     int64   `json:"p99_ns"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	SpeedupVs string  `json:"speedup_vs,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
}

type perfReport struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	Quick     bool        `json:"quick"`
	Entries   []perfEntry `json:"benchmarks"`
}

// perfBuckets is a 1-2-5 series from 100ns to 10s: three edges per decade,
// so interpolated percentiles resolve within a factor of ~2 instead of the
// full decade obs.DefBuckets would give. The serving layer keeps the coarse
// fixed buckets (exposition stability matters there); this histogram is
// local to one certbench run, so finer edges cost nothing.
func perfBuckets() []float64 {
	var edges []float64
	for e := -7; e <= 0; e++ {
		d := math.Pow(10, float64(e))
		edges = append(edges, 1*d, 2*d, 5*d)
	}
	return append(edges, 10)
}

// measure benchmarks one operation: testing.Benchmark supplies the mean
// (ns/op, allocs/op), then a separate sampling pass times individual ops
// into an obs histogram for the percentile columns. The passes are distinct
// so the per-op clock reads never perturb the mean the speedup pairs
// compare.
func measure(name, method, variant string, scale int, op func() error) (perfEntry, error) {
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return perfEntry{}, fmt.Errorf("%s: %w", name, benchErr)
	}
	h := obs.NewHistogram(perfBuckets())
	samples := r.N
	if samples > 2000 {
		samples = 2000
	}
	if samples < 50 {
		samples = 50
	}
	for i := 0; i < samples; i++ {
		start := time.Now()
		if err := op(); err != nil {
			return perfEntry{}, fmt.Errorf("%s: %w", name, err)
		}
		h.Observe(time.Since(start).Seconds())
	}
	return perfEntry{
		Name:     name,
		Method:   method,
		Variant:  variant,
		Scale:    scale,
		NsPerOp:  r.NsPerOp(),
		P50Ns:    quantileNs(h, 0.50),
		P95Ns:    quantileNs(h, 0.95),
		P99Ns:    quantileNs(h, 0.99),
		AllocsOp: r.AllocsPerOp(),
		BytesOp:  r.AllocedBytesPerOp(),
	}, nil
}

// quantileNs reads a histogram quantile in nanoseconds (0 when empty).
func quantileNs(h *obs.Histogram, p float64) int64 {
	q := h.Quantile(p)
	if math.IsNaN(q) {
		return 0
	}
	return int64(q * 1e9)
}

// pairSpeedup annotates the indexed entry of a seed/indexed pair.
func pairSpeedup(seed, indexed perfEntry) perfEntry {
	indexed.SpeedupVs = seed.Name
	if indexed.NsPerOp > 0 {
		indexed.Speedup = float64(seed.NsPerOp) / float64(indexed.NsPerOp)
	}
	return indexed
}

// runPerfJSON runs the PR 3 performance matrix — FO rewriting (seed vs
// indexed+compiled), Terminal, AC(k) (sequential vs parallel), the
// falsifying search, and end-to-end Solve (per-call vs compiled plan) at
// three database scales each — and writes the machine-readable report.
func runPerfJSON(path string, quick bool) error {
	scales := []int{8, 32, 128}
	satVars := []int{6, 9, 12}
	comps := []int{8, 32, 128}
	if quick {
		scales = []int{4, 8, 16}
		satVars = []int{4, 6, 8}
		comps = []int{4, 8, 16}
	}
	report := perfReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Quick:     quick,
	}
	add := func(e perfEntry) {
		report.Entries = append(report.Entries, e)
		fmt.Printf("  %-28s scale=%-4d %12d ns/op  p50=%d p95=%d p99=%d ns %8d allocs/op %10d B/op\n",
			e.Name, e.Scale, e.NsPerOp, e.P50Ns, e.P95Ns, e.P99Ns, e.AllocsOp, e.BytesOp)
	}

	// FO rewriting: the seed path re-derives block lists per recursive step
	// and memoizes shape keys lazily; the indexed path runs the compiled
	// program over the memoized block index with pooled valuations.
	foQ := cq.MustParseQuery("R(x | y), S(y | z)")
	for _, n := range scales {
		d := gen.RandomDB(foQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest() // build the index outside the timed region, as a server would
		seed, err := measure(fmt.Sprintf("fo/seed/emb=%d", n), "fo", "seed", n, func() error {
			_, err := solver.CertainFOBaseline(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		prog, err := solver.CompileFO(foQ)
		if err != nil {
			return err
		}
		indexed, err := measure(fmt.Sprintf("fo/indexed/emb=%d", n), "fo", "indexed", n, func() error {
			_, err := prog.Certain(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		add(seed)
		add(pairSpeedup(seed, indexed))
	}

	// Terminal weak cycles (Theorem 3).
	termQ := gen.TerminalPairsQuery(2, true)
	for _, n := range scales {
		emb := n / 4
		if emb < 1 {
			emb = 1
		}
		d := gen.RandomDB(termQ, gen.Config{Embeddings: emb, Noise: 2, Domain: 3}, int64(n))
		d.Digest()
		e, err := measure(fmt.Sprintf("terminal/indexed/emb=%d", emb), "terminal", "indexed", emb, func() error {
			_, err := solver.CertainTerminal(termQ, d)
			return err
		})
		if err != nil {
			return err
		}
		add(e)
	}

	// AC(k) graph marking, sequential vs parallel fan-out.
	ackQ := cq.ACk(3)
	shape, ok := core.MatchCycleShape(ackQ, true)
	if !ok {
		return fmt.Errorf("AC(3) shape match failed")
	}
	for _, c := range comps {
		d := gen.CycleDB(gen.CycleConfig{K: 3, Components: c, Width: 2, EncodeAll: true})
		d.Digest()
		seq, err := measure(fmt.Sprintf("ack/seq/comps=%d", c), "ack", "seq", c, func() error {
			_, err := solver.CertainACk(ackQ, shape, d)
			return err
		})
		if err != nil {
			return err
		}
		par, err := measure(fmt.Sprintf("ack/par/comps=%d", c), "ack", "par", c, func() error {
			_, err := solver.CertainACkParallel(ackQ, shape, d, 0)
			return err
		})
		if err != nil {
			return err
		}
		add(seq)
		add(pairSpeedup(seq, par))
	}

	// Falsifying-repair search on Monotone-SAT-encoded q0 instances.
	falsQ := cq.Q0()
	for _, v := range satVars {
		f := gen.RandomMonotoneSAT(v, 5*v, 3, int64(100*v))
		d := gen.MonotoneSATQ0DB(f)
		d.Digest()
		e, err := measure(fmt.Sprintf("falsifying/indexed/vars=%d", v), "falsifying", "indexed", v, func() error {
			solver.CertainByFalsifying(falsQ, d)
			return nil
		})
		if err != nil {
			return err
		}
		add(e)
	}

	// End-to-end Solve: per-call classification vs the compiled plan.
	for _, n := range scales {
		d := gen.RandomDB(foQ, gen.Config{Embeddings: n, Noise: n, Domain: n}, int64(n))
		d.Digest()
		seed, err := measure(fmt.Sprintf("solve/per-call/emb=%d", n), "solve", "seed", n, func() error {
			_, err := solver.Solve(foQ, d)
			return err
		})
		if err != nil {
			return err
		}
		p, err := solver.CompilePlan(foQ)
		if err != nil {
			return err
		}
		planned, err := measure(fmt.Sprintf("solve/plan/emb=%d", n), "solve", "plan", n, func() error {
			_, err := p.Solve(d)
			return err
		})
		if err != nil {
			return err
		}
		add(seed)
		add(pairSpeedup(seed, planned))
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(report.Entries))
	return nil
}
