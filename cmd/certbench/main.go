// Command certbench regenerates every figure and worked example of the
// paper, and accompanies each complexity theorem with a measured scaling
// experiment. Experiments are indexed E1–E10; see DESIGN.md and
// EXPERIMENTS.md for the mapping to the paper's artifacts.
//
// Usage:
//
//	certbench                 # run everything
//	certbench -experiment E4  # one experiment
//	certbench -quick          # reduced sizes
//	certbench -json BENCH_pr3.json  # machine-readable perf baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(ctx *benchCtx)
}

type benchCtx struct {
	quick bool
}

func main() {
	which := flag.String("experiment", "", "experiment to run (E1..E10); empty = all")
	quick := flag.Bool("quick", false, "reduced instance sizes")
	timeout := flag.Duration("timeout", 0, "stop starting new experiments after this duration (0 = no limit); Ctrl-C stops too")
	jsonOut := flag.String("json", "", "run the performance baseline matrix (ns/op, p50/p95/p99, allocs/op per method × scale) and write it to this file instead of the experiments")
	fleetOut := flag.String("fleet-json", "", "run the fleet benchmark (batch throughput 1→N workers, hedged vs unhedged solve tails against a slow replica) and write it to this file instead of the experiments")
	baseline := flag.String("baseline", "", "previous -json report to compare against; the new report embeds a per-benchmark speedup summary")
	failRegress := flag.Float64("fail-regress-pct", 0, "with -json and -baseline: exit nonzero if any within-run pair speedup regressed by more than this percentage against the baseline report (0 = no gate)")
	trace := flag.Bool("trace", false, "solve one instance per paper family with tracing on and print the span trees instead of the experiments")
	flag.Parse()

	if *jsonOut != "" {
		if err := runPerfJSON(*jsonOut, *baseline, *quick, *failRegress); err != nil {
			fmt.Fprintf(os.Stderr, "certbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fleetOut != "" {
		if err := runFleetJSON(*fleetOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "certbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *trace {
		if err := runTraceDemo(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "certbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	runCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	experiments := []experiment{
		{"E1", "Figure 1: conference database and certain answering", runE1},
		{"E2", "Figure 2 / Examples 2–4: attack graph of q1", runE2},
		{"E3", "Theorem 2: reduction from CERTAINTY(q0) and coNP scaling", runE3},
		{"E4", "Theorem 3: weak terminal cycles in polynomial time", runE4},
		{"E5", "Theorem 4 / Figures 5–7: AC(k) graph marking", runE5},
		{"E6", "Corollary 1: C(k) via Lemma 9 and directly", runE6},
		{"E7", "Theorem 1: certain first-order rewriting", runE7},
		{"E8", "Section 7: safety, PROBABILITY(q), Proposition 1", runE8},
		{"E9", "♯CERTAINTY: repair counting", runE9},
		{"E10", "The tractability frontier chart", runE10},
		{"E11", "Section 6.2 open case: nonterminal weak cycles (Conjecture 1)", runE11},
		{"E12", "Ablations: search ordering, purification, Lemma 9 vs direct", runE12},
		{"E13", "Two-atom dichotomy census (Kolaitis–Pema via Theorems 2+3)", runE13},
	}

	ctx := &benchCtx{quick: *quick}
	ran := false
	for _, e := range experiments {
		if *which != "" && !strings.EqualFold(*which, e.id) {
			continue
		}
		if err := runCtx.Err(); err != nil {
			fmt.Printf("certbench: interrupted (%v) — skipping %s and later experiments\n", err, e.id)
			return
		}
		ran = true
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		e.run(ctx)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "certbench: unknown experiment %q\n", *which)
		os.Exit(1)
	}
}
