// Conference planning under uncertainty: the paper's introduction scenario
// (Fig. 1) explored in depth — repairs, per-repair answers, certainty of a
// family of queries, and how cleaning one block changes the verdicts.
package main

import (
	"fmt"
	"log"

	certainty "github.com/cqa-go/certainty"
)

func main() {
	d := certainty.ConferenceDB()
	fmt.Println("conference database (primary keys: C[conf,year], R[conf]):")
	fmt.Print(d)
	fmt.Printf("repairs: %v\n\n", d.NumRepairs())

	queries := []struct {
		text string
		why  string
	}{
		{"C(x, y | 'Rome'), R(x | 'A')", "Will Rome host some A conference?"},
		{"C(x, y | 'Rome')", "Will Rome host some conference?"},
		{"R('KDD' | 'A')", "Is KDD an A conference?"},
		{"R('PODS' | 'A')", "Is PODS an A conference?"},
		{"C('PODS', y | 'Paris')", "Will PODS take place in Paris?"},
	}
	for _, entry := range queries {
		q, err := certainty.ParseQuery(entry.text)
		if err != nil {
			log.Fatal(err)
		}
		res, err := certainty.Solve(q, d)
		if err != nil {
			log.Fatal(err)
		}
		sat := certainty.CountSatisfyingRepairs(q, d)
		possible := certainty.Eval(q, d)
		fmt.Printf("%-42s %s\n", entry.why, entry.text)
		fmt.Printf("  possible (some repair): %-5v  certain (every repair): %-5v  holds in %v/%v repairs\n",
			possible, res.Certain, sat, d.NumRepairs())
	}

	// Clean the PODS-2016 block: keep Rome. The Rome query becomes certain.
	fmt.Println("\nafter cleaning the PODS 2016 block (keep Rome):")
	clean := d.Restrict(func(f certainty.Fact) bool {
		return !(f.Rel == "C" && f.Args[0] == "PODS" && f.Args[2] == "Paris")
	})
	q := certainty.ConferenceQuery()
	res, err := certainty.Solve(q, clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  certain(%s): %v\n", q, res.Certain)

	// Probabilistic view (Section 7): uniform repair semantics.
	p := certainty.Uniform(d)
	pr, err := certainty.Probability(q, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuniform BID probability of the Rome query: %v\n", pr)
}
