// Consistent query rewriting: turn certain answering into plain SQL.
// Demonstrates Theorem 1 rewritings (Boolean and with free variables), the
// Theorem 6 rewriting for a safe query with a *cyclic* hypergraph, and the
// effect of freezing a variable of C(2).
package main

import (
	"fmt"
	"log"

	certainty "github.com/cqa-go/certainty"
)

func main() {
	// A registry with uncertain ownership and uncertain project leads.
	d, err := certainty.ParseDB(`
		Owns(svc_auth | alice)
		Owns(svc_auth | bob)
		Owns(svc_pay | carol)
		Lead(alice | infra)
		Lead(bob | infra)
		Lead(carol | payments)
		Lead(carol | fraud)
	`)
	if err != nil {
		log.Fatal(err)
	}

	// "Does some service certainly have an owner leading 'infra'?"
	q := certainty.MustParseQuery("Owns(s | o), Lead(o | 'infra')")
	cls, err := certainty.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q = %s\nclass: %s\n\n", q, cls.Class)

	phi, err := certainty.RewriteFO(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain rewriting (logic):\n  %s\n\n", phi)
	sql, err := certainty.RewriteSQL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain rewriting (SQL, with adom view):\n  SELECT %s;\n\n", sql)
	res, err := certainty.Solve(q, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain on the registry: %v\n\n", res.Certain)

	// Free variables: "which services certainly have SOME owner?" and
	// "which (service, owner) pairs are certain?"
	owners := certainty.MustParseQuery("Owns(s | o)")
	ans, err := certainty.CertainAnswers(owners, []string{"s", "o"}, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certain (service, owner) pairs:")
	for _, a := range ans.Certain {
		fmt.Printf("  %v\n", []string(a))
	}
	fmt.Println("possible (service, owner) pairs:")
	for _, a := range ans.Possible {
		fmt.Printf("  %v\n", []string(a))
	}

	// Freezing a free variable can break an attack cycle: CERTAINTY(C(2))
	// is not FO, but its certain answers for x1 are.
	c2 := certainty.Ck(2)
	if _, err := certainty.RewriteFO(c2); err != nil {
		fmt.Printf("\nC(2) Boolean rewriting: %v\n", err)
	}
	phiFree, err := certainty.RewriteFOFree(c2, []string{"x1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C(2) rewriting with x1 free succeeds:\n  %s\n", phiFree)

	// Theorem 6 covers safe queries even without a join tree.
	cyclicSafe := certainty.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	if _, err := certainty.RewriteFO(cyclicSafe); err != nil {
		fmt.Printf("\ncyclic-hypergraph query has no join tree: %v\n", err)
	}
	phiSafe, err := certainty.RewriteSafe(cyclicSafe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("but it is safe, so Theorem 6 rewrites it:\n  %s\n", phiSafe)
}
