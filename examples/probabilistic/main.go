// Probabilistic databases (Section 7): BID databases, the IsSafe test, the
// polynomial safe-plan evaluation of PROBABILITY(q), the Proposition 1
// bridge to CERTAINTY(q), and exact repair counting (♯CERTAINTY).
package main

import (
	"fmt"
	"log"
	"math/big"

	certainty "github.com/cqa-go/certainty"
)

func main() {
	// A sensor-fusion scenario: two sources disagree about device
	// locations; readings carry confidences that sum to at most 1 per
	// block (leftover mass = "no reading survives").
	p := certainty.NewProbDB()
	add := func(f certainty.Fact, num, den int64) {
		if err := p.Add(f, big.NewRat(num, den)); err != nil {
			log.Fatal(err)
		}
	}
	// Loc(device | room): key = device.
	add(certainty.NewFact("Loc", 1, "d1", "lab"), 2, 3)
	add(certainty.NewFact("Loc", 1, "d1", "office"), 1, 3)
	add(certainty.NewFact("Loc", 1, "d2", "lab"), 1, 2)
	// Status(device | state): key = device.
	add(certainty.NewFact("Status", 1, "d1", "on"), 1, 1)
	add(certainty.NewFact("Status", 1, "d2", "on"), 3, 4)

	// "Is some device in the lab and on?"
	q, err := certainty.ParseQuery("Loc(x | 'lab'), Status(x | 'on')")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("q = %s\n", q)
	fmt.Printf("safe (Dalvi–Ré–Suciu): %v\n", certainty.IsSafe(q))

	pr, err := certainty.Probability(q, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(q) by safe plan:          %v = %s\n", pr, pr.FloatString(6))
	slow := certainty.ProbabilityByWorlds(q, p)
	fmt.Printf("Pr(q) by world enumeration:  %v (agree: %v)\n", slow, pr.Cmp(slow) == 0)

	// Proposition 1: Pr(q) = 1 iff the blocks of total mass 1 certainly
	// satisfy q.
	fmt.Printf("Pr(q) = 1: %v\n", pr.Cmp(big.NewRat(1, 1)) == 0)

	// An unsafe query: the safe plan refuses; world enumeration (or the
	// CERTAINTY solvers) still answer, at exponential cost.
	unsafe := certainty.MustParseQuery("R(x | y), S(y | z)")
	fmt.Printf("\nq' = %s: safe = %v", unsafe, certainty.IsSafe(unsafe))
	if _, err := certainty.Probability(unsafe, p); err != nil {
		fmt.Printf(" (safe plan refuses: PROBABILITY(q') is ♯P-hard)\n")
	}
	// Yet CERTAINTY(q') is first-order expressible — the frontiers differ.
	cls, err := certainty.Classify(unsafe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("while CERTAINTY(q') is %s\n", cls.Class)

	// Counting repairs: ♯CERTAINTY under uniform repair semantics.
	d := certainty.ConferenceDB()
	cq := certainty.ConferenceQuery()
	count := certainty.CountSatisfyingRepairs(cq, d)
	viaUniform, err := certainty.CountViaUniform(cq, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFig. 1 database: query holds in %v of %v repairs (safe-plan count: %v)\n",
		count, d.NumRepairs(), viaUniform)
	fmt.Printf("uniform probability: %v\n", certainty.ProbabilityByWorlds(cq, certainty.Uniform(d)))
}
