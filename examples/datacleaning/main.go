// Data cleaning with certain answers: two CSV extracts disagree about
// employee departments and department buildings. Instead of picking one
// repair arbitrarily, query the whole space of repairs: certain answers
// are safe to act on, possible-but-uncertain ones need review, and
// sampling estimates how likely each uncertain answer is.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	certainty "github.com/cqa-go/certainty"
)

func main() {
	d := certainty.NewDB()
	load := func(rel string, keyLen int, file string) {
		f, err := os.Open(filepath.Join("examples", "datacleaning", "testdata", file))
		if err != nil {
			// Allow running from the example directory itself.
			f, err = os.Open(filepath.Join("testdata", file))
			if err != nil {
				log.Fatal(err)
			}
		}
		defer f.Close()
		if err := d.ReadCSV(rel, keyLen, f); err != nil {
			log.Fatal(err)
		}
	}
	// Emp(id | name, dept), Dept(name | building).
	load("Emp", 1, "employees.csv")
	load("Dept", 1, "departments.csv")

	fmt.Printf("loaded %d facts in %d blocks; %v repairs; consistent: %v\n\n",
		d.Len(), d.NumBlocks(), d.NumRepairs(), d.IsConsistent())

	// Which (employee, building) pairs are certain?
	q := certainty.MustParseQuery("Emp(e | n, dept), Dept(dept | b)")
	res, err := certainty.CertainAnswers(q, []string{"n", "b"}, d)
	if err != nil {
		log.Fatal(err)
	}
	certain := map[string]bool{}
	for _, a := range res.Certain {
		certain[a.Key()] = true
	}
	fmt.Println("(name, building) answers:")
	for _, a := range res.Possible {
		status := "UNCERTAIN"
		if certain[a.Key()] {
			status = "certain  "
		}
		// How often does the answer hold across repairs?
		inst := q.Substitute(certainty.Valuation{"n": a[0], "b": a[1]})
		sat := certainty.CountSatisfyingRepairs(inst, d)
		fmt.Printf("  %-9s %-6s in %-8s holds in %v/%v repairs\n",
			status, a[0], a[1], sat, d.NumRepairs())
	}

	// A quick statistical screen before running the exact solver.
	boolean := certainty.MustParseQuery("Emp(e | n, 'engineering'), Dept('engineering' | 'bldg1')")
	est, witness := certainty.EstimateCertain(boolean, d, 200, 1)
	exact, err := certainty.Certain(boolean, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n\"someone certainly sits in engineering/bldg1\": sampled=%v exact=%v\n", est, exact)
	if witness != nil {
		fmt.Println("(sampling found a counterexample repair)")
	}

	// Probability of the uncertain facts under uniform repairs.
	pr, err := certainty.Probability(certainty.MustParseQuery("Emp('e1' | n, 'platform')"), certainty.Uniform(d))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(Ada is in platform) = %v\n", pr)
}
