// Quickstart: parse a query and an uncertain database, classify the
// query's CERTAINTY complexity, and decide certainty.
package main

import (
	"fmt"
	"log"

	certainty "github.com/cqa-go/certainty"
)

func main() {
	// An uncertain database: primary keys (left of the bar) need not hold.
	// Two facts claim a different city for PODS 2016 — one block, two
	// choices, and a repair keeps exactly one of them.
	d, err := certainty.ParseDB(`
		C(PODS, 2016 | Rome)
		C(PODS, 2016 | Paris)
		C(KDD, 2017 | Rome)
		R(PODS | A)
		R(KDD | A)
		R(KDD | B)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database has %d facts, %d blocks, %v repairs\n",
		d.Len(), d.NumBlocks(), d.NumRepairs())

	// "Will Rome host some A conference?"
	q, err := certainty.ParseQuery("C(x, y | 'Rome'), R(x | 'A')")
	if err != nil {
		log.Fatal(err)
	}

	// Classify CERTAINTY(q) with the attack-graph method.
	cls, err := certainty.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CERTAINTY(q) is %s\n", cls.Class)
	fmt.Printf("because: %s\n", cls.Reason)

	// Decide: is q true in every repair?
	res, err := certainty.Solve(q, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain: %v (method: %s)\n", res.Certain, res.Method)

	// Not certain — exhibit a repair where the answer is no.
	if rep, found := certainty.FalsifyingRepair(q, d); found {
		fmt.Println("a repair falsifying q:")
		for _, f := range rep {
			fmt.Printf("  %s\n", f)
		}
	}

	// The query is FO-rewritable: print the consistent SQL rewriting.
	sql, err := certainty.RewriteSQL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistent SQL rewriting:\n  SELECT %s;\n", sql)
}
