// Cycle queries C(k) and AC(k) (Section 6.2): the Fuxman–Miller family
// whose complexity this paper settles (Theorem 4, Corollary 1). Reproduces
// the Fig. 6 database and the Fig. 7 falsifying repairs, then scales the
// polynomial graph-marking algorithm far beyond brute-force reach.
package main

import (
	"fmt"
	"log"
	"time"

	certainty "github.com/cqa-go/certainty"
)

func main() {
	// The Fig. 5 attack graph: all attacks weak, all cycles nonterminal.
	q := certainty.ACk(3)
	cls, err := certainty.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AC(3) = %s\n%s\n\n", q, cls.Reason)

	// The Fig. 6 database: three clockwise 3-cycles encoded in S3.
	d := certainty.Figure6DB()
	fmt.Println("Fig. 6 database:")
	fmt.Print(d)
	res, err := certainty.Solve(q, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain: %v (Fig. 7 exhibits falsifying repairs)\n", res.Certain)
	if rep, ok := certainty.FalsifyingRepair(q, d); ok {
		fmt.Println("one falsifying repair (cf. Fig. 7):")
		for _, f := range rep {
			fmt.Printf("  %s\n", f)
		}
	}

	// C(k) for k >= 3 is a cyclic query: no attack graph exists, yet
	// Corollary 1 still puts CERTAINTY(C(k)) in P via Lemma 9.
	for _, k := range []int{2, 3, 4} {
		ck := certainty.Ck(k)
		cls, err := certainty.Classify(ck)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nC(%d): %s\n", k, cls.Class)
	}

	// Scale: decide CERTAINTY(AC(3)) on databases far beyond repair
	// enumeration (the width-2 component below already has 2^(3·width)
	// repairs per component).
	fmt.Println("\nscaling the Theorem 4 algorithm:")
	for _, comps := range []int{10, 100, 1000} {
		d := bigCycleDB(3, comps)
		start := time.Now()
		res, err := certainty.Solve(certainty.ACk(3), d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  components=%-5d facts=%-6d repairs=%v  certain=%v  (%v)\n",
			comps, d.Len(), d.NumRepairs(), res.Certain, time.Since(start).Round(time.Microsecond))
	}
}

// bigCycleDB builds `comps` disjoint tripartite components of width 2 with
// every 3-cycle encoded in S3.
func bigCycleDB(k, comps int) *certainty.DB {
	d := certainty.NewDB()
	val := func(c, pos, i int) string { return fmt.Sprintf("v%d_%d_%d", c, pos, i) }
	for c := 0; c < comps; c++ {
		for pos := 0; pos < k; pos++ {
			rel := fmt.Sprintf("R%d", pos+1)
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					if err := d.Add(certainty.NewFact(rel, 1, val(c, pos, i), val(c, (pos+1)%k, j))); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for l := 0; l < 2; l++ {
					if err := d.Add(certainty.NewFact("S3", 3, val(c, 0, i), val(c, 1, j), val(c, 2, l))); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	return d
}
