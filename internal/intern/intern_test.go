package intern

import (
	"fmt"
	"testing"
)

func TestInternAssignsDenseIDs(t *testing.T) {
	tb := NewTable()
	words := []string{"a", "b", "c", "a", "b", "d"}
	want := []uint32{0, 1, 2, 0, 1, 3}
	for i, w := range words {
		if got := tb.Intern(w); got != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", w, got, want[i])
		}
	}
	if tb.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tb.Len())
	}
}

func TestInternDeterministicOrder(t *testing.T) {
	seq := []string{"R", "x", "y", "S", "x", "z", "R"}
	a, b := NewTable(), NewTable()
	for _, s := range seq {
		if ia, ib := a.Intern(s), b.Intern(s); ia != ib {
			t.Fatalf("tables diverged on %q: %d vs %d", s, ia, ib)
		}
	}
}

func TestLookupAndStringOf(t *testing.T) {
	tb := NewTable()
	id := tb.Intern("hello")
	if got, ok := tb.Lookup("hello"); !ok || got != id {
		t.Fatalf("Lookup(hello) = (%d, %v), want (%d, true)", got, ok, id)
	}
	if got, ok := tb.Lookup("absent"); ok || got != None {
		t.Fatalf("Lookup(absent) = (%d, %v), want (None, false)", got, ok)
	}
	if s, ok := tb.StringOf(id); !ok || s != "hello" {
		t.Fatalf("StringOf(%d) = (%q, %v), want (hello, true)", id, s, ok)
	}
	if _, ok := tb.StringOf(99); ok {
		t.Fatal("StringOf(99) resolved on a 1-symbol table")
	}
	if _, ok := tb.StringOf(None); ok {
		t.Fatal("StringOf(None) resolved")
	}
}

func TestMustStringPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustString on unknown id did not panic")
		}
	}()
	NewTable().MustString(0)
}

func TestEmptyStringIsInternable(t *testing.T) {
	tb := NewTable()
	id := tb.Intern("")
	if s, ok := tb.StringOf(id); !ok || s != "" {
		t.Fatalf("round-trip of empty string failed: (%q, %v)", s, ok)
	}
}

func TestStats(t *testing.T) {
	tb := NewTable()
	tb.Intern("one")   // miss
	tb.Intern("one")   // hit
	tb.Intern("two")   // miss
	tb.Lookup("one")   // hit
	tb.Lookup("three") // miss
	st := tb.Stats()
	if st.Symbols != 2 {
		t.Fatalf("Symbols = %d, want 2", st.Symbols)
	}
	if st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("Hits/Misses = %d/%d, want 2/3", st.Hits, st.Misses)
	}
	if st.HitRatio <= 0.39 || st.HitRatio >= 0.41 {
		t.Fatalf("HitRatio = %v, want 0.4", st.HitRatio)
	}
	if st.TableBytes <= 0 {
		t.Fatalf("TableBytes = %d, want > 0", st.TableBytes)
	}
	if st.Tables != 1 {
		t.Fatalf("Tables = %d, want 1", st.Tables)
	}
}

func TestGlobalStatsAccumulate(t *testing.T) {
	before := GlobalStats()
	tb := NewTable()
	tb.Intern("fresh-symbol-for-global-stats")
	tb.Intern("fresh-symbol-for-global-stats")
	after := GlobalStats()
	if after.Tables != before.Tables+1 {
		t.Fatalf("Tables went %d → %d, want +1", before.Tables, after.Tables)
	}
	if after.Symbols != before.Symbols+1 {
		t.Fatalf("Symbols went %d → %d, want +1", before.Symbols, after.Symbols)
	}
	if after.Hits != before.Hits+1 || after.Misses != before.Misses+1 {
		t.Fatalf("Hits/Misses went %d/%d → %d/%d, want +1/+1",
			before.Hits, before.Misses, after.Hits, after.Misses)
	}
	if after.TableBytes <= before.TableBytes {
		t.Fatalf("TableBytes went %d → %d, want growth", before.TableBytes, after.TableBytes)
	}
}

func TestConcurrentReadsAfterBuild(t *testing.T) {
	tb := NewTable()
	const n = 256
	for i := 0; i < n; i++ {
		tb.Intern(fmt.Sprintf("sym-%d", i))
	}
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < n; i++ {
				s := fmt.Sprintf("sym-%d", i)
				id, found := tb.Lookup(s)
				got, _ := tb.StringOf(id)
				ok = ok && found && got == s
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent reader saw an inconsistent table")
		}
	}
}

// FuzzInternRoundTrip feeds adversarial strings (embedded NULs, invalid
// UTF-8, huge runs) through the intern cycle and checks the two identities
// that the data plane depends on: StringOf(Intern(s)) == s, and re-interning
// yields the same id. It must never panic.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add("", "")
	f.Add("a", "a")
	f.Add("R", "x\x00y")
	f.Add("\xff\xfe invalid utf8", "PODS")
	f.Add("sym", "sym")
	f.Fuzz(func(t *testing.T, a, b string) {
		tb := NewTable()
		ida := tb.Intern(a)
		idb := tb.Intern(b)
		if sa, ok := tb.StringOf(ida); !ok || sa != a {
			t.Fatalf("StringOf(Intern(%q)) = (%q, %v)", a, sa, ok)
		}
		if sb, ok := tb.StringOf(idb); !ok || sb != b {
			t.Fatalf("StringOf(Intern(%q)) = (%q, %v)", b, sb, ok)
		}
		if tb.Intern(a) != ida || tb.Intern(b) != idb {
			t.Fatal("re-interning changed an id")
		}
		if (a == b) != (ida == idb) {
			t.Fatalf("id identity diverged from string identity: %q=%d %q=%d", a, ida, b, idb)
		}
		if got, ok := tb.Lookup(a); !ok || got != ida {
			t.Fatalf("Lookup(%q) = (%d, %v), want (%d, true)", a, got, ok, ida)
		}
	})
}
