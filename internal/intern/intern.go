// Package intern provides append-only string interning with dense uint32
// ids. It is the symbol substrate of the interned data plane: every constant
// and relation name of a database is mapped to a dense id at ingest time, so
// the evaluation inner loops (posting intersection, block probing, bitset
// valuations) run over machine integers and never touch a string.
//
// Ids are assigned in interning order, which makes them deterministic for a
// deterministic ingest order: a database snapshot reloaded fact-by-fact
// reproduces the exact id assignment of the database that wrote it (locked
// by a property test in internal/db). The table is append-only — ids are
// never reassigned or reused — so any id handed out stays valid for the
// lifetime of the table.
//
// A Table is single-writer: interning must happen from one goroutine (the
// database build path). After the last Intern call the table is effectively
// immutable and every read accessor (Lookup, StringOf, Len, Bytes, Stats)
// is safe for unlimited concurrent use; the hit/miss telemetry is atomic.
package intern

import (
	"fmt"
	"math"
	"sync/atomic"
)

// None is the sentinel id meaning "no symbol". It is never assigned to a
// real symbol (the table refuses to grow that far).
const None = ^uint32(0)

// MaxSymbols caps the number of symbols one table can hold, keeping every
// assigned id strictly below None.
const MaxSymbols = math.MaxUint32

// Process-wide telemetry, aggregated across every table. The db package
// rebuilds a table per interned snapshot, so these are cumulative counters
// (suitable for rate queries), not a live census of retained tables.
var (
	globalTables  atomic.Int64
	globalSymbols atomic.Int64
	globalBytes   atomic.Int64
	globalHits    atomic.Int64
	globalMisses  atomic.Int64
)

// Stats is a point-in-time view of one table (or of the process aggregate,
// from GlobalStats).
type Stats struct {
	// Tables is the number of tables built (1 for a single table's stats).
	Tables int64 `json:"tables"`
	// Symbols is the number of distinct symbols interned.
	Symbols int64 `json:"symbols"`
	// TableBytes approximates the retained bytes: string payloads plus the
	// per-symbol slice and map overhead.
	TableBytes int64 `json:"table_bytes"`
	// Hits counts Intern calls that found an existing symbol plus Lookup
	// calls that resolved; Misses counts Intern calls that created a symbol
	// plus Lookup calls that did not resolve.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HitRatio is Hits / (Hits + Misses), 0 when no calls were made.
	HitRatio float64 `json:"hit_ratio"`
}

// ratio fills HitRatio from Hits and Misses.
func (s Stats) ratio() Stats {
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRatio = float64(s.Hits) / float64(total)
	}
	return s
}

// GlobalStats reports the process-wide aggregate across all tables ever
// built: cumulative symbols, bytes, and hit/miss counts.
func GlobalStats() Stats {
	return Stats{
		Tables:     globalTables.Load(),
		Symbols:    globalSymbols.Load(),
		TableBytes: globalBytes.Load(),
		Hits:       globalHits.Load(),
		Misses:     globalMisses.Load(),
	}.ratio()
}

// perSymbolOverhead approximates the bookkeeping bytes per symbol beyond
// the string payload: the slice header in strs plus a map entry (key header,
// value, bucket share).
const perSymbolOverhead = 16 + 32

// Table is an append-only string interner. The zero value is not ready;
// call NewTable.
type Table struct {
	strs  []string
	ids   map[string]uint32
	bytes int64

	hits   atomic.Int64
	misses atomic.Int64
}

// NewTable returns an empty table.
func NewTable() *Table {
	globalTables.Add(1)
	return &Table{ids: make(map[string]uint32)}
}

// Intern returns the id of s, assigning the next dense id on first sight.
// Single-writer: must not race with other Intern calls.
func (t *Table) Intern(s string) uint32 {
	if id, ok := t.ids[s]; ok {
		t.hits.Add(1)
		globalHits.Add(1)
		return id
	}
	if len(t.strs) >= MaxSymbols {
		panic(fmt.Sprintf("intern: table overflow at %d symbols", len(t.strs)))
	}
	id := uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	t.bytes += int64(len(s)) + perSymbolOverhead
	t.misses.Add(1)
	globalMisses.Add(1)
	globalSymbols.Add(1)
	globalBytes.Add(int64(len(s)) + perSymbolOverhead)
	return id
}

// Lookup resolves s without interning it, reporting (None, false) when s
// was never interned. Safe for concurrent use once interning is done.
func (t *Table) Lookup(s string) (uint32, bool) {
	id, ok := t.ids[s]
	if ok {
		t.hits.Add(1)
		globalHits.Add(1)
		return id, true
	}
	t.misses.Add(1)
	globalMisses.Add(1)
	return None, false
}

// StringOf returns the symbol for id, reporting false for ids never
// assigned (including None).
func (t *Table) StringOf(id uint32) (string, bool) {
	if int64(id) >= int64(len(t.strs)) {
		return "", false
	}
	return t.strs[id], true
}

// MustString is StringOf panicking on unknown ids (programming error).
func (t *Table) MustString(id uint32) string {
	s, ok := t.StringOf(id)
	if !ok {
		panic(fmt.Sprintf("intern: unknown symbol id %d (table has %d)", id, len(t.strs)))
	}
	return s
}

// Len returns the number of interned symbols.
func (t *Table) Len() int { return len(t.strs) }

// Bytes approximates the retained bytes of the table.
func (t *Table) Bytes() int64 { return t.bytes }

// Stats reports this table's census and telemetry.
func (t *Table) Stats() Stats {
	return Stats{
		Tables:     1,
		Symbols:    int64(len(t.strs)),
		TableBytes: t.bytes,
		Hits:       t.hits.Load(),
		Misses:     t.misses.Load(),
	}.ratio()
}
