// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges, and bounded
// histograms with fixed bucket edges) plus a lightweight, ring-buffered,
// sampled span tracer (trace.go). Every layer of the stack — the solver's
// phase dispatch, the database structural index, the compiled-plan and
// verdict caches, the certd request path — records into this package, and
// internal/server exposes the registry in Prometheus text format on
// GET /metrics.
//
// Design constraints, in order:
//
//  1. Zero dependencies. The registry must be importable from the lowest
//     layers (internal/db, internal/govern) without cycles, so obs imports
//     nothing from this repository.
//  2. Deterministic output. Histogram bucket edges are fixed at creation
//     and exposition is sorted, so the /metrics text for a scripted request
//     sequence is byte-stable and can be locked by a golden test. Telemetry
//     that nobody tests silently rots; here it is a contract.
//  3. Cheap when off, bounded when on. Counters are single atomic adds on
//     pre-resolved handles; the tracer records nothing — and allocates
//     nothing — when no Tracer rides the context, and a bounded ring when
//     one does.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// L is one metric label (a key="value" pair in the exposition).
type L struct {
	K, V string
}

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric type names used in the exposition and in mismatch panics.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one (labels, metric) pair within a family.
type series struct {
	labels []L
	key    string // canonical serialized labels, the sort key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every label combination of one metric name, with a single
// type and (for histograms) a single bucket layout.
type family struct {
	name    string
	help    string
	typ     string
	edges   []float64 // histogram families only
	mu      sync.Mutex
	series  map[string]*series
	ordered []*series // sorted by key, rebuilt on insert
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry. Packages that have no natural
// configuration surface (internal/db, internal/govern, internal/engine)
// record here; certd exposes it on /metrics. Tests that need isolated
// counters construct their own Registry.
var Default = NewRegistry()

// Help sets the HELP text emitted for the named family. Calling it for a
// family that does not exist yet is fine: the text is applied when the
// family is created.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = text
		return
	}
	// Pre-register an empty family so the help text survives until the
	// first metric lands. Its type is fixed by that first metric.
	r.families[name] = &family{name: name, help: text, series: make(map[string]*series)}
}

// labelKey serializes labels canonically (sorted by key) so that the same
// label set always maps to the same series regardless of argument order.
func labelKey(labels []L) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]L, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteByte('=')
		b.WriteString(l.V)
		b.WriteByte(0) // values cannot fake a separator
	}
	return b.String()
}

// getFamily returns the family for name, creating it with the given type on
// first use and panicking on a type mismatch — mixing types under one name
// is a programming error that would silently corrupt the exposition.
func (r *Registry) getFamily(name, typ string, edges []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{name: name, typ: typ, edges: edges, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ == "" { // pre-registered by Help
		r.mu.Lock()
		if f.typ == "" {
			f.typ = typ
			f.edges = edges
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// getSeries returns the series for the label set, creating it on first use.
func (f *family) getSeries(labels []L) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	owned := make([]L, len(labels))
	copy(owned, labels)
	sort.Slice(owned, func(i, j int) bool { return owned[i].K < owned[j].K })
	s := &series{labels: owned, key: key}
	switch f.typ {
	case typeCounter:
		s.c = &Counter{}
	case typeGauge:
		s.g = &Gauge{}
	case typeHistogram:
		s.h = newHistogram(f.edges)
	}
	f.series[key] = s
	f.ordered = append(f.ordered, s)
	sort.Slice(f.ordered, func(i, j int) bool { return f.ordered[i].key < f.ordered[j].key })
	return s
}

// Counter returns the counter for name and labels, creating it on first
// use. The returned handle is stable: hot paths should resolve it once and
// keep it, paying one atomic add per event afterwards.
func (r *Registry) Counter(name string, labels ...L) *Counter {
	return r.getFamily(name, typeCounter, nil).getSeries(labels).c
}

// Gauge returns the gauge for name and labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...L) *Gauge {
	return r.getFamily(name, typeGauge, nil).getSeries(labels).g
}

// Histogram returns the histogram for name and labels, creating it on
// first use with the given bucket edges (nil selects DefBuckets). Every
// series of one family shares the family's edges: the edges supplied on
// the first call win, so exposition stays aligned across label sets.
func (r *Registry) Histogram(name string, edges []float64, labels ...L) *Histogram {
	if edges == nil {
		edges = DefBuckets
	}
	return r.getFamily(name, typeHistogram, edges).getSeries(labels).h
}

// snapshot returns the families sorted by name, for exposition.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
