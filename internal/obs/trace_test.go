package obs

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestSpanParentChild: nested StartSpan calls link children to parents and
// records land in completion order.
func TestSpanParentChild(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "solve")
	ctx2, child := StartSpan(ctx1, "classify")
	_, grand := StartSpan(ctx2, "attack-graph")
	grand.End()
	child.End()
	root.SetAttr("class", "fo")
	root.SetInt("steps", 42)
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(recs))
	}
	// Completion order: grand, child, root.
	if recs[0].Name != "attack-graph" || recs[1].Name != "classify" || recs[2].Name != "solve" {
		t.Fatalf("completion order = %v", []string{recs[0].Name, recs[1].Name, recs[2].Name})
	}
	if recs[2].ParentID != 0 {
		t.Fatalf("root has parent %d", recs[2].ParentID)
	}
	if recs[1].ParentID != recs[2].ID {
		t.Fatalf("classify parent = %d, want %d", recs[1].ParentID, recs[2].ID)
	}
	if recs[0].ParentID != recs[1].ID {
		t.Fatalf("grandchild parent = %d, want %d", recs[0].ParentID, recs[1].ID)
	}
	if len(recs[2].Attrs) != 2 || recs[2].Attrs[0] != (Attr{"class", "fo"}) || recs[2].Attrs[1] != (Attr{"steps", "42"}) {
		t.Fatalf("attrs = %+v", recs[2].Attrs)
	}
	for _, r := range recs {
		if r.Duration <= 0 {
			t.Fatalf("span %s has non-positive duration %v", r.Name, r.Duration)
		}
	}
}

// TestRingEvictionOrder: once the ring is full the OLDEST span is evicted
// first, and Snapshot returns survivors oldest-first.
func TestRingEvictionOrder(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 3})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("s%d", i))
		sp.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	want := []string{"s2", "s3", "s4"}
	for i, r := range recs {
		if r.Name != want[i] {
			t.Fatalf("survivors = %v, want %v", names(recs), want)
		}
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func names(recs []SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

// TestSampling: SampleEvery=3 records roots 1, 4, 7, ... and the children
// of unsampled roots are skipped with them.
func TestSampling(t *testing.T) {
	tr := NewTracer(TracerOptions{SampleEvery: 3})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 6; i++ {
		rctx, root := StartSpan(ctx, fmt.Sprintf("root%d", i))
		_, child := StartSpan(rctx, "child")
		child.End()
		root.End()
	}
	recs := tr.Snapshot()
	// Traces 0 and 3 are sampled: 2 spans each.
	if len(recs) != 4 {
		t.Fatalf("recorded %v, want 4 spans from 2 sampled traces", names(recs))
	}
	if recs[1].Name != "root0" || recs[3].Name != "root3" {
		t.Fatalf("sampled roots = %v", names(recs))
	}
	// Children of unsampled roots must not have been recorded as roots.
	for _, r := range recs {
		if r.Name == "child" && r.ParentID == 0 {
			t.Fatalf("child of unsampled trace recorded as root")
		}
	}
}

// TestDisabledTracingIsFree: with no tracer on the context, StartSpan
// returns the context unchanged, records nothing, and — the acceptance
// contract — allocates nothing.
func TestDisabledTracingIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "solve")
	if ctx2 != ctx {
		t.Fatalf("disabled StartSpan must return the context unchanged")
	}
	if sp != nil {
		t.Fatalf("disabled StartSpan must return a nil span")
	}
	sp.SetAttr("k", "v") // all no-ops on nil
	sp.SetInt("steps", 1)
	sp.End()

	allocs := testing.AllocsPerRun(1000, func() {
		c, s := StartSpan(ctx, "solve")
		s.SetAttr("class", "fo")
		s.SetInt("steps", 123)
		s.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %v per span, want 0", allocs)
	}
}

// TestUseAfterEndTolerated: starting a span from a context whose span has
// already ended degrades to no tracing instead of crashing or recording
// garbage parents.
func TestUseAfterEndTolerated(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	sctx, sp := StartSpan(ctx, "solve")
	sp.End()
	sp.End() // double End is a no-op
	_, late := StartSpan(sctx, "late")
	if late == nil {
		t.Fatalf("stale context should fall back to the tracer, got nil span")
	}
	late.End()
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("recorded %d spans, want 2 (double End must not duplicate)", len(recs))
	}
	if recs[1].ParentID != 0 {
		t.Fatalf("late span must re-root, got parent %d", recs[1].ParentID)
	}
}

// TestFormatTree renders the indented tree with durations and attributes.
func TestFormatTree(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	ctx := WithTracer(context.Background(), tr)
	rctx, root := StartSpan(ctx, "solve")
	c1ctx, c1 := StartSpan(rctx, "classify")
	c1.End()
	_ = c1ctx
	_, c2 := StartSpan(rctx, "eval/fo")
	c2.SetInt("steps", 7)
	c2.End()
	root.SetAttr("class", "fo")
	root.End()

	out := FormatTree(tr.Snapshot())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree has %d lines, want 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "solve") || !strings.Contains(lines[0], "class=fo") {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  classify") {
		t.Fatalf("first child line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  eval/fo") || !strings.Contains(lines[2], "steps=7") {
		t.Fatalf("second child line = %q", lines[2])
	}
}

// TestReset clears completed spans without breaking later recording.
func TestReset(t *testing.T) {
	tr := NewTracer(TracerOptions{Capacity: 4})
	ctx := WithTracer(context.Background(), tr)
	_, a := StartSpan(ctx, "a")
	a.End()
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Fatalf("Reset left spans behind")
	}
	_, b := StartSpan(ctx, "b")
	b.End()
	if got := tr.Snapshot(); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("post-Reset snapshot = %v", names(got))
	}
}
