package obs

import (
	"sync"
	"testing"
)

// TestCounterIdentity: the same (name, labels) resolves to the same handle
// regardless of label order, and distinct label sets get distinct handles.
func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("requests_total", L{"class", "fo"}, L{"verdict", "certain"})
	b := r.Counter("requests_total", L{"verdict", "certain"}, L{"class", "fo"})
	if a != b {
		t.Fatalf("label order must not change the series identity")
	}
	c := r.Counter("requests_total", L{"class", "fo"}, L{"verdict", "unknown"})
	if a == c {
		t.Fatalf("distinct label sets must be distinct series")
	}
	a.Inc()
	a.Add(2)
	if got := b.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("sibling series contaminated: %d", got)
	}
}

// TestTypeMismatchPanics: reusing a family name with another metric type is
// a programming error that must fail loudly, not corrupt the exposition.
func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on counter-vs-gauge type mismatch")
		}
	}()
	r.Gauge("x_total")
}

// TestCounterConcurrency: counters lose no increments under concurrency
// (run with -race in the obs-race CI job).
func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve inside the goroutine to also race the get-or-create
			// path, not just the increments.
			c := r.Counter("concurrent_total", L{"class", "fo"})
			g := r.Gauge("concurrent_gauge")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("concurrent_total", L{"class", "fo"}).Value(); got != goroutines*perG {
		t.Fatalf("lost increments: %d of %d", got, goroutines*perG)
	}
	if got := r.Gauge("concurrent_gauge").Value(); got != 0 {
		t.Fatalf("gauge should net to zero, got %d", got)
	}
}

// TestGauge exercises Set/Add semantics.
func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

// TestCacheMetrics: the migration shim counts hits/misses/evictions like
// lru.Stats does, and a nil receiver is inert.
func TestCacheMetrics(t *testing.T) {
	r := NewRegistry()
	m := NewCacheMetrics(r, "classify")
	m.Hit()
	m.Hit()
	m.Miss()
	m.Evicted(0) // no-op
	m.Evicted(2)
	m.SetSize(7, 100)
	if m.Hits() != 2 || m.Misses() != 1 || m.Evictions() != 2 {
		t.Fatalf("counts = %d/%d/%d, want 2/1/2", m.Hits(), m.Misses(), m.Evictions())
	}
	if got := r.Gauge(cacheLenName, L{"cache", "classify"}).Value(); got != 7 {
		t.Fatalf("len gauge = %d, want 7", got)
	}
	if got := r.Gauge(cacheCapName, L{"cache", "classify"}).Value(); got != 100 {
		t.Fatalf("cap gauge = %d, want 100", got)
	}

	var nilM *CacheMetrics
	nilM.Hit()
	nilM.Miss()
	nilM.Evicted(3)
	nilM.SetSize(1, 2)
	if nilM.Hits() != 0 || nilM.Misses() != 0 || nilM.Evictions() != 0 {
		t.Fatalf("nil CacheMetrics must read zero")
	}
}

// TestHelpBeforeAndAfterCreation: help text set before or after the first
// metric lands on the family either way.
func TestHelpBeforeAndAfterCreation(t *testing.T) {
	r := NewRegistry()
	r.Help("a_total", "before")
	r.Counter("a_total").Inc()
	r.Counter("b_total").Inc()
	r.Help("b_total", "after")
	fams := r.snapshot()
	byName := map[string]string{}
	for _, f := range fams {
		byName[f.name] = f.help
	}
	if byName["a_total"] != "before" || byName["b_total"] != "after" {
		t.Fatalf("help text lost: %+v", byName)
	}
}
