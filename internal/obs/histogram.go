package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket edges in seconds. They span the
// stack's real range — FO rewritings answer in microseconds, governed coNP
// searches run up to the operator's multi-second caps — and they are FIXED:
// exposition and golden tests depend on the bucket set being identical
// across processes and releases, so (unlike adaptive schemes) the edges
// never move with the data.
var DefBuckets = []float64{
	100e-9, 1e-6, 10e-6, 100e-6, 1e-3, 10e-3, 100e-3, 0.5, 1, 5, 10,
}

// Histogram counts observations into fixed buckets. Following the
// Prometheus convention, bucket i counts observations v <= edges[i]
// cumulatively at exposition time (counts are stored per-bucket and summed
// on read); an implicit +Inf bucket catches the rest. Safe for concurrent
// use: Observe is two atomic adds plus an atomic CAS loop for the sum.
type Histogram struct {
	edges   []float64       // strictly increasing upper bounds, +Inf excluded
	counts  []atomic.Uint64 // len(edges)+1; last is the +Inf overflow bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// newHistogram builds a histogram over the given edges. Edges must be
// strictly increasing; they are copied and sorted defensively.
func newHistogram(edges []float64) *Histogram {
	owned := make([]float64, len(edges))
	copy(owned, edges)
	sort.Float64s(owned)
	return &Histogram{
		edges:  owned,
		counts: make([]atomic.Uint64, len(owned)+1),
	}
}

// NewHistogram returns a standalone histogram (not attached to a registry)
// over the given edges, nil selecting DefBuckets. Standalone histograms
// back ad-hoc aggregations like certbench's per-op latency percentiles.
func NewHistogram(edges []float64) *Histogram {
	if edges == nil {
		edges = DefBuckets
	}
	return newHistogram(edges)
}

// bucketIndex returns the index of the bucket that counts v: the first
// edge >= v, or the overflow bucket. Binary search keeps Observe O(log n)
// with no allocation.
func (h *Histogram) bucketIndex(v float64) int {
	lo, hi := 0, len(h.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Edges returns the bucket upper bounds (excluding +Inf). The slice is
// shared; callers must not modify it.
func (h *Histogram) Edges() []float64 { return h.edges }

// Cumulative returns, for each edge plus +Inf, the number of observations
// less than or equal to it. The snapshot is not atomic across buckets —
// concurrent Observe calls may be partially visible — which is the standard
// exposition trade-off; totals converge once writers quiesce.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// Quantile estimates the p-quantile (0 <= p <= 1) by linear interpolation
// within the bucket holding the rank, the same estimate Prometheus's
// histogram_quantile computes. The lowest bucket interpolates from zero;
// ranks in the +Inf bucket clamp to the highest finite edge, so the
// estimate is always finite. Returns NaN when the histogram is empty.
func (h *Histogram) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := h.Cumulative()
	idx := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if idx >= len(h.edges) {
		// Overflow bucket: no finite upper edge to interpolate toward.
		if len(h.edges) == 0 {
			return math.NaN()
		}
		return h.edges[len(h.edges)-1]
	}
	lower := 0.0
	var below uint64
	if idx > 0 {
		lower = h.edges[idx-1]
		below = cum[idx-1]
	}
	upper := h.edges[idx]
	inBucket := cum[idx] - below
	if inBucket == 0 {
		return upper
	}
	return lower + (upper-lower)*(rank-float64(below))/float64(inBucket)
}

// QuantileDuration is Quantile for histograms observing seconds, returned
// as a duration. ok is false when the histogram is empty — Quantile's NaN
// would otherwise convert to a garbage duration — so callers holding a
// latency histogram that has seen no traffic yet can pick their own
// fallback (e.g. the fleet's minimum hedging delay).
func (h *Histogram) QuantileDuration(p float64) (d time.Duration, ok bool) {
	q := h.Quantile(p)
	if math.IsNaN(q) || q < 0 {
		return 0, false
	}
	return time.Duration(q * float64(time.Second)), true
}
