package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden locks the exposition byte-for-byte: families
// sorted by name, series sorted by canonical label key, histogram buckets
// cumulative with +Inf, sum, and count. Any format drift breaks real
// scrapers, so this is a contract test, not a snapshot of convenience.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Help("certd_solve_total", "Solve requests by class and verdict.")
	r.Counter("certd_solve_total", L{"class", "fo"}, L{"verdict", "certain"}).Add(2)
	r.Counter("certd_solve_total", L{"class", "conp-complete"}, L{"verdict", "degraded"}).Inc()
	r.Gauge("certd_inflight").Set(3)
	h := r.Histogram("certd_solve_seconds", []float64{0.001, 0.1}, L{"class", "fo"})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE certd_inflight gauge
certd_inflight 3
# TYPE certd_solve_seconds histogram
certd_solve_seconds_bucket{class="fo",le="0.001"} 1
certd_solve_seconds_bucket{class="fo",le="0.1"} 2
certd_solve_seconds_bucket{class="fo",le="+Inf"} 3
certd_solve_seconds_sum{class="fo"} 2.0505
certd_solve_seconds_count{class="fo"} 3
# HELP certd_solve_total Solve requests by class and verdict.
# TYPE certd_solve_total counter
certd_solve_total{class="conp-complete",verdict="degraded"} 1
certd_solve_total{class="fo",verdict="certain"} 2
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusEscaping: label values with quotes, backslashes, and
// newlines are escaped per the format.
func TestWritePrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", L{"q", "R(x | \"a\")\\\n"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE weird_total counter\n" +
		"weird_total{q=\"R(x | \\\"a\\\")\\\\\\n\"} 1\n"
	if got := b.String(); got != want {
		t.Fatalf("escaping drifted.\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestWritePrometheusEmptyFamilySkipped: a family that only ever received
// Help text produces no output.
func TestWritePrometheusEmptyFamilySkipped(t *testing.T) {
	r := NewRegistry()
	r.Help("never_used_total", "no series yet")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("expected empty exposition, got %q", b.String())
	}
}
