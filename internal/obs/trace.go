package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The span tracer records where a solve spends its time: one span per
// solver phase (classify, simplify, plan, method evaluation, degradation
// sampling), parent-linked into a tree. It is built for a hot serving
// path:
//
//   - Disabled is free. When no Tracer rides the context, StartSpan
//     returns the context unchanged and a nil *Span whose methods are
//     no-ops — zero allocations, one context value lookup. A regression
//     test holds this at exactly zero allocs.
//   - Enabled is bounded. Completed spans land in a fixed-capacity ring
//     buffer (oldest evicted first), and sampling (record one of every N
//     traces, decided at the root) keeps per-request cost proportional to
//     the sample rate.
//
// Attributes are flat key/value string pairs; SetInt formats integers at
// record time (only ever on the sampled path).

// Attr is one span attribute.
type Attr struct {
	Key, Value string
}

// SpanRecord is a completed span as stored in the tracer's ring.
type SpanRecord struct {
	// ID and ParentID link the tree; ParentID is 0 for root spans.
	ID, ParentID uint64
	// Name identifies the phase, e.g. "solve", "classify", "eval/fo".
	Name string
	// Start is the wall-clock start; Duration the measured span length.
	Start    time.Time
	Duration time.Duration
	// Attrs are the span's attributes in the order they were set.
	Attrs []Attr
}

// TracerOptions configures NewTracer. The zero value records every trace
// into a DefaultSpanCapacity ring.
type TracerOptions struct {
	// Capacity bounds the completed-span ring; 0 means
	// DefaultSpanCapacity. When full, the oldest span is evicted.
	Capacity int
	// SampleEvery records one of every N traces (decided at the root
	// span; children follow their root's fate). 0 and 1 record all.
	SampleEvery int
}

// DefaultSpanCapacity is the ring size used when TracerOptions.Capacity
// is zero: enough for a few hundred requests' phase spans without
// unbounded growth.
const DefaultSpanCapacity = 4096

// Tracer collects completed spans into a bounded ring. Safe for
// concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []SpanRecord
	head    int // index of the oldest record
	n       int // records currently held
	dropped uint64

	every   int
	rootSeq atomic.Uint64
	idSeq   atomic.Uint64
}

// NewTracer builds a tracer.
func NewTracer(opts TracerOptions) *Tracer {
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	every := opts.SampleEvery
	if every <= 0 {
		every = 1
	}
	return &Tracer{ring: make([]SpanRecord, capacity), every: every}
}

// Span is an in-flight span. A nil *Span is valid and inert: every method
// is a no-op, which is how the disabled-tracing path stays free.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
}

type tracerKey struct{}
type spanKey struct{}

// unsampled marks a trace the root sampling decision skipped, so
// descendant StartSpan calls return immediately instead of re-deciding.
var unsampled = &Span{}

// WithTracer returns a context carrying the tracer; StartSpan calls below
// it record spans.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span named name under the current span of ctx (or as
// a trace root when there is none) and returns the context to pass to
// child work. When ctx carries no tracer — tracing disabled — it returns
// ctx unchanged and a nil span, performing no allocation.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	cur, _ := ctx.Value(spanKey{}).(*Span)
	if cur == unsampled {
		return ctx, nil
	}
	if cur != nil && cur.tr == nil {
		// The context's span already ended — a use-after-End the tracer
		// tolerates by treating the context as untraced.
		cur = nil
	}
	var tr *Tracer
	var parent uint64
	if cur != nil {
		tr = cur.tr
		parent = cur.id
	} else {
		tr = TracerFrom(ctx)
		if tr == nil {
			return ctx, nil
		}
		if tr.every > 1 && tr.rootSeq.Add(1)%uint64(tr.every) != 1 {
			// Unsampled trace: mark the subtree so children skip quickly.
			return context.WithValue(ctx, spanKey{}, unsampled), nil
		}
	}
	sp := &Span{
		tr:     tr,
		id:     tr.idSeq.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SetAttr attaches a string attribute. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetInt attaches an integer attribute. No-op on a nil span.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// End completes the span, recording it into the tracer's ring. No-op on a
// nil span and on a second End. The span must not be used after End.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	rec := SpanRecord{
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    s.attrs,
	}
	tr := s.tr
	s.tr = nil
	tr.record(rec)
}

// record appends rec, evicting the oldest record when the ring is full.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < len(t.ring) {
		t.ring[(t.head+t.n)%len(t.ring)] = rec
		t.n++
		return
	}
	t.ring[t.head] = rec
	t.head = (t.head + 1) % len(t.ring)
	t.dropped++
}

// Snapshot returns the completed spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// Dropped returns how many spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all completed spans (in-flight spans are unaffected and
// will record normally).
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.head, t.n = 0, 0
}

// FormatTree renders completed spans as an indented tree with per-phase
// durations and attributes, children ordered by start time:
//
//	solve                 1.214ms  class=fo method=fo-rewriting
//	  classify            310µs
//	  eval/fo             801µs    steps=1234
//
// Spans whose parent is missing from recs (evicted from the ring) are
// promoted to roots, so a partial snapshot still renders.
func FormatTree(recs []SpanRecord) string {
	byID := make(map[uint64]SpanRecord, len(recs))
	children := make(map[uint64][]SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	var roots []SpanRecord
	for _, r := range recs {
		if _, ok := byID[r.ParentID]; r.ParentID != 0 && ok {
			children[r.ParentID] = append(children[r.ParentID], r)
		} else {
			roots = append(roots, r)
		}
	}
	byStart := func(s []SpanRecord) {
		sort.Slice(s, func(i, j int) bool {
			if !s[i].Start.Equal(s[j].Start) {
				return s[i].Start.Before(s[j].Start)
			}
			return s[i].ID < s[j].ID
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	// First pass computes the widest name column so durations align.
	width := 0
	var walk func(r SpanRecord, depth int)
	var order []struct {
		rec   SpanRecord
		depth int
	}
	walk = func(r SpanRecord, depth int) {
		if n := 2*depth + len(r.Name); n > width {
			width = n
		}
		order = append(order, struct {
			rec   SpanRecord
			depth int
		}{r, depth})
		for _, c := range children[r.ID] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}

	var b strings.Builder
	for _, e := range order {
		indent := strings.Repeat("  ", e.depth)
		fmt.Fprintf(&b, "%-*s  %10s", width, indent+e.rec.Name, e.rec.Duration.Round(time.Microsecond))
		for _, a := range e.rec.Attrs {
			b.WriteString("  ")
			b.WriteString(a.Key)
			b.WriteByte('=')
			b.WriteString(a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
