package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families are sorted by
// name and series by their canonical label key, so a scripted request
// sequence produces byte-identical text — the property the golden-output
// tests lock.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatLabels renders {k="v",...} from already-sorted labels, with extra
// appended last (used for the histogram "le" label).
func formatLabels(labels []L, extra ...L) string {
	all := make([]L, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.K)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.V))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips, +Inf spelled literally.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// write renders one family. Families with no series (pre-registered help
// text only) are skipped entirely, matching client_golang behavior.
func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	series := make([]*series, len(f.ordered))
	copy(series, f.ordered)
	f.mu.Unlock()
	if len(series) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for _, s := range series {
		if err := f.writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, s *series) error {
	switch f.typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.c.Value())
		return err
	case typeGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(s.labels), s.g.Value())
		return err
	case typeHistogram:
		h := s.h
		cum := h.Cumulative()
		for i, edge := range h.edges {
			le := L{"le", formatFloat(edge)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, le), cum[i]); err != nil {
				return err
			}
		}
		inf := L{"le", "+Inf"}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, formatLabels(s.labels, inf), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, formatLabels(s.labels), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(s.labels), h.Count())
		return err
	}
	return nil
}
