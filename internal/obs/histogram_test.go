package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries locks the Prometheus "le" convention: an
// observation equal to an edge counts in that edge's bucket (upper bound
// inclusive), and anything above the last edge lands in +Inf. The bucket
// edges are fixed so this table is exhaustive for the interesting cases.
func TestHistogramBucketBoundaries(t *testing.T) {
	edges := []float64{1, 10, 100}
	tests := []struct {
		v    float64
		want int // index of the bucket the value increments
	}{
		{0, 0},
		{0.5, 0},
		{1, 0}, // exactly on the first edge: le="1" counts it
		{1.0001, 1},
		{10, 1}, // exactly on an interior edge
		{10.5, 2},
		{100, 2},   // exactly on the last finite edge
		{100.1, 3}, // overflow → +Inf
		{math.MaxFloat64, 3},
	}
	for _, tc := range tests {
		h := newHistogram(edges)
		h.Observe(tc.v)
		for i := range h.counts {
			want := uint64(0)
			if i == tc.want {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%g): bucket[%d] = %d, want %d", tc.v, i, got, want)
			}
		}
	}
}

// TestHistogramCumulative: exposition counts are cumulative per the text
// format, ending at the total.
func TestHistogramCumulative(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	got := h.Cumulative()
	want := []uint64{2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.2) > 1e-9 {
		t.Fatalf("sum = %g, want 556.2", h.Sum())
	}
}

// TestHistogramQuantile: linear interpolation within the rank's bucket,
// clamping the +Inf bucket to the highest finite edge.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	// 10 observations uniform in (0,10]: all in the first bucket.
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50 = %g, want 5 (interpolated midpoint of the first bucket)", got)
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p100 = %g, want 10", got)
	}

	// Observations beyond the last edge clamp to it.
	h2 := newHistogram([]float64{10, 20})
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got != 20 {
		t.Fatalf("overflow quantile = %g, want clamp to 20", got)
	}

	// Empty histogram has no quantiles.
	h3 := newHistogram([]float64{1})
	if got := h3.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %g, want NaN", got)
	}
}

// TestHistogramConcurrentObserve: no observations are lost and the sum is
// exact for integer-valued observations (run under -race in CI).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DefBuckets)
	const goroutines, perG = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
	if h.Sum() != goroutines*perG {
		t.Fatalf("sum = %g, want %d", h.Sum(), goroutines*perG)
	}
}

// TestHistogramEdgesAreSorted: constructor sorts defensively so a caller
// passing unsorted edges still gets a well-formed histogram.
func TestHistogramEdgesAreSorted(t *testing.T) {
	h := newHistogram([]float64{100, 1, 10})
	h.Observe(5)
	if got := h.counts[1].Load(); got != 1 {
		t.Fatalf("Observe(5) with unsorted edges: bucket[1] = %d, want 1", got)
	}
}

// TestQuantileDuration: an empty histogram reports !ok instead of a NaN
// duration; a populated one converts the seconds estimate to a duration.
func TestQuantileDuration(t *testing.T) {
	h := NewHistogram(nil)
	if d, ok := h.QuantileDuration(0.95); ok || d != 0 {
		t.Fatalf("empty histogram: QuantileDuration = %v, %v; want 0, false", d, ok)
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.010) // 10ms, exactly on a bucket edge
	}
	d, ok := h.QuantileDuration(0.95)
	if !ok {
		t.Fatal("populated histogram reported !ok")
	}
	// The estimate interpolates within the (1ms, 10ms] bucket, so it lands
	// in that interval, never outside it.
	if d <= 1*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("QuantileDuration(0.95) = %v, want within (1ms, 10ms]", d)
	}
}
