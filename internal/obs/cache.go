package obs

// CacheMetrics is the registry-backed view of one memoization layer's
// counters — the migration target for the bespoke lru.Stats plumbing. Each
// cache (classification, compiled plans, verdicts) gets one instance,
// labeled cache="<name>", and reports hits, misses, and evictions as they
// happen plus occupancy as a gauge. A nil *CacheMetrics is valid and
// inert, so cache wrappers can stay uninstrumented in tests.
type CacheMetrics struct {
	hits, misses, evictions *Counter
	len, capacity           *Gauge
}

// Metric names shared by every instrumented cache.
const (
	cacheHitsName      = "cache_hits_total"
	cacheMissesName    = "cache_misses_total"
	cacheEvictionsName = "cache_evictions_total"
	cacheLenName       = "cache_entries"
	cacheCapName       = "cache_capacity"
)

// NewCacheMetrics registers the counters and gauges for the named cache.
func NewCacheMetrics(r *Registry, name string) *CacheMetrics {
	r.Help(cacheHitsName, "Cache lookups served from the cache.")
	r.Help(cacheMissesName, "Cache lookups that had to compute.")
	r.Help(cacheEvictionsName, "Entries evicted to stay within capacity.")
	r.Help(cacheLenName, "Entries currently held.")
	r.Help(cacheCapName, "Configured capacity.")
	l := L{"cache", name}
	return &CacheMetrics{
		hits:      r.Counter(cacheHitsName, l),
		misses:    r.Counter(cacheMissesName, l),
		evictions: r.Counter(cacheEvictionsName, l),
		len:       r.Gauge(cacheLenName, l),
		capacity:  r.Gauge(cacheCapName, l),
	}
}

// Hit records a cache hit. No-op on nil.
func (m *CacheMetrics) Hit() {
	if m != nil {
		m.hits.Inc()
	}
}

// Miss records a cache miss. No-op on nil.
func (m *CacheMetrics) Miss() {
	if m != nil {
		m.misses.Inc()
	}
}

// Evicted records n evictions. No-op on nil.
func (m *CacheMetrics) Evicted(n int) {
	if m != nil && n > 0 {
		m.evictions.Add(uint64(n))
	}
}

// SetSize records current occupancy and capacity. No-op on nil.
func (m *CacheMetrics) SetSize(length, capacity int) {
	if m != nil {
		m.len.Set(int64(length))
		m.capacity.Set(int64(capacity))
	}
}

// Hits returns the hit count (0 on nil).
func (m *CacheMetrics) Hits() uint64 {
	if m == nil {
		return 0
	}
	return m.hits.Value()
}

// Misses returns the miss count (0 on nil).
func (m *CacheMetrics) Misses() uint64 {
	if m == nil {
		return 0
	}
	return m.misses.Value()
}

// Evictions returns the eviction count (0 on nil).
func (m *CacheMetrics) Evictions() uint64 {
	if m == nil {
		return 0
	}
	return m.evictions.Value()
}

// Len returns the last occupancy recorded with SetSize (0 on nil).
func (m *CacheMetrics) Len() int {
	if m == nil {
		return 0
	}
	return int(m.len.Value())
}

// Cap returns the last capacity recorded with SetSize (0 on nil).
func (m *CacheMetrics) Cap() int {
	if m == nil {
		return 0
	}
	return int(m.capacity.Value())
}
