// Package plan provides the shared compiled-plan cache of the serving
// layer: a bounded LRU of solver.Plan values keyed by the query's canonical
// form, with singleflight deduplication so concurrent requests for the same
// query never duplicate classification and compilation work.
package plan

import (
	"context"
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/lru"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
)

// DefaultCacheSize bounds a plan cache built with NewCache.
const DefaultCacheSize = 1024

type entry struct {
	p   *solver.Plan
	err error
}

// call is an in-flight compilation; waiters block on wg and read p/err
// afterwards.
type call struct {
	wg  sync.WaitGroup
	p   *solver.Plan
	err error
}

// Cache is a bounded, singleflight-deduplicated cache of compiled plans.
// Plans are compiled for the canonical form of the query, so queries equal
// up to variable renaming and atom reordering share one plan (and the plan's
// Result/Verdict values describe the canonical query, consistently with the
// classification the server already reports). Compilation errors are cached
// like plans: an unclassifiable query costs the analysis once. Safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	c        *lru.Cache[string, entry]
	inflight map[string]*call
	m        *obs.CacheMetrics
}

// NewCache returns an empty plan cache holding at most size plans (floored
// at one; size <= 0 selects DefaultCacheSize).
func NewCache(size int) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Cache{
		c:        lru.New[string, entry](size),
		inflight: make(map[string]*call),
	}
}

// Instrument mirrors the cache's hits, misses, evictions, and occupancy
// into the given metrics (obs.NewCacheMetrics). A nil argument leaves the
// cache uninstrumented. Must be called before the cache is shared across
// goroutines.
func (c *Cache) Instrument(m *obs.CacheMetrics) {
	c.m = m
	if m != nil {
		m.SetSize(c.c.Len(), c.c.Cap())
	}
}

// Get returns the compiled plan for q's canonical form, compiling it at
// most once per canonical key even under concurrent misses: the first
// caller compiles while the rest wait for its result. A traced context
// records a plan/compile span around the (at most one) compilation.
func (c *Cache) Get(ctx context.Context, q cq.Query) (*solver.Plan, error) {
	key := cq.CanonicalKey(q)
	c.mu.Lock()
	if e, ok := c.c.Get(key); ok {
		c.mu.Unlock()
		c.m.Hit()
		return e.p, e.err
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.m.Miss()
		cl.wg.Wait()
		return cl.p, cl.err
	}
	cl := &call{}
	cl.wg.Add(1)
	c.inflight[key] = cl
	c.mu.Unlock()
	c.m.Miss()

	_, sp := obs.StartSpan(ctx, "plan/compile")
	canon, _ := cq.Canonicalize(q)
	cl.p, cl.err = solver.CompilePlan(canon)
	sp.End()

	c.mu.Lock()
	delete(c.inflight, key)
	if c.c.Put(key, entry{p: cl.p, err: cl.err}) {
		c.m.Evicted(1)
	}
	c.m.SetSize(c.c.Len(), c.c.Cap())
	c.mu.Unlock()
	cl.wg.Done()
	return cl.p, cl.err
}

// Len returns the number of cached plans (not counting in-flight
// compilations).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c.Len()
}

// Stats returns the cache's occupancy and hit/miss/eviction counters.
func (c *Cache) Stats() lru.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c.Stats()
}
