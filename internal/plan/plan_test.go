package plan

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/solver"
)

func TestSharedAcrossIsomorphicQueries(t *testing.T) {
	c := NewCache(8)
	a := cq.MustParseQuery("R(x | y), S(y | z)")
	b := cq.MustParseQuery("S(q | r), R(p | q)") // same canonical form
	pa, err := c.Get(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := c.Get(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatal("isomorphic queries must share one compiled plan")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestConcurrentGetsCompileOnce(t *testing.T) {
	c := NewCache(8)
	q := cq.MustParseQuery("R(x | y), S(y | z), T(z | w)")
	const n = 16
	plans := make([]*solver.Plan, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Get(context.Background(), q)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent gets must return the single-flighted plan")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestErrorsCached(t *testing.T) {
	c := NewCache(8)
	selfJoin := cq.MustParseQuery("R(x | y), R(y | x)")
	if _, err := c.Get(context.Background(), selfJoin); err == nil {
		t.Fatal("self-join must fail to compile")
	}
	if _, err := c.Get(context.Background(), selfJoin); err == nil {
		t.Fatal("cached compile error must be returned")
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("second Get must hit the cached error, stats %+v", s)
	}
}

func TestBounded(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 5; i++ {
		q := cq.MustParseQuery(fmt.Sprintf("R%d(x | y)", i))
		if _, err := c.Get(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 3 {
		t.Fatalf("Evictions = %d, want 3", s.Evictions)
	}
}

// TestPlanSolvesCanonically: the cached plan decides the same instances as
// solving the original query directly (decisions are invariant under the
// canonicalization's variable renaming).
func TestPlanSolvesCanonically(t *testing.T) {
	c := NewCache(8)
	q := cq.MustParseQuery("Emp(name | dept), Dept(dept | floor)")
	p, err := c.Get(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 4, Noise: 3, Domain: 3}, seed)
		want, err := solver.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Solve(d)
		if err != nil {
			t.Fatal(err)
		}
		if got.Certain != want {
			t.Fatalf("seed %d: plan %v, direct %v", seed, got.Certain, want)
		}
	}
	// Also across an explicit fact set with constants shared by the query.
	d := db.MustParse("Emp(alice | sales), Emp(alice | hr), Dept(sales | 1), Dept(hr | 1)")
	want, err := solver.Certain(q, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Solve(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Certain != want {
		t.Fatalf("explicit instance: plan %v, direct %v", res.Certain, want)
	}
}
