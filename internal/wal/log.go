package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment and snapshot file naming. Segments are numbered by a
// monotonically increasing sequence; snapshots carry the database version
// they capture. Hex with fixed width keeps lexical and numeric order equal,
// so a sorted directory listing is already in replay order.
const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".ckpt"
	tmpSuffix  = ".tmp"
)

func segName(seq uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, seq, segSuffix) }
func snapName(v uint64) string  { return fmt.Sprintf("%s%016x%s", snapPrefix, v, snapSuffix) }

// parseSeq extracts the sequence/version number from a segment or snapshot
// file name, reporting ok=false for foreign files (including temp files).
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment sequence numbers present in dir, sorted
// ascending, and likewise the snapshot versions sorted ascending.
func listSegments(fs FS, dir string) (segs, snaps []uint64, err error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range names {
		if n, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
		if n, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// log is the append side of the WAL: one open segment file plus rotation.
// Not safe for concurrent use; the Store serializes appends through its
// commit path.
type log struct {
	fs           FS
	dir          string
	segmentBytes int64

	seq  uint64 // sequence of the open segment
	f    File
	size int64
	buf  []byte // reusable framing buffer
}

// openLog starts a fresh segment with the given sequence number. Recovery
// never appends to an existing segment: a new one is always created, so a
// torn tail can only ever exist in the newest segment of a crashed process.
func openLog(fs FS, dir string, seq uint64, segmentBytes int64) (*log, error) {
	l := &log{fs: fs, dir: dir, segmentBytes: segmentBytes, seq: seq}
	if err := l.openSegment(seq); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *log) path(seq uint64) string { return filepath.Join(l.dir, segName(seq)) }

func (l *log) openSegment(seq uint64) error {
	f, err := l.fs.Create(l.path(seq))
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", segName(seq), err)
	}
	// Make the directory entry durable before any record lands in it, so a
	// replayer never sees records in a file that could vanish.
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir after segment create: %w", err)
	}
	l.seq = seq
	l.f = f
	l.size = 0
	return nil
}

// append frames and writes one record, rotating first when the open
// segment is full. The record is NOT durable until sync returns.
func (l *log) append(payload []byte) error {
	if l.segmentBytes > 0 && l.size >= l.segmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	l.buf = AppendRecord(l.buf[:0], payload)
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append to segment %s: %w", segName(l.seq), err)
	}
	return nil
}

// rotate makes the open segment durable, closes it, and opens the next.
// The sync-before-create ordering is a recovery invariant: a segment N+1
// exists on disk only if segment N's full contents are durable, so replay
// may treat corruption in any non-final segment as unrecoverable instead
// of as a crash artifact.
func (l *log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment %s before rotation: %w", segName(l.seq), err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close segment %s: %w", segName(l.seq), err)
	}
	return l.openSegment(l.seq + 1)
}

func (l *log) sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync segment %s: %w", segName(l.seq), err)
	}
	return nil
}

func (l *log) close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
