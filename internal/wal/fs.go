package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the filesystem surface the WAL and Store drive. Production uses
// OSFS; robustness tests use FaultFS to fail any single operation — a short
// write, an fsync error, a failed rename — deterministically, and to prove
// the store degrades to read-only instead of corrupting state or dying.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names (not full paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// Truncate cuts a file to size bytes (torn-tail repair on recovery).
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making renames and removals durable.
	SyncDir(dir string) error
}

// File is the open-file surface: sequential reads for replay, appends and
// fsync for the write path.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the production FS backed by the os package.
type OSFS struct{}

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (OSFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// FaultFS wraps an FS with injectable faults. Each hook, when non-nil, is
// consulted before the underlying operation; returning a non-nil error
// fails the operation without touching the base FS. OnWrite may also
// request a short write: it returns how many bytes to pass through before
// the error (0 ≤ allow ≤ len(p)).
//
// Hooks run under the FaultFS mutex, so tests may mutate the hook fields
// from the test goroutine via Set* while the store runs.
type FaultFS struct {
	Base FS

	mu       sync.Mutex
	onWrite  func(name string, p []byte) (allow int, err error)
	onSync   func(name string) error
	onCreate func(name string) error
	onRename func(oldname, newname string) error
	onRemove func(name string) error
}

// NewFaultFS wraps base (defaulting to OSFS) with no faults armed.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OSFS{}
	}
	return &FaultFS{Base: base}
}

// SetWriteFault arms (or with nil, disarms) the write hook.
func (f *FaultFS) SetWriteFault(fn func(name string, p []byte) (int, error)) {
	f.mu.Lock()
	f.onWrite = fn
	f.mu.Unlock()
}

// SetSyncFault arms (or with nil, disarms) the fsync hook.
func (f *FaultFS) SetSyncFault(fn func(name string) error) {
	f.mu.Lock()
	f.onSync = fn
	f.mu.Unlock()
}

// SetCreateFault arms (or with nil, disarms) the create hook.
func (f *FaultFS) SetCreateFault(fn func(name string) error) {
	f.mu.Lock()
	f.onCreate = fn
	f.mu.Unlock()
}

// SetRenameFault arms (or with nil, disarms) the rename hook.
func (f *FaultFS) SetRenameFault(fn func(oldname, newname string) error) {
	f.mu.Lock()
	f.onRename = fn
	f.mu.Unlock()
}

// SetRemoveFault arms (or with nil, disarms) the remove hook.
func (f *FaultFS) SetRemoveFault(fn func(name string) error) {
	f.mu.Lock()
	f.onRemove = fn
	f.mu.Unlock()
}

func (f *FaultFS) Create(name string) (File, error) {
	f.mu.Lock()
	hook := f.onCreate
	f.mu.Unlock()
	if hook != nil {
		if err := hook(name); err != nil {
			return nil, err
		}
	}
	file, err := f.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, f: file}, nil
}

func (f *FaultFS) Open(name string) (File, error)         { return f.Base.Open(name) }
func (f *FaultFS) ReadDir(dir string) ([]string, error)   { return f.Base.ReadDir(dir) }
func (f *FaultFS) MkdirAll(dir string) error              { return f.Base.MkdirAll(dir) }
func (f *FaultFS) Truncate(name string, size int64) error { return f.Base.Truncate(name, size) }
func (f *FaultFS) SyncDir(dir string) error               { return f.Base.SyncDir(dir) }

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	hook := f.onRename
	f.mu.Unlock()
	if hook != nil {
		if err := hook(oldname, newname); err != nil {
			return err
		}
	}
	return f.Base.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	hook := f.onRemove
	f.mu.Unlock()
	if hook != nil {
		if err := hook(name); err != nil {
			return err
		}
	}
	return f.Base.Remove(name)
}

// faultFile intercepts writes and fsyncs on files created through FaultFS.
type faultFile struct {
	fs   *FaultFS
	name string
	f    File
}

func (w *faultFile) Read(p []byte) (int, error) { return w.f.Read(p) }
func (w *faultFile) Close() error               { return w.f.Close() }

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	hook := w.fs.onWrite
	w.fs.mu.Unlock()
	if hook != nil {
		allow, err := hook(w.name, p)
		if err != nil {
			if allow < 0 {
				allow = 0
			}
			if allow > len(p) {
				allow = len(p)
			}
			n := 0
			if allow > 0 {
				// A short write persists a torn record — exactly the shape
				// crash recovery must truncate away.
				n, _ = w.f.Write(p[:allow])
			}
			return n, err
		}
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	hook := w.fs.onSync
	w.fs.mu.Unlock()
	if hook != nil {
		if err := hook(w.name); err != nil {
			return err
		}
	}
	return w.f.Sync()
}
