package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
)

func fact(rel string, keyLen int, args ...string) db.Fact {
	return db.Fact{Rel: rel, KeyLen: keyLen, Args: args}
}

// testOpts returns store options on a fresh temp dir with an isolated
// registry, fsyncing always so every committed record is on disk the
// moment Mutate returns (the crash matrix depends on that).
func testOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		Dir:      t.TempDir(),
		Fsync:    FsyncAlways,
		Registry: obs.NewRegistry(),
	}
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustMutate(t *testing.T, s *Store, ins, del []db.Fact) uint64 {
	t.Helper()
	v, _, err := s.Mutate(ins, del, -1)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	return v
}

func TestStoreInsertDeleteReopen(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)

	if _, v := s.DB(); v != 0 {
		t.Fatalf("fresh store at version %d, want 0", v)
	}
	v1 := mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b"), fact("R", 1, "a", "b2")}, nil)
	v2 := mustMutate(t, s, []db.Fact{fact("S", 1, "b", "c")}, nil)
	v3 := mustMutate(t, s, nil, []db.Fact{fact("R", 1, "a", "b2")})
	if v1 != 1 || v2 != 2 || v3 != 3 {
		t.Fatalf("versions %d,%d,%d, want 1,2,3", v1, v2, v3)
	}
	want := db.MustParse(`R(a | b) S(b | c)`)
	if d, v := s.DB(); v != 3 || !d.Equal(want) {
		t.Fatalf("state at v%d = %s, want %s", v, d, want)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, opts)
	if d, v := s2.DB(); v != 3 || !d.Equal(want) {
		t.Fatalf("reopened state at v%d = %s, want %s", v, d, want)
	}
}

func TestStoreNoOpMutations(t *testing.T) {
	opts := testOpts(t)
	s := mustOpen(t, opts)
	f := fact("R", 1, "a", "b")
	mustMutate(t, s, []db.Fact{f}, nil)

	// Re-inserting a present fact and deleting an absent one change nothing:
	// no record, no version bump.
	v, applied, err := s.Mutate([]db.Fact{f}, []db.Fact{fact("R", 1, "zz", "q")}, -1)
	if err != nil || v != 1 || applied != 0 {
		t.Fatalf("no-op: v=%d applied=%d err=%v, want v=1 applied=0", v, applied, err)
	}
	if got := opts.Registry.Counter(metricAppends).Value(); got != 1 {
		t.Fatalf("appends = %d after no-op, want 1", got)
	}
}

func TestStoreCAS(t *testing.T) {
	s := mustOpen(t, testOpts(t))
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "a", "b")}, nil, 5); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale CAS: err = %v, want ErrConflict", err)
	}
	var ce *ConflictError
	_, _, err := s.Mutate([]db.Fact{fact("R", 1, "a", "b")}, nil, 7)
	if !errors.As(err, &ce) || ce.Want != 7 || ce.Have != 0 {
		t.Fatalf("conflict detail = %v", err)
	}
	if v, _, err := s.Mutate([]db.Fact{fact("R", 1, "a", "b")}, nil, 0); err != nil || v != 1 {
		t.Fatalf("matching CAS: v=%d err=%v", v, err)
	}
	// The same CAS again is now stale: the version moved.
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "a", "c")}, nil, 0); !errors.Is(err, ErrConflict) {
		t.Fatalf("replayed CAS: err = %v, want ErrConflict", err)
	}
	if d, v := s.DB(); v != 1 || d.Len() != 1 {
		t.Fatalf("state after conflicts: v=%d len=%d", v, d.Len())
	}
}

func TestStoreValidationRejected(t *testing.T) {
	s := mustOpen(t, testOpts(t))
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b")}, nil)

	cases := []db.Fact{
		fact("R", 1, "x\x00y", "b"),                // NUL byte
		fact("R", 2, "a", "b", "c"),                // signature conflict with stored R
		{Rel: "T", KeyLen: 3, Args: []string{"a"}}, // key longer than arity
	}
	for i, bad := range cases {
		if _, _, err := s.Mutate([]db.Fact{bad}, nil, -1); err == nil {
			t.Fatalf("case %d: invalid fact accepted", i)
		}
	}
	// Conflicting signatures for a NEW relation within one request.
	_, _, err := s.Mutate([]db.Fact{fact("T", 1, "a", "b"), fact("T", 2, "a", "b", "c")}, nil, -1)
	if err == nil {
		t.Fatal("in-request signature conflict accepted")
	}
	if d, v := s.DB(); v != 1 || d.Len() != 1 {
		t.Fatalf("rejected mutations moved the store: v=%d len=%d", v, d.Len())
	}
}

func TestStoreInsertThenDeleteSameRequest(t *testing.T) {
	s := mustOpen(t, testOpts(t))
	f := fact("R", 1, "a", "b")
	v, applied, err := s.Mutate([]db.Fact{f}, []db.Fact{f}, -1)
	if err != nil || v != 1 || applied != 2 {
		t.Fatalf("insert+delete: v=%d applied=%d err=%v", v, applied, err)
	}
	if d, _ := s.DB(); d.Len() != 0 {
		t.Fatalf("fact survived its own deletion: %s", d)
	}
	// And the round-trip through the WAL replays cleanly.
	s.Close()
	s2 := mustOpen(t, Options{Dir: s.opts.Dir, Registry: obs.NewRegistry()})
	if d, v := s2.DB(); v != 1 || d.Len() != 0 {
		t.Fatalf("reopen: v=%d len=%d", v, d.Len())
	}
}

func TestStoreGroupCommit(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), Fsync: FsyncBatch, Registry: obs.NewRegistry()})
	const n = 32
	versions := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := s.Mutate([]db.Fact{fact("R", 1, fmt.Sprintf("k%d", i), "v")}, nil, -1)
			if err != nil {
				t.Errorf("mutate %d: %v", i, err)
			}
			versions[i] = v
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, v := range versions {
		if v < 1 || v > n || seen[v] {
			t.Fatalf("versions not a permutation of 1..%d: %v", n, versions)
		}
		seen[v] = true
	}
	d, v := s.DB()
	if v != n || d.Len() != n {
		t.Fatalf("final v=%d len=%d, want %d", v, d.Len(), n)
	}
	s.Close()
	s2 := mustOpen(t, Options{Dir: s.opts.Dir, Registry: obs.NewRegistry()})
	if d2, v2 := s2.DB(); v2 != n || !d2.Equal(d) {
		t.Fatalf("reopen after group commit: v=%d", v2)
	}
}

func TestStoreSeed(t *testing.T) {
	seed := db.MustParse(`R(a | b) R(a | b2) S(x | y)`)
	opts := testOpts(t)
	opts.Seed = seed
	s := mustOpen(t, opts)
	if d, v := s.DB(); v != 0 || !d.Equal(seed) {
		t.Fatalf("seeded store: v=%d", v)
	}
	mustMutate(t, s, []db.Fact{fact("S", 1, "x2", "y2")}, nil)
	s.Close()

	// The seed must be durable: reopening WITHOUT the seed option recovers it.
	s2 := mustOpen(t, Options{Dir: opts.Dir, Registry: obs.NewRegistry()})
	want := seed.Clone()
	if err := want.Add(fact("S", 1, "x2", "y2")); err != nil {
		t.Fatal(err)
	}
	if d, v := s2.DB(); v != 1 || !d.Equal(want) {
		t.Fatalf("reopen lost seed: v=%d %s", v, d)
	}
}

// mutationScript is the fixed write history the crash tests replay.
func mutationScript() []struct{ ins, del []db.Fact } {
	return []struct{ ins, del []db.Fact }{
		{ins: []db.Fact{fact("R", 1, "a", "b"), fact("R", 1, "a", "b2")}},
		{ins: []db.Fact{fact("S", 1, "b", "c")}},
		{ins: []db.Fact{fact("R", 1, "a2", "b"), fact("S", 1, "b2", "c2")}},
		{del: []db.Fact{fact("R", 1, "a", "b2")}},
		{ins: []db.Fact{fact("U", 2, "u", "v", "w")}},
		{del: []db.Fact{fact("S", 1, "b2", "c2")}, ins: []db.Fact{fact("S", 1, "b3", "c3")}},
	}
}

// writeHistory runs the script against a fresh store in dir and returns
// the expected database state after every prefix of mutations
// (states[i] = state at version i).
func writeHistory(t *testing.T, dir string) (states []*db.DB) {
	t.Helper()
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, Registry: obs.NewRegistry()})
	states = append(states, db.New())
	cur := db.New()
	for _, m := range mutationScript() {
		mustMutate(t, s, m.ins, m.del)
		for _, f := range m.ins {
			if err := cur.Add(f); err != nil {
				t.Fatal(err)
			}
		}
		for _, f := range m.del {
			cur.Remove(f)
		}
		states = append(states, cur.Clone())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return states
}

// walSegments returns the segment file names in dir, sorted.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	names, err := (OSFS{}).ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}
	return segs
}

// cloneDir copies every file of src into a fresh temp dir.
func cloneDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	names, err := (OSFS{}).ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(src, n))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, n), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recordBoundaries scans a segment file and returns the byte offsets at
// which each record ends (cumulative clean prefixes), starting with 0.
func recordBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := []int64{0}
	var off int64
	_, rerr := ReadRecords(bytes.NewReader(data), func(p []byte) error {
		off += int64(headerSize + len(p))
		ends = append(ends, off)
		return nil
	})
	if rerr != nil {
		t.Fatalf("history segment not clean: %v", rerr)
	}
	return ends
}

// TestCrashRecoveryEveryPrefix is the acceptance matrix: the WAL is cut at
// EVERY byte offset — simulating a crash mid-append — and recovery must
// come back at exactly the version whose records fit completely, with the
// database equal to the from-scratch state at that version.
func TestCrashRecoveryEveryPrefix(t *testing.T) {
	histDir := t.TempDir()
	states := writeHistory(t, histDir)
	segs := walSegments(t, histDir)
	if len(segs) != 1 {
		t.Fatalf("history produced %d segments, want 1", len(segs))
	}
	segPath := filepath.Join(histDir, segs[0])
	ends := recordBoundaries(t, segPath)
	if len(ends) != len(states) {
		t.Fatalf("%d record boundaries for %d states", len(ends), len(states))
	}
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	versionAt := func(cut int64) int {
		v := 0
		for i, e := range ends {
			if e <= cut {
				v = i
			}
		}
		return v
	}
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := cloneDir(t, histDir)
		if err := os.Truncate(filepath.Join(dir, segs[0]), cut); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		wantV := versionAt(cut)
		d, v := s.DB()
		if int(v) != wantV || !d.Equal(states[wantV]) {
			t.Fatalf("cut %d: recovered v=%d (want %d), db=%s want %s", cut, v, wantV, d, states[wantV])
		}
		if ro, _ := s.ReadOnly(); ro {
			t.Fatalf("cut %d: recovered store is read-only", cut)
		}
		// Recovery must be idempotent: a second crashless reopen lands in
		// the identical state.
		s.Close()
		s2, err := Open(Options{Dir: dir, Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if d2, v2 := s2.DB(); v2 != v || !d2.Equal(d) {
			t.Fatalf("cut %d: reopen diverged (v %d→%d)", cut, v, v2)
		}
		s2.Close()
	}
}

// TestCrashRecoveryCorruptByte flips each byte of the final segment in
// turn: recovery treats the damage as a torn tail — state rolls back to
// the last record before the flip and the store stays writable.
func TestCrashRecoveryCorruptByte(t *testing.T) {
	histDir := t.TempDir()
	states := writeHistory(t, histDir)
	segs := walSegments(t, histDir)
	segPath := filepath.Join(histDir, segs[0])
	ends := recordBoundaries(t, segPath)
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recordOf := func(off int64) int {
		v := 0
		for i := 0; i < len(ends)-1; i++ {
			if ends[i] <= off {
				v = i
			}
		}
		return v
	}
	// Every offset is covered by the framing matrix in record_test.go; here
	// a stride keeps the full-store recovery loop fast while still hitting
	// every record and every field type (magic, length, CRC, payload).
	for off := int64(0); off < int64(len(full)); off += 3 {
		dir := cloneDir(t, histDir)
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x5A
		if err := os.WriteFile(filepath.Join(dir, segs[0]), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		wantV := recordOf(off)
		d, v := s.DB()
		if int(v) != wantV || !d.Equal(states[wantV]) {
			t.Fatalf("offset %d: recovered v=%d want %d", off, v, wantV)
		}
		// The store remains writable after truncating the damage.
		if _, _, err := s.Mutate([]db.Fact{fact("W", 1, "post", "crash")}, nil, -1); err != nil {
			t.Fatalf("offset %d: mutate after recovery: %v", off, err)
		}
		s.Close()
	}
}

// TestCorruptionInNonFinalSegmentFailsOpen: by the rotation invariant a
// torn tail can only exist in the newest segment, so damage in an older
// one is real corruption and recovery must refuse to guess.
func TestCorruptionInNonFinalSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes=1 rotates on every append after the first: each record
	// lands in its own segment.
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 1, SnapshotEvery: -1, Registry: obs.NewRegistry()})
	for i := 0; i < 4; i++ {
		mustMutate(t, s, []db.Fact{fact("R", 1, fmt.Sprintf("k%d", i), "v")}, nil)
	}
	s.Close()
	segs := walSegments(t, dir)
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	// Damage the first segment that holds a record.
	var target string
	for _, name := range segs[:len(segs)-1] {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			target = name
			break
		}
	}
	if target == "" {
		t.Fatal("no non-final segment with content")
	}
	data, err := os.ReadFile(filepath.Join(dir, target))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, target), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("Open succeeded over corruption in a non-final segment")
	}
}

// TestVersionGapFailsOpen: a corrupt snapshot whose WAL records begin past
// version 1 leaves an unfillable hole; Open must fail rather than serve a
// silently inconsistent database.
func TestVersionGapFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, Registry: obs.NewRegistry()})
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b")}, nil)
	mustMutate(t, s, []db.Fact{fact("R", 1, "a2", "b")}, nil)
	if err := s.Checkpoint(); err != nil { // snapshot at v2, old segments compacted
		t.Fatal(err)
	}
	mustMutate(t, s, []db.Fact{fact("R", 1, "a3", "b")}, nil) // v3, in the WAL only
	s.Close()

	// Destroy every snapshot: replay would have to start at v0 but the
	// surviving records begin at v3.
	names, err := (OSFS{}).ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, n := range names {
		if _, ok := parseSeq(n, snapPrefix, snapSuffix); ok {
			if err := os.Remove(filepath.Join(dir, n)); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed == 0 {
		t.Fatal("no snapshots to remove; test setup wrong")
	}
	if _, err := Open(Options{Dir: dir, Registry: obs.NewRegistry()}); err == nil {
		t.Fatal("Open succeeded over a version gap")
	}
}

// TestCorruptSnapshotFallsBack: when the newest checkpoint is damaged but
// the full WAL survives, recovery replays from scratch.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1, Registry: obs.NewRegistry()})
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b")}, nil)
	mustMutate(t, s, []db.Fact{fact("S", 1, "b", "c")}, nil)
	s.Close()

	// The only snapshot is the empty initial one at v0; corrupt it.
	names, err := (OSFS{}).ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, ok := parseSeq(n, snapPrefix, snapSuffix); ok {
			data, err := os.ReadFile(filepath.Join(dir, n))
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(filepath.Join(dir, n), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	s2, err := Open(Options{Dir: dir, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("Open with corrupt snapshot: %v", err)
	}
	want := db.MustParse(`R(a | b) S(b | c)`)
	if d, v := s2.DB(); v != 2 || !d.Equal(want) {
		t.Fatalf("fallback recovery: v=%d db=%s", v, d)
	}
	s2.Close()
}

func TestStoreCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: 3, Registry: obs.NewRegistry()})
	for i := 0; i < 7; i++ {
		mustMutate(t, s, []db.Fact{fact("R", 1, fmt.Sprintf("k%d", i), "v")}, nil)
	}
	// Checkpoints fired at v3 and v6; compaction leaves one snapshot and
	// one live segment.
	names, err := (OSFS{}).ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, n := range names {
		if v, ok := parseSeq(n, snapPrefix, snapSuffix); ok {
			snaps++
			if v != 6 {
				t.Fatalf("surviving snapshot at v%d, want 6", v)
			}
		}
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("dir after compaction: %d snapshots, %d segments (%v)", snaps, segs, names)
	}
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir, Registry: obs.NewRegistry()})
	if d, v := s2.DB(); v != 7 || d.Len() != 7 {
		t.Fatalf("reopen after compaction: v=%d len=%d", v, d.Len())
	}
}

// fakeClock is the injectable time source for probe-cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestReadOnlyDegradationAndProbe is the fault-injection acceptance test:
// an fsync error flips the store read-only without publishing the failed
// batch, reads keep serving, retries fail fast inside the cooldown, and
// once the disk heals a probe past the cooldown restores the write path
// with no orphaned record resurrected.
func TestReadOnlyDegradationAndProbe(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	clock := &fakeClock{t: time.UnixMilli(0)}
	reg := obs.NewRegistry()
	dir := t.TempDir()
	s := mustOpen(t, Options{
		Dir: dir, FS: ffs, Fsync: FsyncBatch,
		ProbeCooldown: 10 * time.Second,
		Registry:      reg,
		now:           clock.now,
	})
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b")}, nil)

	// Arm the fault: the record is appended, then the fsync fails.
	ffs.SetSyncFault(func(name string) error { return fmt.Errorf("injected fsync failure on %s", name) })
	_, _, err := s.Mutate([]db.Fact{fact("R", 1, "orphan", "x")}, nil, -1)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("fsync fault: err = %v, want ErrReadOnly", err)
	}
	// Nothing published; reads serve the pre-fault state.
	want := db.MustParse(`R(a | b)`)
	if d, v := s.DB(); v != 1 || !d.Equal(want) {
		t.Fatalf("degraded reads: v=%d db=%s", v, d)
	}
	if ro, cause := s.ReadOnly(); !ro || !errors.Is(cause, ErrReadOnly) {
		t.Fatalf("ReadOnly() = %v, %v", ro, cause)
	}
	if g := reg.Gauge(metricReadOnly).Value(); g != 1 {
		t.Fatalf("readonly gauge = %d, want 1", g)
	}

	// Inside the cooldown every mutation fails fast, fault or no fault.
	ffs.SetSyncFault(nil)
	clock.advance(5 * time.Second)
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "c", "d")}, nil, -1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("inside cooldown: err = %v, want ErrReadOnly", err)
	}

	// Past the cooldown with the disk still broken: the probe fails and
	// re-arms the cooldown.
	ffs.SetSyncFault(func(name string) error { return fmt.Errorf("still broken") })
	clock.advance(6 * time.Second)
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "c", "d")}, nil, -1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("failed probe: err = %v, want ErrReadOnly", err)
	}
	if got := reg.Counter(metricProbes, obs.L{K: "outcome", V: "fail"}).Value(); got == 0 {
		t.Fatal("failed probe not counted")
	}

	// Disk heals; past the new cooldown the probe succeeds and the SAME
	// mutation commits.
	ffs.SetSyncFault(nil)
	clock.advance(11 * time.Second)
	v, _, err := s.Mutate([]db.Fact{fact("R", 1, "c", "d")}, nil, -1)
	if err != nil || v != 2 {
		t.Fatalf("post-probe mutate: v=%d err=%v", v, err)
	}
	if ro, _ := s.ReadOnly(); ro {
		t.Fatal("store still read-only after successful probe")
	}
	if g := reg.Gauge(metricReadOnly).Value(); g != 0 {
		t.Fatalf("readonly gauge = %d after recovery, want 0", g)
	}
	wantAfter := db.MustParse(`R(a | b) R(c | d)`)
	if d, _ := s.DB(); !d.Equal(wantAfter) {
		t.Fatalf("post-probe state: %s, want %s", d, wantAfter)
	}

	// The orphaned record (v2 "orphan") must NOT resurrect on restart: the
	// probe snapshotted the published state and discarded the old segments,
	// so version 2 is "c d", not "orphan x".
	s.Close()
	s2 := mustOpen(t, Options{Dir: dir, Registry: obs.NewRegistry()})
	if d, v := s2.DB(); v != 2 || !d.Equal(wantAfter) {
		t.Fatalf("reopen after probe: v=%d db=%s, want v=2 %s", v, d, wantAfter)
	}
}

// TestShortWriteDegradesAndRecovers: a short write (disk-full style) leaves
// a torn record; the store degrades, and a later reopen truncates the tear
// and serves the pre-fault state.
func TestShortWriteDegradesAndRecovers(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, FS: ffs, Fsync: FsyncAlways, Registry: obs.NewRegistry()})
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b")}, nil)

	ffs.SetWriteFault(func(name string, p []byte) (int, error) {
		return len(p) / 2, fmt.Errorf("injected short write")
	})
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "torn", "x")}, nil, -1); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("short write: err = %v, want ErrReadOnly", err)
	}
	ffs.SetWriteFault(nil)
	s.Close()

	s2 := mustOpen(t, Options{Dir: dir, Registry: obs.NewRegistry()})
	want := db.MustParse(`R(a | b)`)
	if d, v := s2.DB(); v != 1 || !d.Equal(want) {
		t.Fatalf("recovery after short write: v=%d db=%s", v, d)
	}
	// And the recovered store accepts writes again.
	if _, _, err := s2.Mutate([]db.Fact{fact("R", 1, "c", "d")}, nil, -1); err != nil {
		t.Fatalf("mutate after short-write recovery: %v", err)
	}
}

func TestFsyncNeverSkipsSync(t *testing.T) {
	ffs := NewFaultFS(OSFS{})
	s := mustOpen(t, Options{Dir: t.TempDir(), FS: ffs, Fsync: FsyncNever, SnapshotEvery: -1, Registry: obs.NewRegistry()})
	// With fsync disabled, a broken Sync must never be reached on the
	// mutation path.
	ffs.SetSyncFault(func(name string) error { return fmt.Errorf("sync must not be called") })
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "a", "b")}, nil, -1); err != nil {
		t.Fatalf("FsyncNever mutate: %v", err)
	}
}

func TestStoreClosed(t *testing.T) {
	s := mustOpen(t, testOpts(t))
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b")}, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Mutate([]db.Fact{fact("R", 1, "c", "d")}, nil, -1); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutate after close: %v", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	opts := Options{Dir: t.TempDir(), Fsync: FsyncAlways, Registry: reg}
	s := mustOpen(t, opts)
	mustMutate(t, s, []db.Fact{fact("R", 1, "a", "b"), fact("R", 1, "a", "b2")}, nil)
	mustMutate(t, s, nil, []db.Fact{fact("R", 1, "a", "b2")})

	if got := reg.Counter(metricAppends).Value(); got != 2 {
		t.Fatalf("appends = %d, want 2", got)
	}
	if got := reg.Gauge(metricDBVersion).Value(); got != 2 {
		t.Fatalf("version gauge = %d, want 2", got)
	}
	if got := reg.Counter(metricMutations, obs.L{K: "op", V: "insert"}).Value(); got != 2 {
		t.Fatalf("inserted facts = %d, want 2", got)
	}
	if got := reg.Counter(metricMutations, obs.L{K: "op", V: "delete"}).Value(); got != 1 {
		t.Fatalf("deleted facts = %d, want 1", got)
	}
	if got := reg.Histogram(metricFsyncSecs, nil).Count(); got != 2 {
		t.Fatalf("fsync observations = %d, want 2", got)
	}
}
