package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// stream builds a WAL byte stream from payloads, returning the stream and
// the record boundary offsets (starts[i] is where record i begins; the
// final entry is the total length).
func stream(payloads ...[]byte) (buf []byte, starts []int64) {
	for _, p := range payloads {
		starts = append(starts, int64(len(buf)))
		buf = AppendRecord(buf, p)
	}
	starts = append(starts, int64(len(buf)))
	return buf, starts
}

func testPayloads() [][]byte {
	return [][]byte{
		[]byte("alpha"),
		{},
		[]byte("a longer record payload with some structure: {v: 3}"),
		{0x00, 0xFF, 0xC1, 0x00},
		bytes.Repeat([]byte{0xAB}, 300),
	}
}

// readAll replays a stream collecting payloads.
func readAll(t *testing.T, data []byte) (payloads [][]byte, clean int64, err error) {
	t.Helper()
	clean, err = ReadRecords(bytes.NewReader(data), func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	return payloads, clean, err
}

func TestRecordRoundTrip(t *testing.T) {
	want := testPayloads()
	data, starts := stream(want...)
	got, clean, err := readAll(t, data)
	if err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if clean != starts[len(starts)-1] {
		t.Fatalf("clean = %d, want %d", clean, starts[len(starts)-1])
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestReadRecordsEmpty(t *testing.T) {
	got, clean, err := readAll(t, nil)
	if err != nil || clean != 0 || len(got) != 0 {
		t.Fatalf("empty stream: got %d records, clean %d, err %v", len(got), clean, err)
	}
}

// TestTornTailEveryPrefix is the crash matrix at the framing layer: for
// EVERY byte-length prefix of a valid stream, replay must decode exactly
// the records that fit completely, report the clean boundary, and flag the
// torn tail — except at exact record boundaries, which are clean ends.
func TestTornTailEveryPrefix(t *testing.T) {
	data, starts := stream(testPayloads()...)
	boundary := make(map[int64]int) // offset → records before it
	for i, s := range starts {
		boundary[s] = i
	}
	for cut := 0; cut <= len(data); cut++ {
		got, clean, err := readAll(t, data[:cut])
		wholeRecords, atBoundary := boundary[int64(cut)]
		if atBoundary {
			if err != nil {
				t.Fatalf("cut %d (boundary): unexpected error %v", cut, err)
			}
			if len(got) != wholeRecords || clean != int64(cut) {
				t.Fatalf("cut %d: got %d records clean %d, want %d records clean %d",
					cut, len(got), clean, wholeRecords, cut)
			}
			continue
		}
		// Mid-record: the last complete boundary before the cut.
		var wantRecs int
		var wantClean int64
		for i, s := range starts {
			if s < int64(cut) {
				wantRecs, wantClean = i, s
			}
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: want ErrCorrupt, got %v", cut, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cut %d: error is not *CorruptError: %v", cut, err)
		}
		if len(got) != wantRecs || clean != wantClean || ce.Offset != wantClean {
			t.Fatalf("cut %d: got %d records clean %d offset %d, want %d records clean %d",
				cut, len(got), clean, ce.Offset, wantRecs, wantClean)
		}
	}
}

// TestCorruptByteEveryOffset flips one byte at every position: replay must
// decode every record before the damaged one, stop exactly at its start
// with a typed corruption error, and never panic.
func TestCorruptByteEveryOffset(t *testing.T) {
	data, starts := stream(testPayloads()...)
	recordOf := func(off int64) int {
		for i := len(starts) - 2; i >= 0; i-- {
			if starts[i] <= off {
				return i
			}
		}
		return 0
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x5A
		got, clean, err := readAll(t, mut)
		damaged := recordOf(int64(off))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("offset %d: want ErrCorrupt, got %v", off, err)
		}
		if len(got) != damaged || clean != starts[damaged] {
			t.Fatalf("offset %d (record %d): got %d records clean %d, want %d records clean %d",
				off, damaged, len(got), clean, damaged, starts[damaged])
		}
	}
}

func TestOversizeLengthRejected(t *testing.T) {
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	hdr[1], hdr[2], hdr[3], hdr[4] = 0xFF, 0xFF, 0xFF, 0x7F // ~2 GiB length
	_, clean, err := readAll(t, hdr[:])
	if !errors.Is(err, ErrCorrupt) || clean != 0 {
		t.Fatalf("oversize length: clean %d err %v", clean, err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	data, _ := stream([]byte("x"))
	data[0] = 0x00
	_, clean, err := readAll(t, data)
	if !errors.Is(err, ErrCorrupt) || clean != 0 {
		t.Fatalf("bad magic: clean %d err %v", clean, err)
	}
}

func TestReadRecordsFnAbort(t *testing.T) {
	data, starts := stream([]byte("a"), []byte("b"), []byte("c"))
	boom := fmt.Errorf("rejected")
	n := 0
	clean, err := ReadRecords(bytes.NewReader(data), func(p []byte) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want fn error back, got %v", err)
	}
	if clean != starts[1] {
		t.Fatalf("clean = %d, want boundary before rejected record %d", clean, starts[1])
	}
}

// FuzzWALReplay locks in the replay safety contract for ARBITRARY bytes:
// never panic, never read past the stream, and always report either a
// clean full decode or a typed corruption error whose clean prefix
// re-decodes cleanly.
func FuzzWALReplay(f *testing.F) {
	valid, _ := stream(testPayloads()...)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{recordMagic})
	f.Add(valid[:len(valid)-3])
	f.Add(bytes.Repeat([]byte{recordMagic}, 64))
	mut := append([]byte(nil), valid...)
	mut[7] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		records := 0
		clean, err := ReadRecords(bytes.NewReader(data), func(p []byte) error {
			records++
			return nil
		})
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean %d out of range [0,%d]", clean, len(data))
		}
		if err == nil && clean != int64(len(data)) {
			t.Fatalf("nil error but clean %d != len %d", clean, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-corruption error from arbitrary bytes: %v", err)
		}
		// The clean prefix must itself replay cleanly with the same records.
		again := 0
		cleanAgain, err2 := ReadRecords(bytes.NewReader(data[:clean]), func(p []byte) error {
			again++
			return nil
		})
		if err2 != nil || cleanAgain != clean || again != records {
			t.Fatalf("clean prefix not stable: records %d→%d clean %d→%d err %v",
				records, again, clean, cleanAgain, err2)
		}
	})
}
