package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	stdlog "log"
	"path/filepath"
	"time"

	"io"
	"sync"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
)

// Typed store errors, all errors.Is-matchable.
var (
	// ErrReadOnly: the store degraded to read-only after a disk fault.
	// Mutations fail with it until a probe re-establishes write access;
	// reads keep serving the in-memory state throughout.
	ErrReadOnly = errors.New("wal: store is read-only")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("wal: store is closed")
	// ErrConflict: a compare-and-swap mutation named a version that is no
	// longer current. Permanent for that request: retrying the identical
	// request can never succeed.
	ErrConflict = errors.New("wal: version conflict")
)

// ConflictError reports a failed compare-and-swap: the version the client
// expected versus the version the store is at.
type ConflictError struct {
	Want uint64
	Have uint64
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("wal: version conflict: expected %d, store is at %d", e.Want, e.Have)
}

// Is matches ErrConflict.
func (e *ConflictError) Is(target error) bool { return target == ErrConflict }

// FsyncMode selects when appended records are fsynced.
type FsyncMode string

const (
	// FsyncBatch (default): one fsync per commit batch — concurrent
	// mutations group-commit, sharing a single fsync. Every acknowledged
	// mutation is durable.
	FsyncBatch FsyncMode = "batch"
	// FsyncAlways: one fsync per record, even within a batch.
	FsyncAlways FsyncMode = "always"
	// FsyncNever: never fsync on the mutation path (the OS flushes when it
	// pleases). Acknowledged mutations may be lost in a crash; for
	// benchmarks and tests only.
	FsyncNever FsyncMode = "never"
)

// ParseFsyncMode validates a -fsync flag value.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch FsyncMode(s) {
	case FsyncBatch, FsyncAlways, FsyncNever:
		return FsyncMode(s), nil
	case "":
		return FsyncBatch, nil
	}
	return "", fmt.Errorf("wal: unknown fsync mode %q (want batch, always, or never)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory (required). Created if absent.
	Dir string
	// FS defaults to OSFS. Tests inject FaultFS.
	FS FS
	// Fsync defaults to FsyncBatch.
	Fsync FsyncMode
	// SegmentBytes caps a WAL segment before rotation (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery checkpoints after this many committed records
	// (default 4096; negative disables automatic checkpoints).
	SnapshotEvery int
	// ProbeCooldown is the minimum time between disk re-probes while
	// degraded (default 5s), mirroring the query-class breaker's half-open
	// cooldown.
	ProbeCooldown time.Duration
	// Seed is the initial database when the directory holds no state.
	Seed *db.DB
	// Registry receives the WAL metrics (default obs.Default).
	Registry *obs.Registry
	// Logger, when non-nil, receives one line per lifecycle event.
	Logger *stdlog.Logger

	// now is a test seam for the probe cooldown clock.
	now func() time.Time
}

// Metric names exposed on /metrics.
const (
	metricAppends    = "certd_wal_appends_total"
	metricFsyncSecs  = "certd_wal_fsync_seconds"
	metricWALErrors  = "certd_wal_errors_total"
	metricDBVersion  = "certd_db_version"
	metricReadOnly   = "certd_db_readonly"
	metricMutations  = "certd_db_mutations_total"
	metricReplayRecs = "certd_wal_replay_records_total"
	metricTruncBytes = "certd_wal_truncated_bytes_total"
	metricSnapshots  = "certd_wal_snapshots_total"
	metricProbes     = "certd_wal_probes_total"
)

// Store is the durable, versioned uncertain database behind /v1/db. All
// mutations are serialized, written to the WAL, made durable per the fsync
// mode, and only then published; reads always see a fully committed,
// immutable snapshot. Safe for concurrent use.
type Store struct {
	opts Options
	fs   FS
	reg  *obs.Registry

	mAppends  *obs.Counter
	mFsync    *obs.Histogram
	mVersion  *obs.Gauge
	mReadOnly *obs.Gauge

	mu        sync.Mutex // guards the fields below
	cur       *db.DB     // published snapshot; immutable
	version   uint64
	log       *log
	sinceSnap int
	closed    bool
	degraded  error     // non-nil cause while read-only
	probeAt   time.Time // earliest next probe while degraded

	qmu        sync.Mutex
	queue      []*mutateReq
	committing bool
}

// mutateReq is one queued mutation awaiting group commit.
type mutateReq struct {
	ins, del  []db.Fact
	ifVersion int64
	done      chan struct{}
	version   uint64
	applied   int
	err       error
}

// Record payload kinds (first payload byte).
const (
	kindMutation = 0x01
	kindSnapshot = 0x02
)

// mutationRecord is the JSON body of a kindMutation payload: the version
// the database reaches by applying it, plus the effective (normalized)
// inserted and deleted facts. Records are normalized at commit time —
// already-present inserts and absent deletes are dropped — so replay is a
// pure, validation-free application.
type mutationRecord struct {
	V   uint64    `json:"v"`
	Ins []db.Fact `json:"ins,omitempty"`
	Del []db.Fact `json:"del,omitempty"`
}

func encodeMutation(rec mutationRecord) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append([]byte{kindMutation}, body...), nil
}

// Open recovers the store from dir: it loads the newest valid snapshot,
// replays every WAL record beyond it (truncating a torn tail in the final
// segment), and starts a fresh segment for new writes.
//
// Failures while reconstructing state — an unreadable directory, a version
// gap, corruption anywhere but the final segment's tail — fail Open: the
// database content cannot be determined. Failures while re-establishing
// WRITE access (truncating the tail, creating the new segment, writing the
// initial checkpoint) do NOT fail Open: the store comes up read-only with
// the recovered state served, and the probe machinery retries the disk.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Fsync == "" {
		opts.Fsync = FsyncBatch
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 4096
	}
	if opts.ProbeCooldown <= 0 {
		opts.ProbeCooldown = 5 * time.Second
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	s := &Store{opts: opts, fs: opts.FS, reg: opts.Registry}
	s.reg.Help(metricAppends, "WAL records appended (durable once the commit's fsync completes).")
	s.reg.Help(metricFsyncSecs, "WAL fsync latency in seconds (one observation per fsync).")
	s.reg.Help(metricWALErrors, "WAL disk faults, by operation.")
	s.reg.Help(metricDBVersion, "Current version of the hosted database (monotonic across mutations).")
	s.reg.Help(metricReadOnly, "1 while the store is degraded to read-only after a disk fault.")
	s.reg.Help(metricMutations, "Facts applied by committed mutations, by operation.")
	s.reg.Help(metricReplayRecs, "WAL records applied during crash recovery.")
	s.reg.Help(metricTruncBytes, "Torn-tail bytes truncated from the final WAL segment on recovery.")
	s.reg.Help(metricSnapshots, "Snapshots (checkpoints) written, by cause.")
	s.reg.Help(metricProbes, "Disk re-probes while read-only, by outcome.")
	s.mAppends = s.reg.Counter(metricAppends)
	s.mFsync = s.reg.Histogram(metricFsyncSecs, nil)
	s.mVersion = s.reg.Gauge(metricDBVersion)
	s.mReadOnly = s.reg.Gauge(metricReadOnly)

	if err := s.fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: create data dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

func (s *Store) path(name string) string { return filepath.Join(s.opts.Dir, name) }

// recover reconstructs state from disk and re-arms the write path.
func (s *Store) recover() error {
	segs, snaps, err := listSegments(s.fs, s.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: list data dir: %w", err)
	}

	// Newest valid snapshot wins; older ones are fallbacks against a torn
	// or corrupted checkpoint file.
	var cur *db.DB
	var version uint64
	var haveSnap bool
	for i := len(snaps) - 1; i >= 0; i-- {
		d, v, err := s.readSnapshot(snapName(snaps[i]))
		if err != nil {
			s.logf("wal: snapshot %s unusable (%v); falling back", snapName(snaps[i]), err)
			continue
		}
		cur, version, haveSnap = d, v, true
		break
	}
	if cur == nil {
		if s.opts.Seed != nil {
			cur = s.opts.Seed.Clone()
		} else {
			cur = db.New()
		}
	}

	// Replay the log beyond the snapshot. Corruption is tolerated only as
	// a torn tail of the FINAL segment (the only place a crash can leave
	// one, by the rotation invariant); anywhere else recovery refuses to
	// guess.
	replayed := 0
	var truncations int64
	for i, seq := range segs {
		last := i == len(segs)-1
		clean, total, recs, err := s.replaySegment(segName(seq), cur, &version)
		replayed += recs
		if err != nil {
			if !last || !errors.Is(err, ErrCorrupt) {
				return fmt.Errorf("wal: segment %s: %w", segName(seq), err)
			}
			// Torn tail: drop it so the next recovery sees a clean segment.
			s.logf("wal: truncating torn tail of %s at offset %d: %v", segName(seq), clean, err)
			if terr := s.fs.Truncate(s.path(segName(seq)), clean); terr != nil {
				s.mu.Lock()
				s.degradeLocked("truncate", fmt.Errorf("truncate torn tail: %w", terr))
				s.mu.Unlock()
			}
			truncations++
			if total > clean {
				s.reg.Counter(metricTruncBytes).Add(uint64(total - clean))
			}
		}
	}
	s.reg.Counter(metricReplayRecs).Add(uint64(replayed))

	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur = cur
	s.version = version
	s.mVersion.Set(int64(version))

	nextSeq := uint64(1)
	if len(segs) > 0 {
		nextSeq = segs[len(segs)-1] + 1
	}
	if s.degraded == nil {
		l, err := openLog(s.fs, s.opts.Dir, nextSeq, s.opts.SegmentBytes)
		if err != nil {
			s.degradeLocked("segment-create", err)
		} else {
			s.log = l
		}
	}
	// Checkpoint when recovery did real work (replay happened) or when no
	// snapshot existed yet (first boot, possibly seeded): the next restart
	// then starts from the snapshot instead of re-replaying.
	if s.degraded == nil && (replayed > 0 || !haveSnap) {
		if err := s.writeSnapshotLocked("recovery"); err != nil {
			s.degradeLocked("snapshot", err)
		} else {
			s.compactLocked()
		}
	}
	if replayed > 0 || truncations > 0 || !haveSnap {
		s.logf("wal: recovered version %d (%d facts, %d replayed records)", version, cur.Len(), replayed)
	}
	return nil
}

// replaySegment applies one segment's records on top of d, advancing
// *version. Returns the clean byte prefix, the total bytes consumed, the
// records applied, and the first error: a *CorruptError for
// framing/decoding damage (the caller decides whether truncation is sound)
// or a hard error for version gaps.
func (s *Store) replaySegment(name string, d *db.DB, version *uint64) (clean, total int64, applied int, err error) {
	f, err := s.fs.Open(s.path(name))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("open: %w", err)
	}
	defer f.Close()
	cr := &countingReader{r: f}
	clean, err = ReadRecords(cr, func(payload []byte) error {
		rec, derr := decodeMutationPayload(payload)
		if derr != nil {
			return &CorruptError{Offset: -1, Reason: derr.Error()}
		}
		switch {
		case rec.V <= *version:
			return nil // covered by the snapshot (or a compacted overlap)
		case rec.V == *version+1:
			if aerr := applyMutation(d, rec); aerr != nil {
				return &CorruptError{Offset: -1, Reason: aerr.Error()}
			}
			*version = rec.V
			applied++
			return nil
		default:
			// A version gap is not a crash artifact — records are written
			// contiguously — so it means lost history: refuse to serve a
			// silently inconsistent database.
			return fmt.Errorf("version gap: record %d follows version %d", rec.V, *version)
		}
	})
	return clean, cr.n, applied, err
}

// countingReader counts bytes consumed, so recovery can report how many
// torn-tail bytes a truncation discards.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// decodeMutationPayload parses a kindMutation record payload.
func decodeMutationPayload(payload []byte) (mutationRecord, error) {
	var rec mutationRecord
	if len(payload) == 0 || payload[0] != kindMutation {
		return rec, fmt.Errorf("not a mutation record")
	}
	if err := json.Unmarshal(payload[1:], &rec); err != nil {
		return rec, fmt.Errorf("mutation body: %v", err)
	}
	return rec, nil
}

// applyMutation replays one normalized record. Records only carry effective
// facts, so a failed insert or a missing delete means the log does not
// match the state it claims to extend.
func applyMutation(d *db.DB, rec mutationRecord) error {
	for _, f := range rec.Ins {
		if err := d.Add(f); err != nil {
			return fmt.Errorf("replay insert %s: %v", f, err)
		}
	}
	for _, f := range rec.Del {
		if !d.Remove(f) {
			return fmt.Errorf("replay delete of absent fact %s", f)
		}
	}
	return nil
}

// readSnapshot loads one checkpoint file: a single framed record holding
// the version and a gob snapshot of the database.
func (s *Store) readSnapshot(name string) (*db.DB, uint64, error) {
	f, err := s.fs.Open(s.path(name))
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var d *db.DB
	var v uint64
	var decoded bool
	_, err = ReadRecords(f, func(payload []byte) error {
		if decoded {
			return errors.New("trailing record in snapshot file")
		}
		if len(payload) < 9 || payload[0] != kindSnapshot {
			return errors.New("not a snapshot record")
		}
		v = binary.LittleEndian.Uint64(payload[1:9])
		var rerr error
		d, rerr = db.ReadSnapshot(bytes.NewReader(payload[9:]))
		if rerr != nil {
			return rerr
		}
		decoded = true
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if !decoded {
		return nil, 0, errors.New("empty snapshot file")
	}
	return d, v, nil
}

// writeSnapshotLocked durably checkpoints the current state: a temp file
// with one checksummed record, fsynced, renamed into place, directory
// fsynced. Caller holds s.mu.
func (s *Store) writeSnapshotLocked(cause string) error {
	var body bytes.Buffer
	body.WriteByte(kindSnapshot)
	var vbuf [8]byte
	binary.LittleEndian.PutUint64(vbuf[:], s.version)
	body.Write(vbuf[:])
	if err := s.cur.WriteSnapshot(&body); err != nil {
		return fmt.Errorf("encode snapshot: %w", err)
	}
	framed := AppendRecord(nil, body.Bytes())

	final := snapName(s.version)
	tmp := final + tmpSuffix
	f, err := s.fs.Create(s.path(tmp))
	if err != nil {
		return fmt.Errorf("create snapshot temp: %w", err)
	}
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return fmt.Errorf("write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close snapshot: %w", err)
	}
	if err := s.fs.Rename(s.path(tmp), s.path(final)); err != nil {
		return fmt.Errorf("rename snapshot into place: %w", err)
	}
	if err := s.fs.SyncDir(s.opts.Dir); err != nil {
		return fmt.Errorf("sync dir after snapshot: %w", err)
	}
	s.sinceSnap = 0
	s.reg.Counter(metricSnapshots, obs.L{K: "cause", V: cause}).Inc()
	return nil
}

// compactLocked removes segments and snapshots made redundant by the
// newest durable snapshot. Best effort: a failure leaves extra files, not
// incorrect state. Caller holds s.mu.
func (s *Store) compactLocked() {
	segs, snaps, err := listSegments(s.fs, s.opts.Dir)
	if err != nil {
		return
	}
	curSeg := uint64(0)
	if s.log != nil {
		curSeg = s.log.seq
	}
	for _, seq := range segs {
		if seq < curSeg {
			_ = s.fs.Remove(s.path(segName(seq)))
		}
	}
	for _, v := range snaps {
		if v < s.version {
			_ = s.fs.Remove(s.path(snapName(v)))
		}
	}
	_ = s.fs.SyncDir(s.opts.Dir)
}

// degradeLocked flips the store read-only, recording the cause and arming
// the probe cooldown. Caller holds s.mu.
func (s *Store) degradeLocked(op string, cause error) {
	s.reg.Counter(metricWALErrors, obs.L{K: "op", V: op}).Inc()
	if s.degraded == nil {
		s.logf("wal: disk fault during %s, degrading to read-only: %v", op, cause)
		s.degraded = fmt.Errorf("%w: %s: %v", ErrReadOnly, op, cause)
		s.mReadOnly.Set(1)
	}
	s.probeAt = s.opts.now().Add(s.opts.ProbeCooldown)
	if s.log != nil {
		if s.log.f != nil {
			_ = s.log.f.Close()
			s.log.f = nil
		}
		s.log = nil
	}
}

// probeLocked attempts to re-establish write access while degraded: it
// writes a fresh durable snapshot of the published state, removes every
// WAL segment (including any orphaned, never-acknowledged tail records a
// failed batch may have left), and opens a fresh segment. Only if all
// three succeed does the store become writable; any failure re-arms the
// cooldown. This is the disk analogue of the query-class breaker's
// half-open probe: one request pays for the recovery attempt, the rest
// keep failing fast. Caller holds s.mu.
func (s *Store) probeLocked() bool {
	segsBefore, _, err := listSegments(s.fs, s.opts.Dir)
	if err == nil {
		err = s.writeSnapshotLocked("probe")
	}
	if err == nil {
		for _, seq := range segsBefore {
			if rerr := s.fs.Remove(s.path(segName(seq))); rerr != nil {
				err = fmt.Errorf("remove stale segment: %w", rerr)
				break
			}
		}
	}
	if err == nil {
		err = s.fs.SyncDir(s.opts.Dir)
	}
	var nextSeq uint64 = 1
	if len(segsBefore) > 0 {
		nextSeq = segsBefore[len(segsBefore)-1] + 1
	}
	if err == nil {
		var l *log
		l, err = openLog(s.fs, s.opts.Dir, nextSeq, s.opts.SegmentBytes)
		if err == nil {
			s.log = l
		}
	}
	if err != nil {
		s.reg.Counter(metricProbes, obs.L{K: "outcome", V: "fail"}).Inc()
		s.probeAt = s.opts.now().Add(s.opts.ProbeCooldown)
		s.logf("wal: read-only probe failed, staying degraded: %v", err)
		return false
	}
	s.reg.Counter(metricProbes, obs.L{K: "outcome", V: "ok"}).Inc()
	s.degraded = nil
	s.mReadOnly.Set(0)
	s.compactLocked()
	s.logf("wal: read-only probe succeeded, write path restored at version %d", s.version)
	return true
}

// DB returns the current published database snapshot and its version. The
// snapshot is immutable: later mutations publish new snapshots and never
// touch this one, so callers may solve against it for as long as they like.
func (s *Store) DB() (*db.DB, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.version
}

// Version returns the current database version.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// ReadOnly reports whether the store is degraded, and the cause.
func (s *Store) ReadOnly() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded != nil, s.degraded
}

// Mutate atomically applies a mutation request: all inserts, then all
// deletes. ifVersion < 0 applies unconditionally; ifVersion >= 0 is a
// compare-and-swap that fails with ErrConflict unless it names the current
// version. The returned version is the store's version after the request
// (unchanged for a no-op), and applied counts the facts actually inserted
// plus deleted.
//
// Concurrent mutations group-commit: they are serialized, appended to the
// WAL in order, and made durable with a single shared fsync per batch
// (FsyncBatch). Mutate returns only after the mutation is durable per the
// configured mode and published to readers.
func (s *Store) Mutate(ins, del []db.Fact, ifVersion int64) (version uint64, applied int, err error) {
	req := &mutateReq{ins: ins, del: del, ifVersion: ifVersion, done: make(chan struct{})}
	s.qmu.Lock()
	s.queue = append(s.queue, req)
	if !s.committing {
		s.committing = true
		s.qmu.Unlock()
		s.commitLoop()
	} else {
		s.qmu.Unlock()
	}
	<-req.done
	return req.version, req.applied, req.err
}

// commitLoop drains the mutation queue as the batch leader: requests that
// arrive while a batch is being fsynced form the next batch and share its
// fsync.
func (s *Store) commitLoop() {
	for {
		s.qmu.Lock()
		batch := s.queue
		s.queue = nil
		if len(batch) == 0 {
			s.committing = false
			s.qmu.Unlock()
			return
		}
		s.qmu.Unlock()
		s.commitBatch(batch)
	}
}

func (s *Store) commitBatch(batch []*mutateReq) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
		for _, req := range batch {
			close(req.done)
		}
	}()

	if s.closed {
		for _, req := range batch {
			req.err = ErrClosed
		}
		return
	}
	if s.degraded != nil {
		// Breaker-style half-open: one batch past the cooldown pays for the
		// probe; within the cooldown everything fails fast.
		if s.opts.now().Before(s.probeAt) || !s.probeLocked() {
			for _, req := range batch {
				req.err = s.degraded
			}
			return
		}
	}

	work := s.cur
	wv := s.version
	written := 0
	var diskErr error
	var diskOp string

	for _, req := range batch {
		if req.ifVersion >= 0 && uint64(req.ifVersion) != wv {
			req.err = &ConflictError{Want: uint64(req.ifVersion), Have: wv}
			continue
		}
		effIns, effDel, verr := normalize(work, req.ins, req.del)
		if verr != nil {
			req.err = verr
			continue
		}
		if len(effIns) == 0 && len(effDel) == 0 {
			req.version = wv // no-op: nothing written, version unchanged
			continue
		}
		rec := mutationRecord{V: wv + 1, Ins: effIns, Del: effDel}
		payload, merr := encodeMutation(rec)
		if merr != nil {
			req.err = fmt.Errorf("wal: encode mutation: %w", merr)
			continue
		}
		if aerr := s.log.append(payload); aerr != nil {
			diskErr, diskOp = aerr, "append"
			break
		}
		if s.opts.Fsync == FsyncAlways {
			start := time.Now()
			if serr := s.log.sync(); serr != nil {
				diskErr, diskOp = serr, "fsync"
				break
			}
			s.mFsync.Observe(time.Since(start).Seconds())
		}
		if work == s.cur {
			work = s.cur.Clone()
		}
		for _, f := range effIns {
			if err := work.Add(f); err != nil {
				// Unreachable after normalize. If it ever fires, work may be
				// half-applied and the WAL holds its record: treat it like a
				// disk fault so nothing partial is published and the probe's
				// snapshot-and-reset discards the orphaned record.
				diskErr, diskOp = fmt.Errorf("apply insert: %w", err), "apply"
				break
			}
		}
		if diskErr != nil {
			break
		}
		for _, f := range effDel {
			work.Remove(f)
		}
		wv = rec.V
		req.version = wv
		req.applied = len(effIns) + len(effDel)
		written++

		s.mAppends.Inc()
		s.reg.Counter(metricMutations, obs.L{K: "op", V: "insert"}).Add(uint64(len(effIns)))
		s.reg.Counter(metricMutations, obs.L{K: "op", V: "delete"}).Add(uint64(len(effDel)))
	}

	if diskErr == nil && written > 0 && s.opts.Fsync == FsyncBatch {
		start := time.Now()
		if serr := s.log.sync(); serr != nil {
			diskErr, diskOp = serr, "fsync"
		} else {
			s.mFsync.Observe(time.Since(start).Seconds())
		}
	}

	if diskErr != nil {
		// Nothing from this batch is published or acknowledged: records may
		// or may not have reached the disk, which is exactly the ambiguity
		// an unacknowledged write is allowed to have. The probe's
		// snapshot-and-reset discards any such orphaned tail before the
		// write path reopens, so an orphan can never collide with a future
		// version.
		s.degradeLocked(diskOp, diskErr)
		for _, req := range batch {
			// Requests that already failed on their own terms (conflict,
			// validation) keep their error; everything else — including
			// no-ops, whose observed version may include unpublished
			// increments — fails as read-only with its ack rolled back.
			if req.err == nil {
				req.version, req.applied = 0, 0
				req.err = s.degraded
			}
		}
		return
	}

	if written > 0 {
		s.cur = work
		s.version = wv
		s.mVersion.Set(int64(wv))
		s.sinceSnap += written
		if s.opts.SnapshotEvery > 0 && s.sinceSnap >= s.opts.SnapshotEvery {
			s.checkpointLocked("auto")
		}
	}
}

// normalize validates a request against the working state and reduces it to
// its effective facts: inserts not already present (each validated for
// shape and signature consistency), deletes actually present. A validation
// error rejects the whole request; the store is untouched.
func normalize(work *db.DB, ins, del []db.Fact) (effIns, effDel []db.Fact, err error) {
	type sig = [2]int
	pendingSigs := make(map[string]sig)
	pendingIns := make(map[string]bool)
	for _, f := range ins {
		if err := f.Validate(); err != nil {
			return nil, nil, fmt.Errorf("wal: invalid fact: %w", err)
		}
		fs := sig{len(f.Args), f.KeyLen}
		if a, k, ok := work.Signature(f.Rel); ok && (sig{a, k}) != fs {
			return nil, nil, fmt.Errorf("wal: relation %s used with signatures [%d,%d] and [%d,%d]",
				f.Rel, a, k, fs[0], fs[1])
		}
		if prev, ok := pendingSigs[f.Rel]; ok && prev != fs {
			return nil, nil, fmt.Errorf("wal: relation %s used with signatures [%d,%d] and [%d,%d] in one request",
				f.Rel, prev[0], prev[1], fs[0], fs[1])
		}
		pendingSigs[f.Rel] = fs
		id := f.ID()
		if work.Has(f) || pendingIns[id] {
			continue
		}
		pendingIns[id] = true
		effIns = append(effIns, f)
	}
	pendingDel := make(map[string]bool)
	for _, f := range del {
		id := f.ID()
		if pendingDel[id] {
			continue
		}
		// Deletable iff present after the request's inserts.
		if !work.Has(f) && !pendingIns[id] {
			continue
		}
		pendingDel[id] = true
		effDel = append(effDel, f)
	}
	return effIns, effDel, nil
}

// checkpointLocked rotates to a fresh segment, snapshots, and compacts.
// Used on the healthy path; a rotation failure degrades the store, while a
// snapshot failure only skips this checkpoint (the WAL itself is intact, so
// durability is unaffected). Caller holds s.mu.
func (s *Store) checkpointLocked(cause string) {
	if err := s.log.rotate(); err != nil {
		s.degradeLocked("rotate", err)
		return
	}
	if err := s.writeSnapshotLocked(cause); err != nil {
		s.reg.Counter(metricWALErrors, obs.L{K: "op", V: "snapshot"}).Inc()
		s.logf("wal: checkpoint skipped: %v", err)
		s.sinceSnap = 0
		return
	}
	s.compactLocked()
}

// Checkpoint forces a snapshot + compaction outside the automatic cadence.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.degraded != nil {
		return s.degraded
	}
	s.checkpointLocked("manual")
	if s.degraded != nil {
		return s.degraded
	}
	return nil
}

// Close makes outstanding state durable and stops the store. Mutations
// after Close fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.log != nil {
		return s.log.close()
	}
	return nil
}
