// Package wal implements the durable write path of the hosted uncertain
// database: a length-prefixed, CRC32C-checksummed, segment-rotated
// write-ahead log plus the Store that drives it — group-committed fsync
// batching, crash recovery (snapshot load + log replay with torn-tail
// truncation), compare-and-swap versioning, and breaker-style read-only
// degradation on disk faults.
//
// The package is built for hostile conditions: every byte of every file is
// covered by a checksum, replay of arbitrary bytes never panics and always
// yields a clean record prefix plus a typed corruption error, and all file
// I/O goes through an injectable FS so tests can fail any write, fsync, or
// rename deterministically.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Record framing:
//
//	+0  magic byte (recordMagic)
//	+1  uint32 LE payload length
//	+5  uint32 LE CRC32C (Castagnoli) of the payload
//	+9  payload bytes
//
// A record is valid iff the magic matches, the length is within
// MaxRecordBytes, the full payload is present, and the checksum matches.
// Anything else — a short header, a short payload, a flipped bit anywhere —
// invalidates the record and everything after it: the WAL is only ever
// appended to, so bytes after the first invalid record cannot be trusted.
const (
	recordMagic  = 0xC1
	headerSize   = 9
	crcSizeBytes = 4
)

// MaxRecordBytes caps a single record's payload so a corrupted length field
// cannot make replay attempt a multi-gigabyte allocation.
const MaxRecordBytes = 1 << 26 // 64 MiB

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel matched by errors.Is for every replay
// corruption: torn tails, checksum mismatches, bad magic, oversized
// lengths. The concrete error is a *CorruptError carrying the offset.
var ErrCorrupt = errors.New("wal: corrupt record")

// CorruptError reports the first invalid byte region of a WAL stream.
// Offset is the byte offset of the record that failed to decode, i.e. the
// length of the clean prefix before it.
type CorruptError struct {
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Is matches ErrCorrupt.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// AppendRecord appends one framed record to buf and returns the extended
// slice.
func AppendRecord(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ReadRecords scans a WAL byte stream, invoking fn with each valid record's
// payload in order. It stops at the first invalid byte and reports the
// clean prefix length (the offset up to which every record decoded and
// checksummed correctly).
//
// The returned error is nil when the stream ends exactly on a record
// boundary, a *CorruptError (errors.Is-matchable against ErrCorrupt) when
// it does not — a torn tail from a crash mid-append and a flipped bit are
// indistinguishable by construction, so both surface the same way and the
// caller decides whether truncating to the clean prefix is sound. An error
// returned by fn aborts the scan and is returned verbatim with the clean
// prefix ending before the record that fn rejected.
//
// ReadRecords never panics on any input, which FuzzWALReplay locks in.
func ReadRecords(r io.Reader, fn func(payload []byte) error) (clean int64, err error) {
	var hdr [headerSize]byte
	for {
		start := clean
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return clean, nil // clean end on a record boundary
		}
		if err != nil {
			return clean, &CorruptError{Offset: start, Reason: fmt.Sprintf("torn header (%d of %d bytes)", n, headerSize)}
		}
		if hdr[0] != recordMagic {
			return clean, &CorruptError{Offset: start, Reason: fmt.Sprintf("bad magic 0x%02x", hdr[0])}
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		if length > MaxRecordBytes {
			return clean, &CorruptError{Offset: start, Reason: fmt.Sprintf("payload length %d exceeds %d", length, MaxRecordBytes)}
		}
		payload := make([]byte, length)
		if m, err := io.ReadFull(r, payload); err != nil {
			return clean, &CorruptError{Offset: start, Reason: fmt.Sprintf("torn payload (%d of %d bytes)", m, length)}
		}
		want := binary.LittleEndian.Uint32(hdr[5:9])
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return clean, &CorruptError{Offset: start, Reason: fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want)}
		}
		clean = start + int64(headerSize) + int64(length)
		if fn != nil {
			if err := fn(payload); err != nil {
				return start, err
			}
		}
	}
}
