package jointree

import (
	"fmt"
	"strings"
)

// DOT renders the join tree in Graphviz format with shared-variable edge
// labels.
func (t *Tree) DOT() string {
	var b strings.Builder
	b.WriteString("graph jointree {\n")
	b.WriteString("  node [shape=box, fontname=\"monospace\"];\n")
	for i, a := range t.Q.Atoms {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, a.String())
	}
	for i := 0; i < t.Q.Len(); i++ {
		for _, j := range t.adj[i] {
			if i < j {
				fmt.Fprintf(&b, "  n%d -- n%d [label=%q];\n", i, j, t.Label(i, j).String())
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
