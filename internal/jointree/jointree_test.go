package jointree

import (
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
)

func TestQ1JoinTree(t *testing.T) {
	q1 := cq.Q1() // F=R(u|a,x), G=S(y|x,z), H=T(x|y), I=P(x|z)
	if !IsAcyclic(q1) {
		t.Fatal("q1 is acyclic")
	}
	tree, err := Build(q1, TieBreakLex)
	if err != nil {
		t.Fatalf("Build(q1): %v", err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Fig. 2: the path between F (index 0) and H (index 2) must pass
	// through G or directly; in any valid join tree for q1, the edge
	// labels on the F–G path include {x}.
	labels := tree.PathLabels(0, 1)
	if len(labels) == 0 {
		t.Fatal("no path F..G")
	}
	for _, l := range labels {
		if !l.SubsetOf(cq.NewVarSet("x", "y", "z")) {
			t.Errorf("unexpected label %v on F..G path", l)
		}
	}
	// vars(F) ∩ vars(G) = {x}: the first label of the path from F must be
	// a subset of vars(F) = {u,x}, and since no other atom has u, = {x}.
	if !labels[0].Equal(cq.NewVarSet("x")) {
		t.Errorf("first label on F-path = %v, want {x}", labels[0])
	}
}

func TestCkAcyclicity(t *testing.T) {
	if !IsAcyclic(cq.Ck(2)) {
		t.Error("C(2) is acyclic")
	}
	for k := 3; k <= 6; k++ {
		if IsAcyclic(cq.Ck(k)) {
			t.Errorf("C(%d) must be cyclic", k)
		}
		if _, err := Build(cq.Ck(k), TieBreakLex); err == nil {
			t.Errorf("Build(C(%d)) should fail", k)
		}
		if !IsAcyclic(cq.ACk(k)) {
			t.Errorf("AC(%d) must be acyclic", k)
		}
		tree, err := Build(cq.ACk(k), TieBreakLex)
		if err != nil {
			t.Errorf("Build(AC(%d)): %v", k, err)
			continue
		}
		// In any join tree of AC(k), all Ri atoms must be adjacent to Sk
		// paths containing their shared variables; just verify the tree.
		if err := tree.Verify(); err != nil {
			t.Errorf("Verify(AC(%d)): %v", k, err)
		}
	}
}

func TestTriangleCyclic(t *testing.T) {
	q := cq.MustParseQuery("R(x|y), S(y|z), T(z|x)")
	if IsAcyclic(q) {
		t.Error("triangle query is cyclic")
	}
	_, err := Build(q, TieBreakLex)
	if err == nil {
		t.Fatal("Build should fail on triangle")
	}
	if _, ok := err.(ErrCyclic); !ok {
		t.Errorf("expected ErrCyclic, got %T: %v", err, err)
	}
}

func TestSmallQueries(t *testing.T) {
	empty := cq.Query{}
	if !IsAcyclic(empty) {
		t.Error("empty query is acyclic")
	}
	if tr, err := Build(empty, TieBreakLex); err != nil || tr.Q.Len() != 0 {
		t.Error("Build(empty) should succeed")
	}
	single := cq.MustParseQuery("R(x|y)")
	if !IsAcyclic(single) {
		t.Error("single atom is acyclic")
	}
	tr, err := Build(single, TieBreakLex)
	if err != nil {
		t.Fatalf("Build(single): %v", err)
	}
	if got := tr.Path(0, 0); len(got) != 1 || got[0] != 0 {
		t.Errorf("trivial path = %v", got)
	}
	if got := tr.PathLabels(0, 0); got != nil {
		t.Errorf("trivial path labels = %v", got)
	}
}

func TestDisconnectedQueryStitched(t *testing.T) {
	q := cq.MustParseQuery("R(x|y), S(u|v)")
	if !IsAcyclic(q) {
		t.Error("disconnected two-atom query is acyclic")
	}
	tree, err := Build(q, TieBreakLex)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	path := tree.Path(0, 1)
	if len(path) != 2 {
		t.Fatalf("path = %v", path)
	}
	if l := tree.Label(0, 1); l.Len() != 0 {
		t.Errorf("stitched edge should have empty label, got %v", l)
	}
}

func TestGroundAtoms(t *testing.T) {
	q := cq.MustParseQuery("R('a'|'b'), S(x|y), T(y|x)")
	if !IsAcyclic(q) {
		t.Error("query with ground atom is acyclic")
	}
	tree, err := Build(q, TieBreakLex)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tree.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestTerminalCyclesQueryJoinTree(t *testing.T) {
	q := cq.TerminalCyclesQuery()
	if !IsAcyclic(q) {
		t.Fatal("terminal-cycles query is acyclic")
	}
	for _, tb := range []TieBreak{TieBreakLex, TieBreakReverse} {
		tree, err := Build(q, tb)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if err := tree.Verify(); err != nil {
			t.Errorf("Verify: %v", err)
		}
	}
}

func TestVerifyCatchesBadTree(t *testing.T) {
	// Hand-build an invalid tree for R(x|y), S(y|z), T(z|w): chain
	// R—T—S breaks connectedness for z?? z occurs in S and T only; y occurs
	// in R and S: path R—T—S does not carry y through T.
	q := cq.MustParseQuery("R(x|y), S(y|z), T(z|w)")
	bad := &Tree{Q: q, adj: [][]int{{2}, {2}, {0, 1}}}
	if err := bad.Verify(); err == nil {
		t.Error("Verify should reject R—T—S for this query")
	}
	good := &Tree{Q: q, adj: [][]int{{1}, {0, 2}, {1}}}
	if err := good.Verify(); err != nil {
		t.Errorf("Verify should accept R—S—T: %v", err)
	}
}

// randomAcyclicQuery builds a query by generating a random tree and walking
// it, guaranteeing a join tree exists by construction.
func randomAcyclicQuery(seed uint32) cq.Query {
	r := seed
	next := func(n int) int {
		r = r*1664525 + 1013904223
		return int(r>>16) % n
	}
	n := 1 + next(6)
	vars := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	atomVars := make([]cq.VarSet, n)
	atomVars[0] = cq.NewVarSet(vars[next(len(vars))])
	for i := 1; i < n; i++ {
		parentIdx := next(i)
		shared := atomVars[parentIdx].Sorted()
		s := cq.NewVarSet()
		// Take a random nonempty subset of the parent's variables plus a
		// fresh one; connectedness holds as long as a shared variable's
		// atoms form a subtree, which this construction guarantees for the
		// generated tree itself.
		s.Add(shared[next(len(shared))])
		s.Add(vars[next(len(vars))])
		atomVars[i] = s
	}
	atoms := make([]cq.Atom, n)
	for i, vs := range atomVars {
		names := vs.Sorted()
		args := make([]cq.Term, len(names))
		for j, v := range names {
			args[j] = cq.Var(v)
		}
		atoms[i] = cq.Atom{Rel: "R" + string(rune('A'+i)), KeyLen: 1 + next(len(args)), Args: args}
	}
	return cq.Query{Atoms: atoms}
}

// Property: IsAcyclic (GYO) agrees with Build (MST + verify) on random
// queries, both acyclic-by-construction ones and arbitrary ones.
func TestQuickGYOAgreesWithMST(t *testing.T) {
	f := func(seed uint32) bool {
		q := randomAcyclicQuery(seed)
		// The construction above does not guarantee acyclicity when a
		// variable is reused by unrelated branches, so treat both outcomes
		// as valid — the two deciders just have to agree.
		_, err := Build(q, TieBreakLex)
		if IsAcyclic(q) != (err == nil) {
			t.Logf("disagreement on %s: GYO=%v Build err=%v", q, IsAcyclic(q), err)
			return false
		}
		_, err2 := Build(q, TieBreakReverse)
		return (err == nil) == (err2 == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: on arbitrary random queries the deciders also agree.
func TestQuickGYOAgreesWithMSTArbitrary(t *testing.T) {
	vars := []string{"a", "b", "c", "d", "e"}
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		n := 1 + next(5)
		atoms := make([]cq.Atom, n)
		for i := 0; i < n; i++ {
			arity := 1 + next(3)
			args := make([]cq.Term, arity)
			for j := range args {
				args[j] = cq.Var(vars[next(len(vars))])
			}
			atoms[i] = cq.Atom{Rel: "R" + string(rune('A'+i)), KeyLen: 1 + next(arity), Args: args}
		}
		q := cq.Query{Atoms: atoms}
		_, err := Build(q, TieBreakLex)
		return IsAcyclic(q) == (err == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPathAcrossStitchedComponents(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(u | v), T(y | w)")
	tree, err := Build(q, TieBreakLex)
	if err != nil {
		t.Fatal(err)
	}
	// All atoms are connected in the spanning tree (S stitched with an
	// empty label); every pair has a path.
	for i := 0; i < q.Len(); i++ {
		for j := 0; j < q.Len(); j++ {
			if p := tree.Path(i, j); len(p) == 0 {
				t.Errorf("no path %d..%d", i, j)
			}
		}
	}
	// Labels along the R..T path contain {y}.
	labels := tree.PathLabels(0, 2)
	found := false
	for _, l := range labels {
		if l.Has("y") {
			found = true
		}
	}
	if !found {
		t.Errorf("R..T path should carry y: %v", labels)
	}
}

func TestNeighborsAndString(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	tree, err := Build(q, TieBreakLex)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Neighbors(0)) != 1 || tree.Neighbors(0)[0] != 1 {
		t.Errorf("Neighbors = %v", tree.Neighbors(0))
	}
	if s := tree.String(); s == "" {
		t.Error("String should render edges")
	}
	if s := tree.DOT(); s == "" {
		t.Error("DOT should render")
	}
}
