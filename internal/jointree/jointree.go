// Package jointree decides acyclicity of conjunctive queries and builds join
// trees (Beeri–Fagin–Maier–Yannakakis). A join tree for q is a tree on the
// atoms of q satisfying the Connectedness Condition: whenever a variable
// occurs in two atoms, it occurs in every atom on the path linking them.
package jointree

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// Tree is a join tree (or forest stitched into a tree with empty-label
// edges) for the query Q. Vertices are atom indexes into Q.Atoms.
type Tree struct {
	Q   cq.Query
	adj [][]int
}

// ErrCyclic is returned by Build when the query has no join tree.
type ErrCyclic struct{ Q cq.Query }

func (e ErrCyclic) Error() string {
	return fmt.Sprintf("jointree: query is cyclic (has no join tree): %s", e.Q)
}

// IsAcyclic reports whether q has a join tree, using GYO reduction: remove
// "ears" (atoms whose variables are either exclusive to them or all
// contained in some other atom) until no atom, or no removable atom, is
// left. q is acyclic iff at most one atom survives.
func IsAcyclic(q cq.Query) bool {
	n := q.Len()
	if n <= 1 {
		return true
	}
	vars := make([]cq.VarSet, n)
	alive := make([]bool, n)
	for i, a := range q.Atoms {
		vars[i] = a.Vars()
		alive[i] = true
	}
	remaining := n
	for {
		removed := false
		for i := 0; i < n && remaining > 1; i++ {
			if !alive[i] {
				continue
			}
			// Variables of i shared with some other alive atom.
			shared := make(cq.VarSet)
			for v := range vars[i] {
				for j := 0; j < n; j++ {
					if j != i && alive[j] && vars[j].Has(v) {
						shared.Add(v)
						break
					}
				}
			}
			// i is an ear if its shared part is contained in a single other
			// alive atom (possibly the empty set).
			isEar := shared.Len() == 0
			if !isEar {
				for j := 0; j < n; j++ {
					if j != i && alive[j] && shared.SubsetOf(vars[j]) {
						isEar = true
						break
					}
				}
			}
			if isEar {
				alive[i] = false
				remaining--
				removed = true
			}
		}
		if !removed || remaining <= 1 {
			break
		}
	}
	return remaining <= 1
}

// Build constructs a join tree for q, or returns ErrCyclic if none exists.
// It computes a maximum-weight spanning tree of the intersection graph
// (weight = number of shared variables), which is a join tree iff the query
// is acyclic (Maier); the result is verified against the Connectedness
// Condition. Disconnected queries are stitched with empty-label edges.
//
// The tieBreak parameter selects among equal-weight edges; different values
// can produce different join trees for the same query, which the tests use
// to check that the attack graph does not depend on the tree chosen.
func Build(q cq.Query, tieBreak TieBreak) (*Tree, error) {
	n := q.Len()
	t := &Tree{Q: q, adj: make([][]int, n)}
	if n <= 1 {
		return t, nil
	}
	vars := make([]cq.VarSet, n)
	for i, a := range q.Atoms {
		vars[i] = a.Vars()
	}
	type edge struct {
		u, v, w int
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, edge{i, j, vars[i].Intersect(vars[j]).Len()})
		}
	}
	sort.SliceStable(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		switch tieBreak {
		case TieBreakReverse:
			if edges[a].u != edges[b].u {
				return edges[a].u > edges[b].u
			}
			return edges[a].v > edges[b].v
		default:
			if edges[a].u != edges[b].u {
				return edges[a].u < edges[b].u
			}
			return edges[a].v < edges[b].v
		}
	})
	// Kruskal.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	added := 0
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		t.adj[e.u] = append(t.adj[e.u], e.v)
		t.adj[e.v] = append(t.adj[e.v], e.u)
		added++
		if added == n-1 {
			break
		}
	}
	if err := t.Verify(); err != nil {
		return nil, ErrCyclic{Q: q}
	}
	return t, nil
}

// TieBreak selects among equal-weight spanning-tree edges.
type TieBreak int

const (
	// TieBreakLex prefers lexicographically smaller atom-index pairs.
	TieBreakLex TieBreak = iota
	// TieBreakReverse prefers lexicographically larger atom-index pairs.
	TieBreakReverse
)

// Verify checks the Connectedness Condition: for every variable x, the set
// of atoms containing x induces a connected subtree.
func (t *Tree) Verify() error {
	n := t.Q.Len()
	for x := range t.Q.Vars() {
		// Collect atoms containing x.
		inAtoms := make([]bool, n)
		var first = -1
		count := 0
		for i, a := range t.Q.Atoms {
			if a.HasVar(x) {
				inAtoms[i] = true
				count++
				if first < 0 {
					first = i
				}
			}
		}
		if count <= 1 {
			continue
		}
		// BFS restricted to atoms containing x.
		seen := make([]bool, n)
		seen[first] = true
		queue := []int{first}
		reached := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range t.adj[v] {
				if inAtoms[w] && !seen[w] {
					seen[w] = true
					reached++
					queue = append(queue, w)
				}
			}
		}
		if reached != count {
			return fmt.Errorf("jointree: variable %s violates the Connectedness Condition", x)
		}
	}
	return nil
}

// Neighbors returns the tree neighbors of atom i.
func (t *Tree) Neighbors(i int) []int { return t.adj[i] }

// Label returns the label of the tree edge {i,j}: vars(F_i) ∩ vars(F_j).
func (t *Tree) Label(i, j int) cq.VarSet {
	return t.Q.Atoms[i].Vars().Intersect(t.Q.Atoms[j].Vars())
}

// Path returns the unique path from atom i to atom j (both inclusive), or
// nil if i and j are in different stitched components (cannot happen for
// trees built by Build, which always yields a spanning tree).
func (t *Tree) Path(i, j int) []int {
	if i == j {
		return []int{i}
	}
	n := t.Q.Len()
	prev := make([]int, n)
	for k := range prev {
		prev[k] = -1
	}
	prev[i] = i
	queue := []int{i}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range t.adj[v] {
			if prev[w] != -1 {
				continue
			}
			prev[w] = v
			if w == j {
				path := []int{j}
				for x := v; ; x = prev[x] {
					path = append(path, x)
					if x == i {
						break
					}
				}
				for a, b := 0, len(path)-1; a < b; a, b = a+1, b-1 {
					path[a], path[b] = path[b], path[a]
				}
				return path
			}
			queue = append(queue, w)
		}
	}
	return nil
}

// PathLabels returns the labels along the unique path from i to j: the label
// of each consecutive tree edge, in order. Empty for i == j.
func (t *Tree) PathLabels(i, j int) []cq.VarSet {
	path := t.Path(i, j)
	if len(path) < 2 {
		return nil
	}
	labels := make([]cq.VarSet, 0, len(path)-1)
	for k := 0; k+1 < len(path); k++ {
		labels = append(labels, t.Label(path[k], path[k+1]))
	}
	return labels
}

// String renders the tree's edges with labels, e.g. "R—S{x}; S—T{x, y}".
func (t *Tree) String() string {
	var parts []string
	for i := 0; i < t.Q.Len(); i++ {
		for _, j := range t.adj[i] {
			if i < j {
				parts = append(parts, fmt.Sprintf("%s—%s%s",
					t.Q.Atoms[i].Rel, t.Q.Atoms[j].Rel, t.Label(i, j)))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}
