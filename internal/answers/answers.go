// Package answers lifts the Boolean CERTAINTY machinery to queries with
// free variables, the form downstream applications actually ask. The paper
// notes that "the restriction to Boolean queries simplifies the technical
// treatment, but is not fundamental": a tuple ā is a certain answer for
// q(x̄) iff the Boolean query q[x̄ ↦ ā] holds in every repair.
package answers

import (
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/prob"
	"github.com/cqa-go/certainty/internal/solver"
)

// Answer is one result tuple, in the order of the requested free variables.
type Answer []string

// Key renders the answer canonically for dedup and sorting.
func (a Answer) Key() string { return strings.Join(a, "\x00") }

// Result carries the certain and possible answers of a query.
type Result struct {
	// Free lists the free variables, fixing the column order.
	Free []string
	// Certain holds the tuples ā with q[x̄↦ā] true in every repair.
	Certain []Answer
	// Possible holds the tuples true in at least one repair; the certain
	// answers are a subset.
	Possible []Answer
}

// Possible computes the possible answers of q with the given free
// variables: projections of the embeddings of q in d. For self-join-free
// queries every embedding image is consistent and therefore extends to a
// repair, so "some repair satisfies q[x̄↦ā]" coincides with "d satisfies
// q[x̄↦ā]".
func Possible(q cq.Query, free []string, d *db.DB) ([]Answer, error) {
	if err := checkFree(q, free); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []Answer
	engine.EachEmbedding(q, d, func(v cq.Valuation) bool {
		a := make(Answer, len(free))
		for i, x := range free {
			a[i] = v[x]
		}
		if k := a.Key(); !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
		return true
	})
	sortAnswers(out)
	return out, nil
}

// Certain computes the certain answers of q with the given free variables,
// dispatching each candidate's Boolean instantiation through the
// classifier-driven solver. Candidates are the possible answers (certain ⊆
// possible, since every repair is a subset of d).
func Certain(q cq.Query, free []string, d *db.DB) (*Result, error) {
	possible, err := Possible(q, free, d)
	if err != nil {
		return nil, err
	}
	res := &Result{Free: append([]string(nil), free...), Possible: possible}
	// Fast path: when freezing the free variables yields an acyclic attack
	// graph, build the certain rewriting once, compile it, and evaluate it
	// per candidate, instead of re-classifying per candidate.
	var compiled *fo.Compiled
	if len(free) > 0 && fo.CanRewriteFree(q, free) {
		if f, err := fo.RewriteAcyclicFree(q, free); err == nil {
			if c, err := fo.Compile(f); err == nil {
				compiled = c
			}
		}
	}
	for _, a := range possible {
		v := make(cq.Valuation, len(free))
		for i, x := range free {
			v[x] = a[i]
		}
		var certain bool
		var err error
		if compiled != nil {
			certain, err = compiled.EvalWith(d, v)
		} else {
			certain, err = solver.Certain(q.Substitute(v), d)
		}
		if err != nil {
			return nil, err
		}
		if certain {
			res.Certain = append(res.Certain, a)
		}
	}
	return res, nil
}

// CertainBruteForce is the enumeration-based ground truth for Certain.
func CertainBruteForce(q cq.Query, free []string, d *db.DB) ([]Answer, error) {
	possible, err := Possible(q, free, d)
	if err != nil {
		return nil, err
	}
	var out []Answer
	for _, a := range possible {
		v := make(cq.Valuation, len(free))
		for i, x := range free {
			v[x] = a[i]
		}
		if solver.BruteForce(q.Substitute(v), d) {
			out = append(out, a)
		}
	}
	return out, nil
}

// CertainParallel is Certain with the per-candidate decisions fanned out
// across workers goroutines (0 means GOMAXPROCS). Candidates are decided
// on immutable inputs, so results are identical to the sequential version.
func CertainParallel(q cq.Query, free []string, d *db.DB, workers int) (*Result, error) {
	possible, err := Possible(q, free, d)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{Free: append([]string(nil), free...), Possible: possible}
	certain := make([]bool, len(possible))
	errs := make([]error, len(possible))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				v := make(cq.Valuation, len(free))
				for k, x := range free {
					v[x] = possible[i][k]
				}
				certain[i], errs[i] = solver.Certain(q.Substitute(v), d)
			}
		}()
	}
	for i := range possible {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, ok := range certain {
		if ok {
			res.Certain = append(res.Certain, possible[i])
		}
	}
	return res, nil
}

func checkFree(q cq.Query, free []string) error {
	vars := q.Vars()
	seen := make(map[string]bool, len(free))
	for _, x := range free {
		if !vars.Has(x) {
			return fmt.Errorf("answers: free variable %s does not occur in %s", x, q)
		}
		if seen[x] {
			return fmt.Errorf("answers: duplicate free variable %s", x)
		}
		seen[x] = true
	}
	return nil
}

func sortAnswers(as []Answer) {
	sort.Slice(as, func(i, j int) bool { return as[i].Key() < as[j].Key() })
}

// AnswerProbability pairs an answer with its probability under uniform
// repair semantics.
type AnswerProbability struct {
	Answer Answer
	// Pr is the exact probability that q[x̄↦answer] holds in a uniformly
	// random repair.
	Pr *big.Rat
}

// WithProbabilities returns every possible answer together with its exact
// uniform-repair probability (♯satisfying repairs / ♯repairs). Certain
// answers are exactly those with probability 1. Exponential in the number
// of multi-fact blocks of q's relations (world enumeration per candidate);
// use sampling for large databases.
func WithProbabilities(q cq.Query, free []string, d *db.DB) ([]AnswerProbability, error) {
	possible, err := Possible(q, free, d)
	if err != nil {
		return nil, err
	}
	out := make([]AnswerProbability, 0, len(possible))
	for _, a := range possible {
		v := make(cq.Valuation, len(free))
		for i, x := range free {
			v[x] = a[i]
		}
		out = append(out, AnswerProbability{
			Answer: a,
			Pr:     prob.UniformProbability(q.Substitute(v), d),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pr.Cmp(out[j].Pr) > 0 })
	return out, nil
}
