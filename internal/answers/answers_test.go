package answers

import (
	"math/big"
	"reflect"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
)

var bigOne = big.NewRat(1, 1)

func TestConferenceAnswers(t *testing.T) {
	d := gen.ConferenceDB()
	// "Which conferences are certainly rank A?"
	q := cq.MustParseQuery("R(x | 'A')")
	res, err := Certain(q, []string{"x"}, d)
	if err != nil {
		t.Fatal(err)
	}
	// Possible: PODS and KDD; certain: only PODS (KDD's rank is uncertain).
	wantPossible := []Answer{{"KDD"}, {"PODS"}}
	if !reflect.DeepEqual(res.Possible, wantPossible) {
		t.Errorf("Possible = %v", res.Possible)
	}
	if !reflect.DeepEqual(res.Certain, []Answer{{"PODS"}}) {
		t.Errorf("Certain = %v", res.Certain)
	}

	// "Which cities certainly host some conference?" Rome is the city of
	// KDD 2017 in every repair; Paris only in some.
	q2 := cq.MustParseQuery("C(x, y | c)")
	res2, err := Certain(q2, []string{"c"}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Certain, []Answer{{"Rome"}}) {
		t.Errorf("Certain cities = %v", res2.Certain)
	}
	if !reflect.DeepEqual(res2.Possible, []Answer{{"Paris"}, {"Rome"}}) {
		t.Errorf("Possible cities = %v", res2.Possible)
	}
}

func TestMultipleFreeVariables(t *testing.T) {
	d := gen.ConferenceDB()
	q := cq.MustParseQuery("C(x, y | c), R(x | r)")
	res, err := Certain(q, []string{"x", "r"}, d)
	if err != nil {
		t.Fatal(err)
	}
	// (PODS, A) is certain; KDD pairs are uncertain in rank.
	if !reflect.DeepEqual(res.Certain, []Answer{{"PODS", "A"}}) {
		t.Errorf("Certain = %v", res.Certain)
	}
	if len(res.Possible) != 3 { // (KDD,A), (KDD,B), (PODS,A)
		t.Errorf("Possible = %v", res.Possible)
	}
}

func TestBooleanAnswer(t *testing.T) {
	// No free variables: Certain reduces to the Boolean problem; the empty
	// tuple is the single possible answer iff the query is satisfiable.
	d := gen.ConferenceDB()
	q := cq.ConferenceQuery()
	res, err := Certain(q, nil, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Possible) != 1 || len(res.Possible[0]) != 0 {
		t.Errorf("Possible = %v", res.Possible)
	}
	if len(res.Certain) != 0 {
		t.Errorf("the Rome query is not certain: %v", res.Certain)
	}
}

func TestErrors(t *testing.T) {
	d := gen.ConferenceDB()
	q := cq.MustParseQuery("R(x | y)")
	if _, err := Certain(q, []string{"zzz"}, d); err == nil {
		t.Error("unknown free variable must be rejected")
	}
	if _, err := Certain(q, []string{"x", "x"}, d); err == nil {
		t.Error("duplicate free variable must be rejected")
	}
}

// TestCertainAgainstBruteForce validates the dispatched per-candidate
// solver against enumeration across query classes.
func TestCertainAgainstBruteForce(t *testing.T) {
	cases := []struct {
		q    cq.Query
		free []string
	}{
		{cq.MustParseQuery("R(x | y), S(y | z)"), []string{"x"}},
		{cq.MustParseQuery("R(x | y), S(y | z)"), []string{"x", "z"}},
		{cq.Ck(2), []string{"x1"}},
		{cq.ACk(3), []string{"x1"}},
		{cq.Q0(), []string{"x"}},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 15; seed++ {
			d := gen.RandomDB(c.q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			fast, err := Certain(c.q, c.free, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", c.q, seed, err)
			}
			slow, err := CertainBruteForce(c.q, c.free, d)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fast.Certain, slow) {
				t.Errorf("%s seed %d: fast=%v slow=%v", c.q, seed, fast.Certain, slow)
			}
			// Certain ⊆ Possible.
			pk := map[string]bool{}
			for _, a := range fast.Possible {
				pk[a.Key()] = true
			}
			for _, a := range fast.Certain {
				if !pk[a.Key()] {
					t.Errorf("%s seed %d: certain answer %v not possible", c.q, seed, a)
				}
			}
		}
	}
}

// TestCertainAnswerInstantiationClass: instantiating free variables can
// only simplify the query; e.g. q0 with x fixed becomes FO-solvable per
// candidate, and results still agree with enumeration (covered above).
// Here we check the substituted classification is accepted by Solve for
// every candidate of a coNP-classified query.
func TestCertainOnCoNPQuery(t *testing.T) {
	d := gen.MonotoneSATQ0DB(gen.RandomMonotoneSAT(3, 5, 2, 1))
	res, err := Certain(cq.Q0(), []string{"y"}, d)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := CertainBruteForce(cq.Q0(), []string{"y"}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Certain, slow) {
		t.Errorf("fast=%v slow=%v", res.Certain, slow)
	}
}

// TestCertainParallelAgrees: the parallel answer computation matches the
// sequential one across classes and worker counts.
func TestCertainParallelAgrees(t *testing.T) {
	cases := []struct {
		q    cq.Query
		free []string
	}{
		{cq.MustParseQuery("R(x | y), S(y | z)"), []string{"x"}},
		{cq.ACk(3), []string{"x1"}},
		{cq.Q0(), []string{"y"}},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 10; seed++ {
			d := gen.RandomDB(c.q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			seq, err := Certain(c.q, c.free, d)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 4} {
				par, err := CertainParallel(c.q, c.free, d, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par.Certain, seq.Certain) {
					t.Errorf("%s seed %d workers %d: parallel=%v sequential=%v",
						c.q, seed, workers, par.Certain, seq.Certain)
				}
			}
		}
	}
	if _, err := CertainParallel(cq.MustParseQuery("R(x | y)"), []string{"zzz"}, gen.ConferenceDB(), 2); err == nil {
		t.Error("bad free variable must be rejected")
	}
}

func TestWithProbabilities(t *testing.T) {
	d := gen.ConferenceDB()
	q := cq.MustParseQuery("R(x | r)")
	got, err := WithProbabilities(q, []string{"x", "r"}, d)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"PODS\x00A": "1",
		"KDD\x00A":  "1/2",
		"KDD\x00B":  "1/2",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d answers: %v", len(got), got)
	}
	for _, ap := range got {
		if w, ok := want[ap.Answer.Key()]; !ok || ap.Pr.RatString() != w {
			t.Errorf("%v: Pr=%v want %v", ap.Answer, ap.Pr, want[ap.Answer.Key()])
		}
	}
	// Sorted by probability, descending.
	if got[0].Answer.Key() != "PODS\x00A" {
		t.Errorf("highest-probability answer first: %v", got)
	}
	// Certain answers are exactly the probability-1 answers.
	res, err := Certain(q, []string{"x", "r"}, d)
	if err != nil {
		t.Fatal(err)
	}
	one := map[string]bool{}
	for _, ap := range got {
		if ap.Pr.Cmp(bigOne) == 0 {
			one[ap.Answer.Key()] = true
		}
	}
	for _, a := range res.Certain {
		if !one[a.Key()] {
			t.Errorf("certain answer %v lacks probability 1", a)
		}
	}
	if len(one) != len(res.Certain) {
		t.Errorf("probability-1 answers %v vs certain %v", one, res.Certain)
	}
}
