package fleet

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/shard"
)

// placementKeyOf is the key the coordinator will route testQuery under.
func placementKeyOf(t *testing.T, query string) string {
	t.Helper()
	q, err := cq.ParseQuery(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return shard.PlacementKey(q)
}

// hedgeValue reads one outcome's counter.
func hedgeValue(c *Coordinator, outcome string) uint64 {
	return c.reg.Counter(metricHedges, obs.L{K: "outcome", V: outcome}).Value()
}

// TestHedgeWins: the primary hangs, the hedge fires after the delay and its
// verdict is served; the hung primary is cancelled, not waited out. All
// orchestration is by channels — no sleeps, no timing assumptions beyond
// "1ms passes".
func TestHedgeWins(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, nil)
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	primaryEntered := make(chan struct{}, 1)
	order[0].set(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		primaryEntered <- struct{}{}
		<-r.Context().Done() // hang until the coordinator cancels the loser
	})
	order[1].set(solveOK(nil))

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged solve = %d, body %s", rec.Code, rec.Body)
	}
	<-primaryEntered // the primary really was asked first
	if got := hedgeValue(c, hedgeWon); got != 1 {
		t.Fatalf("hedges{won} = %d, want 1", got)
	}
	if got := hedgeValue(c, hedgeLost) + hedgeValue(c, hedgeCancelled); got != 0 {
		t.Fatalf("lost+cancelled = %d, want 0", got)
	}
}

// TestHedgeCancelled: the hedge fires but the primary answers while the
// hedge is still in flight; the hedge is cancelled and counted as such.
func TestHedgeCancelled(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, nil)
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	hedgeStarted := make(chan struct{})
	order[1].set(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		close(hedgeStarted)
		<-r.Context().Done() // stay in flight until cancelled
	})
	order[0].set(func(w http.ResponseWriter, r *http.Request) {
		<-hedgeStarted // answer only once the hedge is provably racing
		writeJSON(w, http.StatusOK, certainVerdict(nil))
	})

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d, body %s", rec.Code, rec.Body)
	}
	if got := hedgeValue(c, hedgeCancelled); got != 1 {
		t.Fatalf("hedges{cancelled} = %d, want 1", got)
	}
	if got := hedgeValue(c, hedgeWon) + hedgeValue(c, hedgeLost); got != 0 {
		t.Fatalf("won+lost = %d, want 0", got)
	}
}

// TestHedgeLost: the hedge completes (with a transient error) before the
// primary's verdict arrives; the primary wins and the hedge counts as lost,
// and the hedge's failure shows up as an internal-reason failover.
func TestHedgeLost(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, nil)
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	order[1].set(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError,
			&server.ErrorBody{Code: server.CodeInternal, Message: "scripted hedge failure"})
	})
	// The primary concludes only after the coordinator has PROCESSED the
	// hedge's failure (visible as the failover counter), so the race's
	// outcome — primary wins, hedge already done — is forced, not timed.
	hedgeFailed := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: server.CodeInternal})
	order[0].set(func(w http.ResponseWriter, r *http.Request) {
		for hedgeFailed.Value() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		writeJSON(w, http.StatusOK, certainVerdict(nil))
	})

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d, body %s", rec.Code, rec.Body)
	}
	if got := hedgeValue(c, hedgeLost); got != 1 {
		t.Fatalf("hedges{lost} = %d, want 1", got)
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: server.CodeInternal}).Value(); got != 1 {
		t.Fatalf("failovers{internal} = %d, want 1", got)
	}
}

// TestFailoverOnTransport: a dead primary is skipped within one request
// (failover, not an error to the client) and marked unhealthy so placement
// demotes it before the next probe sweep.
func TestFailoverOnTransport(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, func(cfg *Config) {
		cfg.HedgeDisabled = true
	})
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))
	order[0].srv.Close()
	order[1].set(solveOK(nil))

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})
	if rec.Code != http.StatusOK {
		t.Fatalf("failover solve = %d, body %s", rec.Code, rec.Body)
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: "transport"}).Value(); got != 1 {
		t.Fatalf("failovers{transport} = %d, want 1", got)
	}
	primary := c.placement(placementKeyOf(t, testQuery))[0]
	if order[1].srv.URL != primary.URL() {
		t.Fatalf("dead primary must be demoted; placement still prefers %s", primary.URL())
	}
}

// TestLyingReplicaFenced: a replica that returns 200 while claiming the
// wrong snapshot version (a worker the server-side fence cannot save us
// from — it is lying about its version) is refused by the coordinator's
// response re-check and the request fails over to a replica at the right
// version. The invariant under test is the strongest the fleet makes: no
// verdict for an unasked-for version ever reaches the client.
func TestLyingReplicaFenced(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, func(cfg *Config) {
		cfg.HedgeDisabled = true
	})
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	lie, truth := uint64(5), uint64(6)
	order[0].set(solveOK(&lie))
	order[1].set(solveOK(&truth))

	req := server.SolveRequest{Query: testQuery, IfDBVersion: &truth}
	rec := doCoord(t, c, "POST", "/v1/solve", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fenced solve = %d, body %s", rec.Code, rec.Body)
	}
	var resp server.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.DBVersion == nil || *resp.DBVersion != truth {
		t.Fatalf("served version = %v, want %d (the lying replica's answer must be refused)", resp.DBVersion, truth)
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: server.CodeVersionFenced}).Value(); got != 1 {
		t.Fatalf("failovers{version_fenced} = %d, want 1", got)
	}
}

// TestAllReplicasWrongVersionUnavailable: when every replica is at the
// wrong version the coordinator reports unavailable rather than serving a
// stale verdict — availability yields to correctness.
func TestAllReplicasWrongVersionUnavailable(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, func(cfg *Config) {
		cfg.HedgeDisabled = true
	})
	stale := uint64(3)
	s1.set(solveOK(&stale))
	s2.set(solveOK(&stale))

	want := uint64(9)
	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, IfDBVersion: &want})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-stale solve = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	var body server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Code != server.CodeUnavailable {
		t.Fatalf("code = %q, want unavailable", body.Code)
	}
}

// TestHedgeDelayDerivation: with an empty histogram the delay is the floor;
// after latency observations it tracks the configured quantile, clamped to
// the ceiling.
func TestHedgeDelayDerivation(t *testing.T) {
	c := newCoordinator(t, []string{"http://a.invalid"}, func(cfg *Config) {
		cfg.HedgeMinDelay = 10 * time.Millisecond
		cfg.HedgeMaxDelay = 500 * time.Millisecond
	})
	if got := c.hedgeDelay(); got != 10*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want the 10ms floor", got)
	}
	for i := 0; i < 100; i++ {
		c.latency.Observe(0.080) // steady 80ms fleet
	}
	got := c.hedgeDelay()
	if got <= 10*time.Millisecond || got > 500*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, want p95-derived within (10ms, 500ms]", got)
	}
	for i := 0; i < 1000; i++ {
		c.latency.Observe(30) // pathological latency
	}
	if got := c.hedgeDelay(); got != 500*time.Millisecond {
		t.Fatalf("clamped hedge delay = %v, want the 500ms ceiling", got)
	}
}
