package fleet

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/cqa-go/certainty/internal/server"
)

// TestFleetTopology: /v1/fleet (and /healthz) report every backend with
// health, status, and last-seen version.
func TestFleetTopology(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := newCoordinator(t, []string{w1.URL, w2.URL}, nil)

	// A solve against a versionless (stateless) worker leaves DBVersion
	// unset; the topology still lists both backends as healthy.
	doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})

	for _, path := range []string{"/v1/fleet", "/healthz"} {
		rec := doCoord(t, c, "GET", path, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d", path, rec.Code)
		}
		var st FleetStatusResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		if st.Status != "ok" || st.Healthy != 2 || len(st.Backends) != 2 {
			t.Fatalf("%s = %+v, want ok with 2 healthy backends", path, st)
		}
		if st.HedgeDelayMS <= 0 {
			t.Fatalf("%s hedge_delay_ms = %d, want > 0", path, st.HedgeDelayMS)
		}
	}
}

// TestCoordinatorRefusesMutations: the write path is not proxied; /v1/db*
// answers 501 with the unsupported code.
func TestCoordinatorRefusesMutations(t *testing.T) {
	w1 := newWorker(t)
	c := newCoordinator(t, []string{w1.URL}, nil)
	for _, path := range []string{"/v1/db", "/v1/db/facts"} {
		rec := doCoord(t, c, "POST", path, server.DBMutateRequest{Facts: "R(a | b)"})
		if rec.Code != http.StatusNotImplemented {
			t.Fatalf("%s = %d, want 501", path, rec.Code)
		}
		var body server.ErrorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if body.Code != server.CodeUnsupported {
			t.Fatalf("%s code = %q, want unsupported", path, body.Code)
		}
	}
}

// TestCoordinatorDrain: after BeginDrain the solve surface sheds with the
// shutdown code and readyz flips, mirroring worker drain semantics.
func TestCoordinatorDrain(t *testing.T) {
	w1 := newWorker(t)
	c := newCoordinator(t, []string{w1.URL}, nil)
	c.BeginDrain()

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining solve = %d, want 503", rec.Code)
	}
	var body server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Code != server.CodeShutdown {
		t.Fatalf("code = %q, want shutdown", body.Code)
	}
	if rec := doCoord(t, c, "GET", "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", rec.Code)
	}
}

// TestBatchShapeValidation: batch-shape failures are decided at the
// coordinator, identically to a worker — empty batches are malformed,
// oversized ones are policy violations.
func TestBatchShapeValidation(t *testing.T) {
	w1 := newWorker(t)
	c := newCoordinator(t, []string{w1.URL}, func(cfg *Config) {
		cfg.MaxBatchItems = 2
	})

	rec := doCoord(t, c, "POST", "/v1/solve/batch", server.BatchSolveRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", rec.Code)
	}

	big := server.BatchSolveRequest{Query: testQuery, Items: []server.BatchSolveItem{
		{DB: testDB}, {DB: testDB}, {DB: testDB},
	}}
	rec = doCoord(t, c, "POST", "/v1/solve/batch", big)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized batch = %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	var body server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Code != server.CodePolicy {
		t.Fatalf("code = %q, want policy", body.Code)
	}
}

// TestClassifyRoutes: classification routes like a solve and returns the
// worker's analysis unchanged.
func TestClassifyRoutes(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := newCoordinator(t, []string{w1.URL, w2.URL}, nil)
	rec := doCoord(t, c, "POST", "/v1/classify", server.ClassifyRequest{Query: "R(x | y)"})
	if rec.Code != http.StatusOK {
		t.Fatalf("classify = %d, body %s", rec.Code, rec.Body)
	}
	var resp server.ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !resp.InP {
		t.Fatalf("R(x | y) classified %+v, want in P (FO-rewritable)", resp)
	}
}
