// Package fleet is certd's coordinator mode: one process that routes
// solve/batch/classify traffic across N worker backends and stays correct
// and available when workers are slow, dead, stale, or lying.
//
// The safety argument is the paper's determinism: a CERTAINTY(q) verdict is
// a pure function of (canonical query, database content digest), so any
// replica holding a snapshot with the right digest returns the byte-
// identical verdict. That makes the coordinator's three availability
// mechanisms *provably* answer-preserving:
//
//   - Shard-aware routing: requests route by shard.PlacementKey (the
//     relation-set face of the PR 5 union-find decomposition) under
//     rendezvous hashing, so every query over one relation set lands on
//     the same worker — its verdict cache and per-relation indexes stay
//     hot, and replication only needs to ship each worker the relations
//     its keys read. Any other worker is merely colder, never wrong.
//   - Hedged requests: when the primary is slow, a second replica is fired
//     after a delay derived from the observed p95 (obs histogram); the
//     first conclusive verdict wins and the loser is cancelled. Both
//     replicas would return the same bytes, so hedging trades duplicate
//     work for tail latency, never answers.
//   - Replica failover: dead, shedding, or fenced backends are skipped in
//     placement order. Version fencing (SolveRequest.IfDBVersion, enforced
//     server-side and re-checked here against the response's DBVersion)
//     guarantees a lagging or lying replica can never serve a verdict for
//     a snapshot the client did not ask for.
//
// When every replica is exhausted the coordinator returns a typed
// unavailable error (server.CodeUnavailable) — the robustness contract is
// "byte-identical or unavailable", never a wrong or torn answer, and
// internal/fleet/chaos proves it under scripted fault schedules.
package fleet

import (
	"context"
	"hash/fnv"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cqa-go/certainty/internal/client"
	"github.com/cqa-go/certainty/internal/obs"
)

// Metric names exposed on the coordinator's /metrics.
const (
	// metricHedges counts hedged (second-replica) solve attempts by how
	// they ended: the hedge won the race, lost it after completing, or was
	// cancelled in flight when the primary answered first.
	metricHedges = "certd_client_hedges_total"
	// metricFailovers counts replica switches by the reason the previous
	// replica was abandoned (transport, shed, shutdown, internal,
	// read-only, version_fenced, item, stall).
	metricFailovers = "certd_fleet_failovers_total"
	// metricRequests counts routed requests by path and final outcome.
	metricRequests = "certd_fleet_requests_total"
	// metricSeconds is the end-to-end routed-solve latency histogram; its
	// p95 drives the hedging delay.
	metricSeconds = "certd_fleet_request_seconds"
	// metricBackendHealthy is 1 while a backend passes health probes.
	metricBackendHealthy = "certd_fleet_backend_healthy"
)

// Hedge outcome label values.
const (
	hedgeWon       = "won"
	hedgeLost      = "lost"
	hedgeCancelled = "cancelled"
)

// Config tunes a Coordinator. Zero fields get production defaults from New.
type Config struct {
	// Backends are the worker base URLs (required, at least one).
	Backends []string
	// HTTPClient is shared by every backend client and health probe.
	// Defaults to http.DefaultClient; the chaos harness injects a
	// fault-wrapped transport here.
	HTTPClient *http.Client
	// HedgeQuantile is the latency quantile the hedging delay tracks
	// (default 0.95): a hedge fires when the primary has been out longer
	// than this fraction of recent requests took end to end.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedging delay and stands in for it while
	// the latency histogram is empty (default 5ms). HedgeMaxDelay caps it
	// (default 2s).
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeDisabled turns hedging off; failover still applies.
	HedgeDisabled bool
	// ProbeInterval is the period of the /readyz health sweep started by
	// Start (default 1s).
	ProbeInterval time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB), MaxBatchItems the
	// items per batch (default 256) — the same limits a worker applies, so
	// oversized requests die at the coordinator instead of fanning out.
	MaxBodyBytes  int64
	MaxBatchItems int
	// GroupSplit is the batch-item count above which one placement group
	// is split across replicas instead of riding one worker (default 8).
	// Splitting trades verdict-cache locality for parallelism; it never
	// changes verdicts.
	GroupSplit int
	// BatchStallTimeout abandons a batch hop whose stream has made no
	// progress (no item yielded) for this long and fails the chunk over
	// (default 30s). Hedging covers slow or partitioned workers on the
	// solve path; this watchdog is the batch path's equivalent — without
	// it a partitioned worker would hang a chunk forever. Progress resets
	// the clock, so a legitimately slow-but-streaming worker is never cut.
	BatchStallTimeout time.Duration
	// Registry receives the coordinator's metrics (default obs.Default).
	Registry *obs.Registry
	// Logger, when non-nil, receives one line per routing event.
	Logger *log.Logger
}

// Backend is one worker as the coordinator sees it.
type Backend struct {
	url    string
	client *client.Client

	healthy atomic.Bool
	status  atomic.Value // string: "ok", "draining", "read-only", "transport", "probe"
	version atomic.Uint64
	hasVer  atomic.Bool

	gHealthy *obs.Gauge
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Healthy reports the current health verdict (probe- or traffic-derived).
func (b *Backend) Healthy() bool { return b.healthy.Load() }

func (b *Backend) setHealth(ok bool, status string) {
	b.healthy.Store(ok)
	b.status.Store(status)
	if ok {
		b.gHealthy.Set(1)
	} else {
		b.gHealthy.Set(0)
	}
}

// noteVersion records the hosted-database version observed in a response.
func (b *Backend) noteVersion(v uint64) {
	b.version.Store(v)
	b.hasVer.Store(true)
}

// Coordinator routes requests across the fleet. Create with New, expose
// via Handler, start probing with Start, stop with Close.
type Coordinator struct {
	cfg      Config
	backends []*Backend
	reg      *obs.Registry
	latency  *obs.Histogram

	mHedgeWon       *obs.Counter
	mHedgeLost      *obs.Counter
	mHedgeCancelled *obs.Counter

	mux      *http.ServeMux
	draining atomic.Bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Coordinator over cfg.Backends, applying defaults for unset
// fields. Backends start healthy — the first probe or request corrects
// optimism within one round trip, while pessimism would refuse traffic a
// fresh fleet could serve.
func New(cfg Config) *Coordinator {
	if len(cfg.Backends) == 0 {
		panic("fleet: no backends configured")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.HedgeQuantile <= 0 || cfg.HedgeQuantile >= 1 {
		cfg.HedgeQuantile = 0.95
	}
	if cfg.HedgeMinDelay <= 0 {
		cfg.HedgeMinDelay = 5 * time.Millisecond
	}
	if cfg.HedgeMaxDelay <= 0 {
		cfg.HedgeMaxDelay = 2 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.GroupSplit <= 0 {
		cfg.GroupSplit = 8
	}
	if cfg.BatchStallTimeout <= 0 {
		cfg.BatchStallTimeout = 30 * time.Second
	}
	c := &Coordinator{cfg: cfg, stop: make(chan struct{})}
	c.reg = cfg.Registry
	if c.reg == nil {
		c.reg = obs.Default
	}
	c.reg.Help(metricHedges, "Hedged (second-replica) solve attempts, by outcome (won/lost/cancelled).")
	c.reg.Help(metricFailovers, "Replica failovers, by the reason the previous replica was abandoned.")
	c.reg.Help(metricRequests, "Requests routed by the coordinator, by path and final outcome.")
	c.reg.Help(metricSeconds, "End-to-end routed-solve latency in seconds; its p95 drives the hedging delay.")
	c.reg.Help(metricBackendHealthy, "1 while the backend passes health probes, by backend URL.")
	c.latency = c.reg.Histogram(metricSeconds, nil)
	c.mHedgeWon = c.reg.Counter(metricHedges, obs.L{K: "outcome", V: hedgeWon})
	c.mHedgeLost = c.reg.Counter(metricHedges, obs.L{K: "outcome", V: hedgeLost})
	c.mHedgeCancelled = c.reg.Counter(metricHedges, obs.L{K: "outcome", V: hedgeCancelled})
	for _, u := range cfg.Backends {
		b := &Backend{
			url: u,
			client: &client.Client{
				BaseURL:    u,
				HTTPClient: cfg.HTTPClient,
				// The coordinator owns retry policy: one attempt per
				// backend, failover and hedging do the rest. Per-backend
				// backoff retries would fight the hedging race.
				MaxRetries:  0,
				NoItemRetry: true,
				Registry:    c.reg,
			},
			gHealthy: c.reg.Gauge(metricBackendHealthy, obs.L{K: "backend", V: u}),
		}
		b.setHealth(true, "unprobed")
		c.backends = append(c.backends, b)
	}
	c.buildMux()
	return c
}

// Backends returns the fleet members in configuration order.
func (c *Coordinator) Backends() []*Backend { return c.backends }

// logf logs when a logger is configured.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf(format, args...)
	}
}

// failovers resolves the failover counter for one abandon reason.
func (c *Coordinator) failovers(reason string) *obs.Counter {
	return c.reg.Counter(metricFailovers, obs.L{K: "reason", V: reason})
}

// requests resolves the routed-request counter for one path and outcome.
func (c *Coordinator) requests(path, outcome string) *obs.Counter {
	return c.reg.Counter(metricRequests, obs.L{K: "path", V: path}, obs.L{K: "outcome", V: outcome})
}

// placement orders the fleet for one placement key: rendezvous (highest-
// random-weight) hashing of key⊕backend, healthy backends first. Every
// coordinator computes the same order for the same key with no shared
// state, the order is stable while the fleet is stable, and removing a
// backend only moves the keys that backend owned — the properties that
// make the relation-set digest a placement function rather than a load
// balancer's coin flip. Unhealthy backends stay in the order, at the tail:
// they are the last resort when every healthy replica has failed, and a
// success there flips them healthy again (traffic is the fastest probe).
func (c *Coordinator) placement(key string) []*Backend {
	type scored struct {
		b       *Backend
		healthy bool
		score   uint64
	}
	order := make([]scored, len(c.backends))
	for i, b := range c.backends {
		h := fnv.New64a()
		h.Write([]byte(key))
		h.Write([]byte{0})
		h.Write([]byte(b.url))
		order[i] = scored{b: b, healthy: b.healthy.Load(), score: h.Sum64()}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].healthy != order[j].healthy {
			return order[i].healthy
		}
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].b.url < order[j].b.url
	})
	out := make([]*Backend, len(order))
	for i, s := range order {
		out[i] = s.b
	}
	return out
}

// healthyCount returns how many backends currently pass health checks.
func (c *Coordinator) healthyCount() int {
	n := 0
	for _, b := range c.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// hedgeDelay derives the current hedging delay: the configured quantile of
// the observed end-to-end latency, clamped to [HedgeMinDelay,
// HedgeMaxDelay]. An empty histogram (fresh coordinator) falls back to the
// floor — hedging early on a cold fleet costs one duplicate solve, while
// not hedging costs the client the whole tail.
func (c *Coordinator) hedgeDelay() time.Duration {
	d, ok := c.latency.QuantileDuration(c.cfg.HedgeQuantile)
	if !ok || d < c.cfg.HedgeMinDelay {
		d = c.cfg.HedgeMinDelay
	}
	if d > c.cfg.HedgeMaxDelay {
		d = c.cfg.HedgeMaxDelay
	}
	return d
}

// Start launches the periodic health sweep. Safe to skip in tests — use
// ProbeNow for a synchronous round instead.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeInterval)
				c.ProbeNow(ctx)
				cancel()
			}
		}
	}()
}

// ProbeNow sweeps every backend's /readyz once, concurrently, and updates
// health state. A 200 is healthy; anything else — including a 503 from a
// draining or read-only worker — is not, so load stops routing there
// before requests have to discover it the hard way.
func (c *Coordinator) ProbeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range c.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			h, err := b.client.Ready(ctx)
			switch {
			case err == nil:
				b.setHealth(true, "ok")
				if h.ReadOnly {
					// Defensive: a 200 body flagging read-only would mean a
					// worker predating the readyz change; record it.
					b.setHealth(false, "read-only")
				}
			default:
				b.setHealth(false, "probe")
			}
		}(b)
	}
	wg.Wait()
}

// BeginDrain stops admitting new requests (503 shutdown), mirroring the
// worker server's drain semantics.
func (c *Coordinator) BeginDrain() { c.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Close stops the health sweep. It does not touch the backends.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}
