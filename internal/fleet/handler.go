package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/shard"
)

const ndjsonContentType = "application/x-ndjson"

// BackendStatus is one backend's row in the fleet topology report.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Status is "ok", "unprobed", "probe" (probe failed), "transport"
	// (request-path failure), or "read-only".
	Status string `json:"status,omitempty"`
	// DBVersion is the latest hosted-snapshot version seen in a response
	// from this backend, when any response has reported one.
	DBVersion *uint64 `json:"db_version,omitempty"`
}

// FleetStatusResponse is the body of the coordinator's /healthz, /readyz,
// and /v1/fleet.
type FleetStatusResponse struct {
	// Status is "ok" while at least one backend is healthy, "draining"
	// during shutdown, "unavailable" otherwise.
	Status   string          `json:"status"`
	Healthy  int             `json:"healthy"`
	Backends []BackendStatus `json:"backends"`
	// HedgeDelayMS is the current hedging delay (p95-derived, clamped).
	HedgeDelayMS int64 `json:"hedge_delay_ms"`
}

// Handler returns the coordinator's HTTP handler. It serves the same /v1
// solve surface as a worker — a client cannot tell a coordinator from a
// fat single node, except that mutations are refused (the write path goes
// to workers directly; the coordinator routes reads).
func (c *Coordinator) Handler() http.Handler { return c.mux }

func (c *Coordinator) buildMux() {
	m := http.NewServeMux()
	m.HandleFunc("/v1/solve", c.handleSolve)
	m.HandleFunc("/v1/solve/batch", c.handleBatch)
	m.HandleFunc("/v1/classify", c.handleClassify)
	m.HandleFunc("/v1/compile", c.handleCompile)
	m.HandleFunc("/v1/fleet", c.handleFleet)
	m.HandleFunc("/v1/db", c.handleDB)
	m.HandleFunc("/v1/db/", c.handleDB)
	m.HandleFunc("/healthz", c.handleFleet)
	m.HandleFunc("/readyz", c.handleReadyz)
	m.HandleFunc("/metrics", c.handleMetrics)
	c.mux = m
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError serializes a routing or relayed worker error with the status
// its taxonomy code dictates, mirroring the worker server's conventions
// (Retry-After header on transient statuses).
func writeError(w http.ResponseWriter, body *server.ErrorBody) {
	status := server.StatusForCode(body.Code)
	if body.RetryAfterMS > 0 && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) {
		secs := (body.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, body)
}

// relayError writes err to w: a typed worker/routing error passes through
// with its own status; anything else (context cancellation aside) becomes
// an internal error.
func relayError(w http.ResponseWriter, err error) {
	var eb *server.ErrorBody
	if errors.As(err, &eb) {
		writeError(w, eb)
		return
	}
	writeError(w, &server.ErrorBody{Code: server.CodeInternal, Message: err.Error()})
}

func (c *Coordinator) admit(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	if c.draining.Load() {
		writeError(w, &server.ErrorBody{Code: server.CodeShutdown, Message: "coordinator is draining", RetryAfterMS: 1000})
		return false
	}
	return true
}

func (c *Coordinator) handleSolve(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	var req server.SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &server.ErrorBody{Code: server.CodeMalformed, Message: "body: " + err.Error()})
		return
	}
	// The placement key needs the parsed query; an unparseable one still
	// routes (key "") so the worker's parser writes the canonical error.
	key := ""
	if q, err := cq.ParseQuery(req.Query); err == nil {
		key = shard.PlacementKey(q)
	}
	resp, err := c.routeSolve(r.Context(), key, req)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone
		}
		relayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleClassify(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	var req server.ClassifyRequest
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &server.ErrorBody{Code: server.CodeMalformed, Message: "body: " + err.Error()})
		return
	}
	key := ""
	if q, err := cq.ParseQuery(req.Query); err == nil {
		key = shard.PlacementKey(q)
	}
	resp, err := c.routeClassify(r.Context(), key, req.Query)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		relayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCompile passes a rewriting compilation through to a worker.
// Unsupported-class errors (non-FO queries) relay verbatim, classification
// code included, so fleet clients get the same fallback signal as
// single-node clients.
func (c *Coordinator) handleCompile(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	var req server.CompileRequest
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &server.ErrorBody{Code: server.CodeMalformed, Message: "body: " + err.Error()})
		return
	}
	key := ""
	if q, err := cq.ParseQuery(req.Query); err == nil {
		key = shard.PlacementKey(q)
	}
	resp, err := c.routeCompile(r.Context(), key, req.Query, req.Dialect)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		relayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	var req server.BatchSolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &server.ErrorBody{Code: server.CodeMalformed, Message: "body: " + err.Error()})
		return
	}
	// Batch-shape validation happens here, with the worker's messages: these
	// failures must not depend on which replica would have been asked.
	if len(req.Items) == 0 {
		writeError(w, &server.ErrorBody{Code: server.CodeMalformed, Message: "batch has no items"})
		return
	}
	if len(req.Items) > c.cfg.MaxBatchItems {
		writeError(w, &server.ErrorBody{
			Code:    server.CodePolicy,
			Message: "batch has " + strconv.Itoa(len(req.Items)) + " items, server maximum is " + strconv.Itoa(c.cfg.MaxBatchItems),
		})
		return
	}

	start := time.Now()
	stream := req.Stream || strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
	if stream {
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		flush := func() {}
		if f, ok := w.(http.Flusher); ok {
			flush = f.Flush
		}
		var mu sync.Mutex
		c.routeBatch(r.Context(), req, func(item server.BatchItemResult) {
			mu.Lock()
			defer mu.Unlock()
			_ = enc.Encode(&item)
			flush()
		})
		c.requests("/v1/solve/batch", "ok").Inc()
		return
	}
	results := make([]server.BatchItemResult, len(req.Items))
	var mu sync.Mutex
	c.routeBatch(r.Context(), req, func(item server.BatchItemResult) {
		mu.Lock()
		defer mu.Unlock()
		if item.Index >= 0 && item.Index < len(results) {
			results[item.Index] = item
		}
	})
	if r.Context().Err() != nil {
		return
	}
	c.requests("/v1/solve/batch", "ok").Inc()
	writeJSON(w, http.StatusOK, server.BatchSolveResponse{
		Results:   results,
		ElapsedMS: time.Since(start).Milliseconds(),
	})
}

// handleDB refuses mutations and hosted-database reads: the coordinator
// routes solve traffic, it does not proxy the write path. Writers talk to
// workers (or the replication pipeline) directly.
func (c *Coordinator) handleDB(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusNotImplemented, &server.ErrorBody{
		Code:    server.CodeUnsupported,
		Message: "coordinator does not serve /v1/db; address workers directly",
	})
}

func (c *Coordinator) status() FleetStatusResponse {
	resp := FleetStatusResponse{HedgeDelayMS: c.hedgeDelay().Milliseconds()}
	for _, b := range c.backends {
		bs := BackendStatus{URL: b.url, Healthy: b.healthy.Load()}
		if s, ok := b.status.Load().(string); ok {
			bs.Status = s
		}
		if b.hasVer.Load() {
			v := b.version.Load()
			bs.DBVersion = &v
		}
		if bs.Healthy {
			resp.Healthy++
		}
		resp.Backends = append(resp.Backends, bs)
	}
	switch {
	case c.draining.Load():
		resp.Status = "draining"
	case resp.Healthy > 0:
		resp.Status = "ok"
	default:
		resp.Status = "unavailable"
	}
	return resp
}

// handleFleet reports the fleet topology (also the coordinator's /healthz:
// the process is alive, here is what it can see).
func (c *Coordinator) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.status())
}

// handleReadyz is ready while at least one backend is healthy and the
// coordinator is not draining: with one live replica the fleet still
// answers (slower, unhedged), with zero it can only say unavailable.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s := c.status()
	if s.Status != "ok" {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, s)
		return
	}
	writeJSON(w, http.StatusOK, s)
}

// handleMetrics serves the coordinator registry in Prometheus text format.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.reg.WritePrometheus(w)
}
