package fleet

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
)

// decodeStream parses an NDJSON batch response body.
func decodeStream(t *testing.T, body string) []server.BatchItemResult {
	t.Helper()
	var items []server.BatchItemResult
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var it server.BatchItemResult
		if err := json.Unmarshal([]byte(line), &it); err != nil {
			t.Fatalf("decode stream line %q: %v", line, err)
		}
		items = append(items, it)
	}
	return items
}

// subRecorder wraps a scripted handler to capture the sub-batches a backend
// receives.
type subRecorder struct {
	mu   sync.Mutex
	subs []server.BatchSolveRequest
}

func (sr *subRecorder) record(r *http.Request) server.BatchSolveRequest {
	var req server.BatchSolveRequest
	_ = json.NewDecoder(r.Body).Decode(&req)
	sr.mu.Lock()
	sr.subs = append(sr.subs, req)
	sr.mu.Unlock()
	return req
}

func (sr *subRecorder) all() []server.BatchSolveRequest {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return append([]server.BatchSolveRequest(nil), sr.subs...)
}

// streamItems writes NDJSON verdict results for the given sub indices.
func streamItems(w http.ResponseWriter, idxs ...int) {
	enc := json.NewEncoder(w)
	for _, i := range idxs {
		v := certainVerdict(nil).Verdict
		_ = enc.Encode(server.BatchItemResult{Index: i, Verdict: &v})
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// batchOf builds a one-group batch whose items are distinguishable by DB.
func batchOf(dbs ...string) server.BatchSolveRequest {
	req := server.BatchSolveRequest{Query: testQuery, Stream: true}
	for _, d := range dbs {
		req.Items = append(req.Items, server.BatchSolveItem{DB: d})
	}
	return req
}

// TestBatchStreamNoReplayOnFailover is the mid-stream failover replay
// guard: the primary yields item 0 and dies; the failover must re-dispatch
// ONLY the unseen items, and the client-visible stream must contain exactly
// one result per index.
func TestBatchStreamNoReplayOnFailover(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, nil)
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	order[0].set(func(w http.ResponseWriter, r *http.Request) {
		var req server.BatchSolveRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		streamItems(w, 0)           // deliver item 0 ...
		panic(http.ErrAbortHandler) // ... then die mid-stream
	})
	var second subRecorder
	order[1].set(func(w http.ResponseWriter, r *http.Request) {
		req := second.record(r)
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		for i := range req.Items {
			streamItems(w, i)
		}
	})

	rec := doCoord(t, c, "POST", "/v1/solve/batch", batchOf("R(a | b), S(b | a)", "R(a | c), S(c | a)", "R(a | d), S(d | a)"))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d, body %s", rec.Code, rec.Body)
	}
	items := decodeStream(t, rec.Body.String())
	if len(items) != 3 {
		t.Fatalf("stream delivered %d items, want 3: %s", len(items), rec.Body)
	}
	seen := map[int]int{}
	for _, it := range items {
		seen[it.Index]++
		if it.Verdict == nil {
			t.Fatalf("item %d has no verdict after failover: %+v", it.Index, it)
		}
	}
	for i := 0; i < 3; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d delivered %d times, want exactly once (replay!)", i, seen[i])
		}
	}

	subs := second.all()
	if len(subs) != 1 {
		t.Fatalf("failover target received %d sub-batches, want 1", len(subs))
	}
	if got := len(subs[0].Items); got != 2 {
		t.Fatalf("failover re-dispatched %d items, want 2 (item 0 was already delivered)", got)
	}
	for _, it := range subs[0].Items {
		if it.DB == "R(a | b), S(b | a)" {
			t.Fatal("item 0 was re-dispatched after being delivered: replay across failover")
		}
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: "transport"}).Value(); got == 0 {
		t.Fatal("mid-stream cut must count as a transport failover")
	}
}

// TestBatchTransientItemFailsOver: an item-level transient error (internal)
// is not delivered to the client; the item is held and re-dispatched to the
// next replica, whose verdict is served.
func TestBatchTransientItemFailsOver(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, nil)
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	order[0].set(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		streamItems(w, 0)
		enc := json.NewEncoder(w)
		_ = enc.Encode(server.BatchItemResult{Index: 1, Error: &server.ErrorBody{
			Code: server.CodeInternal, Message: "scripted item failure",
		}})
	})
	var second subRecorder
	order[1].set(func(w http.ResponseWriter, r *http.Request) {
		req := second.record(r)
		w.Header().Set("Content-Type", ndjsonContentType)
		w.WriteHeader(http.StatusOK)
		for i := range req.Items {
			streamItems(w, i)
		}
	})

	rec := doCoord(t, c, "POST", "/v1/solve/batch", batchOf("R(a | b), S(b | a)", "R(a | c), S(c | a)"))
	items := decodeStream(t, rec.Body.String())
	if len(items) != 2 {
		t.Fatalf("stream delivered %d items, want 2: %s", len(items), rec.Body)
	}
	for _, it := range items {
		if it.Error != nil {
			t.Fatalf("transient item error leaked to the client: %+v", it.Error)
		}
	}
	subs := second.all()
	if len(subs) != 1 || len(subs[0].Items) != 1 || subs[0].Items[0].DB != "R(a | c), S(c | a)" {
		t.Fatalf("failover must re-dispatch exactly the held item, got %+v", subs)
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: "item"}).Value(); got != 1 {
		t.Fatalf("failovers{item} = %d, want 1", got)
	}
}

// TestBatchPermanentItemDelivered: a permanent item error (unsupported) is
// the item's answer on any replica — it is delivered, not failed over.
func TestBatchPermanentItemDelivered(t *testing.T) {
	w1 := newWorker(t)
	c := newCoordinator(t, []string{w1.URL}, nil)

	req := server.BatchSolveRequest{Stream: true, Items: []server.BatchSolveItem{
		{Query: testQuery, DB: testDB},
		{Query: "R(x | y), R(y | x)", DB: testDB}, // self-join: unsupported
	}}
	rec := doCoord(t, c, "POST", "/v1/solve/batch", req)
	items := decodeStream(t, rec.Body.String())
	if len(items) != 2 {
		t.Fatalf("delivered %d items, want 2: %s", len(items), rec.Body)
	}
	byIdx := map[int]server.BatchItemResult{}
	for _, it := range items {
		byIdx[it.Index] = it
	}
	if byIdx[0].Verdict == nil {
		t.Fatalf("item 0 = %+v, want a verdict", byIdx[0])
	}
	if byIdx[1].Error == nil || byIdx[1].Error.Code != server.CodeUnsupported {
		t.Fatalf("item 1 = %+v, want the worker's unsupported error", byIdx[1])
	}
}

// TestBatchSplitsLargeGroups: a homogeneous batch larger than GroupSplit
// strides across replicas — both workers see real work — and every item
// still gets its verdict.
func TestBatchSplitsLargeGroups(t *testing.T) {
	hits := make([]int, 2)
	var mu sync.Mutex
	wrap := func(i int, h http.Handler) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/solve") {
				mu.Lock()
				hits[i]++
				mu.Unlock()
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	w1 := wrap(0, workerHandler(t))
	w2 := wrap(1, workerHandler(t))
	c := newCoordinator(t, []string{w1.URL, w2.URL}, func(cfg *Config) {
		cfg.GroupSplit = 2
	})

	dbs := []string{
		"R(a | b), S(b | a)", "R(a | c), S(c | a)", "R(a | d), S(d | a)",
		"R(a | e), S(e | a)", "R(a | f), S(f | a)", "R(a | g), S(g | a)",
	}
	rec := doCoord(t, c, "POST", "/v1/solve/batch", batchOf(dbs...))
	items := decodeStream(t, rec.Body.String())
	if len(items) != len(dbs) {
		t.Fatalf("delivered %d items, want %d", len(items), len(dbs))
	}
	for _, it := range items {
		if it.Verdict == nil {
			t.Fatalf("item %d missing verdict: %+v", it.Index, it)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if hits[0] == 0 || hits[1] == 0 {
		t.Fatalf("group split must use both workers, got hits %v", hits)
	}
}

// workerHandler builds a real worker's handler for wrapping.
func workerHandler(t *testing.T) http.Handler {
	t.Helper()
	return newWorkerServer(t).Handler()
}

// TestBatchAllDownUnavailable: a batch against a dead fleet yields one
// typed unavailable error per item — never a hang, never a partial silence.
func TestBatchAllDownUnavailable(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, nil)
	s1.srv.Close()
	s2.srv.Close()

	req := batchOf("R(a | b), S(b | a)", "R(a | c), S(c | a)")
	req.Stream = false
	rec := doCoord(t, c, "POST", "/v1/solve/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d, body %s", rec.Code, rec.Body)
	}
	var resp server.BatchSolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Error == nil || r.Error.Code != server.CodeUnavailable {
			t.Fatalf("result %d = %+v, want unavailable", i, r)
		}
	}
}

// TestBatchMatchesSingleNode is the batch differential: mixed FO and
// unsupported items through the fleet produce verdicts byte-identical to a
// single node's, whatever replica served each item.
func TestBatchMatchesSingleNode(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := newCoordinator(t, []string{w1.URL, w2.URL}, func(cfg *Config) {
		cfg.GroupSplit = 1 // force splitting so both replicas serve
	})
	req := server.BatchSolveRequest{Stream: true, Items: []server.BatchSolveItem{
		{Query: "R(x | y)", DB: "R(a | b), R(a | c)"},
		{Query: testQuery, DB: testDB},
		{Query: "R(x | y)", DB: "R(d | e)"},
		{Query: testQuery, DB: "R(a | b), S(b | c)"},
	}}
	rec := doCoord(t, c, "POST", "/v1/solve/batch", req)
	fleet := decodeStream(t, rec.Body.String())
	direct := doWorkerBatch(t, w1.URL, req)

	if len(fleet) != len(direct) {
		t.Fatalf("fleet delivered %d items, single node %d", len(fleet), len(direct))
	}
	fm := map[int]server.BatchItemResult{}
	for _, it := range fleet {
		fm[it.Index] = it
	}
	for _, want := range direct {
		got, ok := fm[want.Index]
		if !ok {
			t.Fatalf("fleet missing item %d", want.Index)
		}
		gv, _ := json.Marshal(got.Verdict)
		wv, _ := json.Marshal(want.Verdict)
		if string(gv) != string(wv) {
			t.Fatalf("item %d: fleet verdict %s != single-node %s", want.Index, gv, wv)
		}
	}
}

// doWorkerBatch runs a batch directly against one worker URL.
func doWorkerBatch(t *testing.T, url string, req server.BatchSolveRequest) []server.BatchItemResult {
	t.Helper()
	req.Stream = false
	data, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/solve/batch", "application/json", strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("direct batch: %v", err)
	}
	defer resp.Body.Close()
	var out server.BatchSolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode direct batch: %v", err)
	}
	return out.Results
}
