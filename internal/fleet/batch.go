package fleet

import (
	"context"
	"errors"
	"sort"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/shard"
)

// batchGroup is the unit of batch routing: the items of one placement key,
// bound for one replica chain. Unparseable queries group under key "" —
// they still route (deterministically, like any key) so the worker's parser
// produces the exact error bytes a single node would.
type batchGroup struct {
	key  string
	idxs []int // original item indices, ascending
}

// planGroups resolves batch-level defaults into each item and groups items
// by placement key, preserving index order inside each group.
func planGroups(req server.BatchSolveRequest) (resolved []server.BatchSolveItem, groups []batchGroup) {
	resolved = make([]server.BatchSolveItem, len(req.Items))
	byKey := make(map[string][]int)
	var keys []string
	for i, it := range req.Items {
		r := it
		if r.Query == "" {
			r.Query = req.Query
		}
		if r.DB == "" {
			r.DB = req.DB
		}
		resolved[i] = r
		key := ""
		if q, err := cq.ParseQuery(r.Query); err == nil {
			key = shard.PlacementKey(q)
		}
		if _, ok := byKey[key]; !ok {
			keys = append(keys, key)
		}
		byKey[key] = append(byKey[key], i)
	}
	sort.Strings(keys) // deterministic group order for tests and logs
	for _, k := range keys {
		groups = append(groups, batchGroup{key: k, idxs: byKey[k]})
	}
	return resolved, groups
}

// chunks splits one group across replicas when it is large. A group up to
// GroupSplit items rides its primary alone (verdict-cache locality); a
// bigger one strides across up to len(order) chunks, chunk j starting its
// failover chain at order[j] — a homogeneous 1000-item batch then actually
// uses N workers instead of scaling 1→N by leaving N−1 idle. Striding only
// moves items between equally-correct replicas, so it never changes
// verdicts.
func (c *Coordinator) chunks(g batchGroup, nBackends int) [][]int {
	n := 1
	if len(g.idxs) > c.cfg.GroupSplit {
		n = (len(g.idxs) + c.cfg.GroupSplit - 1) / c.cfg.GroupSplit
		if n > nBackends {
			n = nBackends
		}
	}
	out := make([][]int, n)
	for pos, idx := range g.idxs {
		out[pos%n] = append(out[pos%n], idx)
	}
	return out
}

// transientItemCode reports whether an item-level error is a property of
// the serving node (worth failing the item over) rather than of the item
// itself (the final answer for that item on any replica).
func transientItemCode(code string) bool { return !permanentCode(code) }

// routeBatch fans one batch across the fleet and emits every item result
// exactly once, in completion order. emit must be safe for concurrent use.
//
// Items group by placement key so each group hits the worker whose caches
// and (in a partitioned deployment) data cover it; oversized groups split
// across replicas. Each chunk streams from its primary and fails over down
// its replica chain on transport failures, stream cuts, whole-request
// errors, and transient item errors — re-dispatching ONLY items whose
// results were never emitted. An item yielded to emit is final; failover
// never replays it, so the client-visible stream has exactly one result
// per index even when a worker dies mid-stream. Items no replica could
// answer come back with the typed unavailable error.
func (c *Coordinator) routeBatch(ctx context.Context, req server.BatchSolveRequest, emit func(server.BatchItemResult)) {
	resolved, groups := planGroups(req)
	type job struct {
		order []*Backend
		idxs  []int
	}
	var jobs []job
	for _, g := range groups {
		order := c.placement(g.key)
		for j, chunk := range c.chunks(g, len(order)) {
			// Chunk j starts its chain at order[j]; the rotation keeps every
			// chunk's failover order a suffix-rotation of the same placement.
			off := j % len(order)
			rot := make([]*Backend, 0, len(order))
			rot = append(rot, order[off:]...)
			rot = append(rot, order[:off]...)
			jobs = append(jobs, job{order: rot, idxs: chunk})
		}
	}
	done := make(chan struct{}, len(jobs))
	for _, jb := range jobs {
		go func(jb job) {
			defer func() { done <- struct{}{} }()
			c.runChunk(ctx, req, resolved, jb.idxs, jb.order, emit)
		}(jb)
	}
	for range jobs {
		<-done
	}
}

// runChunk walks one chunk down its replica chain. remaining holds the
// original indices still unanswered; each hop re-streams exactly those.
func (c *Coordinator) runChunk(ctx context.Context, req server.BatchSolveRequest, resolved []server.BatchSolveItem, idxs []int, order []*Backend, emit func(server.BatchItemResult)) {
	remaining := idxs
	for _, b := range order {
		if len(remaining) == 0 {
			return
		}
		if ctx.Err() != nil {
			break
		}
		sub := server.BatchSolveRequest{
			TimeoutMS:      req.TimeoutMS,
			Budget:         req.Budget,
			DegradeSamples: req.DegradeSamples,
			SampleSeed:     req.SampleSeed,
			Shards:         req.Shards,
			IfDBVersion:    req.IfDBVersion,
			Stream:         true,
		}
		for _, i := range remaining {
			sub.Items = append(sub.Items, resolved[i])
		}
		// Per-hop bookkeeping, indexed by sub-batch position: emitted results
		// are final, held results (transient item errors) wait for the next
		// replica, unseen results were lost with the stream.
		emitted := make(map[int]bool, len(remaining))
		held := make(map[int]bool)
		snapshot := remaining
		// Stall watchdog: hedging shields the solve path from partitioned
		// workers, but a batch hop streams from one replica — if that
		// stream yields nothing for BatchStallTimeout the hop is cancelled
		// and the chunk fails over. Progress resets the clock.
		hopCtx, cancelHop := context.WithCancel(ctx)
		stall := time.AfterFunc(c.cfg.BatchStallTimeout, cancelHop)
		err := b.client.SolveStream(hopCtx, sub, func(item server.BatchItemResult) {
			stall.Reset(c.cfg.BatchStallTimeout)
			if item.Index < 0 || item.Index >= len(snapshot) || emitted[item.Index] || held[item.Index] {
				return // defensive: a confused or duplicating worker cannot double-emit
			}
			if item.Error != nil && transientItemCode(item.Error.Code) {
				held[item.Index] = true
				return
			}
			sub := item.Index
			item.Index = snapshot[sub]
			emitted[sub] = true
			emit(item)
		})
		stall.Stop()
		stalled := hopCtx.Err() != nil && ctx.Err() == nil
		cancelHop()

		var next []int
		keep := func(includeUnseen bool) {
			for pos, orig := range snapshot {
				if emitted[pos] {
					continue
				}
				if held[pos] || includeUnseen {
					next = append(next, orig)
				}
			}
		}
		switch {
		case err == nil:
			// Clean stream: only held (transient-error) items move on.
			keep(false)
			if len(next) > 0 {
				c.failovers("item").Inc()
				c.logf("fleet: %d batch items held transient errors on %s, failing over", len(next), b.url)
			}
		case ctx.Err() != nil:
			return // caller gone; nobody is reading emit
		default:
			var eb *server.ErrorBody
			if errors.As(err, &eb) && permanentCode(eb.Code) {
				// The sub-request itself is unacceptable (e.g. policy): every
				// replica would refuse it identically, so that IS each
				// remaining item's answer.
				for pos, orig := range snapshot {
					if !emitted[pos] {
						emit(server.BatchItemResult{Index: orig, Error: eb})
					}
				}
				return
			}
			reason := "transport"
			switch {
			case stalled:
				reason = "stall"
				b.setHealth(false, "stall")
			case eb != nil:
				reason = eb.Code
			default:
				// Transport failure or mid-stream cut: stop preferring the node.
				b.setHealth(false, "transport")
			}
			c.failovers(reason).Inc()
			c.logf("fleet: batch stream from %s failed (%v), failing over %d items", b.url, err, len(snapshot))
			// Held and never-seen items go to the next replica. Emitted items
			// do NOT: they are already on the wire.
			keep(true)
		}
		remaining = next
	}
	for _, orig := range remaining {
		emit(server.BatchItemResult{Index: orig, Error: unavailableError(nil)})
	}
}
