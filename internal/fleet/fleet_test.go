package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/solver"
)

// newWorkerServer builds one real stateless worker.
func newWorkerServer(t *testing.T) *server.Server {
	t.Helper()
	return server.New(server.Config{
		Registry: obs.NewRegistry(),
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
	})
}

// newWorker boots one real stateless worker over httptest.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newWorkerServer(t).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newCoordinator builds a coordinator over the URLs with an isolated
// registry and fast, deterministic-by-orchestration timings. mod tweaks the
// config before New.
func newCoordinator(t *testing.T, urls []string, mod func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Backends:      urls,
		Registry:      obs.NewRegistry(),
		HedgeMinDelay: time.Millisecond,
		HedgeMaxDelay: time.Second,
	}
	if mod != nil {
		mod(&cfg)
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

// doCoord runs one request against the coordinator's handler.
func doCoord(t *testing.T, c *Coordinator, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	return rec
}

// scripted is a fake backend whose handler is swappable mid-test, so each
// test assigns behavior by placement position after the order is known.
type scripted struct {
	srv *httptest.Server
	fn  atomic.Value // func(http.ResponseWriter, *http.Request)
}

func newScripted(t *testing.T) *scripted {
	t.Helper()
	s := &scripted{}
	s.set(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusInternalServerError,
			&server.ErrorBody{Code: server.CodeInternal, Message: "unscripted backend"})
	})
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.fn.Load().(func(http.ResponseWriter, *http.Request))(w, r)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *scripted) set(fn func(http.ResponseWriter, *http.Request)) { s.fn.Store(fn) }

// drainBody consumes the request body. Blocking scripted handlers MUST call
// it first: net/http only watches for client disconnect (and cancels
// r.Context()) once the body has been consumed, and a handler that blocks
// with the body unread never sees the coordinator cancel the losing hedge.
func drainBody(r *http.Request) {
	_, _ = io.Copy(io.Discard, r.Body)
}

// byURL maps placement order to the scripted backends behind it.
func byURL(t *testing.T, backs []*scripted, order []*Backend) []*scripted {
	t.Helper()
	out := make([]*scripted, 0, len(order))
	for _, b := range order {
		found := false
		for _, s := range backs {
			if s.srv.URL == b.URL() {
				out = append(out, s)
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %s not among scripted servers", b.URL())
		}
	}
	return out
}

// certainVerdict is the canonical conclusive response body used by the
// scripted backends.
func certainVerdict(version *uint64) server.SolveResponse {
	return server.SolveResponse{
		Envelope: server.Envelope{DBVersion: version},
		Verdict:  solver.Verdict{Outcome: solver.OutcomeCertain, Result: solver.Result{Certain: true}},
	}
}

// solveOK scripts a backend to answer every solve immediately.
func solveOK(version *uint64) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, certainVerdict(version))
	}
}

const (
	testQuery = "R(x | y), S(y | x)"
	testDB    = "R(a | b), S(b | a)"
)

// TestPlacementDeterministicHealthAware: the same key yields the same
// order on every call; distinct keys spread over the fleet; an unhealthy
// backend drops to the tail of every order and returns on recovery.
func TestPlacementDeterministicHealthAware(t *testing.T) {
	urls := []string{"http://a.invalid", "http://b.invalid", "http://c.invalid"}
	c := newCoordinator(t, urls, nil)

	first := c.placement("R\x1fS")
	for i := 0; i < 5; i++ {
		again := c.placement("R\x1fS")
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("placement order unstable at %d: %s vs %s", j, first[j].URL(), again[j].URL())
			}
		}
	}

	primaries := map[string]bool{}
	for _, key := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		primaries[c.placement(key)[0].URL()] = true
	}
	if len(primaries) < 2 {
		t.Fatalf("8 keys all placed on one primary %v; rendezvous hashing must spread keys", primaries)
	}

	sick := first[0]
	sick.setHealth(false, "transport")
	demoted := c.placement("R\x1fS")
	if demoted[len(demoted)-1] != sick {
		t.Fatalf("unhealthy backend %s must sort to the tail, got order %v", sick.URL(), urlsOf(demoted))
	}
	sick.setHealth(true, "ok")
	if got := c.placement("R\x1fS"); got[0] != sick {
		t.Fatalf("recovered backend must regain its rendezvous slot, got %v", urlsOf(got))
	}
}

func urlsOf(bs []*Backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.URL()
	}
	return out
}

// TestSolveMatchesSingleNode is the core differential property on the happy
// path: the coordinator's verdict bytes equal a single node's for the same
// request.
func TestSolveMatchesSingleNode(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := newCoordinator(t, []string{w1.URL, w2.URL}, nil)

	req := server.SolveRequest{Query: testQuery, DB: testDB}
	rec := doCoord(t, c, "POST", "/v1/solve", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("coordinator solve = %d, body %s", rec.Code, rec.Body)
	}
	var got server.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}

	data, _ := json.Marshal(req)
	direct, err := http.Post(w1.URL+"/v1/solve", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	defer direct.Body.Close()
	var want server.SolveResponse
	if err := json.NewDecoder(direct.Body).Decode(&want); err != nil {
		t.Fatalf("decode direct: %v", err)
	}

	gv, _ := json.Marshal(got.Verdict)
	wv, _ := json.Marshal(want.Verdict)
	if !bytes.Equal(gv, wv) {
		t.Fatalf("fleet verdict %s != single-node verdict %s", gv, wv)
	}
}

// TestCompilePassThrough: the coordinator relays /v1/compile to a worker —
// a FO-class query compiles to the same program bytes a single node emits,
// and a non-FO query's unsupported error passes through verbatim with its
// classification, without burning failovers.
func TestCompilePassThrough(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := newCoordinator(t, []string{w1.URL, w2.URL}, nil)

	req := server.CompileRequest{Query: "R(x | y), S(y | z)", Dialect: "sql"}
	rec := doCoord(t, c, "POST", "/v1/compile", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("coordinator compile = %d, body %s", rec.Code, rec.Body)
	}
	var got server.CompileResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Program == "" || got.Dialect != "sql" {
		t.Fatalf("compile response missing program or dialect: %+v", got.Envelope)
	}

	data, _ := json.Marshal(req)
	direct, err := http.Post(w1.URL+"/v1/compile", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("direct compile: %v", err)
	}
	defer direct.Body.Close()
	var want server.CompileResponse
	if err := json.NewDecoder(direct.Body).Decode(&want); err != nil {
		t.Fatalf("decode direct: %v", err)
	}
	if got.Program != want.Program {
		t.Fatalf("fleet program differs from single-node program:\n%s\nvs\n%s", got.Program, want.Program)
	}

	// Non-FO: permanent 422 with the classification, zero failovers.
	rec = doCoord(t, c, "POST", "/v1/compile", server.CompileRequest{
		Query: "R(u | 'a', x), S(y | x, z), T(x | y), P(x | z)", Dialect: "sql",
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("non-FO compile = %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	var body server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if body.Code != server.CodeUnsupported {
		t.Fatalf("code = %q, want unsupported", body.Code)
	}
	if body.Class == "" {
		t.Fatal("unsupported compile error must carry the classification in class")
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: "transport"}).Value(); got != 0 {
		t.Fatalf("compile errors caused %d transport failovers, want 0", got)
	}
}

// TestPermanentErrorPassesThrough: a malformed query routes to a worker
// (key "") and the worker's error comes back verbatim with its own status —
// the coordinator neither retries it nor rewrites it.
func TestPermanentErrorPassesThrough(t *testing.T) {
	w1, w2 := newWorker(t), newWorker(t)
	c := newCoordinator(t, []string{w1.URL, w2.URL}, nil)

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: "not a query", DB: testDB})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed solve = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	var body server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Code != server.CodeMalformed {
		t.Fatalf("code = %q, want malformed", body.Code)
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: "transport"}).Value(); got != 0 {
		t.Fatalf("permanent error caused %d failovers, want 0", got)
	}
}

// TestAllReplicasDownUnavailable: with every backend unreachable the
// coordinator answers 503 unavailable — typed, transient, never a wrong or
// hanging response.
func TestAllReplicasDownUnavailable(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, func(cfg *Config) {
		cfg.HedgeDisabled = true
	})
	s1.srv.Close()
	s2.srv.Close()

	rec := doCoord(t, c, "POST", "/v1/solve", server.SolveRequest{Query: testQuery, DB: testDB})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-down solve = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	var body server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Code != server.CodeUnavailable {
		t.Fatalf("code = %q, want unavailable", body.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("unavailable response must carry Retry-After")
	}
	if got := c.reg.Counter(metricFailovers, obs.L{K: "reason", V: "transport"}).Value(); got != 2 {
		t.Fatalf("failovers{transport} = %d, want 2 (both replicas tried)", got)
	}
}

// TestProbesTrackWorkerReadiness: the health sweep demotes a worker whose
// /readyz fails (draining here; read-only is the same 503) and the
// coordinator's own /readyz follows the last healthy replica.
func TestProbesTrackWorkerReadiness(t *testing.T) {
	srv := server.New(server.Config{
		Registry: obs.NewRegistry(),
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
	})
	draining := httptest.NewServer(srv.Handler())
	defer draining.Close()
	healthy := newWorker(t)

	c := newCoordinator(t, []string{draining.URL, healthy.URL}, nil)
	c.ProbeNow(context.Background())
	if got := c.healthyCount(); got != 2 {
		t.Fatalf("healthy = %d, want 2", got)
	}

	srv.BeginDrain()
	c.ProbeNow(context.Background())
	if got := c.healthyCount(); got != 1 {
		t.Fatalf("healthy after drain = %d, want 1", got)
	}
	if rec := doCoord(t, c, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("coordinator readyz with 1 healthy replica = %d, want 200", rec.Code)
	}

	healthy.Close()
	c.ProbeNow(context.Background())
	if got := c.healthyCount(); got != 0 {
		t.Fatalf("healthy after losing all = %d, want 0", got)
	}
	rec := doCoord(t, c, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("coordinator readyz with 0 healthy = %d, want 503", rec.Code)
	}
	var st FleetStatusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	if st.Status != "unavailable" {
		t.Fatalf("status = %q, want unavailable", st.Status)
	}
	if !strings.Contains(rec.Body.String(), "backends") {
		t.Fatal("readyz body must carry the topology")
	}
}
