package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/fleet"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/wal"
)

// The differential chaos suite. For every fault schedule it boots a fresh
// 3-worker fleet behind a chaos transport, replays a fixed request set, and
// holds the coordinator to the robustness contract: each response is either
// byte-identical (verdict bytes, error codes) to what one healthy single
// node returns for the same request, or the typed unavailable error — never
// a wrong, stale, or torn answer, and never a hang.

// solveSet exercises distinct relation sets (so placement spreads over the
// fleet), a consistent-database instance, an inconsistency, a malformed
// query, and an unsupported one.
var solveSet = []server.SolveRequest{
	{Query: "R0(x | y), S0(y | x)", DB: "R0(a | b), S0(b | a)"},
	{Query: "R1(x | y), S1(y | x)", DB: "R1(a | b), S1(b | c)"},
	{Query: "R2(x | y)", DB: "R2(a | b), R2(a | c)"},
	{Query: "R3(x | y)", DB: "R3(d | e)"},
	{Query: "R4(x | y), S4(y | x)", DB: "R4(a | b), R4(a | c), S4(b | a), S4(c | a)"},
	{Query: "not a query", DB: "R0(a | b)"},
	{Query: "R5(x | y), R5(y | x)", DB: "R5(a | b)"},
}

// chaosBatch is the batch-path request: one homogeneous group big enough to
// split across replicas plus a second, smaller group.
func chaosBatch() server.BatchSolveRequest {
	return server.BatchSolveRequest{Stream: true, Items: []server.BatchSolveItem{
		{Query: "B0(x | y), C0(y | x)", DB: "B0(a | b), C0(b | a)"},
		{Query: "B0(x | y), C0(y | x)", DB: "B0(a | c), C0(c | a)"},
		{Query: "B0(x | y), C0(y | x)", DB: "B0(a | d), C0(d | b)"},
		{Query: "B0(x | y), C0(y | x)", DB: "B0(a | e), C0(e | a)"},
		{Query: "B0(x | y), C0(y | x)", DB: "B0(a | f), C0(f | a)"},
		{Query: "B0(x | y), C0(y | x)", DB: "B0(a | g), C0(g | a)"},
		{Query: "B1(x | y)", DB: "B1(a | b), B1(a | c)"},
		{Query: "B1(x | y)", DB: "B1(d | e)"},
	}}
}

// newWorkerHandler builds one real stateless worker's HTTP handler.
func newWorkerHandler(t *testing.T) http.Handler {
	t.Helper()
	return server.New(server.Config{
		Registry: obs.NewRegistry(),
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
	}).Handler()
}

// newChaosFleet boots n real workers behind a fresh chaos transport and a
// coordinator configured for fast, watchdog-protected fault recovery.
func newChaosFleet(t *testing.T, n int) (*fleet.Coordinator, *Transport, []string) {
	t.Helper()
	tr := New(nil)
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(newWorkerHandler(t))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	c := fleet.New(fleet.Config{
		Backends:          urls,
		HTTPClient:        &http.Client{Transport: tr},
		Registry:          obs.NewRegistry(),
		HedgeMinDelay:     2 * time.Millisecond,
		HedgeMaxDelay:     time.Second,
		GroupSplit:        2,
		BatchStallTimeout: 150 * time.Millisecond,
	})
	t.Cleanup(c.Close)
	return c, tr, urls
}

// do runs one JSON request against a handler.
func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// outcome is the comparison-relevant projection of one response: verdict
// bytes on success, the error code otherwise. Cached/timing fields are
// excluded — they legitimately differ between nodes; answers may not.
type outcome struct {
	status  int
	code    string
	verdict string
}

func solveOutcome(t *testing.T, rec *httptest.ResponseRecorder) outcome {
	t.Helper()
	if rec.Code == http.StatusOK {
		var resp server.SolveResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode solve response: %v (body %s)", err, rec.Body)
		}
		v, _ := json.Marshal(resp.Verdict)
		return outcome{status: rec.Code, verdict: string(v)}
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("decode error body: %v (body %s)", err, rec.Body)
	}
	return outcome{status: rec.Code, code: eb.Code}
}

// batchOutcomes decodes a streamed batch response into per-index outcomes,
// failing the test on any duplicated index — a torn stream.
func batchOutcomes(t *testing.T, rec *httptest.ResponseRecorder) map[int]outcome {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d, body %s", rec.Code, rec.Body)
	}
	out := make(map[int]outcome)
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var it server.BatchItemResult
		if err := json.Unmarshal([]byte(line), &it); err != nil {
			t.Fatalf("decode stream line %q: %v", line, err)
		}
		if _, dup := out[it.Index]; dup {
			t.Fatalf("index %d delivered twice: torn stream", it.Index)
		}
		o := outcome{status: http.StatusOK}
		if it.Error != nil {
			o.code = it.Error.Code
		} else {
			v, _ := json.Marshal(it.Verdict)
			o.verdict = string(v)
		}
		out[it.Index] = o
	}
	return out
}

// baselineOutcomes runs the request set against one healthy single node.
func baselineOutcomes(t *testing.T) ([]outcome, map[int]outcome) {
	t.Helper()
	single := newWorkerHandler(t)
	solves := make([]outcome, len(solveSet))
	for i, req := range solveSet {
		solves[i] = solveOutcome(t, do(t, single, "POST", "/v1/solve", req))
	}
	batch := batchOutcomes(t, do(t, single, "POST", "/v1/solve/batch", chaosBatch()))
	return solves, batch
}

// faultSchedule scripts one fault pattern. mid, when set, runs between the
// two halves of the solve set (kill/restart mid-run).
type faultSchedule struct {
	name   string
	arm    func(tr *Transport, hosts []string)
	mid    func(tr *Transport, hosts []string)
	outage bool // every request must be the typed unavailable error
}

var schedules = []faultSchedule{
	{
		name: "no-fault",
		arm:  func(tr *Transport, hosts []string) {},
	},
	{
		// One slow worker: hedging rescues solves routed to it, the stall
		// watchdog rescues batch chunks.
		name: "slow-worker",
		arm: func(tr *Transport, hosts []string) {
			tr.SetLatency(hosts[0], 300*time.Millisecond)
		},
	},
	{
		// Flaky network: requests vanish, but one host stays clean so every
		// failover chain terminates.
		name: "flaky-drops",
		arm: func(tr *Transport, hosts []string) {
			tr.DropNext(hosts[0], 2)
			tr.DropNext(hosts[1], 3)
		},
	},
	{
		// A full partition: requests to the host hang, they do not fail
		// fast. Hedging (solve) and the stall watchdog (batch) must bound
		// the damage.
		name: "partition-one",
		arm: func(tr *Transport, hosts []string) {
			tr.Partition(hosts[0])
		},
	},
	{
		// A worker dies, the run continues, it comes back mid-run.
		name: "kill-restart",
		arm: func(tr *Transport, hosts []string) {
			tr.Kill(hosts[1])
		},
		mid: func(tr *Transport, hosts []string) {
			tr.Restart(hosts[1])
			tr.Kill(hosts[2])
		},
	},
	{
		// Streams die mid-flight on two of three workers: failover must
		// re-dispatch only undelivered items, never replay delivered ones.
		name: "cut-streams",
		arm: func(tr *Transport, hosts []string) {
			tr.CutStreamAfter(hosts[0], 1)
			tr.CutStreamAfter(hosts[1], 1)
		},
	},
	{
		name: "total-outage",
		arm: func(tr *Transport, hosts []string) {
			for _, h := range hosts {
				tr.Kill(h)
			}
		},
		outage: true,
	},
}

// TestDifferentialUnderFaults is the chaos harness's headline theorem: under
// every fault schedule, the fleet's answers are byte-identical to a single
// healthy node's, or the typed unavailable error.
func TestDifferentialUnderFaults(t *testing.T) {
	wantSolves, wantBatch := baselineOutcomes(t)
	for _, sched := range schedules {
		sched := sched
		t.Run(sched.name, func(t *testing.T) {
			t.Parallel()
			c, tr, urls := newChaosFleet(t, 3)
			sched.arm(tr, urls)

			check := func(i int, got outcome) {
				t.Helper()
				if sched.outage {
					if got.status != http.StatusServiceUnavailable || got.code != server.CodeUnavailable {
						t.Errorf("solve %d under outage = %+v, want typed unavailable", i, got)
					}
					return
				}
				if got != wantSolves[i] {
					t.Errorf("solve %d = %+v, single node says %+v", i, got, wantSolves[i])
				}
			}
			half := len(solveSet) / 2
			for i, req := range solveSet[:half] {
				check(i, solveOutcome(t, do(t, c.Handler(), "POST", "/v1/solve", req)))
			}
			if sched.mid != nil {
				sched.mid(tr, urls)
			}
			for i, req := range solveSet[half:] {
				check(half+i, solveOutcome(t, do(t, c.Handler(), "POST", "/v1/solve", req)))
			}

			gotBatch := batchOutcomes(t, do(t, c.Handler(), "POST", "/v1/solve/batch", chaosBatch()))
			if len(gotBatch) != len(wantBatch) {
				t.Fatalf("batch delivered %d items, single node %d", len(gotBatch), len(wantBatch))
			}
			for idx, want := range wantBatch {
				got, ok := gotBatch[idx]
				if !ok {
					t.Fatalf("batch item %d missing", idx)
				}
				if sched.outage {
					if got.code != server.CodeUnavailable {
						t.Errorf("batch item %d under outage = %+v, want unavailable", idx, got)
					}
					continue
				}
				if got != want {
					t.Errorf("batch item %d = %+v, single node says %+v", idx, got, want)
				}
			}

			if sched.outage {
				// Recovery: restart the fleet and the same requests answer
				// correctly again — an outage is a state, not a scar.
				for _, h := range urls {
					tr.Restart(h)
				}
				if got := solveOutcome(t, do(t, c.Handler(), "POST", "/v1/solve", solveSet[0])); got != wantSolves[0] {
					t.Errorf("post-recovery solve = %+v, want %+v", got, wantSolves[0])
				}
			}
		})
	}
}

// newHostedWorker boots a WAL-backed worker whose hosted database holds the
// given facts, mutated version-by-version so replicas can lag each other.
func newHostedWorker(t *testing.T, states ...string) (*httptest.Server, *wal.Store) {
	t.Helper()
	st, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	prev := map[string]bool{}
	for _, state := range states {
		d, err := db.Parse(state)
		if err != nil {
			t.Fatalf("parse db %q: %v", state, err)
		}
		var ins []db.Fact
		for _, f := range d.Facts() {
			k, _ := json.Marshal(f)
			if !prev[string(k)] {
				ins = append(ins, f)
				prev[string(k)] = true
			}
		}
		if _, _, err := st.Mutate(ins, nil, -1); err != nil {
			t.Fatalf("mutate: %v", err)
		}
	}
	srv := server.New(server.Config{
		Registry: obs.NewRegistry(),
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
		Store:    st,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

// TestVersionLagFailsOverToFreshReplica: one replica lags one mutation
// behind. A request fenced to the new version must be served by the fresh
// replica — whichever replica placement tries first — and carry the fenced
// version, with the verdict matching the fresh single node byte for byte.
func TestVersionLagFailsOverToFreshReplica(t *testing.T) {
	v1 := "R9(a | b), S9(b | c)"
	v2 := "R9(a | b), S9(b | c), S9(b | a)"
	fresh, freshStore := newHostedWorker(t, v1, v2)
	lagging, _ := newHostedWorker(t, v1)

	want := freshStore.Version()
	if want != 2 {
		t.Fatalf("fresh store version = %d, want 2", want)
	}

	tr := New(nil)
	c := fleet.New(fleet.Config{
		Backends:      []string{lagging.URL, fresh.URL},
		HTTPClient:    &http.Client{Transport: tr},
		Registry:      obs.NewRegistry(),
		HedgeDisabled: true,
	})
	t.Cleanup(c.Close)

	req := server.SolveRequest{Query: "R9(x | y), S9(y | x)", IfDBVersion: &want}
	rec := do(t, c.Handler(), "POST", "/v1/solve", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fenced solve = %d, body %s", rec.Code, rec.Body)
	}
	var resp server.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.DBVersion == nil || *resp.DBVersion != want {
		t.Fatalf("served version = %v, want %d", resp.DBVersion, want)
	}

	data, _ := json.Marshal(req)
	directResp, err := http.Post(fresh.URL+"/v1/solve", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("direct solve against fresh node: %v", err)
	}
	defer directResp.Body.Close()
	var direct server.SolveResponse
	if err := json.NewDecoder(directResp.Body).Decode(&direct); err != nil {
		t.Fatalf("decode direct: %v", err)
	}
	gv, _ := json.Marshal(resp.Verdict)
	dv, _ := json.Marshal(direct.Verdict)
	if !bytes.Equal(gv, dv) {
		t.Fatalf("fenced fleet verdict %s != fresh single node %s", gv, dv)
	}

	// Fence to a version nobody has: typed unavailable, never a stale
	// verdict.
	future := want + 7
	rec = do(t, c.Handler(), "POST", "/v1/solve", server.SolveRequest{Query: "R9(x | y), S9(y | x)", IfDBVersion: &future})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("future-fenced solve = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
	var eb server.ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Code != server.CodeUnavailable {
		t.Fatalf("future-fenced code = %q (%v), want unavailable", eb.Code, err)
	}
}

// TestLyingReplicaNeverServed: a replica whose transport rewrites its
// claimed db_version (a lie the server-side fence cannot catch — the
// process believes itself) is refused by the coordinator's response
// re-check; the truthful replica serves.
func TestLyingReplicaNeverServed(t *testing.T) {
	state := "R8(a | b), S8(b | a)"
	honest, honestStore := newHostedWorker(t, state)
	liar, _ := newHostedWorker(t, state)

	want := honestStore.Version()
	tr := New(nil)
	lie := want + 5
	tr.LieVersion(liar.URL, &lie)

	c := fleet.New(fleet.Config{
		Backends:      []string{liar.URL, honest.URL},
		HTTPClient:    &http.Client{Transport: tr},
		Registry:      obs.NewRegistry(),
		HedgeDisabled: true,
	})
	t.Cleanup(c.Close)

	req := server.SolveRequest{Query: "R8(x | y), S8(y | x)", IfDBVersion: &want}
	rec := do(t, c.Handler(), "POST", "/v1/solve", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fenced solve = %d, body %s", rec.Code, rec.Body)
	}
	var resp server.SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.DBVersion == nil || *resp.DBVersion != want {
		t.Fatalf("served version = %v, want %d — a lying replica's verdict reached the client", resp.DBVersion, want)
	}

	// Both replicas lying: unavailable, never the lie.
	tr.LieVersion(honest.URL, &lie)
	rec = do(t, c.Handler(), "POST", "/v1/solve", req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-liars solve = %d, want 503 (body %s)", rec.Code, rec.Body)
	}
}
