package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer answers GET / with "ok", /v1/solve with a fixed version-7
// verdict body, and /stream with three NDJSON lines.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"verdict":{"outcome":"certain"},"db_version":7}`)
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprint(w, "{\"index\":0}\n{\"index\":1}\n{\"index\":2}\n")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func chaosClient(tr *Transport) *http.Client { return &http.Client{Transport: tr} }

func get(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	return c.Do(req)
}

func TestKillRestart(t *testing.T) {
	ts := echoServer(t)
	tr := New(nil)
	c := chaosClient(tr)

	tr.Kill(ts.URL)
	if _, err := get(t, c, ts.URL+"/"); err == nil {
		t.Fatal("request to a killed host must fail")
	}
	tr.Restart(ts.URL)
	resp, err := get(t, c, ts.URL+"/")
	if err != nil {
		t.Fatalf("request after restart: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after restart = %d", resp.StatusCode)
	}
}

func TestDropNextIsExactlyN(t *testing.T) {
	ts := echoServer(t)
	tr := New(nil)
	c := chaosClient(tr)

	tr.DropNext(ts.URL, 2)
	for i := 0; i < 2; i++ {
		if _, err := get(t, c, ts.URL+"/"); err == nil {
			t.Fatalf("drop %d: request must vanish", i)
		}
	}
	resp, err := get(t, c, ts.URL+"/")
	if err != nil {
		t.Fatalf("request 3 (drops exhausted): %v", err)
	}
	resp.Body.Close()
}

func TestPartitionHangsUntilContextEnds(t *testing.T) {
	ts := echoServer(t)
	tr := New(nil)
	c := chaosClient(tr)

	tr.Partition(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/", nil)
	start := time.Now()
	_, err := c.Do(req)
	if err == nil {
		t.Fatal("partitioned request must fail")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("partitioned request returned before its context ended")
	}
	tr.Heal(ts.URL)
	resp, err := get(t, c, ts.URL+"/")
	if err != nil {
		t.Fatalf("request after heal: %v", err)
	}
	resp.Body.Close()
}

func TestLatencyIsCancellable(t *testing.T) {
	ts := echoServer(t)
	tr := New(nil)
	c := chaosClient(tr)

	tr.SetLatency(ts.URL, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/", nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("hour-slow request must fail when its context ends")
	}
	tr.Heal(ts.URL) // Heal clears latency too
	resp, err := get(t, c, ts.URL+"/")
	if err != nil {
		t.Fatalf("request after heal: %v", err)
	}
	resp.Body.Close()
}

func TestCutStreamAfterTruncatesNDJSON(t *testing.T) {
	ts := echoServer(t)
	tr := New(nil)
	c := chaosClient(tr)

	tr.CutStreamAfter(ts.URL, 1)
	resp, err := get(t, c, ts.URL+"/stream")
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("cut stream read err = %v, want io.ErrUnexpectedEOF", err)
	}
	if got := strings.TrimSpace(string(data)); got != `{"index":0}` {
		t.Fatalf("cut stream delivered %q, want exactly the first line", got)
	}

	// Non-stream responses are untouched.
	resp2, err := get(t, c, ts.URL+"/")
	if err != nil {
		t.Fatalf("plain request: %v", err)
	}
	defer resp2.Body.Close()
	if body, err := io.ReadAll(resp2.Body); err != nil || string(body) != "ok" {
		t.Fatalf("plain body = %q, %v; the cutter must only touch NDJSON", body, err)
	}
}

func TestLieVersionRewritesSolveResponses(t *testing.T) {
	ts := echoServer(t)
	tr := New(nil)
	c := chaosClient(tr)

	lie := uint64(99)
	tr.LieVersion(ts.URL, &lie)
	resp, err := get(t, c, ts.URL+"/v1/solve")
	if err != nil {
		t.Fatalf("solve request: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		DBVersion uint64 `json:"db_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode lied body: %v", err)
	}
	if body.DBVersion != 99 {
		t.Fatalf("db_version = %d, want the scripted lie 99", body.DBVersion)
	}

	tr.LieVersion(ts.URL, nil)
	resp2, err := get(t, c, ts.URL+"/v1/solve")
	if err != nil {
		t.Fatalf("solve after disarm: %v", err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatalf("decode truthful body: %v", err)
	}
	if body.DBVersion != 7 {
		t.Fatalf("db_version after disarm = %d, want the worker's 7", body.DBVersion)
	}
}

func TestHostOf(t *testing.T) {
	for in, want := range map[string]string{
		"http://127.0.0.1:8080":        "127.0.0.1:8080",
		"http://127.0.0.1:8080/v1/...": "127.0.0.1:8080",
		"127.0.0.1:9":                  "127.0.0.1:9",
		"https://h/x":                  "h",
	} {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q, want %q", in, got, want)
		}
	}
}
