// Package chaos is the fleet's deterministic fault-injection harness: an
// http.RoundTripper that sits between the coordinator and its workers and
// executes scripted fault schedules — added latency, dropped requests,
// partitions, kill/restart, mid-stream cuts, and version lies — without
// touching a process or a socket option.
//
// Faults are injected at the transport seam rather than with real network
// damage so every schedule is reproducible: a test says "the next two
// requests to worker A vanish" and exactly those two vanish, on every run,
// under -race, in CI. The differential suite built on top
// (differential_test.go) uses it to prove the fleet's robustness contract:
// under every fault schedule, a request returns either the byte-identical
// verdict a healthy single node returns, or a typed unavailable error —
// never a wrong, stale, or torn answer.
package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// hostState is the scripted fault set for one backend host.
type hostState struct {
	down      bool // Kill: connection refused until Restart
	partition bool // Partition: requests hang until ctx deadline/cancel
	latency   time.Duration
	dropNext  int     // next N requests vanish with a transport error
	cutAfter  int     // cut streaming bodies after N lines; <0 off
	lieFactor *uint64 // rewrite db_version in 200 solve responses
}

// Transport is the injectable RoundTripper. Wire it into the coordinator
// via Config.HTTPClient (&http.Client{Transport: tr}) and script faults
// per host. The zero value is not usable; call New.
type Transport struct {
	base http.RoundTripper

	mu    sync.Mutex
	hosts map[string]*hostState
}

// New wraps base (nil means http.DefaultTransport) with no faults armed.
func New(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, hosts: make(map[string]*hostState)}
}

// hostOf extracts the host key from a backend base URL or request URL.
func hostOf(u string) string {
	u = strings.TrimPrefix(u, "http://")
	u = strings.TrimPrefix(u, "https://")
	if i := strings.IndexByte(u, '/'); i >= 0 {
		u = u[:i]
	}
	return u
}

func (t *Transport) state(host string) *hostState {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := hostOf(host)
	s, ok := t.hosts[h]
	if !ok {
		s = &hostState{cutAfter: -1}
		t.hosts[h] = s
	}
	return s
}

// Kill makes every request to the host fail immediately with a transport
// error, as a dead process does. Restart undoes it.
func (t *Transport) Kill(host string) {
	s := t.state(host)
	t.mu.Lock()
	s.down = true
	t.mu.Unlock()
}

// Restart brings a killed host back.
func (t *Transport) Restart(host string) {
	s := t.state(host)
	t.mu.Lock()
	s.down = false
	t.mu.Unlock()
}

// Partition makes requests to the host hang until their context ends — the
// network-partition failure mode, distinct from Kill's fast refusal.
// Heal undoes it.
func (t *Transport) Partition(host string) {
	s := t.state(host)
	t.mu.Lock()
	s.partition = true
	t.mu.Unlock()
}

// Heal clears a partition and any latency on the host.
func (t *Transport) Heal(host string) {
	s := t.state(host)
	t.mu.Lock()
	s.partition = false
	s.latency = 0
	t.mu.Unlock()
}

// SetLatency delays every request to the host (cancellable by context).
func (t *Transport) SetLatency(host string, d time.Duration) {
	s := t.state(host)
	t.mu.Lock()
	s.latency = d
	t.mu.Unlock()
}

// DropNext makes the next n requests to the host vanish with a transport
// error, then behaves normally — the flaky-network failure mode.
func (t *Transport) DropNext(host string, n int) {
	s := t.state(host)
	t.mu.Lock()
	s.dropNext = n
	t.mu.Unlock()
}

// CutStreamAfter truncates streaming (NDJSON) response bodies from the
// host after n lines, simulating a worker dying mid-stream. n < 0 disarms.
func (t *Transport) CutStreamAfter(host string, n int) {
	s := t.state(host)
	t.mu.Lock()
	s.cutAfter = n
	t.mu.Unlock()
}

// LieVersion rewrites the db_version of every 200 solve response from the
// host — the lying-replica failure mode the coordinator's response fence
// must catch. v == nil disarms.
func (t *Transport) LieVersion(host string, v *uint64) {
	s := t.state(host)
	t.mu.Lock()
	s.lieFactor = v
	t.mu.Unlock()
}

// RoundTrip applies the host's scripted faults around the real round trip.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	s := t.state(req.URL.Host)
	t.mu.Lock()
	down, part, lat := s.down, s.partition, s.latency
	drop := false
	if s.dropNext > 0 {
		s.dropNext--
		drop = true
	}
	cut, lie := s.cutAfter, s.lieFactor
	t.mu.Unlock()

	switch {
	case down:
		return nil, fmt.Errorf("chaos: %s is down", req.URL.Host)
	case part:
		<-req.Context().Done()
		return nil, fmt.Errorf("chaos: %s partitioned: %w", req.URL.Host, req.Context().Err())
	case drop:
		return nil, fmt.Errorf("chaos: request to %s dropped", req.URL.Host)
	}
	if lat > 0 {
		timer := time.NewTimer(lat)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, fmt.Errorf("chaos: %s slow: %w", req.URL.Host, req.Context().Err())
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if lie != nil && resp.StatusCode == http.StatusOK && strings.HasSuffix(req.URL.Path, "/v1/solve") {
		if lied, ok := lieBody(resp.Body, *lie); ok {
			resp.Body = lied
			resp.ContentLength = -1
			resp.Header.Del("Content-Length")
		}
	}
	if cut >= 0 && strings.Contains(resp.Header.Get("Content-Type"), "ndjson") {
		resp.Body = &lineCutter{r: bufio.NewReader(resp.Body), c: resp.Body, remaining: cut}
		resp.ContentLength = -1
	}
	return resp, nil
}

// lieBody rewrites db_version in a solve response body.
func lieBody(body io.ReadCloser, v uint64) (io.ReadCloser, bool) {
	data, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		return io.NopCloser(bytes.NewReader(data)), false
	}
	var m map[string]json.RawMessage
	if json.Unmarshal(data, &m) != nil {
		return io.NopCloser(bytes.NewReader(data)), false
	}
	ver, _ := json.Marshal(v)
	m["db_version"] = ver
	out, err := json.Marshal(m)
	if err != nil {
		return io.NopCloser(bytes.NewReader(data)), false
	}
	return io.NopCloser(bytes.NewReader(out)), true
}

// lineCutter yields the first remaining lines of a streaming body, then
// fails with io.ErrUnexpectedEOF — the reader-visible shape of a
// connection dying mid-stream.
type lineCutter struct {
	r         *bufio.Reader
	c         io.Closer
	remaining int
	buf       []byte
	dead      bool
}

func (lc *lineCutter) Read(p []byte) (int, error) {
	for len(lc.buf) == 0 {
		if lc.dead {
			return 0, io.ErrUnexpectedEOF
		}
		if lc.remaining <= 0 {
			lc.dead = true
			return 0, io.ErrUnexpectedEOF
		}
		line, err := lc.r.ReadBytes('\n')
		lc.buf = line
		lc.remaining--
		if err != nil {
			lc.dead = true
			if len(line) == 0 {
				return 0, io.ErrUnexpectedEOF
			}
		}
	}
	n := copy(p, lc.buf)
	lc.buf = lc.buf[n:]
	return n, nil
}

func (lc *lineCutter) Close() error { return lc.c.Close() }
