package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/cqa-go/certainty/internal/server"
)

// permanentCode reports whether a worker error is a property of the request
// itself rather than of the worker that served it. A permanent error is the
// answer — every replica would say the same — so the coordinator surfaces
// it immediately instead of burning the fleet rediscovering it. Everything
// else (shed, shutdown, internal, read-only, version_fenced, transport) is
// a property of one node and a reason to try the next.
func permanentCode(code string) bool {
	switch code {
	case server.CodeMalformed, server.CodeUnsupported, server.CodePolicy, server.CodeConflict:
		return true
	}
	return false
}

// unavailableError is the typed all-replicas-exhausted failure. It is the
// only error the coordinator originates (everything else is relayed from a
// worker), and it is transient by contract: nobody answered, so nothing
// was decided, so retrying is safe.
func unavailableError(last error) *server.ErrorBody {
	msg := "no replica could answer"
	if last != nil {
		msg += "; last failure: " + last.Error()
	}
	return &server.ErrorBody{Code: server.CodeUnavailable, Message: msg, RetryAfterMS: 1000}
}

// attemptFunc performs one request against one backend and returns the
// response, the hosted-snapshot version the response claims (nil when the
// endpoint does not report one), and an error.
type attemptFunc[T any] func(ctx context.Context, b *Backend) (T, *uint64, error)

// route runs one logical request against the fleet in placement order for
// key, with hedging (when hedge is true) and failover, and returns the
// first conclusive response.
//
// The loop maintains at most two attempts in flight: the current primary
// and, once the hedge delay has elapsed without an answer, one hedge on the
// next replica in placement order. Whichever attempt concludes first wins
// and the other is cancelled via the shared context — the loser's work is
// discarded, never merged, so a hedged request cannot produce a torn
// answer. Failures fail over to the next replica in order; a permanent
// error returns immediately (it IS the answer); exhausting the order
// returns a typed unavailable error.
//
// fence, when non-nil, is the version the caller pinned. Workers already
// enforce it server-side (412 version_fenced), but route re-checks the
// version each response claims: a worker that lies about — or a proxy that
// corrupts — its snapshot version is caught here and treated as a fenced
// failover, upholding the invariant that no verdict for an unasked-for
// snapshot version ever reaches the client.
func route[T any](ctx context.Context, c *Coordinator, key string, hedge bool, fence *uint64, call attemptFunc[T]) (T, error) {
	var zero T
	order := c.placement(key)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		resp    T
		version *uint64
		err     error
		b       *Backend
		hedged  bool
	}
	results := make(chan outcome, len(order))
	next, inflight := 0, 0
	launch := func(hedged bool) bool {
		if next >= len(order) {
			return false
		}
		b := order[next]
		next++
		inflight++
		go func() {
			resp, ver, err := call(ctx, b)
			results <- outcome{resp: resp, version: ver, err: err, b: b, hedged: hedged}
		}()
		return true
	}
	launch(false)

	var hedgeC <-chan time.Time
	if hedge && !c.cfg.HedgeDisabled && len(order) > 1 {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	hedgesLaunched, hedgesDone := 0, 0
	// settleHedge records the hedge counter once the race is decided.
	settleHedge := func(winnerHedged bool) {
		if hedgesLaunched == 0 {
			return
		}
		switch {
		case winnerHedged:
			c.mHedgeWon.Inc()
		case hedgesDone >= hedgesLaunched:
			c.mHedgeLost.Inc()
		default:
			c.mHedgeCancelled.Inc()
		}
	}

	var lastErr error
	for {
		select {
		case out := <-results:
			inflight--
			if out.err == nil {
				if fence != nil && out.version != nil && *out.version != *fence {
					// Server-side fencing should have caught this; a response
					// that claims the wrong version anyway is a lying or
					// misconfigured replica. Refuse it and fail over.
					if out.hedged {
						hedgesDone++
					}
					lastErr = &server.ErrorBody{
						Code:    server.CodeVersionFenced,
						Message: fmt.Sprintf("replica %s answered for version %d, request fenced to %d", out.b.url, *out.version, *fence),
						Version: *out.version,
					}
					c.failovers(server.CodeVersionFenced).Inc()
					c.logf("fleet: refused fenced response from %s (version %d != %d)", out.b.url, *out.version, *fence)
					if !launch(false) && inflight == 0 {
						return zero, unavailableError(lastErr)
					}
					continue
				}
				settleHedge(out.hedged)
				out.b.setHealth(true, "ok")
				return out.resp, nil
			}
			if out.hedged {
				hedgesDone++
			}
			var eb *server.ErrorBody
			if errors.As(out.err, &eb) {
				if permanentCode(eb.Code) {
					// The request is wrong, not the worker: this is the final
					// answer and hedges/failovers cannot change it.
					settleHedge(out.hedged)
					return zero, eb
				}
				lastErr = out.err
				c.failovers(eb.Code).Inc()
				c.logf("fleet: failing over from %s: %s", out.b.url, eb.Code)
			} else if ctx.Err() != nil && out.err == ctx.Err() {
				// Our own cancellation echoing back, not a backend failure.
				return zero, out.err
			} else {
				// Transport-class failure: the node is unreachable. Mark it so
				// placement stops preferring it before the next probe sweep.
				out.b.setHealth(false, "transport")
				lastErr = out.err
				c.failovers("transport").Inc()
				c.logf("fleet: failing over from %s: %v", out.b.url, out.err)
			}
			if !launch(false) && inflight == 0 {
				return zero, unavailableError(lastErr)
			}
		case <-hedgeC:
			hedgeC = nil // at most one hedge per request
			if launch(true) {
				hedgesLaunched++
				c.logf("fleet: hedging after %v", c.hedgeDelay())
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// routeSolve routes one solve. Hedged: solve latency is the fleet's
// raison d'être and the verdict is deterministic, so racing two replicas
// is always answer-safe.
func (c *Coordinator) routeSolve(ctx context.Context, key string, req server.SolveRequest) (server.SolveResponse, error) {
	start := time.Now()
	resp, err := route(ctx, c, key, true, req.IfDBVersion, func(ctx context.Context, b *Backend) (server.SolveResponse, *uint64, error) {
		r, err := b.client.Solve(ctx, req)
		if err == nil && r.DBVersion != nil {
			b.noteVersion(*r.DBVersion)
		}
		return r, r.DBVersion, err
	})
	if err == nil {
		c.latency.Observe(time.Since(start).Seconds())
		c.requests("/v1/solve", "ok").Inc()
	} else {
		c.requests("/v1/solve", "error").Inc()
	}
	return resp, err
}

// routeClassify routes one classification. Not hedged: classification is
// query-only and polynomial, microseconds on any replica, so a hedge would
// only fire on a node that failover already handles.
func (c *Coordinator) routeClassify(ctx context.Context, key, query string) (server.ClassifyResponse, error) {
	resp, err := route(ctx, c, key, false, nil, func(ctx context.Context, b *Backend) (server.ClassifyResponse, *uint64, error) {
		r, err := b.client.Classify(ctx, query)
		return r, nil, err
	})
	if err == nil {
		c.requests("/v1/classify", "ok").Inc()
	} else {
		c.requests("/v1/classify", "error").Inc()
	}
	return resp, err
}

// routeCompile routes one rewriting compilation. Like classification it is
// query-only, deterministic, and fast on any replica, so it is not hedged
// either; failover covers dead nodes.
func (c *Coordinator) routeCompile(ctx context.Context, key, query, dialect string) (server.CompileResponse, error) {
	resp, err := route(ctx, c, key, false, nil, func(ctx context.Context, b *Backend) (server.CompileResponse, *uint64, error) {
		r, err := b.client.Compile(ctx, query, dialect)
		return r, nil, err
	})
	if err == nil {
		c.requests("/v1/compile", "ok").Inc()
	} else {
		c.requests("/v1/compile", "error").Inc()
	}
	return resp, err
}
