package fleet

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/server"
)

// scrapeFleetMetrics GETs the coordinator's /metrics and returns the sample
// lines as a map from "name{labels}" to rendered value (the PR 4 contract
// style: telemetry that nobody tests silently rots).
func scrapeFleetMetrics(t *testing.T, c *Coordinator) map[string]string {
	t.Helper()
	rec := doCoord(t, c, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text exposition", ct)
	}
	samples := make(map[string]string)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		samples[line[:i]] = line[i+1:]
	}
	return samples
}

// TestFleetMetricsGolden drives one hedge win and one transport failover
// through the coordinator and locks the exact metric names, label sets, and
// values the fleet layer exposes: certd_client_hedges_total{outcome} with
// all three outcomes present (zeros included — dashboards must not see
// series pop into existence), certd_fleet_failovers_total{reason},
// certd_fleet_requests_total{path,outcome}, the latency histogram count,
// and the per-backend health gauge.
func TestFleetMetricsGolden(t *testing.T) {
	s1, s2 := newScripted(t), newScripted(t)
	c := newCoordinator(t, []string{s1.srv.URL, s2.srv.URL}, func(cfg *Config) {
		// A generous hedge delay: the failover scenario's connection-refused
		// error lands long before this, so no accidental hedge fires there.
		cfg.HedgeMinDelay = 100 * time.Millisecond
	})
	order := byURL(t, []*scripted{s1, s2}, c.placement(placementKeyOf(t, testQuery)))

	// Scenario 1: hedge win. The primary hangs; the hedge answers.
	order[0].set(func(w http.ResponseWriter, r *http.Request) {
		drainBody(r)
		<-r.Context().Done()
	})
	order[1].set(solveOK(nil))
	req := server.SolveRequest{Query: testQuery, DB: testDB}
	if rec := doCoord(t, c, "POST", "/v1/solve", req); rec.Code != http.StatusOK {
		t.Fatalf("hedge-win solve = %d, body %s", rec.Code, rec.Body)
	}

	// Scenario 2: transport failover. The primary is dead; the secondary
	// answers within the same request.
	order[0].srv.Close()
	if rec := doCoord(t, c, "POST", "/v1/solve", req); rec.Code != http.StatusOK {
		t.Fatalf("failover solve = %d, body %s", rec.Code, rec.Body)
	}

	samples := scrapeFleetMetrics(t, c)
	want := map[string]string{
		`certd_client_hedges_total{outcome="won"}`:                        "1",
		`certd_client_hedges_total{outcome="lost"}`:                       "0",
		`certd_client_hedges_total{outcome="cancelled"}`:                  "0",
		`certd_fleet_failovers_total{reason="transport"}`:                 "1",
		`certd_fleet_requests_total{outcome="ok",path="/v1/solve"}`:       "2",
		`certd_fleet_request_seconds_count`:                               "2",
		`certd_fleet_backend_healthy{backend="` + order[1].srv.URL + `"}`: "1",
		`certd_fleet_backend_healthy{backend="` + order[0].srv.URL + `"}`: "0",
	}
	for series, value := range want {
		if got, ok := samples[series]; !ok {
			t.Errorf("series %s missing from /metrics", series)
		} else if got != value {
			t.Errorf("%s = %s, want %s", series, got, value)
		}
	}
	// The hedge family has exactly the three scripted outcomes — no
	// accidental extra label values.
	var hedgeSeries []string
	for series := range samples {
		if strings.HasPrefix(series, metricHedges+"{") {
			hedgeSeries = append(hedgeSeries, series)
		}
	}
	if len(hedgeSeries) != 3 {
		t.Errorf("%s has %d series %v, want exactly won/lost/cancelled", metricHedges, len(hedgeSeries), hedgeSeries)
	}
	// Help text is registered for every fleet family.
	rec := doCoord(t, c, "GET", "/metrics", nil)
	for _, name := range []string{metricHedges, metricFailovers, metricRequests, metricSeconds, metricBackendHealthy} {
		if !strings.Contains(rec.Body.String(), "# HELP "+name+" ") {
			t.Errorf("missing HELP for %s", name)
		}
	}
}
