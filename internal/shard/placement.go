package shard

import (
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// PlacementKey returns the canonical relation-set key of q: the sorted,
// deduplicated relation names joined by a separator that cannot occur in a
// relation name. It is the fleet coordinator's placement function — the
// query-level face of the same union-find decomposition Decompose applies
// to data. CERTAINTY(q) is determined by the facts of q's relations alone
// (the decomposition invariant above), so any worker holding a snapshot of
// exactly those relations can answer q, and routing by this key sends every
// query over one relation set to the same worker: its verdict cache and
// per-relation indexes stay hot, and a replicated deployment only needs to
// ship each worker the relations its keys read.
//
// The key deliberately ignores the query's shape beyond its relation set —
// two different queries over {R, S} route identically, because they read
// the same data.
func PlacementKey(q cq.Query) string {
	seen := make(map[string]bool, len(q.Atoms))
	rels := make([]string, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			rels = append(rels, a.Rel)
		}
	}
	sort.Strings(rels)
	return strings.Join(rels, "\x1f")
}
