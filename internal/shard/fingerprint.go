package shard

import (
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Shard fingerprints are the content addresses behind delta re-solve: a
// shard's conclusive verdict is a pure function of (component query, shard
// fact set), the shard fact set is exactly the union of its blocks, and a
// block's facts are determined by its content digest. Hashing the
// component's canonical key together with the shard's sorted (block ID,
// block digest) pairs therefore identifies the sub-instance up to SHA-256
// collision — across databases, mutations, and fact insertion orders.
//
// This is what makes the solver's shard memo safe without any invalidation
// protocol: a mutation changes the touched blocks' digests, so the touched
// shards' fingerprints change and simply miss the memo, while untouched
// shards keep their fingerprints and hit. Explicit invalidation (the
// server's block-granular eviction) is memory hygiene and observability,
// never a correctness requirement.

// ShardFingerprint returns the content address of shard idx of component
// comp, computed against the parent database the decomposition was built
// from. The parent's per-block digests are maintained incrementally by the
// copy-on-write index, so after a mutation only the touched block is
// re-hashed; fingerprinting the other shards reads memoized digests.
//
// Fingerprints of shards with different block content always differ: the
// block IDs pin the key set and the digests pin each block's facts, and
// both are hashed with unambiguous length prefixes (db.HashParts). The
// canonical component key scopes the address to the query, so one memo can
// safely serve every query shape.
func (dec *Decomposition) ShardFingerprint(d *db.DB, comp, idx int) string {
	bids := dec.Blocks[comp][idx]
	parts := make([]string, 0, 1+2*len(bids))
	parts = append(parts, dec.componentKey(comp))
	for _, bid := range bids {
		parts = append(parts, bid, d.BlockDigests(dec.blockRel[bid])[bid])
	}
	return db.HashParts(parts)
}

// ComponentFingerprints returns the fingerprints of every shard of
// component comp, in shard order — the batch the solver's memo pre-pass
// looks up before fanning out.
func (dec *Decomposition) ComponentFingerprints(d *db.DB, comp int) []string {
	fps := make([]string, len(dec.Shards[comp]))
	for i := range fps {
		fps[i] = dec.ShardFingerprint(d, comp, i)
	}
	return fps
}

// componentKey memoizes the canonical key of component comp; queries equal
// up to variable renaming and atom reordering share fingerprints.
func (dec *Decomposition) componentKey(comp int) string {
	dec.fpMu.Lock()
	defer dec.fpMu.Unlock()
	if dec.compKeys == nil {
		dec.compKeys = make([]string, len(dec.Components))
	}
	if dec.compKeys[comp] == "" {
		dec.compKeys[comp] = cq.CanonicalKey(dec.Components[comp])
	}
	return dec.compKeys[comp]
}
