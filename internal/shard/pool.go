package shard

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/govern"
)

// ForEach runs fn(i) for every i in [0, n), fanning the calls out across the
// process-wide worker gate (govern.Workers). The calling goroutine always
// participates, so the call makes progress even when the gate is exhausted
// by another fan-out layer — extra goroutines are spawned only for gate
// slots actually acquired, which is what keeps nested layers (a shard join
// inside a batch, CertainACkParallel inside a shard solve) from multiplying
// goroutines past the GOMAXPROCS-derived limit.
//
// Indices are claimed from an atomic counter, so the items run in no
// particular order. When ctx is cancelled, no further indices are claimed —
// items already started are fn's responsibility (pass ctx along) — and the
// context's error is returned after all started items finish.
func ForEach(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	var next atomic.Int64
	work := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	gate := govern.Workers()
	var wg sync.WaitGroup
	for spawned := 0; spawned < n-1; spawned++ {
		if !gate.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer gate.Release()
			work()
		}()
	}
	work()
	wg.Wait()
	return ctx.Err()
}
