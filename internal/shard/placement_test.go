package shard

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
)

func mustQuery(t *testing.T, text string) cq.Query {
	t.Helper()
	q, err := cq.ParseQuery(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return q
}

// TestPlacementKey: the key is the sorted relation set — invariant under
// atom order and variable names, deduplicated across self-joins, and
// distinct for distinct relation sets.
func TestPlacementKey(t *testing.T) {
	base := PlacementKey(mustQuery(t, "R(x | y), S(y | z)"))
	if base == "" {
		t.Fatal("empty placement key")
	}
	for _, same := range []string{
		"S(a | b), R(c | a)", // reordered atoms, renamed variables
		"R(x | y), S(x | y)", // different shape, same relation set
	} {
		if got := PlacementKey(mustQuery(t, same)); got != base {
			t.Errorf("PlacementKey(%q) = %q, want %q", same, got, base)
		}
	}
	if got := PlacementKey(mustQuery(t, "R(x | y), T(y | z)")); got == base {
		t.Errorf("distinct relation sets share key %q", got)
	}
	// Self-joins deduplicate: {R} not {R, R}.
	one := PlacementKey(mustQuery(t, "R(x | y)"))
	selfJoin := PlacementKey(mustQuery(t, "R(x | y), R(y | x)"))
	if one != selfJoin {
		t.Errorf("self-join key %q differs from single-atom key %q", selfJoin, one)
	}
}
