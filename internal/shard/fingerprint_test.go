package shard

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// fuzzQuery is the decomposition target of the fingerprint fuzz: two
// components (the R–S chain and the standalone U) so fingerprints must
// separate both shards within a component and shards across components.
func fuzzQuery() cq.Query {
	return cq.MustParseQuery("R(x | y), S(y | z), U(u | v)")
}

// factsFromBytes decodes a fuzz payload into a fact list: three bytes per
// fact (relation selector, key symbol, value symbol) over a domain small
// enough that facts collide into shared blocks and blocks into shared
// co-occurrence groups.
func factsFromBytes(data []byte) []db.Fact {
	rels := []string{"R", "S", "U"}
	var facts []db.Fact
	for i := 0; i+2 < len(data); i += 3 {
		facts = append(facts, db.Fact{
			Rel:    rels[int(data[i])%len(rels)],
			KeyLen: 1,
			Args: []string{
				string(rune('a' + int(data[i+1])%5)),
				string(rune('a' + int(data[i+2])%5)),
			},
		})
	}
	return facts
}

// buildDB inserts facts in the given order (idempotently; duplicates in the
// payload are fine).
func buildDB(t testing.TB, facts []db.Fact) *db.DB {
	t.Helper()
	d := db.New()
	for _, f := range facts {
		if err := d.Add(f); err != nil {
			t.Fatalf("Add %v: %v", f, err)
		}
	}
	return d
}

// fingerprintsByBlockset maps each shard's sorted block-ID list to its
// fingerprint, failing if two distinct shards (differing block content)
// share a fingerprint.
func fingerprintsByBlockset(t testing.TB, q cq.Query, d *db.DB) map[string]string {
	t.Helper()
	dec := Decompose(q, d, 0)
	out := make(map[string]string)
	seen := make(map[string]string) // fingerprint → blockset
	for j := range dec.Components {
		for i := range dec.Shards[j] {
			key := fmt.Sprintf("c%d|%s", j, strings.Join(dec.Blocks[j][i], ","))
			fp := dec.ShardFingerprint(d, j, i)
			if prev, dup := seen[fp]; dup && prev != key {
				t.Fatalf("fingerprint collision: shards %q and %q both hash to %s", prev, key, fp)
			}
			seen[fp] = key
			out[key] = fp
		}
	}
	return out
}

// FuzzShardFingerprint fuzzes the two fingerprint invariants everything in
// delta re-solve rests on: (1) no collisions — distinct shards of one
// decomposition (distinct block content) never share a fingerprint; (2)
// insertion-order independence — rebuilding the same fact set in reversed
// and deterministically shuffled orders yields the identical
// blockset → fingerprint map, so a memo filled through one mutation history
// is valid for any other history arriving at the same content.
func FuzzShardFingerprint(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 1, 2, 3, 3})
	f.Add([]byte{0, 1, 2, 1, 2, 3, 2, 4, 0, 0, 1, 1})
	f.Add([]byte("R(a|b) S(b|c) fuzz me harder"))
	f.Add([]byte{255, 255, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0})
	q := fuzzQuery()
	f.Fuzz(func(t *testing.T, data []byte) {
		facts := factsFromBytes(data)
		if len(facts) == 0 {
			t.Skip("payload too short for a fact")
		}
		base := fingerprintsByBlockset(t, q, buildDB(t, facts))

		reversed := make([]db.Fact, len(facts))
		for i, fc := range facts {
			reversed[len(facts)-1-i] = fc
		}
		if got := fingerprintsByBlockset(t, q, buildDB(t, reversed)); !mapsEqual(got, base) {
			t.Errorf("reversed insertion order changed fingerprints:\n got %v\nwant %v", got, base)
		}

		r := rand.New(rand.NewSource(int64(len(facts)) * 7717))
		shuf := append([]db.Fact(nil), facts...)
		r.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		if got := fingerprintsByBlockset(t, q, buildDB(t, shuf)); !mapsEqual(got, base) {
			t.Errorf("shuffled insertion order changed fingerprints:\n got %v\nwant %v", got, base)
		}
	})
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestShardFingerprintContent pins the content-addressing behavior the
// memo relies on: a mutation inside a shard's blocks changes that shard's
// fingerprint and ONLY that shard's; fingerprints differ across components
// even for coincidentally equal block IDs; and the fingerprint survives a
// database rebuild (no dependence on object identity or index build
// order).
func TestShardFingerprintContent(t *testing.T) {
	q := fuzzQuery()
	text := `
		R(a | b) S(b | c)
		R(d | e) S(e | f)
		U(k | w)
	`
	d := db.MustParse(text)
	before := fingerprintsByBlockset(t, q, d)

	// Rebuild → identical fingerprints.
	if got := fingerprintsByBlockset(t, q, db.MustParse(text)); !mapsEqual(got, before) {
		t.Errorf("rebuild changed fingerprints:\n got %v\nwant %v", got, before)
	}

	// Mutate one block of R: exactly the shards whose blocksets contain
	// that block change fingerprints.
	if err := d.Add(db.Fact{Rel: "R", KeyLen: 1, Args: []string{"a", "b2"}}); err != nil {
		t.Fatal(err)
	}
	after := fingerprintsByBlockset(t, q, d)
	changedBlock := db.Fact{Rel: "R", KeyLen: 1, Args: []string{"a", "b2"}}.BlockID()
	for key, fp := range after {
		wantSame := !strings.Contains(key, changedBlock)
		prev, existed := before[key]
		switch {
		case !existed:
			if wantSame {
				t.Errorf("shard %q appeared without containing the touched block", key)
			}
		case wantSame && fp != prev:
			t.Errorf("untouched shard %q changed fingerprint: %s → %s", key, prev, fp)
		case !wantSame && fp == prev:
			t.Errorf("touched shard %q kept fingerprint %s across a block mutation", key, fp)
		}
	}
}

// TestComponentFingerprintsMatchShardFingerprint: the bulk accessor is
// exactly the per-shard one.
func TestComponentFingerprintsMatchShardFingerprint(t *testing.T) {
	q := fuzzQuery()
	d := db.MustParse(`R(a | b) S(b | c) R(d | e) S(e | f) U(k | w) U(k2 | w2)`)
	dec := Decompose(q, d, 0)
	for j := range dec.Components {
		fps := dec.ComponentFingerprints(d, j)
		if len(fps) != len(dec.Shards[j]) {
			t.Fatalf("component %d: %d fingerprints for %d shards", j, len(fps), len(dec.Shards[j]))
		}
		for i, fp := range fps {
			if got := dec.ShardFingerprint(d, j, i); got != fp {
				t.Errorf("component %d shard %d: bulk %s != single %s", j, i, fp, got)
			}
		}
	}
}
