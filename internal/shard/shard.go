// Package shard partitions a CERTAINTY(q) instance into independent
// sub-instances that can be solved in parallel and recombined exactly.
//
// The partition works at two levels. First the query splits into its
// variable-disjoint connected components q = q₁ ∧ … ∧ q_m; a repair
// satisfies q iff it satisfies every qⱼ, and satisfaction of qⱼ depends only
// on the facts of qⱼ's relations, so
//
//	certain(q, db) = ∧ⱼ certain(qⱼ, dbⱼ).
//
// Second, for one connected qⱼ, the facts of its relations split by the
// connected components of the fact co-occurrence graph: facts in the same
// block are linked (a repair picks exactly one of them), and facts sharing a
// constant at positions of the same query variable are linked (they could be
// assigned by one embedding). Every embedding of the connected qⱼ maps atoms
// that share variables to facts that agree on those variables' values, so
// the embedding's image is connected in the graph and lies inside a single
// component D₁ … D_k. A repair of dbⱼ is an independent choice of repairs of
// the components, and it satisfies qⱼ iff some component's part does, so
//
//	certain(qⱼ, dbⱼ) = ∨ᵢ certain(qⱼ, Dᵢ),
//	♯sat(qⱼ, dbⱼ)    = ∏ᵢ Nᵢ − ∏ᵢ (Nᵢ − sᵢ)      (Nᵢ repairs, sᵢ satisfying),
//	Pr(qⱼ | dbⱼ)     = 1 − ∏ᵢ (1 − Pr(qⱼ | Dᵢ))   (uniform repairs).
//
// The graph links conservatively — sharing a value at some variable's
// positions does not mean an embedding actually uses both facts — so the
// partition may be coarser than optimal, but coarser is always sound: the
// invariant that no embedding crosses a shard boundary is preserved by any
// merging of components. Blocks of relations outside q multiply the repair
// count and cancel out of certainty and probability.
//
// The package computes only the decomposition; the solver layer runs the
// per-shard decisions (internal/solver), and the counting layer applies the
// product/convolution algebra (internal/prob). Both fan out on the bounded
// worker pool in pool.go, which draws from the same process-wide
// govern.Workers gate as CertainACkParallel so nested layers never multiply
// goroutines.
package shard

import (
	"sort"
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
)

// Decomposition telemetry: decompositions performed and the data shards they
// produced. Aggregate counters; the per-shard identity rides on the solver's
// spans (one span per shard with comp/shard attributes).
var (
	decomposeTotal = obs.Default.Counter("shard_decompose_total")
	instancesTotal = obs.Default.Counter("shard_instances_total")
)

func init() {
	obs.Default.Help("shard_decompose_total", "Instance decompositions computed by the shard layer.")
	obs.Default.Help("shard_instances_total", "Independent sub-instances produced across all decompositions.")
}

// Decomposition is the exact split of one (query, database) instance:
// Components[j] is the j-th variable-disjoint query component and Shards[j]
// its independent data shards, each a union of whole blocks and closed under
// the fact co-occurrence graph. IrrelevantBlocks are the sizes of the blocks
// whose relation does not occur in the query; they multiply repair counts
// and are irrelevant to certainty.
type Decomposition struct {
	Query            cq.Query
	Components       []cq.Query
	Shards           [][]*db.DB
	IrrelevantBlocks []int

	// Blocks[j][i] is the sorted list of block IDs (Fact.BlockID) making up
	// shard i of component j. Together with the parent database's per-block
	// digests it determines the shard's content exactly, which is what
	// ShardFingerprint hashes.
	Blocks [][][]string

	// blockRel maps each relevant block ID to its relation name, so
	// fingerprinting can look the block's digest up in the parent database
	// without parsing the ID.
	blockRel map[string]string

	// compKeys memoizes the canonical key of each query component, filled
	// lazily under fpMu by ShardFingerprint.
	fpMu     sync.Mutex
	compKeys []string
}

// NumShards is the total number of data shards across all query components.
func (dec *Decomposition) NumShards() int {
	n := 0
	for _, s := range dec.Shards {
		n += len(s)
	}
	return n
}

// MaxComponentShards is the largest shard count of any single query
// component — the width of the disjunction the solver joins.
func (dec *Decomposition) MaxComponentShards() int {
	m := 0
	for _, s := range dec.Shards {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// varOcc is one occurrence of a multi-occurrence variable: relation rel,
// argument position pos.
type varOcc struct {
	v   string
	pos int
}

// Decompose partitions (q, d) as described in the package comment.
// maxShards, when positive, caps the number of data shards per query
// component: co-occurrence components are then packed into at most maxShards
// groups, largest-first onto the least-loaded group, which balances shard
// sizes for the worker pool. maxShards ≤ 0 keeps one shard per component
// (maximum parallelism). Query components containing a self-join are never
// data-sharded (two facts of one relation can co-occur in an embedding
// without sharing any value, so the co-occurrence graph argument needs
// self-join-freedom); they come back as a single shard.
func Decompose(q cq.Query, d *db.DB, maxShards int) *Decomposition {
	decomposeTotal.Inc()
	dec := &Decomposition{Query: q}

	// Query components, and each relation's component. A variable occurs in
	// exactly one component, so the per-variable buckets below can never link
	// facts across components; relations are unique per component for
	// self-join-free queries, and self-joining components opt out of data
	// sharding anyway.
	comps := q.ConnectedComponents()
	relComp := make(map[string]int)
	selfJoin := make([]bool, len(comps))
	for j, comp := range comps {
		atoms := make([]cq.Atom, len(comp))
		for i, idx := range comp {
			atoms[i] = q.Atoms[idx]
		}
		sub := cq.Query{Atoms: atoms}
		dec.Components = append(dec.Components, sub)
		selfJoin[j] = sub.HasSelfJoin()
		for _, a := range atoms {
			relComp[a.Rel] = j
		}
	}

	// Occurrence lists of multi-occurrence variables, grouped by relation: a
	// variable occurring once cannot link two facts. Occurrences in q's order
	// keep the bucket construction deterministic.
	occCount := make(map[string]int)
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				occCount[t.Value]++
			}
		}
	}
	relOccs := make(map[string][]varOcc)
	for _, a := range q.Atoms {
		for pos, t := range a.Args {
			if t.IsVar() && occCount[t.Value] > 1 {
				relOccs[a.Rel] = append(relOccs[a.Rel], varOcc{v: t.Value, pos: pos})
			}
		}
	}

	// One union-find pass over the whole database. Facts of irrelevant
	// relations contribute their block sizes and drop out; relevant facts are
	// linked within their block and through the (variable, value) buckets.
	facts := d.Facts()
	parent := make([]int, len(facts))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	irrelevantBlocks := make(map[string]int)
	blockFirst := make(map[string]int)
	blockRel := make(map[string]string)
	bucketFirst := make(map[string]int)
	factComp := make([]int, len(facts)) // query component of each fact; -1 irrelevant
	for i, f := range facts {
		j, ok := relComp[f.Rel]
		if !ok {
			factComp[i] = -1
			irrelevantBlocks[f.BlockID()]++
			continue
		}
		factComp[i] = j
		bid := f.BlockID()
		if first, seen := blockFirst[bid]; seen {
			union(i, first)
		} else {
			blockFirst[bid] = i
			blockRel[bid] = f.Rel
		}
		for _, oc := range relOccs[f.Rel] {
			if oc.pos >= len(f.Args) {
				continue // arity mismatch with the query; the fact matches no atom
			}
			key := oc.v + "\x00" + f.Args[oc.pos]
			if first, seen := bucketFirst[key]; seen {
				union(i, first)
			} else {
				bucketFirst[key] = i
			}
		}
	}

	// Collect co-occurrence components per query component, ordered by first
	// fact index so the decomposition is deterministic for a given database.
	rootIdx := make(map[int]int) // union-find root -> index into cocomps
	var cocomps []cocomp
	cocompOf := make([]int, len(facts))
	perComp := make([][]int, len(comps)) // query comp -> its cocomp indexes in first-fact order
	for i := range facts {
		if factComp[i] < 0 {
			cocompOf[i] = -1
			continue
		}
		r := find(i)
		ci, seen := rootIdx[r]
		if !seen {
			ci = len(cocomps)
			rootIdx[r] = ci
			cocomps = append(cocomps, cocomp{first: i})
			perComp[factComp[i]] = append(perComp[factComp[i]], ci)
		}
		cocomps[ci].size++
		cocompOf[i] = ci
	}

	// Pack each query component's co-occurrence components into shard groups
	// and assign every group a global index, then materialize all groups in
	// one validated pass over the facts.
	groupOf := make([]int, len(cocomps))
	totalGroups := 0
	groupsPer := make([]int, len(comps))
	for j, cis := range perComp {
		want := len(cis)
		if selfJoin[j] || (maxShards > 0 && want > maxShards) {
			want = maxShards
			if selfJoin[j] {
				want = 1
			}
		}
		if want < 1 && len(cis) > 0 {
			want = len(cis)
		}
		groupsPer[j] = assignGroups(cis, cocomps, groupOf, want, totalGroups)
		totalGroups += groupsPer[j]
	}
	parts := d.PartitionFacts(totalGroups, func(i int, _ db.Fact) int {
		if cocompOf[i] < 0 {
			return -1
		}
		return groupOf[cocompOf[i]]
	})
	// Record each shard's block-ID list: a block lies entirely within one
	// co-occurrence component (its facts are unioned pairwise above), so the
	// block → group assignment is a function of the block's first fact.
	// Sorted lists make the fingerprints insertion-order independent.
	shardBlocks := make([][]string, totalGroups)
	for bid, i := range blockFirst {
		shardBlocks[groupOf[cocompOf[i]]] = append(shardBlocks[groupOf[cocompOf[i]]], bid)
	}
	for _, bids := range shardBlocks {
		sort.Strings(bids)
	}
	dec.blockRel = blockRel

	base := 0
	dec.Shards = make([][]*db.DB, len(comps))
	dec.Blocks = make([][][]string, len(comps))
	for j := range comps {
		dec.Shards[j] = parts[base : base+groupsPer[j] : base+groupsPer[j]]
		dec.Blocks[j] = shardBlocks[base : base+groupsPer[j] : base+groupsPer[j]]
		base += groupsPer[j]
	}

	for _, n := range irrelevantBlocks {
		dec.IrrelevantBlocks = append(dec.IrrelevantBlocks, n)
	}
	sort.Ints(dec.IrrelevantBlocks)
	instancesTotal.Add(uint64(dec.NumShards()))
	return dec
}

// cocomp is one connected component of the fact co-occurrence graph: the
// index of its first fact (for deterministic ordering) and its fact count
// (for balanced packing).
type cocomp struct {
	first int
	size  int
}

// assignGroups packs the co-occurrence components cis into at most want
// groups (longest-processing-time greedy: components sorted by size
// descending, ties broken by first fact index, each placed on the currently
// lightest group). It writes base-offset group numbers into groupOf and
// returns how many groups were used.
func assignGroups(cis []int, cocomps []cocomp, groupOf []int, want, base int) int {
	if len(cis) == 0 {
		return 0
	}
	if want >= len(cis) {
		// One group per component, in first-fact order.
		for g, ci := range cis {
			groupOf[ci] = base + g
		}
		return len(cis)
	}
	order := make([]int, len(cis))
	copy(order, cis)
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cocomps[order[a]], cocomps[order[b]]
		if ca.size != cb.size {
			return ca.size > cb.size
		}
		return ca.first < cb.first
	})
	load := make([]int, want)
	for _, ci := range order {
		g := 0
		for k := 1; k < want; k++ {
			if load[k] < load[g] {
				g = k
			}
		}
		load[g] += cocomps[ci].size
		groupOf[ci] = base + g
	}
	return want
}
