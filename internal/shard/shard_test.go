package shard

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
)

// collectFacts flattens a decomposition's shards back into a fact multiset
// keyed by fact identity.
func collectFacts(t *testing.T, dec *Decomposition) map[string]int {
	t.Helper()
	seen := make(map[string]int)
	for _, shards := range dec.Shards {
		for _, s := range shards {
			for _, f := range s.Facts() {
				seen[f.ID()]++
			}
		}
	}
	return seen
}

func TestDecomposePartitionsRelevantFacts(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse(`
		R(a | b) R(a | c)
		R(a2 | b2)
		S(b | d) S(b2 | d2)
		S(lone | e)
		T(k | v) T(k | w)
	`)
	dec := Decompose(q, d, 0)

	if len(dec.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(dec.Components))
	}
	seen := collectFacts(t, dec)
	relevant := 0
	for _, f := range d.Facts() {
		if f.Rel == "T" {
			continue
		}
		relevant++
		if seen[f.ID()] != 1 {
			t.Errorf("fact %v appears %d times across shards, want exactly once", f, seen[f.ID()])
		}
	}
	if len(seen) != relevant {
		t.Errorf("shards hold %d facts, want %d", len(seen), relevant)
	}
	// The two T facts form one irrelevant block of size 2.
	if len(dec.IrrelevantBlocks) != 1 || dec.IrrelevantBlocks[0] != 2 {
		t.Errorf("IrrelevantBlocks = %v, want [2]", dec.IrrelevantBlocks)
	}
	// R(a|·)+S(b|·) chain one component; R(a2|·)+S(b2|·) another; S(lone|·) a third.
	if got := dec.NumShards(); got != 3 {
		t.Errorf("NumShards = %d, want 3", got)
	}
}

// TestDecomposeKeepsBlocksWhole: two facts of one block always land in the
// same shard — the invariant that makes the repair space of d the product of
// the shards' repair spaces.
func TestDecomposeKeepsBlocksWhole(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := gen.RandomDB(q, gen.Config{Embeddings: 8, Noise: 10, Domain: 4}, 42)
	for _, maxShards := range []int{0, 1, 2, 3, runtime.NumCPU()} {
		dec := Decompose(q, d, maxShards)
		owner := make(map[string]int)
		g := 0
		for _, shards := range dec.Shards {
			for _, s := range shards {
				for _, f := range s.Facts() {
					bid := f.BlockID()
					if prev, ok := owner[bid]; ok && prev != g {
						t.Fatalf("maxShards=%d: block %q split across shards %d and %d", maxShards, bid, prev, g)
					}
					owner[bid] = g
				}
				g++
			}
		}
	}
}

// TestDecomposeLinksJoinValues: facts that could be joined by one embedding
// (same constant at positions of a shared query variable) must share a shard.
func TestDecomposeLinksJoinValues(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse(`R(a | v) S(v | b) R(c | v2) S(v2 | d)`)
	dec := Decompose(q, d, 0)
	if got := dec.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2 (two join chains)", got)
	}
	for _, shards := range dec.Shards {
		for _, s := range shards {
			var hasR, hasS bool
			for _, f := range s.Facts() {
				hasR = hasR || f.Rel == "R"
				hasS = hasS || f.Rel == "S"
			}
			if !hasR || !hasS {
				t.Errorf("shard %v misses one side of the join", s.Facts())
			}
		}
	}
}

func TestDecomposeMaxShardsCap(t *testing.T) {
	q := cq.ACk(3)
	d := gen.CycleDB(gen.CycleConfig{K: 3, Components: 9, Width: 2})
	uncapped := Decompose(q, d, 0)
	if uncapped.MaxComponentShards() < 9 {
		t.Fatalf("uncapped shards = %d, want >= 9 (one per cycle component)", uncapped.MaxComponentShards())
	}
	for _, cap := range []int{1, 2, 4, 100} {
		dec := Decompose(q, d, cap)
		if got := dec.MaxComponentShards(); got > cap && cap < 9 {
			t.Errorf("maxShards=%d: component has %d shards", cap, got)
		}
		if total, want := countAll(dec), d.Len(); total != want {
			t.Errorf("maxShards=%d: shards hold %d facts, want %d", cap, total, want)
		}
	}
}

func countAll(dec *Decomposition) int {
	n := 0
	for _, shards := range dec.Shards {
		for _, s := range shards {
			n += s.Len()
		}
	}
	return n
}

// TestDecomposeSelfJoinSingleShard: a self-joining component opts out of
// data sharding — the co-occurrence argument needs self-join-freedom.
func TestDecomposeSelfJoinSingleShard(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), R(y | z)")
	d := db.MustParse(`R(a | b) R(c | d) R(e | f)`)
	dec := Decompose(q, d, 0)
	if len(dec.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(dec.Components))
	}
	if got := len(dec.Shards[0]); got != 1 {
		t.Errorf("self-join component has %d shards, want 1", got)
	}
	if dec.Shards[0][0].Len() != d.Len() {
		t.Errorf("single shard holds %d facts, want %d", dec.Shards[0][0].Len(), d.Len())
	}
}

func TestDecomposeMultiComponentQuery(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(u | v)")
	d := db.MustParse(`R(a | b) R(c | d) S(e | f)`)
	dec := Decompose(q, d, 0)
	if len(dec.Components) != 2 {
		t.Fatalf("components = %d, want 2", len(dec.Components))
	}
	if len(dec.Shards[0]) != 2 || len(dec.Shards[1]) != 1 {
		t.Errorf("shards per component = %d,%d, want 2,1", len(dec.Shards[0]), len(dec.Shards[1]))
	}
}

func TestForEachRunsEveryIndex(t *testing.T) {
	var hits [257]atomic.Int32
	err := ForEach(context.Background(), len(hits), func(i int) { hits[i].Add(1) })
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, hits[i].Load())
		}
	}
}

// ForEach must complete even when the worker gate has no free slots: the
// caller's goroutine works through every index inline.
func TestForEachProgressWithExhaustedGate(t *testing.T) {
	restore := govern.SetWorkerLimit(1)
	defer restore()
	gate := govern.Workers()
	if !gate.TryAcquire() {
		t.Fatal("fresh gate refused its only slot")
	}
	defer gate.Release()

	var n atomic.Int32
	if err := ForEach(context.Background(), 64, func(int) { n.Add(1) }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if n.Load() != 64 {
		t.Fatalf("ran %d items, want 64", n.Load())
	}
}

func TestForEachStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int32
	err := ForEach(ctx, 1_000_000, func(i int) {
		if n.Add(1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= 1_000_000 {
		t.Fatalf("cancellation did not stop the fan-out (ran %d items)", got)
	}
}
