// Package emit lowers certain first-order rewritings (internal/fo) into
// executable programs for external backends: ANSI SQL and stratified
// Datalog. For the FO class of CERTAINTY(q) the rewriting is a first-order
// sentence over the database vocabulary (Theorem 1 for acyclic attack
// graphs, Theorem 6 for safe queries), so it can run where the data lives —
// certd classifies and plans, the backend does the scan.
//
// Both emitters consume the same inputs — the canonicalized query and its
// rewriting sentence — and both are deterministic: the same query produces
// byte-identical programs across processes, and atom-order shuffles of the
// input query produce identical programs because callers canonicalize first
// (cq.Canonicalize sorts atoms and renames variables).
//
// The package also carries reference evaluators used purely for
// differential testing: sqleval (subpackage) interprets the emitted SQL
// subset over an in-memory snapshot, and EvalDatalog runs the emitted
// Datalog through a stratified naive bottom-up fixpoint. For every FO-class
// query, both must agree with the native solver verdict byte-for-byte.
package emit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// Dialects accepted by the emitters and the /v1/compile endpoint.
const (
	DialectSQL     = "sql"
	DialectDatalog = "datalog"
)

// Program is one emitted executable rewriting.
type Program struct {
	// Dialect is DialectSQL or DialectDatalog.
	Dialect string
	// Text is the complete, self-contained program: for SQL a single
	// statement (CTEs plus a final boolean SELECT), for Datalog a rule set
	// whose goal predicate is `certain`.
	Text string
	// SchemaNotes documents the conventions the program assumes about the
	// backend schema (table/predicate naming, column order, key prefix).
	SchemaNotes string
}

// namespacePrefix reserves the identifier space the emitters generate into:
// CTE names (cqa_adom, cqa_keys_<rel>) on the SQL side. A relation that
// starts with it could capture an emitted name, so such queries are
// rejected — mirroring how fo.RewriteSafe rejects constants in its marker
// namespace.
const namespacePrefix = "cqa_"

// relSig is one relation's signature as declared by the query.
type relSig struct {
	rel    string
	arity  int
	keyLen int
}

// querySignature extracts the relation signatures of q in sorted relation
// order, validating that every name and constant is emittable.
func querySignature(q cq.Query) ([]relSig, error) {
	if q.IsEmpty() {
		// The empty query is trivially certain; both emitters special-case
		// it, but it never reaches them from the solver (classification
		// requires at least one atom).
		return nil, nil
	}
	seen := make(map[string]relSig)
	for _, a := range q.Atoms {
		if err := checkEmittable("relation name", a.Rel); err != nil {
			return nil, err
		}
		if strings.HasPrefix(a.Rel, namespacePrefix) {
			return nil, fmt.Errorf("emit: relation %q collides with the emitter namespace %q", a.Rel, namespacePrefix)
		}
		if prev, ok := seen[a.Rel]; ok {
			// One relation, one table: atoms disagreeing on arity or key
			// length cannot share a schema declaration.
			if prev.arity != a.Arity() || prev.keyLen != a.KeyLen {
				return nil, fmt.Errorf("emit: relation %q declared with signatures (%d,%d) and (%d,%d)",
					a.Rel, prev.arity, prev.keyLen, a.Arity(), a.KeyLen)
			}
		} else {
			seen[a.Rel] = relSig{rel: a.Rel, arity: a.Arity(), keyLen: a.KeyLen}
		}
		for _, t := range a.Args {
			if t.IsConst {
				if err := checkEmittable("constant", t.Value); err != nil {
					return nil, err
				}
			}
		}
	}
	sigs := make([]relSig, 0, len(seen))
	for _, s := range seen {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].rel < sigs[j].rel })
	return sigs, nil
}

// checkEmittable rejects values no emitted program could carry faithfully.
// NUL is rejected outright, like the snapshot parsers do: no SQL dialect or
// Datalog engine round-trips it reliably inside a quoted literal.
func checkEmittable(what, v string) error {
	if v == "" {
		return fmt.Errorf("emit: empty %s", what)
	}
	if strings.ContainsRune(v, 0) {
		return fmt.Errorf("emit: %s %q contains NUL", what, v)
	}
	return nil
}

// sortedConstants returns the query's constants in sorted order; together
// with the query relations' columns they span the active domain the
// rewriting quantifies over.
func sortedConstants(q cq.Query) []string {
	set := q.Constants()
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
