package emit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/fo"
)

// Datalog lowers the certain first-order rewriting phi of the
// (canonicalized) query q into a stratified Datalog program:
//
//   - stratum 0 is the saturation preprocessing step: adom/1 collects the
//     active domain (every column of every query relation plus the query's
//     constants) and block_<r>/k collects the key blocks (one derived fact
//     per block of each relation, i.e. the distinct key prefixes);
//   - each subformula becomes one IDB predicate q<N> over its sorted free
//     variables, numbered in pre-order, so emission is deterministic;
//     universal subformulas compile by double negation through a violation
//     predicate v<N> in the stratum below;
//   - the goal predicate is `certain`, derived iff the rewriting holds.
//
// EDB facts use predicates e_<r>(c1..cn) — one argument per column, the key
// being the first k columns. Relation and variable names are sanitized into
// the Datalog identifier alphabet (lowercased; other bytes hex-escaped as
// _XX); a sanitization collision is an error, never a silent merge.
func Datalog(q cq.Query, phi fo.Formula, method string) (Program, error) {
	sigs, err := querySignature(q)
	if err != nil {
		return Program{}, err
	}
	if free := fo.FreeVars(phi); free.Len() > 0 {
		return Program{}, fmt.Errorf("emit: rewriting must be a sentence; free variables %v", free.Sorted())
	}
	g := &dlogGen{
		predBySan: make(map[string]string),
		varBySan:  make(map[string]string),
		ePred:     make(map[string]string),
		blockPred: make(map[string]string),
	}
	for _, s := range sigs {
		ep, err := g.namePred("e_", s.rel)
		if err != nil {
			return Program{}, err
		}
		g.ePred[s.rel] = ep
		bp, err := g.namePred("block_", s.rel)
		if err != nil {
			return Program{}, err
		}
		g.blockPred[s.rel] = bp
	}

	var b strings.Builder
	b.WriteString("% CERTAINTY(q): consistent first-order rewriting compiled to stratified Datalog.\n")
	fmt.Fprintf(&b, "%% query:  %s\n", q)
	fmt.Fprintf(&b, "%% method: %s\n", method)
	b.WriteString("%\n")
	b.WriteString("% Schema convention: each relation R of arity n is an EDB predicate\n")
	b.WriteString("% e_<r>(c1..cn), one argument per column, the key being the first k\n")
	b.WriteString("% columns as declared in the query signature. The program is stratified\n")
	b.WriteString("% (negation only on predicates of lower strata); the goal predicate\n")
	b.WriteString("% `certain` is derived iff the query is certain.\n")
	for _, s := range sigs {
		fmt.Fprintf(&b, "%%   %s/%d: key = first %d argument(s)\n", g.ePred[s.rel], s.arity, s.keyLen)
	}
	b.WriteString("\n% Saturation: active domain and key blocks.\n")
	for _, s := range sigs {
		args := make([]string, s.arity)
		for i := range args {
			args[i] = fmt.Sprintf("X%d", i+1)
		}
		body := fmt.Sprintf("%s(%s)", g.ePred[s.rel], strings.Join(args, ", "))
		for i := 0; i < s.arity; i++ {
			fmt.Fprintf(&b, "adom(X%d) :- %s.\n", i+1, body)
		}
		fmt.Fprintf(&b, "%s(%s) :- %s.\n", g.blockPred[s.rel], strings.Join(args[:s.keyLen], ", "), body)
	}
	for _, c := range sortedConstants(q) {
		fmt.Fprintf(&b, "adom(%s).\n", dlogString(c))
	}

	root, rootFV, err := g.lower(phi)
	if err != nil {
		return Program{}, err
	}
	if len(rootFV) != 0 {
		return Program{}, fmt.Errorf("emit: internal: root predicate %s has free variables %v", root, rootFV)
	}
	b.WriteString("\n% Rewriting, one predicate per subformula (pre-order).\n")
	for _, r := range g.rules {
		b.WriteString(r)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\ncertain :- %s.\n", root)

	return Program{Dialect: DialectDatalog, Text: b.String(), SchemaNotes: dlogSchemaNotes(g, sigs)}, nil
}

func dlogSchemaNotes(g *dlogGen, sigs []relSig) string {
	var b strings.Builder
	b.WriteString("Each relation R of arity n is an EDB predicate e_<r>(c1..cn), one argument ")
	b.WriteString("per column, the key being the first k columns as declared in the query ")
	b.WriteString("signature; names are lowercased with non-identifier bytes hex-escaped. ")
	for _, s := range sigs {
		fmt.Fprintf(&b, "%s/%d: key c1..c%d. ", g.ePred[s.rel], s.arity, s.keyLen)
	}
	b.WriteString("The program is stratified Datalog with negation and equality; the goal ")
	b.WriteString("predicate `certain` (arity 0) is derived iff the query is certain. ")
	b.WriteString("Constants are double-quoted strings with backslash escapes.")
	return b.String()
}

type dlogGen struct {
	rules     []string
	n         int
	predBySan map[string]string // sanitized predicate -> original relation
	varBySan  map[string]string // sanitized variable -> original variable
	ePred     map[string]string
	blockPred map[string]string
}

// namePred sanitizes rel into the prefix's predicate namespace, failing on
// collisions rather than silently merging two relations.
func (g *dlogGen) namePred(prefix, rel string) (string, error) {
	p := prefix + sanitizeDlog(rel)
	if prev, ok := g.predBySan[p]; ok && prev != rel {
		return "", fmt.Errorf("emit: relations %q and %q both sanitize to Datalog predicate %s", prev, rel, p)
	}
	g.predBySan[p] = rel
	return p, nil
}

func (g *dlogGen) dvar(v string) (string, error) {
	s := sanitizeDlog(v)
	if prev, ok := g.varBySan[s]; ok && prev != v {
		return "", fmt.Errorf("emit: variables %q and %q both sanitize to Datalog variable V_%s", prev, v, s)
	}
	g.varBySan[s] = v
	return "V_" + s, nil
}

func (g *dlogGen) term(t cq.Term) (string, error) {
	if t.IsConst {
		return dlogString(t.Value), nil
	}
	return g.dvar(t.Value)
}

func (g *dlogGen) head(pred string, fv []string) (string, error) {
	if len(fv) == 0 {
		return pred, nil
	}
	args := make([]string, len(fv))
	for i, v := range fv {
		dv, err := g.dvar(v)
		if err != nil {
			return "", err
		}
		args[i] = dv
	}
	return pred + "(" + strings.Join(args, ", ") + ")", nil
}

// adomGuards returns adom(V) literals for the given variables in sorted
// order; they bind variables no positive body literal binds.
func (g *dlogGen) adomGuards(vars []string) ([]string, error) {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	out := make([]string, 0, len(sorted))
	for _, v := range sorted {
		dv, err := g.dvar(v)
		if err != nil {
			return nil, err
		}
		out = append(out, "adom("+dv+")")
	}
	return out, nil
}

func (g *dlogGen) rule(head string, body []string) {
	if len(body) == 0 {
		g.rules = append(g.rules, head+".")
		return
	}
	g.rules = append(g.rules, head+" :- "+strings.Join(body, ", ")+".")
}

// atomLit renders atom a as a positive EDB literal.
func (g *dlogGen) atomLit(a cq.Atom) (string, error) {
	ep, ok := g.ePred[a.Rel]
	if !ok {
		return "", fmt.Errorf("emit: relation %s in rewriting but not in query signature", a.Rel)
	}
	args := make([]string, len(a.Args))
	for i, t := range a.Args {
		s, err := g.term(t)
		if err != nil {
			return "", err
		}
		args[i] = s
	}
	return ep + "(" + strings.Join(args, ", ") + ")", nil
}

// lower emits rules for f and returns its predicate name and sorted free
// variables (the predicate's argument order).
func (g *dlogGen) lower(f fo.Formula) (string, []string, error) {
	id := g.n
	g.n++
	pred := fmt.Sprintf("q%d", id)
	fv := fo.FreeVars(f).Sorted()
	head, err := g.head(pred, fv)
	if err != nil {
		return "", nil, err
	}
	switch v := f.(type) {
	case fo.Truth:
		if v {
			g.rule(head, nil)
		}
		// false: no rules — pred is never derivable.
	case fo.Atom:
		lit, err := g.atomLit(v.A)
		if err != nil {
			return "", nil, err
		}
		g.rule(head, []string{lit})
	case fo.Eq:
		guards, err := g.adomGuards(fv)
		if err != nil {
			return "", nil, err
		}
		l, err := g.term(v.L)
		if err != nil {
			return "", nil, err
		}
		r, err := g.term(v.R)
		if err != nil {
			return "", nil, err
		}
		g.rule(head, append(guards, l+" = "+r))
	case fo.Not:
		cp, cfv, err := g.lower(v.F)
		if err != nil {
			return "", nil, err
		}
		guards, err := g.adomGuards(fv)
		if err != nil {
			return "", nil, err
		}
		ch, err := g.head(cp, cfv)
		if err != nil {
			return "", nil, err
		}
		g.rule(head, append(guards, "not "+ch))
	case fo.And:
		var lits []string
		for _, c := range v.Fs {
			cp, cfv, err := g.lower(c)
			if err != nil {
				return "", nil, err
			}
			ch, err := g.head(cp, cfv)
			if err != nil {
				return "", nil, err
			}
			lits = append(lits, ch)
		}
		g.rule(head, lits)
	case fo.Or:
		for _, c := range v.Fs {
			cp, cfv, err := g.lower(c)
			if err != nil {
				return "", nil, err
			}
			ch, err := g.head(cp, cfv)
			if err != nil {
				return "", nil, err
			}
			guards, err := g.adomGuards(minusVars(fv, cfv))
			if err != nil {
				return "", nil, err
			}
			g.rule(head, append(guards, ch))
		}
	case fo.Implies:
		hp, hfv, err := g.lower(v.Hyp)
		if err != nil {
			return "", nil, err
		}
		cp, cfv, err := g.lower(v.Concl)
		if err != nil {
			return "", nil, err
		}
		hh, err := g.head(hp, hfv)
		if err != nil {
			return "", nil, err
		}
		guards, err := g.adomGuards(fv)
		if err != nil {
			return "", nil, err
		}
		g.rule(head, append(guards, "not "+hh))
		ch, err := g.head(cp, cfv)
		if err != nil {
			return "", nil, err
		}
		guards2, err := g.adomGuards(minusVars(fv, cfv))
		if err != nil {
			return "", nil, err
		}
		g.rule(head, append(guards2, ch))
	case fo.Exists:
		if and, ok := v.F.(fo.And); ok {
			sc := make(scope, len(fv))
			for _, w := range fv {
				sc[w] = w
			}
			if blk, ok := matchKeyBlock(v.Vars, and.Fs, sc); ok {
				if err := g.lowerBlock(head, pred, fv, blk); err != nil {
					return "", nil, err
				}
				break
			}
		}
		cp, cfv, err := g.lower(v.F)
		if err != nil {
			return "", nil, err
		}
		ch, err := g.head(cp, cfv)
		if err != nil {
			return "", nil, err
		}
		g.rule(head, []string{ch})
	case fo.Forall:
		if err := g.lowerForall(head, id, fv, v); err != nil {
			return "", nil, err
		}
	default:
		return "", nil, fmt.Errorf("emit: unknown formula node %T", f)
	}
	return pred, fv, nil
}

// lowerForall compiles ∀vars(body) by double negation: qN holds unless the
// violation predicate vN — "some assignment of vars falsifies body" — does.
// When body is a guarded implication ∀ū(R(…ū…) → concl), the violation scan
// ranges over R's facts; otherwise it ranges over adom.
func (g *dlogGen) lowerForall(head string, id int, fv []string, v fo.Forall) error {
	vio := fmt.Sprintf("v%d", id)
	vioHead, err := g.head(vio, fv)
	if err != nil {
		return err
	}
	guards, err := g.adomGuards(fv)
	if err != nil {
		return err
	}
	g.rule(head, append(guards, "not "+vioHead))

	if imp, ok := v.F.(fo.Implies); ok {
		if ga, ok := imp.Hyp.(fo.Atom); ok && atomCovers(ga.A, v.Vars) {
			cp, cfv, err := g.lower(imp.Concl)
			if err != nil {
				return err
			}
			lit, err := g.atomLit(ga.A)
			if err != nil {
				return err
			}
			gv := ga.A.Vars()
			var unguarded []string
			for _, w := range fv {
				if !gv.Has(w) {
					unguarded = append(unguarded, w)
				}
			}
			extra, err := g.adomGuards(unguarded)
			if err != nil {
				return err
			}
			ch, err := g.head(cp, cfv)
			if err != nil {
				return err
			}
			body := append([]string{lit}, extra...)
			g.rule(vioHead, append(body, "not "+ch))
			return nil
		}
	}
	cp, cfv, err := g.lower(v.F)
	if err != nil {
		return err
	}
	all := append(append([]string(nil), fv...), v.Vars...)
	allGuards, err := g.adomGuards(dedupVars(all))
	if err != nil {
		return err
	}
	ch, err := g.head(cp, cfv)
	if err != nil {
		return err
	}
	g.rule(vioHead, append(allGuards, "not "+ch))
	return nil
}

// lowerBlock compiles the matched Theorem 1 key-block step using the
// saturation predicates: a block of R whose key satisfies the constraints
// and that contains no violating fact.
func (g *dlogGen) lowerBlock(head, pred string, fv []string, blk keyBlock) error {
	bp, ok := g.blockPred[blk.guard.Rel]
	if !ok {
		return fmt.Errorf("emit: relation %s in rewriting but not in query signature", blk.guard.Rel)
	}
	k := blk.guard.KeyLen
	keyTerms := make([]string, k)
	keyVars := make(map[string]bool)
	for i := 0; i < k; i++ {
		t := blk.guard.Args[i]
		s, err := g.term(t)
		if err != nil {
			return err
		}
		keyTerms[i] = s
		if !t.IsConst {
			keyVars[t.Value] = true
		}
	}
	nonkey := make(map[string]bool)
	for j := k; j < len(blk.guard.Args); j++ {
		t := blk.guard.Args[j]
		if t.IsConst {
			return fmt.Errorf("emit: key-block guard %s has a constant nonkey position", blk.guard)
		}
		nonkey[t.Value] = true
	}
	// The violation predicate is parameterized by every variable shared
	// between the block scan and the conclusion: the guard's key variables
	// plus the conclusion's free variables that the guard does not bind.
	conclFV := fo.FreeVars(blk.concl)
	pSet := make(map[string]bool, len(keyVars))
	for v := range keyVars {
		pSet[v] = true
	}
	for v := range conclFV {
		if !nonkey[v] {
			pSet[v] = true
		}
	}
	P := make([]string, 0, len(pSet))
	for v := range pSet {
		P = append(P, v)
	}
	sort.Strings(P)

	vio := "v" + strings.TrimPrefix(pred, "q")
	vioHead, err := g.head(vio, P)
	if err != nil {
		return err
	}

	// qN rule: a block exists whose key matches, constraints hold, and no
	// fact of the block violates the conclusion.
	body := []string{bp + "(" + strings.Join(keyTerms, ", ") + ")"}
	var unguarded []string
	for _, v := range mergeVars(fv, P) {
		if !keyVars[v] {
			unguarded = append(unguarded, v)
		}
	}
	guards, err := g.adomGuards(unguarded)
	if err != nil {
		return err
	}
	body = append(body, guards...)
	for _, e := range blk.eqs {
		eq, ok := e.(fo.Eq)
		if !ok {
			return fmt.Errorf("emit: internal: key-block constraint %T is not an equality", e)
		}
		l, err := g.term(eq.L)
		if err != nil {
			return err
		}
		r, err := g.term(eq.R)
		if err != nil {
			return err
		}
		body = append(body, l+" = "+r)
	}
	body = append(body, "not "+vioHead)
	g.rule(head, body)

	// vN rule: some fact of the block falsifies the conclusion.
	cp, cfv, err := g.lower(blk.concl)
	if err != nil {
		return err
	}
	lit, err := g.atomLit(blk.guard)
	if err != nil {
		return err
	}
	gv := blk.guard.Vars()
	var vioUnguarded []string
	for _, v := range P {
		if !gv.Has(v) {
			vioUnguarded = append(vioUnguarded, v)
		}
	}
	vioGuards, err := g.adomGuards(vioUnguarded)
	if err != nil {
		return err
	}
	ch, err := g.head(cp, cfv)
	if err != nil {
		return err
	}
	vioBody := append([]string{lit}, vioGuards...)
	g.rule(vioHead, append(vioBody, "not "+ch))
	return nil
}

func minusVars(vars, remove []string) []string {
	rm := make(map[string]bool, len(remove))
	for _, v := range remove {
		rm[v] = true
	}
	var out []string
	for _, v := range vars {
		if !rm[v] {
			out = append(out, v)
		}
	}
	return out
}

func mergeVars(a, b []string) []string {
	return dedupVars(append(append([]string(nil), a...), b...))
}

func dedupVars(vars []string) []string {
	sort.Strings(vars)
	out := vars[:0]
	var prev string
	for i, v := range vars {
		if i == 0 || v != prev {
			out = append(out, v)
		}
		prev = v
	}
	return out
}

// sanitizeDlog maps a name into the Datalog identifier alphabet
// [a-z0-9_]: ASCII letters are lowercased, digits and underscores kept,
// every other byte hex-escaped as _XX. Collisions are detected by callers.
func sanitizeDlog(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

// dlogString renders a Datalog string constant: double quotes with
// backslash escapes for the quote and the backslash itself.
func dlogString(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c == '"' || c == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(c)
	}
	b.WriteByte('"')
	return b.String()
}
