package sqleval

import (
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/db"
)

func mustDB(t *testing.T, text string) *db.DB {
	t.Helper()
	d, err := db.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEvalBasics exercises the expression grammar directly: literals,
// boolean connectives, comparisons, EXISTS over base tables, and CTE
// definitions with UNION set semantics.
func TestEvalBasics(t *testing.T) {
	d := mustDB(t, "R(a | b), R(a | c), S(b | d)")
	cases := []struct {
		name   string
		script string
		want   bool
	}{
		{"true", "SELECT TRUE AS certain;", true},
		{"false", "SELECT FALSE AS certain;", false},
		{"not", "SELECT NOT FALSE AS certain;", true},
		{"and or", "SELECT (TRUE AND FALSE) OR TRUE AS certain;", true},
		{"string eq", "SELECT 'a' = 'a' AS certain;", true},
		{"string neq", "SELECT 'a' <> 'a' AS certain;", false},
		{"quote escape", "SELECT 'it''s' = 'it''s' AS certain;", true},
		{"exists hit", `SELECT EXISTS (SELECT 1 FROM "R" r WHERE r.c1 = 'a') AS certain;`, true},
		{"exists miss", `SELECT EXISTS (SELECT 1 FROM "R" r WHERE r.c1 = 'z') AS certain;`, false},
		{"exists join", `SELECT EXISTS (SELECT 1 FROM "R" r, "S" s WHERE r.c2 = s.c1) AS certain;`, true},
		{"missing table", `SELECT EXISTS (SELECT 1 FROM "T" x) AS certain;`, false},
		{"comment", "-- header\nSELECT TRUE AS certain;", true},
		{
			"cte union dedupe",
			`WITH
  vals(v) AS (SELECT c1 FROM "R" UNION SELECT 'a')
SELECT EXISTS (SELECT 1 FROM vals x WHERE x.v = 'a') AS certain;`,
			true,
		},
		{
			"cte distinct",
			`WITH
  ks(c1) AS (SELECT DISTINCT c1 FROM "R")
SELECT EXISTS (SELECT 1 FROM ks k WHERE k.c1 = 'a') AS certain;`,
			true,
		},
	}
	for _, c := range cases {
		got, err := Eval(c.script, d)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestEvalErrors: malformed scripts fail with errors, never panics, and
// semantic misuse (alias shadowing, unknown alias) is reported.
func TestEvalErrors(t *testing.T) {
	d := mustDB(t, "R(a | b)")
	for name, script := range map[string]string{
		"empty":           "",
		"no certain":      "SELECT TRUE AS sure;",
		"unclosed string": "SELECT 'a = 'a' AS certain;",
		"trailing trash":  "SELECT TRUE AS certain; SELECT",
		"bad cte":         "WITH x AS (SELECT) SELECT TRUE AS certain;",
		"unknown alias":   `SELECT EXISTS (SELECT 1 FROM "R" r WHERE q.c1 = 'a') AS certain;`,
		"alias shadowing": `SELECT EXISTS (SELECT 1 FROM "R" r WHERE EXISTS (SELECT 1 FROM "R" r WHERE r.c1 = 'a')) AS certain;`,
	} {
		if _, err := Eval(script, d); err == nil {
			t.Errorf("%s: Eval accepted %q", name, script)
		}
	}
	if _, err := Eval(`SELECT EXISTS (SELECT 1 FROM "R" r WHERE r.c9 = 'a') AS certain;`, d); err == nil || !strings.Contains(err.Error(), "c9") {
		t.Errorf("unknown column: err = %v, want a c9 mention", err)
	}
}
