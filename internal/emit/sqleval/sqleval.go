// Package sqleval interprets the SQL subset produced by internal/emit over
// an in-memory snapshot. It exists purely for differential testing: the
// emitted program's verdict must be byte-identical to the native solver's,
// and this evaluator is the referee. It is stdlib-only and deliberately
// small — WITH-clause CTEs built from UNIONs of simple projections, and a
// final boolean SELECT made of EXISTS subqueries, comparisons, and boolean
// connectives. Anything outside that subset is a parse error, which keeps
// the emitter honest about the dialect it claims to target.
package sqleval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/db"
)

// Eval parses and evaluates one emitted SQL script against snapshot d.
// The script must be a single statement: optional WITH clause, then
// SELECT <boolean expr> AS <name>. Base relations resolve to d's facts
// with columns c1..cn; CTE names shadow base relations.
func Eval(script string, d *db.DB) (result bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sqleval: panic: %v", r)
		}
	}()
	toks, err := lex(script)
	if err != nil {
		return false, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseScript()
	if err != nil {
		return false, err
	}
	e := &evaluator{d: d, ctes: make(map[string]*table)}
	for _, c := range stmt.ctes {
		t, err := e.evalCTE(c)
		if err != nil {
			return false, err
		}
		e.ctes[c.name] = t
	}
	return e.evalExpr(stmt.result, nil)
}

// ---------------------------------------------------------------- lexer --

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tPunct // ( ) , . ; = <>
)

type token struct {
	kind tokKind
	val  string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '\'':
			val, n, err := lexQuoted(src[i:], '\'')
			if err != nil {
				return nil, fmt.Errorf("sqleval: at offset %d: %v", i, err)
			}
			toks = append(toks, token{tString, val, i})
			i += n
		case c == '"':
			val, n, err := lexQuoted(src[i:], '"')
			if err != nil {
				return nil, fmt.Errorf("sqleval: at offset %d: %v", i, err)
			}
			toks = append(toks, token{tIdent, val, i})
			i += n
		case c == '<' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, token{tPunct, "<>", i})
			i += 2
		case strings.IndexByte("(),.;=", c) >= 0:
			toks = append(toks, token{tPunct, string(c), i})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tNumber, src[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("sqleval: unexpected byte %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tEOF, "", len(src)})
	return toks, nil
}

func lexQuoted(src string, q byte) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(src) {
		if src[i] == q {
			if i+1 < len(src) && src[i+1] == q {
				b.WriteByte(q)
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(src[i])
		i++
	}
	return "", 0, fmt.Errorf("unterminated %c-quoted token", q)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

// ------------------------------------------------------------------ AST --

type script struct {
	ctes   []cteDef
	result expr
}

type cteDef struct {
	name    string
	cols    []string
	selects []cteSelect
}

// cteSelect is one UNION arm of a CTE: a projection of string literals and
// columns from at most one table.
type cteSelect struct {
	distinct bool
	items    []selItem
	from     string // "" when the arm has no FROM clause
}

type selItem struct {
	lit bool
	val string // literal value or column name
}

type expr interface{}

type boolLit bool

type notExpr struct{ e expr }

type naryExpr struct {
	and   bool
	parts []expr
}

type cmpExpr struct {
	neq  bool
	l, r operand
}

type existsExpr struct {
	froms []fromItem
	where expr // nil means TRUE
}

type fromItem struct {
	table, alias string
}

type operand struct {
	lit        bool
	val        string // literal value
	alias, col string // when !lit
}

// --------------------------------------------------------------- parser --

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqleval: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// kw reports whether the next token is the given keyword (case-insensitive
// unquoted identifier) and consumes it if so.
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tIdent && strings.EqualFold(t.val, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return p.errf("expected %s, got %q", word, p.peek().val)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == tPunct && t.val == s {
		p.i++
		return nil
	}
	return p.errf("expected %q, got %q", s, t.val)
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tIdent {
		return "", p.errf("expected identifier, got %q", t.val)
	}
	p.i++
	return t.val, nil
}

func (p *parser) parseScript() (*script, error) {
	var s script
	if p.kw("WITH") {
		for {
			c, err := p.parseCTE()
			if err != nil {
				return nil, err
			}
			s.ctes = append(s.ctes, c)
			if t := p.peek(); t.kind == tPunct && t.val == "," {
				p.i++
				continue
			}
			break
		}
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// The contract with the emitter: the one output column is `certain`.
	// Anything else is not an emitted program and deserves a loud error, not
	// a silently reinterpreted verdict.
	if !strings.EqualFold(name, "certain") {
		return nil, p.errf("result column is %q, want certain", name)
	}
	if t := p.peek(); t.kind == tPunct && t.val == ";" {
		p.i++
	}
	if p.peek().kind != tEOF {
		return nil, p.errf("trailing input %q", p.peek().val)
	}
	s.result = e
	return &s, nil
}

func (p *parser) parseCTE() (cteDef, error) {
	var c cteDef
	name, err := p.ident()
	if err != nil {
		return c, err
	}
	c.name = name
	if err := p.expectPunct("("); err != nil {
		return c, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return c, err
		}
		c.cols = append(c.cols, col)
		if t := p.peek(); t.kind == tPunct && t.val == "," {
			p.i++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return c, err
	}
	if err := p.expectKw("AS"); err != nil {
		return c, err
	}
	if err := p.expectPunct("("); err != nil {
		return c, err
	}
	for {
		sel, err := p.parseCTESelect()
		if err != nil {
			return c, err
		}
		c.selects = append(c.selects, sel)
		if !p.kw("UNION") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return c, err
	}
	return c, nil
}

func (p *parser) parseCTESelect() (cteSelect, error) {
	var s cteSelect
	if err := p.expectKw("SELECT"); err != nil {
		return s, err
	}
	s.distinct = p.kw("DISTINCT")
	for {
		t := p.peek()
		switch t.kind {
		case tString:
			p.i++
			s.items = append(s.items, selItem{lit: true, val: t.val})
		case tIdent:
			p.i++
			s.items = append(s.items, selItem{val: t.val})
		default:
			return s, p.errf("expected select item, got %q", t.val)
		}
		if t := p.peek(); t.kind == tPunct && t.val == "," {
			p.i++
			continue
		}
		break
	}
	if p.kw("FROM") {
		name, err := p.ident()
		if err != nil {
			return s, err
		}
		s.from = name
	}
	return s, nil
}

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []expr{first}
	for p.kw("OR") {
		e, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return naryExpr{and: false, parts: parts}, nil
}

func (p *parser) parseAnd() (expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []expr{first}
	for p.kw("AND") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, e)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return naryExpr{and: true, parts: parts}, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.kw("NOT") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.peek()
	switch {
	case t.kind == tIdent && strings.EqualFold(t.val, "TRUE"):
		p.i++
		return boolLit(true), nil
	case t.kind == tIdent && strings.EqualFold(t.val, "FALSE"):
		p.i++
		return boolLit(false), nil
	case t.kind == tIdent && strings.EqualFold(t.val, "EXISTS"):
		p.i++
		return p.parseExists()
	case t.kind == tPunct && t.val == "(":
		p.i++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseExists() (expr, error) {
	var e existsExpr
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tNumber || t.val != "1" {
		return nil, p.errf("expected SELECT 1 in EXISTS, got %q", t.val)
	}
	p.i++
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		e.froms = append(e.froms, fromItem{table: tbl, alias: alias})
		if t := p.peek(); t.kind == tPunct && t.val == "," {
			p.i++
			continue
		}
		break
	}
	if p.kw("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		e.where = w
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *parser) parseComparison() (expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tPunct || (t.val != "=" && t.val != "<>") {
		return nil, p.errf("expected = or <>, got %q", t.val)
	}
	p.i++
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return cmpExpr{neq: t.val == "<>", l: l, r: r}, nil
}

func (p *parser) parseOperand() (operand, error) {
	t := p.peek()
	switch t.kind {
	case tString:
		p.i++
		return operand{lit: true, val: t.val}, nil
	case tIdent:
		p.i++
		if err := p.expectPunct("."); err != nil {
			return operand{}, err
		}
		col, err := p.ident()
		if err != nil {
			return operand{}, err
		}
		return operand{alias: t.val, col: col}, nil
	default:
		return operand{}, p.errf("expected operand, got %q", t.val)
	}
}

// ------------------------------------------------------------ evaluator --

type table struct {
	cols []string
	rows [][]string
}

func (t *table) colIndex(name string) (int, bool) {
	for i, c := range t.cols {
		if c == name {
			return i, true
		}
	}
	return 0, false
}

type evaluator struct {
	d    *db.DB
	ctes map[string]*table
}

// lookup resolves a table reference: CTEs shadow base relations; a base
// relation materializes d's facts with columns c1..cn.
func (e *evaluator) lookup(name string) (*table, error) {
	if t, ok := e.ctes[name]; ok {
		return t, nil
	}
	arity, _, ok := e.d.Signature(name)
	if !ok {
		// A relation the query mentions but the snapshot does not host is
		// simply empty; arity is irrelevant for an empty row set.
		return &table{}, nil
	}
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i+1)
	}
	facts := e.d.FactsOf(name)
	rows := make([][]string, 0, len(facts))
	for _, f := range facts {
		rows = append(rows, f.Args)
	}
	return &table{cols: cols, rows: rows}, nil
}

func (e *evaluator) evalCTE(c cteDef) (*table, error) {
	seen := make(map[string]bool)
	out := &table{cols: c.cols}
	for _, sel := range c.selects {
		rows, err := e.evalCTESelect(sel, len(c.cols))
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			key := rowKey(r)
			if seen[key] {
				continue
			}
			seen[key] = true
			out.rows = append(out.rows, r)
		}
	}
	sort.Slice(out.rows, func(i, j int) bool { return rowLess(out.rows[i], out.rows[j]) })
	return out, nil
}

func (e *evaluator) evalCTESelect(sel cteSelect, wantCols int) ([][]string, error) {
	if len(sel.items) != wantCols {
		return nil, fmt.Errorf("sqleval: CTE arm selects %d items, CTE declares %d columns", len(sel.items), wantCols)
	}
	if sel.from == "" {
		row := make([]string, len(sel.items))
		for i, it := range sel.items {
			if !it.lit {
				return nil, fmt.Errorf("sqleval: column %s selected without a FROM clause", it.val)
			}
			row[i] = it.val
		}
		return [][]string{row}, nil
	}
	src, err := e.lookup(sel.from)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(sel.items))
	for i, it := range sel.items {
		if it.lit {
			idx[i] = -1
			continue
		}
		j, ok := src.colIndex(it.val)
		if !ok {
			return nil, fmt.Errorf("sqleval: no column %s in table %s", it.val, sel.from)
		}
		idx[i] = j
	}
	var rows [][]string
	seen := map[string]bool{}
	for _, srcRow := range src.rows {
		row := make([]string, len(sel.items))
		for i, it := range sel.items {
			if idx[i] < 0 {
				row[i] = it.val
			} else {
				row[i] = srcRow[idx[i]]
			}
		}
		if sel.distinct {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// binding is one alias's current row during EXISTS evaluation.
type binding struct {
	t   *table
	row []string
}

type env map[string]binding

func (e *evaluator) evalExpr(x expr, en env) (bool, error) {
	switch v := x.(type) {
	case boolLit:
		return bool(v), nil
	case notExpr:
		b, err := e.evalExpr(v.e, en)
		return !b, err
	case naryExpr:
		for _, p := range v.parts {
			b, err := e.evalExpr(p, en)
			if err != nil {
				return false, err
			}
			if v.and && !b {
				return false, nil
			}
			if !v.and && b {
				return true, nil
			}
		}
		return v.and, nil
	case cmpExpr:
		l, err := e.resolveOperand(v.l, en)
		if err != nil {
			return false, err
		}
		r, err := e.resolveOperand(v.r, en)
		if err != nil {
			return false, err
		}
		if v.neq {
			return l != r, nil
		}
		return l == r, nil
	case existsExpr:
		return e.evalExists(v, en)
	default:
		return false, fmt.Errorf("sqleval: unknown expression node %T", x)
	}
}

func (e *evaluator) evalExists(x existsExpr, en env) (bool, error) {
	tables := make([]*table, len(x.froms))
	for i, f := range x.froms {
		t, err := e.lookup(f.table)
		if err != nil {
			return false, err
		}
		if _, shadowed := en[f.alias]; shadowed {
			return false, fmt.Errorf("sqleval: alias %s shadows an enclosing alias", f.alias)
		}
		tables[i] = t
	}
	inner := make(env, len(en)+len(x.froms))
	for k, v := range en {
		inner[k] = v
	}
	var loop func(i int) (bool, error)
	loop = func(i int) (bool, error) {
		if i == len(x.froms) {
			if x.where == nil {
				return true, nil
			}
			return e.evalExpr(x.where, inner)
		}
		for _, row := range tables[i].rows {
			inner[x.froms[i].alias] = binding{t: tables[i], row: row}
			ok, err := loop(i + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		delete(inner, x.froms[i].alias)
		return false, nil
	}
	return loop(0)
}

func (e *evaluator) resolveOperand(o operand, en env) (string, error) {
	if o.lit {
		return o.val, nil
	}
	b, ok := en[o.alias]
	if !ok {
		return "", fmt.Errorf("sqleval: unknown alias %s", o.alias)
	}
	i, ok := b.t.colIndex(o.col)
	if !ok {
		return "", fmt.Errorf("sqleval: no column %s for alias %s", o.col, o.alias)
	}
	return b.row[i], nil
}

func rowKey(row []string) string {
	var b strings.Builder
	for _, v := range row {
		fmt.Fprintf(&b, "%d:%s|", len(v), v)
	}
	return b.String()
}

func rowLess(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
