package emit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/fo"
)

// SQL lowers the certain first-order rewriting phi of the (canonicalized)
// query q into one self-contained ANSI SQL statement:
//
//   - cqa_adom(v) is a CTE materializing the active domain: every column of
//     every query relation, plus the query's constants;
//   - cqa_keys_<R>(c1..ck) is a CTE per relation whose key-block structure
//     the rewriting inspects: the distinct key values, i.e. one row per
//     block of R;
//   - the final SELECT returns one row with one boolean column `certain`.
//
// The schema convention (also in Program.SchemaNotes): each relation R of
// arity n is a table "R" with text columns c1..cn, the primary key being
// the first KeyLen columns as declared in the query. String literals use
// ANSI quoting (single quotes doubled, backslash literal), identifiers
// double quotes.
//
// The lowering is guarded wherever the rewriting's shape allows: the
// Theorem 1 step ∃w̄(key-pattern ∧ ∃ū R(w̄,ū) ∧ ∀ū(R(w̄,ū) → …)) becomes a
// scan of cqa_keys_R with a correlated NOT EXISTS over the block's facts,
// and guarded quantifiers (∃x̄ R(…x̄…), ∀ū(R(…ū…) → …)) become plain
// relation scans. Only quantifiers whose body does not syntactically guard
// the variables — the Theorem 6 R3 common-key-variable reopening — fall
// back to ranging over cqa_adom; that is exact because every witness of
// such a variable must appear in a guard atom's key.
func SQL(q cq.Query, phi fo.Formula, method string) (Program, error) {
	sigs, err := querySignature(q)
	if err != nil {
		return Program{}, err
	}
	if free := fo.FreeVars(phi); free.Len() > 0 {
		return Program{}, fmt.Errorf("emit: rewriting must be a sentence; free variables %v", free.Sorted())
	}
	r := &sqlRenderer{usedKeys: make(map[string]relSig)}
	expr, err := r.render(phi, nil)
	if err != nil {
		return Program{}, err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "-- CERTAINTY(q): consistent first-order rewriting compiled to SQL.\n")
	fmt.Fprintf(&b, "-- query:  %s\n", q)
	fmt.Fprintf(&b, "-- method: %s\n", method)
	b.WriteString("--\n")
	b.WriteString("-- Schema convention: each relation R of arity n is a table \"R\" with text\n")
	b.WriteString("-- columns c1..cn; the primary key is the first k columns as declared in\n")
	b.WriteString("-- the query signature. The statement returns one row with one boolean\n")
	b.WriteString("-- column `certain`: TRUE iff the query is true in every repair.\n")
	for _, s := range sigs {
		fmt.Fprintf(&b, "--   %s: arity %d, key (c1..c%d)\n", sqlIdent(s.rel), s.arity, s.keyLen)
	}
	b.WriteString("WITH\n")
	b.WriteString("  cqa_adom(v) AS (\n")
	var selects []string
	for _, s := range sigs {
		for i := 1; i <= s.arity; i++ {
			selects = append(selects, fmt.Sprintf("SELECT c%d FROM %s", i, sqlIdent(s.rel)))
		}
	}
	for _, c := range sortedConstants(q) {
		selects = append(selects, "SELECT "+sqlString(c))
	}
	if len(selects) == 0 {
		// Unreachable from the solver (queries have at least one atom), but
		// keep the statement well-formed.
		selects = append(selects, "SELECT 'cqa_empty' FROM "+sqlIdent("cqa_nonexistent"))
	}
	b.WriteString("    " + strings.Join(selects, "\n    UNION ") + "\n")
	b.WriteString("  )")
	keyRels := make([]string, 0, len(r.usedKeys))
	for rel := range r.usedKeys {
		keyRels = append(keyRels, rel)
	}
	sort.Strings(keyRels)
	for _, rel := range keyRels {
		s := r.usedKeys[rel]
		cols := make([]string, s.keyLen)
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i+1)
		}
		fmt.Fprintf(&b, ",\n  %s(%s) AS (\n    SELECT DISTINCT %s FROM %s\n  )",
			keysCTE(rel), strings.Join(cols, ", "), strings.Join(cols, ", "), sqlIdent(rel))
	}
	b.WriteString("\nSELECT\n  ")
	b.WriteString(expr)
	b.WriteString("\nAS certain;\n")

	return Program{Dialect: DialectSQL, Text: b.String(), SchemaNotes: sqlSchemaNotes(sigs)}, nil
}

func sqlSchemaNotes(sigs []relSig) string {
	var b strings.Builder
	b.WriteString("Each relation R of arity n is a table \"R\" with text columns c1..cn; ")
	b.WriteString("the primary key is the first k columns as declared in the query signature. ")
	for _, s := range sigs {
		fmt.Fprintf(&b, "%s: arity %d, key c1..c%d. ", sqlIdent(s.rel), s.arity, s.keyLen)
	}
	b.WriteString("The statement is one self-contained SELECT (CTEs cqa_adom and cqa_keys_* ")
	b.WriteString("are defined inline) returning a single row with a single boolean column ")
	b.WriteString("`certain`. String literals use ANSI quoting: single quotes doubled, ")
	b.WriteString("backslashes literal (on MySQL, enable NO_BACKSLASH_ESCAPES).")
	return b.String()
}

// scope maps in-scope formula variables to the SQL operand carrying their
// value ("f3.c2", "b1.c1", "a4.v").
type scope map[string]string

func (sc scope) clone() scope {
	out := make(scope, len(sc)+2)
	for k, v := range sc {
		out[k] = v
	}
	return out
}

type sqlRenderer struct {
	n        int
	usedKeys map[string]relSig
}

func (r *sqlRenderer) alias(prefix string) string {
	r.n++
	return fmt.Sprintf("%s%d", prefix, r.n)
}

func (r *sqlRenderer) render(f fo.Formula, sc scope) (string, error) {
	switch g := f.(type) {
	case fo.Truth:
		if g {
			return "TRUE", nil
		}
		return "FALSE", nil
	case fo.Atom:
		alias := r.alias("f")
		conds, _, err := r.scanConds(g.A, alias, nil, sc)
		if err != nil {
			return "", err
		}
		where := ""
		if len(conds) > 0 {
			where = " WHERE " + strings.Join(conds, " AND ")
		}
		return fmt.Sprintf("EXISTS (SELECT 1 FROM %s %s%s)", sqlIdent(g.A.Rel), alias, where), nil
	case fo.Eq:
		l, err := r.operand(g.L, sc)
		if err != nil {
			return "", err
		}
		rr, err := r.operand(g.R, sc)
		if err != nil {
			return "", err
		}
		return l + " = " + rr, nil
	case fo.Not:
		inner, err := r.render(g.F, sc)
		if err != nil {
			return "", err
		}
		return "NOT (" + inner + ")", nil
	case fo.And:
		return r.renderJoin(g.Fs, " AND ", sc)
	case fo.Or:
		return r.renderJoin(g.Fs, " OR ", sc)
	case fo.Implies:
		hyp, err := r.render(g.Hyp, sc)
		if err != nil {
			return "", err
		}
		concl, err := r.render(g.Concl, sc)
		if err != nil {
			return "", err
		}
		return "(NOT (" + hyp + ") OR (" + concl + "))", nil
	case fo.Exists:
		return r.renderExists(g.Vars, g.F, sc)
	case fo.Forall:
		return r.renderForall(g.Vars, g.F, sc)
	default:
		return "", fmt.Errorf("emit: unknown formula node %T", f)
	}
}

func (r *sqlRenderer) renderJoin(fs []fo.Formula, sep string, sc scope) (string, error) {
	if len(fs) == 0 {
		if sep == " AND " {
			return "TRUE", nil
		}
		return "FALSE", nil
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		s, err := r.render(f, sc)
		if err != nil {
			return "", err
		}
		parts[i] = "(" + s + ")"
	}
	return strings.Join(parts, sep), nil
}

// renderExists lowers ∃vars(body). Three shapes, most structured first:
// guarded atom (plain relation scan), the Theorem 1 key-block step (scan of
// cqa_keys_<R> with a correlated block check), and the generic fallback
// ranging over cqa_adom.
func (r *sqlRenderer) renderExists(vars []string, body fo.Formula, sc scope) (string, error) {
	if g, ok := body.(fo.Atom); ok && atomCovers(g.A, vars) {
		alias := r.alias("f")
		conds, _, err := r.scanConds(g.A, alias, vars, sc)
		if err == nil {
			where := ""
			if len(conds) > 0 {
				where = " WHERE " + strings.Join(conds, " AND ")
			}
			return fmt.Sprintf("EXISTS (SELECT 1 FROM %s %s%s)", sqlIdent(g.A.Rel), alias, where), nil
		}
	}
	if and, ok := body.(fo.And); ok {
		if blk, ok := matchKeyBlock(vars, and.Fs, sc); ok {
			return r.renderBlock(vars, blk, sc)
		}
	}
	// Generic: range over the active domain. Exact for the shapes the
	// rewriters produce (every witness appears in a guard atom's key).
	sc2 := sc.clone()
	froms := make([]string, len(vars))
	for i, v := range vars {
		a := r.alias("a")
		froms[i] = "cqa_adom " + a
		sc2[v] = a + ".v"
	}
	inner, err := r.render(body, sc2)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("EXISTS (SELECT 1 FROM %s WHERE %s)", strings.Join(froms, ", "), inner), nil
}

// renderForall lowers ∀vars(body). A guarded universal
// ∀ū(R(…ū…) → concl) scans R directly — no fact matching the pattern may
// violate concl — which both avoids the adom product and is exact without
// any domain argument. The generic fallback double-negates over cqa_adom.
func (r *sqlRenderer) renderForall(vars []string, body fo.Formula, sc scope) (string, error) {
	if imp, ok := body.(fo.Implies); ok {
		if g, ok := imp.Hyp.(fo.Atom); ok && atomCovers(g.A, vars) {
			alias := r.alias("f")
			conds, sc2, err := r.scanConds(g.A, alias, vars, sc)
			if err == nil {
				concl, err := r.render(imp.Concl, sc2)
				if err != nil {
					return "", err
				}
				conds = append(conds, "NOT ("+concl+")")
				return fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s %s WHERE %s)",
					sqlIdent(g.A.Rel), alias, strings.Join(conds, " AND ")), nil
			}
		}
	}
	sc2 := sc.clone()
	froms := make([]string, len(vars))
	for i, v := range vars {
		a := r.alias("a")
		froms[i] = "cqa_adom " + a
		sc2[v] = a + ".v"
	}
	inner, err := r.render(body, sc2)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s WHERE NOT (%s))", strings.Join(froms, ", "), inner), nil
}

// keyBlock is the matched Theorem 1 step shape
// ∃vars( eqs ∧ ∃ū guard ∧ ∀ū(guard → concl) ) with ū = guard's nonkey
// variables and vars ⊆ guard's key variables.
type keyBlock struct {
	guard cq.Atom
	eqs   []fo.Formula
	concl fo.Formula
}

// matchKeyBlock recognizes the key-block step inside ∃vars(∧fs): exactly
// one guard pair — the block-nonempty witness and the every-fact-matches
// universal over the same guard atom — with every other conjunct an
// equality constraint, every quantified variable bound by a guard key
// position, and every guard key position a constant, a quantified variable,
// or an outer-scope variable.
func matchKeyBlock(vars []string, fs []fo.Formula, sc scope) (keyBlock, bool) {
	var blk keyBlock
	found := false
	pairIdx := [2]int{-1, -1}
	for j, f := range fs {
		var nv []string
		var imp fo.Implies
		switch g := f.(type) {
		case fo.Forall:
			i, ok := g.F.(fo.Implies)
			if !ok {
				continue
			}
			nv, imp = g.Vars, i
		case fo.Implies:
			nv, imp = nil, g
		default:
			continue
		}
		guard, ok := imp.Hyp.(fo.Atom)
		if !ok || !nonkeyMatches(guard.A, nv) {
			continue
		}
		// Find the existence partner for this guard.
		for i, f2 := range fs {
			if i == j {
				continue
			}
			var partner fo.Formula
			switch g2 := f2.(type) {
			case fo.Exists:
				if sameVars(g2.Vars, nv) {
					partner = g2.F
				}
			case fo.Atom:
				if len(nv) == 0 {
					partner = g2
				}
			}
			if partner == nil {
				continue
			}
			pg, ok := partner.(fo.Atom)
			if !ok || pg.String() != guard.String() {
				continue
			}
			if found {
				return keyBlock{}, false // ambiguous: more than one pair
			}
			found = true
			pairIdx = [2]int{i, j}
			blk.guard = guard.A
			blk.concl = imp.Concl
		}
	}
	if !found {
		return keyBlock{}, false
	}
	for i, f := range fs {
		if i == pairIdx[0] || i == pairIdx[1] {
			continue
		}
		if _, ok := f.(fo.Eq); !ok {
			return keyBlock{}, false
		}
		blk.eqs = append(blk.eqs, f)
	}
	// Every quantified variable must be a key position of the guard, and
	// every key position must be resolvable (constant, quantified here, or
	// bound in the enclosing scope).
	keyVars := make(map[string]bool, blk.guard.KeyLen)
	for i := 0; i < blk.guard.KeyLen; i++ {
		t := blk.guard.Args[i]
		if t.IsConst {
			continue
		}
		keyVars[t.Value] = true
		if !containsVar(vars, t.Value) {
			if _, bound := sc[t.Value]; !bound {
				return keyBlock{}, false
			}
		}
	}
	for _, v := range vars {
		if !keyVars[v] {
			return keyBlock{}, false
		}
	}
	return blk, true
}

// renderBlock emits the matched key-block step: a scan of cqa_keys_<R>
// (one row per block) whose key satisfies the constraints and whose block
// contains no fact violating the conclusion.
func (r *sqlRenderer) renderBlock(vars []string, blk keyBlock, sc scope) (string, error) {
	bAlias := r.alias("b")
	sc2 := sc.clone()
	var conds []string
	for i := 0; i < blk.guard.KeyLen; i++ {
		t := blk.guard.Args[i]
		col := fmt.Sprintf("%s.c%d", bAlias, i+1)
		switch {
		case t.IsConst:
			conds = append(conds, col+" = "+sqlString(t.Value))
		default:
			if op, bound := sc2[t.Value]; bound {
				conds = append(conds, col+" = "+op)
			} else {
				sc2[t.Value] = col
			}
		}
	}
	for _, e := range blk.eqs {
		s, err := r.render(e, sc2)
		if err != nil {
			return "", err
		}
		conds = append(conds, s)
	}
	fAlias := r.alias("f")
	var factConds []string
	for i := 0; i < blk.guard.KeyLen; i++ {
		factConds = append(factConds, fmt.Sprintf("%s.c%d = %s.c%d", fAlias, i+1, bAlias, i+1))
	}
	sc3 := sc2.clone()
	for j := blk.guard.KeyLen; j < len(blk.guard.Args); j++ {
		t := blk.guard.Args[j]
		if t.IsConst {
			return "", fmt.Errorf("emit: key-block guard %s has a constant nonkey position", blk.guard)
		}
		sc3[t.Value] = fmt.Sprintf("%s.c%d", fAlias, j+1)
	}
	inner, err := r.render(blk.concl, sc3)
	if err != nil {
		return "", err
	}
	r.usedKeys[blk.guard.Rel] = relSig{rel: blk.guard.Rel, arity: blk.guard.Arity(), keyLen: blk.guard.KeyLen}
	factConds = append(factConds, "NOT ("+inner+")")
	conds = append(conds, fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s %s WHERE %s)",
		sqlIdent(blk.guard.Rel), fAlias, strings.Join(factConds, " AND ")))
	return fmt.Sprintf("EXISTS (SELECT 1 FROM %s %s WHERE %s)",
		keysCTE(blk.guard.Rel), bAlias, strings.Join(conds, " AND ")), nil
}

// scanConds builds the WHERE conditions for scanning atom a under alias,
// binding the variables in bind to their first column of occurrence. The
// returned scope extends sc with those bindings. Fails if a variable
// (quantified or not) cannot be resolved — callers treat that as "not
// guarded" and fall back.
func (r *sqlRenderer) scanConds(a cq.Atom, alias string, bind []string, sc scope) ([]string, scope, error) {
	sc2 := sc.clone()
	bindSet := make(map[string]bool, len(bind))
	for _, v := range bind {
		bindSet[v] = true
	}
	var conds []string
	for i, t := range a.Args {
		col := fmt.Sprintf("%s.c%d", alias, i+1)
		if t.IsConst {
			conds = append(conds, col+" = "+sqlString(t.Value))
			continue
		}
		if op, bound := sc2[t.Value]; bound {
			conds = append(conds, col+" = "+op)
			continue
		}
		if bindSet[t.Value] {
			sc2[t.Value] = col
			continue
		}
		return nil, nil, fmt.Errorf("emit: unbound variable %s in atom %s", t.Value, a)
	}
	for _, v := range bind {
		if _, ok := sc2[v]; !ok {
			return nil, nil, fmt.Errorf("emit: quantified variable %s does not occur in guard %s", v, a)
		}
	}
	return conds, sc2, nil
}

func (r *sqlRenderer) operand(t cq.Term, sc scope) (string, error) {
	if t.IsConst {
		return sqlString(t.Value), nil
	}
	if op, ok := sc[t.Value]; ok {
		return op, nil
	}
	return "", fmt.Errorf("emit: unbound variable %s", t.Value)
}

// atomCovers reports whether every variable in vars occurs in a's
// arguments, i.e. the atom guards the whole quantifier prefix.
func atomCovers(a cq.Atom, vars []string) bool {
	av := a.Vars()
	for _, v := range vars {
		if !av.Has(v) {
			return false
		}
	}
	return true
}

// nonkeyMatches reports whether a's nonkey positions are exactly the
// variables nv, in order.
func nonkeyMatches(a cq.Atom, nv []string) bool {
	if len(a.Args)-a.KeyLen != len(nv) {
		return false
	}
	for i, v := range nv {
		t := a.Args[a.KeyLen+i]
		if t.IsConst || t.Value != v {
			return false
		}
	}
	return true
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsVar(vars []string, v string) bool {
	for _, w := range vars {
		if w == v {
			return true
		}
	}
	return false
}

// sqlString renders an ANSI SQL string literal (single quotes doubled;
// backslashes are literal in ANSI string syntax).
func sqlString(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// sqlIdent renders a quoted SQL identifier (double quotes doubled).
func sqlIdent(name string) string {
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// keysCTE names the per-relation key-block CTE.
func keysCTE(rel string) string { return sqlIdent("cqa_keys_" + rel) }
