package emit

import (
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/fo"
)

func TestSanitizeDlog(t *testing.T) {
	cases := []struct{ in, want string }{
		{"r", "r"},
		{"MyRel", "myrel"},
		{"a_b9", "a_b9"},
		{"a-b", "a_2db"},
		{"é", "_c3_a9"},
		{"", ""},
	}
	for _, c := range cases {
		if got := sanitizeDlog(c.in); got != c.want {
			t.Errorf("sanitizeDlog(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Distinct inputs that sanitize identically must be caught upstream by
	// the collision maps, never silently merged: verify the two really do
	// collide so the guard is load-bearing.
	if sanitizeDlog("A-B") != sanitizeDlog("a-b") {
		t.Fatal("expected a collision between A-B and a-b")
	}
	q, err := cq.ParseQuery("AB(x | y), ab(x | z)")
	if err != nil {
		t.Fatal(err)
	}
	canon, _ := cq.Canonicalize(q)
	phi, err := fo.RewriteAcyclic(canon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Datalog(canon, phi, "fo-rewriting"); err == nil || !strings.Contains(err.Error(), "sanitize") {
		t.Fatalf("Datalog with case-colliding relations: err = %v, want a collision error", err)
	}
}

func TestDlogString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a", `"a"`},
		{`a"b`, `"a\"b"`},
		{`a\b`, `"a\\b"`},
	}
	for _, c := range cases {
		if got := dlogString(c.in); got != c.want {
			t.Errorf("dlogString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSQLQuoting(t *testing.T) {
	if got := sqlString("it's"); got != "'it''s'" {
		t.Errorf("sqlString = %q", got)
	}
	if got := sqlString(`a\b`); got != `'a\b'` {
		t.Errorf("sqlString backslash = %q, want verbatim pass-through", got)
	}
	if got := sqlIdent(`R"x`); got != `"R""x"` {
		t.Errorf("sqlIdent = %q", got)
	}
}

func TestQuerySignatureRejections(t *testing.T) {
	if err := checkEmittable("constant", "a\x00b"); err == nil || !strings.Contains(err.Error(), "NUL") {
		t.Errorf("NUL must be rejected, got %v", err)
	}
	if err := checkEmittable("relation", ""); err == nil {
		t.Error("empty names must be rejected")
	}

	q, err := cq.ParseQuery("cqa_adom(x | y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := querySignature(q); err == nil || !strings.Contains(err.Error(), "namespace") {
		t.Errorf("cqa_-prefixed relation must be rejected, got %v", err)
	}

	// Same relation at two different arities cannot share one table.
	mixed := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Const("a")),
		cq.NewAtom("R", 1, cq.Const("a"), cq.Const("b")),
	}}
	if _, err := querySignature(mixed); err == nil {
		t.Error("arity-mismatched self-reference must be rejected")
	}
}
