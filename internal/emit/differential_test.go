package emit_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/emit"
	"github.com/cqa-go/certainty/internal/emit/sqleval"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/solver"
)

// foFamilies returns every certgen FO-class query family the differential
// harness covers: the paper's examples, the Theorem 6 safe families
// (including the cyclic-but-safe triangle), random acyclic FO queries, and
// the FO members of the exhaustive two-atom enumeration.
func foFamilies(t *testing.T) []cq.Query {
	t.Helper()
	out := []cq.Query{
		cq.ConferenceQuery(),
		// The classic acyclic-attack-graph path query (Theorem 1 route).
		cq.MustParseQuery("R(x | y), S(y | z)"),
		// Theorem 6 safe families (fo/safe_test.go shapes).
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(x | z)"),
		cq.MustParseQuery("R(x | y), S(u | w)"),
		cq.MustParseQuery("R('a', 'b')"),
		cq.MustParseQuery("R(x | y, y)"),
		cq.MustParseQuery("R(x, y | z), S(x | w)"),
		// Cyclic hypergraph, safe: Theorem 6 via the common key variable.
		cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)"),
		// Constants in key and nonkey positions.
		cq.MustParseQuery("R(x | 'a'), S('b' | x)"),
	}
	for seed := int64(0); seed < 8; seed++ {
		q := gen.RandomAcyclicQuery(seed, 3)
		if isFO(q) {
			out = append(out, q)
		}
	}
	count := 0
	gen.EnumerateTwoAtomQueries(2, func(q cq.Query) {
		if isFO(q) && count < 12 {
			out = append(out, q)
			count++
		}
	})
	var fos []cq.Query
	for _, q := range out {
		if isFO(q) {
			fos = append(fos, q)
		} else {
			t.Fatalf("family %s is not FO-class", q)
		}
	}
	return fos
}

func isFO(q cq.Query) bool {
	cls, err := core.Classify(q)
	return err == nil && cls.Class == core.ClassFO
}

// TestDifferentialEmit is the harness the acceptance criteria name: for
// every FO-class certgen family × random snapshots × both data planes, the
// native solver verdict, the emitted-SQL evaluation, and the Datalog
// fixpoint must agree exactly.
func TestDifferentialEmit(t *testing.T) {
	defer solver.SetInterned(true)
	for _, q := range foFamilies(t) {
		q := q
		t.Run(q.String(), func(t *testing.T) {
			plan, err := solver.CompilePlan(q)
			if err != nil {
				t.Fatalf("CompilePlan: %v", err)
			}
			sqlProg, err := plan.EmitSQL()
			if err != nil {
				t.Fatalf("EmitSQL: %v", err)
			}
			dlProg, err := plan.EmitDatalog()
			if err != nil {
				t.Fatalf("EmitDatalog: %v", err)
			}
			for seed := int64(1); seed <= 6; seed++ {
				d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 5, Domain: 3}, seed)
				sqlGot, err := sqleval.Eval(sqlProg.Text, d)
				if err != nil {
					t.Fatalf("seed %d: sqleval: %v\nprogram:\n%s", seed, err, sqlProg.Text)
				}
				dlGot, err := emit.EvalDatalog(dlProg.Text, d)
				if err != nil {
					t.Fatalf("seed %d: datalog eval: %v\nprogram:\n%s", seed, err, dlProg.Text)
				}
				for _, interned := range []bool{true, false} {
					solver.SetInterned(interned)
					native := nativeVerdict(t, plan, d)
					if sqlGot != native {
						t.Fatalf("seed %d interned=%v: SQL verdict %v, native %v\ndb:\n%s\nprogram:\n%s",
							seed, interned, sqlGot, native, dumpDB(d), sqlProg.Text)
					}
					if dlGot != native {
						t.Fatalf("seed %d interned=%v: Datalog verdict %v, native %v\ndb:\n%s\nprogram:\n%s",
							seed, interned, dlGot, native, dumpDB(d), dlProg.Text)
					}
				}
			}
		})
	}
}

func nativeVerdict(t *testing.T, plan *solver.Plan, d *db.DB) bool {
	t.Helper()
	v, err := plan.SolveCtx(context.Background(), d, solver.Options{})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	switch v.Outcome {
	case solver.OutcomeCertain:
		return true
	case solver.OutcomeNotCertain:
		return false
	default:
		t.Fatalf("native solve cut off: %v", v.Err)
		return false
	}
}

// TestEmitMatchesFoEval cross-checks against the fo package's reference
// evaluator directly, independent of the solver's execution machinery.
func TestEmitMatchesFoEval(t *testing.T) {
	for _, q := range foFamilies(t) {
		canon, _ := cq.Canonicalize(q)
		var phi fo.Formula
		var err error
		cls, cerr := core.Classify(canon)
		if cerr != nil {
			t.Fatalf("Classify(%s): %v", canon, cerr)
		}
		if cls.Graph != nil {
			phi, err = fo.RewriteAcyclic(canon)
		} else {
			phi, err = fo.RewriteSafe(canon)
		}
		if err != nil {
			t.Fatalf("rewrite(%s): %v", canon, err)
		}
		prog, err := emit.SQL(canon, phi, "test")
		if err != nil {
			t.Fatalf("emit.SQL(%s): %v", canon, err)
		}
		for seed := int64(10); seed < 14; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 1, Noise: 6, Domain: 3}, seed)
			want, err := fo.Eval(phi, d)
			if err != nil {
				t.Fatalf("fo.Eval: %v", err)
			}
			got, err := sqleval.Eval(prog.Text, d)
			if err != nil {
				t.Fatalf("sqleval: %v\n%s", err, prog.Text)
			}
			if got != want {
				t.Fatalf("query %s seed %d: SQL %v, fo.Eval %v\ndb:\n%s\nprogram:\n%s",
					canon, seed, got, want, dumpDB(d), prog.Text)
			}
		}
	}
}

// TestEmitMetamorphicShuffle pins canonicalization: shuffling the atom
// order of the input query must produce byte-identical programs, because
// the solver canonicalizes before emitting.
func TestEmitMetamorphicShuffle(t *testing.T) {
	for _, q := range foFamilies(t) {
		plan, err := solver.CompilePlan(q)
		if err != nil {
			t.Fatalf("CompilePlan(%s): %v", q, err)
		}
		baseSQL, err := plan.EmitSQL()
		if err != nil {
			t.Fatalf("EmitSQL(%s): %v", q, err)
		}
		baseDL, err := plan.EmitDatalog()
		if err != nil {
			t.Fatalf("EmitDatalog(%s): %v", q, err)
		}
		r := rand.New(rand.NewSource(42))
		for trial := 0; trial < 4; trial++ {
			shuf := cq.Query{Atoms: append([]cq.Atom(nil), q.Atoms...)}
			r.Shuffle(len(shuf.Atoms), func(i, j int) {
				shuf.Atoms[i], shuf.Atoms[j] = shuf.Atoms[j], shuf.Atoms[i]
			})
			plan2, err := solver.CompilePlan(shuf)
			if err != nil {
				t.Fatalf("CompilePlan(shuffled %s): %v", shuf, err)
			}
			gotSQL, err := plan2.EmitSQL()
			if err != nil {
				t.Fatalf("EmitSQL(shuffled %s): %v", shuf, err)
			}
			if gotSQL.Text != baseSQL.Text {
				t.Fatalf("query %s: shuffled atom order changed the emitted SQL\nbase:\n%s\nshuffled:\n%s",
					q, baseSQL.Text, gotSQL.Text)
			}
			gotDL, err := plan2.EmitDatalog()
			if err != nil {
				t.Fatalf("EmitDatalog(shuffled %s): %v", shuf, err)
			}
			if gotDL.Text != baseDL.Text {
				t.Fatalf("query %s: shuffled atom order changed the emitted Datalog", q)
			}
		}
	}
}

// TestEmitDeterministic pins byte-level determinism across repeated
// emission of the same plan.
func TestEmitDeterministic(t *testing.T) {
	q := cq.ConferenceQuery()
	plan, err := solver.CompilePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := plan.EmitSQL()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := plan.EmitSQL()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Text != s2.Text || s1.SchemaNotes != s2.SchemaNotes {
		t.Fatal("EmitSQL is not deterministic")
	}
	d1, err := plan.EmitDatalog()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := plan.EmitDatalog()
	if err != nil {
		t.Fatal(err)
	}
	if d1.Text != d2.Text {
		t.Fatal("EmitDatalog is not deterministic")
	}
}

// TestEmitNotEmittable checks the typed error for non-FO plans.
func TestEmitNotEmittable(t *testing.T) {
	plan, err := solver.CompilePlan(cq.Q1())
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.EmitSQL()
	var ne *solver.NotEmittableError
	if !errors.As(err, &ne) {
		t.Fatalf("want NotEmittableError, got %v", err)
	}
	if !errors.Is(err, solver.ErrNotEmittable) {
		t.Fatalf("want ErrNotEmittable in chain, got %v", err)
	}
	if ne.Classification.Class == core.ClassFO {
		t.Fatalf("classification should not be FO: %v", ne.Classification.Class)
	}
}

func dumpDB(d *db.DB) string {
	s := ""
	for _, f := range d.Facts() {
		s += fmt.Sprintf("%v\n", f)
	}
	return s
}
