package emit_test

import (
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/emit"
	"github.com/cqa-go/certainty/internal/emit/sqleval"
	"github.com/cqa-go/certainty/internal/fo"
	"github.com/cqa-go/certainty/internal/gen"
)

// FuzzEmitSQL drives arbitrary query text through the full compile path:
// whatever parses and classifies FO must emit SQL deterministically, the
// reference evaluator must accept the emitted program without panicking,
// and its verdict on a generated snapshot must agree with direct FO
// evaluation of the rewriting. Everything else (parse errors, non-FO
// classes, emit refusals such as NUL bytes or namespace collisions) must
// fail with an error, never a panic.
func FuzzEmitSQL(f *testing.F) {
	seeds := []string{
		"R(x | y)",
		"R(x | y), S(y | z)",
		"C(x, y | 'Rome'), R(x | 'A')",
		"R(x | y), S(x | z)",
		"R('a', 'b')",
		"R(x | y, y)",
		"R(w | x, y), S(w | y, z), T(w | z, x)",
		"R(x | 'a'), S('b' | x)",
		"R('it''s' | x)",
		`R("quo | x)`,
		"R(x",
		"",
		"π(α | β)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := cq.ParseQuery(input)
		if err != nil {
			return
		}
		cls, err := core.Classify(q)
		if err != nil || cls.Class != core.ClassFO {
			return
		}
		canon, _ := cq.Canonicalize(q)
		phi, err := fo.RewriteAcyclic(canon)
		if err != nil {
			return
		}
		prog, err := emit.SQL(canon, phi, "fo-rewriting")
		if err != nil {
			// Emit refuses some inputs (NUL bytes, cqa_-prefixed relation
			// names); a typed refusal is fine, silence is not.
			if !strings.Contains(err.Error(), "emit") {
				t.Fatalf("emit.SQL(%q) unexpected error: %v", input, err)
			}
			return
		}
		again, err := emit.SQL(canon, phi, "fo-rewriting")
		if err != nil || again.Text != prog.Text {
			t.Fatalf("emit.SQL(%q) not deterministic (err %v)", input, err)
		}

		d := gen.RandomDB(q, gen.Config{Embeddings: 1, Noise: 3, Domain: 3}, 7)
		got, err := sqleval.Eval(prog.Text, d)
		if err != nil {
			t.Fatalf("sqleval rejected emitted program for %q: %v\n%s", input, err, prog.Text)
		}
		want, err := fo.Eval(phi, d)
		if err != nil {
			t.Fatalf("fo.Eval(%q): %v", input, err)
		}
		if got != want {
			t.Fatalf("emitted SQL disagrees with FO evaluation for %q: sql %v, fo %v\n%s",
				input, got, want, prog.Text)
		}
	})
}
