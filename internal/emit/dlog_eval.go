package emit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/db"
)

// EvalDatalog runs an emitted Datalog program against snapshot d with a
// naive stratified bottom-up fixpoint and reports whether the goal
// predicate `certain` is derived. It exists purely for differential
// testing — the round trip emit → parse → saturate → fixpoint must agree
// with the native solver verdict.
//
// EDB facts are seeded directly from d (predicate e_<sanitized rel>, one
// argument per column), so constants never round-trip through program text.
func EvalDatalog(program string, d *db.DB) (result bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("emit: datalog eval panic: %v", r)
		}
	}()
	rules, err := parseDatalog(program)
	if err != nil {
		return false, err
	}
	store := newFactStore()
	seen := make(map[string]string)
	for _, rel := range d.Relations() {
		pred := "e_" + sanitizeDlog(rel)
		if prev, ok := seen[pred]; ok && prev != rel {
			return false, fmt.Errorf("emit: relations %q and %q both sanitize to Datalog predicate %s", prev, rel, pred)
		}
		seen[pred] = rel
		for _, f := range d.FactsOf(rel) {
			store.add(pred, f.Args)
		}
	}
	strata, err := stratify(rules)
	if err != nil {
		return false, err
	}
	for _, layer := range strata {
		if err := fixpoint(layer, store); err != nil {
			return false, err
		}
	}
	return len(store.rows["certain"]) > 0, nil
}

// ------------------------------------------------------------- data rep --

type dlogTerm struct {
	isVar bool
	val   string
}

type dlogAtom struct {
	pred string
	args []dlogTerm
}

type dlogLit struct {
	neg  bool
	eq   bool // term = term builtin; atom.args holds the two operands
	atom dlogAtom
}

type dlogRule struct {
	head dlogAtom
	body []dlogLit
}

type factStore struct {
	rows map[string][][]string
	seen map[string]map[string]bool
}

func newFactStore() *factStore {
	return &factStore{rows: make(map[string][][]string), seen: make(map[string]map[string]bool)}
}

func (s *factStore) add(pred string, args []string) bool {
	key := rowKeyD(args)
	m := s.seen[pred]
	if m == nil {
		m = make(map[string]bool)
		s.seen[pred] = m
	}
	if m[key] {
		return false
	}
	m[key] = true
	s.rows[pred] = append(s.rows[pred], append([]string(nil), args...))
	return true
}

func rowKeyD(args []string) string {
	var b strings.Builder
	for _, v := range args {
		fmt.Fprintf(&b, "%d:%s|", len(v), v)
	}
	return b.String()
}

// --------------------------------------------------------------- parser --

func parseDatalog(src string) ([]dlogRule, error) {
	toks, err := lexDatalog(src)
	if err != nil {
		return nil, err
	}
	p := &dlogParser{toks: toks}
	var rules []dlogRule
	for p.peek().kind != dEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

type dlogTokKind int

const (
	dEOF    dlogTokKind = iota
	dIdent              // lowercase-start identifier (predicate or keyword `not`)
	dVar                // uppercase/underscore-start identifier
	dString             // double-quoted constant
	dPunct              // ( ) , . = :-
)

type dlogTok struct {
	kind dlogTokKind
	val  string
	pos  int
}

func lexDatalog(src string) ([]dlogTok, error) {
	var toks []dlogTok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '%':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ':':
			if i+1 >= len(src) || src[i+1] != '-' {
				return nil, fmt.Errorf("emit: datalog: stray ':' at offset %d", i)
			}
			toks = append(toks, dlogTok{dPunct, ":-", i})
			i += 2
		case strings.IndexByte("(),.=", c) >= 0:
			toks = append(toks, dlogTok{dPunct, string(c), i})
			i++
		case c == '"':
			var b strings.Builder
			j := i + 1
			closed := false
			for j < len(src) {
				if src[j] == '\\' && j+1 < len(src) {
					b.WriteByte(src[j+1])
					j += 2
					continue
				}
				if src[j] == '"' {
					closed = true
					j++
					break
				}
				b.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("emit: datalog: unterminated string at offset %d", i)
			}
			toks = append(toks, dlogTok{dString, b.String(), i})
			i = j
		case c >= 'a' && c <= 'z':
			j := i
			for j < len(src) && isDlogIdentPart(src[j]) {
				j++
			}
			toks = append(toks, dlogTok{dIdent, src[i:j], i})
			i = j
		case c == '_' || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(src) && isDlogIdentPart(src[j]) {
				j++
			}
			toks = append(toks, dlogTok{dVar, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("emit: datalog: unexpected byte %q at offset %d", c, i)
		}
	}
	toks = append(toks, dlogTok{dEOF, "", len(src)})
	return toks, nil
}

func isDlogIdentPart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

type dlogParser struct {
	toks []dlogTok
	i    int
}

func (p *dlogParser) peek() dlogTok { return p.toks[p.i] }
func (p *dlogParser) next() dlogTok { t := p.toks[p.i]; p.i++; return t }
func (p *dlogParser) errf(format string, args ...any) error {
	return fmt.Errorf("emit: datalog: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *dlogParser) punct(s string) bool {
	t := p.peek()
	if t.kind == dPunct && t.val == s {
		p.i++
		return true
	}
	return false
}

func (p *dlogParser) parseRule() (dlogRule, error) {
	var r dlogRule
	head, err := p.parseAtom()
	if err != nil {
		return r, err
	}
	r.head = head
	if p.punct(":-") {
		for {
			lit, err := p.parseLit()
			if err != nil {
				return r, err
			}
			r.body = append(r.body, lit)
			if p.punct(",") {
				continue
			}
			break
		}
	}
	if !p.punct(".") {
		return r, p.errf("expected '.', got %q", p.peek().val)
	}
	return r, nil
}

func (p *dlogParser) parseLit() (dlogLit, error) {
	t := p.peek()
	if t.kind == dIdent && t.val == "not" {
		p.i++
		a, err := p.parseAtom()
		if err != nil {
			return dlogLit{}, err
		}
		return dlogLit{neg: true, atom: a}, nil
	}
	// Either a positive atom or an equality builtin `term = term`.
	if t.kind == dVar || t.kind == dString {
		l, err := p.parseTerm()
		if err != nil {
			return dlogLit{}, err
		}
		if !p.punct("=") {
			return dlogLit{}, p.errf("expected '=' after term, got %q", p.peek().val)
		}
		r, err := p.parseTerm()
		if err != nil {
			return dlogLit{}, err
		}
		return dlogLit{eq: true, atom: dlogAtom{args: []dlogTerm{l, r}}}, nil
	}
	a, err := p.parseAtom()
	if err != nil {
		return dlogLit{}, err
	}
	return dlogLit{atom: a}, nil
}

func (p *dlogParser) parseAtom() (dlogAtom, error) {
	t := p.peek()
	if t.kind != dIdent {
		return dlogAtom{}, p.errf("expected predicate, got %q", t.val)
	}
	p.i++
	a := dlogAtom{pred: t.val}
	if !p.punct("(") {
		return a, nil
	}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return a, err
		}
		a.args = append(a.args, term)
		if p.punct(",") {
			continue
		}
		break
	}
	if !p.punct(")") {
		return a, p.errf("expected ')', got %q", p.peek().val)
	}
	return a, nil
}

func (p *dlogParser) parseTerm() (dlogTerm, error) {
	t := p.next()
	switch t.kind {
	case dVar:
		return dlogTerm{isVar: true, val: t.val}, nil
	case dString:
		return dlogTerm{val: t.val}, nil
	default:
		return dlogTerm{}, fmt.Errorf("emit: datalog: offset %d: expected term, got %q", t.pos, t.val)
	}
}

// ------------------------------------------------------- stratification --

// stratify assigns each rule to a stratum such that a predicate's rules all
// see the full extent of every negated predicate: stratum(head) ≥
// stratum(positive dep) and > stratum(negated dep). Errors on negation
// cycles.
func stratify(rules []dlogRule) ([][]dlogRule, error) {
	stratum := make(map[string]int)
	preds := make(map[string]bool)
	for _, r := range rules {
		preds[r.head.pred] = true
		for _, l := range r.body {
			if !l.eq {
				preds[l.atom.pred] = true
			}
		}
	}
	limit := len(preds) + 1
	for iter := 0; ; iter++ {
		changed := false
		for _, r := range rules {
			s := stratum[r.head.pred]
			for _, l := range r.body {
				if l.eq {
					continue
				}
				need := stratum[l.atom.pred]
				if l.neg {
					need++
				}
				if need > s {
					s = need
				}
			}
			if s > stratum[r.head.pred] {
				stratum[r.head.pred] = s
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > limit {
			return nil, fmt.Errorf("emit: datalog: program is not stratified (negation cycle)")
		}
	}
	max := 0
	for _, s := range stratum {
		if s > max {
			max = s
		}
	}
	layers := make([][]dlogRule, max+1)
	for _, r := range rules {
		s := stratum[r.head.pred]
		layers[s] = append(layers[s], r)
	}
	return layers, nil
}

// ------------------------------------------------------------- fixpoint --

func fixpoint(rules []dlogRule, store *factStore) error {
	for {
		added := false
		for _, r := range rules {
			derived, err := evalRule(r, store)
			if err != nil {
				return err
			}
			for _, args := range derived {
				if store.add(r.head.pred, args) {
					added = true
				}
			}
		}
		if !added {
			return nil
		}
	}
}

// evalRule enumerates all derivations of r's head under the current store,
// processing body literals left to right. Equality and negative literals
// require their variables bound — emitted programs order literals so that
// positives bind first; an unbound variable there is a safety bug.
func evalRule(r dlogRule, store *factStore) ([][]string, error) {
	var out [][]string
	env := make(map[string]string)
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(r.body) {
			args := make([]string, len(r.head.args))
			for j, t := range r.head.args {
				if !t.isVar {
					args[j] = t.val
					continue
				}
				v, ok := env[t.val]
				if !ok {
					return fmt.Errorf("emit: datalog: unsafe rule: head variable %s unbound in %s", t.val, r.head.pred)
				}
				args[j] = v
			}
			out = append(out, args)
			return nil
		}
		l := r.body[i]
		if l.eq {
			lv, err := resolveTerm(l.atom.args[0], env)
			if err != nil {
				return err
			}
			rv, err := resolveTerm(l.atom.args[1], env)
			if err != nil {
				return err
			}
			if lv == rv {
				return walk(i + 1)
			}
			return nil
		}
		if l.neg {
			args := make([]string, len(l.atom.args))
			for j, t := range l.atom.args {
				v, err := resolveTerm(t, env)
				if err != nil {
					return err
				}
				args[j] = v
			}
			if store.seen[l.atom.pred][rowKeyD(args)] {
				return nil
			}
			return walk(i + 1)
		}
		for _, row := range store.rows[l.atom.pred] {
			if len(row) != len(l.atom.args) {
				return fmt.Errorf("emit: datalog: arity mismatch on %s", l.atom.pred)
			}
			var bound []string
			ok := true
			for j, t := range l.atom.args {
				if !t.isVar {
					if t.val != row[j] {
						ok = false
						break
					}
					continue
				}
				if v, has := env[t.val]; has {
					if v != row[j] {
						ok = false
						break
					}
					continue
				}
				env[t.val] = row[j]
				bound = append(bound, t.val)
			}
			if ok {
				if err := walk(i + 1); err != nil {
					return err
				}
			}
			for _, v := range bound {
				delete(env, v)
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return out, nil
}

func resolveTerm(t dlogTerm, env map[string]string) (string, error) {
	if !t.isVar {
		return t.val, nil
	}
	v, ok := env[t.val]
	if !ok {
		return "", fmt.Errorf("emit: datalog: unsafe rule: variable %s used before binding", t.val)
	}
	return v, nil
}

// sortedPreds is a small debugging helper used by tests to inspect derived
// predicates deterministically.
func (s *factStore) sortedPreds() []string {
	out := make([]string, 0, len(s.rows))
	for p := range s.rows {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
