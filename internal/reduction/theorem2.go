// Package reduction implements the paper's executable reductions: the
// Theorem 2 construction mapping CERTAINTY(q0) instances to CERTAINTY(q)
// instances for any acyclic query q with a strong attack cycle (the Venn
// diagram valuation θ̂ of Fig. 3), and the Lemma 9 all-key completion used
// by Corollary 1.
package reduction

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/jointree"
)

// tuple encodes a constant sequence as a single constant, unambiguously:
// ⟨a,b⟩ and ⟨a,b,c⟩ never collide with each other or with plain constants.
func tuple(parts ...string) string {
	var b strings.Builder
	b.WriteString("⟨")
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(len(p)))
		b.WriteByte(':')
		b.WriteString(p)
	}
	b.WriteString("⟩")
	return b.String()
}

// Theorem2 is the polynomial-time many-one reduction from CERTAINTY(q0),
// q0 = {R0(x|y), S0(y,z|x)}, to CERTAINTY(q) for an acyclic self-join-free
// query q whose attack graph contains a strong cycle.
type Theorem2 struct {
	Q cq.Query
	// F and G index the 2-cycle atoms, with F ↝ G strong (Lemma 4
	// guarantees such a pair exists).
	F, G int

	plusF, plusG, fullF cq.VarSet
}

// NewTheorem2 prepares the reduction for q, failing when q has no strong
// attack cycle.
func NewTheorem2(q cq.Query) (*Theorem2, error) {
	g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
	if err != nil {
		return nil, err
	}
	f, gg, ok := g.StrongCycle2()
	if !ok {
		return nil, fmt.Errorf("reduction: %s has no strong attack cycle", q)
	}
	return &Theorem2{
		Q:     q,
		F:     f,
		G:     gg,
		plusF: g.Plus(f),
		plusG: g.Plus(gg),
		fullF: g.Full(f),
	}, nil
}

// HatValuation computes θ̂ over vars(q) from a valuation θ over {x, y, z},
// following the six Venn regions of Fig. 3 exactly.
func (r *Theorem2) HatValuation(theta cq.Valuation) cq.Valuation {
	x, y, z := theta["x"], theta["y"], theta["z"]
	out := make(cq.Valuation)
	for u := range r.Q.Vars() {
		inPlusF := r.plusF.Has(u)
		inPlusG := r.plusG.Has(u)
		inFullF := r.fullF.Has(u)
		switch {
		case inPlusF && inPlusG:
			out[u] = "d"
		case inPlusF && !inPlusG:
			out[u] = x
		case inPlusG && !inFullF:
			out[u] = tuple(y, z)
		case inPlusG && inFullF && !inPlusF:
			out[u] = y
		case inFullF && !inPlusF && !inPlusG:
			out[u] = tuple(x, y)
		default: // u ∉ F⊕ ∪ G+
			out[u] = tuple(x, y, z)
		}
	}
	return out
}

// Q0Valuations returns V: the valuations θ over {x,y,z} with θ(q0) ⊆ db0.
func Q0Valuations(db0 *db.DB) []cq.Valuation {
	return engine.Embeddings(cq.Q0(), db0)
}

// Apply executes the reduction: purify db0 relative to q0 (Lemma 1), then
// build db = {θ̂(H) | H ∈ q, θ ∈ V}. The result is in CERTAINTY(q) iff db0
// is in CERTAINTY(q0).
func (r *Theorem2) Apply(db0 *db.DB) (*db.DB, error) {
	pur := engine.Purify(cq.Q0(), db0)
	out := db.New()
	for _, theta := range Q0Valuations(pur) {
		hat := r.HatValuation(theta)
		for _, H := range r.Q.Atoms {
			f, ok := db.FactFromAtom(H.Substitute(hat))
			if !ok {
				return nil, fmt.Errorf("reduction: atom %s not grounded by θ̂ %v", H, hat)
			}
			if err := out.Add(f); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// MapRepair implements the bijection `map` of the proof (Sublemma 4): it
// maps a repair r0 of the purified db0 to the corresponding repair of the
// reduced database. Used by tests to validate the construction.
func (r *Theorem2) MapRepair(db0Purified *db.DB, repair0 *db.DB) (*db.DB, error) {
	out := db.New()
	F, G := r.Q.Atoms[r.F], r.Q.Atoms[r.G]
	F0 := cq.Q0().Atoms[0]
	G0 := cq.Q0().Atoms[1]
	for _, theta := range Q0Valuations(db0Purified) {
		hat := r.HatValuation(theta)
		addImage := func(H cq.Atom) error {
			f, ok := db.FactFromAtom(H.Substitute(hat))
			if !ok {
				return fmt.Errorf("reduction: ungrounded image of %s", H)
			}
			return out.Add(f)
		}
		// dbrest is shared by all repairs.
		for i, H := range r.Q.Atoms {
			if i == r.F || i == r.G {
				continue
			}
			if err := addImage(H); err != nil {
				return nil, err
			}
		}
		if f0, ok := db.FactFromAtom(F0.Substitute(theta)); ok && repair0.Has(f0) {
			if err := addImage(F); err != nil {
				return nil, err
			}
		}
		if g0, ok := db.FactFromAtom(G0.Substitute(theta)); ok && repair0.Has(g0) {
			if err := addImage(G); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Lemma9 completes a database for the reduction of Lemma 9: for every
// all-key atom R(x̄) in q but not in qPrime, every tuple over the active
// domain of d is added to R. This yields an AC⁰ many-one reduction from
// CERTAINTY(qPrime) to CERTAINTY(q). The completion has |D|^|x̄| facts per
// added relation — polynomial in |d| for fixed q.
func Lemma9(q, qPrime cq.Query, d *db.DB) (*db.DB, error) {
	out := d.Clone()
	dom := d.ActiveDomain()
	for _, a := range q.Atoms {
		if qPrime.IndexOf(a) >= 0 {
			continue
		}
		if !a.AllKey() {
			return nil, fmt.Errorf("reduction: atom %s in q \\ q' must be all-key", a)
		}
		args := make([]string, a.Arity())
		var recurse func(i int) error
		recurse = func(i int) error {
			if i == a.Arity() {
				cp := make([]string, len(args))
				copy(cp, args)
				return out.Add(db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: cp})
			}
			if a.Args[i].IsConst {
				args[i] = a.Args[i].Value
				return recurse(i + 1)
			}
			for _, c := range dom {
				args[i] = c
				if err := recurse(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := recurse(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}
