package reduction

import (
	"math/big"
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/solver"
)

func TestTupleEncodingUnambiguous(t *testing.T) {
	if tuple("a", "b") == tuple("ab") || tuple("a", "b") == tuple("a", "b", "c") {
		t.Error("tuple encodings collide")
	}
	if tuple("a:b", "c") == tuple("a", "b:c") {
		t.Error("length prefixes must disambiguate")
	}
}

func TestNewTheorem2RequiresStrongCycle(t *testing.T) {
	if _, err := NewTheorem2(cq.ACk(3)); err == nil {
		t.Error("AC(3) has no strong cycle")
	}
	if _, err := NewTheorem2(cq.MustParseQuery("R(x | y), S(y | z)")); err == nil {
		t.Error("FO query has no strong cycle")
	}
	if _, err := NewTheorem2(cq.Ck(3)); err == nil {
		t.Error("cyclic query has no attack graph")
	}
	r, err := NewTheorem2(cq.Q1())
	if err != nil {
		t.Fatalf("q1 has a strong cycle: %v", err)
	}
	// In q1 the strong attack is G=S ↝ F=R, so the reduction's F must be S.
	if r.Q.Atoms[r.F].Rel != "S" || r.Q.Atoms[r.G].Rel != "R" {
		t.Errorf("strong pair = (%s, %s)", r.Q.Atoms[r.F].Rel, r.Q.Atoms[r.G].Rel)
	}
}

// TestTheorem2PreservesCertainty is the headline property: for random q0
// instances, db0 ∈ CERTAINTY(q0) ⟺ Apply(db0) ∈ CERTAINTY(q1).
func TestTheorem2PreservesCertainty(t *testing.T) {
	targets := []cq.Query{
		cq.Q1(),
		cq.Q0(), // reduction of q0 to itself must also work
	}
	q0 := cq.Q0()
	for _, target := range targets {
		r, err := NewTheorem2(target)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		for seed := int64(0); seed < 30; seed++ {
			db0 := gen.Q0DB(2, 2, 2, seed)
			want := solver.BruteForce(q0, db0)
			reduced, err := r.Apply(db0)
			if err != nil {
				t.Fatalf("%s seed %d: %v", target, seed, err)
			}
			got := solver.BruteForce(target, reduced)
			if got != want {
				t.Errorf("%s seed %d: reduced certainty %v, source %v\nsource:\n%s",
					target, seed, got, want, db0)
			}
		}
	}
}

// TestSublemma4Bijection validates the repair bijection: repair counts
// match, mapped repairs are genuine repairs, distinct repairs map to
// distinct images, and satisfaction transfers.
func TestSublemma4Bijection(t *testing.T) {
	q0 := cq.Q0()
	r, err := NewTheorem2(cq.Q1())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 15; seed++ {
		db0 := engine.Purify(q0, gen.Q0DB(2, 2, 2, seed))
		reduced, err := r.Apply(db0)
		if err != nil {
			t.Fatal(err)
		}
		if db0.Len() == 0 {
			if reduced.Len() != 0 {
				t.Errorf("seed %d: empty source, nonempty image", seed)
			}
			continue
		}
		if db0.NumRepairs().Cmp(reduced.NumRepairs()) != 0 {
			t.Errorf("seed %d: repair counts differ: %v vs %v",
				seed, db0.NumRepairs(), reduced.NumRepairs())
		}
		seen := make(map[string]bool)
		count := 0
		db0.EachRepair(func(rep []db.Fact) bool {
			count++
			r0 := db.RepairDB(rep)
			img, err := r.MapRepair(db0, r0)
			if err != nil {
				t.Fatalf("seed %d: MapRepair: %v", seed, err)
			}
			if !img.IsConsistent() {
				t.Errorf("seed %d: image not consistent", seed)
			}
			if img.NumBlocks() != reduced.NumBlocks() {
				t.Errorf("seed %d: image not maximal (%d vs %d blocks)",
					seed, img.NumBlocks(), reduced.NumBlocks())
			}
			for _, f := range img.Facts() {
				if !reduced.Has(f) {
					t.Errorf("seed %d: image fact %s outside reduced db", seed, f)
				}
			}
			key := img.String()
			if seen[key] {
				t.Errorf("seed %d: map not injective", seed)
			}
			seen[key] = true
			if engine.Eval(q0, r0) != engine.Eval(cq.Q1(), img) {
				t.Errorf("seed %d: satisfaction not preserved", seed)
			}
			return count < 64 // cap the work per seed
		})
	}
}

func TestHatValuationRegions(t *testing.T) {
	// For q0 itself: F0=R0(x|y), G0=S0(y,z|x). The strong attack is from
	// one of them; verify θ̂ assigns every query variable and is injective
	// enough: distinct θ give distinct θ̂ images on vars outside F+∩G+.
	r, err := NewTheorem2(cq.Q0())
	if err != nil {
		t.Fatal(err)
	}
	t1 := cq.Valuation{"x": "1", "y": "2", "z": "3"}
	t2 := cq.Valuation{"x": "1", "y": "2", "z": "4"}
	h1, h2 := r.HatValuation(t1), r.HatValuation(t2)
	if len(h1) != 3 {
		t.Fatalf("θ̂ must bind x, y, z: %v", h1)
	}
	same := true
	for v := range h1 {
		if h1[v] != h2[v] {
			same = false
		}
	}
	if same {
		t.Error("distinct θ with different z must give distinct θ̂ (z occurs outside F⊕ ∪ G+ or in G+\\F⊕)")
	}
}

func TestLemma9C3ToAC3(t *testing.T) {
	c3, ac3 := cq.Ck(3), cq.ACk(3)
	for seed := int64(0); seed < 20; seed++ {
		d := gen.RandomDB(c3, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, seed)
		completed, err := Lemma9(ac3, c3, d)
		if err != nil {
			t.Fatal(err)
		}
		want := solver.BruteForce(c3, d)
		got := solver.BruteForce(ac3, completed)
		if got != want {
			t.Errorf("seed %d: Lemma9 certainty %v, source %v", seed, got, want)
		}
		// The completion must agree with the direct C(k) solver too.
		shape, ok := core.MatchCycleShape(c3, false)
		if !ok {
			t.Fatal("C(3) shape")
		}
		direct, err := solver.CertainCk(c3, shape, d)
		if err != nil {
			t.Fatal(err)
		}
		if direct != want {
			t.Errorf("seed %d: CertainCk %v, brute %v", seed, direct, want)
		}
		// And the AC(k) solver on the completed instance.
		shapeAC, _ := core.MatchCycleShape(ac3, true)
		viaAC, err := solver.CertainACk(ac3, shapeAC, completed)
		if err != nil {
			t.Fatal(err)
		}
		if viaAC != want {
			t.Errorf("seed %d: CertainACk on completion %v, want %v", seed, viaAC, want)
		}
	}
}

func TestLemma9SizeAndErrors(t *testing.T) {
	c3, ac3 := cq.Ck(3), cq.ACk(3)
	d := gen.RandomDB(c3, gen.Config{Embeddings: 2, Noise: 0, Domain: 2}, 1)
	completed, err := Lemma9(ac3, c3, d)
	if err != nil {
		t.Fatal(err)
	}
	domain := int64(len(d.ActiveDomain()))
	wantSk := new(big.Int).Exp(big.NewInt(domain), big.NewInt(3), nil)
	if got := int64(len(completed.FactsOf("S3"))); got != wantSk.Int64() {
		t.Errorf("S3 completion has %d facts, want %v", got, wantSk)
	}
	// q \ q' atom that is not all-key must be rejected.
	q := cq.MustParseQuery("R1(x1 | x2), R2(x2 | x1), T(x1 | x2)")
	if _, err := Lemma9(q, cq.Ck(2), d); err == nil {
		t.Error("non-all-key completion atom must be rejected")
	}
}

func TestHatValuationAllRegions(t *testing.T) {
	// q1's strong pair is (S, R); exercise every Venn region by checking
	// that θ̂ is total over vars(q1) and deterministic.
	r, err := NewTheorem2(cq.Q1())
	if err != nil {
		t.Fatal(err)
	}
	theta := cq.Valuation{"x": "1", "y": "2", "z": "3"}
	h1 := r.HatValuation(theta)
	h2 := r.HatValuation(theta)
	if len(h1) != 4 {
		t.Fatalf("θ̂ must bind all of u, x, y, z: %v", h1)
	}
	for v := range h1 {
		if h1[v] != h2[v] {
			t.Error("θ̂ must be deterministic")
		}
	}
	// Changing only z must change θ̂ on some variable (z is live in q1's
	// construction), and never change variables in F+∩G+ (mapped to 'd').
	h3 := r.HatValuation(cq.Valuation{"x": "1", "y": "2", "z": "9"})
	changed := false
	for v := range h1 {
		if h1[v] != h3[v] {
			changed = true
		}
	}
	if !changed {
		t.Error("θ̂ must depend on z")
	}
}

func TestApplyOnEmptyAndUnpurified(t *testing.T) {
	r, err := NewTheorem2(cq.Q1())
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Apply(db.New())
	if err != nil || out.Len() != 0 {
		t.Errorf("empty source: %v %v", out, err)
	}
	// An unpurified source (dangling S0 fact) is purified inside Apply.
	src := db.MustParse("R0(a | b), S0(b, z | a), S0(q, q | q)")
	out, err = r.Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	// Only the coherent part contributes: 4 atoms × 1 valuation.
	if out.Len() != 4 {
		t.Errorf("image size = %d, want 4:\n%s", out.Len(), out)
	}
}
