// Package fd implements functional-dependency reasoning over variables,
// which play the role of attributes in the attack-graph framework
// (Definitions 1, 2 and 5 of the paper).
package fd

import (
	"sort"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
)

// FD is a functional dependency X → Y over variables.
type FD struct {
	Lhs cq.VarSet
	Rhs cq.VarSet
}

// String renders the dependency as "x y → z".
func (f FD) String() string {
	return strings.Join(f.Lhs.Sorted(), " ") + " → " + strings.Join(f.Rhs.Sorted(), " ")
}

// Set is a set of functional dependencies.
type Set []FD

// KeysOf returns K(q) of Definition 1: the set of dependencies
// key(F) → vars(F) for every atom F of q.
func KeysOf(q cq.Query) Set {
	out := make(Set, 0, q.Len())
	for _, a := range q.Atoms {
		out = append(out, FD{Lhs: a.KeyVars(), Rhs: a.Vars()})
	}
	return out
}

// Closure returns the attribute closure of x with respect to s: the set
// {v | s ⊨ x → v}, computed with the standard fixpoint algorithm
// (Ullman, Principles of Database Systems; cf. the proof of Lemma 5).
// Only variables occurring in s or x appear in the result.
func (s Set) Closure(x cq.VarSet) cq.VarSet {
	closure := x.Clone()
	// Fixpoint: apply every dependency whose left side is contained in the
	// closure until nothing changes. Quadratic in |s|, which is fine for
	// query-sized inputs.
	for changed := true; changed; {
		changed = false
		for _, f := range s {
			if f.Lhs.SubsetOf(closure) && !f.Rhs.SubsetOf(closure) {
				closure.AddAll(f.Rhs)
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether s ⊨ x → y.
func (s Set) Implies(x, y cq.VarSet) bool {
	return y.SubsetOf(s.Closure(x))
}

// ImpliesVar reports whether s ⊨ x → {v}.
func (s Set) ImpliesVar(x cq.VarSet, v string) bool {
	return s.Closure(x).Has(v)
}

// String renders the set as "{x → y z; u → v}" with a deterministic order.
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, "; ") + "}"
}
