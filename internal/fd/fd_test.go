package fd

import (
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
)

func vs(names ...string) cq.VarSet { return cq.NewVarSet(names...) }

func TestClosureTextbook(t *testing.T) {
	s := Set{
		{Lhs: vs("a"), Rhs: vs("b")},
		{Lhs: vs("b"), Rhs: vs("c")},
		{Lhs: vs("c", "d"), Rhs: vs("e")},
	}
	if got := s.Closure(vs("a")); !got.Equal(vs("a", "b", "c")) {
		t.Errorf("closure(a) = %v", got)
	}
	if got := s.Closure(vs("a", "d")); !got.Equal(vs("a", "b", "c", "d", "e")) {
		t.Errorf("closure(ad) = %v", got)
	}
	if !s.Implies(vs("a", "d"), vs("e")) {
		t.Error("ad → e should hold")
	}
	if s.Implies(vs("a"), vs("e")) {
		t.Error("a → e should not hold")
	}
	if !s.ImpliesVar(vs("a"), "c") || s.ImpliesVar(vs("a"), "d") {
		t.Error("ImpliesVar wrong")
	}
}

func TestClosureEmpty(t *testing.T) {
	var s Set
	if got := s.Closure(vs("x")); !got.Equal(vs("x")) {
		t.Errorf("closure under empty FD set = %v", got)
	}
	if got := s.Closure(vs()); got.Len() != 0 {
		t.Errorf("closure of empty set = %v", got)
	}
	// Empty LHS fires unconditionally.
	s = Set{{Lhs: vs(), Rhs: vs("z")}}
	if got := s.Closure(vs()); !got.Equal(vs("z")) {
		t.Errorf("∅ → z should fire: %v", got)
	}
}

// TestKeysOfQ1 reproduces the K(q1 \ {·}) computations of Example 2.
func TestKeysOfQ1(t *testing.T) {
	q1 := cq.Q1()
	// q1 = {R(u|a,x)=F, S(y|x,z)=G, T(x|y)=H, P(x|z)=I}
	full := KeysOf(q1)
	if len(full) != 4 {
		t.Fatalf("K(q1) should have 4 FDs, got %d", len(full))
	}
	// Example 4: F⊙ = closure of {u} wrt K(q1) = {u,x,y,z}.
	if got := full.Closure(vs("u")); !got.Equal(vs("u", "x", "y", "z")) {
		t.Errorf("F⊙ = %v", got)
	}

	cases := []struct {
		drop int // atom index removed
		key  cq.VarSet
		want cq.VarSet
	}{
		{0, vs("u"), vs("u")},           // F+ = {u}
		{1, vs("y"), vs("y")},           // G+ = {y}
		{2, vs("x"), vs("x", "z")},      // H+ = {x,z}
		{3, vs("x"), vs("x", "y", "z")}, // I+ = {x,y,z}
	}
	for _, c := range cases {
		s := KeysOf(q1.Without(c.drop))
		if got := s.Closure(c.key); !got.Equal(c.want) {
			t.Errorf("closure of %v wrt K(q1 \\ {%s}) = %v, want %v",
				c.key, q1.Atoms[c.drop].Rel, got, c.want)
		}
	}
}

func TestStringDeterministic(t *testing.T) {
	s := Set{
		{Lhs: vs("b"), Rhs: vs("c")},
		{Lhs: vs("a"), Rhs: vs("b")},
	}
	if got, want := s.String(), "{a → b; b → c}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	f := FD{Lhs: vs("y", "x"), Rhs: vs("z")}
	if got, want := f.String(), "x y → z"; got != want {
		t.Errorf("FD.String = %q, want %q", got, want)
	}
}

// Properties of attribute closure: extensive, monotone, idempotent.
func TestQuickClosureProperties(t *testing.T) {
	vars := []string{"a", "b", "c", "d", "e"}
	mkSet := func(r *uint32, next func(int) int) Set {
		n := next(5)
		s := make(Set, 0, n)
		for i := 0; i < n; i++ {
			lhs, rhs := vs(), vs()
			for _, v := range vars {
				if next(3) == 0 {
					lhs.Add(v)
				}
				if next(3) == 0 {
					rhs.Add(v)
				}
			}
			s = append(s, FD{Lhs: lhs, Rhs: rhs})
		}
		return s
	}
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		s := mkSet(&r, next)
		x := vs()
		for _, v := range vars {
			if next(2) == 0 {
				x.Add(v)
			}
		}
		cl := s.Closure(x)
		if !x.SubsetOf(cl) {
			return false // extensive
		}
		if !cl.Equal(s.Closure(cl)) {
			return false // idempotent
		}
		y := x.Clone()
		y.Add(vars[next(len(vars))])
		if !cl.SubsetOf(s.Closure(y)) {
			return false // monotone
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
