package govern

import (
	"errors"
	"testing"
	"time"
)

func TestPolicyClamp(t *testing.T) {
	pol := Policy{
		MaxTimeout:     10 * time.Second,
		MaxBudget:      1000,
		DefaultTimeout: 2 * time.Second,
		DefaultBudget:  100,
	}
	cases := []struct {
		name        string
		pol         Policy
		in          Options
		wantTimeout time.Duration
		wantBudget  int64
		wantClamped Clamped
		wantErr     bool
	}{
		{"zero policy is identity", Policy{}, Options{Timeout: time.Hour, Budget: 1 << 40},
			time.Hour, 1 << 40, Clamped{}, false},
		{"unset fields take defaults", pol, Options{},
			2 * time.Second, 100, Clamped{Timeout: true, Budget: true}, false},
		{"within limits untouched", pol, Options{Timeout: 5 * time.Second, Budget: 500},
			5 * time.Second, 500, Clamped{}, false},
		{"over limits clamped", pol, Options{Timeout: time.Minute, Budget: 1 << 40},
			10 * time.Second, 1000, Clamped{Timeout: true, Budget: true}, false},
		{"no default falls back to cap", Policy{MaxTimeout: 3 * time.Second, MaxBudget: 7}, Options{},
			3 * time.Second, 7, Clamped{Timeout: true, Budget: true}, false},
		{"reject explicit over-ask", Policy{MaxBudget: 10, Reject: true}, Options{Budget: 11},
			0, 0, Clamped{}, true},
		{"reject leaves unset fields defaulted", Policy{MaxBudget: 10, DefaultBudget: 5, Reject: true}, Options{},
			0, 5, Clamped{Budget: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, clamped, err := tc.pol.Clamp(tc.in)
			if tc.wantErr {
				if !errors.Is(err, ErrPolicy) {
					t.Fatalf("err = %v, want ErrPolicy", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Clamp: %v", err)
			}
			if out.Timeout != tc.wantTimeout || out.Budget != tc.wantBudget {
				t.Errorf("Clamp = (timeout %v, budget %d), want (%v, %d)",
					out.Timeout, out.Budget, tc.wantTimeout, tc.wantBudget)
			}
			if clamped != tc.wantClamped {
				t.Errorf("Clamped = %+v, want %+v", clamped, tc.wantClamped)
			}
			if clamped.Any() != (clamped.Timeout || clamped.Budget) {
				t.Error("Any disagrees with fields")
			}
		})
	}
}

func TestPolicyClampPreservesOtherFields(t *testing.T) {
	fault := func(int64) error { return nil }
	in := Options{CheckEvery: 7, Fault: fault}
	out, _, err := Policy{MaxBudget: 5}.Clamp(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.CheckEvery != 7 || out.Fault == nil {
		t.Errorf("Clamp dropped unrelated fields: %+v", out)
	}
}
