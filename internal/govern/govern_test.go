package govern

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBudgetExhaustion(t *testing.T) {
	g := New(context.Background(), Options{Budget: 10})
	defer g.Close()
	for i := 0; i < 10; i++ {
		if err := g.Step(); err != nil {
			t.Fatalf("step %d: unexpected error %v", i, err)
		}
	}
	if err := g.Step(); !errors.Is(err, ErrBudget) {
		t.Fatalf("step 11: got %v, want ErrBudget", err)
	}
	// Sticky: further steps keep failing with the same error.
	if err := g.Step(); !errors.Is(err, ErrBudget) {
		t.Fatalf("step 12: got %v, want sticky ErrBudget", err)
	}
	if err := g.Err(); !errors.Is(err, ErrBudget) {
		t.Fatalf("Err: got %v, want ErrBudget", err)
	}
	if g.Remaining() != 0 {
		t.Fatalf("Remaining: got %d, want 0", g.Remaining())
	}
}

func TestCancellationPolling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Options{CheckEvery: 4})
	defer g.Close()
	cancel()
	var err error
	for i := 0; i < 8; i++ {
		if err = g.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled within CheckEvery steps", err)
	}
}

func TestDeadline(t *testing.T) {
	g := New(context.Background(), Options{Timeout: time.Millisecond, CheckEvery: 1})
	defer g.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := g.Step(); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("got %v, want DeadlineExceeded", err)
			}
			return
		}
	}
	t.Fatal("deadline never fired")
}

func TestFaultInjection(t *testing.T) {
	boom := errors.New("boom")
	g := New(context.Background(), Options{Fault: func(step int64) error {
		if step == 3 {
			return boom
		}
		return nil
	}})
	defer g.Close()
	var err error
	steps := 0
	for ; err == nil; steps++ {
		err = g.Step()
	}
	if !errors.Is(err, boom) || steps != 3 {
		t.Fatalf("got err=%v after %d steps, want boom after exactly 3", err, steps)
	}
}

func TestFromWithoutAttachment(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := From(ctx)
	if err := g.Step(); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if g.Remaining() != -1 {
		t.Fatalf("Remaining: got %d, want -1 (unlimited)", g.Remaining())
	}
	cancel()
	var err error
	for i := 0; i < 512 && err == nil; i++ {
		err = g.Step()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestAttachRoundTrip(t *testing.T) {
	g := New(context.Background(), Options{Budget: 5})
	defer g.Close()
	ctx := g.Attach()
	if From(ctx) != g {
		t.Fatal("From(g.Attach()) did not return g")
	}
}

func TestSafeConvertsPanic(t *testing.T) {
	err := Safe(func() error { panic("malformed formula") })
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "malformed formula" {
		t.Fatalf("got %v, want PanicError wrapping the panic value", err)
	}
	if err := Safe(func() error { return nil }); err != nil {
		t.Fatalf("Safe on clean fn: got %v, want nil", err)
	}
}
