package govern

import (
	"runtime"
	"sync/atomic"
)

// WorkerGate is a process-wide budget on *extra* goroutines spawned by the
// solver's fan-out layers. Two layers can fan out at once — the shard pool
// splits an instance into per-component sub-solves, and inside one of those
// CertainACkParallel fans out again over strong components. Without a shared
// budget the layers multiply: s shards × w workers goroutines for a machine
// with GOMAXPROCS cores. The gate makes every layer draw from one pool of
// GOMAXPROCS-derived slots instead.
//
// The contract is non-blocking on purpose: TryAcquire either grants a slot
// (the caller may spawn one goroutine and must Release when it exits) or
// refuses, in which case the caller does the work on its own goroutine.
// Since every fan-out helper also works inline, refusal degrades parallelism
// but never progress, and no lock ordering between layers exists to get
// wrong.
type WorkerGate struct {
	sem chan struct{}
}

// NewWorkerGate returns a gate with n spawn slots (n < 1 is treated as 1).
func NewWorkerGate(n int) *WorkerGate {
	if n < 1 {
		n = 1
	}
	return &WorkerGate{sem: make(chan struct{}, n)}
}

// TryAcquire claims a spawn slot without blocking. A true result obliges the
// caller to call Release exactly once when the spawned goroutine exits.
func (g *WorkerGate) TryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (g *WorkerGate) Release() { <-g.sem }

// Limit is the gate's slot capacity.
func (g *WorkerGate) Limit() int { return cap(g.sem) }

// InUse is the number of currently claimed slots (approximate under
// concurrency; exact when the gate is quiescent).
func (g *WorkerGate) InUse() int { return len(g.sem) }

// workers is the process-wide gate shared by every fan-out layer. Sized to
// GOMAXPROCS: with every caller also working inline, the steady-state
// goroutine count of a saturated solve is at most GOMAXPROCS extra
// goroutines regardless of how deeply the fan-out layers nest.
var workers atomic.Pointer[WorkerGate]

func init() {
	workers.Store(NewWorkerGate(runtime.GOMAXPROCS(0)))
}

// Workers returns the process-wide worker gate.
func Workers() *WorkerGate { return workers.Load() }

// SetWorkerLimit swaps the process-wide gate for one with n slots and
// returns a restore function. Test hook: production code never resizes the
// gate. Swapping while solves are in flight is safe — goroutines spawned
// under the old gate release into the old gate, which they still reference.
func SetWorkerLimit(n int) (restore func()) {
	old := workers.Swap(NewWorkerGate(n))
	return func() { workers.Store(old) }
}
