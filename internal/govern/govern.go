// Package govern provides resource governance for the exponential decision
// procedures of CERTAINTY(q). Since the problem is coNP-complete for
// strong-cycle queries (Theorem 2), the exact falsifying-repair search and
// the brute-force ground truth cannot be bounded polynomially; a Governor
// bounds them operationally instead, with a wall-clock deadline, a step
// budget, cooperative cancellation, and a deterministic fault-injection
// hook for testing cancellation paths.
//
// A Governor rides inside a context.Context (Attach/From), so every
// context-aware entry point of the stack — solver.SolveCtx,
// engine.EachEmbeddingCtx, db.EachRepairCtx — shares one step counter and
// one budget for the whole call tree.
package govern

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cqa-go/certainty/internal/obs"
)

// ErrBudget is the sticky error reported once the step budget is exhausted.
var ErrBudget = errors.New("govern: step budget exhausted")

// Governance telemetry, recorded into the process-wide registry: which
// cause stops governed computations (budget, deadline, cancellation,
// injected fault) and how many panics the containment boundary absorbed.
// The handles are resolved once; recording is one atomic add on the cold
// (failure) path only.
var (
	cutoffBudget   = obs.Default.Counter("govern_cutoffs_total", obs.L{K: "cause", V: "budget"})
	cutoffDeadline = obs.Default.Counter("govern_cutoffs_total", obs.L{K: "cause", V: "deadline"})
	cutoffCanceled = obs.Default.Counter("govern_cutoffs_total", obs.L{K: "cause", V: "canceled"})
	cutoffOther    = obs.Default.Counter("govern_cutoffs_total", obs.L{K: "cause", V: "other"})
	panicsTotal    = obs.Default.Counter("govern_panics_contained_total")
)

func init() {
	obs.Default.Help("govern_cutoffs_total", "Governed computations stopped, by cause.")
	obs.Default.Help("govern_panics_contained_total", "Panics converted to errors at the API boundary.")
}

// PanicError wraps a recovered panic value so that malformed inputs deep in
// the stack surface as errors at the public API boundary instead of
// crashing a long-running process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("govern: recovered panic: %v", e.Value)
}

// Options configures a Governor. The zero value imposes no limits beyond
// the parent context's own cancellation.
type Options struct {
	// Budget caps the total number of Step calls; 0 means unlimited.
	Budget int64
	// Timeout bounds wall-clock time from New; 0 means no deadline.
	Timeout time.Duration
	// CheckEvery is the number of steps between context polls (the budget
	// is checked on every step). Defaults to 256.
	CheckEvery int
	// Fault, when non-nil, is invoked on every step with the step count; a
	// non-nil return aborts the computation with that error. Used to make
	// cancellation deterministic in tests.
	Fault func(step int64) error
}

// Governor enforces Options over a computation. It is safe for concurrent
// use; the step counter and the failure flag are atomics, so parallel
// solvers can share one Governor.
type Governor struct {
	ctx    context.Context
	cancel context.CancelFunc
	budget int64
	every  int64
	fault  func(int64) error
	steps  atomic.Int64
	failed atomic.Bool
	mu     sync.Mutex
	err    error
}

// New derives a Governor from a parent context. Close must be called to
// release the deadline timer.
func New(ctx context.Context, opts Options) *Governor {
	every := int64(opts.CheckEvery)
	if every <= 0 {
		every = 256
	}
	g := &Governor{budget: opts.Budget, every: every, fault: opts.Fault}
	if opts.Timeout > 0 {
		g.ctx, g.cancel = context.WithTimeout(ctx, opts.Timeout)
	} else {
		g.ctx, g.cancel = context.WithCancel(ctx)
	}
	return g
}

type ctxKey struct{}

// Attach returns a context carrying the Governor, derived from the
// Governor's own (deadline-carrying) context, so that the whole governed
// call tree shares its budget.
func (g *Governor) Attach() context.Context {
	return context.WithValue(g.ctx, ctxKey{}, g)
}

// From extracts the Governor attached to ctx. When none is attached it
// returns a fresh limitless Governor that merely polls ctx for
// cancellation, so context-aware functions can call From unconditionally.
// Governors created this way need no Close.
func From(ctx context.Context) *Governor {
	if g, ok := ctx.Value(ctxKey{}).(*Governor); ok {
		return g
	}
	return &Governor{ctx: ctx, every: 256}
}

// Close releases the Governor's timer. It does not cancel in-flight work
// retroactively; sticky errors remain readable through Err.
func (g *Governor) Close() {
	if g.cancel != nil {
		g.cancel()
	}
}

// Context returns the Governor's context (carrying its deadline, if any).
func (g *Governor) Context() context.Context { return g.ctx }

// Steps returns the number of steps taken so far.
func (g *Governor) Steps() int64 { return g.steps.Load() }

// Remaining returns the unspent step budget, or -1 when unlimited.
func (g *Governor) Remaining() int64 {
	if g.budget <= 0 {
		return -1
	}
	if r := g.budget - g.steps.Load(); r > 0 {
		return r
	}
	return 0
}

// Err returns the sticky error that stopped the computation, or nil while
// it may proceed. After the first non-nil Step result, Err reports the same
// error to every caller — including ones that observe the failure through a
// different function in the call tree.
func (g *Governor) Err() error {
	if !g.failed.Load() {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

func (g *Governor) fail(err error) error {
	first := false
	g.mu.Lock()
	if g.err == nil {
		g.err = err
		first = true
	} else {
		err = g.err // first failure wins
	}
	g.mu.Unlock()
	g.failed.Store(true)
	if g.cancel != nil {
		g.cancel()
	}
	if first {
		cutoffCounter(err).Inc()
	}
	return err
}

// cutoffCounter maps the sticky error that stopped a governed computation to
// its cause-labelled counter.
func cutoffCounter(err error) *obs.Counter {
	switch {
	case errors.Is(err, ErrBudget):
		return cutoffBudget
	case errors.Is(err, context.DeadlineExceeded):
		return cutoffDeadline
	case errors.Is(err, context.Canceled):
		return cutoffCanceled
	default:
		return cutoffOther
	}
}

// Step records one unit of work and reports whether the computation must
// stop: the fault hook fired, the budget is exhausted, or the context was
// cancelled (polled every CheckEvery steps). The error is sticky — once
// non-nil, every subsequent Step returns it immediately.
func (g *Governor) Step() error {
	if g.failed.Load() {
		return g.Err()
	}
	n := g.steps.Add(1)
	if g.fault != nil {
		if err := g.fault(n); err != nil {
			return g.fail(err)
		}
	}
	if g.budget > 0 && n > g.budget {
		return g.fail(ErrBudget)
	}
	if n%g.every == 0 {
		select {
		case <-g.ctx.Done():
			return g.fail(g.ctx.Err())
		default:
		}
	}
	return nil
}

// Safe runs fn, converting a panic into a *PanicError. It is the panic
// containment used at public API boundaries: no query or database input
// may crash a long-running server process.
func Safe(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			panicsTotal.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
