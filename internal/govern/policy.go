package govern

import (
	"errors"
	"fmt"
	"time"
)

// ErrPolicy marks a request whose explicit resource demands exceed what a
// Policy permits. It is a permanent error: retrying the same request
// cannot succeed, so clients must not back off and retry on it.
var ErrPolicy = errors.New("govern: request exceeds policy limits")

// Policy is a server-side clamp on client-supplied governance options.
// CERTAINTY(q) is coNP-complete for strong-cycle queries, so a shared
// endpoint cannot let callers pick unbounded budgets or deadlines; Clamp
// maps whatever the caller asked for onto what the operator allows.
//
// The zero value imposes no limits and supplies no defaults, preserving
// the Options semantics of unbounded solving.
type Policy struct {
	// MaxTimeout caps the per-request wall-clock deadline; 0 means no cap.
	MaxTimeout time.Duration
	// MaxBudget caps the per-request step budget; 0 means no cap.
	MaxBudget int64
	// DefaultTimeout applies when the request leaves Timeout unset (0).
	// When 0, unset requests fall back to MaxTimeout.
	DefaultTimeout time.Duration
	// DefaultBudget applies when the request leaves Budget unset (0).
	// When 0, unset requests fall back to MaxBudget.
	DefaultBudget int64
	// Reject, when true, turns explicit over-limit requests into ErrPolicy
	// instead of silently clamping them. Unset (zero) request fields are
	// never rejected; they take the defaults.
	Reject bool
}

// Clamped reports which request fields Clamp tightened, so servers can tell
// clients their request was honored only partially.
type Clamped struct {
	// Timeout is true when the effective deadline is tighter than asked
	// (including an "unlimited" request that was given a finite default).
	Timeout bool
	// Budget is true when the effective step budget is tighter than asked.
	Budget bool
}

// Any reports whether anything was clamped.
func (c Clamped) Any() bool { return c.Timeout || c.Budget }

// Clamp maps requested Options onto the policy: unset fields take the
// defaults, explicit requests are capped at the maxima (or rejected with an
// error wrapping ErrPolicy when Reject is set). The returned Options are
// always within policy; the Clamped report records what was tightened.
func (p Policy) Clamp(o Options) (Options, Clamped, error) {
	var c Clamped
	switch {
	case o.Timeout <= 0:
		// Unlimited request: impose the default (or the cap).
		if p.DefaultTimeout > 0 {
			o.Timeout = p.DefaultTimeout
			c.Timeout = true
		} else if p.MaxTimeout > 0 {
			o.Timeout = p.MaxTimeout
			c.Timeout = true
		}
	case p.MaxTimeout > 0 && o.Timeout > p.MaxTimeout:
		if p.Reject {
			return o, c, fmt.Errorf("timeout %v exceeds maximum %v: %w", o.Timeout, p.MaxTimeout, ErrPolicy)
		}
		o.Timeout = p.MaxTimeout
		c.Timeout = true
	}
	switch {
	case o.Budget <= 0:
		if p.DefaultBudget > 0 {
			o.Budget = p.DefaultBudget
			c.Budget = true
		} else if p.MaxBudget > 0 {
			o.Budget = p.MaxBudget
			c.Budget = true
		}
	case p.MaxBudget > 0 && o.Budget > p.MaxBudget:
		if p.Reject {
			return o, c, fmt.Errorf("budget %d exceeds maximum %d: %w", o.Budget, p.MaxBudget, ErrPolicy)
		}
		o.Budget = p.MaxBudget
		c.Budget = true
	}
	return o, c, nil
}
