package gen

import (
	"fmt"
	"math/rand"

	"github.com/cqa-go/certainty/internal/db"
)

// MonotoneClause is a clause of a monotone CNF formula: all literals
// positive or all negative, over variables 0..n-1.
type MonotoneClause struct {
	Positive bool
	Vars     []int
}

// MonotoneFormula is a conjunction of monotone clauses.
type MonotoneFormula struct {
	NumVars int
	Clauses []MonotoneClause
}

// Satisfiable decides the formula by exhaustive search (for validation;
// exponential in NumVars).
func (f MonotoneFormula) Satisfiable() bool {
	if f.NumVars > 30 {
		panic("gen: Satisfiable is for small formulas only")
	}
	for mask := 0; mask < 1<<uint(f.NumVars); mask++ {
		if f.EvalAssignment(func(v int) bool { return mask&(1<<uint(v)) != 0 }) {
			return true
		}
	}
	return len(f.Clauses) == 0 && f.NumVars == 0
}

// EvalAssignment reports whether the assignment satisfies every clause.
func (f MonotoneFormula) EvalAssignment(value func(int) bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, v := range c.Vars {
			if value(v) == c.Positive {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// RandomMonotoneSAT generates a random monotone formula with the given
// clause width. Densities around clauses ≈ 2·vars give a mix of
// satisfiable and unsatisfiable instances.
func RandomMonotoneSAT(numVars, numClauses, width int, seed int64) MonotoneFormula {
	r := rand.New(rand.NewSource(seed))
	f := MonotoneFormula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		c := MonotoneClause{Positive: r.Intn(2) == 0}
		seen := map[int]bool{}
		for len(c.Vars) < width {
			v := r.Intn(numVars)
			if !seen[v] {
				seen[v] = true
				c.Vars = append(c.Vars, v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// MonotoneSATQ0DB encodes a monotone CNF formula as an uncertain database
// for q0 = {R0(x | y), S0(y, z | x)} such that
//
//	db ∉ CERTAINTY(q0)  ⟺  the formula is satisfiable.
//
// Construction: each variable v gets an R0 block x_v with the two facts
// R0(x_v | A) ("v false") and R0(x_v | B) ("v true"). A positive clause
// {v1,...,vw} becomes the S0 block keyed (A, z_c) holding the facts
// S0(A, z_c | x_vi): a repair avoids satisfying q0 through this block iff
// the block can pick some x_vi whose R0 choice is not A — i.e. some vi is
// true. Negative clauses use key (B, z_c) symmetrically. A falsifying
// repair therefore exists iff some assignment satisfies every clause,
// which is the Monotone-SAT-based NP-hardness gadget for finding
// falsifying repairs (the complement of CERTAINTY(q0), cf. Kolaitis–Pema).
func MonotoneSATQ0DB(f MonotoneFormula) *db.DB {
	d := db.New()
	xv := func(v int) string { return fmt.Sprintf("x%d", v) }
	for v := 0; v < f.NumVars; v++ {
		mustAdd(d, db.NewFact("R0", 1, xv(v), "A"))
		mustAdd(d, db.NewFact("R0", 1, xv(v), "B"))
	}
	for i, c := range f.Clauses {
		y := "A"
		if !c.Positive {
			y = "B"
		}
		z := fmt.Sprintf("z%d", i)
		for _, v := range c.Vars {
			mustAdd(d, db.NewFact("S0", 2, y, z, xv(v)))
		}
	}
	return d
}

// AssignmentRepair builds the repair of MonotoneSATQ0DB(f) induced by a
// satisfying assignment (used by tests): variable blocks pick their truth
// value, clause blocks pick a witness literal.
func AssignmentRepair(f MonotoneFormula, value func(int) bool) (*db.DB, error) {
	d := db.New()
	xv := func(v int) string { return fmt.Sprintf("x%d", v) }
	for v := 0; v < f.NumVars; v++ {
		y := "A"
		if value(v) {
			y = "B"
		}
		if err := d.Add(db.NewFact("R0", 1, xv(v), y)); err != nil {
			return nil, err
		}
	}
	for i, c := range f.Clauses {
		y := "A"
		if !c.Positive {
			y = "B"
		}
		z := fmt.Sprintf("z%d", i)
		witness := -1
		for _, v := range c.Vars {
			if value(v) == c.Positive {
				witness = v
				break
			}
		}
		if witness < 0 {
			return nil, fmt.Errorf("gen: assignment does not satisfy clause %d", i)
		}
		if err := d.Add(db.NewFact("S0", 2, y, z, xv(witness))); err != nil {
			return nil, err
		}
	}
	return d, nil
}
