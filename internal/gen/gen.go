// Package gen generates workloads: the paper's concrete example databases
// (Fig. 1 and Fig. 6), random uncertain databases for arbitrary queries,
// structured cycle databases for C(k)/AC(k), and random acyclic queries for
// property tests.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// ConferenceDB returns the Fig. 1 uncertain database: uncertainty about the
// city of PODS 2016 and the rank of KDD; four repairs.
func ConferenceDB() *db.DB {
	return db.MustFromFacts(
		db.NewFact("C", 2, "PODS", "2016", "Rome"),
		db.NewFact("C", 2, "PODS", "2016", "Paris"),
		db.NewFact("C", 2, "KDD", "2017", "Rome"),
		db.NewFact("R", 1, "PODS", "A"),
		db.NewFact("R", 1, "KDD", "A"),
		db.NewFact("R", 1, "KDD", "B"),
	)
}

// Figure6DB returns the Fig. 6 database, purified relative to AC(3): a
// 6-vertex tripartite graph whose three clockwise 3-cycles are encoded in
// S3. Figure 7 shows two of its repairs falsifying AC(3), so the database
// is not in CERTAINTY(AC(3)).
func Figure6DB() *db.DB {
	return db.MustFromFacts(
		db.NewFact("R1", 1, "a", "b"),
		db.NewFact("R1", 1, "a", "b'"),
		db.NewFact("R1", 1, "a'", "b"),
		db.NewFact("R2", 1, "b", "c"),
		db.NewFact("R2", 1, "b", "c'"),
		db.NewFact("R2", 1, "b'", "c"),
		db.NewFact("R3", 1, "c", "a"),
		db.NewFact("R3", 1, "c", "a'"),
		db.NewFact("R3", 1, "c'", "a"),
		db.NewFact("S3", 3, "a", "b", "c'"),
		db.NewFact("S3", 3, "a", "b'", "c"),
		db.NewFact("S3", 3, "a'", "b", "c"),
	)
}

// Config controls RandomDB.
type Config struct {
	// Embeddings is the number of random valuations θ whose images θ(q) are
	// inserted, guaranteeing join structure.
	Embeddings int
	// Noise is the number of additional random facts per relation of q.
	Noise int
	// Domain is the active-domain size constants are drawn from.
	Domain int
}

// RandomDB generates an uncertain database for q: Embeddings random images
// of q plus Noise random facts per relation, all over a Domain-sized
// constant pool. Key collisions between inserted facts create the blocks
// that make instances uncertain.
func RandomDB(q cq.Query, cfg Config, seed int64) *db.DB {
	r := rand.New(rand.NewSource(seed))
	d := db.New()
	constant := func() string { return fmt.Sprintf("c%d", r.Intn(cfg.Domain)) }
	vars := q.Vars().Sorted()
	for e := 0; e < cfg.Embeddings; e++ {
		theta := make(cq.Valuation)
		for _, v := range vars {
			theta[v] = constant()
		}
		for _, a := range q.Atoms {
			if f, ok := db.FactFromAtom(a.Substitute(theta)); ok {
				mustAdd(d, f)
			}
		}
	}
	for _, a := range q.Atoms {
		for i := 0; i < cfg.Noise; i++ {
			args := make([]string, a.Arity())
			for j, t := range a.Args {
				if t.IsConst {
					args[j] = t.Value
				} else {
					args[j] = constant()
				}
			}
			mustAdd(d, db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: args})
		}
	}
	return d
}

func mustAdd(d *db.DB, f db.Fact) {
	if err := d.Add(f); err != nil {
		panic(err)
	}
}

// CycleConfig controls CycleDB.
type CycleConfig struct {
	// K is the cycle length (arity of the variable cycle).
	K int
	// Components is the number of disjoint strong components.
	Components int
	// Width is the number of parallel values per position within a
	// component; width w produces w^K potential k-cycles per component.
	Width int
	// EncodeAll marks every k-cycle of the component in S_K; otherwise
	// only the "aligned" cycles (same parallel index at every position) are
	// encoded, leaving k-cycles outside C (so repairs can falsify AC(k)).
	EncodeAll bool
	// SkipSk omits the S_K facts entirely (for C(k) workloads).
	SkipSk bool
}

// CycleDB generates a k-partite cycle database for AC(k)/C(k): per
// component, Width values per position with complete bipartite R_i edges
// between consecutive positions, and S_K facts per EncodeAll. The result is
// purified relative to AC(k)/C(k) by construction (every edge lies on an
// encoded cycle when EncodeAll, and on some k-cycle regardless).
func CycleDB(cfg CycleConfig) *db.DB {
	if cfg.K < 2 || cfg.Width < 1 || cfg.Components < 0 {
		panic(fmt.Sprintf("gen: invalid CycleConfig %+v", cfg))
	}
	d := db.New()
	val := func(comp, pos, idx int) string {
		return fmt.Sprintf("v%d_%d_%d", comp, pos, idx)
	}
	for c := 0; c < cfg.Components; c++ {
		for pos := 0; pos < cfg.K; pos++ {
			rel := fmt.Sprintf("R%d", pos+1)
			next := (pos + 1) % cfg.K
			for i := 0; i < cfg.Width; i++ {
				for j := 0; j < cfg.Width; j++ {
					mustAdd(d, db.NewFact(rel, 1, val(c, pos, i), val(c, next, j)))
				}
			}
		}
		if cfg.SkipSk {
			continue
		}
		rel := fmt.Sprintf("S%d", cfg.K)
		if cfg.EncodeAll {
			// Every combination of per-position indices is a k-cycle.
			idx := make([]int, cfg.K)
			var recurse func(pos int)
			recurse = func(pos int) {
				if pos == cfg.K {
					args := make([]string, cfg.K)
					for p, i := range idx {
						args[p] = val(c, p, i)
					}
					mustAdd(d, db.NewFact(rel, cfg.K, args...))
					return
				}
				for i := 0; i < cfg.Width; i++ {
					idx[pos] = i
					recurse(pos + 1)
				}
			}
			recurse(0)
		} else {
			for i := 0; i < cfg.Width; i++ {
				args := make([]string, cfg.K)
				for p := 0; p < cfg.K; p++ {
					args[p] = val(c, p, i)
				}
				mustAdd(d, db.NewFact(rel, cfg.K, args...))
			}
		}
	}
	return d
}

// Q0DB generates an instance for q0 = {R0(x|y), S0(y,z|x)} with n R0-blocks
// of the given block size; joins are wired randomly, producing instances on
// which certainty is nontrivial.
func Q0DB(n, blockSize, domain int, seed int64) *db.DB {
	r := rand.New(rand.NewSource(seed))
	d := db.New()
	y := func(i int) string { return fmt.Sprintf("y%d", i%domain) }
	z := func(i int) string { return fmt.Sprintf("z%d", i%domain) }
	for i := 0; i < n; i++ {
		x := fmt.Sprintf("x%d", i)
		for b := 0; b < blockSize; b++ {
			yy := y(r.Intn(domain))
			mustAdd(d, db.NewFact("R0", 1, x, yy))
			mustAdd(d, db.NewFact("S0", 2, yy, z(r.Intn(domain)), x))
		}
	}
	return d
}

// RandomAcyclicQuery generates a self-join-free query that has a join tree
// with probability ~1 (each atom shares variables with a single parent); the
// caller must still check acyclicity when variables collide across branches.
func RandomAcyclicQuery(seed int64, maxAtoms int) cq.Query {
	r := rand.New(rand.NewSource(seed))
	n := 1 + r.Intn(maxAtoms)
	fresh := 0
	newVar := func() string { fresh++; return fmt.Sprintf("w%d", fresh) }
	atomVars := make([][]string, n)
	atomVars[0] = []string{newVar(), newVar()}
	for i := 1; i < n; i++ {
		parent := atomVars[r.Intn(i)]
		var vars []string
		for _, v := range parent {
			if r.Intn(2) == 0 {
				vars = append(vars, v)
			}
		}
		if len(vars) == 0 {
			vars = append(vars, parent[r.Intn(len(parent))])
		}
		vars = append(vars, newVar())
		for r.Intn(3) == 0 {
			vars = append(vars, newVar())
		}
		atomVars[i] = vars
	}
	atoms := make([]cq.Atom, n)
	for i, vs := range atomVars {
		args := make([]cq.Term, len(vs))
		for j, v := range vs {
			args[j] = cq.Var(v)
		}
		atoms[i] = cq.Atom{Rel: fmt.Sprintf("Q%d", i), KeyLen: 1 + r.Intn(len(args)), Args: args}
	}
	return cq.Query{Atoms: atoms}
}
