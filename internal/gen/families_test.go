package gen

import (
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/jointree"
)

func TestTerminalPairsQueryStructure(t *testing.T) {
	for _, withRoot := range []bool{false, true} {
		for n := 1; n <= 4; n++ {
			q := TerminalPairsQuery(n, withRoot)
			wantAtoms := 2 * n
			if withRoot {
				wantAtoms++
			}
			if q.Len() != wantAtoms {
				t.Fatalf("n=%d root=%v: %d atoms", n, withRoot, q.Len())
			}
			if q.HasSelfJoin() || !jointree.IsAcyclic(q) {
				t.Fatalf("n=%d root=%v: malformed family query", n, withRoot)
			}
			cls, err := core.Classify(q)
			if err != nil {
				t.Fatalf("n=%d root=%v: %v", n, withRoot, err)
			}
			if cls.Class != core.ClassPTimeTerminal {
				t.Errorf("n=%d root=%v: class %v, want terminal P", n, withRoot, cls.Class)
			}
			g := cls.Graph
			if got := len(g.TerminalWeakCycles()); got != n {
				t.Errorf("n=%d root=%v: %d cycles, want %d", n, withRoot, got, n)
			}
			un := g.Unattacked()
			if withRoot {
				if len(un) != 1 || q.Atoms[un[0]].Rel != "R0" {
					t.Errorf("n=%d: unattacked = %v", n, un)
				}
			} else if len(un) != 0 {
				t.Errorf("n=%d: expected no unattacked atom, got %v", n, un)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("n=0 must panic")
			}
		}()
		TerminalPairsQuery(0, false)
	}()
}

func TestOpenCaseQueryStructure(t *testing.T) {
	q := OpenCaseQuery()
	cls, err := core.Classify(q)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Class != core.ClassOpenConjecturedPTime {
		t.Fatalf("class = %v, want open", cls.Class)
	}
	g := cls.Graph
	// R1 ⇄ R2 weak cycle, nonterminal because both attack S.
	if g.HasStrongCycle() {
		t.Error("no strong cycle expected")
	}
	if g.AllCyclesWeakAndTerminal() {
		t.Error("the cycle must be nonterminal")
	}
	if _, isACk := core.MatchCycleShape(q, true); isACk {
		t.Error("must not match AC(k)")
	}
}
