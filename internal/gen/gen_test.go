package gen

import (
	"math/big"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/jointree"
)

func TestConferenceDB(t *testing.T) {
	d := ConferenceDB()
	if d.Len() != 6 || d.NumBlocks() != 4 {
		t.Errorf("Fig.1 shape: %d facts, %d blocks", d.Len(), d.NumBlocks())
	}
	if d.NumRepairs().Cmp(big.NewInt(4)) != 0 {
		t.Errorf("Fig.1 has 4 repairs, got %v", d.NumRepairs())
	}
}

func TestFigure6DBPurified(t *testing.T) {
	d := Figure6DB()
	if d.Len() != 12 {
		t.Fatalf("Fig.6 has 12 facts, got %d", d.Len())
	}
	q := cq.ACk(3)
	if !engine.IsPurified(q, d) {
		t.Error("Fig.6 database must be purified relative to AC(3) (the caption says so)")
	}
	// 3 blocks of size 2 for R1..R3? R1 has blocks {a:2, a':1}; repairs =
	// 2*2*2 * singletons = 8.
	if d.NumRepairs().Cmp(big.NewInt(8)) != 0 {
		t.Errorf("Fig.6 repairs = %v, want 8", d.NumRepairs())
	}
}

func TestRandomDBDeterministic(t *testing.T) {
	q := cq.Q0()
	a := RandomDB(q, Config{Embeddings: 3, Noise: 2, Domain: 3}, 7)
	b := RandomDB(q, Config{Embeddings: 3, Noise: 2, Domain: 3}, 7)
	if !a.Equal(b) {
		t.Error("same seed must give the same database")
	}
	c := RandomDB(q, Config{Embeddings: 3, Noise: 2, Domain: 3}, 8)
	if a.Equal(c) {
		t.Error("different seeds should differ (overwhelmingly)")
	}
	// Every relation of q appears.
	for _, atom := range q.Atoms {
		if len(a.FactsOf(atom.Rel)) == 0 {
			t.Errorf("relation %s missing", atom.Rel)
		}
	}
}

func TestRandomDBRespectsConstants(t *testing.T) {
	q := cq.ConferenceQuery()
	d := RandomDB(q, Config{Embeddings: 2, Noise: 2, Domain: 2}, 1)
	for _, f := range d.FactsOf("C") {
		if f.Args[2] != "Rome" {
			t.Errorf("constant position must hold 'Rome': %s", f)
		}
	}
}

func TestCycleDB(t *testing.T) {
	d := CycleDB(CycleConfig{K: 3, Components: 2, Width: 1, EncodeAll: true})
	// Per component: 3 edges + 1 S3 fact.
	if d.Len() != 2*(3+1) {
		t.Errorf("width-1 size = %d", d.Len())
	}
	if !engine.IsPurified(cq.ACk(3), d) {
		t.Error("width-1 encoded CycleDB must be purified")
	}
	d2 := CycleDB(CycleConfig{K: 3, Components: 1, Width: 2, EncodeAll: true})
	// 3 positions × 4 edges + 8 S3 facts.
	if d2.Len() != 12+8 {
		t.Errorf("width-2 size = %d", d2.Len())
	}
	if !engine.IsPurified(cq.ACk(3), d2) {
		t.Error("width-2 EncodeAll CycleDB must be purified")
	}
	d3 := CycleDB(CycleConfig{K: 3, Components: 1, Width: 2, SkipSk: true})
	if len(d3.FactsOf("S3")) != 0 {
		t.Error("SkipSk must omit S3")
	}
	if !engine.IsPurified(cq.Ck(3), d3) {
		t.Error("SkipSk CycleDB must be purified relative to C(3)")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid config must panic")
			}
		}()
		CycleDB(CycleConfig{K: 1, Width: 1})
	}()
}

func TestQ0DBShape(t *testing.T) {
	d := Q0DB(3, 2, 2, 5)
	if len(d.FactsOf("R0")) == 0 || len(d.FactsOf("S0")) == 0 {
		t.Error("Q0DB must populate both relations")
	}
	// R0 blocks: one per i (0..2), at most blockSize facts each.
	count := 0
	for _, blk := range d.Blocks() {
		if blk[0].Rel == "R0" {
			count++
			if len(blk) > 2 {
				t.Errorf("R0 block too large: %v", blk)
			}
		}
	}
	if count != 3 {
		t.Errorf("expected 3 R0 blocks, got %d", count)
	}
}

func TestRandomAcyclicQueryUsuallyAcyclic(t *testing.T) {
	acyclic := 0
	for seed := int64(0); seed < 100; seed++ {
		q := RandomAcyclicQuery(seed, 5)
		if err := q.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if q.HasSelfJoin() {
			t.Fatalf("seed %d: self-join", seed)
		}
		if jointree.IsAcyclic(q) {
			acyclic++
		}
	}
	if acyclic < 90 {
		t.Errorf("only %d/100 generated queries acyclic", acyclic)
	}
}
