package gen

import (
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
)

// TerminalPairsQuery generalizes the Fig. 4 query to n weak terminal
// 2-cycles chained by shared key variables: pair i consists of
//
//	Fi(l_i, l_{i+1}, a_i | b_i)   and   Gi(l_i, l_{i+1}, b_i | a_i)
//
// so consecutive pairs share the link variable l_{i+1} (inside both keys,
// as Lemma 7 requires). With withRoot, an unattacked atom R0(w | l_0) is
// prepended, exercising the induction step of Theorem 3 before the base
// case. The attack graph consists of exactly n weak terminal 2-cycles
// (plus the unattacked root).
func TerminalPairsQuery(n int, withRoot bool) cq.Query {
	if n < 1 {
		panic("gen: TerminalPairsQuery requires n >= 1")
	}
	var atoms []cq.Atom
	link := func(i int) cq.Term { return cq.Var(fmt.Sprintf("l%d", i)) }
	if withRoot {
		atoms = append(atoms, cq.NewAtom("R0", 1, cq.Var("w"), link(0)))
	}
	for i := 0; i < n; i++ {
		a := cq.Var(fmt.Sprintf("a%d", i))
		b := cq.Var(fmt.Sprintf("b%d", i))
		atoms = append(atoms,
			cq.NewAtom(fmt.Sprintf("F%d", i), 3, link(i), link(i+1), a, b),
			cq.NewAtom(fmt.Sprintf("G%d", i), 3, link(i), link(i+1), b, a),
		)
	}
	return cq.Query{Atoms: atoms}
}

// OpenCaseQuery returns an acyclic query whose attack graph has a weak
// *nonterminal* cycle and no strong cycle, and which is not AC(k) — the
// exact case Theorems 2–4 leave open (Section 6.2; Conjecture 1 holds it
// to be in P):
//
//	{R1(x | y), R2(y | x), S(x, y | z)}
//
// R1 ⇄ R2 is a weak cycle, and both attack S (making the cycle
// nonterminal) while S attacks nothing.
func OpenCaseQuery() cq.Query {
	return cq.NewQuery(
		cq.NewAtom("R1", 1, cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R2", 1, cq.Var("y"), cq.Var("x")),
		cq.NewAtom("S", 2, cq.Var("x"), cq.Var("y"), cq.Var("z")),
	)
}

// EnumerateTwoAtomQueries yields every two-atom self-join-free query with
// arities 1..maxArity and variables drawn from x, y, z (no constants),
// covering all key lengths — the domain of the Kolaitis–Pema dichotomy.
// At maxArity 3 there are 102² = 10404 shapes.
func EnumerateTwoAtomQueries(maxArity int, visit func(q cq.Query)) {
	vars := []cq.Term{cq.Var("x"), cq.Var("y"), cq.Var("z")}
	var atoms []cq.Atom
	for arity := 1; arity <= maxArity; arity++ {
		args := make([]cq.Term, arity)
		var rec func(i int)
		rec = func(i int) {
			if i == arity {
				for keyLen := 1; keyLen <= arity; keyLen++ {
					atoms = append(atoms, cq.Atom{
						Rel: "", KeyLen: keyLen, Args: append([]cq.Term(nil), args...),
					})
				}
				return
			}
			for _, v := range vars {
				args[i] = v
				rec(i + 1)
			}
		}
		rec(0)
	}
	for _, f := range atoms {
		for _, g := range atoms {
			fa, ga := f, g
			fa.Rel, ga.Rel = "R", "S"
			visit(cq.Query{Atoms: []cq.Atom{fa, ga}})
		}
	}
}
