package gen

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
)

func TestMonotoneFormulaEval(t *testing.T) {
	f := MonotoneFormula{
		NumVars: 3,
		Clauses: []MonotoneClause{
			{Positive: true, Vars: []int{0, 1}},  // v0 ∨ v1
			{Positive: false, Vars: []int{1, 2}}, // ¬v1 ∨ ¬v2
		},
	}
	if !f.EvalAssignment(func(v int) bool { return v == 0 }) {
		t.Error("v0=T satisfies both clauses")
	}
	if f.EvalAssignment(func(v int) bool { return v != 0 }) {
		t.Error("v1=v2=T violates the negative clause")
	}
	if !f.Satisfiable() {
		t.Error("formula is satisfiable")
	}
	unsat := MonotoneFormula{
		NumVars: 1,
		Clauses: []MonotoneClause{
			{Positive: true, Vars: []int{0}},
			{Positive: false, Vars: []int{0}},
		},
	}
	if unsat.Satisfiable() {
		t.Error("v0 ∧ ¬v0 is unsatisfiable")
	}
}

func TestMonotoneSATQ0DBShape(t *testing.T) {
	f := RandomMonotoneSAT(4, 6, 3, 1)
	d := MonotoneSATQ0DB(f)
	if got := len(d.FactsOf("R0")); got != 8 {
		t.Errorf("R0 facts = %d, want 2·4", got)
	}
	if got := len(d.FactsOf("S0")); got != 18 {
		t.Errorf("S0 facts = %d, want 6·3", got)
	}
	// Deterministic for a fixed seed.
	if !MonotoneSATQ0DB(RandomMonotoneSAT(4, 6, 3, 1)).Equal(d) {
		t.Error("generator must be deterministic")
	}
}

// TestSATReductionCorrect is the gadget's soundness check:
// satisfiable ⟺ not certain (a falsifying repair exists).
func TestSATReductionCorrect(t *testing.T) {
	q0 := cq.Q0()
	for seed := int64(0); seed < 40; seed++ {
		f := RandomMonotoneSAT(4, 5, 2, seed)
		d := MonotoneSATQ0DB(f)
		sat := f.Satisfiable()
		certain := true
		d.EachRepair(func(rep []db.Fact) bool {
			if !engine.EvalRepair(q0, rep) {
				certain = false
				return false
			}
			return true
		})
		if certain == sat {
			t.Errorf("seed %d: satisfiable=%v but certain=%v\nformula: %+v", seed, sat, certain, f)
		}
	}
}

// TestAssignmentRepairFalsifies: a satisfying assignment's induced repair
// is a genuine repair of the encoding and falsifies q0.
func TestAssignmentRepairFalsifies(t *testing.T) {
	q0 := cq.Q0()
	f := MonotoneFormula{
		NumVars: 3,
		Clauses: []MonotoneClause{
			{Positive: true, Vars: []int{0, 1}},
			{Positive: false, Vars: []int{1, 2}},
		},
	}
	value := func(v int) bool { return v == 0 }
	full := MonotoneSATQ0DB(f)
	rep, err := AssignmentRepair(f, value)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsConsistent() {
		t.Error("induced repair must be consistent")
	}
	if rep.NumBlocks() != full.NumBlocks() {
		t.Errorf("induced repair must cover all blocks: %d vs %d", rep.NumBlocks(), full.NumBlocks())
	}
	for _, fact := range rep.Facts() {
		if !full.Has(fact) {
			t.Errorf("fact %s outside encoding", fact)
		}
	}
	if engine.Eval(q0, rep) {
		t.Error("induced repair must falsify q0")
	}
	// An assignment violating a clause is rejected.
	if _, err := AssignmentRepair(f, func(int) bool { return false }); err == nil {
		t.Error("non-satisfying assignment must be rejected")
	}
}
