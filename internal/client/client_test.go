package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/solver"
)

// scriptedServer answers each attempt from the script, then serves the
// final handler.
func scriptedServer(t *testing.T, script []func(w http.ResponseWriter), final http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1) - 1
		if int(n) < len(script) {
			script[n](w)
			return
		}
		final(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

func writeErrorBody(w http.ResponseWriter, status int, body server.ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func okVerdict(w http.ResponseWriter, _ *http.Request) {
	resp := server.SolveResponse{
		Verdict: solver.Verdict{
			Outcome: solver.OutcomeCertain,
			Result:  solver.Result{Certain: true},
		},
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// testClient returns a client whose backoff sleeps are recorded, not slept.
func testClient(url string) (*Client, *[]time.Duration) {
	c := New(url)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	c.rng = func() float64 { return 1 } // deterministic max jitter
	return c, &slept
}

// TestRetriesShedThenSucceeds: two sheds with Retry-After hints, then a
// verdict. The client must make three attempts and wait at least the hint
// each time.
func TestRetriesShedThenSucceeds(t *testing.T) {
	shed := func(w http.ResponseWriter) {
		writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed, RetryAfterMS: 250})
	}
	ts, calls := scriptedServer(t, []func(http.ResponseWriter){shed, shed}, okVerdict)
	c, slept := testClient(ts.URL)

	resp, err := c.Solve(context.Background(), server.SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !resp.Verdict.Result.Certain {
		t.Fatalf("verdict = %+v, want certain", resp.Verdict)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	for i, d := range *slept {
		if d < 250*time.Millisecond {
			t.Errorf("backoff %d = %v, below the 250ms Retry-After hint", i, d)
		}
	}
}

// TestRetryAfterHeaderFallback: a shed body without the hint still honors
// the standard Retry-After header.
func TestRetryAfterHeaderFallback(t *testing.T) {
	shed := func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "2")
		writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed})
	}
	ts, _ := scriptedServer(t, []func(http.ResponseWriter){shed}, okVerdict)
	c, slept := testClient(ts.URL)
	if _, err := c.Solve(context.Background(), server.SolveRequest{Query: "R(x | y)", DB: "R(a | b)"}); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] < 2*time.Second {
		t.Fatalf("slept %v, want one wait of at least the 2s header hint", *slept)
	}
}

// TestRetryAfterDelay locks the RFC 9110 §10.2.3 parse: delta-seconds and
// HTTP-date are both accepted, a past date means zero delay (retry now),
// and malformed values report !ok so the backoff schedule alone applies.
func TestRetryAfterDelay(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		value string
		want  time.Duration
		ok    bool
	}{
		{"120", 120 * time.Second, true},
		{" 3 ", 3 * time.Second, true}, // tolerant of stray whitespace
		{"0", 0, true},
		{now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second, true},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0, true}, // past date: retry now
		{"-5", 0, false},
		{"soon", 0, false},
		{"2026-08-08T12:00:30Z", 0, false}, // RFC 3339 is not an HTTP-date
		{"", 0, false},
	}
	for _, tc := range cases {
		d, ok := retryAfterDelay(tc.value, now)
		if d != tc.want || ok != tc.ok {
			t.Errorf("retryAfterDelay(%q) = %v, %v; want %v, %v", tc.value, d, ok, tc.want, tc.ok)
		}
	}
}

// TestRetryAfterHTTPDateHeader: a shed response carrying an HTTP-date
// Retry-After header delays the retry until that date, and a malformed
// header falls back to the backoff schedule without stalling the retry.
func TestRetryAfterHTTPDateHeader(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	shedAt := func(header string) func(http.ResponseWriter) {
		return func(w http.ResponseWriter) {
			w.Header().Set("Retry-After", header)
			writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed})
		}
	}

	ts, _ := scriptedServer(t, []func(http.ResponseWriter){shedAt(now.Add(3 * time.Second).Format(http.TimeFormat))}, okVerdict)
	c, slept := testClient(ts.URL)
	c.now = func() time.Time { return now }
	if _, err := c.Solve(context.Background(), server.SolveRequest{Query: "R(x | y)", DB: "R(a | b)"}); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] < 3*time.Second {
		t.Fatalf("slept %v, want one wait of at least the 3s HTTP-date hint", *slept)
	}

	// Malformed header: still retried, delay from the backoff schedule
	// alone (base 100ms with full jitter: well under a second).
	ts2, calls := scriptedServer(t, []func(http.ResponseWriter){shedAt("half past soon")}, okVerdict)
	c2, slept2 := testClient(ts2.URL)
	c2.now = func() time.Time { return now }
	if _, err := c2.Solve(context.Background(), server.SolveRequest{Query: "R(x | y)", DB: "R(a | b)"}); err != nil {
		t.Fatalf("Solve with malformed Retry-After: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("attempts = %d, want 2 (malformed hint must not stop the retry)", calls.Load())
	}
	if len(*slept2) != 1 || (*slept2)[0] > time.Second {
		t.Fatalf("slept %v, want one schedule-driven wait under 1s", *slept2)
	}
}

// TestPermanentErrorsNotRetried: each permanent code gets exactly one
// attempt and surfaces as *server.ErrorBody.
func TestPermanentErrorsNotRetried(t *testing.T) {
	for _, code := range []string{server.CodeMalformed, server.CodeUnsupported, server.CodePolicy} {
		t.Run(code, func(t *testing.T) {
			status := http.StatusBadRequest
			if code != server.CodeMalformed {
				status = http.StatusUnprocessableEntity
			}
			ts, calls := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
				writeErrorBody(w, status, server.ErrorBody{Code: code, Message: "no"})
			})
			c, slept := testClient(ts.URL)
			_, err := c.Solve(context.Background(), server.SolveRequest{})
			var body *server.ErrorBody
			if !errors.As(err, &body) || body.Code != code {
				t.Fatalf("err = %v, want ErrorBody with code %q", err, code)
			}
			if calls.Load() != 1 || len(*slept) != 0 {
				t.Fatalf("attempts = %d, sleeps = %d; permanent errors must not be retried", calls.Load(), len(*slept))
			}
		})
	}
}

// TestRetriesExhausted: a server that always sheds makes the client give up
// after MaxRetries+1 attempts with the last error.
func TestRetriesExhausted(t *testing.T) {
	ts, calls := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		writeErrorBody(w, http.StatusServiceUnavailable, server.ErrorBody{Code: server.CodeShutdown})
	})
	c, _ := testClient(ts.URL)
	c.MaxRetries = 2
	_, err := c.Solve(context.Background(), server.SolveRequest{})
	var body *server.ErrorBody
	if !errors.As(err, &body) || body.Code != server.CodeShutdown {
		t.Fatalf("err = %v, want the last shutdown error", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestCancelDuringBackoff: a context cancelled while waiting out a backoff
// aborts the retry loop with the context error.
func TestCancelDuringBackoff(t *testing.T) {
	ts, _ := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed})
	})
	c := New(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := c.Solve(ctx, server.SolveRequest{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

// TestTransportErrorRetried: connection failures are transient.
func TestTransportErrorRetried(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listens now
	c, slept := testClient(ts.URL)
	c.MaxRetries = 2
	_, err := c.Solve(context.Background(), server.SolveRequest{})
	if err == nil {
		t.Fatal("want a transport error")
	}
	if len(*slept) != 2 {
		t.Fatalf("sleeps = %d, want 2 retries of a transport error", len(*slept))
	}
}

// TestBackoffGrowsAndCaps: without server hints the delays grow
// exponentially from BaseBackoff and cap at MaxBackoff.
func TestBackoffGrowsAndCaps(t *testing.T) {
	ts, _ := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		writeErrorBody(w, http.StatusInternalServerError, server.ErrorBody{Code: server.CodeInternal})
	})
	c, slept := testClient(ts.URL)
	c.MaxRetries = 4
	c.BaseBackoff = 100 * time.Millisecond
	c.MaxBackoff = 400 * time.Millisecond
	_, _ = c.Solve(context.Background(), server.SolveRequest{})
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("sleeps = %v, want %d of them", *slept, len(want))
	}
	for i, d := range *slept {
		if d != want[i] { // rng()==1 → jitter keeps the full delay
			t.Errorf("backoff %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestRemoteMatchesLocal runs a real server and checks the remote verdict
// — outcome, result, evidence, and the errors.Is-matchable cutoff cause —
// is identical to a local solve, for both an exact FO solve and a governed
// coNP cutoff.
func TestRemoteMatchesLocal(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)

	cases := []struct {
		name string
		req  server.SolveRequest
	}{
		{"fo-exact", server.SolveRequest{Query: "R(x | y)", DB: "R(a | b), R(a | c)"}},
		{"conp-cutoff", server.SolveRequest{
			Query: "R0(x | y), S0(y, z | x)", DB: oddRingText(21),
			Budget: 60, DegradeSamples: 50, SampleSeed: 1,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := c.Solve(context.Background(), tc.req)
			if err != nil {
				t.Fatalf("remote Solve: %v", err)
			}
			local := solveLocally(t, tc.req)
			remote := resp.Verdict
			if remote.Outcome != local.Outcome {
				t.Errorf("outcome: remote %v, local %v", remote.Outcome, local.Outcome)
			}
			if remote.Result.Certain != local.Result.Certain || remote.Result.Method != local.Result.Method {
				t.Errorf("result: remote %+v, local %+v", remote.Result, local.Result)
			}
			if (remote.Err == nil) != (local.Err == nil) {
				t.Fatalf("err: remote %v, local %v", remote.Err, local.Err)
			}
			if local.Err != nil && !errors.Is(remote.Err, govern.ErrBudget) {
				t.Errorf("remote err %v is not errors.Is-matchable to the local cutoff cause", remote.Err)
			}
			if (remote.Evidence == nil) != (local.Evidence == nil) {
				t.Fatalf("evidence presence differs: remote %+v, local %+v", remote.Evidence, local.Evidence)
			}
			if local.Evidence != nil && remote.Evidence.Samples != local.Evidence.Samples {
				t.Errorf("samples: remote %d, local %d", remote.Evidence.Samples, local.Evidence.Samples)
			}
		})
	}
}

// TestCompileRoundTrip: Compile retries transient sheds like every other
// call, returns the program against a real server, and surfaces the non-FO
// unsupported error permanently (one attempt, classification attached).
func TestCompileRoundTrip(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)

	for _, dialect := range []string{"sql", "datalog", ""} {
		resp, err := c.Compile(context.Background(), "R(x | y), S(y | z)", dialect)
		if err != nil {
			t.Fatalf("Compile(%q): %v", dialect, err)
		}
		if resp.Program == "" {
			t.Fatalf("Compile(%q) returned an empty program", dialect)
		}
		want := dialect
		if want == "" {
			want = "sql" // server default
		}
		if resp.Dialect != want {
			t.Errorf("dialect = %q, want %q", resp.Dialect, want)
		}
		if resp.Method == "" {
			t.Errorf("Compile(%q) envelope missing method: %+v", dialect, resp.Envelope)
		}
	}

	// Shed once, then succeed: standard retry policy applies to Compile.
	shed := func(w http.ResponseWriter) {
		writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed, RetryAfterMS: 1})
	}
	sts, calls := scriptedServer(t, []func(http.ResponseWriter){shed}, func(w http.ResponseWriter, r *http.Request) {
		srv.Handler().ServeHTTP(w, r)
	})
	rc, slept := testClient(sts.URL)
	if _, err := rc.Compile(context.Background(), "R(x | y)", "sql"); err != nil {
		t.Fatalf("Compile after shed: %v", err)
	}
	if calls.Load() != 2 || len(*slept) != 1 {
		t.Fatalf("attempts = %d, sleeps = %d; want one retry after the shed", calls.Load(), len(*slept))
	}

	// Non-FO: permanent, single attempt, classification attached.
	pts, pcalls := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		srv.Handler().ServeHTTP(w, r)
	})
	pc, pslept := testClient(pts.URL)
	_, err := pc.Compile(context.Background(), "R0(x | y), S0(y, z | x)", "sql")
	if err == nil {
		t.Fatal("Compile of a non-FO query must fail")
	}
	var eb *server.ErrorBody
	if !errors.As(err, &eb) {
		t.Fatalf("err = %v, want *server.ErrorBody", err)
	}
	if eb.Code != server.CodeUnsupported || eb.Class == "" {
		t.Fatalf("error = %+v, want unsupported with a classification", eb)
	}
	if pcalls.Load() != 1 || len(*pslept) != 0 {
		t.Fatalf("attempts = %d, sleeps = %d; unsupported must not be retried", pcalls.Load(), len(*pslept))
	}
}

// TestOversizedResponseNotRetried: a 200 body larger than MaxResponseBytes
// surfaces as a distinct "exceeds ... limit" error after exactly one
// attempt — the same request would yield the same oversized body, so
// retrying is pure extra load.
func TestOversizedResponseNotRetried(t *testing.T) {
	ts, calls := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(make([]byte, 2048))
	})
	c, slept := testClient(ts.URL)
	c.MaxResponseBytes = 1024
	_, err := c.Solve(context.Background(), server.SolveRequest{})
	if err == nil || !strings.Contains(err.Error(), "exceeds 1024 byte limit") {
		t.Fatalf("err = %v, want a response-too-large error", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("attempts = %d, sleeps = %d; oversized responses must not be retried", calls.Load(), len(*slept))
	}
}

// TestResponseExactlyAtLimit: a body of exactly MaxResponseBytes is not a
// violation — the limit+1 sentinel read must not misfire at the boundary.
func TestResponseExactlyAtLimit(t *testing.T) {
	resp := server.SolveResponse{Verdict: solver.Verdict{Outcome: solver.OutcomeCertain, Result: solver.Result{Certain: true}}}
	payload, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	})
	c, _ := testClient(ts.URL)
	c.MaxResponseBytes = int64(len(payload))
	got, err := c.Solve(context.Background(), server.SolveRequest{})
	if err != nil {
		t.Fatalf("Solve at exact limit: %v", err)
	}
	if got.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("verdict = %+v, want certain", got.Verdict)
	}
}
