package client

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/server"
	"github.com/cqa-go/certainty/internal/solver"
)

// oddRingText renders the odd-ring coNP instance for q0 (see
// internal/solver/cancel_test.go) in the textual database format.
func oddRingText(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		xi := fmt.Sprintf("x%d", i)
		xn := fmt.Sprintf("x%d", (i+1)%n)
		zi := fmt.Sprintf("z%d", i)
		fmt.Fprintf(&b, "R0(%s | A)\nR0(%s | B)\n", xi, xi)
		fmt.Fprintf(&b, "S0(A, %s | %s)\nS0(A, %s | %s)\n", zi, xi, zi, xn)
		fmt.Fprintf(&b, "S0(B, %s | %s)\nS0(B, %s | %s)\n", zi, xi, zi, xn)
	}
	return b.String()
}

// solveLocally runs the same request through the in-process solver, for
// comparing remote and local verdicts.
func solveLocally(t *testing.T, req server.SolveRequest) solver.Verdict {
	t.Helper()
	q, err := cq.ParseQuery(req.Query)
	if err != nil {
		t.Fatalf("parse query: %v", err)
	}
	d, err := db.Parse(req.DB)
	if err != nil {
		t.Fatalf("parse db: %v", err)
	}
	v, err := solver.SolveCtx(context.Background(), q, d, solver.Options{
		Budget:         req.Budget,
		Timeout:        time.Duration(req.TimeoutMS) * time.Millisecond,
		DegradeSamples: req.DegradeSamples,
		SampleSeed:     req.SampleSeed,
	})
	if err != nil {
		t.Fatalf("local SolveCtx: %v", err)
	}
	return v
}
