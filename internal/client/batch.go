package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
)

// transientItem reports whether an item-level error is worth retrying as an
// individual solve: shed, shutdown, internal, and fleet-unavailable
// failures are transient; malformed and unsupported items can never
// succeed.
func transientItem(e *server.ErrorBody) bool {
	if e == nil {
		return false
	}
	switch e.Code {
	case server.CodeShed, server.CodeShutdown, server.CodeInternal, server.CodeUnavailable:
		return true
	}
	return false
}

// itemRequest reconstructs the single-solve request equivalent to one batch
// item, resolving the batch-level defaults.
func itemRequest(req server.BatchSolveRequest, i int) server.SolveRequest {
	it := req.Items[i]
	single := server.SolveRequest{
		Query:          it.Query,
		DB:             it.DB,
		TimeoutMS:      req.TimeoutMS,
		Budget:         req.Budget,
		DegradeSamples: req.DegradeSamples,
		SampleSeed:     req.SampleSeed,
	}
	if single.Query == "" {
		single.Query = req.Query
	}
	if single.DB == "" {
		single.DB = req.DB
	}
	return single
}

// retryItems re-solves every result with a transient item-level error as an
// individual /v1/solve call (which brings the client's own backoff-and-retry
// machinery to bear on just that item) and patches the successes back in
// place. Permanent item errors are left as-is.
func (c *Client) retryItems(ctx context.Context, req server.BatchSolveRequest, results []server.BatchItemResult) {
	if c.NoItemRetry {
		return
	}
	for k := range results {
		if !transientItem(results[k].Error) {
			continue
		}
		i := results[k].Index
		if i < 0 || i >= len(req.Items) {
			continue
		}
		c.registry().Counter("client_item_retries_total").Inc()
		resp, err := c.Solve(ctx, itemRequest(req, i))
		if err != nil {
			continue // keep the original transient error
		}
		v := resp.Verdict
		results[k] = server.BatchItemResult{Index: i, Verdict: &v, Cached: resp.Cached}
	}
}

func init() {
	obs.Default.Help("client_item_retries_total", "Batch items re-solved individually after a transient item-level error.")
}

// SolveBatch posts a batch request and returns one result per item, in item
// order. The whole-request retry policy is the same as Solve's; afterwards,
// items that failed with a transient error (shed, shutdown, internal) are
// retried as individual solves — a single poisoned or unlucky item does not
// force the client to resubmit the whole batch.
func (c *Client) SolveBatch(ctx context.Context, req server.BatchSolveRequest) (server.BatchSolveResponse, error) {
	req.Stream = false
	var resp server.BatchSolveResponse
	if err := c.do(ctx, "/v1/solve/batch", req, &resp); err != nil {
		return resp, err
	}
	c.retryItems(ctx, req, resp.Results)
	return resp, nil
}

// SolveStream posts a batch request in streaming mode and invokes fn once
// per item as the server emits it (completion order; use Index to reorder).
// Items that arrive with a transient error are retried as individual solves
// before fn sees them. Once the stream has begun, a mid-stream transport
// failure is returned without retrying the whole batch — items already
// delivered stay delivered.
func (c *Client) SolveStream(ctx context.Context, req server.BatchSolveRequest, fn func(server.BatchItemResult)) error {
	const path = "/v1/solve/batch"
	req.Stream = true
	r := c.registry()
	payload, err := json.Marshal(req)
	if err != nil {
		r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "error"}).Inc()
		return fmt.Errorf("client: encode request: %w", err)
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		r.Counter("client_attempts_total", obs.L{K: "path", V: path}).Inc()
		retry, hint, err := c.streamAttempt(ctx, httpc, path, payload, req, fn)
		if err == nil {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "ok"}).Inc()
			return nil
		}
		lastErr = err
		if !retry || attempt >= c.MaxRetries {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "error"}).Inc()
			return lastErr
		}
		r.Counter("client_retries_total", obs.L{K: "path", V: path}).Inc()
		if err := c.backoff(ctx, attempt, hint); err != nil {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "error"}).Inc()
			return fmt.Errorf("client: giving up after %d attempts: %w (last error: %v)", attempt+1, err, lastErr)
		}
	}
}

// streamAttempt sends the streaming request once and pumps NDJSON lines to
// fn. Failures before the first delivered item may be retried; after that
// the attempt is not retryable (retry=false) so delivered items are never
// replayed.
func (c *Client) streamAttempt(ctx context.Context, httpc *http.Client, path string, payload []byte, req server.BatchSolveRequest, fn func(server.BatchItemResult)) (retry bool, hint time.Duration, err error) {
	hreq, err := http.NewRequestWithContext(ctx, "POST", c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return false, 0, fmt.Errorf("client: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "application/x-ndjson")
	resp, err := httpc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return false, 0, ctx.Err()
		}
		return true, 0, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		limit := c.MaxResponseBytes
		if limit <= 0 {
			limit = 64 << 20
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, limit))
		body := new(server.ErrorBody)
		if json.Unmarshal(data, body) != nil || body.Code == "" {
			retryOK, h := retryable(resp.StatusCode, nil)
			return retryOK, h, fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, data)
		}
		c.fillRetryHint(body, resp.Header)
		retryOK, h := retryable(resp.StatusCode, body)
		return retryOK, h, body
	}

	sc := bufio.NewScanner(resp.Body)
	maxLine := int(c.MaxResponseBytes)
	if maxLine <= 0 {
		maxLine = 64 << 20
	}
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	delivered := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item server.BatchItemResult
		if err := json.Unmarshal(line, &item); err != nil {
			return false, 0, fmt.Errorf("client: decode stream item: %w", err)
		}
		if transientItem(item.Error) && !c.NoItemRetry {
			// Per-item retry, inline: the stream stays ordered from fn's
			// point of view, the item just took the single-solve detour.
			if sresp, serr := c.Solve(ctx, itemRequest(req, item.Index)); serr == nil {
				v := sresp.Verdict
				item = server.BatchItemResult{Index: item.Index, Verdict: &v, Cached: sresp.Cached}
			}
		}
		delivered = true
		fn(item)
	}
	if err := sc.Err(); err != nil {
		// A torn stream is retryable only if nothing was delivered yet.
		return !delivered, 0, fmt.Errorf("client: read stream: %w", err)
	}
	return false, 0, nil
}
