package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"

	"github.com/cqa-go/certainty/internal/server"
)

func uptr(v uint64) *uint64 { return &v }

// okMutate answers any mutation with a fixed version/applied pair and
// records the method and decoded body of the request it served.
func okMutate(t *testing.T, version uint64, applied int, gotMethod *string, gotReq *server.DBMutateRequest) http.HandlerFunc {
	t.Helper()
	return func(w http.ResponseWriter, r *http.Request) {
		if gotMethod != nil {
			*gotMethod = r.Method
		}
		if gotReq != nil {
			data, _ := io.ReadAll(r.Body)
			if err := json.Unmarshal(data, gotReq); err != nil {
				t.Errorf("server: decode mutate body: %v", err)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.DBMutateResponse{Version: version, Applied: applied})
	}
}

// TestInsertFactsCASRetriesTransient: a CAS-carrying insert is safe to
// resend, so a read-only 503 and a shed 429 are both retried and the
// third attempt's success is returned.
func TestInsertFactsCASRetriesTransient(t *testing.T) {
	readOnly := func(w http.ResponseWriter) {
		writeErrorBody(w, http.StatusServiceUnavailable, server.ErrorBody{Code: server.CodeReadOnly, RetryAfterMS: 50})
	}
	shed := func(w http.ResponseWriter) {
		writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed})
	}
	var method string
	var req server.DBMutateRequest
	ts, calls := scriptedServer(t, []func(http.ResponseWriter){readOnly, shed}, okMutate(t, 4, 2, &method, &req))
	c, slept := testClient(ts.URL)

	resp, err := c.InsertFacts(context.Background(), "R(a | b) R(c | d)", uptr(3))
	if err != nil {
		t.Fatalf("InsertFacts: %v", err)
	}
	if resp.Version != 4 || resp.Applied != 2 {
		t.Fatalf("resp = %+v, want version 4 applied 2", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("backoffs = %d, want 2", len(*slept))
	}
	if method != http.MethodPost {
		t.Fatalf("method = %q, want POST", method)
	}
	if req.IfVersion == nil || *req.IfVersion != 3 {
		t.Fatalf("if_version on the wire = %v, want 3", req.IfVersion)
	}
}

// TestUnconditionalMutationSingleAttempt: without IfVersion a resend
// could double-apply, so even a normally-retryable failure gets exactly
// one attempt and no backoff.
func TestUnconditionalMutationSingleAttempt(t *testing.T) {
	shed := func(w http.ResponseWriter) {
		writeErrorBody(w, http.StatusTooManyRequests, server.ErrorBody{Code: server.CodeShed})
	}
	ts, calls := scriptedServer(t, []func(http.ResponseWriter){shed}, okMutate(t, 1, 1, nil, nil))
	c, slept := testClient(ts.URL)

	_, err := c.InsertFacts(context.Background(), "R(a | b)", nil)
	if err == nil {
		t.Fatal("InsertFacts: want error, got success")
	}
	var body *server.ErrorBody
	if !errors.As(err, &body) || body.Code != server.CodeShed {
		t.Fatalf("err = %v, want shed ErrorBody", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want exactly 1 for unconditional mutation", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("backoffs = %d, want 0", len(*slept))
	}
}

// TestVersionConflictPermanent: a 409 conflict is never retried — even
// on a CAS mutation with retries to spare — and surfaces as an
// errors.Is-matchable ErrVersionConflict carrying both versions.
func TestVersionConflictPermanent(t *testing.T) {
	conflict := func(w http.ResponseWriter) {
		writeErrorBody(w, http.StatusConflict, server.ErrorBody{
			Code:    server.CodeConflict,
			Message: "version conflict",
			Version: 7,
		})
	}
	ts, calls := scriptedServer(t, []func(http.ResponseWriter){conflict}, okMutate(t, 8, 1, nil, nil))
	c, slept := testClient(ts.URL)

	_, err := c.DeleteFacts(context.Background(), "R(a | b)", uptr(3))
	if err == nil {
		t.Fatal("DeleteFacts: want conflict error, got success")
	}
	if !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("errors.Is(err, ErrVersionConflict) = false for %v", err)
	}
	var vc *VersionConflictError
	if !errors.As(err, &vc) {
		t.Fatalf("errors.As *VersionConflictError = false for %v", err)
	}
	if vc.Want != 3 || vc.Have != 7 {
		t.Fatalf("conflict = want %d have %d, expected want 3 have 7", vc.Want, vc.Have)
	}
	var body *server.ErrorBody
	if !errors.As(err, &body) || body.Code != server.CodeConflict {
		t.Fatalf("conflict should unwrap to the server ErrorBody, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1: conflicts must never be retried", got)
	}
	if len(*slept) != 0 {
		t.Fatalf("backoffs = %d, want 0", len(*slept))
	}
}

// TestDeleteFactsUsesDelete: deletions go over the wire as HTTP DELETE
// on the same /v1/db/facts resource.
func TestDeleteFactsUsesDelete(t *testing.T) {
	var method string
	var req server.DBMutateRequest
	ts, _ := scriptedServer(t, nil, okMutate(t, 2, 1, &method, &req))
	c, _ := testClient(ts.URL)

	resp, err := c.DeleteFacts(context.Background(), "R(a | b)", uptr(1))
	if err != nil {
		t.Fatalf("DeleteFacts: %v", err)
	}
	if method != http.MethodDelete {
		t.Fatalf("method = %q, want DELETE", method)
	}
	if req.Facts != "R(a | b)" {
		t.Fatalf("facts on the wire = %q", req.Facts)
	}
	if resp.Version != 2 {
		t.Fatalf("version = %d, want 2", resp.Version)
	}
}

// TestGetDB: metadata reads hit GET /v1/db, with facts=1 opting into
// the full dump.
func TestGetDB(t *testing.T) {
	var method, query string
	ts, _ := scriptedServer(t, nil, func(w http.ResponseWriter, r *http.Request) {
		method, query = r.Method, r.URL.RawQuery
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(server.DBGetResponse{Version: 9, NumFacts: 2, Facts: "R(a | b)"})
	})
	c, _ := testClient(ts.URL)

	resp, err := c.GetDB(context.Background(), true)
	if err != nil {
		t.Fatalf("GetDB: %v", err)
	}
	if method != http.MethodGet || query != "facts=1" {
		t.Fatalf("request = %s ?%s, want GET ?facts=1", method, query)
	}
	if resp.Version != 9 || resp.Facts != "R(a | b)" {
		t.Fatalf("resp = %+v", resp)
	}
}
