// The /v1/db client surface. Mutations are NOT idempotent from the
// network's point of view — a lost response leaves the client unsure
// whether the write landed — so the retry policy here is stricter than
// for solves:
//
//   - An unconditional mutation (no IfVersion) is sent exactly once.
//     Resending it after an ambiguous failure could apply the change
//     twice at two different versions.
//   - A CAS mutation (IfVersion set) is safe to resend: if the first
//     send actually committed, the server's version moved past
//     IfVersion and the resend fails with a version conflict instead
//     of double-applying. Transient failures are therefore retried.
//   - A version conflict is permanent and never retried: the version
//     the request named is gone for good. Callers match it with
//     errors.Is(err, client.ErrVersionConflict) and re-read the
//     current version before deciding whether their intent still holds.

package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"github.com/cqa-go/certainty/internal/server"
)

// ErrVersionConflict is the errors.Is target for CAS failures on /v1/db
// mutations. The concrete error also carries the server's current
// version; recover it with errors.As into *VersionConflictError.
var ErrVersionConflict = errors.New("client: database version conflict")

// VersionConflictError reports that a conditional mutation named a
// version the server has moved past. It matches ErrVersionConflict via
// errors.Is and unwraps to the server's *server.ErrorBody.
type VersionConflictError struct {
	// Want is the version the request was conditioned on.
	Want uint64
	// Have is the server's version when it rejected the request.
	Have uint64
	body *server.ErrorBody
}

func (e *VersionConflictError) Error() string {
	return fmt.Sprintf("client: version conflict: want %d, server at %d", e.Want, e.Have)
}

func (e *VersionConflictError) Is(target error) bool { return target == ErrVersionConflict }

func (e *VersionConflictError) Unwrap() error { return e.body }

// GetDB fetches the hosted database's metadata (version, size, digest,
// read-only state). With withFacts, the response includes the full fact
// dump in db.Parse-able text form.
func (c *Client) GetDB(ctx context.Context, withFacts bool) (server.DBGetResponse, error) {
	path := "/v1/db"
	if withFacts {
		path += "?facts=1"
	}
	var resp server.DBGetResponse
	err := c.doMethod(ctx, http.MethodGet, path, nil, &resp, true)
	return resp, err
}

// InsertFacts adds the facts in the given db-text to the hosted
// database. A nil ifVersion applies unconditionally (and is sent at
// most once); a non-nil ifVersion makes the mutation conditional on the
// database still being at that version, which also makes transient
// failures safe to retry.
func (c *Client) InsertFacts(ctx context.Context, facts string, ifVersion *uint64) (server.DBMutateResponse, error) {
	return c.mutate(ctx, http.MethodPost, facts, ifVersion)
}

// DeleteFacts removes the facts in the given db-text from the hosted
// database, under the same CAS and retry rules as InsertFacts. Deleting
// an absent fact is not an error; it simply does not count as applied.
func (c *Client) DeleteFacts(ctx context.Context, facts string, ifVersion *uint64) (server.DBMutateResponse, error) {
	return c.mutate(ctx, http.MethodDelete, facts, ifVersion)
}

func (c *Client) mutate(ctx context.Context, method, facts string, ifVersion *uint64) (server.DBMutateResponse, error) {
	req := server.DBMutateRequest{Facts: facts, IfVersion: ifVersion}
	var resp server.DBMutateResponse
	err := c.doMethod(ctx, method, "/v1/db/facts", req, &resp, ifVersion != nil)
	if err != nil {
		var body *server.ErrorBody
		if errors.As(err, &body) && body.Code == server.CodeConflict {
			want := uint64(0)
			if ifVersion != nil {
				want = *ifVersion
			}
			return resp, &VersionConflictError{Want: want, Have: body.Version, body: body}
		}
		return resp, err
	}
	return resp, nil
}
