// Package client is the Go client for certd (internal/server). It speaks
// the same wire types as the server, so a remote solve surfaces the same
// three-valued solver.Verdict — including errors.Is-matchable cutoff causes
// — as a local solver.SolveCtx call.
//
// The client retries transient failures (shed, shutdown, transport errors,
// 5xx) with capped exponential backoff and jitter, honoring the server's
// Retry-After hint as a lower bound on the delay. Permanent errors
// (malformed input, unsupported queries, policy rejections) are never
// retried: the same request can never succeed, so retrying only adds load
// to a service that is already telling us no.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/server"
)

func init() {
	obs.Default.Help("client_requests_total", "Client calls, by endpoint path and final outcome (ok/error).")
	obs.Default.Help("client_attempts_total", "HTTP attempts sent, by endpoint path (includes retries).")
	obs.Default.Help("client_retries_total", "Backoff-and-retry rounds, by endpoint path.")
}

// Client talks to one certd server. The zero value is not usable; call New.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8377".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries is the number of re-attempts after the first try (so a
	// request is sent at most MaxRetries+1 times). Default 3.
	MaxRetries int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Defaults 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxResponseBytes caps how much of a response body the client will
	// read (default 64 MiB). A verdict whose body exceeds it — e.g. one
	// carrying a very large FalsifyingSample database — fails with a
	// distinct "response body exceeds ... limit" error rather than a
	// confusing JSON decode failure.
	MaxResponseBytes int64

	// Registry receives the client's request/attempt/retry counters.
	// Defaults to obs.Default.
	Registry *obs.Registry
	// NoItemRetry disables the batch methods' inline re-solve of items that
	// come back with a transient item-level error. The fleet coordinator
	// sets it: item failures there are failover decisions (try another
	// replica), not retry decisions (hammer the same one).
	NoItemRetry bool

	// Test seams: sleep waits out a backoff (default: timer + ctx), rng
	// drives jitter (default: math/rand global), now anchors Retry-After
	// HTTP-date parsing (default time.Now).
	sleep func(context.Context, time.Duration) error
	rng   func() float64
	now   func() time.Time
}

// registry returns the counter destination, defaulting to the process-wide
// registry.
func (c *Client) registry() *obs.Registry {
	if c.Registry != nil {
		return c.Registry
	}
	return obs.Default
}

// New returns a client with default retry settings.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:     baseURL,
		HTTPClient:  http.DefaultClient,
		MaxRetries:  3,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
	}
}

// Solve posts a solve request and returns the server's response. On a
// non-200 outcome the returned error is (or wraps) *server.ErrorBody.
func (c *Client) Solve(ctx context.Context, req server.SolveRequest) (server.SolveResponse, error) {
	var resp server.SolveResponse
	err := c.do(ctx, "/v1/solve", req, &resp)
	return resp, err
}

// Classify posts a classification request.
func (c *Client) Classify(ctx context.Context, query string) (server.ClassifyResponse, error) {
	var resp server.ClassifyResponse
	err := c.do(ctx, "/v1/classify", server.ClassifyRequest{Query: query}, &resp)
	return resp, err
}

// Compile posts a compile request: the query's consistent first-order
// rewriting lowered to an executable backend program ("sql" or "datalog";
// empty dialect selects SQL). Non-FO queries fail with a permanent
// unsupported error whose ErrorBody.Class carries the classification —
// callers fall back to Solve. Standard retry policy applies (transient
// shed/shutdown errors are retried with backoff).
func (c *Client) Compile(ctx context.Context, query, dialect string) (server.CompileResponse, error) {
	var resp server.CompileResponse
	err := c.do(ctx, "/v1/compile", server.CompileRequest{Query: query, Dialect: dialect}, &resp)
	return resp, err
}

// Ready GETs /readyz once, with no retries: health probes want the current
// answer, not a flattering one. A non-200 (draining, read-only) comes back
// as an error.
func (c *Client) Ready(ctx context.Context) (server.HealthResponse, error) {
	var resp server.HealthResponse
	err := c.doMethod(ctx, http.MethodGet, "/readyz", nil, &resp, false)
	return resp, err
}

// retryable reports whether an error response may succeed on a later
// attempt, and the server's minimum delay hint if it gave one.
func retryable(status int, body *server.ErrorBody) (bool, time.Duration) {
	var hint time.Duration
	if body != nil && body.RetryAfterMS > 0 {
		hint = time.Duration(body.RetryAfterMS) * time.Millisecond
	}
	if body != nil {
		switch body.Code {
		case server.CodeMalformed, server.CodeUnsupported, server.CodePolicy, server.CodeConflict:
			// Conflict is permanent BY DESIGN: the version the request named
			// is gone, so the same request can never succeed. The caller must
			// re-read the version and decide whether its intent still holds.
			return false, 0
		case server.CodeVersionFenced:
			// Fenced is permanent AGAINST THIS NODE: its snapshot version
			// will not change because we ask again. A fleet coordinator
			// fails over to a replica at the right version instead; a bare
			// client must re-decide which version it wants.
			return false, 0
		case server.CodeShed, server.CodeShutdown, server.CodeInternal, server.CodeReadOnly, server.CodeUnavailable:
			return true, hint
		}
	}
	// No recognizable body: fall back on the status class.
	switch {
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		return true, hint
	case status >= 500:
		return true, hint
	default:
		return false, 0
	}
}

// do sends one POST with retries and decodes a 200 body into out.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	return c.doMethod(ctx, http.MethodPost, path, in, out, true)
}

// doMethod sends one JSON request and decodes a 200 body into out. When
// allowRetry is false the request is sent exactly once, whatever the
// failure: the caller has declared it unsafe (or pointless) to resend.
func (c *Client) doMethod(ctx context.Context, method, path string, in, out any, allowRetry bool) error {
	r := c.registry()
	var payload []byte
	if in != nil {
		var err error
		payload, err = json.Marshal(in)
		if err != nil {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "error"}).Inc()
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	httpc := c.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		r.Counter("client_attempts_total", obs.L{K: "path", V: path}).Inc()
		retry, hint, err := c.attempt(ctx, httpc, method, path, payload, out)
		if err == nil {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "ok"}).Inc()
			return nil
		}
		lastErr = err
		if !retry || !allowRetry || attempt >= c.MaxRetries {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "error"}).Inc()
			return lastErr
		}
		r.Counter("client_retries_total", obs.L{K: "path", V: path}).Inc()
		if err := c.backoff(ctx, attempt, hint); err != nil {
			r.Counter("client_requests_total", obs.L{K: "path", V: path}, obs.L{K: "outcome", V: "error"}).Inc()
			return fmt.Errorf("client: giving up after %d attempts: %w (last error: %v)", attempt+1, err, lastErr)
		}
	}
}

// attempt sends the request once. It reports whether a failure is worth
// retrying and any server-provided delay hint.
func (c *Client) attempt(ctx context.Context, httpc *http.Client, method, path string, payload []byte, out any) (retry bool, hint time.Duration, err error) {
	var reqBody io.Reader
	if payload != nil {
		reqBody = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, reqBody)
	if err != nil {
		return false, 0, fmt.Errorf("client: build request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, 0, ctx.Err() // cancellation is not a server failure
		}
		return true, 0, fmt.Errorf("client: %w", err) // transport errors are transient
	}
	defer resp.Body.Close()
	limit := c.MaxResponseBytes
	if limit <= 0 {
		limit = 64 << 20
	}
	// Read one byte past the cap so hitting it is distinguishable from a
	// body that is exactly at it.
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return true, 0, fmt.Errorf("client: read response: %w", err)
	}
	if int64(len(data)) > limit {
		// The same request would produce the same oversized body: permanent.
		return false, 0, fmt.Errorf("client: response body exceeds %d byte limit", limit)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			return false, 0, fmt.Errorf("client: decode response: %w", err)
		}
		return false, 0, nil
	}
	body := new(server.ErrorBody)
	if json.Unmarshal(data, body) != nil || body.Code == "" {
		body = nil
	}
	c.fillRetryHint(body, resp.Header)
	retry, hint = retryable(resp.StatusCode, body)
	if body != nil {
		return retry, hint, body
	}
	return retry, hint, fmt.Errorf("client: HTTP %d: %s", resp.StatusCode, data)
}

// fillRetryHint backfills an error body's RetryAfterMS from the standard
// Retry-After header when the body carried none. No-op without a decoded
// body: the hint rides the body into retryable().
func (c *Client) fillRetryHint(body *server.ErrorBody, h http.Header) {
	if body == nil || body.RetryAfterMS != 0 {
		return
	}
	nowf := c.now
	if nowf == nil {
		nowf = time.Now
	}
	if d, ok := retryAfterDelay(h.Get("Retry-After"), nowf()); ok && d > 0 {
		body.RetryAfterMS = d.Milliseconds()
	}
}

// retryAfterDelay parses a Retry-After header value per RFC 9110 §10.2.3:
// either delta-seconds or an HTTP-date. An HTTP-date in the past means
// "retry now" — a zero delay, reported ok, because the value was valid. A
// malformed or negative value reports !ok so the caller's own backoff
// schedule alone drives the delay; a server garbling the header should
// slow us down less, not crash the retry loop or stall it.
func retryAfterDelay(value string, now time.Time) (time.Duration, bool) {
	value = strings.TrimSpace(value)
	if value == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(value); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// backoff waits before retry number attempt+1: exponential growth from
// BaseBackoff capped at MaxBackoff, jittered to [50%, 100%] to decorrelate
// competing clients, and never below the server's Retry-After hint.
func (c *Client) backoff(ctx context.Context, attempt int, hint time.Duration) error {
	d := c.BaseBackoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = 5 * time.Second
	}
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	rng := c.rng
	if rng == nil {
		rng = rand.Float64
	}
	d = d/2 + time.Duration(rng()*float64(d/2))
	if d < hint {
		d = hint
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = ctxSleep
	}
	return sleep(ctx, d)
}

// ctxSleep waits for d or until the context ends.
func ctxSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
