package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/server"
)

func batchFixture() server.BatchSolveRequest {
	return server.BatchSolveRequest{
		Query: "R(x | y), S(y | z)",
		Items: []server.BatchSolveItem{
			{DB: "R(a | b) S(b | c)"},
			{DB: "R(a | b) R(a | b2) S(b | c)"},
			{Query: "R(x |", DB: "R(a | b)"},
			{DB: "R(a | b) S(b | c) S(b | c2)"},
		},
	}
}

// TestBatchRoundTrip: the client's batch call against a real server returns
// per-item results matching individual solves.
func TestBatchRoundTrip(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)

	resp, err := c.SolveBatch(context.Background(), batchFixture())
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	wantCertain := []bool{true, false, false, true}
	for i, r := range resp.Results {
		if i == 2 {
			if r.Error == nil || r.Error.Code != server.CodeMalformed {
				t.Errorf("item 2: %+v, want malformed error", r)
			}
			continue
		}
		if r.Error != nil {
			t.Fatalf("item %d: %v", i, r.Error)
		}
		if r.Verdict.Result.Certain != wantCertain[i] {
			t.Errorf("item %d: certain = %v, want %v", i, r.Verdict.Result.Certain, wantCertain[i])
		}
	}
}

// TestStreamRoundTrip: the streaming call delivers every item exactly once
// against a real server.
func TestStreamRoundTrip(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := New(ts.URL)

	seen := make(map[int]int)
	err := c.SolveStream(context.Background(), batchFixture(), func(r server.BatchItemResult) {
		seen[r.Index]++
	})
	if err != nil {
		t.Fatalf("SolveStream: %v", err)
	}
	for i := 0; i < 4; i++ {
		if seen[i] != 1 {
			t.Errorf("item %d delivered %d times, want 1", i, seen[i])
		}
	}
}

// TestBatchPerItemRetry: an item that comes back with a transient
// item-level error is re-solved individually; the caller sees the verdict,
// not the shed.
func TestBatchPerItemRetry(t *testing.T) {
	var solo atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		resp := server.BatchSolveResponse{Results: []server.BatchItemResult{
			{Index: 0, Error: &server.ErrorBody{Code: server.CodeInternal, Message: "worker died"}},
		}}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	})
	real := server.New(server.Config{})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		solo.Add(1)
		real.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	req := server.BatchSolveRequest{
		Query: "R(x | y), S(y | z)",
		Items: []server.BatchSolveItem{{DB: "R(a | b) S(b | c)"}},
	}
	resp, err := c.SolveBatch(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if solo.Load() == 0 {
		t.Fatal("transient item was not retried individually")
	}
	if resp.Results[0].Error != nil || resp.Results[0].Verdict == nil || !resp.Results[0].Verdict.Result.Certain {
		t.Fatalf("result after per-item retry = %+v, want certain verdict", resp.Results[0])
	}
}

// TestBatchPermanentItemNotRetried: malformed items are not re-solved.
func TestBatchPermanentItemNotRetried(t *testing.T) {
	var solo atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		resp := server.BatchSolveResponse{Results: []server.BatchItemResult{
			{Index: 0, Error: &server.ErrorBody{Code: server.CodeMalformed, Message: "query: bad"}},
		}}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(&resp)
	})
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		solo.Add(1)
		http.Error(w, "unexpected", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)

	resp, err := c.SolveBatch(context.Background(), server.BatchSolveRequest{
		Items: []server.BatchSolveItem{{Query: "R(x |", DB: "R(a | b)"}},
	})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if solo.Load() != 0 {
		t.Fatal("permanent item error triggered a pointless retry")
	}
	if resp.Results[0].Error == nil || resp.Results[0].Error.Code != server.CodeMalformed {
		t.Fatalf("result = %+v, want the original malformed error", resp.Results[0])
	}
}

// TestStreamWholeRequestRetry: a shed before any item was delivered retries
// the whole stream.
func TestStreamWholeRequestRetry(t *testing.T) {
	var calls atomic.Int64
	real := server.New(server.Config{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(&server.ErrorBody{Code: server.CodeShed, RetryAfterMS: 1})
			return
		}
		real.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := New(ts.URL)
	c.sleep = func(context.Context, time.Duration) error { return nil }

	var n int
	err := c.SolveStream(context.Background(), batchFixture(), func(server.BatchItemResult) { n++ })
	if err != nil {
		t.Fatalf("SolveStream: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("batch endpoint called %d times, want 2", calls.Load())
	}
	if n != 4 {
		t.Fatalf("delivered %d items, want 4", n)
	}
}
