package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/solver"
	"github.com/cqa-go/certainty/internal/wal"
)

// The /v1/db surface: the durable hosted database. Mutations go through
// the WAL store (internal/wal) — serialized, written ahead, fsynced per
// the store's policy, and only then published — so a 200 means the change
// survives a crash. Reads never block on writes: GET /v1/db and hosted
// solves use the immutable published snapshot.
//
// Mutations deliberately bypass the solve admission queue: they do no
// search work, and the store bounds them by serializing its group commit.
// They still respect draining and register with the drain WaitGroup so
// shutdown waits for in-flight commits to finish writing their responses.

// requireStore resolves the hosted store, answering 404 with a hint when
// the server runs stateless.
func (s *Server) requireStore(w http.ResponseWriter) *wal.Store {
	if s.cfg.Store == nil {
		s.writeError(w, http.StatusNotFound, CodeUnsupported,
			"no hosted database: start certd with -data-dir to enable /v1/db")
		return nil
	}
	return s.cfg.Store
}

func (s *Server) handleDBGet(w http.ResponseWriter, r *http.Request) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	d, v := st.DB()
	ro, _ := st.ReadOnly()
	resp := DBGetResponse{
		Version:   v,
		NumFacts:  d.Len(),
		NumBlocks: d.NumBlocks(),
		Relations: d.Relations(),
		Digest:    d.Digest(),
		ReadOnly:  ro,
	}
	if r.URL.Query().Get("facts") == "1" {
		resp.Facts = d.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDBInsert(w http.ResponseWriter, r *http.Request) {
	s.handleDBMutate(w, r, true)
}

func (s *Server) handleDBDelete(w http.ResponseWriter, r *http.Request) {
	s.handleDBMutate(w, r, false)
}

func (s *Server) handleDBMutate(w http.ResponseWriter, r *http.Request, insert bool) {
	st := s.requireStore(w)
	if st == nil {
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	}
	var req DBMutateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "body: "+err.Error())
		return
	}
	parsed, err := db.Parse(req.Facts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "facts: "+err.Error())
		return
	}
	facts := parsed.Facts()
	if len(facts) == 0 {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "facts: empty fact list")
		return
	}
	ifVersion := int64(-1)
	if req.IfVersion != nil {
		ifVersion = int64(*req.IfVersion)
	}

	// Count mutations into the drain WaitGroup so Drain waits for the
	// commit (and this response) to finish.
	s.wg.Add(1)
	defer s.wg.Done()

	var ins, del []db.Fact
	if insert {
		ins = facts
	} else {
		del = facts
	}
	version, applied, err := st.Mutate(ins, del, ifVersion)
	if err != nil {
		s.writeMutateError(w, err)
		return
	}
	// Block-granular memo invalidation: drop exactly the shard sub-verdicts
	// whose fingerprints cover a touched (relation, block) key. The request's
	// raw facts are a superset of the effective mutation (the store drops
	// no-op inserts/deletes), so their block IDs safely cover everything the
	// commit changed; entries over other blocks — including other blocks of
	// the same relation — survive. Hygiene, not correctness: content
	// fingerprints already miss on changed shards.
	invalidated := 0
	if s.shardMemo != nil && applied > 0 {
		invalidated = s.shardMemo.Invalidate(solver.Delta{Ins: ins, Del: del}.TouchedBlocks())
	}
	op := "insert"
	if !insert {
		op = "delete"
	}
	s.logf("db %s: %d/%d facts applied, version %d, %d memo entries invalidated",
		op, applied, len(facts), version, invalidated)
	writeJSON(w, http.StatusOK, DBMutateResponse{Version: version, Applied: applied})
}

// writeMutateError maps store errors onto the wire taxonomy.
func (s *Server) writeMutateError(w http.ResponseWriter, err error) {
	var conflict *wal.ConflictError
	switch {
	case errors.As(err, &conflict):
		s.writeErrorBody(w, http.StatusConflict, &ErrorBody{
			Code:    CodeConflict,
			Message: err.Error(),
			Version: conflict.Have,
		})
	case errors.Is(err, wal.ErrConflict):
		s.writeError(w, http.StatusConflict, CodeConflict, err.Error())
	case errors.Is(err, wal.ErrReadOnly):
		s.writeError(w, http.StatusServiceUnavailable, CodeReadOnly, err.Error())
	case errors.Is(err, wal.ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, err.Error())
	default:
		// Validation failures (bad facts, signature conflicts): the same
		// request can never succeed.
		s.writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
	}
}
