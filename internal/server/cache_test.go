package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"

	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
)

func decodeStatsz(t *testing.T, s *Server) StatszResponse {
	t.Helper()
	rec := doJSON(t, s, nil, "GET", "/statsz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("statsz = %d", rec.Code)
	}
	var out StatszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestVerdictCacheHit: a repeated (query, db) instance with a conclusive
// verdict is served from the cache with Cached=true, and /statsz shows the
// hit.
func TestVerdictCacheHit(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	req := SolveRequest{Query: "R(x | y)", DB: "R(a | b), R(a | c)"}

	first := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", req))
	if first.Cached {
		t.Fatal("first solve must not be cached")
	}
	if first.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("verdict = %+v, want certain", first.Verdict)
	}

	second := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", req))
	if !second.Cached {
		t.Fatal("second solve must hit the verdict cache")
	}
	if second.Verdict.Outcome != first.Verdict.Outcome || second.Verdict.Result.Certain != first.Verdict.Result.Certain {
		t.Fatalf("cached verdict %+v differs from solved %+v", second.Verdict, first.Verdict)
	}

	// Same query over a renamed-variable body, same facts in another order:
	// canonical key + content digest still hit.
	renamed := SolveRequest{Query: "R(p | q)", DB: "R(a | c), R(a | b)"}
	third := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", renamed))
	if !third.Cached {
		t.Fatal("isomorphic query over the same content must hit")
	}

	// Different content must miss.
	other := SolveRequest{Query: "R(x | y)", DB: "R(a | b)"}
	fourth := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", other))
	if fourth.Cached {
		t.Fatal("different database content must miss")
	}

	st := decodeStatsz(t, s)
	if st.Verdicts.Hits != 2 || st.Verdicts.Len != 2 {
		t.Fatalf("verdict stats = %+v, want 2 hits over 2 entries", st.Verdicts)
	}
	if st.Plans.Len != 1 {
		t.Fatalf("plan stats = %+v, want one compiled plan", st.Plans)
	}
	if st.Classify.Len != 1 {
		t.Fatalf("classify stats = %+v, want one canonical entry", st.Classify)
	}
}

// TestInconclusiveVerdictsNotCached: budget cutoffs must be recomputed —
// they depend on the request's limits.
func TestInconclusiveVerdictsNotCached(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), Policy: govern.Policy{MaxBudget: 1 << 20}})
	hard := SolveRequest{Query: q0Text(), DB: oddRingText(21), Budget: 60, DegradeSamples: 10, SampleSeed: 1}
	for i := 0; i < 2; i++ {
		resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
		if resp.Cached {
			t.Fatalf("request %d: cut-off verdict must not be served from cache", i)
		}
		if !errors.Is(resp.Verdict.Err, govern.ErrBudget) {
			t.Fatalf("request %d err = %v, want budget cutoff", i, resp.Verdict.Err)
		}
	}
	if st := decodeStatsz(t, s); st.Verdicts.Len != 0 {
		t.Fatalf("verdict cache holds %d entries, want 0", st.Verdicts.Len)
	}
}

// TestVerdictCacheBounded: the cache evicts at capacity.
func TestVerdictCacheBounded(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), VerdictCacheSize: 2})
	dbs := []string{"R(a | b)", "R(c | d)", "R(e | f)"}
	for _, body := range dbs {
		decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: body}))
	}
	st := decodeStatsz(t, s)
	if st.Verdicts.Len != 2 || st.Verdicts.Evictions != 1 {
		t.Fatalf("verdict stats = %+v, want len 2 with 1 eviction", st.Verdicts)
	}
	// The evicted (oldest) instance misses and is re-solved.
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: dbs[0]}))
	if resp.Cached {
		t.Fatal("evicted entry must be re-solved")
	}
}

// TestVerdictCacheDisabled: a negative size turns memoization off.
func TestVerdictCacheDisabled(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), VerdictCacheSize: -1})
	req := SolveRequest{Query: "R(x | y)", DB: "R(a | b), R(a | c)"}
	decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", req))
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", req))
	if resp.Cached {
		t.Fatal("verdict caching must be disabled")
	}
	if st := decodeStatsz(t, s); st.Verdicts.Cap != 0 {
		t.Fatalf("disabled cache reports %+v", st.Verdicts)
	}
}

// TestCachesConcurrent hammers the same and distinct instances from many
// goroutines; run under -race this validates the serving-layer locking.
func TestCachesConcurrent(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), Workers: 4})
	reqs := []SolveRequest{
		{Query: "R(x | y)", DB: "R(a | b), R(a | c)"},
		{Query: "R(p | q)", DB: "R(a | c), R(a | b)"},
		{Query: "S(x | y), T(y | z)", DB: "S(a | b), T(b | c)"},
	}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				rec := doJSON(t, s, nil, "POST", "/v1/solve", reqs[(i+j)%len(reqs)])
				if rec.Code != http.StatusOK {
					t.Errorf("status %d: %s", rec.Code, rec.Body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := decodeStatsz(t, s)
	if st.Verdicts.Hits == 0 || st.Plans.Len != 2 {
		t.Fatalf("stats after hammering: %+v", st)
	}
}
