package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/wal"
)

// newStoreServer opens a durable store in a temp dir (on the given FS, or
// the real one when nil) and a server hosting it.
func newStoreServer(t *testing.T, fs wal.FS) (*Server, *wal.Store) {
	t.Helper()
	st, err := wal.Open(wal.Options{
		Dir:      t.TempDir(),
		FS:       fs,
		Fsync:    wal.FsyncAlways,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
		Registry: obs.NewRegistry(),
		Store:    st,
	})
	return s, st
}

func decodeMutate(t *testing.T, rec *httptest.ResponseRecorder) DBMutateResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp DBMutateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode mutate response %s: %v", rec.Body, err)
	}
	return resp
}

func decodeDBGet(t *testing.T, rec *httptest.ResponseRecorder) DBGetResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp DBGetResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode db response %s: %v", rec.Body, err)
	}
	return resp
}

// TestDBEndpoints drives the full /v1/db lifecycle: empty GET, insert,
// hosted solve carrying the version, delete, CAS conflict with the
// current version in the error body.
func TestDBEndpoints(t *testing.T) {
	s, _ := newStoreServer(t, nil)

	if got := decodeDBGet(t, doJSON(t, s, nil, "GET", "/v1/db", nil)); got.Version != 0 || got.NumFacts != 0 {
		t.Fatalf("fresh db = %+v, want version 0, 0 facts", got)
	}

	ins := decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts",
		DBMutateRequest{Facts: "R(a | b) R(a | c) S(a | b)"}))
	if ins.Version != 1 || ins.Applied != 3 {
		t.Fatalf("insert = %+v, want version 1 applied 3", ins)
	}

	got := decodeDBGet(t, doJSON(t, s, nil, "GET", "/v1/db?facts=1", nil))
	if got.Version != 1 || got.NumFacts != 3 || got.NumBlocks != 2 {
		t.Fatalf("db after insert = %+v", got)
	}
	if got.Facts == "" || got.Digest == "" {
		t.Fatalf("facts dump or digest missing: %+v", got)
	}

	// Hosted solve: empty db text uses the durable database and reports
	// which version answered.
	solve := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)"}))
	if !solve.Verdict.Result.Certain {
		t.Fatalf("hosted solve verdict = %+v, want certain (R(a|b), R(a|c) is one block, both bind y)", solve.Verdict)
	}
	if solve.DBVersion == nil || *solve.DBVersion != 1 {
		t.Fatalf("hosted solve DBVersion = %v, want 1", solve.DBVersion)
	}

	del := decodeMutate(t, doJSON(t, s, nil, "DELETE", "/v1/db/facts",
		DBMutateRequest{Facts: "S(a | b)"}))
	if del.Version != 2 || del.Applied != 1 {
		t.Fatalf("delete = %+v, want version 2 applied 1", del)
	}

	// CAS naming a stale version: 409 carrying where the database actually is.
	stale := uint64(1)
	rec := doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(z | z)", IfVersion: &stale})
	body := decodeError(t, rec, http.StatusConflict, CodeConflict)
	if body.Version != 2 {
		t.Fatalf("conflict body version = %d, want 2", body.Version)
	}
	if got := decodeDBGet(t, doJSON(t, s, nil, "GET", "/v1/db", nil)); got.Version != 2 {
		t.Fatalf("rejected CAS must not move the version: %+v", got)
	}

	// Matching CAS commits.
	cur := uint64(2)
	ok := decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(z | z)", IfVersion: &cur}))
	if ok.Version != 3 {
		t.Fatalf("CAS insert = %+v, want version 3", ok)
	}

	// Malformed facts and empty lists are rejected before touching the WAL.
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "not-a-fact(("}),
		http.StatusBadRequest, CodeMalformed)
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: ""}),
		http.StatusBadRequest, CodeMalformed)
}

// TestDBRequiresStore: a stateless server answers every /v1/db route
// with 404 and a hint about -data-dir.
func TestDBRequiresStore(t *testing.T) {
	s := New(Config{})
	for _, rt := range []struct{ method, path string }{
		{"GET", "/v1/db"},
		{"POST", "/v1/db/facts"},
		{"DELETE", "/v1/db/facts"},
	} {
		rec := doJSON(t, s, nil, rt.method, rt.path, DBMutateRequest{Facts: "R(a | b)"})
		decodeError(t, rec, http.StatusNotFound, CodeUnsupported)
	}
	// Without a store an empty db text still means "the empty database",
	// exactly as before the /v1/db surface existed — and no version is
	// reported, because none exists.
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: ""}))
	if resp.Verdict.Result.Certain || resp.DBVersion != nil {
		t.Fatalf("stateless empty-db solve = %+v (version %v), want not certain with no version", resp.Verdict, resp.DBVersion)
	}
}

// TestVerdictCacheSurvivesUnrelatedMutation is the incremental
// invalidation contract: a cached hosted verdict keyed on the query's
// relations outlives writes to OTHER relations and dies on writes to its
// own.
func TestVerdictCacheSurvivesUnrelatedMutation(t *testing.T) {
	s, _ := newStoreServer(t, nil)

	mutate := func(method, facts string) DBMutateResponse {
		t.Helper()
		return decodeMutate(t, doJSON(t, s, nil, method, "/v1/db/facts", DBMutateRequest{Facts: facts}))
	}
	// R(x | 'b') is certain iff every repair keeps a fact with value b:
	// false while block a can choose R(a | c), true once only R(a | b)
	// remains — so recomputation after invalidation is observable.
	solve := func() SolveResponse {
		t.Helper()
		return decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | 'b')"}))
	}

	mutate("POST", "R(a | b) R(a | c) S(s | s)")
	first := solve()
	if first.Cached {
		t.Fatal("first hosted solve must be a cache miss")
	}
	if first.Verdict.Result.Certain {
		t.Fatalf("verdict = %+v, want not certain while R(a | c) is a repair choice", first.Verdict)
	}
	if again := solve(); !again.Cached {
		t.Fatal("second hosted solve must hit the verdict cache")
	}

	// Mutating S cannot change CERTAINTY of a query over R alone: the
	// cache entry survives, but the reported version still moves.
	v2 := mutate("POST", "S(t | t)").Version
	after := solve()
	if !after.Cached {
		t.Fatal("mutating an unrelated relation must not evict the verdict")
	}
	if after.DBVersion == nil || *after.DBVersion != v2 {
		t.Fatalf("cached hosted solve DBVersion = %v, want %d", after.DBVersion, v2)
	}

	// Mutating R must miss AND flip the verdict: with R(a | c) gone the
	// only repair keeps R(a | b), so a stale cached "not certain" here
	// would be a wrong answer, not just a wasted recompute.
	mutate("DELETE", "R(a | c)")
	post := solve()
	if post.Cached {
		t.Fatal("mutating a queried relation must invalidate the cached verdict")
	}
	if !post.Verdict.Result.Certain {
		t.Fatalf("after deleting R(a | c) the verdict must flip to certain, got %+v", post.Verdict)
	}
}

// TestDBReadOnlyDegradation: after a disk fault the server keeps serving
// reads and solves while answering mutations 503 read-only with a
// Retry-After hint.
func TestDBReadOnlyDegradation(t *testing.T) {
	fs := wal.NewFaultFS(wal.OSFS{})
	s, st := newStoreServer(t, fs)

	decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(a | b) R(a | c)"}))

	fs.SetSyncFault(func(string) error { return errors.New("injected: disk on fire") })
	rec := doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(x | y)"})
	body := decodeError(t, rec, http.StatusServiceUnavailable, CodeReadOnly)
	if body.RetryAfterMS <= 0 || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("read-only rejection must hint a retry: body %+v, header %q", body, rec.Header().Get("Retry-After"))
	}
	if ro, _ := st.ReadOnly(); !ro {
		t.Fatal("store must be read-only after the fault")
	}

	// Reads and solves keep serving the last durable version.
	got := decodeDBGet(t, doJSON(t, s, nil, "GET", "/v1/db", nil))
	if !got.ReadOnly || got.Version != 1 || got.NumFacts != 2 {
		t.Fatalf("degraded GET /v1/db = %+v, want read-only at version 1 with 2 facts", got)
	}
	solve := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)"}))
	if !solve.Verdict.Result.Certain || solve.DBVersion == nil || *solve.DBVersion != 1 {
		t.Fatalf("degraded hosted solve = %+v (version %v), want certain at version 1", solve.Verdict, solve.DBVersion)
	}
}

// TestBatchHostedDBPinned: batch items with no db text all see one hosted
// snapshot, and per-item results come back as for inline DBs.
func TestBatchHostedDBPinned(t *testing.T) {
	s, _ := newStoreServer(t, nil)
	decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(a | b) R(a | c)"}))

	// R(x | 'b') separates the two: the hosted db can repair to R(a | c)
	// (not certain), the inline db cannot (certain).
	rec := doJSON(t, s, nil, "POST", "/v1/solve/batch", BatchSolveRequest{
		Query: "R(x | 'b')",
		Items: []BatchSolveItem{{}, {DB: "R(a | b)"}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", rec.Code, rec.Body)
	}
	var resp BatchSolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	hosted, inline := resp.Results[0], resp.Results[1]
	if hosted.Error != nil || hosted.Verdict == nil || hosted.Verdict.Result.Certain {
		t.Fatalf("hosted item = %+v, want not certain (repair can pick R(a | c))", hosted)
	}
	if inline.Error != nil || inline.Verdict == nil || !inline.Verdict.Result.Certain {
		t.Fatalf("inline item = %+v, want certain", inline)
	}
}
