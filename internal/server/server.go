package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/emit"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/intern"
	"github.com/cqa-go/certainty/internal/lru"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/plan"
	"github.com/cqa-go/certainty/internal/solver"
	"github.com/cqa-go/certainty/internal/wal"
)

// Config tunes a Server. The zero value gets sane production defaults from
// New; see the field comments for them.
type Config struct {
	// Workers bounds concurrent solves (default 4). Requests beyond it
	// wait in the admission queue.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// (default 2×Workers). Requests beyond it are shed with 429.
	QueueDepth int
	// Policy clamps client-supplied deadlines and budgets. The zero
	// policy imposes no limits — operators should set maxima.
	Policy govern.Policy
	// RetryAfter is the hint attached to shed and shutdown responses
	// (default 1s).
	RetryAfter time.Duration
	// BreakerThreshold is how many consecutive governor cutoffs on one
	// hard query class trip its circuit breaker (default 3; negative
	// disables breaking).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker short-circuits before
	// allowing a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// MaxBodyBytes caps request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchItems caps how many items one POST /v1/solve/batch request may
	// carry (default 256). Larger batches are rejected with a policy error
	// rather than admitted and half-served.
	MaxBatchItems int
	// DegradeSamples / SampleTimeout bound the Monte-Carlo degradation
	// pass for all requests (0 = solver defaults).
	DegradeSamples int
	SampleTimeout  time.Duration
	// PlanCacheSize bounds the compiled-plan cache (default
	// plan.DefaultCacheSize). Plans are keyed by the query's canonical
	// form and compiled at most once per form, singleflighted across
	// concurrent requests.
	PlanCacheSize int
	// VerdictCacheSize bounds the verdict cache, keyed by (canonical
	// query, database content digest). Only conclusive verdicts are
	// cached — cut-off (OutcomeUnknown) verdicts depend on the request's
	// budget and are always recomputed. Default 4096; negative disables
	// verdict caching.
	VerdictCacheSize int
	// ShardMemoSize bounds the per-shard verdict memo behind delta
	// re-solve (only active with a hosted Store: inline databases are
	// one-shot, so shard memoization cannot pay off). Hosted solves run
	// through the shard decomposition and memoize each shard's conclusive
	// sub-verdict by content fingerprint; a /v1/db mutation invalidates
	// only the entries whose fingerprints cover the touched blocks, so the
	// next solve recomputes exactly the shards that changed. Default
	// solver.DefaultShardMemoSize; negative disables delta re-solve
	// (hosted solves then take the monolithic path).
	ShardMemoSize int
	// Logger, when non-nil, receives one line per solve and lifecycle
	// event.
	Logger *log.Logger
	// Registry receives the server's metrics — request counters and latency
	// histograms labeled by query class and verdict kind, plus the cache
	// counters — and backs GET /metrics. Nil selects obs.Default, so certd
	// exposes the whole process (solver, db, govern, engine) on one page;
	// tests pass their own registry for isolation.
	Registry *obs.Registry
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/ for CPU,
	// heap, and goroutine profiling. Off by default: profiles reveal query
	// shapes and cost, so operators opt in (certd -pprof).
	EnablePprof bool
	// Store, when non-nil, is the durable hosted database (internal/wal):
	// it enables the /v1/db mutation endpoints, and solve requests with an
	// empty DB field run against its current snapshot instead of an empty
	// inline database. The server does not own the store's lifecycle —
	// certd opens it before New and closes it after Drain.
	Store *wal.Store

	// now and solve are test seams: a fake clock for the breaker automaton
	// and a replacement solve function. Nil means real clock / real solver.
	now   func() time.Time
	solve func(context.Context, cq.Query, *db.DB, solver.Options) (solver.Verdict, error)
}

// Server is the resilient CERTAINTY(q) service. Create with New, expose
// via Handler, stop with BeginDrain then Drain.
type Server struct {
	cfg      Config
	classify *core.Cache
	plans    *plan.Cache
	verdicts *verdictCache
	breakers *breakerSet
	mux      *http.ServeMux

	// shardMemo is the delta re-solve state (nil when disabled or
	// stateless); defaultSolve records that cfg.solve was not overridden
	// by a test seam, which is what licenses routing hosted solves
	// through the memoized sharded path.
	shardMemo    *solver.ShardMemo
	defaultSolve bool

	reg        *obs.Registry
	classifyM  *obs.CacheMetrics
	plansM     *obs.CacheMetrics
	verdictsM  *obs.CacheMetrics
	shardMemoM *obs.CacheMetrics
	mInflight  *obs.Gauge
	mQueued    *obs.Gauge

	mInternSymbols *obs.Gauge
	mInternBytes   *obs.Gauge
	mInternHits    *obs.Gauge
	mInternMisses  *obs.Gauge

	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	wg       sync.WaitGroup

	draining    atomic.Bool
	drainCtx    context.Context
	drainCancel context.CancelFunc
}

// Metric names exposed on /metrics.
const (
	metricSolveTotal      = "certd_solve_total"
	metricSolveSeconds    = "certd_solve_seconds"
	metricRejectionsTotal = "certd_rejections_total"
	metricInflight        = "certd_inflight"
	metricQueued          = "certd_queued"
	metricInternSymbols   = "certd_intern_symbols"
	metricInternBytes     = "certd_intern_table_bytes"
	metricInternHits      = "certd_intern_hits"
	metricInternMisses    = "certd_intern_misses"

	metricDeltaReused     = "certd_delta_shards_reused_total"
	metricDeltaRecomputed = "certd_delta_shards_recomputed_total"
)

// New builds a Server from cfg, applying defaults for unset fields.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.VerdictCacheSize == 0 {
		cfg.VerdictCacheSize = 4096
	}
	s := &Server{
		cfg:      cfg,
		classify: core.NewCache(),
		plans:    plan.NewCache(cfg.PlanCacheSize),
		breakers: newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		slots:    make(chan struct{}, cfg.Workers),
	}
	s.reg = cfg.Registry
	if s.reg == nil {
		s.reg = obs.Default
	}
	s.reg.Help(metricSolveTotal, "Solve requests answered, by query class and verdict kind.")
	s.reg.Help(metricSolveSeconds, "Solve latency in seconds, by query class.")
	s.reg.Help(metricRejectionsTotal, "Non-200 responses, by error code.")
	s.reg.Help(metricInflight, "Solves currently executing.")
	s.reg.Help(metricQueued, "Requests waiting for a worker slot.")
	s.reg.Help(metricInternSymbols, "Symbols interned by the hosted database's columnar view.")
	s.reg.Help(metricInternBytes, "Approximate bytes held by the hosted view's symbol table.")
	s.reg.Help(metricInternHits, "Symbol lookups answered by an existing id in the hosted view.")
	s.reg.Help(metricInternMisses, "Symbol lookups that interned a new id in the hosted view.")
	s.mInflight = s.reg.Gauge(metricInflight)
	s.mQueued = s.reg.Gauge(metricQueued)
	s.mInternSymbols = s.reg.Gauge(metricInternSymbols)
	s.mInternBytes = s.reg.Gauge(metricInternBytes)
	s.mInternHits = s.reg.Gauge(metricInternHits)
	s.mInternMisses = s.reg.Gauge(metricInternMisses)
	s.classifyM = obs.NewCacheMetrics(s.reg, "classify")
	s.classify.Instrument(s.classifyM)
	s.plansM = obs.NewCacheMetrics(s.reg, "plans")
	s.plans.Instrument(s.plansM)
	if cfg.VerdictCacheSize > 0 {
		s.verdictsM = obs.NewCacheMetrics(s.reg, "verdicts")
		s.verdicts = newVerdictCache(cfg.VerdictCacheSize, s.verdictsM)
	}
	if cfg.Store != nil && cfg.ShardMemoSize >= 0 {
		s.reg.Help(metricDeltaReused, "Shard sub-verdicts reused from the memo by hosted solves.")
		s.reg.Help(metricDeltaRecomputed, "Shard sub-verdicts recomputed by hosted solves.")
		s.shardMemoM = obs.NewCacheMetrics(s.reg, "shard_memo")
		s.shardMemo = solver.NewShardMemo(cfg.ShardMemoSize, s.shardMemoM)
	}
	s.defaultSolve = s.cfg.solve == nil
	if s.cfg.solve == nil {
		// The default solve path goes through the compiled-plan cache:
		// classification, method selection, and the FO program are computed
		// once per canonical query and reused across requests.
		s.cfg.solve = func(ctx context.Context, q cq.Query, d *db.DB, opts solver.Options) (solver.Verdict, error) {
			p, err := s.plans.Get(ctx, q)
			if err != nil {
				return solver.Verdict{}, err
			}
			return p.SolveCtx(ctx, d, opts)
		}
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	// The versioned surface: everything a client program calls lives under
	// /v1/ (see API.md for the wire contract).
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleSolveBatch)
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("GET /v1/classify", s.handleClassifyGet)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	// The durable hosted database (404 with a hint unless certd was started
	// with -data-dir; see db.go in this package).
	s.mux.HandleFunc("GET /v1/db", s.handleDBGet)
	s.mux.HandleFunc("POST /v1/db/facts", s.handleDBInsert)
	s.mux.HandleFunc("DELETE /v1/db/facts", s.handleDBDelete)
	// Operational probes stay unversioned by convention (load balancers and
	// scrapers address them directly).
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Legacy aliases. POSTable endpoints redirect with 308 (method- and
	// body-preserving); GET /statsz keeps answering in place because
	// monitoring scrapers often do not follow redirects. All three advertise
	// the successor and carry a deprecation marker.
	s.mux.HandleFunc("POST /solve", s.legacyRedirect("/v1/solve"))
	s.mux.HandleFunc("POST /solve/batch", s.legacyRedirect("/v1/solve/batch"))
	s.mux.HandleFunc("POST /classify", s.legacyRedirect("/v1/classify"))
	s.mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		deprecateHeaders(w, "/v1/statsz")
		s.handleStatsz(w, r)
	})
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// deprecateHeaders marks a legacy-path response: Deprecation (RFC 9745)
// plus a Link to the successor endpoint.
func deprecateHeaders(w http.ResponseWriter, successor string) {
	w.Header().Set("Deprecation", "@1754352000") // 2025-08-05, the /v1/ cutover
	w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
}

// legacyRedirect answers a legacy POST path with 308 Permanent Redirect to
// its /v1/ successor; 308 preserves both method and body, so old clients
// keep working through one extra round trip.
func (s *Server) legacyRedirect(successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		deprecateHeaders(w, successor)
		http.Redirect(w, r, successor, http.StatusPermanentRedirect)
	}
}

// verdictCache memoizes conclusive verdicts by (canonical query, database
// content digest). Conclusive verdicts are exact and independent of any
// budget or deadline, so serving one for a repeated instance is always
// correct; OutcomeUnknown verdicts are never stored. Safe for concurrent
// use.
type verdictCache struct {
	mu sync.Mutex
	c  *lru.Cache[string, solver.Verdict]
	m  *obs.CacheMetrics
}

func newVerdictCache(size int, m *obs.CacheMetrics) *verdictCache {
	vc := &verdictCache{c: lru.New[string, solver.Verdict](size), m: m}
	m.SetSize(vc.c.Len(), vc.c.Cap())
	return vc
}

// verdictKey joins the canonical query key and a content digest of the
// relations the query reads; NUL cannot occur in either part. Scoping the
// digest to the query's relations (instead of the whole database) is the
// incremental-invalidation contract: CERTAINTY(q) is determined by the
// facts of q's relations alone, so a mutation that touches only other
// relations leaves every cached verdict for q addressable and valid.
func verdictKey(q cq.Query, d *db.DB) string {
	return cq.CanonicalKey(q) + "\x00" + d.DigestOf(queryRels(q))
}

// queryRels returns the relation names the query mentions.
func queryRels(q cq.Query) []string {
	rels := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		rels[i] = a.Rel
	}
	return rels
}

func (vc *verdictCache) get(key string) (solver.Verdict, bool) {
	vc.mu.Lock()
	v, ok := vc.c.Get(key)
	vc.mu.Unlock()
	if ok {
		vc.m.Hit()
	} else {
		vc.m.Miss()
	}
	return v, ok
}

func (vc *verdictCache) put(key string, v solver.Verdict) {
	vc.mu.Lock()
	if vc.c.Put(key, v) {
		vc.m.Evicted(1)
	}
	vc.m.SetSize(vc.c.Len(), vc.c.Cap())
	vc.mu.Unlock()
}

func (vc *verdictCache) stats() lru.Stats {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.c.Stats()
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain moves the server into draining mode: new requests are refused
// with 503, queued requests are released with 503, and the governors of
// in-flight solves are cancelled so they come back promptly with partial
// (OutcomeUnknown) verdicts that the HTTP layer can still deliver. Safe to
// call more than once.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.logf("drain: admission stopped, cancelling %d in-flight solves", s.inflight.Load())
		s.drainCancel()
	}
}

// Drain blocks until every in-flight request has finished writing its
// response, or ctx expires. Call after BeginDrain; pair with
// http.Server.Shutdown, which waits for the connections themselves.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// Admission outcomes.
var (
	errShed  = errors.New("admission queue full")
	errDrain = errors.New("server draining")
)

// acquire claims a worker slot, waiting in the bounded admission queue if
// the pool is busy. It fails fast with errShed when the queue is full,
// errDrain when the server starts draining, or the request context's error
// when the client goes away while queued.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	n := s.queued.Add(1)
	s.mQueued.Set(n)
	if n > int64(s.cfg.QueueDepth) {
		s.mQueued.Set(s.queued.Add(-1))
		return errShed
	}
	defer func() { s.mQueued.Set(s.queued.Add(-1)) }()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-s.drainCtx.Done():
		return errDrain
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.slots }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the taxonomy error body; shed/shutdown/read-only also
// carry the Retry-After header (whole seconds, rounded up, minimum 1).
func (s *Server) writeError(w http.ResponseWriter, status int, code, message string) {
	s.writeErrorBody(w, status, &ErrorBody{Code: code, Message: message})
}

// writeErrorBody is writeError for callers that prefill extra body fields
// (the conflict responses carry the current database version).
func (s *Server) writeErrorBody(w http.ResponseWriter, status int, body *ErrorBody) {
	s.reg.Counter(metricRejectionsTotal, obs.L{K: "code", V: body.Code}).Inc()
	if body.Code == CodeShed || body.Code == CodeShutdown || body.Code == CodeReadOnly {
		ra := s.cfg.RetryAfter
		body.RetryAfterMS = ra.Milliseconds()
		secs := int64((ra + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, body)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	}
	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "body: "+err.Error())
		return
	}
	q, err := cq.ParseQuery(req.Query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "query: "+err.Error())
		return
	}
	// An empty DB on a server hosting a durable store means "solve against
	// the hosted snapshot"; the snapshot is immutable, so the solve is
	// unaffected by concurrent mutations and reports the version it saw.
	var d *db.DB
	var dbVersion *uint64
	if req.DB == "" && s.cfg.Store != nil {
		hosted, v := s.cfg.Store.DB()
		d, dbVersion = hosted, &v
	} else if d, err = db.Parse(req.DB); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "db: "+err.Error())
		return
	}
	// The staleness fence: a request pinned to a version is answered only
	// by a snapshot at exactly that version. Checked before any solving or
	// caching so a fenced request does zero work and cannot be served a
	// stale cached verdict.
	if req.IfDBVersion != nil {
		if dbVersion == nil {
			s.writeError(w, http.StatusBadRequest, CodeMalformed,
				"if_db_version requires solving against the hosted database")
			return
		}
		if *dbVersion != *req.IfDBVersion {
			s.writeErrorBody(w, http.StatusPreconditionFailed, &ErrorBody{
				Code: CodeVersionFenced,
				Message: fmt.Sprintf("hosted database is at version %d, request fenced to %d",
					*dbVersion, *req.IfDBVersion),
				Version: *dbVersion,
			})
			return
		}
	}
	cls, err := s.classify.Classify(q)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, CodeUnsupported, err.Error())
		return
	}

	gopts, clamped, err := s.cfg.Policy.Clamp(govern.Options{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Budget:  req.Budget,
	})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, CodePolicy, err.Error())
		return
	}
	opts := solver.Options{
		Timeout:        gopts.Timeout,
		Budget:         gopts.Budget,
		DegradeSamples: req.DegradeSamples,
		SampleSeed:     req.SampleSeed,
		SampleTimeout:  s.cfg.SampleTimeout,
	}
	if s.cfg.DegradeSamples != 0 && (opts.DegradeSamples == 0 || opts.DegradeSamples > s.cfg.DegradeSamples) {
		opts.DegradeSamples = s.cfg.DegradeSamples
	}

	// Memoized serving: a conclusive verdict for the same canonical query
	// and database content is exact under any limits, so it is served
	// straight from the cache — no worker slot, no breaker interaction.
	var vkey string
	if s.verdicts != nil {
		vkey = verdictKey(q, d)
		if v, ok := s.verdicts.get(vkey); ok {
			resp := SolveResponse{
				Envelope: Envelope{
					Class:     cls.Class,
					Method:    methodCode(v.Result.Method),
					DBVersion: dbVersion,
					Cached:    true,
				},
				Verdict: v,
			}
			if clamped.Any() {
				resp.Clamped = &ClampReport{
					Timeout:   clamped.Timeout,
					Budget:    clamped.Budget,
					TimeoutMS: opts.Timeout.Milliseconds(),
					BudgetVal: opts.Budget,
				}
			}
			s.countSolve(cls.Class.Code(), v)
			s.logf("solve %s: %s from verdict cache", cls.Class.Code(), v.Outcome)
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	// Register with the drain WaitGroup before claiming a slot so Drain
	// cannot return while a request sits between acquire and solve.
	s.wg.Add(1)
	defer s.wg.Done()

	switch err := s.acquire(r.Context()); {
	case errors.Is(err, errShed):
		s.writeError(w, http.StatusTooManyRequests, CodeShed, "worker pool and admission queue are full")
		return
	case errors.Is(err, errDrain):
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	case err != nil:
		// Client went away while queued; nothing to write.
		return
	}
	defer s.release()
	s.mInflight.Set(s.inflight.Add(1))
	defer func() { s.mInflight.Set(s.inflight.Add(-1)) }()

	// Consult the breaker only once a worker slot is held: every admitted
	// mode — in particular a half-open probe — is now guaranteed to reach
	// br.record below, so a shed, drained, or abandoned request can never
	// strand the breaker's single probe slot.
	br := s.breakers.forClass(cls.Class)
	mode := modeFull
	if br != nil {
		mode = br.admit()
	}

	// The solve obeys both the client (request context) and the drain:
	// either cancels the governor, which surfaces as a prompt partial
	// verdict rather than an abandoned goroutine.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stopAfter := context.AfterFunc(s.drainCtx, cancel)
	defer stopAfter()

	start := time.Now()
	var v solver.Verdict
	var delta bool
	switch {
	case mode == modeShortCircuit:
		v, err = solver.Degraded(ctx, q, d, opts)
	case s.shardMemo != nil && dbVersion != nil && s.defaultSolve:
		// Delta re-solve: hosted solves run through the shard
		// decomposition with the per-shard verdict memo, so only the
		// shards whose block content changed since the last solve are
		// recomputed — the rest reuse their memoized conclusive
		// sub-verdicts. Conclusive verdicts are identical to the
		// monolithic path's.
		v, delta, err = s.solveHostedDelta(ctx, q, d, opts)
	default:
		v, err = s.cfg.solve(ctx, q, d, opts)
	}
	elapsed := time.Since(start)
	if err != nil {
		if br != nil {
			br.record(mode, false, false) // neutral: no exact-path signal
		}
		s.logf("solve %s: internal error after %v: %v", cls.Class.Code(), elapsed, err)
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}

	// Classify the ending for the breaker: did the exact search get cut
	// off by its budget/deadline (including the lucky sampled-witness
	// upgrade, which still burned the whole budget), did it conclude, or
	// was it ended neutrally (client cancellation, shutdown)?
	exactCutoff := (v.Evidence != nil && v.Evidence.FalsifyingSample != nil) ||
		(v.Outcome == solver.OutcomeUnknown &&
			(errors.Is(v.Err, govern.ErrBudget) || errors.Is(v.Err, context.DeadlineExceeded)))
	conclusive := !exactCutoff && v.Outcome != solver.OutcomeUnknown
	if br != nil {
		br.record(mode, exactCutoff, conclusive)
	}
	// Cache only conclusive verdicts (Err == nil excludes degraded answers
	// that carry ErrExactSkipped): those are independent of the request's
	// budget and deadline, so a later request with different limits may
	// reuse them.
	if s.verdicts != nil && v.Err == nil && v.Outcome != solver.OutcomeUnknown {
		s.verdicts.put(vkey, v)
	}
	s.countSolve(cls.Class.Code(), v)
	s.reg.Histogram(metricSolveSeconds, nil, obs.L{K: "class", V: cls.Class.Code()}).Observe(elapsed.Seconds())

	resp := SolveResponse{
		Envelope: Envelope{
			Class:     cls.Class,
			Method:    methodCode(v.Result.Method),
			DBVersion: dbVersion,
			Delta:     delta,
		},
		Verdict:   v,
		ElapsedMS: elapsed.Milliseconds(),
	}
	switch mode {
	case modeShortCircuit:
		resp.Breaker = BreakerOpen
	case modeProbe:
		resp.Breaker = BreakerProbe
	}
	if clamped.Any() {
		resp.Clamped = &ClampReport{
			Timeout:   clamped.Timeout,
			Budget:    clamped.Budget,
			TimeoutMS: opts.Timeout.Milliseconds(),
			BudgetVal: opts.Budget,
		}
	}
	s.logf("solve %s: %s in %v (breaker=%q)", cls.Class.Code(), v.Outcome, elapsed, resp.Breaker)
	writeJSON(w, http.StatusOK, resp)
}

// solveHostedDelta runs one hosted solve through the compiled plan and the
// per-shard verdict memo, publishes the reused/recomputed counters, and
// reports whether any shard sub-verdict was reused (the response's "delta"
// marker). The shard cap is 0 — the finest partition — deliberately: memo
// granularity, not parallelism, is what the cap buys here. A coarser,
// GOMAXPROCS-matched packing would fuse independent groups into one shard,
// so any mutation would invalidate the fused fingerprint and recompute all
// of them; with one shard per co-occurrence group a mutation recomputes
// exactly the groups it touched. Scheduling is unaffected — shards fan out
// on the bounded worker pool either way.
func (s *Server) solveHostedDelta(ctx context.Context, q cq.Query, d *db.DB, opts solver.Options) (solver.Verdict, bool, error) {
	p, err := s.plans.Get(ctx, q)
	if err != nil {
		return solver.Verdict{}, false, err
	}
	v, rep, err := p.SolveShardedMemo(ctx, d, 0, opts, s.shardMemo)
	if rep.ShardsReused > 0 {
		s.reg.Counter(metricDeltaReused).Add(uint64(rep.ShardsReused))
	}
	if rep.ShardsRecomputed > 0 {
		s.reg.Counter(metricDeltaRecomputed).Add(uint64(rep.ShardsRecomputed))
	}
	return v, rep.ShardsReused > 0, err
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	}
	var req ClassifyRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "body: "+err.Error())
		return
	}
	s.respondClassify(w, req.Query, false)
}

// handleClassifyGet is the read-only alias GET /v1/classify?q=<query>.
// Classification is pure — the same query text always classifies the same
// way, independent of any database — so successful GET responses carry
// Cache-Control and may be cached indefinitely by clients and
// intermediaries.
func (s *Server) handleClassifyGet(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	}
	query := r.URL.Query().Get("q")
	if query == "" {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "missing query parameter q")
		return
	}
	s.respondClassify(w, query, true)
}

// respondClassify is the shared tail of both classify endpoints.
func (s *Server) respondClassify(w http.ResponseWriter, query string, cacheable bool) {
	q, err := cq.ParseQuery(query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "query: "+err.Error())
		return
	}
	cls, err := s.classify.Classify(q)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, CodeUnsupported, err.Error())
		return
	}
	if cacheable {
		w.Header().Set("Cache-Control", "public, max-age=86400")
	}
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Envelope: Envelope{Class: cls.Class},
		Reason:   cls.Reason,
		InP:      cls.Class.InP(),
	})
}

// handleCompile lowers the query's consistent first-order rewriting to an
// executable backend program (SQL or Datalog). Compilation is per-query
// work with no database involved, so like classify it bypasses the worker
// pool; plans come from the shared compiled-plan cache, so a query that is
// later solved natively pays classification only once.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	}
	var req CompileRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "body: "+err.Error())
		return
	}
	dialect := req.Dialect
	if dialect == "" {
		dialect = emit.DialectSQL
	}
	if dialect != emit.DialectSQL && dialect != emit.DialectDatalog {
		s.writeError(w, http.StatusBadRequest, CodeMalformed,
			fmt.Sprintf("dialect: unknown dialect %q (want %q or %q)", dialect, emit.DialectSQL, emit.DialectDatalog))
		return
	}
	q, err := cq.ParseQuery(req.Query)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "query: "+err.Error())
		return
	}
	p, err := s.plans.Get(r.Context(), q)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, CodeUnsupported, err.Error())
		return
	}
	var prog emit.Program
	switch dialect {
	case emit.DialectSQL:
		prog, err = p.EmitSQL()
	case emit.DialectDatalog:
		prog, err = p.EmitDatalog()
	}
	if err != nil {
		// Outside the FO class there is no rewriting to ship; the error
		// carries the classification so the caller can fall back to
		// /v1/solve without a second round trip.
		var ne *solver.NotEmittableError
		if errors.As(err, &ne) {
			s.writeErrorBody(w, http.StatusUnprocessableEntity, &ErrorBody{
				Code: CodeUnsupported,
				Message: fmt.Sprintf("CERTAINTY(q) is %s: no first-order rewriting exists; fall back to /v1/solve",
					ne.Classification.Class.Code()),
				Class: ne.Classification.Class.Code(),
			})
			return
		}
		s.writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CompileResponse{
		Envelope:    Envelope{Class: p.Class, Method: methodCode(p.Method)},
		Dialect:     dialect,
		Program:     prog.Text,
		SchemaNotes: prog.SchemaNotes,
	})
}

// methodCode renders a solver method's wire code ("" if unknown).
func methodCode(m solver.Method) string {
	b, err := m.MarshalText()
	if err != nil {
		return ""
	}
	return string(b)
}

func (s *Server) health() HealthResponse {
	h := HealthResponse{
		Status:   "ok",
		Workers:  s.cfg.Workers,
		Inflight: s.inflight.Load(),
		Queued:   s.queued.Load(),
		Draining: s.draining.Load(),
	}
	if s.cfg.Store != nil {
		h.ReadOnly, _ = s.cfg.Store.ReadOnly()
	}
	return h
}

// countSolve increments the class/verdict-kind request counter for one
// answered solve (cached or computed).
func (s *Server) countSolve(class string, v solver.Verdict) {
	s.reg.Counter(metricSolveTotal,
		obs.L{K: "class", V: class},
		obs.L{K: "verdict", V: verdictKind(v)}).Inc()
}

// verdictKind maps a verdict to its counter label: the outcome wire code
// ("certain", "not-certain", "unknown"), except that a breaker-skipped exact
// search reports "degraded" so operators can see short-circuiting directly.
func verdictKind(v solver.Verdict) string {
	if errors.Is(v.Err, solver.ErrExactSkipped) {
		return "degraded"
	}
	b, err := v.Outcome.MarshalText()
	if err != nil {
		return "unknown"
	}
	return string(b)
}

// statsFrom renders one cache's obs counters in the legacy /statsz wire
// shape. The obs mirror is updated in the same critical sections as the
// lru-internal counters, so the two views are always equal (locked by a
// regression test).
func statsFrom(m *obs.CacheMetrics) lru.Stats {
	return lru.Stats{
		Len:       m.Len(),
		Cap:       m.Cap(),
		Hits:      m.Hits(),
		Misses:    m.Misses(),
		Evictions: m.Evictions(),
	}
}

// internStats resolves the symbol-interner census reported on /statsz and
// the certd_intern_* gauges: the hosted database's columnar view when a
// store is attached (building the view if a mutation dropped it), all-zero
// when certd runs stateless. The hosted snapshot is immutable, so reading
// the view here never races with writers.
func (s *Server) internStats() intern.Stats {
	if s.cfg.Store == nil {
		return intern.Stats{}
	}
	d, _ := s.cfg.Store.DB()
	return d.Interned().Stats()
}

// publishInternStats refreshes the certd_intern_* gauges from a census.
func (s *Server) publishInternStats(st intern.Stats) {
	s.mInternSymbols.Set(st.Symbols)
	s.mInternBytes.Set(st.TableBytes)
	s.mInternHits.Set(st.Hits)
	s.mInternMisses.Set(st.Misses)
}

// handleStatsz reports the serving-layer cache counters: classification,
// compiled plans, and verdicts. Since the metrics migration the numbers are
// read from the obs registry rather than the lru internals; the JSON shape
// and values are unchanged. The interned data plane adds the hosted view's
// symbol-table census.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	resp := StatszResponse{
		Classify: statsFrom(s.classifyM),
		Plans:    statsFrom(s.plansM),
		Intern:   s.internStats(),
	}
	if s.verdicts != nil {
		resp.Verdicts = statsFrom(s.verdictsM)
	}
	if s.shardMemo != nil {
		resp.ShardMemo = statsFrom(s.shardMemoM)
		resp.ShardMemoInvalidations = s.shardMemo.Invalidations()
	}
	s.publishInternStats(resp.Intern)
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the registry in the Prometheus text exposition
// format, refreshing the scrape-time gauges first.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.publishInternStats(s.internStats())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleHealthz reports liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReadyz reports readiness: 503 once draining so load balancers stop
// routing here while in-flight work finishes, and 503 while the hosted
// store is degraded to read-only so fleet health probes stop routing
// writes to a node that would refuse them. Readiness returns with the
// store: the WAL layer re-probes the disk and clears the degradation on
// the next successful commit.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.health()
	if h.Draining || h.ReadOnly {
		if h.Draining {
			h.Status = "draining"
		} else {
			h.Status = "read-only"
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}
