package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/emit"
	"github.com/cqa-go/certainty/internal/emit/sqleval"
)

// decodeCompile parses a 200 compile response.
func decodeCompile(t *testing.T, rec *httptest.ResponseRecorder) CompileResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response %s: %v", rec.Body, err)
	}
	return resp
}

// TestCompileEndToEnd drives POST /v1/compile through the full handler:
// both dialects, the default dialect, the emitted SQL actually evaluating
// to the solver's verdict, and the typed non-FO refusal.
func TestCompileEndToEnd(t *testing.T) {
	s := New(Config{})
	const query = "R(x | y), S(y | z)"

	sqlResp := decodeCompile(t, doJSON(t, s, nil, "POST", "/v1/compile", CompileRequest{Query: query, Dialect: "sql"}))
	if sqlResp.Dialect != "sql" || sqlResp.Program == "" {
		t.Fatalf("sql response = %+v", sqlResp)
	}
	if sqlResp.Class.Code() != "fo" || sqlResp.Method == "" {
		t.Fatalf("envelope = %+v, want class fo with a method", sqlResp.Envelope)
	}
	if sqlResp.SchemaNotes == "" || !strings.Contains(sqlResp.SchemaNotes, "c1") {
		t.Fatalf("schema notes missing the column convention: %q", sqlResp.SchemaNotes)
	}

	dlResp := decodeCompile(t, doJSON(t, s, nil, "POST", "/v1/compile", CompileRequest{Query: query, Dialect: "datalog"}))
	if dlResp.Dialect != "datalog" || !strings.Contains(dlResp.Program, "certain") {
		t.Fatalf("datalog response = %+v", dlResp)
	}

	defResp := decodeCompile(t, doJSON(t, s, nil, "POST", "/v1/compile", CompileRequest{Query: query}))
	if defResp.Dialect != "sql" || defResp.Program != sqlResp.Program {
		t.Fatalf("default dialect must be sql with the identical program")
	}

	// The compiled program is executable: evaluate it against a snapshot and
	// compare with what /v1/solve says for the same instance.
	const dbText = "R(a | b), R(a | c), S(b | d), S(c | d)"
	d, err := db.Parse(dbText)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sqleval.Eval(sqlResp.Program, d)
	if err != nil {
		t.Fatalf("evaluating emitted SQL: %v", err)
	}
	got2, err := emit.EvalDatalog(dlResp.Program, d)
	if err != nil {
		t.Fatalf("evaluating emitted Datalog: %v", err)
	}
	solve := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: query, DB: dbText}))
	if got != solve.Verdict.Result.Certain || got2 != solve.Verdict.Result.Certain {
		t.Fatalf("emitted programs (sql %v, datalog %v) disagree with /v1/solve (%v)",
			got, got2, solve.Verdict.Result.Certain)
	}

	// Non-FO: typed 422 carrying the classification for the solve fallback.
	body := decodeError(t,
		doJSON(t, s, nil, "POST", "/v1/compile", CompileRequest{Query: q0Text(), Dialect: "sql"}),
		http.StatusUnprocessableEntity, CodeUnsupported)
	if body.Class != "conp-complete" {
		t.Fatalf("unsupported class = %q, want conp-complete", body.Class)
	}
	if !strings.Contains(body.Message, "/v1/solve") {
		t.Fatalf("message should point at the fallback: %q", body.Message)
	}

	// Bad dialect and bad query are malformed, not unsupported.
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/compile", CompileRequest{Query: query, Dialect: "cobol"}),
		http.StatusBadRequest, CodeMalformed)
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/compile", CompileRequest{Query: "R(x |"}),
		http.StatusBadRequest, CodeMalformed)
}

// TestClassifyGet covers the read-only GET alias: same body as the POST
// form, an explicit cache policy (classification is pure per query), and
// the malformed cases.
func TestClassifyGet(t *testing.T) {
	s := New(Config{})

	rec := doJSON(t, s, nil, "GET", "/v1/classify?q="+url.QueryEscape("R(x | y), S(y | z)"), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET classify = %d, body %s", rec.Code, rec.Body)
	}
	if cc := rec.Header().Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Fatalf("Cache-Control = %q, want a max-age (classification is pure per query)", cc)
	}
	var get ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &get); err != nil {
		t.Fatal(err)
	}

	post := doJSON(t, s, nil, "POST", "/v1/classify", ClassifyRequest{Query: "R(x | y), S(y | z)"})
	if post.Code != http.StatusOK {
		t.Fatalf("POST classify = %d", post.Code)
	}
	if get.Class != mustDecodeClassify(t, post).Class || !bytesEqualJSON(rec.Body.Bytes(), post.Body.Bytes()) {
		t.Fatalf("GET and POST classify disagree:\n%s\nvs\n%s", rec.Body, post.Body)
	}
	if cc := post.Header().Get("Cache-Control"); cc != "" {
		t.Fatalf("POST classify must not claim cacheability, got %q", cc)
	}

	rec = doJSON(t, s, nil, "GET", "/v1/classify", nil)
	decodeError(t, rec, http.StatusBadRequest, CodeMalformed)
	if rec.Header().Get("Cache-Control") != "" {
		t.Fatal("errors must not carry the cache policy")
	}
	decodeError(t, doJSON(t, s, nil, "GET", "/v1/classify?q=R(x%20%7C", nil),
		http.StatusBadRequest, CodeMalformed)
}

func mustDecodeClassify(t *testing.T, rec *httptest.ResponseRecorder) ClassifyResponse {
	t.Helper()
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func bytesEqualJSON(a, b []byte) bool {
	return strings.TrimSpace(string(a)) == strings.TrimSpace(string(b))
}

// TestEnvelopeGolden locks the exact JSON wire shapes of the enveloped
// responses. These bytes are the compatibility contract: pre-envelope
// clients decode the same field names at the same positions, so any diff
// here is a breaking API change and must be treated as one.
func TestEnvelopeGolden(t *testing.T) {
	v42 := uint64(42)
	cases := []struct {
		name string
		in   any
		want string
	}{
		{
			"solve cached",
			SolveResponse{
				Envelope:  Envelope{Class: 0, Method: "fo-rewriting", DBVersion: &v42, Cached: true},
				ElapsedMS: 0,
			},
			`{"class":"fo","method":"fo-rewriting","db_version":42,"cached":true,"verdict":{"outcome":"certain","result":{"certain":false,"method":"fo-rewriting","classification":{"class":"fo"},"simplified_class":"fo"}},"elapsed_ms":0}`,
		},
		{
			"solve delta",
			SolveResponse{
				Envelope:  Envelope{Class: 0, Method: "fo-rewriting", Delta: true},
				ElapsedMS: 7,
			},
			`{"class":"fo","method":"fo-rewriting","delta":true,"verdict":{"outcome":"certain","result":{"certain":false,"method":"fo-rewriting","classification":{"class":"fo"},"simplified_class":"fo"}},"elapsed_ms":7}`,
		},
		{
			"classify",
			ClassifyResponse{Envelope: Envelope{Class: 0}, Reason: "acyclic attack graph", InP: true},
			`{"class":"fo","reason":"acyclic attack graph","in_p":true}`,
		},
		{
			"compile",
			CompileResponse{
				Envelope:    Envelope{Class: 0, Method: "fo-rewriting"},
				Dialect:     "sql",
				Program:     "SELECT TRUE AS certain;",
				SchemaNotes: "tables R(c1..cn)",
			},
			`{"class":"fo","method":"fo-rewriting","dialect":"sql","program":"SELECT TRUE AS certain;","schema_notes":"tables R(c1..cn)"}`,
		},
	}
	for _, c := range cases {
		got, err := json.Marshal(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if string(got) != c.want {
			t.Errorf("%s wire shape changed:\n got  %s\n want %s", c.name, got, c.want)
		}
	}
}
