package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/intern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
)

// scrapeMetrics GETs /metrics and returns the non-comment sample lines as a
// map from "name{labels}" to the rendered value.
func scrapeMetrics(t *testing.T, s *Server) map[string]string {
	t.Helper()
	rec := doJSON(t, s, nil, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	samples := make(map[string]string)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		samples[line[:i]] = line[i+1:]
	}
	return samples
}

// TestMetricsGolden drives a scripted request sequence through the handler
// and asserts the exact counter values and label sets on /metrics: an FO
// request lands on the class="fo" counter, a repeat is served by the verdict
// cache without a second latency observation, a breaker-open short circuit
// lands on the degraded-verdict counter, and a malformed body lands on the
// rejection counter.
func TestMetricsGolden(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := Config{
		Registry:         obs.NewRegistry(),
		Workers:          1,
		BreakerThreshold: 1,
		BreakerCooldown:  5 * time.Second,
	}
	cfg.now = clock.Now
	cfg.solve = func(ctx context.Context, q cq.Query, d *db.DB, opts solver.Options) (solver.Verdict, error) {
		if len(q.Atoms) == 1 { // the FO query concludes
			return solver.Verdict{Outcome: solver.OutcomeCertain, Result: solver.Result{Certain: true}}, nil
		}
		// The hard query is always cut off by its budget.
		return solver.Verdict{Outcome: solver.OutcomeUnknown, Err: govern.ErrBudget}, nil
	}
	s := New(cfg)
	fo := SolveRequest{Query: "R(x | y)", DB: "R(a | b), R(a | c)"}
	hard := SolveRequest{Query: q0Text(), DB: oddRingText(3), DegradeSamples: 8, SampleSeed: 1}

	decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", fo)) // computed, cached
	second := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", fo))
	if !second.Cached {
		t.Fatal("second FO solve must be served from the verdict cache")
	}
	// Cutoff trips the coNP breaker (threshold 1) ...
	decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
	// ... so the next hard request short-circuits to a degraded verdict.
	open := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
	if open.Breaker != BreakerOpen {
		t.Fatalf("Breaker = %q, want open", open.Breaker)
	}
	// A malformed body lands on the rejection counter.
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body = %d, want 400", rec.Code)
	}

	samples := scrapeMetrics(t, s)
	want := map[string]string{
		`certd_solve_total{class="fo",verdict="certain"}`:             "2",
		`certd_solve_total{class="conp-complete",verdict="unknown"}`:  "1",
		`certd_solve_total{class="conp-complete",verdict="degraded"}`: "1",
		`certd_rejections_total{code="malformed"}`:                    "1",
		`certd_solve_seconds_count{class="fo"}`:                       "1", // cached repeat observes no latency
		`certd_solve_seconds_count{class="conp-complete"}`:            "2",
		`certd_inflight`:                       "0",
		`certd_queued`:                         "0",
		`cache_hits_total{cache="verdicts"}`:   "1",
		`cache_misses_total{cache="verdicts"}`: "3", // first FO + both hard requests
		`cache_entries{cache="verdicts"}`:      "1",
		`cache_hits_total{cache="classify"}`:   "2",
		`cache_misses_total{cache="classify"}`: "2",
	}
	for series, value := range want {
		if got, ok := samples[series]; !ok {
			t.Errorf("series %s missing from /metrics", series)
		} else if got != value {
			t.Errorf("%s = %s, want %s", series, got, value)
		}
	}
	// No unexpected label sets on the solve counter: exactly the three
	// scripted (class, verdict) combinations exist.
	var solveSeries []string
	for series := range samples {
		if strings.HasPrefix(series, "certd_solve_total{") {
			solveSeries = append(solveSeries, series)
		}
	}
	if len(solveSeries) != 3 {
		t.Errorf("certd_solve_total has %d series %v, want 3", len(solveSeries), solveSeries)
	}
}

// TestStatszMatchesLRUStats is the migration regression test: /statsz now
// reads the obs registry, and its numbers must be identical to the
// lru-internal counters that backed it before — occupancy, capacity, hits,
// misses, and evictions for all three caches — over a workload that
// exercises hits, misses, singleflight, and eviction.
func TestStatszMatchesLRUStats(t *testing.T) {
	s := New(Config{
		Registry:         obs.NewRegistry(),
		VerdictCacheSize: 2,
		Policy:           govern.Policy{MaxBudget: 1 << 20},
	})
	reqs := []SolveRequest{
		{Query: "R(x | y)", DB: "R(a | b), R(a | c)"},
		{Query: "R(x | y)", DB: "R(a | b), R(a | c)"}, // verdict-cache hit
		{Query: "R(p | q)", DB: "R(a | c), R(a | b)"}, // isomorphic: plan + verdict hit
		{Query: "S(x | y), T(y | z)", DB: "S(a | b), T(b | c)"},
		{Query: "R(x | y)", DB: "R(d | e)"}, // third verdict entry: evicts
	}
	for i, req := range reqs {
		if rec := doJSON(t, s, nil, "POST", "/v1/solve", req); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, rec.Code, rec.Body)
		}
	}
	got := decodeStatsz(t, s)
	if want := s.classify.Stats(); got.Classify != want {
		t.Errorf("classify stats = %+v, lru reports %+v", got.Classify, want)
	}
	if want := s.plans.Stats(); got.Plans != want {
		t.Errorf("plans stats = %+v, lru reports %+v", got.Plans, want)
	}
	if want := s.verdicts.stats(); got.Verdicts != want {
		t.Errorf("verdicts stats = %+v, lru reports %+v", got.Verdicts, want)
	}
	if got.Verdicts.Evictions == 0 || got.Verdicts.Hits == 0 {
		t.Errorf("workload must exercise hits and evictions, got %+v", got.Verdicts)
	}
}

// TestInternStatsGolden: a hosted server reports the exact symbol-interner
// census of its database's columnar view on both /statsz and the
// certd_intern_* gauges; a stateless server reports zeros.
func TestInternStatsGolden(t *testing.T) {
	s, st := newStoreServer(t, nil)
	// R, a, b, b2: 4 symbols. The duplicate "a" key is the view's one
	// build-time hit (relation names and fresh values all miss first).
	mut := DBMutateRequest{Facts: "R(a | b), R(a | b2)"}
	decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts", mut))

	d, _ := st.DB()
	want := d.Interned().Stats()
	if want.Symbols != 4 {
		t.Fatalf("hosted view interned %d symbols, want 4", want.Symbols)
	}
	got := decodeStatsz(t, s)
	if got.Intern != want {
		t.Fatalf("/statsz intern = %+v, want %+v", got.Intern, want)
	}
	samples := scrapeMetrics(t, s)
	for series, value := range map[string]int64{
		`certd_intern_symbols`:     want.Symbols,
		`certd_intern_table_bytes`: want.TableBytes,
		`certd_intern_hits`:        want.Hits,
		`certd_intern_misses`:      want.Misses,
	} {
		if gotV, ok := samples[series]; !ok {
			t.Errorf("series %s missing from /metrics", series)
		} else if gotV != strconv.FormatInt(value, 10) {
			t.Errorf("%s = %s, want %d", series, gotV, value)
		}
	}

	stateless := New(Config{Registry: obs.NewRegistry()})
	if got := decodeStatsz(t, stateless); got.Intern != (intern.Stats{}) {
		t.Fatalf("stateless /statsz intern = %+v, want zeros", got.Intern)
	}
}

// TestPprofGated: the profiling endpoints exist only when EnablePprof is
// set.
func TestPprofGated(t *testing.T) {
	off := New(Config{Registry: obs.NewRegistry()})
	if rec := doJSON(t, off, nil, "GET", "/debug/pprof/", nil); rec.Code == http.StatusOK {
		t.Fatalf("pprof must be off by default, got %d", rec.Code)
	}
	on := New(Config{Registry: obs.NewRegistry(), EnablePprof: true})
	if rec := doJSON(t, on, nil, "GET", "/debug/pprof/", nil); rec.Code != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", rec.Code)
	}
}
