package server

import (
	"sync"
	"time"

	"github.com/cqa-go/certainty/internal/core"
)

// breakerMode is what the breaker tells the handler to do with a request.
type breakerMode int

const (
	// modeFull: run the exact governed solve.
	modeFull breakerMode = iota
	// modeProbe: run the exact solve as the half-open recovery probe; the
	// caller must report the outcome so the breaker can close or re-open.
	modeProbe
	// modeShortCircuit: skip the exact solve; answer from the degraded
	// Monte-Carlo path.
	modeShortCircuit
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	stateClosed breakerState = iota
	stateOpen
	stateHalfOpen
)

// breaker is a per-query-class circuit breaker. Closed, it counts
// consecutive governor cutoffs (budget or deadline exhaustion on the
// exact path); threshold consecutive cutoffs trip it open. Open, requests
// short-circuit to the degraded verdict until cooldown elapses, at which
// point it goes half-open and lets exactly one probe run the exact solve:
// a conclusive probe closes the breaker, a cut-off probe re-opens it.
// Requests that end neutrally (client cancellation, shutdown) neither trip
// nor heal.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// admit decides how the next request of this class runs.
func (b *breaker) admit() breakerMode {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return modeFull
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return modeShortCircuit
		}
		b.state = stateHalfOpen
		b.probing = true
		return modeProbe
	default: // half-open
		if b.probing {
			return modeShortCircuit // one probe at a time
		}
		b.probing = true
		return modeProbe
	}
}

// record reports how a request admitted with the given mode ended.
// cutoff is true when the governor cut the exact search off (budget or
// deadline); conclusive is true when the solve reached a definitive
// verdict. Neither being true is a neutral ending.
func (b *breaker) record(mode breakerMode, cutoff, conclusive bool) {
	if mode == modeShortCircuit {
		return // degraded answers say nothing about the exact path
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if mode == modeProbe {
		b.probing = false
		switch {
		case conclusive:
			b.state = stateClosed
			b.consecutive = 0
		case cutoff:
			b.state = stateOpen
			b.openedAt = b.now()
		}
		// Neutral probe: stay half-open; the next request probes again.
		return
	}
	// Full-path request while closed.
	switch {
	case conclusive:
		b.consecutive = 0
	case cutoff:
		b.consecutive++
		if b.state == stateClosed && b.consecutive >= b.threshold {
			b.state = stateOpen
			b.openedAt = b.now()
		}
	}
}

// snapshot returns the state for health reporting and tests.
func (b *breaker) snapshot() (breakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consecutive
}

// breakerSet lazily manages one breaker per hard query class.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	m         map[core.Class]*breaker
}

func newBreakerSet(threshold int, cooldown time.Duration, now func() time.Time) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, now: now, m: make(map[core.Class]*breaker)}
}

// forClass returns the breaker guarding cls, or nil when breaking is
// disabled or the class is tractable (polynomial solves are never cut off
// under sane policies, and must never be short-circuited).
func (s *breakerSet) forClass(cls core.Class) *breaker {
	if s == nil || s.threshold <= 0 || cls.InP() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[cls]
	if !ok {
		b = newBreaker(s.threshold, s.cooldown, s.now)
		s.m[cls] = b
	}
	return b
}
