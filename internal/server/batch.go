package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
)

// Batch metric names. Items carry the same class/verdict labels as single
// solves via certd_solve_total; these add the batch-shaped view.
const (
	metricBatchTotal      = "certd_batch_total"
	metricBatchItemsTotal = "certd_batch_items_total"
	metricBatchSeconds    = "certd_batch_seconds"
)

// ndjsonContentType is the streaming batch response media type.
const ndjsonContentType = "application/x-ndjson"

// batchItem is one parsed, classified, not-yet-solved batch item.
type batchItem struct {
	index int
	q     cq.Query
	d     *db.DB
	cls   core.Classification
	vkey  string // verdict-cache key; "" when caching is off
}

// handleSolveBatch decides a batch of instances in one request. The batch
// occupies one admission slot; inside it, items and shards fan out on the
// process-wide worker gate, so a batch can saturate the machine without
// multiplying past it. Item-level failures (parse, classification, solve)
// come back inline in that item's result; the request itself fails only for
// transport-level problems (malformed body, empty batch, overload, drain).
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	}
	var req BatchSolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "body: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		s.writeError(w, http.StatusBadRequest, CodeMalformed, "batch has no items")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		s.writeError(w, http.StatusUnprocessableEntity, CodePolicy,
			fmt.Sprintf("batch has %d items, server maximum is %d", len(req.Items), s.cfg.MaxBatchItems))
		return
	}

	gopts, clamped, err := s.cfg.Policy.Clamp(govern.Options{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		Budget:  req.Budget,
	})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, CodePolicy, err.Error())
		return
	}
	opts := solver.Options{
		Timeout:        gopts.Timeout,
		Budget:         gopts.Budget,
		DegradeSamples: req.DegradeSamples,
		SampleSeed:     req.SampleSeed,
		SampleTimeout:  s.cfg.SampleTimeout,
	}
	if s.cfg.DegradeSamples != 0 && (opts.DegradeSamples == 0 || opts.DegradeSamples > s.cfg.DegradeSamples) {
		opts.DegradeSamples = s.cfg.DegradeSamples
	}

	// Resolve every item up front: parse failures and cached verdicts are
	// settled before any admission, the rest queue for solving.
	results := make([]BatchItemResult, len(req.Items))
	var pending []batchItem
	dbCache := make(map[string]*db.DB) // batches often repeat the DB text; parse it once
	if s.cfg.Store != nil {
		// Pin ONE hosted snapshot for the whole batch: items with an empty
		// DB all see the same version even if mutations land mid-batch.
		hosted, v := s.cfg.Store.DB()
		dbCache[""] = hosted
		// The staleness fence, batch form: the pinned snapshot must be at
		// exactly the fenced version or the whole request fails before any
		// item runs — a torn batch (half at one version, half unanswered)
		// would be worse than no answer.
		if req.IfDBVersion != nil && v != *req.IfDBVersion {
			s.writeErrorBody(w, http.StatusPreconditionFailed, &ErrorBody{
				Code: CodeVersionFenced,
				Message: fmt.Sprintf("hosted database is at version %d, batch fenced to %d",
					v, *req.IfDBVersion),
				Version: v,
			})
			return
		}
	} else if req.IfDBVersion != nil {
		s.writeError(w, http.StatusBadRequest, CodeMalformed,
			"if_db_version requires solving against the hosted database")
		return
	}
	for i, it := range req.Items {
		results[i] = BatchItemResult{Index: i}
		queryText := it.Query
		if queryText == "" {
			queryText = req.Query
		}
		dbText := it.DB
		if dbText == "" {
			dbText = req.DB
		}
		q, err := cq.ParseQuery(queryText)
		if err != nil {
			results[i].Error = &ErrorBody{Code: CodeMalformed, Message: "query: " + err.Error()}
			continue
		}
		d, ok := dbCache[dbText]
		if !ok {
			d, err = db.Parse(dbText)
			if err != nil {
				results[i].Error = &ErrorBody{Code: CodeMalformed, Message: "db: " + err.Error()}
				continue
			}
			dbCache[dbText] = d
		}
		cls, err := s.classify.Classify(q)
		if err != nil {
			results[i].Error = &ErrorBody{Code: CodeUnsupported, Message: err.Error()}
			continue
		}
		item := batchItem{index: i, q: q, d: d, cls: cls}
		if s.verdicts != nil {
			item.vkey = verdictKey(q, d)
			if v, ok := s.verdicts.get(item.vkey); ok {
				v := v
				results[i].Verdict = &v
				results[i].Cached = true
				s.countSolve(cls.Class.Code(), v)
				continue
			}
		}
		pending = append(pending, item)
	}

	s.wg.Add(1)
	defer s.wg.Done()
	switch err := s.acquire(r.Context()); {
	case errors.Is(err, errShed):
		s.writeError(w, http.StatusTooManyRequests, CodeShed, "worker pool and admission queue are full")
		return
	case errors.Is(err, errDrain):
		s.writeError(w, http.StatusServiceUnavailable, CodeShutdown, "server is draining")
		return
	case err != nil:
		return // client went away while queued
	}
	defer s.release()
	s.mInflight.Set(s.inflight.Add(1))
	defer func() { s.mInflight.Set(s.inflight.Add(-1)) }()

	stream := req.Stream || strings.Contains(r.Header.Get("Accept"), ndjsonContentType)
	var streamOut *batchStreamer
	if stream {
		streamOut = newBatchStreamer(w)
		// Items settled before admission (parse errors, cache hits) stream
		// first, in item order.
		for i := range results {
			if results[i].Error != nil || results[i].Verdict != nil {
				streamOut.emit(results[i])
			}
		}
	}

	// The solve obeys both the client and the drain, like a single solve.
	ctx, cancel := contextWithDrain(r.Context(), s.drainCtx)
	defer cancel()

	items := make([]solver.BatchItem, len(pending))
	for k, it := range pending {
		items[k] = solver.BatchItem{Query: it.q, DB: it.d}
	}
	var mu sync.Mutex
	finish := func(br solver.BatchResult) BatchItemResult {
		it := pending[br.Index]
		out := BatchItemResult{Index: it.index}
		if br.Err != nil {
			out.Error = &ErrorBody{Code: CodeInternal, Message: br.Err.Error()}
			s.reg.Counter(metricBatchItemsTotal, obs.L{K: "verdict", V: "error"}).Inc()
			return out
		}
		v := br.Verdict
		out.Verdict = &v
		if s.verdicts != nil && v.Err == nil && v.Outcome != solver.OutcomeUnknown {
			s.verdicts.put(it.vkey, v)
		}
		s.countSolve(it.cls.Class.Code(), v)
		s.reg.Counter(metricBatchItemsTotal, obs.L{K: "verdict", V: verdictKind(v)}).Inc()
		return out
	}

	start := time.Now()
	batchOpts := []solver.Option{
		solver.WithPlanCache(s.plans),
		solver.WithShards(req.Shards),
		solver.WithOptions(opts),
		solver.WithObserver(func(br solver.BatchResult) {
			mu.Lock()
			out := finish(br)
			results[out.Index] = out
			mu.Unlock()
			if streamOut != nil {
				streamOut.emit(out)
			}
		}),
	}
	solver.SolveBatch(ctx, items, batchOpts...)
	elapsed := time.Since(start)

	s.reg.Counter(metricBatchTotal).Inc()
	s.reg.Histogram(metricBatchSeconds, nil).Observe(elapsed.Seconds())
	s.logf("batch: %d items (%d cached/settled) in %v", len(req.Items), len(req.Items)-len(pending), elapsed)

	if streamOut != nil {
		return // every result already on the wire
	}
	resp := BatchSolveResponse{Results: results, ElapsedMS: elapsed.Milliseconds()}
	if clamped.Any() {
		resp.Clamped = &ClampReport{
			Timeout:   clamped.Timeout,
			Budget:    clamped.Budget,
			TimeoutMS: opts.Timeout.Milliseconds(),
			BudgetVal: opts.Budget,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// contextWithDrain derives a context cancelled by either the request's
// context or the server's drain signal. The returned cancel releases both.
func contextWithDrain(parent, drain context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	stop := context.AfterFunc(drain, cancel)
	return ctx, func() {
		stop()
		cancel()
	}
}

// batchStreamer writes NDJSON item results as they complete, flushing after
// each line so clients see verdicts without waiting for the whole batch.
type batchStreamer struct {
	mu    sync.Mutex
	w     http.ResponseWriter
	enc   *json.Encoder
	flush func()
}

func newBatchStreamer(w http.ResponseWriter) *batchStreamer {
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	b := &batchStreamer{w: w, enc: json.NewEncoder(w), flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		b.flush = f.Flush
	}
	return b
}

func (b *batchStreamer) emit(r BatchItemResult) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_ = b.enc.Encode(&r) // Encode appends the newline NDJSON needs
	b.flush()
}
