package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/obs"
)

// batchFixture returns a mixed batch over the FO join query: certain,
// uncertain, malformed, and one self-join (unsupported) item.
func batchFixture() BatchSolveRequest {
	return BatchSolveRequest{
		Query: "R(x | y), S(y | z)",
		Items: []BatchSolveItem{
			{DB: "R(a | b) S(b | c)"},
			{DB: "R(a | b) R(a | b2) S(b | c)"},
			{Query: "R(x |", DB: "R(a | b)"},
			{Query: "R(x | y), R(y | z)", DB: "R(a | b)"},
			{DB: "R(a | b) S(b | c) S(b | c2)"},
		},
	}
}

func decodeBatch(t *testing.T, rec *httptest.ResponseRecorder) BatchSolveResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp BatchSolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response %s: %v", rec.Body, err)
	}
	return resp
}

func TestBatchEndpoint(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	rec := doJSON(t, s, nil, "POST", "/v1/solve/batch", batchFixture())
	resp := decodeBatch(t, rec)
	if len(resp.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(resp.Results))
	}
	wantCertain := []struct {
		certain bool
		errCode string
	}{
		{certain: true},
		{certain: false},
		{errCode: CodeMalformed},
		{errCode: CodeUnsupported},
		{certain: true},
	}
	for i, want := range wantCertain {
		r := resp.Results[i]
		if r.Index != i {
			t.Errorf("results[%d].Index = %d", i, r.Index)
		}
		if want.errCode != "" {
			if r.Error == nil || r.Error.Code != want.errCode {
				t.Errorf("item %d: error = %+v, want code %q", i, r.Error, want.errCode)
			}
			continue
		}
		if r.Error != nil {
			t.Fatalf("item %d: unexpected error %v", i, r.Error)
		}
		if r.Verdict == nil || r.Verdict.Result.Certain != want.certain {
			t.Errorf("item %d: verdict %+v, want certain=%v", i, r.Verdict, want.certain)
		}
	}
	// Individual /v1/solve answers must agree item for item.
	for i, it := range batchFixture().Items {
		if wantCertain[i].errCode != "" {
			continue
		}
		body := SolveRequest{Query: "R(x | y), S(y | z)", DB: it.DB}
		if it.Query != "" {
			body.Query = it.Query
		}
		single := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", body))
		if single.Verdict.Result.Certain != resp.Results[i].Verdict.Result.Certain {
			t.Errorf("item %d: batch and single verdicts disagree", i)
		}
	}
}

func TestBatchSharded(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	req := batchFixture()
	plain := decodeBatch(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", req))
	req.Shards = 4
	sharded := decodeBatch(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", req))
	for i := range plain.Results {
		p, q := plain.Results[i], sharded.Results[i]
		if (p.Verdict == nil) != (q.Verdict == nil) {
			t.Fatalf("item %d: sharded batch changed error/verdict shape", i)
		}
		if p.Verdict != nil && p.Verdict.Result.Certain != q.Verdict.Result.Certain {
			t.Errorf("item %d: sharded verdict differs", i)
		}
	}
}

func TestBatchStreamNDJSON(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	req := batchFixture()
	req.Stream = true
	rec := doJSON(t, s, nil, "POST", "/v1/solve/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ndjsonContentType)
	}
	seen := make(map[int]BatchItemResult)
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item BatchItemResult
		if err := json.Unmarshal(line, &item); err != nil {
			t.Fatalf("decode line %q: %v", line, err)
		}
		if _, dup := seen[item.Index]; dup {
			t.Fatalf("item %d streamed twice", item.Index)
		}
		seen[item.Index] = item
	}
	if len(seen) != 5 {
		t.Fatalf("streamed %d items, want 5", len(seen))
	}
	if seen[0].Verdict == nil || !seen[0].Verdict.Result.Certain {
		t.Errorf("item 0: %+v, want certain verdict", seen[0])
	}
	if seen[2].Error == nil || seen[2].Error.Code != CodeMalformed {
		t.Errorf("item 2: %+v, want malformed error", seen[2])
	}
}

// The Accept header alone selects streaming, with no body flag.
func TestBatchStreamViaAcceptHeader(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	data, err := json.Marshal(batchFixture())
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/solve/batch", bytes.NewReader(data))
	req.Header.Set("Accept", ndjsonContentType)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ndjsonContentType)
	}
	if lines := strings.Count(rec.Body.String(), "\n"); lines != 5 {
		t.Fatalf("streamed %d lines, want 5", lines)
	}
}

func TestBatchValidation(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry(), MaxBatchItems: 2})
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", BatchSolveRequest{}),
		http.StatusBadRequest, CodeMalformed)
	big := BatchSolveRequest{Query: "R(x | y)", DB: "R(a | b)",
		Items: []BatchSolveItem{{}, {}, {}}}
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", big),
		http.StatusUnprocessableEntity, CodePolicy)
}

// A batch populates the verdict cache, and a repeated batch serves from it.
func TestBatchVerdictCacheReuse(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	req := BatchSolveRequest{
		Query: "R(x | y), S(y | z)",
		Items: []BatchSolveItem{{DB: "R(a | b) S(b | c)"}},
	}
	first := decodeBatch(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", req))
	if first.Results[0].Cached {
		t.Fatal("first batch reported a cache hit")
	}
	second := decodeBatch(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", req))
	if !second.Results[0].Cached {
		t.Fatal("second batch did not reuse the cached verdict")
	}
	if second.Results[0].Verdict.Result.Certain != first.Results[0].Verdict.Result.Certain {
		t.Fatal("cached verdict differs")
	}
}

func TestBatchDrainingRefused(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	s.BeginDrain()
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", batchFixture()),
		http.StatusServiceUnavailable, CodeShutdown)
}

// Legacy paths: POST endpoints answer 308 with the successor in Location
// and a Deprecation marker; GET /statsz serves in place with the marker.
func TestLegacyAliases(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	for _, tc := range []struct{ path, successor string }{
		{"/solve", "/v1/solve"},
		{"/solve/batch", "/v1/solve/batch"},
		{"/classify", "/v1/classify"},
	} {
		rec := doJSON(t, s, nil, "POST", tc.path, SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
		if rec.Code != http.StatusPermanentRedirect {
			t.Errorf("%s: status %d, want 308", tc.path, rec.Code)
		}
		if loc := rec.Header().Get("Location"); loc != tc.successor {
			t.Errorf("%s: Location %q, want %q", tc.path, loc, tc.successor)
		}
		if rec.Header().Get("Deprecation") == "" {
			t.Errorf("%s: missing Deprecation header", tc.path)
		}
	}
	// GET /statsz answers directly (scrapers do not follow redirects) but is
	// marked deprecated; /v1/statsz is the clean successor.
	legacy := doJSON(t, s, nil, "GET", "/statsz", nil)
	if legacy.Code != http.StatusOK {
		t.Fatalf("GET /statsz: status %d", legacy.Code)
	}
	if legacy.Header().Get("Deprecation") == "" {
		t.Error("GET /statsz: missing Deprecation header")
	}
	v1 := doJSON(t, s, nil, "GET", "/v1/statsz", nil)
	if v1.Code != http.StatusOK {
		t.Fatalf("GET /v1/statsz: status %d", v1.Code)
	}
	if v1.Header().Get("Deprecation") != "" {
		t.Error("GET /v1/statsz: carries a Deprecation header")
	}
	if legacy.Body.String() != v1.Body.String() {
		t.Error("legacy and v1 statsz bodies differ")
	}
}

// A 308 redirect replayed against the mux (as a redirect-following client
// would) must land on the working v1 endpoint.
func TestLegacyRedirectRoundTrip(t *testing.T) {
	s := New(Config{Registry: obs.NewRegistry()})
	body := SolveRequest{Query: "R(x | y), S(y | z)", DB: "R(a | b) S(b | c)"}
	rec := doJSON(t, s, nil, "POST", "/solve", body)
	if rec.Code != http.StatusPermanentRedirect {
		t.Fatalf("status %d, want 308", rec.Code)
	}
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", rec.Header().Get("Location"), body))
	if !resp.Verdict.Result.Certain {
		t.Fatal("redirected solve returned wrong verdict")
	}
}

// Batch metrics: the batch counter and the per-item verdict counters move.
func TestBatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg})
	decodeBatch(t, doJSON(t, s, nil, "POST", "/v1/solve/batch", batchFixture()))
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		`certd_batch_total 1`,
		`certd_batch_items_total{verdict="certain"} 2`,
		`certd_batch_items_total{verdict="not-certain"} 1`,
		`certd_solve_total{class="fo",verdict="certain"} 2`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q\n%s", want, page)
		}
	}
}
