package server

import (
	"sync"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/core"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestBreakerAutomaton(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(2, 5*time.Second, clock.Now)

	// Closed: conclusive solves keep it closed, resetting the streak.
	for i := 0; i < 3; i++ {
		if mode := b.admit(); mode != modeFull {
			t.Fatalf("closed breaker admitted %v, want full", mode)
		}
		b.record(modeFull, false, true)
	}
	// One cutoff then a conclusive: streak resets, still closed.
	b.record(modeFull, true, false)
	b.record(modeFull, false, true)
	if st, n := b.snapshot(); st != stateClosed || n != 0 {
		t.Fatalf("state = %v streak %d, want closed 0", st, n)
	}
	// Two consecutive cutoffs trip it.
	b.record(modeFull, true, false)
	b.record(modeFull, true, false)
	if st, _ := b.snapshot(); st != stateOpen {
		t.Fatalf("state = %v, want open", st)
	}
	// Open within cooldown: short-circuit.
	if mode := b.admit(); mode != modeShortCircuit {
		t.Fatalf("open breaker admitted %v, want short-circuit", mode)
	}
	b.record(modeShortCircuit, false, false) // degraded endings are ignored
	// After cooldown: exactly one probe; concurrent requests short-circuit.
	clock.Advance(6 * time.Second)
	if mode := b.admit(); mode != modeProbe {
		t.Fatalf("cooled-down breaker admitted %v, want probe", mode)
	}
	if mode := b.admit(); mode != modeShortCircuit {
		t.Fatalf("second admit during probe = %v, want short-circuit", mode)
	}
	// The probe is cut off: re-open for a fresh cooldown.
	b.record(modeProbe, true, false)
	if mode := b.admit(); mode != modeShortCircuit {
		t.Fatalf("re-opened breaker admitted %v, want short-circuit", mode)
	}
	// Cool down again; a neutral probe (client hung up) neither closes nor
	// re-opens — the next request probes again.
	clock.Advance(6 * time.Second)
	if mode := b.admit(); mode != modeProbe {
		t.Fatal("want a probe after second cooldown")
	}
	b.record(modeProbe, false, false)
	if mode := b.admit(); mode != modeProbe {
		t.Fatal("neutral probe must allow an immediate re-probe")
	}
	// A conclusive probe closes the breaker.
	b.record(modeProbe, false, true)
	if st, n := b.snapshot(); st != stateClosed || n != 0 {
		t.Fatalf("state = %v streak %d, want closed 0 after recovery", st, n)
	}
	if mode := b.admit(); mode != modeFull {
		t.Fatal("closed breaker must admit full solves")
	}
}

func TestBreakerSetScope(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	s := newBreakerSet(3, time.Second, clock.Now)
	if s.forClass(core.ClassFO) != nil {
		t.Error("tractable classes must never be broken")
	}
	if s.forClass(core.ClassPTimeACk) != nil {
		t.Error("tractable classes must never be broken")
	}
	b1 := s.forClass(core.ClassCoNPComplete)
	b2 := s.forClass(core.ClassCoNPComplete)
	if b1 == nil || b1 != b2 {
		t.Error("hard classes get one stable breaker each")
	}
	if b3 := s.forClass(core.ClassOpenConjecturedPTime); b3 == nil || b3 == b1 {
		t.Error("distinct hard classes get distinct breakers")
	}
	disabled := newBreakerSet(-1, time.Second, clock.Now)
	if disabled.forClass(core.ClassCoNPComplete) != nil {
		t.Error("negative threshold disables breaking")
	}
}
