package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/wal"
)

func uintp(v uint64) *uint64 { return &v }

// decodeErrorBody parses a non-200 response's taxonomy body.
func decodeErrorBody(t *testing.T, rec *httptest.ResponseRecorder) *ErrorBody {
	t.Helper()
	body := new(ErrorBody)
	if err := json.Unmarshal(rec.Body.Bytes(), body); err != nil {
		t.Fatalf("decode error body %s: %v", rec.Body, err)
	}
	return body
}

// TestSolveVersionFence: a solve pinned to a version is answered only by a
// snapshot at exactly that version; any other version fails with 412
// version_fenced carrying the actual version, without solving.
func TestSolveVersionFence(t *testing.T) {
	s, _ := newStoreServer(t, nil)
	doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(a | b)"}) // version 1

	// Fenced to the current version: answers, and reports that version.
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve",
		SolveRequest{Query: "R(x | y)", IfDBVersion: uintp(1)}))
	if resp.DBVersion == nil || *resp.DBVersion != 1 {
		t.Fatalf("DBVersion = %v, want 1", resp.DBVersion)
	}

	// Fenced to a version this node is not at: 412 with the actual version.
	rec := doJSON(t, s, nil, "POST", "/v1/solve",
		SolveRequest{Query: "R(x | y)", IfDBVersion: uintp(7)})
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("fenced solve = %d, want 412 (body %s)", rec.Code, rec.Body)
	}
	body := decodeErrorBody(t, rec)
	if body.Code != CodeVersionFenced || body.Version != 1 {
		t.Fatalf("fenced body = %+v, want code %q version 1", body, CodeVersionFenced)
	}

	// The fence checks BEFORE the verdict cache: the same instance was
	// cached by the first solve, but a mismatched fence must not serve it.
	rec = doJSON(t, s, nil, "POST", "/v1/solve",
		SolveRequest{Query: "R(x | y)", IfDBVersion: uintp(7)})
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("fenced repeat = %d, want 412", rec.Code)
	}

	// A fence with an inline DB is malformed: there is no hosted version
	// to compare against.
	rec = doJSON(t, s, nil, "POST", "/v1/solve",
		SolveRequest{Query: "R(x | y)", DB: "R(a | b)", IfDBVersion: uintp(1)})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("inline-DB fence = %d, want 400", rec.Code)
	}

	// Stateless server: same, whatever the version named.
	stateless := New(Config{Registry: obs.NewRegistry()})
	rec = doJSON(t, stateless, nil, "POST", "/v1/solve",
		SolveRequest{Query: "R(x | y)", IfDBVersion: uintp(0)})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("stateless fence = %d, want 400", rec.Code)
	}
}

// TestBatchVersionFence: the batch form fails whole — before any item is
// solved — when the pinned snapshot is at the wrong version.
func TestBatchVersionFence(t *testing.T) {
	s, _ := newStoreServer(t, nil)
	doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(a | b)"}) // version 1

	req := BatchSolveRequest{
		Query: "R(x | y)",
		Items: []BatchSolveItem{{}, {}},
	}
	req.IfDBVersion = uintp(1)
	rec := doJSON(t, s, nil, "POST", "/v1/solve/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("matching batch fence = %d, body %s", rec.Code, rec.Body)
	}

	req.IfDBVersion = uintp(2)
	rec = doJSON(t, s, nil, "POST", "/v1/solve/batch", req)
	if rec.Code != http.StatusPreconditionFailed {
		t.Fatalf("mismatched batch fence = %d, want 412 (body %s)", rec.Code, rec.Body)
	}
	if body := decodeErrorBody(t, rec); body.Code != CodeVersionFenced || body.Version != 1 {
		t.Fatalf("fenced batch body = %+v", body)
	}

	stateless := New(Config{Registry: obs.NewRegistry()})
	rec = doJSON(t, stateless, nil, "POST", "/v1/solve/batch", req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("stateless batch fence = %d, want 400", rec.Code)
	}
}

// TestReadyzReadOnly is the degradation regression test: /readyz flips to
// 503 while the WAL store is read-only after an injected disk fault — not
// just while draining — and back to 200 once a probe heals the store.
func TestReadyzReadOnly(t *testing.T) {
	ffs := wal.NewFaultFS(nil)
	st, err := wal.Open(wal.Options{
		Dir:      t.TempDir(),
		FS:       ffs,
		Fsync:    wal.FsyncAlways,
		Registry: obs.NewRegistry(),
		// A nominal cooldown so the first post-heal mutation re-probes
		// immediately instead of failing fast for 5 seconds.
		ProbeCooldown: time.Nanosecond,
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{
		Policy:   govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
		Registry: obs.NewRegistry(),
		Store:    st,
	})

	if rec := doJSON(t, s, nil, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy readyz = %d, want 200", rec.Code)
	}

	// Inject a disk fault; the failed commit degrades the store.
	ffs.SetSyncFault(func(name string) error { return fmt.Errorf("injected fsync failure on %s", name) })
	rec := doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(a | b)"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation on faulted disk = %d, want 503", rec.Code)
	}
	rec = doJSON(t, s, nil, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode readyz body: %v", err)
	}
	if h.Status != "read-only" || !h.ReadOnly || h.Draining {
		t.Fatalf("degraded readyz body = %+v, want status read-only", h)
	}
	// Liveness is unaffected: the process still serves reads.
	if rec := doJSON(t, s, nil, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz = %d, want 200 (liveness, not readiness)", rec.Code)
	}

	// Disk heals: the next mutation probes, commits, and clears the
	// degradation — readiness transitions back without a restart.
	ffs.SetSyncFault(nil)
	rec = doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{Facts: "R(a | b)"})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-heal mutation = %d, body %s", rec.Code, rec.Body)
	}
	rec = doJSON(t, s, nil, "GET", "/readyz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healed readyz = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
}
