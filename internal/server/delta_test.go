package server

import (
	"testing"

	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/solver"
	"github.com/cqa-go/certainty/internal/wal"
)

// TestHostedDeltaResolve drives the delta re-solve loop over HTTP: a hosted
// solve populates the shard memo, a one-block mutation invalidates only the
// covering entries, and the next solve reuses the untouched shards' memoized
// sub-verdicts — reported by the response's delta marker, the statsz memo
// counters, and the certd_delta_* metrics. Verdicts must match what a
// stateless solve of the same snapshot computes.
func TestHostedDeltaResolve(t *testing.T) {
	s, _ := newStoreServer(t, nil)
	if s.shardMemo == nil {
		t.Fatal("hosted server has no shard memo; delta re-solve is wired off by default")
	}

	// Three independent, never-certain chain groups (no disjunction
	// short-circuit: every shard is solved and memoized).
	decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts", DBMutateRequest{
		Facts: `R(a1 | b1) R(a1 | x1) S(b1 | c1)
		        R(a2 | b2) R(a2 | x2) S(b2 | c2)
		        R(a3 | b3) R(a3 | x3) S(b3 | c3)`,
	}))

	const query = "R(x | y), S(y | z)"
	solveHosted := func() SolveResponse {
		t.Helper()
		return decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: query}))
	}

	// Cold solve: everything recomputed, nothing reused.
	first := solveHosted()
	if first.Verdict.Outcome != solver.OutcomeNotCertain {
		t.Fatalf("first verdict = %v, want not-certain", first.Verdict.Outcome)
	}
	if first.Delta {
		t.Error("cold solve claimed delta reuse")
	}
	if st := decodeStatsz(t, s); st.ShardMemo.Len != 3 {
		t.Fatalf("shard memo holds %d entries after cold solve, want 3", st.ShardMemo.Len)
	}

	// Mutate one block of group 1. The verdict cache misses (new content
	// digest), the memo keeps groups 2 and 3.
	decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts",
		DBMutateRequest{Facts: "S(b1 | c9)"}))

	second := solveHosted()
	if second.Verdict.Outcome != solver.OutcomeNotCertain {
		t.Fatalf("second verdict = %v, want not-certain", second.Verdict.Outcome)
	}
	if second.Cached {
		t.Fatal("second solve served from the verdict cache; the mutation did not change the digest?")
	}
	if !second.Delta {
		t.Error("post-mutation solve did not report delta reuse")
	}

	st := decodeStatsz(t, s)
	if st.ShardMemoInvalidations != 1 {
		t.Errorf("statsz invalidations = %d, want 1 (one covering entry)", st.ShardMemoInvalidations)
	}
	if st.ShardMemo.Hits < 2 {
		t.Errorf("statsz shard memo hits = %d, want >= 2 (groups 2 and 3 reused)", st.ShardMemo.Hits)
	}
	reused := s.reg.Counter(metricDeltaReused).Value()
	recomputed := s.reg.Counter(metricDeltaRecomputed).Value()
	if reused != 2 || recomputed != 4 {
		t.Errorf("delta counters (reused, recomputed) = (%d, %d), want (2, 4)", reused, recomputed)
	}

	// The delta verdict must equal a stateless solve of the same facts.
	rec := doJSON(t, s, nil, "GET", "/v1/db?facts=1", nil)
	dump := decodeDBGet(t, rec)
	inline := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve",
		SolveRequest{Query: query, DB: dump.Facts}))
	if inline.Verdict.Outcome != second.Verdict.Outcome {
		t.Errorf("delta verdict %v != stateless verdict %v", second.Verdict.Outcome, inline.Verdict.Outcome)
	}
	if inline.Delta {
		t.Error("stateless solve (inline DB) reported delta; the memo must only serve hosted snapshots")
	}
}

// TestHostedDeltaDisabled: a negative ShardMemoSize switches delta re-solve
// off; hosted solves fall back to the monolithic path and never mark delta.
func TestHostedDeltaDisabled(t *testing.T) {
	st, err := wal.Open(wal.Options{
		Dir:      t.TempDir(),
		Fsync:    wal.FsyncNever,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{
		Policy:        govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20},
		Registry:      obs.NewRegistry(),
		Store:         st,
		ShardMemoSize: -1,
	})
	if s.shardMemo != nil {
		t.Fatal("negative ShardMemoSize still built a memo")
	}
	decodeMutate(t, doJSON(t, s, nil, "POST", "/v1/db/facts",
		DBMutateRequest{Facts: "R(a | b) S(b | c) R(d | e) S(e | f)"}))
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y), S(y | z)"}))
	if resp.Delta {
		t.Error("delta marker set with the memo disabled")
	}
	if got := decodeStatsz(t, s); got.ShardMemo.Cap != 0 {
		t.Errorf("statsz shard memo = %+v, want all-zero when disabled", got.ShardMemo)
	}
}
