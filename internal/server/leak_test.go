package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/solver"
)

// settleGoroutines asserts the goroutine count returns to its baseline,
// reusing the settle-loop pattern from internal/solver/cancel_test.go.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownWhileSolvingNoLeak drains a server whose pool is saturated
// and whose queue is occupied: running solves must return partial verdicts,
// queued requests must be released with 503, Drain must return, and no
// handler or governor goroutine may outlive the drain.
func TestShutdownWhileSolvingNoLeak(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	cfg := Config{Workers: 2, QueueDepth: 2}
	cfg.solve = blockingSolve(entered, gate)
	s := New(cfg)

	var wg sync.WaitGroup
	recs := make([]*httptest.ResponseRecorder, 4)
	for i := range recs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs[i] = doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
		}()
	}
	<-entered
	<-entered // both workers busy; the other two requests sit in the queue
	waitUntil(t, "two requests to queue", func() bool { return s.queued.Load() == 2 })

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()

	var partial, shutdown int
	for _, rec := range recs {
		switch rec.Code {
		case http.StatusOK:
			resp := decodeSolve(t, rec)
			if resp.Verdict.Outcome != solver.OutcomeUnknown || resp.Verdict.Evidence == nil {
				t.Errorf("drained solve verdict = %+v, want partial", resp.Verdict)
			}
			partial++
		case http.StatusServiceUnavailable:
			decodeError(t, rec, http.StatusServiceUnavailable, CodeShutdown)
			shutdown++
		default:
			t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
		}
	}
	if partial != 2 || shutdown != 2 {
		t.Errorf("got %d partial + %d shutdown responses, want 2 + 2", partial, shutdown)
	}

	settleGoroutines(t, before)
}

// TestClientDisconnectMidSolveNoLeak cancels request contexts while their
// solves are running and while they are queued, then proves the worker
// slots all came back by completing a full pool's worth of normal solves.
func TestClientDisconnectMidSolveNoLeak(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()

	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 1}
	cfg.solve = blockingSolve(entered, gate)
	s := New(cfg)

	// Disconnect mid-solve, repeatedly: the hook sees ctx.Done and returns a
	// partial verdict; the handler must still release the slot every time.
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan *httptest.ResponseRecorder, 1)
		go func() {
			rec := doJSON(t, s, ctx, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
			done <- rec
		}()
		<-entered
		cancel()
		rec := <-done
		resp := decodeSolve(t, rec)
		if resp.Verdict.Outcome != solver.OutcomeUnknown {
			t.Fatalf("round %d: verdict = %+v, want partial", i, resp.Verdict)
		}
	}

	// Disconnect while queued: the waiter must leave the queue without ever
	// taking a slot.
	holdCtx, holdCancel := context.WithCancel(context.Background())
	holdDone := make(chan struct{})
	go func() {
		defer close(holdDone)
		doJSON(t, s, holdCtx, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	}()
	<-entered // the holder occupies the only worker
	queuedCtx, queuedCancel := context.WithCancel(context.Background())
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		doJSON(t, s, queuedCtx, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	}()
	waitUntil(t, "request to queue", func() bool { return s.queued.Load() == 1 })
	queuedCancel()
	<-queuedDone
	waitUntil(t, "queue to empty", func() bool { return s.queued.Load() == 0 })
	holdCancel()
	<-holdDone

	// Every slot must be back: a full pool's worth of gated solves completes.
	close(gate)
	rec := doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	resp := decodeSolve(t, rec)
	if resp.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("post-disconnect solve = %+v, want certain (slot leaked?)", resp.Verdict)
	}

	settleGoroutines(t, before)
}
