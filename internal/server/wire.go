// Package server implements certd's HTTP/JSON service layer over the
// CERTAINTY(q) solver stack. The layer exists because the workload is
// bimodal: FO-rewritable queries answer in microseconds while strong-cycle
// queries are coNP-complete (Theorem 2), so a shared endpoint must keep the
// hard requests from starving everything else. The server composes four
// defenses, in request order:
//
//  1. Admission control: a bounded worker pool with a bounded wait queue;
//     requests beyond both are shed immediately with 429 + Retry-After.
//  2. Policy clamping: client-supplied deadlines and step budgets are
//     mapped onto the in-process governor (internal/govern) and clamped to
//     operator maxima, so no request can demand unbounded work.
//  3. Per-class circuit breakers: repeated governor cutoffs on a hard query
//     class trip that class's breaker; while open, its requests
//     short-circuit to the bounded Monte-Carlo degraded verdict instead of
//     burning a worker on a search that keeps timing out. Half-open probes
//     recover. Tractable classes are unaffected and keep answering exactly.
//  4. Graceful shutdown: draining stops admission (503), cancels in-flight
//     governors so searches return partial verdicts promptly, and lets the
//     HTTP layer flush those responses before the process exits.
package server

import (
	"fmt"
	"net/http"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/intern"
	"github.com/cqa-go/certainty/internal/lru"
	"github.com/cqa-go/certainty/internal/solver"
)

// Error taxonomy codes carried in ErrorBody.Code. Clients use them to
// decide retryability: malformed, unsupported, and policy errors are
// permanent (the same request can never succeed); shed and shutdown are
// transient (retry after backoff); internal may be retried a bounded
// number of times.
const (
	// CodeMalformed: the request body, query, or database text does not
	// parse. HTTP 400.
	CodeMalformed = "malformed"
	// CodeUnsupported: the query is well-formed but outside the paper's
	// scope (self-joins, unrecognized cyclic queries). HTTP 422.
	CodeUnsupported = "unsupported"
	// CodePolicy: the request's explicit resource demands exceed server
	// policy and the server is configured to reject rather than clamp.
	// HTTP 422.
	CodePolicy = "policy"
	// CodeShed: the worker pool and its admission queue are full; the
	// request was not started. HTTP 429 with Retry-After.
	CodeShed = "shed"
	// CodeShutdown: the server is draining and admits no new work.
	// HTTP 503 with Retry-After.
	CodeShutdown = "shutdown"
	// CodeInternal: the solve failed unexpectedly (e.g. a contained
	// panic). HTTP 500.
	CodeInternal = "internal"
	// CodeConflict: a compare-and-swap mutation named a database version
	// that is no longer current. Permanent: retrying the identical request
	// can never succeed — re-read the version and decide again. HTTP 409.
	// The error body's Version field carries the current version.
	CodeConflict = "conflict"
	// CodeReadOnly: the hosted database degraded to read-only after a disk
	// fault; mutations are refused while reads keep serving. Transient —
	// the store re-probes the disk — so retry after backoff. HTTP 503 with
	// Retry-After.
	CodeReadOnly = "read-only"
	// CodeVersionFenced: the request pinned a hosted-database version
	// (if_db_version) and this node's snapshot is at a different one. The
	// verdict was NOT computed — a snapshot the client did not ask for must
	// never answer. Do not retry the same node immediately (its version
	// will not change under you); a fleet coordinator fails the request
	// over to a replica at the right version instead. HTTP 412. The error
	// body's Version field carries the version this node is at.
	CodeVersionFenced = "version_fenced"
	// CodeUnavailable: a fleet coordinator exhausted every replica without
	// obtaining a verdict (all dead, partitioned, shedding, or fenced).
	// The request was answered by no one, so it is transient and safely
	// retryable after backoff. HTTP 503 with Retry-After. Only
	// coordinators emit this code; single nodes report their own condition
	// (shed, shutdown, read-only) directly.
	CodeUnavailable = "unavailable"
)

// StatusForCode maps a taxonomy code to the HTTP status it is served with.
// The fleet coordinator uses it to re-serialize worker and routing errors
// without carrying a status alongside every ErrorBody. Unknown codes map to
// 500 — an unrecognized condition is an internal fault, not a client one.
func StatusForCode(code string) int {
	switch code {
	case CodeMalformed:
		return http.StatusBadRequest
	case CodeUnsupported, CodePolicy:
		return http.StatusUnprocessableEntity
	case CodeShed:
		return http.StatusTooManyRequests
	case CodeShutdown, CodeReadOnly, CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeConflict:
		return http.StatusConflict
	case CodeVersionFenced:
		return http.StatusPreconditionFailed
	default:
		return http.StatusInternalServerError
	}
}

// ErrorBody is the JSON body of every non-200 response.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
	// RetryAfterMS, when positive, is the server's hint for when to retry
	// (shed, shutdown, and read-only responses). Also sent as the
	// Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Version is set on conflict responses: the database version the store
	// is actually at, so a CAS client can re-read and decide again without
	// an extra round trip.
	Version uint64 `json:"version,omitempty"`
	// Class is set on unsupported-compile responses: the wire code of the
	// query's complexity classification (e.g. "conp-complete"), so a caller
	// whose query has no FO rewriting can decide to fall back to /v1/solve
	// without a second classification round trip.
	Class string `json:"class,omitempty"`
}

// Error renders the error body.
func (e *ErrorBody) Error() string {
	if e.Message == "" {
		return "certd: " + e.Code
	}
	return fmt.Sprintf("certd: %s: %s", e.Code, e.Message)
}

// SolveRequest asks the server to decide CERTAINTY(q) for the query and
// database given in the shared textual formats. TimeoutMS and Budget are
// requests, not guarantees: the server clamps them to its policy and
// reports what it applied in SolveResponse.Clamped.
type SolveRequest struct {
	// Query in the textual query language, e.g. "R(x | y), S(y | x)".
	Query string `json:"query"`
	// DB in the textual database format, one fact per line or
	// comma-separated.
	DB string `json:"db"`
	// TimeoutMS bounds wall-clock solve time in milliseconds; 0 asks for
	// the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget caps governor search steps; 0 asks for the server default.
	Budget int64 `json:"budget,omitempty"`
	// DegradeSamples caps the Monte-Carlo samples drawn after a cutoff;
	// 0 means the solver default, negative disables sampling.
	DegradeSamples int `json:"degrade_samples,omitempty"`
	// SampleSeed seeds the degradation sampler (deterministic per seed).
	SampleSeed int64 `json:"sample_seed,omitempty"`
	// IfDBVersion, when set, fences the solve to an exact hosted-database
	// version: the server answers only if its snapshot is at this version,
	// and fails with CodeVersionFenced (HTTP 412) otherwise. Requires
	// solving against the hosted database (empty DB field on a server with
	// -data-dir); combining it with an inline DB is malformed. This is the
	// fleet's staleness fence — a lagging replica can never serve a verdict
	// for a snapshot the client did not ask for.
	IfDBVersion *uint64 `json:"if_db_version,omitempty"`
}

// ClampReport tells the client which of its requested limits the server
// tightened, and the effective values applied.
type ClampReport struct {
	Timeout   bool  `json:"timeout,omitempty"`
	Budget    bool  `json:"budget,omitempty"`
	TimeoutMS int64 `json:"timeout_ms"`
	BudgetVal int64 `json:"budget_val"`
}

// Breaker states reported in SolveResponse.Breaker.
const (
	// BreakerOpen: the class's breaker short-circuited this request to the
	// degraded Monte-Carlo path without running the exact search.
	BreakerOpen = "open"
	// BreakerProbe: the breaker was half-open and this request ran the
	// exact search as the recovery probe.
	BreakerProbe = "probe"
)

// Envelope is the response envelope shared by every per-query /v1 read
// endpoint (/v1/solve, /v1/classify, /v1/compile). It grew ad hoc across
// PRs — class on classify, cached/db_version/delta on solve — so it is now
// one documented struct, embedded by each response type; the JSON field
// names are unchanged, so pre-envelope clients keep decoding byte-identical
// shapes.
type Envelope struct {
	// Class is the wire code of the query's complexity classification
	// (e.g. "fo", "conp-complete"); see core.Class.
	Class core.Class `json:"class"`
	// Method is the wire code of the decision method the class selects
	// (e.g. "fo-rewriting", "safe-rewriting"). Empty on /v1/classify, which
	// reports the class without committing to an execution plan.
	Method string `json:"method,omitempty"`
	// DBVersion is set when the request ran against the hosted database
	// (empty DB on a server started with -data-dir): the version of the
	// snapshot it was answered from.
	DBVersion *uint64 `json:"db_version,omitempty"`
	// Cached is true when the answer was served from a server-side cache
	// without recomputation. Cached answers are exact: the verdict cache
	// stores only conclusive verdicts, keyed on canonical query plus
	// database content digest, and classification is pure per query.
	Cached bool `json:"cached,omitempty"`
	// Delta is true when a verdict was assembled incrementally: the solve
	// reused at least one memoized shard sub-verdict instead of recomputing
	// every shard. Still exact — reused sub-verdicts are content-addressed
	// by shard fingerprint.
	Delta bool `json:"delta,omitempty"`
}

// SolveResponse carries the three-valued verdict plus the service-level
// envelope. The verdict is exactly solver.Verdict's wire form, so remote
// and local solves surface identically.
type SolveResponse struct {
	Envelope
	Verdict solver.Verdict `json:"verdict"`
	// Clamped is present when the server tightened the requested limits.
	Clamped *ClampReport `json:"clamped,omitempty"`
	// Breaker is "" for a normal solve, BreakerOpen for a short-circuited
	// degraded answer, BreakerProbe for a half-open recovery probe.
	Breaker string `json:"breaker,omitempty"`
	// ElapsedMS is the server-side solve latency in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// BatchSolveItem is one instance of a batch. Empty Query or DB fields fall
// back to the batch-level defaults in BatchSolveRequest, so a batch of many
// queries over one snapshot (or one query over many snapshots) states the
// shared part once.
type BatchSolveItem struct {
	Query string `json:"query,omitempty"`
	DB    string `json:"db,omitempty"`
}

// BatchSolveRequest decides many CERTAINTY(q) instances in one request.
// The batch occupies a single worker slot; inside it, items (and, with
// Shards, sub-instances of each item) fan out on the process-wide bounded
// worker pool, and plan compilation is amortized across items sharing a
// canonical query. Limits (TimeoutMS, Budget, DegradeSamples, SampleSeed)
// apply per item and are clamped by server policy exactly like a single
// solve's.
type BatchSolveRequest struct {
	Items []BatchSolveItem `json:"items"`
	// Query and DB are defaults for items that omit theirs.
	Query string `json:"query,omitempty"`
	DB    string `json:"db,omitempty"`
	// Per-item limits; see SolveRequest for semantics.
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	Budget         int64 `json:"budget,omitempty"`
	DegradeSamples int   `json:"degrade_samples,omitempty"`
	SampleSeed     int64 `json:"sample_seed,omitempty"`
	// Shards enables component-partitioned parallel solving per item: > 0
	// caps the data shards per query component, < 0 selects an automatic
	// count, 0 (default) solves each item monolithically. Sharding never
	// changes verdicts.
	Shards int `json:"shards,omitempty"`
	// Stream asks for an NDJSON response: one BatchItemResult object per
	// line, written as each item completes (completion order, use Index to
	// reorder). Equivalent to sending "Accept: application/x-ndjson".
	Stream bool `json:"stream,omitempty"`
	// IfDBVersion fences the whole batch to an exact hosted-database
	// version, exactly like SolveRequest.IfDBVersion: the batch pins one
	// snapshot, and if that snapshot is at any other version the entire
	// request fails with CodeVersionFenced before any item is solved.
	IfDBVersion *uint64 `json:"if_db_version,omitempty"`
}

// BatchItemResult is one item's outcome. Exactly one of Verdict and Error
// is set: Error carries the same taxonomy codes as top-level failures
// (malformed, unsupported, internal), scoped to this item — other items are
// unaffected.
type BatchItemResult struct {
	Index   int             `json:"index"`
	Verdict *solver.Verdict `json:"verdict,omitempty"`
	Error   *ErrorBody      `json:"error,omitempty"`
	// Cached is true when the verdict came from the verdict cache.
	Cached bool `json:"cached,omitempty"`
}

// BatchSolveResponse is the non-streaming batch response: one result per
// item, in item order.
type BatchSolveResponse struct {
	Results []BatchItemResult `json:"results"`
	// Clamped is present when server policy tightened the requested limits.
	Clamped *ClampReport `json:"clamped,omitempty"`
	// ElapsedMS is the server-side wall-clock time for the whole batch.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// DBMutateRequest is the body of POST /v1/db/facts (insert) and
// DELETE /v1/db/facts (delete): facts in the shared textual database
// format, plus an optional compare-and-swap guard.
type DBMutateRequest struct {
	// Facts in the textual database format, e.g. "R(a | b) R(a | b2)".
	Facts string `json:"facts"`
	// IfVersion, when set, makes the mutation conditional: it applies only
	// if the database is at exactly this version, and fails with
	// CodeConflict (HTTP 409) otherwise. Mutations carrying IfVersion are
	// safely retryable — a retry of an already-applied mutation conflicts
	// instead of double-applying. Omitted means unconditional.
	IfVersion *uint64 `json:"if_version,omitempty"`
}

// DBMutateResponse reports a committed (durable and published) mutation.
type DBMutateResponse struct {
	// Version after the mutation. Unchanged from before when the request
	// was a no-op (inserting only present facts / deleting only absent
	// ones), which is reported by Applied == 0.
	Version uint64 `json:"version"`
	// Applied counts the facts actually inserted plus actually deleted.
	Applied int `json:"applied"`
}

// DBGetResponse describes the hosted database (GET /v1/db). The fact dump
// is included only when requested with ?facts=1 — snapshots can be large.
type DBGetResponse struct {
	Version   uint64   `json:"version"`
	NumFacts  int      `json:"num_facts"`
	NumBlocks int      `json:"num_blocks"`
	Relations []string `json:"relations,omitempty"`
	// Digest is the content digest of the snapshot (the same composition
	// the verdict cache keys on).
	Digest string `json:"digest"`
	// ReadOnly is true while the store is degraded after a disk fault.
	ReadOnly bool `json:"read_only,omitempty"`
	// Facts is the textual dump, present only with ?facts=1.
	Facts string `json:"facts,omitempty"`
}

// ClassifyRequest asks for the complexity classification of a query alone;
// classification is polynomial in the query, so these requests bypass the
// worker pool.
type ClassifyRequest struct {
	Query string `json:"query"`
}

// ClassifyResponse reports the Koutris–Wijsen-style classification of the
// query: the class of CERTAINTY(q) and whether it is tractable. The class
// itself travels in the shared Envelope.
type ClassifyResponse struct {
	Envelope
	Reason string `json:"reason,omitempty"`
	InP    bool   `json:"in_p"`
}

// CompileRequest asks the server to compile the query's consistent
// first-order rewriting to an executable backend program
// (POST /v1/compile). Compilation is per-query work — no database is
// involved — so, like classification, these requests bypass the worker
// pool.
type CompileRequest struct {
	// Query in the textual query language, e.g. "R(x | y), S(y | x)".
	Query string `json:"query"`
	// Dialect selects the backend language: "sql" (default) or "datalog".
	Dialect string `json:"dialect,omitempty"`
}

// CompileResponse carries the emitted program. Only FO-class queries
// compile; for any other class the endpoint answers 422 with
// code="unsupported" and the classification's wire code in
// ErrorBody.Class, so the caller can fall back to /v1/solve.
type CompileResponse struct {
	Envelope
	// Dialect echoes the emitted dialect ("sql" or "datalog").
	Dialect string `json:"dialect"`
	// Program is the complete, self-contained program text: for SQL one
	// statement whose single boolean column `certain` is the certain
	// answer; for Datalog a stratified rule set whose goal predicate
	// `certain` is derived iff the query is certain.
	Program string `json:"program"`
	// SchemaNotes documents the schema convention the program assumes
	// (table/predicate naming, column order, key prefix).
	SchemaNotes string `json:"schema_notes,omitempty"`
}

// HealthResponse is the body of /healthz and /readyz.
type HealthResponse struct {
	Status   string `json:"status"`
	Workers  int    `json:"workers"`
	Inflight int64  `json:"inflight"`
	Queued   int64  `json:"queued"`
	Draining bool   `json:"draining"`
	// ReadOnly is true while the hosted store is degraded after a disk
	// fault. /readyz reports 503 for the duration so load balancers and
	// fleet health probes stop routing to the degraded node; /healthz keeps
	// answering 200 (the process is alive and still serves reads).
	ReadOnly bool `json:"read_only,omitempty"`
}

// StatszResponse is the body of /statsz: occupancy and hit/miss/eviction
// counters for each serving-layer cache. Verdicts is all-zero when the
// verdict cache is disabled (VerdictCacheSize < 0).
type StatszResponse struct {
	Classify lru.Stats `json:"classify"`
	Plans    lru.Stats `json:"plans"`
	Verdicts lru.Stats `json:"verdicts"`
	// ShardMemo is the per-shard verdict memo behind delta re-solve
	// (all-zero when stateless or disabled). Its eviction counter reports
	// capacity evictions only; mutation-driven invalidations are counted
	// separately in ShardMemoInvalidations.
	ShardMemo lru.Stats `json:"shard_memo"`
	// ShardMemoInvalidations counts memo entries removed by /v1/db
	// mutations (block-granular invalidation).
	ShardMemoInvalidations uint64 `json:"shard_memo_invalidations,omitempty"`
	// Intern is the symbol-interner census of the hosted database's
	// columnar view (all-zero when certd runs stateless).
	Intern intern.Stats `json:"intern"`
}
