package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/solver"
)

// oddRingText renders the odd-ring coNP instance for q0 (see
// internal/solver/cancel_test.go): certain iff n is odd, and the exact
// falsifying search needs ≈6n nodes — so a small step budget cuts it off
// deterministically.
func oddRingText(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		xi := fmt.Sprintf("x%d", i)
		xn := fmt.Sprintf("x%d", (i+1)%n)
		zi := fmt.Sprintf("z%d", i)
		fmt.Fprintf(&b, "R0(%s | A)\nR0(%s | B)\n", xi, xi)
		fmt.Fprintf(&b, "S0(A, %s | %s)\nS0(A, %s | %s)\n", zi, xi, zi, xn)
		fmt.Fprintf(&b, "S0(B, %s | %s)\nS0(B, %s | %s)\n", zi, xi, zi, xn)
	}
	return b.String()
}

func q0Text() string { return cq.Q0().String() }

// doJSON runs one request against the server's handler and returns the
// recorder.
func doJSON(t *testing.T, s *Server, ctx context.Context, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(data))
	if ctx != nil {
		req = req.WithContext(ctx)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// decodeSolve parses a 200 solve response.
func decodeSolve(t *testing.T, rec *httptest.ResponseRecorder) SolveResponse {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response %s: %v", rec.Body, err)
	}
	return resp
}

// decodeError parses a non-200 error body.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int, wantCode string) ErrorBody {
	t.Helper()
	if rec.Code != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, wantStatus, rec.Body)
	}
	var body ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("decode error body %s: %v", rec.Body, err)
	}
	if body.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", body.Code, wantCode, body.Message)
	}
	return body
}

// waitUntil polls cond for up to two seconds.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// blockingSolve returns a solve hook that signals entry on entered and then
// blocks until the gate closes (conclusive verdict) or the context is
// cancelled (partial verdict with Steps=42), mirroring a governed solve.
func blockingSolve(entered chan struct{}, gate chan struct{}) func(context.Context, cq.Query, *db.DB, solver.Options) (solver.Verdict, error) {
	return func(ctx context.Context, q cq.Query, d *db.DB, opts solver.Options) (solver.Verdict, error) {
		entered <- struct{}{}
		select {
		case <-gate:
			return solver.Verdict{Outcome: solver.OutcomeCertain, Result: solver.Result{Certain: true}}, nil
		case <-ctx.Done():
			return solver.Verdict{
				Outcome:  solver.OutcomeUnknown,
				Err:      ctx.Err(),
				Evidence: &solver.Evidence{Steps: 42},
			}, nil
		}
	}
}

// TestSolveEndToEnd runs real solves through the full handler stack: exact
// FO, exact coNP (small instance), governed cutoff with degraded evidence,
// and policy-clamp reporting.
func TestSolveEndToEnd(t *testing.T) {
	s := New(Config{Policy: govern.Policy{DefaultBudget: 1 << 20, MaxBudget: 1 << 20}})

	rec := doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b), R(a | c)"})
	resp := decodeSolve(t, rec)
	if resp.Verdict.Outcome != solver.OutcomeCertain || !resp.Verdict.Result.Certain {
		t.Fatalf("FO verdict = %+v, want certain", resp.Verdict)
	}
	if resp.Clamped == nil || !resp.Clamped.Budget || resp.Clamped.BudgetVal != 1<<20 {
		t.Fatalf("Clamped = %+v, want the defaulted budget reported", resp.Clamped)
	}

	rec = doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: q0Text(), DB: oddRingText(5)})
	resp = decodeSolve(t, rec)
	if resp.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("odd-ring verdict = %+v, want certain", resp.Verdict)
	}
	if resp.Breaker != "" {
		t.Fatalf("Breaker = %q, want none", resp.Breaker)
	}

	rec = doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{
		Query: q0Text(), DB: oddRingText(21), Budget: 60, DegradeSamples: 50, SampleSeed: 1,
	})
	resp = decodeSolve(t, rec)
	v := resp.Verdict
	if v.Outcome != solver.OutcomeUnknown || !errors.Is(v.Err, govern.ErrBudget) {
		t.Fatalf("cut-off verdict = %+v (err %v), want unknown/budget", v, v.Err)
	}
	if v.Evidence == nil || v.Evidence.Samples != 50 || v.Evidence.Estimate != 1 {
		t.Fatalf("Evidence = %+v, want 50 samples at estimate 1", v.Evidence)
	}
}

// TestClassifyAndHealth covers the auxiliary endpoints.
func TestClassifyAndHealth(t *testing.T) {
	s := New(Config{})
	rec := doJSON(t, s, nil, "POST", "/v1/classify", ClassifyRequest{Query: q0Text()})
	if rec.Code != http.StatusOK {
		t.Fatalf("classify status = %d", rec.Code)
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.InP {
		t.Fatalf("q0 classified as tractable: %+v", cr)
	}
	rec = doJSON(t, s, nil, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	rec = doJSON(t, s, nil, "GET", "/readyz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz = %d", rec.Code)
	}
	s.BeginDrain()
	rec = doJSON(t, s, nil, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", rec.Code)
	}
	rec = doJSON(t, s, nil, "GET", "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200 (process is alive)", rec.Code)
	}
}

// TestErrorTaxonomy checks each permanent error class maps to its code and
// status.
func TestErrorTaxonomy(t *testing.T) {
	s := New(Config{Policy: govern.Policy{MaxBudget: 10, Reject: true}})
	req := func(body any) *httptest.ResponseRecorder { return doJSON(t, s, nil, "POST", "/v1/solve", body) }

	decodeError(t, req("not json"), http.StatusBadRequest, CodeMalformed)
	decodeError(t, req(SolveRequest{Query: "R(x |", DB: "R(a | b)"}), http.StatusBadRequest, CodeMalformed)
	decodeError(t, req(SolveRequest{Query: "R(x | y)", DB: "R(a | b)\nR(a, b | c)"}), http.StatusBadRequest, CodeMalformed)
	decodeError(t, req(SolveRequest{Query: "R(x | y), R(y | x)", DB: "R(a | b)"}), http.StatusUnprocessableEntity, CodeUnsupported)
	decodeError(t, req(SolveRequest{Query: "R(x | y)", DB: "R(a | b)", Budget: 100}), http.StatusUnprocessableEntity, CodePolicy)
}

// TestSheddingUnderSaturation is the admission-control half of the
// acceptance criterion: with one worker and a one-deep queue, a third
// concurrent request is shed immediately with 429 + Retry-After, and the
// first two still complete once the pool frees up.
func TestSheddingUnderSaturation(t *testing.T) {
	entered := make(chan struct{}, 8)
	gate := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 1, RetryAfter: 1500 * time.Millisecond}
	cfg.solve = blockingSolve(entered, gate)
	s := New(cfg)

	var wg sync.WaitGroup
	results := make([]*httptest.ResponseRecorder, 2)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
		}()
	}
	launch(0)
	<-entered // request 0 holds the only worker
	launch(1)
	waitUntil(t, "request 1 to queue", func() bool { return s.queued.Load() == 1 })

	// Pool full, queue full: request 2 must be shed, not started.
	rec := doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	body := decodeError(t, rec, http.StatusTooManyRequests, CodeShed)
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After header = %q, want %q (1.5s rounded up)", got, "2")
	}
	if body.RetryAfterMS != 1500 {
		t.Errorf("RetryAfterMS = %d, want 1500", body.RetryAfterMS)
	}

	close(gate)
	wg.Wait()
	for i, rec := range results {
		resp := decodeSolve(t, rec)
		if resp.Verdict.Outcome != solver.OutcomeCertain {
			t.Errorf("request %d verdict = %+v, want certain", i, resp.Verdict)
		}
	}
}

// TestBreakerResilience is the circuit-breaker half of the acceptance
// criterion, end to end with the real solver: repeated budget cutoffs on
// the coNP class trip its breaker; hard requests then get fast degraded
// verdicts while FO requests on the same server still answer exactly; after
// the cooldown a successful probe closes the breaker again.
func TestBreakerResilience(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := Config{
		Workers:          2,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Second,
		Policy:           govern.Policy{MaxBudget: 1 << 20},
	}
	cfg.now = clock.Now
	s := New(cfg)
	hard := SolveRequest{Query: q0Text(), DB: oddRingText(21), Budget: 60, DegradeSamples: 50, SampleSeed: 1}

	// Two consecutive budget cutoffs on the hard class.
	for i := 0; i < 2; i++ {
		resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
		if resp.Breaker != "" {
			t.Fatalf("request %d Breaker = %q, want closed-path solve", i, resp.Breaker)
		}
		if !errors.Is(resp.Verdict.Err, govern.ErrBudget) {
			t.Fatalf("request %d err = %v, want budget cutoff", i, resp.Verdict.Err)
		}
	}

	// Breaker open: the hard request short-circuits to the degraded path —
	// no exact search steps, sampling evidence present, cause "skipped".
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
	if resp.Breaker != BreakerOpen {
		t.Fatalf("Breaker = %q, want open", resp.Breaker)
	}
	if !errors.Is(resp.Verdict.Err, solver.ErrExactSkipped) {
		t.Fatalf("short-circuited err = %v, want ErrExactSkipped", resp.Verdict.Err)
	}
	if ev := resp.Verdict.Evidence; ev == nil || ev.Steps != 0 || ev.Samples == 0 {
		t.Fatalf("short-circuited evidence = %+v, want sampling without search steps", resp.Verdict.Evidence)
	}

	// FO traffic on the same server is unaffected and still exact.
	foResp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve",
		SolveRequest{Query: "R(x | y)", DB: "R(a | b), R(a | c)"}))
	if foResp.Breaker != "" || foResp.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("FO response = %+v, want unaffected exact verdict", foResp)
	}

	// After the cooldown, one probe runs the exact path; with an adequate
	// budget it concludes (odd ring is certain) and closes the breaker.
	clock.Advance(6 * time.Second)
	probe := hard
	probe.Budget = 1 << 20
	resp = decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", probe))
	if resp.Breaker != BreakerProbe {
		t.Fatalf("Breaker = %q, want probe", resp.Breaker)
	}
	if resp.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("probe verdict = %+v, want certain", resp.Verdict)
	}
	resp = decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", probe))
	if resp.Breaker != "" {
		t.Fatalf("post-recovery Breaker = %q, want closed-path solve", resp.Breaker)
	}
}

// TestShedDoesNotLeakBreakerProbe is a regression test: a hard-class
// request that is shed (or otherwise fails admission) after its breaker's
// cooldown has elapsed must NOT consume the half-open probe slot. If it
// did, probing would stay true forever, every later hard request would
// short-circuit to the degraded verdict, and the class could never recover
// exact service. The breaker is therefore consulted only after a worker
// slot is held.
func TestShedDoesNotLeakBreakerProbe(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	var cutoff atomic.Bool
	cutoff.Store(true)
	cfg := Config{
		Workers:          1,
		QueueDepth:       -1, // no admission queue: saturation sheds instantly
		BreakerThreshold: 1,
		BreakerCooldown:  5 * time.Second,
	}
	cfg.now = clock.Now
	cfg.solve = func(ctx context.Context, q cq.Query, d *db.DB, opts solver.Options) (solver.Verdict, error) {
		if len(q.Atoms) == 1 { // the FO filler query: block until released
			entered <- struct{}{}
			<-gate
			return solver.Verdict{Outcome: solver.OutcomeCertain, Result: solver.Result{Certain: true}}, nil
		}
		if cutoff.Load() {
			return solver.Verdict{Outcome: solver.OutcomeUnknown, Err: govern.ErrBudget}, nil
		}
		return solver.Verdict{Outcome: solver.OutcomeCertain, Result: solver.Result{Certain: true}}, nil
	}
	s := New(cfg)
	hard := SolveRequest{Query: q0Text(), DB: oddRingText(3)}
	fo := SolveRequest{Query: "R(x | y)", DB: "R(a | b)"}

	// One cutoff trips the hard class's breaker (threshold 1).
	resp := decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
	if !errors.Is(resp.Verdict.Err, govern.ErrBudget) {
		t.Fatalf("tripping request err = %v, want budget cutoff", resp.Verdict.Err)
	}
	clock.Advance(6 * time.Second) // past cooldown: next admit would probe

	// Saturate the single worker with an FO solve, then shed a hard request.
	done := make(chan struct{})
	var foRec *httptest.ResponseRecorder
	go func() {
		defer close(done)
		foRec = doJSON(t, s, nil, "POST", "/v1/solve", fo)
	}()
	<-entered
	decodeError(t, doJSON(t, s, nil, "POST", "/v1/solve", hard),
		http.StatusTooManyRequests, CodeShed)
	close(gate)
	<-done
	decodeSolve(t, foRec)

	// The shed request must not have claimed the probe: the next admitted
	// hard request gets it, concludes, and closes the breaker.
	cutoff.Store(false)
	resp = decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
	if resp.Breaker != BreakerProbe {
		t.Fatalf("post-shed Breaker = %q, want %q (probe leaked to the shed request?)", resp.Breaker, BreakerProbe)
	}
	if resp.Verdict.Outcome != solver.OutcomeCertain {
		t.Fatalf("probe verdict = %+v, want certain", resp.Verdict)
	}
	resp = decodeSolve(t, doJSON(t, s, nil, "POST", "/v1/solve", hard))
	if resp.Breaker != "" {
		t.Fatalf("post-recovery Breaker = %q, want closed-path solve", resp.Breaker)
	}
}

// TestDrainReturnsPartialVerdict is the shutdown half of the acceptance
// criterion at the handler level: draining mid-solve cancels the governor,
// the in-flight request still gets a 200 with the partial verdict, new
// requests get 503, and Drain returns once responses are flushed.
func TestDrainReturnsPartialVerdict(t *testing.T) {
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	cfg := Config{Workers: 1}
	cfg.solve = blockingSolve(entered, gate)
	s := New(cfg)

	var rec *httptest.ResponseRecorder
	done := make(chan struct{})
	go func() {
		defer close(done)
		rec = doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	}()
	<-entered
	s.BeginDrain()
	<-done

	resp := decodeSolve(t, rec)
	if resp.Verdict.Outcome != solver.OutcomeUnknown {
		t.Fatalf("drained verdict = %+v, want a partial (unknown) verdict", resp.Verdict)
	}
	if !errors.Is(resp.Verdict.Err, context.Canceled) {
		t.Fatalf("drained verdict err = %v, want canceled", resp.Verdict.Err)
	}
	if resp.Verdict.Evidence == nil || resp.Verdict.Evidence.Steps != 42 {
		t.Fatalf("partial evidence lost: %+v", resp.Verdict.Evidence)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	rec2 := doJSON(t, s, nil, "POST", "/v1/solve", SolveRequest{Query: "R(x | y)", DB: "R(a | b)"})
	decodeError(t, rec2, http.StatusServiceUnavailable, CodeShutdown)
}
