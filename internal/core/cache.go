package core

import (
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/lru"
	"github.com/cqa-go/certainty/internal/obs"
)

// DefaultCacheSize bounds a classification cache built with NewCache. The
// canonical-form working set of real workloads is small (queries repeat up
// to renaming); the bound exists so an adversarial stream of never-repeating
// queries cannot grow the cache without limit.
const DefaultCacheSize = 4096

// Cache memoizes classifications by the canonical form of the query, so
// that repeated Solve calls over renamed/reordered copies of the same query
// (the answers fast path, per-candidate dispatch, interactive sessions) pay
// for the attack-graph analysis once. The cache is a capped LRU: least
// recently used classifications are evicted once the bound is reached.
// Safe for concurrent use.
type Cache struct {
	mu sync.Mutex
	c  *lru.Cache[string, cacheEntry]
	m  *obs.CacheMetrics
}

type cacheEntry struct {
	cls Classification
	err error
}

// NewCache returns an empty classification cache bounded at
// DefaultCacheSize entries.
func NewCache() *Cache {
	return NewCacheSize(DefaultCacheSize)
}

// NewCacheSize returns an empty classification cache holding at most size
// entries (floored at one).
func NewCacheSize(size int) *Cache {
	return &Cache{c: lru.New[string, cacheEntry](size)}
}

// Instrument mirrors the cache's hits, misses, evictions, and occupancy
// into the given metrics (obs.NewCacheMetrics). A nil argument leaves the
// cache uninstrumented. Must be called before the cache is shared across
// goroutines.
func (c *Cache) Instrument(m *obs.CacheMetrics) {
	c.m = m
	if m != nil {
		m.SetSize(c.c.Len(), c.c.Cap())
	}
}

// Classify is Classify with memoization. The classification is computed on
// the caller's query (so atom indexes in the result match the input), but
// the hit/miss decision uses the canonical key: a cache hit recomputes
// nothing for structurally identical queries with different names only if
// the query is byte-identical after canonicalization; otherwise the cached
// outcome class is reused and the graph recomputed lazily on demand.
//
// For simplicity and correctness, entries store the full classification of
// the *canonical* query; callers needing atom-level detail for their
// original naming should use the Graph of a direct Classify call.
func (c *Cache) Classify(q cq.Query) (Classification, error) {
	key := cq.CanonicalKey(q)
	c.mu.Lock()
	e, ok := c.c.Get(key)
	c.mu.Unlock()
	if ok {
		c.m.Hit()
		return e.cls, e.err
	}
	c.m.Miss()
	canon, _ := cq.Canonicalize(q)
	cls, err := Classify(canon)
	c.mu.Lock()
	if c.c.Put(key, cacheEntry{cls: cls, err: err}) {
		c.m.Evicted(1)
	}
	c.m.SetSize(c.c.Len(), c.c.Cap())
	c.mu.Unlock()
	return cls, err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c.Len()
}

// Stats returns the cache's occupancy and hit/miss/eviction counters.
func (c *Cache) Stats() lru.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c.Stats()
}
