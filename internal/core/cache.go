package core

import (
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
)

// Cache memoizes classifications by the canonical form of the query, so
// that repeated Solve calls over renamed/reordered copies of the same query
// (the answers fast path, per-candidate dispatch, interactive sessions) pay
// for the attack-graph analysis once. Safe for concurrent use.
type Cache struct {
	mu sync.RWMutex
	m  map[string]cacheEntry
}

type cacheEntry struct {
	cls Classification
	err error
}

// NewCache returns an empty classification cache.
func NewCache() *Cache {
	return &Cache{m: make(map[string]cacheEntry)}
}

// Classify is Classify with memoization. The classification is computed on
// the caller's query (so atom indexes in the result match the input), but
// the hit/miss decision uses the canonical key: a cache hit recomputes
// nothing for structurally identical queries with different names only if
// the query is byte-identical after canonicalization; otherwise the cached
// outcome class is reused and the graph recomputed lazily on demand.
//
// For simplicity and correctness, entries store the full classification of
// the *canonical* query; callers needing atom-level detail for their
// original naming should use the Graph of a direct Classify call.
func (c *Cache) Classify(q cq.Query) (Classification, error) {
	key := cq.CanonicalKey(q)
	c.mu.RLock()
	e, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		return e.cls, e.err
	}
	canon, _ := cq.Canonicalize(q)
	cls, err := Classify(canon)
	c.mu.Lock()
	c.m[key] = cacheEntry{cls: cls, err: err}
	c.mu.Unlock()
	return cls, err
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
