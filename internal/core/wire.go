package core

import (
	"encoding/json"
	"fmt"
)

// Code returns the stable wire identifier of the class, used by the JSON
// encodings of classifications and verdicts. String() remains the verbose
// human-readable form; Code is the machine-readable one and must never
// change for an existing class.
func (c Class) Code() string {
	switch c {
	case ClassFO:
		return "fo"
	case ClassPTimeTerminal:
		return "ptime-terminal"
	case ClassPTimeACk:
		return "ptime-ack"
	case ClassPTimeCk:
		return "ptime-ck"
	case ClassCoNPComplete:
		return "conp-complete"
	case ClassOpenConjecturedPTime:
		return "open"
	default:
		return fmt.Sprintf("class-%d", int(c))
	}
}

// classCodes is the inverse of Code for the known classes.
var classCodes = map[string]Class{
	"fo":             ClassFO,
	"ptime-terminal": ClassPTimeTerminal,
	"ptime-ack":      ClassPTimeACk,
	"ptime-ck":       ClassPTimeCk,
	"conp-complete":  ClassCoNPComplete,
	"open":           ClassOpenConjecturedPTime,
}

// MarshalText encodes the class as its wire code.
func (c Class) MarshalText() ([]byte, error) { return []byte(c.Code()), nil }

// UnmarshalText decodes a wire code produced by MarshalText.
func (c *Class) UnmarshalText(text []byte) error {
	cls, ok := classCodes[string(text)]
	if !ok {
		return fmt.Errorf("core: unknown class code %q", text)
	}
	*c = cls
	return nil
}

// classificationWire is the JSON shape of a Classification. The witnessing
// structures (attack graph, cycle shape) are in-memory artifacts full of
// internal indexes; only the class and the human-readable reason travel
// over the wire.
type classificationWire struct {
	Class  Class  `json:"class"`
	Reason string `json:"reason,omitempty"`
}

// MarshalJSON encodes the classification's class and reason. Graph and
// Shape are deliberately omitted: they are recomputable from the query and
// meaningless without it.
func (c Classification) MarshalJSON() ([]byte, error) {
	return json.Marshal(classificationWire{Class: c.Class, Reason: c.Reason})
}

// UnmarshalJSON decodes a classification produced by MarshalJSON. Graph and
// Shape are left nil; use Classify on the original query to recover them.
func (c *Classification) UnmarshalJSON(data []byte) error {
	var w classificationWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*c = Classification{Class: w.Class, Reason: w.Reason}
	return nil
}
