package core

import (
	"fmt"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
)

// TestCacheBounded: the classification cache is a capped LRU — an unbounded
// stream of distinct canonical queries never grows it past its capacity, and
// the least recently used entries are the ones evicted.
func TestCacheBounded(t *testing.T) {
	c := NewCacheSize(2)
	qs := make([]cq.Query, 3)
	for i := range qs {
		qs[i] = cq.MustParseQuery(fmt.Sprintf("R%d(x | y), S%d(y | x)", i, i))
	}
	if _, err := c.Classify(qs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(qs[1]); err != nil {
		t.Fatal(err)
	}
	// Touch qs[0] so qs[1] is the LRU entry.
	if _, err := c.Classify(qs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Classify(qs[2]); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want capacity 2", c.Len())
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	if s.Hits != 1 {
		t.Fatalf("Hits = %d, want 1 (the qs[0] re-touch)", s.Hits)
	}
	// qs[1] was evicted: classifying it again must miss (miss count grows).
	missesBefore := s.Misses
	if _, err := c.Classify(qs[1]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != missesBefore+1 {
		t.Fatalf("Misses = %d, want %d (evicted entry must be recomputed)", got, missesBefore+1)
	}
}

// TestCacheEvictionCorrectness: results served after evictions are identical
// to direct classification.
func TestCacheEvictionCorrectness(t *testing.T) {
	c := NewCacheSize(1)
	for i := 0; i < 8; i++ {
		q := cq.MustParseQuery(fmt.Sprintf("T%d(x | y)", i%3))
		direct, derr := Classify(q)
		cached, cerr := c.Classify(q)
		if (derr == nil) != (cerr == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", q, derr, cerr)
		}
		if derr == nil && direct.Class != cached.Class {
			t.Fatalf("%s: direct %v cached %v", q, direct.Class, cached.Class)
		}
		if c.Len() > 1 {
			t.Fatalf("Len = %d exceeds capacity 1", c.Len())
		}
	}
}
