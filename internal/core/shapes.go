package core

import (
	"github.com/cqa-go/certainty/internal/cq"
)

// CycleShape describes a query matching C(k) or AC(k) of Definition 8 up to
// renaming of relations and variables: binary [2,1] atoms forming a single
// variable cycle, optionally plus one all-key atom over exactly the cycle
// variables.
type CycleShape struct {
	K int
	// CycleAtoms[i] is the index in Q.Atoms of the atom R with
	// R(v_i | v_{i+1 mod K}).
	CycleAtoms []int
	// Vars[i] is the variable at cycle position i.
	Vars []string
	// SkAtom is the index of the all-key atom, or -1 for C(k).
	SkAtom int
	// SkPositions maps argument positions of the Sk atom to cycle
	// positions: the j-th argument of Sk is Vars[SkPositions[j]].
	SkPositions []int
}

// MatchCycleShape recognizes C(k) (withSk=false) and AC(k) (withSk=true)
// queries up to renaming. The match is purely structural: k >= 2, the
// binary atoms form one elementary cycle over k distinct variables, and for
// AC(k) the extra atom is all-key of arity k mentioning each cycle variable
// exactly once.
func MatchCycleShape(q cq.Query, withSk bool) (*CycleShape, bool) {
	if q.HasSelfJoin() {
		return nil, false
	}
	var binary []int
	skAtom := -1
	for i, a := range q.Atoms {
		switch {
		case a.Arity() == 2 && a.KeyLen == 1 && a.Args[0].IsVar() && a.Args[1].IsVar() && a.Args[0] != a.Args[1]:
			binary = append(binary, i)
		case a.AllKey():
			if skAtom >= 0 {
				return nil, false // at most one Sk atom
			}
			skAtom = i
		default:
			return nil, false
		}
	}
	k := len(binary)
	if k < 2 {
		return nil, false
	}
	if withSk != (skAtom >= 0) {
		return nil, false
	}

	// The binary atoms must form a single cycle: each variable occurs
	// exactly once as a key and once as a non-key.
	nextVar := make(map[string]string, k) // key var → non-key var
	atomByKeyVar := make(map[string]int, k)
	for _, i := range binary {
		a := q.Atoms[i]
		kv, nv := a.Args[0].Value, a.Args[1].Value
		if _, dup := nextVar[kv]; dup {
			return nil, false
		}
		nextVar[kv] = nv
		atomByKeyVar[kv] = i
	}
	if len(nextVar) != k {
		return nil, false
	}
	// Walk the cycle from the smallest-index binary atom.
	start := q.Atoms[binary[0]].Args[0].Value
	vars := make([]string, 0, k)
	atoms := make([]int, 0, k)
	v := start
	for range binary {
		idx, ok := atomByKeyVar[v]
		if !ok {
			return nil, false
		}
		vars = append(vars, v)
		atoms = append(atoms, idx)
		v = nextVar[v]
	}
	if v != start || len(vars) != k {
		return nil, false
	}
	seen := make(map[string]bool, k)
	for _, x := range vars {
		if seen[x] {
			return nil, false
		}
		seen[x] = true
	}

	shape := &CycleShape{K: k, CycleAtoms: atoms, Vars: vars, SkAtom: skAtom}
	if skAtom >= 0 {
		sk := q.Atoms[skAtom]
		if sk.Arity() != k {
			return nil, false
		}
		pos := make(map[string]int, k)
		for i, x := range vars {
			pos[x] = i
		}
		used := make(map[string]bool, k)
		shape.SkPositions = make([]int, k)
		for j, t := range sk.Args {
			if t.IsConst {
				return nil, false
			}
			p, ok := pos[t.Value]
			if !ok || used[t.Value] {
				return nil, false
			}
			used[t.Value] = true
			shape.SkPositions[j] = p
		}
	}
	return shape, true
}
