package core

import (
	"fmt"
	"strings"
)

// DOT renders the attack graph in Graphviz format: weak attacks as solid
// edges, strong attacks bold red, and each vertex labeled with its atom.
func (g *AttackGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph attack {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for i, a := range g.Q.Atoms {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", i, a.String())
	}
	for i := 0; i < g.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			if i == j || !g.attacks[i][j] {
				continue
			}
			attrs := ""
			if g.IsStrong(i, j) {
				attrs = " [color=red, penwidth=2, label=\"strong\"]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", i, j, attrs)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
