// Package core implements the paper's primary contribution: attack graphs
// of acyclic self-join-free Boolean conjunctive queries (Definition 3),
// the weak/strong classification of attacks and attack cycles
// (Definition 5), and the effective complexity classifier for CERTAINTY(q)
// built from Theorems 1–4.
package core

import (
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/fd"
	"github.com/cqa-go/certainty/internal/graph"
	"github.com/cqa-go/certainty/internal/jointree"
)

// AttackGraph is the attack graph of an acyclic self-join-free Boolean
// conjunctive query. Vertices are atom indexes of Q. By the join-tree
// independence result of [Wijsen, TODS 2012], the graph does not depend on
// which join tree is used; Build uses the supplied tree only as a witness.
type AttackGraph struct {
	Q    cq.Query
	Tree *jointree.Tree

	// plus[i] is F_i^{+,q}: the closure of key(F_i) under K(q \ {F_i})
	// (Definition 2).
	plus []cq.VarSet
	// full[i] is F_i^{⊕,q}: the closure of key(F_i) under K(q)
	// (Definition 5).
	full []cq.VarSet
	// attacks[i][j] reports F_i ↝ F_j.
	attacks [][]bool
}

// BuildAttackGraph constructs the attack graph of q using a join tree built
// with the given tie-break. It fails when q has a self-join or is cyclic
// (attack graphs are defined for acyclic queries only).
func BuildAttackGraph(q cq.Query, tb jointree.TieBreak) (*AttackGraph, error) {
	if q.HasSelfJoin() {
		return nil, fmt.Errorf("core: attack graph of %s: %w", q, ErrSelfJoin)
	}
	tree, err := jointree.Build(q, tb)
	if err != nil {
		return nil, err
	}
	return buildFromTree(q, tree), nil
}

func buildFromTree(q cq.Query, tree *jointree.Tree) *AttackGraph {
	n := q.Len()
	g := &AttackGraph{
		Q:       q,
		Tree:    tree,
		plus:    make([]cq.VarSet, n),
		full:    make([]cq.VarSet, n),
		attacks: make([][]bool, n),
	}
	kq := fd.KeysOf(q)
	for i := 0; i < n; i++ {
		kqMinus := fd.KeysOf(q.Without(i))
		key := q.Atoms[i].KeyVars()
		g.plus[i] = kqMinus.Closure(key).Intersect(q.Vars())
		g.full[i] = kq.Closure(key).Intersect(q.Vars())
	}
	for i := 0; i < n; i++ {
		g.attacks[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			g.attacks[i][j] = g.attackVia(i, j)
		}
	}
	return g
}

// attackVia applies Definition 3: F_i attacks F_j iff no label on the unique
// join-tree path between them is contained in F_i^{+,q}. The empty label
// (between stitched components) is contained in every closure, so attacks
// never cross connected components.
func (g *AttackGraph) attackVia(i, j int) bool {
	for _, label := range g.Tree.PathLabels(i, j) {
		if label.SubsetOf(g.plus[i]) {
			return false
		}
	}
	return true
}

// AttacksViaWitness decides F_i ↝ F_j without the join tree, through the
// equivalent witness characterization: F attacks G iff some sequence of
// atoms F = H_0, ..., H_n = G has vars(H_k) ∩ vars(H_{k+1}) ⊄ F^{+,q} for
// every k. (If a tree-path label L ⊆ F^{+,q} separated F from G, any two
// atoms on opposite sides could only share variables inside L, so no such
// sequence could cross; conversely the tree path itself is a witness.)
// Exposed for cross-validation of the Definition 3 implementation.
func (g *AttackGraph) AttacksViaWitness(i, j int) bool {
	if i == j {
		return false
	}
	n := g.Len()
	reach := make([]bool, n)
	reach[i] = true
	queue := []int{i}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if reach[v] {
				continue
			}
			shared := g.Q.Atoms[u].Vars().Intersect(g.Q.Atoms[v].Vars())
			if shared.Len() == 0 || shared.SubsetOf(g.plus[i]) {
				continue
			}
			reach[v] = true
			queue = append(queue, v)
		}
	}
	return reach[j]
}

// Len returns the number of atoms/vertices.
func (g *AttackGraph) Len() int { return g.Q.Len() }

// Plus returns F_i^{+,q} (Definition 2). The set must not be modified.
func (g *AttackGraph) Plus(i int) cq.VarSet { return g.plus[i] }

// Full returns F_i^{⊕,q} (Definition 5). The set must not be modified.
func (g *AttackGraph) Full(i int) cq.VarSet { return g.full[i] }

// Attacks reports whether F_i ↝ F_j.
func (g *AttackGraph) Attacks(i, j int) bool { return g.attacks[i][j] }

// IsWeak reports whether the attack F_i ↝ F_j is weak: key(F_j) ⊆ F_i^{⊕,q}
// (Definition 5). It panics if the attack does not exist.
func (g *AttackGraph) IsWeak(i, j int) bool {
	if !g.attacks[i][j] {
		panic(fmt.Sprintf("core: no attack %d ↝ %d", i, j))
	}
	return g.Q.Atoms[j].KeyVars().SubsetOf(g.full[i])
}

// IsStrong reports whether the attack F_i ↝ F_j is strong (not weak).
func (g *AttackGraph) IsStrong(i, j int) bool { return !g.IsWeak(i, j) }

// Unattacked returns the indexes of atoms with no incoming attack.
func (g *AttackGraph) Unattacked() []int {
	var out []int
	for j := 0; j < g.Len(); j++ {
		attacked := false
		for i := 0; i < g.Len(); i++ {
			if i != j && g.attacks[i][j] {
				attacked = true
				break
			}
		}
		if !attacked {
			out = append(out, j)
		}
	}
	return out
}

// Digraph returns the attack graph as a plain digraph on atom indexes.
func (g *AttackGraph) Digraph() *graph.Digraph {
	d := graph.New(g.Len())
	for i := 0; i < g.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			if g.attacks[i][j] {
				d.AddEdge(i, j)
			}
		}
	}
	return d
}

// IsAcyclic reports whether the attack graph has no directed cycle; by
// Theorem 1 this is equivalent to first-order expressibility of
// CERTAINTY(q).
func (g *AttackGraph) IsAcyclic() bool { return !g.Digraph().HasCycle() }

// Cycles returns all elementary cycles of the attack graph, each as an atom
// index sequence.
func (g *AttackGraph) Cycles() [][]int { return g.Digraph().ElementaryCycles() }

// CycleIsStrong reports whether a cycle (vertex sequence) contains at least
// one strong attack.
func (g *AttackGraph) CycleIsStrong(cycle []int) bool {
	for i := range cycle {
		j := (i + 1) % len(cycle)
		if g.IsStrong(cycle[i], cycle[j]) {
			return true
		}
	}
	return false
}

// CycleIsTerminal reports whether no attack leads from a cycle vertex to a
// vertex outside the cycle (Definition 6).
func (g *AttackGraph) CycleIsTerminal(cycle []int) bool {
	in := make(map[int]bool, len(cycle))
	for _, v := range cycle {
		in[v] = true
	}
	for _, v := range cycle {
		for j := 0; j < g.Len(); j++ {
			if g.attacks[v][j] && !in[j] {
				return false
			}
		}
	}
	return true
}

// HasStrongCycle reports whether the attack graph contains a strong cycle.
// By Lemma 4 it suffices to look for a 2-cycle one of whose attacks is
// strong; the full enumeration is used by tests to cross-check Lemma 4.
func (g *AttackGraph) HasStrongCycle() bool {
	for i := 0; i < g.Len(); i++ {
		for j := i + 1; j < g.Len(); j++ {
			if g.attacks[i][j] && g.attacks[j][i] {
				if g.IsStrong(i, j) || g.IsStrong(j, i) {
					return true
				}
			}
		}
	}
	return false
}

// HasStrongCycleExhaustive decides the same property by enumerating all
// elementary cycles; exponential in the worst case, used for validation.
func (g *AttackGraph) HasStrongCycleExhaustive() bool {
	for _, c := range g.Cycles() {
		if g.CycleIsStrong(c) {
			return true
		}
	}
	return false
}

// AllCyclesWeakAndTerminal reports whether every cycle of the attack graph
// is weak and terminal — the hypothesis of Theorem 3. (True vacuously when
// the graph is acyclic.)
func (g *AttackGraph) AllCyclesWeakAndTerminal() bool {
	for _, c := range g.Cycles() {
		if g.CycleIsStrong(c) || !g.CycleIsTerminal(c) {
			return false
		}
	}
	return true
}

// WeakCycle2 is a 2-cycle F ↝ G ↝ F in the attack graph.
type WeakCycle2 struct{ F, G int }

// TerminalWeakCycles returns the 2-cycles of an attack graph all of whose
// cycles are weak and terminal (by Lemma 6 every cycle then has length 2).
// It panics if called on a graph violating the hypothesis.
func (g *AttackGraph) TerminalWeakCycles() []WeakCycle2 {
	if !g.AllCyclesWeakAndTerminal() {
		panic("core: TerminalWeakCycles requires all cycles weak and terminal")
	}
	var out []WeakCycle2
	for i := 0; i < g.Len(); i++ {
		for j := i + 1; j < g.Len(); j++ {
			if g.attacks[i][j] && g.attacks[j][i] {
				out = append(out, WeakCycle2{F: i, G: j})
			}
		}
	}
	return out
}

// StrongCycle2 returns a 2-cycle containing a strong attack, ordered so
// that the attack F ↝ G is strong, mirroring the setup of Theorem 2's
// proof ("we can assume F, G ∈ q such that F ↝ G ↝ F and the attack F ↝ G
// is strong"). ok is false when no strong cycle exists.
func (g *AttackGraph) StrongCycle2() (f, gAtom int, ok bool) {
	for i := 0; i < g.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			if i != j && g.attacks[i][j] && g.attacks[j][i] && g.IsStrong(i, j) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// String renders the attack graph as "R↝S(weak); S↝R(strong); ...".
func (g *AttackGraph) String() string {
	s := ""
	for i := 0; i < g.Len(); i++ {
		for j := 0; j < g.Len(); j++ {
			if !g.attacks[i][j] {
				continue
			}
			kind := "weak"
			if g.IsStrong(i, j) {
				kind = "strong"
			}
			if s != "" {
				s += "; "
			}
			s += fmt.Sprintf("%s↝%s(%s)", g.Q.Atoms[i].Rel, g.Q.Atoms[j].Rel, kind)
		}
	}
	if s == "" {
		return "(no attacks)"
	}
	return s
}
