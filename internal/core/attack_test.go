package core

import (
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/jointree"
)

// atomIdx returns the index of the atom with the given relation name.
func atomIdx(t *testing.T, q cq.Query, rel string) int {
	t.Helper()
	for i, a := range q.Atoms {
		if a.Rel == rel {
			return i
		}
	}
	t.Fatalf("no atom %s in %s", rel, q)
	return -1
}

// TestQ1AttackGraph reproduces Examples 2–4 and Figure 2 exactly.
func TestQ1AttackGraph(t *testing.T) {
	q1 := cq.Q1()
	g, err := BuildAttackGraph(q1, jointree.TieBreakLex)
	if err != nil {
		t.Fatalf("BuildAttackGraph: %v", err)
	}
	F := atomIdx(t, q1, "R")
	G := atomIdx(t, q1, "S")
	H := atomIdx(t, q1, "T")
	I := atomIdx(t, q1, "P")

	// Example 2 closures.
	wantPlus := map[int]cq.VarSet{
		F: cq.NewVarSet("u"),
		G: cq.NewVarSet("y"),
		H: cq.NewVarSet("x", "z"),
		I: cq.NewVarSet("x", "y", "z"),
	}
	for i, want := range wantPlus {
		if !g.Plus(i).Equal(want) {
			t.Errorf("%s^+ = %v, want %v", q1.Atoms[i].Rel, g.Plus(i), want)
		}
	}
	// Example 4 closures.
	wantFull := map[int]cq.VarSet{
		F: cq.NewVarSet("u", "x", "y", "z"),
		G: cq.NewVarSet("x", "y", "z"),
		H: cq.NewVarSet("x", "y", "z"),
		I: cq.NewVarSet("x", "y", "z"),
	}
	for i, want := range wantFull {
		if !g.Full(i).Equal(want) {
			t.Errorf("%s⊕ = %v, want %v", q1.Atoms[i].Rel, g.Full(i), want)
		}
	}

	// Figure 2 (right): exact attack set, as determined by Definition 3 and
	// the Example 3/4 narrative (F attacks G, H, I; H attacks G but not F;
	// the cycles F⇄G, G⇄H and F↝H↝G↝F all exist, so G attacks H too; I,
	// whose closure is {x,y,z}, attacks nothing).
	wantAttacks := map[[2]int]bool{
		{F, G}: true, {F, H}: true, {F, I}: true,
		{G, F}: true, {G, H}: true, {G, I}: true,
		{H, G}: true,
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if got, want := g.Attacks(i, j), wantAttacks[[2]int{i, j}]; got != want {
				t.Errorf("attack %s ↝ %s = %v, want %v", q1.Atoms[i].Rel, q1.Atoms[j].Rel, got, want)
			}
		}
	}

	// Example 4: G ↝ F is the only strong attack.
	for pair := range wantAttacks {
		i, j := pair[0], pair[1]
		strong := g.IsStrong(i, j)
		if (i == G && j == F) != strong {
			t.Errorf("attack %s ↝ %s strong=%v", q1.Atoms[i].Rel, q1.Atoms[j].Rel, strong)
		}
	}
	if !g.HasStrongCycle() || !g.HasStrongCycleExhaustive() {
		t.Error("q1 has a strong cycle (F ↝ G ↝ F)")
	}
	if g.IsAcyclic() {
		t.Error("q1's attack graph is cyclic")
	}
	f, gg, ok := g.StrongCycle2()
	if !ok || f != G || gg != F {
		// The strong attack in the 2-cycle F⇄G is G ↝ F, so StrongCycle2
		// must return (G, F).
		t.Errorf("StrongCycle2 = (%d,%d,%v), want (G,F)=(%d,%d)", f, gg, ok, G, F)
	}
}

// TestAttackGraphJoinTreeIndependence checks the remark after Definition 3
// on the paper's queries: different join trees give identical attack graphs.
func TestAttackGraphJoinTreeIndependence(t *testing.T) {
	queries := []cq.Query{
		cq.Q1(),
		cq.Q0(),
		cq.ACk(2),
		cq.ACk(3),
		cq.ACk(4),
		cq.TerminalCyclesQuery(),
		cq.TerminalCyclesBaseQuery(),
		cq.ConferenceQuery(),
	}
	for _, q := range queries {
		g1, err1 := BuildAttackGraph(q, jointree.TieBreakLex)
		g2, err2 := BuildAttackGraph(q, jointree.TieBreakReverse)
		if err1 != nil || err2 != nil {
			t.Fatalf("BuildAttackGraph(%s): %v %v", q, err1, err2)
		}
		for i := 0; i < q.Len(); i++ {
			for j := 0; j < q.Len(); j++ {
				if i != j && g1.Attacks(i, j) != g2.Attacks(i, j) {
					t.Errorf("%s: attack (%d,%d) differs across join trees", q, i, j)
				}
			}
		}
	}
}

// TestACkAttackGraph reproduces Figure 5: in AC(k), every Ri attacks every
// other atom; Sk attacks nothing; all attacks are weak; all cycles are
// nonterminal.
func TestACkAttackGraph(t *testing.T) {
	for k := 2; k <= 5; k++ {
		q := cq.ACk(k)
		g, err := BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			t.Fatalf("BuildAttackGraph(AC(%d)): %v", k, err)
		}
		skIdx := q.Len() - 1
		for i := 0; i < q.Len(); i++ {
			for j := 0; j < q.Len(); j++ {
				if i == j {
					continue
				}
				want := i != skIdx // Ri attacks everything, Sk attacks nothing
				if got := g.Attacks(i, j); got != want {
					t.Errorf("AC(%d): attack %s ↝ %s = %v, want %v",
						k, q.Atoms[i].Rel, q.Atoms[j].Rel, got, want)
				}
				if i != skIdx && !g.IsWeak(i, j) {
					t.Errorf("AC(%d): attack %s ↝ %s should be weak", k, q.Atoms[i].Rel, q.Atoms[j].Rel)
				}
			}
		}
		if g.HasStrongCycle() {
			t.Errorf("AC(%d) has no strong cycle", k)
		}
		if g.AllCyclesWeakAndTerminal() {
			t.Errorf("AC(%d) cycles are nonterminal", k)
		}
		// k(k-1)/2 two-cycles among the Ri atoms.
		twoCycles := 0
		for _, c := range g.Cycles() {
			if len(c) == 2 {
				twoCycles++
			}
			if g.CycleIsStrong(c) {
				t.Errorf("AC(%d): strong cycle %v", k, c)
			}
			if g.CycleIsTerminal(c) {
				t.Errorf("AC(%d): terminal cycle %v", k, c)
			}
		}
		if want := k * (k - 1) / 2; twoCycles != want {
			t.Errorf("AC(%d): %d two-cycles, want %d", k, twoCycles, want)
		}
	}
}

// TestTerminalCyclesQueryGraph verifies the structure claimed for the
// Figure 4-style query: three weak terminal 2-cycles and an unattacked R0.
func TestTerminalCyclesQueryGraph(t *testing.T) {
	q := cq.TerminalCyclesQuery()
	g, err := BuildAttackGraph(q, jointree.TieBreakLex)
	if err != nil {
		t.Fatalf("BuildAttackGraph: %v", err)
	}
	if g.HasStrongCycle() {
		t.Error("no strong cycle expected")
	}
	if !g.AllCyclesWeakAndTerminal() {
		t.Error("all cycles must be weak and terminal")
	}
	if g.IsAcyclic() {
		t.Error("graph must be cyclic")
	}
	un := g.Unattacked()
	if len(un) != 1 || q.Atoms[un[0]].Rel != "R0" {
		t.Errorf("unattacked = %v", un)
	}
	cycles := g.TerminalWeakCycles()
	if len(cycles) != 3 {
		t.Fatalf("expected 3 weak terminal 2-cycles, got %d", len(cycles))
	}
	wantPairs := map[string]string{"R1": "R2", "R3": "R4", "R5": "R6"}
	for _, c := range cycles {
		f, gg := q.Atoms[c.F].Rel, q.Atoms[c.G].Rel
		if wantPairs[f] != gg {
			t.Errorf("unexpected cycle %s ⇄ %s", f, gg)
		}
	}
	// R0 attacks everything (its closure is {u}, shared labels all avoid u).
	r0 := atomIdx(t, q, "R0")
	for j := 0; j < q.Len(); j++ {
		if j != r0 && !g.Attacks(r0, j) {
			t.Errorf("R0 should attack %s", q.Atoms[j].Rel)
		}
	}

	// The base query (without R0) has every atom on a cycle.
	base := cq.TerminalCyclesBaseQuery()
	gb, err := BuildAttackGraph(base, jointree.TieBreakLex)
	if err != nil {
		t.Fatalf("base: %v", err)
	}
	if len(gb.Unattacked()) != 0 {
		t.Errorf("base query should have no unattacked atom: %v", gb.Unattacked())
	}
	if !gb.AllCyclesWeakAndTerminal() {
		t.Error("base query cycles must be weak and terminal")
	}
}

func TestQ0AttackGraph(t *testing.T) {
	// q0 = {R0(x|y), S0(y,z|x)}: the two atoms attack each other and at
	// least one attack is strong (CERTAINTY(q0) is coNP-complete).
	g, err := BuildAttackGraph(cq.Q0(), jointree.TieBreakLex)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Attacks(0, 1) || !g.Attacks(1, 0) {
		t.Fatal("q0 atoms must attack each other")
	}
	if !g.HasStrongCycle() {
		t.Error("q0 must have a strong cycle")
	}
}

func TestTwoAtomTerminalWeak(t *testing.T) {
	// C(2) = {R1(x1|x2), R2(x2|x1)}: 2-cycle, both weak, trivially terminal.
	g, err := BuildAttackGraph(cq.Ck(2), jointree.TieBreakLex)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Attacks(0, 1) || !g.Attacks(1, 0) {
		t.Fatal("C(2) atoms must attack each other")
	}
	if g.IsStrong(0, 1) || g.IsStrong(1, 0) {
		t.Error("C(2) attacks are weak")
	}
	if !g.AllCyclesWeakAndTerminal() {
		t.Error("C(2) cycle is weak and terminal")
	}
}

func TestFOExamples(t *testing.T) {
	// Fuxman–Miller style FO-rewritable queries: acyclic attack graphs.
	for _, s := range []string{
		"R(x | y), S(y | z)",
		"R(x | y)",
		"C(x, y | 'Rome'), R(x | 'A')",
	} {
		q := cq.MustParseQuery(s)
		g, err := BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !g.IsAcyclic() {
			t.Errorf("%s should have an acyclic attack graph: %s", s, g)
		}
	}
}

func TestBuildAttackGraphRejects(t *testing.T) {
	sj := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", 1, cq.Var("y"), cq.Var("x")),
	}}
	if _, err := BuildAttackGraph(sj, jointree.TieBreakLex); err == nil {
		t.Error("self-join must be rejected")
	}
	if _, err := BuildAttackGraph(cq.Ck(3), jointree.TieBreakLex); err == nil {
		t.Error("cyclic query must be rejected")
	}
}

// randomAcyclicQuery generates an acyclic self-join-free query by building a
// random tree of atoms; each child shares a random subset of its parent's
// variables plus fresh ones, which guarantees a join tree exists.
func randomAcyclicQuery(seed uint32) cq.Query {
	r := seed
	next := func(n int) int {
		r = r*1664525 + 1013904223
		return int(r>>16) % n
	}
	n := 2 + next(4)
	fresh := 0
	newVar := func() string {
		fresh++
		return "v" + string(rune('0'+fresh/10)) + string(rune('0'+fresh%10))
	}
	atomVars := make([][]string, n)
	atomVars[0] = []string{newVar(), newVar()}
	for i := 1; i < n; i++ {
		parent := atomVars[next(i)]
		var vars []string
		for _, v := range parent {
			if next(2) == 0 {
				vars = append(vars, v)
			}
		}
		if len(vars) == 0 {
			vars = append(vars, parent[next(len(parent))])
		}
		for len(vars) < 2 || next(3) == 0 {
			vars = append(vars, newVar())
		}
		atomVars[i] = vars
	}
	atoms := make([]cq.Atom, n)
	for i, vs := range atomVars {
		args := make([]cq.Term, len(vs))
		for j, v := range vs {
			args[j] = cq.Var(v)
		}
		atoms[i] = cq.Atom{Rel: "R" + string(rune('A'+i)), KeyLen: 1 + next(len(args)), Args: args}
	}
	return cq.Query{Atoms: atoms}
}

// TestQuickLemmas checks Lemmas 2, 3, 4 and 6 plus basic invariants on
// random acyclic queries.
func TestQuickLemmas(t *testing.T) {
	f := func(seed uint32) bool {
		q := randomAcyclicQuery(seed)
		if !jointree.IsAcyclic(q) {
			return true // tree-sharing construction can still go cyclic; skip
		}
		g, err := BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return true
		}
		n := q.Len()
		for i := 0; i < n; i++ {
			// F+ ⊆ F⊕ (remark after Definition 5).
			if !g.Plus(i).SubsetOf(g.Full(i)) {
				t.Logf("%s: F+ ⊄ F⊕ at %d", q, i)
				return false
			}
			for j := 0; j < n; j++ {
				if i == j || !g.Attacks(i, j) {
					continue
				}
				// Lemma 2: F ↝ G implies key(G) ⊄ F+ and vars(F) ⊄ F+.
				if q.Atoms[j].KeyVars().SubsetOf(g.Plus(i)) {
					t.Logf("%s: Lemma 2 key violated at (%d,%d)", q, i, j)
					return false
				}
				if q.Atoms[i].Vars().SubsetOf(g.Plus(i)) {
					t.Logf("%s: Lemma 2 vars violated at (%d,%d)", q, i, j)
					return false
				}
				// Lemma 3: F ↝ G and G ↝ H imply F ↝ H or G ↝ F.
				for h := 0; h < n; h++ {
					if h == i || h == j {
						continue
					}
					if g.Attacks(j, h) && !g.Attacks(i, h) && !g.Attacks(j, i) {
						t.Logf("%s: Lemma 3 violated at (%d,%d,%d)", q, i, j, h)
						return false
					}
				}
			}
		}
		// Lemma 4: HasStrongCycle via 2-cycles agrees with exhaustive search.
		if g.HasStrongCycle() != g.HasStrongCycleExhaustive() {
			t.Logf("%s: Lemma 4 violated", q)
			return false
		}
		// Lemma 6: if all cycles terminal, every cycle has length 2.
		allTerminal := true
		for _, c := range g.Cycles() {
			if !g.CycleIsTerminal(c) {
				allTerminal = false
			}
		}
		if allTerminal {
			for _, c := range g.Cycles() {
				if len(c) != 2 {
					t.Logf("%s: Lemma 6 violated with cycle %v", q, c)
					return false
				}
			}
		}
		// Join-tree independence.
		g2, err := BuildAttackGraph(q, jointree.TieBreakReverse)
		if err != nil {
			t.Logf("%s: reverse build failed: %v", q, err)
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && g.Attacks(i, j) != g2.Attacks(i, j) {
					t.Logf("%s: join-tree dependence at (%d,%d)", q, i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickWitnessCharacterization: the join-tree definition of attacks
// (Definition 3) coincides with the witness-sequence characterization on
// the catalog and on random acyclic queries.
func TestQuickWitnessCharacterization(t *testing.T) {
	check := func(q cq.Query) bool {
		g, err := BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return true
		}
		for i := 0; i < g.Len(); i++ {
			for j := 0; j < g.Len(); j++ {
				if i == j {
					continue
				}
				if g.Attacks(i, j) != g.AttacksViaWitness(i, j) {
					t.Logf("%s: witness mismatch at (%d,%d)", q, i, j)
					return false
				}
			}
		}
		return true
	}
	for _, q := range []cq.Query{
		cq.Q1(), cq.Q0(), cq.ACk(3), cq.ACk(4),
		cq.TerminalCyclesQuery(), cq.ConferenceQuery(),
	} {
		if !check(q) {
			t.Errorf("catalog query failed: %s", q)
		}
	}
	f := func(seed uint32) bool { return check(randomAcyclicQuery(seed)) }
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
