package core

import (
	"errors"
	"fmt"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrSelfJoin marks queries with repeated relation names, for which
	// the paper's theory is not defined.
	ErrSelfJoin = errors.New("query has a self-join")
	// ErrOutOfScope marks cyclic queries that are neither C(k) nor safe;
	// the paper gives no method for them.
	ErrOutOfScope = errors.New("query outside the paper's scope")
)

// Class is the complexity classification of CERTAINTY(q) established by the
// paper for acyclic self-join-free Boolean conjunctive queries (plus the
// C(k) corollary for the one family of cyclic queries the paper settles).
type Class int

const (
	// ClassFO: the attack graph is acyclic; CERTAINTY(q) is first-order
	// expressible (Theorem 1) and hence in AC⁰ ⊆ P.
	ClassFO Class = iota
	// ClassPTimeTerminal: all attack cycles are weak and terminal;
	// CERTAINTY(q) is in P but not FO-expressible (Theorem 3).
	ClassPTimeTerminal
	// ClassPTimeACk: q is AC(k) up to renaming; CERTAINTY(q) is in P
	// (Theorem 4). The attack graph has weak nonterminal cycles.
	ClassPTimeACk
	// ClassPTimeCk: q is C(k) up to renaming, k >= 2; CERTAINTY(q) is in P
	// (Corollary 1, via the Lemma 9 reduction to AC(k)). For k >= 3 the
	// query itself is cyclic and has no attack graph.
	ClassPTimeCk
	// ClassCoNPComplete: the attack graph contains a strong cycle
	// (Theorem 2).
	ClassCoNPComplete
	// ClassOpenConjecturedPTime: the attack graph has a nonterminal cycle,
	// no strong cycle, and q is not AC(k); the paper leaves this open and
	// conjectures membership in P (Conjecture 1).
	ClassOpenConjecturedPTime
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassFO:
		return "first-order expressible (AC0)"
	case ClassPTimeTerminal:
		return "in P, not FO (weak terminal cycles, Theorem 3)"
	case ClassPTimeACk:
		return "in P, not FO (AC(k), Theorem 4)"
	case ClassPTimeCk:
		return "in P (C(k), Corollary 1)"
	case ClassCoNPComplete:
		return "coNP-complete (Theorem 2)"
	case ClassOpenConjecturedPTime:
		return "open (conjectured in P, Conjecture 1)"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// InP reports whether the class guarantees polynomial-time decidability.
func (c Class) InP() bool {
	switch c {
	case ClassFO, ClassPTimeTerminal, ClassPTimeACk, ClassPTimeCk:
		return true
	}
	return false
}

// Classification is the result of the effective method: the class, the
// witnessing structure, and a human-readable reason.
type Classification struct {
	Class  Class
	Reason string
	// Graph is the attack graph; nil for C(k) with k >= 3 (cyclic query).
	Graph *AttackGraph
	// Shape is the recognized C(k)/AC(k) shape, if any.
	Shape *CycleShape
}

// Classify runs the effective method of the paper on q. It fails for
// queries with self-joins and for cyclic queries other than C(k), which are
// outside the paper's scope.
func Classify(q cq.Query) (Classification, error) {
	if err := q.Validate(); err != nil {
		return Classification{}, err
	}
	if q.HasSelfJoin() {
		return Classification{}, fmt.Errorf("core: classification of %s: %w", q, ErrSelfJoin)
	}
	if !jointree.IsAcyclic(q) {
		if shape, ok := MatchCycleShape(q, false); ok {
			return Classification{
				Class:  ClassPTimeCk,
				Reason: fmt.Sprintf("q is C(%d); CERTAINTY(C(k)) is in P by Corollary 1 (reduction to AC(k), Lemma 9)", shape.K),
				Shape:  shape,
			}, nil
		}
		if prob.IsSafe(q) {
			// Theorem 6 does not require acyclicity: safe queries are
			// FO-expressible even when no join tree (hence no attack
			// graph) exists.
			return Classification{
				Class:  ClassFO,
				Reason: "query is cyclic but safe; CERTAINTY(q) is first-order expressible (Theorem 6)",
			}, nil
		}
		return Classification{}, fmt.Errorf("core: query %s is cyclic, not C(k) and not safe: %w", q, ErrOutOfScope)
	}
	g, err := BuildAttackGraph(q, jointree.TieBreakLex)
	if err != nil {
		return Classification{}, err
	}
	if g.IsAcyclic() {
		return Classification{
			Class:  ClassFO,
			Reason: "attack graph is acyclic; CERTAINTY(q) is first-order expressible (Theorem 1)",
			Graph:  g,
		}, nil
	}
	if g.HasStrongCycle() {
		f, gg, _ := g.StrongCycle2()
		return Classification{
			Class: ClassCoNPComplete,
			Reason: fmt.Sprintf("attack graph has the strong cycle %s ↝ %s ↝ %s; CERTAINTY(q) is coNP-complete (Theorem 2)",
				q.Atoms[f].Rel, q.Atoms[gg].Rel, q.Atoms[f].Rel),
			Graph: g,
		}, nil
	}
	if g.AllCyclesWeakAndTerminal() {
		return Classification{
			Class:  ClassPTimeTerminal,
			Reason: "all attack cycles are weak and terminal; CERTAINTY(q) is in P (Theorem 3) and not FO (Theorem 1)",
			Graph:  g,
		}, nil
	}
	if shape, ok := MatchCycleShape(q, true); ok {
		return Classification{
			Class:  ClassPTimeACk,
			Reason: fmt.Sprintf("q is AC(%d); CERTAINTY(q) is in P (Theorem 4) and not FO (Theorem 1)", shape.K),
			Graph:  g,
			Shape:  shape,
		}, nil
	}
	return Classification{
		Class:  ClassOpenConjecturedPTime,
		Reason: "attack graph has a weak nonterminal cycle and no strong cycle; complexity open, conjectured in P (Conjecture 1)",
		Graph:  g,
	}, nil
}
