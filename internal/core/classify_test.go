package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
)

func TestClassifyCatalog(t *testing.T) {
	cases := []struct {
		name  string
		q     cq.Query
		class Class
	}{
		{"path join", cq.MustParseQuery("R(x | y), S(y | z)"), ClassFO},
		{"single atom", cq.MustParseQuery("R(x | y)"), ClassFO},
		{"conference", cq.ConferenceQuery(), ClassFO},
		{"q1 (Fig 2)", cq.Q1(), ClassCoNPComplete},
		{"q0", cq.Q0(), ClassCoNPComplete},
		{"C(2)", cq.Ck(2), ClassPTimeTerminal},
		{"C(3)", cq.Ck(3), ClassPTimeCk},
		{"C(5)", cq.Ck(5), ClassPTimeCk},
		{"AC(2)", cq.ACk(2), ClassPTimeACk},
		{"AC(3)", cq.ACk(3), ClassPTimeACk},
		{"AC(4)", cq.ACk(4), ClassPTimeACk},
		{"terminal cycles (Fig 4)", cq.TerminalCyclesQuery(), ClassPTimeTerminal},
		{"terminal cycles base", cq.TerminalCyclesBaseQuery(), ClassPTimeTerminal},
		{"empty", cq.Query{}, ClassFO},
	}
	for _, c := range cases {
		got, err := Classify(c.q)
		if err != nil {
			t.Errorf("%s: Classify error: %v", c.name, err)
			continue
		}
		if got.Class != c.class {
			t.Errorf("%s: class = %v, want %v (reason: %s)", c.name, got.Class, c.class, got.Reason)
		}
		if got.Reason == "" {
			t.Errorf("%s: empty reason", c.name)
		}
	}
}

func TestClassifyRejections(t *testing.T) {
	sj := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", 1, cq.Var("y"), cq.Var("x")),
	}}
	if _, err := Classify(sj); err == nil {
		t.Error("self-join must be rejected")
	}
	triangle := cq.MustParseQuery("R(x|y), S(y|z), T(z,x)")
	// T all-key makes this still cyclic and not C(k)-shaped.
	if _, err := Classify(triangle); err == nil {
		t.Error("cyclic non-C(k) query must be rejected")
	}
	bad := cq.Query{Atoms: []cq.Atom{{Rel: "R", KeyLen: 0, Args: []cq.Term{cq.Var("x")}}}}
	if _, err := Classify(bad); err == nil {
		t.Error("invalid query must be rejected")
	}
}

func TestClassStringAndInP(t *testing.T) {
	inP := map[Class]bool{
		ClassFO: true, ClassPTimeTerminal: true, ClassPTimeACk: true,
		ClassPTimeCk: true, ClassCoNPComplete: false, ClassOpenConjecturedPTime: false,
	}
	for c, want := range inP {
		if c.InP() != want {
			t.Errorf("%v.InP() = %v", c, c.InP())
		}
		if c.String() == "" || strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("missing String for %d", int(c))
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class fallback")
	}
}

func TestMatchCycleShape(t *testing.T) {
	for k := 2; k <= 5; k++ {
		s, ok := MatchCycleShape(cq.Ck(k), false)
		if !ok || s.K != k || s.SkAtom != -1 {
			t.Errorf("C(%d) shape = %+v %v", k, s, ok)
		}
		s, ok = MatchCycleShape(cq.ACk(k), true)
		if !ok || s.K != k || s.SkAtom < 0 {
			t.Fatalf("AC(%d) shape = %+v %v", k, s, ok)
		}
		// SkPositions must be the identity for the canonical construction.
		for j, p := range s.SkPositions {
			if p != j {
				t.Errorf("AC(%d) SkPositions[%d] = %d", k, j, p)
			}
		}
		// Variable cycle must follow the Ri chain.
		for i, idx := range s.CycleAtoms {
			a := cq.ACk(k).Atoms[idx]
			if a.Args[0].Value != s.Vars[i] {
				t.Errorf("AC(%d) cycle atom %d key mismatch", k, i)
			}
			if a.Args[1].Value != s.Vars[(i+1)%k] {
				t.Errorf("AC(%d) cycle atom %d next mismatch", k, i)
			}
		}
	}
	// Renamed AC(3) with permuted Sk arguments still matches.
	q := cq.MustParseQuery("A(p | q), B(q | r), C(r | p), S(q, p, r)")
	s, ok := MatchCycleShape(q, true)
	if !ok || s.K != 3 {
		t.Fatalf("renamed AC(3) shape = %+v %v", s, ok)
	}
	// Check permutation: S's args (q,p,r) at cycle positions of q,p,r.
	pos := map[string]int{}
	for i, v := range s.Vars {
		pos[v] = i
	}
	wantPerm := []int{pos["q"], pos["p"], pos["r"]}
	for j := range wantPerm {
		if s.SkPositions[j] != wantPerm[j] {
			t.Errorf("SkPositions = %v, want %v", s.SkPositions, wantPerm)
		}
	}

	// Non-matches.
	noMatch := []string{
		"R(x | y), S(y | z)",              // no cycle
		"R(x | y), S(y | x), T(x, y, x)",  // hmm T repeats a variable
		"R(x | y), S(y | x), T(x)",        // Sk arity mismatch
		"R(x | x), S(x | x)",              // self-pair variables
		"R(x | y), S(x | y)",              // not a cycle (same key var twice)
		"R(x | y), S(y | x), U(y | x, z)", // extra non-binary non-all-key atom
		"R(x, y)",                         // all-key only
	}
	for _, in := range noMatch {
		q := cq.MustParseQuery(in)
		if _, ok := MatchCycleShape(q, false); ok {
			t.Errorf("%q should not match C(k)", in)
		}
	}
	// Two Sk-like atoms.
	q2 := cq.MustParseQuery("R(x | y), S(y | x), T(x, y), U(x, y)")
	if _, ok := MatchCycleShape(q2, true); ok {
		t.Error("two all-key atoms should not match AC(k)")
	}
	// Sk with constant.
	q3 := cq.MustParseQuery("R(x | y), S(y | x), T(x, 'c')")
	if _, ok := MatchCycleShape(q3, true); ok {
		t.Error("constant in Sk should not match")
	}
}

func TestSentinelErrors(t *testing.T) {
	sj := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", 1, cq.Var("y"), cq.Var("x")),
	}}
	if _, err := Classify(sj); !errorsIs(err, ErrSelfJoin) {
		t.Errorf("want ErrSelfJoin, got %v", err)
	}
	if _, err := BuildAttackGraph(sj, 0); !errorsIs(err, ErrSelfJoin) {
		t.Errorf("want ErrSelfJoin from BuildAttackGraph, got %v", err)
	}
	oos := cq.MustParseQuery("R(x, y | a), S(y, z | b), T(z, x | c)")
	if _, err := Classify(oos); !errorsIs(err, ErrOutOfScope) {
		t.Errorf("want ErrOutOfScope, got %v", err)
	}
}

func errorsIs(err, target error) bool { return errors.Is(err, target) }

func TestClassificationCache(t *testing.T) {
	c := NewCache()
	a := cq.MustParseQuery("R(x | y), S(y | x)")
	b := cq.MustParseQuery("S(q | p), R(p | q)") // isomorphic
	ca, err := c.Classify(a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache size = %d", c.Len())
	}
	cb, err := c.Classify(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("isomorphic query must hit the cache, size = %d", c.Len())
	}
	if ca.Class != cb.Class {
		t.Errorf("classes differ: %v vs %v", ca.Class, cb.Class)
	}
	direct, err := Classify(a)
	if err != nil {
		t.Fatal(err)
	}
	if ca.Class != direct.Class {
		t.Errorf("cached class %v vs direct %v", ca.Class, direct.Class)
	}
	// Errors are cached too.
	sj := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Var("x")),
		cq.NewAtom("R", 1, cq.Var("x")),
	}}
	if _, err := c.Classify(sj); err == nil {
		t.Error("self-join should fail through the cache")
	}
	before := c.Len()
	if _, err := c.Classify(sj); err == nil {
		t.Error("second call should fail identically")
	}
	if c.Len() != before {
		t.Error("error entry should be cached")
	}
}

// TestCacheClassAgreesOnCatalog: the cached classification class equals the
// direct one for every catalog query.
func TestCacheClassAgreesOnCatalog(t *testing.T) {
	c := NewCache()
	for _, q := range []cq.Query{
		cq.Q0(), cq.Q1(), cq.Ck(2), cq.Ck(3), cq.ACk(2), cq.ACk(3),
		cq.TerminalCyclesQuery(), cq.ConferenceQuery(),
	} {
		direct, derr := Classify(q)
		cached, cerr := c.Classify(q)
		if (derr == nil) != (cerr == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", q, derr, cerr)
		}
		if derr == nil && direct.Class != cached.Class {
			t.Errorf("%s: direct %v cached %v", q, direct.Class, cached.Class)
		}
	}
}
