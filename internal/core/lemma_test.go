package core

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
)

// TestQuickLemma5 checks Lemma 5 on random acyclic queries: substituting a
// constant for a variable (1) preserves acyclicity, (2) creates no new
// attacks, and (3) keeps weak attacks weak.
func TestQuickLemma5(t *testing.T) {
	f := func(seed uint32) bool {
		q := randomAcyclicQuery(seed)
		g, err := BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			return true
		}
		vars := q.Vars().Sorted()
		if len(vars) == 0 {
			return true
		}
		z := vars[int(seed)%len(vars)]
		qs := q.Substitute(cq.Valuation{z: "c°"})
		// (1) q[z↦c] is acyclic.
		gs, err := BuildAttackGraph(qs, jointree.TieBreakLex)
		if err != nil {
			t.Logf("%s: substitution broke acyclicity: %v", q, err)
			return false
		}
		for i := 0; i < q.Len(); i++ {
			for j := 0; j < q.Len(); j++ {
				if i == j || !gs.Attacks(i, j) {
					continue
				}
				// (2) every attack of q[z↦c] is an attack of q.
				if !g.Attacks(i, j) {
					t.Logf("%s: new attack (%d,%d) after substituting %s", q, i, j, z)
					return false
				}
				// (3) if the original attack is weak, so is the new one.
				if g.IsWeak(i, j) && !gs.IsWeak(i, j) {
					t.Logf("%s: weak attack (%d,%d) became strong after substituting %s", q, i, j, z)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestLemma7OnTerminalFamilies checks Lemma 7 on the terminal-cycle
// families: when every atom lies on a terminal cycle, (1) a variable in
// two distinct cycles is in the key of every atom of those cycles, and
// (2) weak attacks F ↝ G satisfy key(G) ⊆ vars(F).
func TestLemma7OnTerminalFamilies(t *testing.T) {
	queries := []cq.Query{cq.TerminalCyclesBaseQuery()}
	for n := 1; n <= 4; n++ {
		queries = append(queries, gen.TerminalPairsQuery(n, false))
	}
	for _, q := range queries {
		g, err := BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			t.Fatal(err)
		}
		cycles := g.TerminalWeakCycles()
		inCycle := make(map[int]int) // atom → cycle index
		for ci, c := range cycles {
			inCycle[c.F] = ci
			inCycle[c.G] = ci
		}
		if len(inCycle) != q.Len() {
			t.Fatalf("%s: not all atoms on cycles", q)
		}
		// (1) cross-cycle variables are key variables everywhere they occur
		// in cycle atoms.
		varCycles := make(map[string]map[int]bool)
		for i, a := range q.Atoms {
			for v := range a.Vars() {
				if varCycles[v] == nil {
					varCycles[v] = make(map[int]bool)
				}
				varCycles[v][inCycle[i]] = true
			}
		}
		for v, cs := range varCycles {
			if len(cs) < 2 {
				continue
			}
			for i, a := range q.Atoms {
				if cs[inCycle[i]] && a.HasVar(v) && !a.KeyVars().Has(v) {
					t.Errorf("%s: cross-cycle variable %s outside key of %s", q, v, a.Rel)
				}
			}
		}
		// (2) weak attacks have key(G) ⊆ vars(F).
		for i := 0; i < q.Len(); i++ {
			for j := 0; j < q.Len(); j++ {
				if i != j && g.Attacks(i, j) && g.IsWeak(i, j) {
					if !q.Atoms[j].KeyVars().SubsetOf(q.Atoms[i].Vars()) {
						t.Errorf("%s: weak attack %s ↝ %s violates Lemma 7(2)",
							q, q.Atoms[i].Rel, q.Atoms[j].Rel)
					}
				}
			}
		}
	}
}

// TestDOTOutputs sanity-checks the Graphviz renderings.
func TestDOTOutputs(t *testing.T) {
	g, err := BuildAttackGraph(cq.Q1(), jointree.TieBreakLex)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph attack", "strong", "->", "R(u | 'a', x)"} {
		if !contains(dot, want) {
			t.Errorf("attack DOT missing %q:\n%s", want, dot)
		}
	}
	jt := g.Tree.DOT()
	for _, want := range []string{"graph jointree", "--", "label"} {
		if !contains(jt, want) {
			t.Errorf("join tree DOT missing %q:\n%s", want, jt)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
