package core

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
)

// TestTwoAtomDichotomyCensus classifies every two-atom query shape (10404
// of them at maxArity 3) and checks the paper's claims: classification
// never fails, every attack cycle is terminal ("if a query q has exactly
// two atoms ... every cycle in q's attack graph must be terminal"), and
// the class landscape is exactly {FO, P-not-FO, coNP-complete} — the
// Kolaitis–Pema dichotomy, which Theorems 2 and 3 together imply.
func TestTwoAtomDichotomyCensus(t *testing.T) {
	census := make(map[Class]int)
	total := 0
	gen.EnumerateTwoAtomQueries(3, func(q cq.Query) {
		total++
		cls, err := Classify(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		census[cls.Class]++
		switch cls.Class {
		case ClassFO, ClassPTimeTerminal, ClassCoNPComplete:
		default:
			t.Fatalf("%s: two-atom query landed in class %v", q, cls.Class)
		}
		if g := cls.Graph; g != nil {
			for _, c := range g.Cycles() {
				if !g.CycleIsTerminal(c) {
					t.Fatalf("%s: nonterminal cycle in a two-atom attack graph", q)
				}
			}
		}
	})
	if total != 10404 {
		t.Fatalf("expected 102² = 10404 shapes, saw %d", total)
	}
	for _, cl := range []Class{ClassFO, ClassPTimeTerminal, ClassCoNPComplete} {
		if census[cl] == 0 {
			t.Errorf("class %v unrepresented in the census", cl)
		}
	}
	t.Logf("two-atom census over %d shapes: %v", total, census)
}
