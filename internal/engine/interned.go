package engine

import (
	"sync"
	"sync/atomic"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/intern"
)

// internedOn selects the interned data plane for embedding enumeration. On
// by default; SetInterned(false) falls back to the string-indexed
// implementation (kept as the differential reference). Both paths enumerate
// the exact same embedding sequence and charge the exact same governor
// steps, so flipping the knob never changes observable behavior — only the
// representation the inner loop runs over.
var internedOn atomic.Bool

func init() { internedOn.Store(true) }

// SetInterned selects (true, the default) or deselects the interned data
// plane for this package's enumeration hot paths.
func SetInterned(on bool) { internedOn.Store(on) }

// InternedEnabled reports whether the interned data plane is selected.
func InternedEnabled() bool { return internedOn.Load() }

// Argument kinds after compile-time binding analysis. The atom order is
// fixed before compilation, so whether a variable is already bound when an
// atom is reached is statically known: each argument lowers to a constant
// id compare, a slot compare, or a slot write — no runtime bound-tracking,
// no map, no unbinding (a slot is always rewritten before any read).
const (
	argConst uint8 = iota // compare against a fixed id
	argBound              // compare against env[slot]
	argBind               // write env[slot] (first occurrence)
)

type iArg struct {
	kind uint8
	id   uint32 // argConst: the constant's id (intern.None when absent from d)
	slot uint16 // argBound/argBind: the variable's slot
}

// iAtom is one compiled level of the embedding search.
type iAtom struct {
	rel  *db.IRel // nil when the relation is absent or signature-mismatched
	args []iArg
	// keyReady: every key position is determined (const or bound) at entry,
	// so candidates narrow to one block probe.
	keyReady bool
	// det lists the determined positions at entry, for posting selection.
	det []int
}

// iProg is a query compiled against one interned view for one atom order.
type iProg struct {
	atoms  []iAtom
	vars   []string // slot → variable name
	maxKey int
	in     *db.Interned
}

// compileInterned lowers q (in the given evaluation order) against the
// interned view. Constants absent from the view lower to intern.None, which
// matches nothing — the search still walks the same nodes as the string
// path (and charges the same governor steps), it just finds no candidates.
func compileInterned(q cq.Query, order []int, in *db.Interned) *iProg {
	p := &iProg{atoms: make([]iAtom, len(order)), in: in}
	slots := make(map[string]uint16, 8)
	for li, ai := range order {
		a := q.Atoms[ai]
		ia := iAtom{args: make([]iArg, len(a.Args))}
		if r := in.Rel(a.Rel); r != nil && r.Arity == len(a.Args) && r.KeyLen == a.KeyLen {
			ia.rel = r
		}
		// Slots below entrySlots were bound by earlier atoms; only those
		// (and constants) are determined when this level starts. A variable
		// repeating within this atom (R(x | x)) compares fine during
		// verification but must not drive candidate selection.
		entrySlots := uint16(len(p.vars))
		ia.keyReady = true
		for pos, t := range a.Args {
			switch {
			case t.IsConst:
				id, ok := in.Syms.Lookup(t.Value)
				if !ok {
					id = intern.None
				}
				ia.args[pos] = iArg{kind: argConst, id: id}
				ia.det = append(ia.det, pos)
			default:
				if s, ok := slots[t.Value]; ok {
					ia.args[pos] = iArg{kind: argBound, slot: s}
					if s < entrySlots {
						ia.det = append(ia.det, pos)
					} else if pos < a.KeyLen {
						ia.keyReady = false
					}
				} else {
					s := uint16(len(p.vars))
					slots[t.Value] = s
					p.vars = append(p.vars, t.Value)
					ia.args[pos] = iArg{kind: argBind, slot: s}
					if pos < a.KeyLen {
						ia.keyReady = false
					}
				}
			}
		}
		if a.KeyLen > p.maxKey {
			p.maxKey = a.KeyLen
		}
		p.atoms[li] = ia
	}
	return p
}

// iScratch holds every mutable slice one enumeration needs, pooled so a
// warm enumeration allocates nothing. env is the valuation (slot → id);
// facts records the matched fact index per level (consumed by purification
// marking); key is the block-probe buffer; bufs holds one intersection
// output per level (stable while deeper levels recurse).
type iScratch struct {
	env   []uint32
	facts []uint32
	key   []uint32
	bufs  [][]uint32
}

var iScratchPool = sync.Pool{New: func() any { return new(iScratch) }}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func getScratch(p *iProg) *iScratch {
	sc := iScratchPool.Get().(*iScratch)
	sc.env = growU32(sc.env, len(p.vars))
	sc.facts = growU32(sc.facts, len(p.atoms))
	sc.key = growU32(sc.key, p.maxKey)
	if cap(sc.bufs) < len(p.atoms) {
		sc.bufs = make([][]uint32, len(p.atoms))
	} else {
		sc.bufs = sc.bufs[:len(p.atoms)]
	}
	return sc
}

func putScratch(sc *iScratch) { iScratchPool.Put(sc) }

// intersectInto writes the intersection of two ascending lists into
// dst[:0], returning the filled slice. Ascending in, ascending out.
func intersectInto(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// argVal resolves a determined argument (const or bound) to its id.
func argVal(ag *iArg, env []uint32) uint32 {
	if ag.kind == argConst {
		return ag.id
	}
	return env[ag.slot]
}

// level runs one level of the embedding search. A governor step is charged
// per node entry — exactly where the string path charges — so budget and
// cancellation behavior is bit-identical across the knob. Candidate
// narrowing (block probe, posting intersection) only skips facts the
// verifier would reject; every index yields ascending fact indices, which
// is insertion order, so the embedding sequence is also identical.
func (p *iProg) level(g *govern.Governor, sc *iScratch, li int, leaf func(*iScratch) (bool, error)) (bool, error) {
	if g != nil {
		if err := g.Step(); err != nil {
			return false, err
		}
	}
	if li == len(p.atoms) {
		return leaf(sc)
	}
	ia := &p.atoms[li]
	r := ia.rel
	if r == nil {
		return true, nil
	}
	var cands []uint32
	switch {
	case ia.keyReady:
		key := sc.key[:r.KeyLen]
		for i := 0; i < r.KeyLen; i++ {
			key[i] = argVal(&ia.args[i], sc.env)
		}
		span, ok := r.BlockOf(key)
		if !ok {
			return true, nil
		}
		cands = span
	case len(ia.det) == 0:
		// Full scan, without materializing an index list.
		n := uint32(r.NumFacts())
		for fi := uint32(0); fi < n; fi++ {
			cont, err := p.tryFact(g, sc, li, fi, leaf)
			if err != nil || !cont {
				return false, err
			}
		}
		return true, nil
	case len(ia.det) == 1:
		pos := ia.det[0]
		cands = r.Posting(pos, argVal(&ia.args[pos], sc.env))
	default:
		// Sorted-posting intersection: the two shortest determined postings
		// bound the candidate set; the per-fact verifier covers the rest.
		var p1, p2 []uint32
		first := true
		for _, pos := range ia.det {
			l := r.Posting(pos, argVal(&ia.args[pos], sc.env))
			if first {
				p1, first = l, false
			} else if len(l) < len(p1) {
				p1, p2 = l, p1
			} else if p2 == nil || len(l) < len(p2) {
				p2 = l
			}
		}
		if len(p1) == 0 {
			return true, nil
		}
		cands = intersectInto(sc.bufs[li], p1, p2)
		sc.bufs[li] = cands[:0]
	}
	for _, fi := range cands {
		cont, err := p.tryFact(g, sc, li, fi, leaf)
		if err != nil || !cont {
			return false, err
		}
	}
	return true, nil
}

// tryFact verifies candidate fi against level li's compiled arguments,
// binding first-occurrence variables, and recurses on a match. Bind writes
// need no undo: a slot is rewritten by its binding level before any deeper
// read, and shallower levels never read it.
func (p *iProg) tryFact(g *govern.Governor, sc *iScratch, li int, fi uint32, leaf func(*iScratch) (bool, error)) (bool, error) {
	ia := &p.atoms[li]
	for pos := range ia.args {
		ag := &ia.args[pos]
		v := ia.rel.Cols[pos][fi]
		switch ag.kind {
		case argConst:
			if v != ag.id {
				return true, nil
			}
		case argBound:
			if v != sc.env[ag.slot] {
				return true, nil
			}
		default:
			sc.env[ag.slot] = v
		}
	}
	sc.facts[li] = fi
	return p.level(g, sc, li+1, leaf)
}

// valuation materializes the leaf environment as a cq.Valuation (owned by
// the caller, as the EachEmbedding contract requires).
func (p *iProg) valuation(sc *iScratch) cq.Valuation {
	v := make(cq.Valuation, len(p.vars))
	for s, name := range p.vars {
		v[name] = p.in.Syms.MustString(sc.env[s])
	}
	return v
}

// eachEmbeddingInterned is the interned implementation behind
// EachEmbedding/EachEmbeddingCtx. g may be nil (no governor accounting,
// matching the ctx-less string path).
func eachEmbeddingInterned(g *govern.Governor, q cq.Query, d *db.DB, yield func(cq.Valuation) bool) (bool, error) {
	p := compileInterned(q, orderAtoms(q, d), d.Interned())
	sc := getScratch(p)
	defer putScratch(sc)
	return p.level(g, sc, 0, func(sc *iScratch) (bool, error) {
		return yield(p.valuation(sc)), nil
	})
}

// evalInterned decides d ⊨ q on the interned plane without materializing
// any valuation.
func evalInterned(g *govern.Governor, q cq.Query, d *db.DB) (bool, error) {
	p := compileInterned(q, orderAtoms(q, d), d.Interned())
	sc := getScratch(p)
	defer putScratch(sc)
	found := false
	_, err := p.level(g, sc, 0, func(*iScratch) (bool, error) {
		found = true
		return false, nil
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// purifyInterned is Purify/PurifyCtx on the interned plane: used facts are
// marked in per-relation bitsets straight from the matched fact indices
// (no fact IDs, no map), and the keep predicate resolves each fact's block
// ordinal with a per-relation cursor over the global insertion order.
func purifyInterned(g *govern.Governor, q cq.Query, d *db.DB) (*db.DB, error) {
	cur := d
	for {
		if g != nil {
			// The ctx-less string path enumerates without the counter; the
			// governed one counts one enumeration per purification round.
			embeddingEnumerations.Inc()
		}
		in := cur.Interned()
		p := compileInterned(q, orderAtoms(q, cur), in)
		used := make(map[*db.IRel]bitset, len(p.atoms))
		for _, ia := range p.atoms {
			if ia.rel != nil && used[ia.rel] == nil {
				used[ia.rel] = newBitset(ia.rel.NumFacts())
			}
		}
		sc := getScratch(p)
		_, err := p.level(g, sc, 0, func(sc *iScratch) (bool, error) {
			for li := range p.atoms {
				used[p.atoms[li].rel].set(sc.facts[li])
			}
			return true, nil
		})
		putScratch(sc)
		if err != nil {
			return nil, err
		}
		// A block with any unused fact is dropped whole (Lemma 1 removes
		// blocks, and an unused fact marks its block irrelevant).
		drop := make(map[string]bitset)
		total := 0
		for _, rel := range cur.Relations() {
			ir := in.Rel(rel)
			u := used[ir]
			dropped := newBitset(ir.NumBlocks())
			for fi := 0; fi < ir.NumFacts(); fi++ {
				if u == nil || !u.get(uint32(fi)) {
					dropped.set(ir.BlockOfFact[fi])
					total++
				}
			}
			drop[rel] = dropped
		}
		if total == 0 {
			return cur, nil
		}
		cursor := make(map[string]uint32, len(drop))
		cur = cur.Restrict(func(f db.Fact) bool {
			i := cursor[f.Rel]
			cursor[f.Rel] = i + 1
			return !drop[f.Rel].get(in.Rel(f.Rel).BlockOfFact[i])
		})
	}
}
