package engine

import (
	"context"
	"fmt"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/govern"
)

// differentialQueries stresses the compiled argument kinds: chains, repeated
// variables within an atom (R(x | x)), constants present and absent, shared
// keys, and atoms whose signature mismatches the data.
func differentialQueries(t *testing.T) []cq.Query {
	t.Helper()
	var out []cq.Query
	for _, s := range []string{
		"R(x | y), S(y | z)",
		"R(x | x)",
		"R(x | y), S(y | x)",
		"R(x, y | z), S(z | w), T(w | x)",
		"R(c1 | y)",
		"R(nosuchconst | y), S(y | z)",
		"Q(x | y)", // relation absent from generated databases
		"R(x | y), R(y | z), R(z | w)",
		"S(x | y), S(y | y)",
	} {
		q, err := cq.ParseQuery(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		out = append(out, q)
	}
	out = append(out, cq.Query{}) // empty query
	return out
}

func differentialDBs(t *testing.T) []*db.DB {
	t.Helper()
	dbs := []*db.DB{db.New()}
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	for seed := int64(0); seed < 6; seed++ {
		dbs = append(dbs, gen.RandomDB(q, gen.Config{Embeddings: 6, Noise: 20, Domain: 8}, seed))
	}
	// A database with mismatched signatures for T and tight blocks.
	dbs = append(dbs, db.MustParse("R(a | b), R(a | c), S(b | a), S(b | b), T(a, b | c), T(a, b | d)"))
	return dbs
}

// TestInternedEmbeddingSequenceParity locks the strongest contract the
// interned plane offers: the exact embedding sequence — not just the set —
// matches the string-indexed reference, for every query shape.
func TestInternedEmbeddingSequenceParity(t *testing.T) {
	queries := differentialQueries(t)
	for di, d := range differentialDBs(t) {
		for qi, q := range queries {
			var ref, got []string
			EachEmbeddingIndexed(q, d, func(v cq.Valuation) bool {
				ref = append(ref, fmt.Sprint(v))
				return true
			})
			cont, err := eachEmbeddingInterned(nil, q, d, func(v cq.Valuation) bool {
				got = append(got, fmt.Sprint(v))
				return true
			})
			if err != nil || !cont {
				t.Fatalf("db %d query %d: interned enumeration failed: %v", di, qi, err)
			}
			if len(ref) != len(got) {
				t.Fatalf("db %d query %d (%v): %d interned embeddings, want %d", di, qi, q, len(got), len(ref))
			}
			for i := range ref {
				if ref[i] != got[i] {
					t.Fatalf("db %d query %d (%v): embedding %d is %s, want %s", di, qi, q, i, got[i], ref[i])
				}
			}
			if Eval(q, d) != EvalIndexed(q, d) {
				t.Fatalf("db %d query %d: Eval diverged", di, qi)
			}
		}
	}
}

// TestInternedGovernorStepParity pins the budget-observable behavior: both
// planes charge exactly one step per search node, so a run under any budget
// fails (or not) at the same point.
func TestInternedGovernorStepParity(t *testing.T) {
	queries := differentialQueries(t)
	for di, d := range differentialDBs(t) {
		for qi, q := range queries {
			steps := func(interned bool) int64 {
				SetInterned(interned)
				defer SetInterned(true)
				g := govern.New(context.Background(), govern.Options{})
				defer g.Close()
				ctx := g.Attach()
				if _, err := EachEmbeddingCtx(ctx, q, d, func(cq.Valuation) bool { return true }); err != nil {
					t.Fatalf("db %d query %d: %v", di, qi, err)
				}
				return g.Steps()
			}
			if si, ss := steps(true), steps(false); si != ss {
				t.Fatalf("db %d query %d (%v): interned charged %d steps, string path %d", di, qi, q, si, ss)
			}
		}
	}
}

// TestInternedPurifyParity checks purification reaches the identical
// database (same digest, same fact order) on both planes.
func TestInternedPurifyParity(t *testing.T) {
	queries := differentialQueries(t)
	for di, d := range differentialDBs(t) {
		for qi, q := range queries {
			if q.Len() == 0 {
				continue // Purify of the empty query keeps everything; trivial
			}
			ref := PurifyIndexed(q, d)
			got, err := purifyInterned(nil, q, d)
			if err != nil {
				t.Fatalf("db %d query %d: %v", di, qi, err)
			}
			if ref.Digest() != got.Digest() {
				t.Fatalf("db %d query %d (%v): purified digests diverge\nref:\n%sgot:\n%s", di, qi, q, ref, got)
			}
			gctx, err := PurifyCtx(context.Background(), q, d)
			if err != nil {
				t.Fatalf("db %d query %d: PurifyCtx: %v", di, qi, err)
			}
			if gctx.Digest() != ref.Digest() {
				t.Fatalf("db %d query %d: PurifyCtx diverged from reference", di, qi)
			}
		}
	}
}

// TestInternedEarlyStopParity checks yield-driven early termination returns
// the same result on both planes.
func TestInternedEarlyStopParity(t *testing.T) {
	d := differentialDBs(t)[1]
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	for stopAfter := 1; stopAfter <= 4; stopAfter++ {
		run := func(each func(cq.Query, *db.DB, func(cq.Valuation) bool) bool) (int, bool) {
			n := 0
			cont := each(q, d, func(cq.Valuation) bool {
				n++
				return n < stopAfter
			})
			return n, cont
		}
		ni, ci := run(EachEmbedding)
		ns, cs := run(EachEmbeddingIndexed)
		if ni != ns || ci != cs {
			t.Fatalf("stopAfter=%d: interned (%d, %v) vs string (%d, %v)", stopAfter, ni, ci, ns, cs)
		}
	}
}
