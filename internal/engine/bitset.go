package engine

// bitset is a fixed-width bit vector over fact or block ordinals; the
// purification loop uses them in place of string-keyed mark maps.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i uint32) { b[i>>6] |= 1 << (i & 63) }

func (b bitset) get(i uint32) bool { return b[i>>6]&(1<<(i&63)) != 0 }
