package engine

import (
	"fmt"
	"strings"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// Plan describes how EachEmbedding evaluates a query on a database: the
// greedy atom order and, per step, whether the block index applies and how
// many candidate facts the step scans in the worst case.
type Plan struct {
	Steps []PlanStep
}

// PlanStep is one atom of the evaluation order.
type PlanStep struct {
	// AtomIndex is the position of the atom in the query.
	AtomIndex int
	// Atom is the rendered atom.
	Atom string
	// BoundVars counts the atom's variables bound by earlier steps.
	BoundVars int
	// KeyBound reports whether the whole primary key is determined when
	// the step runs (constants plus earlier bindings), enabling the block
	// index.
	KeyBound bool
	// Candidates is the worst-case number of facts scanned: the relation's
	// fact count, or the largest block when the key is bound.
	Candidates int
}

// Explain returns the evaluation plan EachEmbedding would use for q on d.
func Explain(q cq.Query, d *db.DB) Plan {
	order := orderAtoms(q, d)
	bound := make(cq.VarSet)
	plan := Plan{Steps: make([]PlanStep, 0, len(order))}
	for _, idx := range order {
		a := q.Atoms[idx]
		step := PlanStep{
			AtomIndex: idx,
			Atom:      a.String(),
			BoundVars: a.Vars().Intersect(bound).Len(),
		}
		keyBound := true
		for i := 0; i < a.KeyLen; i++ {
			t := a.Args[i]
			if t.IsVar() && !bound.Has(t.Value) {
				keyBound = false
				break
			}
		}
		step.KeyBound = keyBound
		if keyBound {
			max := 0
			seen := make(map[string]int)
			for _, f := range d.FactsOf(a.Rel) {
				seen[f.BlockID()]++
				if seen[f.BlockID()] > max {
					max = seen[f.BlockID()]
				}
			}
			step.Candidates = max
		} else {
			step.Candidates = len(d.FactsOf(a.Rel))
		}
		bound.AddAll(a.Vars())
		plan.Steps = append(plan.Steps, step)
	}
	return plan
}

// String renders the plan, one step per line.
func (p Plan) String() string {
	var b strings.Builder
	for i, s := range p.Steps {
		access := "scan"
		if s.KeyBound {
			access = "block-index"
		}
		fmt.Fprintf(&b, "%d. %s  [%s, ≤%d candidates, %d vars bound]\n",
			i+1, s.Atom, access, s.Candidates, s.BoundVars)
	}
	return b.String()
}
