package engine

import (
	"context"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
	"github.com/cqa-go/certainty/internal/obs"
)

// One enumeration counter for the whole engine: resolved once, one atomic
// add per EachEmbeddingCtx call (not per search node — the governor already
// counts nodes as steps).
var embeddingEnumerations = obs.Default.Counter("engine_embedding_enumerations_total")

func init() {
	obs.Default.Help("engine_embedding_enumerations_total", "Embedding enumerations started (EachEmbeddingCtx calls).")
}

// EachEmbeddingCtx is EachEmbedding with cooperative cancellation: one
// governor step is charged per search node, and enumeration aborts with
// the governor's error on cancellation, deadline, or budget exhaustion.
// The bool result is false iff some yield returned false; it is
// unspecified when the error is non-nil.
func EachEmbeddingCtx(ctx context.Context, q cq.Query, d *db.DB, yield func(cq.Valuation) bool) (bool, error) {
	embeddingEnumerations.Inc()
	g := govern.From(ctx)
	if internedOn.Load() {
		return eachEmbeddingInterned(g, q, d, yield)
	}
	order := orderAtoms(q, d)
	var rec func(i int, binding cq.Valuation) (bool, error)
	rec = func(i int, binding cq.Valuation) (bool, error) {
		if err := g.Step(); err != nil {
			return false, err
		}
		if i == len(order) {
			return yield(binding), nil
		}
		a := q.Atoms[order[i]]
		for _, f := range candidates(a, binding, d) {
			if next, ok := MatchAtom(a, f, binding); ok {
				cont, err := rec(i+1, next)
				if err != nil || !cont {
					return false, err
				}
			}
		}
		return true, nil
	}
	return rec(0, cq.Valuation{})
}

// EvalCtx is Eval with cooperative cancellation.
func EvalCtx(ctx context.Context, q cq.Query, d *db.DB) (bool, error) {
	if internedOn.Load() {
		embeddingEnumerations.Inc()
		return evalInterned(govern.From(ctx), q, d)
	}
	found := false
	_, err := EachEmbeddingCtx(ctx, q, d, func(cq.Valuation) bool {
		found = true
		return false
	})
	if err != nil {
		return false, err
	}
	return found, nil
}

// PurifyCtx is Purify with cooperative cancellation. Purification is
// polynomial, but its embedding enumeration can still dominate on large
// databases; the same governor that bounds the enclosing search bounds it.
func PurifyCtx(ctx context.Context, q cq.Query, d *db.DB) (*db.DB, error) {
	if internedOn.Load() {
		return purifyInterned(govern.From(ctx), q, d)
	}
	cur := d
	for {
		used := make(map[string]struct{}, cur.Len())
		_, err := EachEmbeddingCtx(ctx, q, cur, func(v cq.Valuation) bool {
			for _, a := range q.Atoms {
				f, ok := db.FactFromAtom(a.Substitute(v))
				if !ok {
					continue
				}
				used[f.ID()] = struct{}{}
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		removeBlocks := make(map[string]struct{})
		for _, f := range cur.Facts() {
			if _, ok := used[f.ID()]; !ok {
				removeBlocks[f.BlockID()] = struct{}{}
			}
		}
		if len(removeBlocks) == 0 {
			return cur, nil
		}
		cur = cur.Restrict(func(f db.Fact) bool {
			_, drop := removeBlocks[f.BlockID()]
			return !drop
		})
	}
}
