package engine

import (
	"context"
	"errors"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
)

func TestEachEmbeddingCtxMatchesEachEmbedding(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse("R(a | b), R(a | c), R(d | b), S(b | e), S(c | f)")
	want := Embeddings(q, d)
	var got []cq.Valuation
	done, err := EachEmbeddingCtx(context.Background(), q, d, func(v cq.Valuation) bool {
		got = append(got, v)
		return true
	})
	if err != nil || !done {
		t.Fatalf("EachEmbeddingCtx: done=%v err=%v", done, err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d embeddings, EachEmbedding found %d", len(got), len(want))
	}
}

func TestEachEmbeddingCtxFault(t *testing.T) {
	q := cq.MustParseQuery("R(x | y)")
	d := db.MustParse("R(a | b), R(c | d), R(e | f), R(g | h)")
	boom := errors.New("injected fault")
	g := govern.New(context.Background(), govern.Options{
		Fault: func(step int64) error {
			if step >= 2 {
				return boom
			}
			return nil
		},
	})
	defer g.Close()
	var seen int
	done, err := EachEmbeddingCtx(g.Attach(), q, d, func(cq.Valuation) bool {
		seen++
		return true
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	if done {
		t.Fatal("done = true on a faulted enumeration")
	}
	if seen >= 4 {
		t.Fatalf("enumeration ran to completion (%d embeddings) despite the fault", seen)
	}
}

func TestEachEmbeddingCtxCanceled(t *testing.T) {
	q := cq.MustParseQuery("R(x | y)")
	d := db.MustParse("R(a | b), R(c | d)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := govern.New(ctx, govern.Options{CheckEvery: 1})
	defer g.Close()
	_, err := EachEmbeddingCtx(g.Attach(), q, d, func(cq.Valuation) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvalCtxAndPurifyCtxAgree(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse("R(a | b), R(a | c), S(b | e), R(z | w)")
	ok, err := EvalCtx(context.Background(), q, d)
	if err != nil {
		t.Fatalf("EvalCtx: %v", err)
	}
	if want := Eval(q, d); ok != want {
		t.Fatalf("EvalCtx = %v, Eval = %v", ok, want)
	}
	got, err := PurifyCtx(context.Background(), q, d)
	if err != nil {
		t.Fatalf("PurifyCtx: %v", err)
	}
	if want := Purify(q, d); !got.Equal(want) {
		t.Fatalf("PurifyCtx = %v, Purify = %v", got, want)
	}
}

// TestEmptyQuery pins the orderAtoms guard: an atomless query has one empty
// embedding and is true everywhere, in both the plain and context-aware
// enumerators.
func TestEmptyQuery(t *testing.T) {
	var q cq.Query
	d := db.MustParse("R(a | b)")
	if got := Embeddings(q, d); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("Embeddings(empty query) = %v, want one empty valuation", got)
	}
	if !Eval(q, d) {
		t.Fatal("Eval(empty query) = false, want true")
	}
	var count int
	done, err := EachEmbeddingCtx(context.Background(), q, d, func(v cq.Valuation) bool {
		count++
		return true
	})
	if err != nil || !done || count != 1 {
		t.Fatalf("EachEmbeddingCtx(empty query): done=%v err=%v count=%d, want one embedding", done, err, count)
	}
	if got := orderAtoms(q, d); got != nil {
		t.Fatalf("orderAtoms(empty query) = %v, want nil", got)
	}
}
