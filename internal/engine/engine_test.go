package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

func figure1DB() *db.DB {
	return db.MustParse(`
		C(PODS, 2016 | Rome)
		C(PODS, 2016 | Paris)
		C(KDD, 2017 | Rome)
		R(PODS | A)
		R(KDD | A)
		R(KDD | B)
	`)
}

func TestMatchAtom(t *testing.T) {
	a := cq.MustParseQuery("R(x | y, x)").Atoms[0]
	f := db.NewFact("R", 1, "1", "2", "1")
	v, ok := MatchAtom(a, f, cq.Valuation{})
	if !ok || v["x"] != "1" || v["y"] != "2" {
		t.Errorf("MatchAtom = %v %v", v, ok)
	}
	// Repeated variable mismatch.
	if _, ok := MatchAtom(a, db.NewFact("R", 1, "1", "2", "3"), cq.Valuation{}); ok {
		t.Error("repeated variable should force equality")
	}
	// Pre-bound variable conflict.
	if _, ok := MatchAtom(a, f, cq.Valuation{"y": "9"}); ok {
		t.Error("binding conflict should fail")
	}
	// Constant match.
	c := cq.NewAtom("R", 1, cq.Var("x"), cq.Const("2"), cq.Var("x"))
	if _, ok := MatchAtom(c, f, cq.Valuation{}); !ok {
		t.Error("constant should match")
	}
	c2 := cq.NewAtom("R", 1, cq.Var("x"), cq.Const("7"), cq.Var("x"))
	if _, ok := MatchAtom(c2, f, cq.Valuation{}); ok {
		t.Error("constant mismatch should fail")
	}
	// Wrong relation / arity.
	if _, ok := MatchAtom(a, db.NewFact("S", 1, "1", "2", "1"), cq.Valuation{}); ok {
		t.Error("relation mismatch should fail")
	}
	if _, ok := MatchAtom(a, db.NewFact("R", 1, "1", "2"), cq.Valuation{}); ok {
		t.Error("arity mismatch should fail")
	}
	// Input binding must not be mutated.
	in := cq.Valuation{"z": "0"}
	MatchAtom(a, f, in)
	if len(in) != 1 {
		t.Error("MatchAtom mutated its input")
	}
}

func TestEvalConference(t *testing.T) {
	d := figure1DB()
	q := cq.ConferenceQuery()
	if !Eval(q, d) {
		t.Error("the conference query is satisfied by the Fig.1 database")
	}
	// "true in only three repairs": check via repair enumeration.
	sat := 0
	d.EachRepair(func(r []db.Fact) bool {
		if EvalRepair(q, r) {
			sat++
		}
		return true
	})
	if sat != 3 {
		t.Errorf("query should hold in 3 of 4 repairs, got %d", sat)
	}
}

func TestEvalEmptyQueryAndDB(t *testing.T) {
	if !Eval(cq.Query{}, db.New()) {
		t.Error("empty query is true on the empty database")
	}
	if Eval(cq.MustParseQuery("R(x|y)"), db.New()) {
		t.Error("nonempty query is false on the empty database")
	}
}

func TestEmbeddingsCount(t *testing.T) {
	d := db.MustParse(`
		R(1 | a)
		R(2 | a)
		S(a | x)
		S(a | y)
	`)
	q := cq.MustParseQuery("R(u | v), S(v | w)")
	embs := Embeddings(q, d)
	if len(embs) != 4 {
		t.Fatalf("expected 4 embeddings, got %d: %v", len(embs), embs)
	}
	for _, e := range embs {
		if len(e) != 3 {
			t.Errorf("embedding not total over vars(q): %v", e)
		}
		if e["v"] != "a" {
			t.Errorf("v must be a: %v", e)
		}
	}
}

func TestEachEmbeddingEarlyStop(t *testing.T) {
	d := db.MustParse("R(1 | a), R(2 | a)")
	q := cq.MustParseQuery("R(u | v)")
	count := 0
	completed := EachEmbedding(q, d, func(cq.Valuation) bool {
		count++
		return false
	})
	if completed || count != 1 {
		t.Errorf("early stop failed: %v %d", completed, count)
	}
}

func TestEvalSelfJoin(t *testing.T) {
	// Self-joins are legal for evaluation even though the complexity theory
	// excludes them.
	d := db.MustParse("E(1 | 2), E(2 | 3)")
	q := cq.MustParseQuery("E(x | y), E(y | z)")
	if !Eval(q, d) {
		t.Error("path of length 2 exists")
	}
	q3 := cq.MustParseQuery("E(x | y), E(y | z), E(z | w)")
	if Eval(q3, d) {
		t.Error("no path of length 3")
	}
}

func TestPurifyExample1(t *testing.T) {
	// Example 1: {R(a,b), S(b,a), S(b,c)} is not purified relative to
	// {R(x|y), S(y|x)} because no R-fact joins with S(b,c).
	d := db.MustParse("R(a | b), S(b | a), S(b | c)")
	q := cq.MustParseQuery("R(x | y), S(y | x)")
	if IsPurified(q, d) {
		t.Error("Example 1 database is not purified")
	}
	p := Purify(q, d)
	if !IsPurified(q, p) {
		t.Error("Purify result must be purified")
	}
	// S(b,c) is unused; its whole block {S(b,a), S(b,c)} is removed, which
	// then makes R(a,b) unused too: the purified database is empty.
	if p.Len() != 0 {
		t.Errorf("purified database should be empty, got:\n%s", p)
	}
}

func TestPurifyKeepsRelevant(t *testing.T) {
	d := db.MustParse("R(a | b), S(b | a)")
	q := cq.MustParseQuery("R(x | y), S(y | x)")
	p := Purify(q, d)
	if p.Len() != 2 {
		t.Errorf("fully relevant database must be unchanged:\n%s", p)
	}
}

func TestPurifyPreservesCertaintyBruteForce(t *testing.T) {
	// Cross-check Lemma 1 on a handful of small instances.
	certain := func(q cq.Query, d *db.DB) bool {
		all := true
		d.EachRepair(func(r []db.Fact) bool {
			if !EvalRepair(q, r) {
				all = false
				return false
			}
			return true
		})
		return all
	}
	q := cq.MustParseQuery("R(x | y), S(y | x)")
	dbs := []*db.DB{
		db.MustParse("R(a | b), S(b | a), S(b | c)"),
		db.MustParse("R(a | b), R(a | c), S(b | a), S(c | a)"),
		db.MustParse("R(a | b), S(b | a)"),
		db.New(),
		db.MustParse("R(a | b), R(a | c), S(b | a), S(c | z)"),
	}
	for _, d := range dbs {
		p := Purify(q, d)
		if got, want := certain(q, p), certain(q, d); got != want {
			t.Errorf("purification changed certainty for\n%s: %v vs %v", d, got, want)
		}
	}
}

// Property: every fact of a purified database participates in an embedding,
// purification is idempotent, and the result is a subset of the input.
func TestQuickPurifyProperties(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		d := db.New()
		vals := []string{"a", "b", "c"}
		for i := 0; i < 6; i++ {
			rel := "R"
			if next(2) == 0 {
				rel = "S"
			}
			d.Add(db.NewFact(rel, 1, vals[next(3)], vals[next(3)]))
		}
		p := Purify(q, d)
		if !IsPurified(q, p) {
			return false
		}
		for _, f := range p.Facts() {
			if !d.Has(f) {
				return false
			}
		}
		return p.Equal(Purify(q, p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: for random small instances, Eval agrees with a naive
// all-valuations evaluation over the active domain.
func TestQuickEvalAgreesWithNaive(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | x)")
	naive := func(d *db.DB) bool {
		dom := d.ActiveDomain()
		if len(dom) == 0 {
			return false
		}
		for _, x := range dom {
			for _, y := range dom {
				v := cq.Valuation{"x": x, "y": y}
				all := true
				for _, a := range q.Atoms {
					f, _ := db.FactFromAtom(a.Substitute(v))
					if !d.Has(f) {
						all = false
						break
					}
				}
				if all {
					return true
				}
			}
		}
		return false
	}
	f := func(seed uint32) bool {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>16) % n
		}
		d := db.New()
		vals := []string{"a", "b", "c"}
		for i := 0; i < 5; i++ {
			rel := "R"
			if next(2) == 0 {
				rel = "S"
			}
			d.Add(db.NewFact(rel, 1, vals[next(3)], vals[next(3)]))
		}
		return Eval(q, d) == naive(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExplainPlan(t *testing.T) {
	d := db.MustParse(`
		R(1 | a)
		R(2 | a)
		R(2 | b)
		S(a | x)
	`)
	q := cq.MustParseQuery("R(u | v), S(v | w)")
	plan := Explain(q, d)
	if len(plan.Steps) != 2 {
		t.Fatalf("plan = %v", plan)
	}
	// First step: no bound vars, full scan of the smaller relation (S has
	// 1 fact; R has 3; greedy order starts with most-bound then smallest).
	first := plan.Steps[0]
	if first.BoundVars != 0 || first.KeyBound {
		t.Errorf("first step: %+v", first)
	}
	if q.Atoms[first.AtomIndex].Rel != "S" {
		t.Errorf("first step should scan the smaller relation S: %+v", first)
	}
	// Second step: R's key u is still unbound (S binds v, w), so scan; but
	// v is bound.
	second := plan.Steps[1]
	if second.BoundVars != 1 {
		t.Errorf("second step: %+v", second)
	}
	out := plan.String()
	if !strings.Contains(out, "scan") {
		t.Errorf("plan rendering: %s", out)
	}

	// A key-joined query gets the block index on the second step.
	q2 := cq.MustParseQuery("S(a | x), R(x | y)")
	plan2 := Explain(q2, d)
	var rStep *PlanStep
	for i := range plan2.Steps {
		if q2.Atoms[plan2.Steps[i].AtomIndex].Rel == "R" {
			rStep = &plan2.Steps[i]
		}
	}
	if rStep == nil || !rStep.KeyBound {
		t.Errorf("R step should use the block index: %+v", plan2)
	}
	if rStep.Candidates != 2 { // largest R block has 2 facts
		t.Errorf("R block-index candidates = %d", rStep.Candidates)
	}
}
