// Package engine evaluates Boolean conjunctive queries on uncertain
// databases: satisfaction (db ⊨ q), enumeration of embeddings (valuations θ
// with θ(q) ⊆ db), and purification (Lemma 1).
package engine

import (
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// MatchAtom unifies atom a with fact f under the given partial valuation.
// It returns the extended valuation and true on success; the input valuation
// is not modified.
func MatchAtom(a cq.Atom, f db.Fact, binding cq.Valuation) (cq.Valuation, bool) {
	if a.Rel != f.Rel || len(a.Args) != len(f.Args) || a.KeyLen != f.KeyLen {
		return nil, false
	}
	// First pass without allocating: verify terms already determined.
	var ext cq.Valuation
	for i, t := range a.Args {
		if t.IsConst {
			if t.Value != f.Args[i] {
				return nil, false
			}
			continue
		}
		if v, ok := binding[t.Value]; ok {
			if v != f.Args[i] {
				return nil, false
			}
			continue
		}
		if v, ok := ext[t.Value]; ok {
			if v != f.Args[i] {
				return nil, false
			}
			continue
		}
		if ext == nil {
			ext = make(cq.Valuation)
		}
		ext[t.Value] = f.Args[i]
	}
	out := binding.Clone()
	for k, v := range ext {
		out[k] = v
	}
	return out, true
}

// candidates returns the facts of d that could match atom a under binding,
// as a shared slice from the database's memoized index (callers only read).
// When all key terms of a are determined the block index narrows the scan to
// a single block; failing that, any single determined position narrows it to
// that position's posting list; only a fully undetermined atom scans the
// whole relation. Posting lists preserve insertion order and only omit facts
// MatchAtom would reject, so enumeration order is unchanged.
func candidates(a cq.Atom, binding cq.Valuation, d *db.DB) []db.Fact {
	key := make([]string, a.KeyLen)
	keyDetermined := true
	for i := 0; i < a.KeyLen; i++ {
		t := a.Args[i]
		if t.IsConst {
			key[i] = t.Value
			continue
		}
		v, ok := binding[t.Value]
		if !ok {
			keyDetermined = false
			break
		}
		key[i] = v
	}
	if keyDetermined {
		probe := db.Fact{Rel: a.Rel, KeyLen: a.KeyLen, Args: key}
		return d.BlockView(probe)
	}
	for pos, t := range a.Args {
		if t.IsConst {
			return d.FactsAt(a.Rel, pos, t.Value)
		}
		if v, ok := binding[t.Value]; ok {
			return d.FactsAt(a.Rel, pos, v)
		}
	}
	return d.RelationFacts(a.Rel)
}

// orderAtoms returns an evaluation order: start from the atom with the
// fewest matching facts, then greedily prefer atoms with the most variables
// already bound (so the block index applies as often as possible).
func orderAtoms(q cq.Query, d *db.DB) []int {
	n := q.Len()
	if n == 0 {
		// The empty query has no atoms to order; without this guard the
		// selection loop below would index q.Atoms[-1].
		return nil
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := make(cq.VarSet)
	for len(order) < n {
		best, bestBound, bestSize := -1, -1, -1
		for i, a := range q.Atoms {
			if used[i] {
				continue
			}
			b := a.Vars().Intersect(bound).Len()
			size := d.RelationSize(a.Rel)
			if best == -1 || b > bestBound || (b == bestBound && size < bestSize) {
				best, bestBound, bestSize = i, b, size
			}
		}
		used[best] = true
		order = append(order, best)
		bound.AddAll(q.Atoms[best].Vars())
	}
	return order
}

// EachEmbedding enumerates all valuations θ over vars(q) with θ(q) ⊆ d,
// stopping early when yield returns false. Returns false iff stopped early.
// The valuation passed to yield is owned by the callee (it is freshly
// allocated per embedding).
//
// It runs on the interned data plane (see interned.go) unless SetInterned
// has deselected it; both implementations enumerate the identical sequence.
func EachEmbedding(q cq.Query, d *db.DB, yield func(cq.Valuation) bool) bool {
	if internedOn.Load() {
		cont, _ := eachEmbeddingInterned(nil, q, d, yield)
		return cont
	}
	return EachEmbeddingIndexed(q, d, yield)
}

// EachEmbeddingIndexed is the string-indexed reference implementation of
// EachEmbedding, retained for differential tests and benchmarks against
// the interned plane.
func EachEmbeddingIndexed(q cq.Query, d *db.DB, yield func(cq.Valuation) bool) bool {
	order := orderAtoms(q, d)
	var rec func(i int, binding cq.Valuation) bool
	rec = func(i int, binding cq.Valuation) bool {
		if i == len(order) {
			return yield(binding)
		}
		a := q.Atoms[order[i]]
		for _, f := range candidates(a, binding, d) {
			if next, ok := MatchAtom(a, f, binding); ok {
				if !rec(i+1, next) {
					return false
				}
			}
		}
		return true
	}
	return rec(0, cq.Valuation{})
}

// Embeddings returns all embeddings of q in d.
func Embeddings(q cq.Query, d *db.DB) []cq.Valuation {
	var out []cq.Valuation
	EachEmbedding(q, d, func(v cq.Valuation) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Eval reports whether d ⊨ q: some valuation maps every atom of q into d.
// The empty query is true everywhere.
func Eval(q cq.Query, d *db.DB) bool {
	if internedOn.Load() {
		sat, _ := evalInterned(nil, q, d)
		return sat
	}
	return EvalIndexed(q, d)
}

// EvalIndexed is the string-indexed reference implementation of Eval.
func EvalIndexed(q cq.Query, d *db.DB) bool {
	found := false
	EachEmbeddingIndexed(q, d, func(cq.Valuation) bool {
		found = true
		return false
	})
	return found
}

// EvalRepair reports whether the repair (a fact slice as produced by
// db.DB.EachRepair) satisfies q, without materializing a DB when q is small.
func EvalRepair(q cq.Query, repair []db.Fact) bool {
	return Eval(q, db.RepairDB(repair))
}

// Purify implements Lemma 1: it returns a database purified relative to q —
// every fact A of the result participates in some embedding θ with
// A ∈ θ(q) ⊆ result — such that the result is in CERTAINTY(q) iff d is.
// Whole blocks of irrelevant facts are removed until a fixpoint.
func Purify(q cq.Query, d *db.DB) *db.DB {
	if internedOn.Load() {
		out, _ := purifyInterned(nil, q, d)
		return out
	}
	return PurifyIndexed(q, d)
}

// PurifyIndexed is the string-indexed reference implementation of Purify:
// used facts are marked in an ID-keyed map instead of fact-index bitsets.
func PurifyIndexed(q cq.Query, d *db.DB) *db.DB {
	cur := d
	for {
		used := make(map[string]struct{}, cur.Len())
		EachEmbeddingIndexed(q, cur, func(v cq.Valuation) bool {
			for _, a := range q.Atoms {
				f, ok := db.FactFromAtom(a.Substitute(v))
				if !ok {
					continue
				}
				used[f.ID()] = struct{}{}
			}
			return true
		})
		// Remove the blocks of all unused facts in one sweep; removing a
		// block can only invalidate further embeddings, never create ones,
		// so iterate to a fixpoint.
		removeBlocks := make(map[string]struct{})
		for _, f := range cur.Facts() {
			if _, ok := used[f.ID()]; !ok {
				removeBlocks[f.BlockID()] = struct{}{}
			}
		}
		if len(removeBlocks) == 0 {
			return cur
		}
		cur = cur.Restrict(func(f db.Fact) bool {
			_, drop := removeBlocks[f.BlockID()]
			return !drop
		})
	}
}

// IsPurified reports whether d is purified relative to q: every fact occurs
// in some embedding of q in d.
func IsPurified(q cq.Query, d *db.DB) bool {
	used := make(map[string]struct{}, d.Len())
	EachEmbedding(q, d, func(v cq.Valuation) bool {
		for _, a := range q.Atoms {
			if f, ok := db.FactFromAtom(a.Substitute(v)); ok {
				used[f.ID()] = struct{}{}
			}
		}
		return true
	})
	for _, f := range d.Facts() {
		if _, ok := used[f.ID()]; !ok {
			return false
		}
	}
	return true
}
