package prob

import (
	"math/big"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
)

// ProbabilityByWorlds computes Pr(q) exactly by enumerating possible worlds
// (Definition 10): per block, either one fact is chosen or the block is
// absent (probability 1 − Σ block). Exponential in the number of blocks of
// q's relations; the ground truth for the safe-plan evaluator.
func ProbabilityByWorlds(q cq.Query, p *ProbDB) *big.Rat {
	rels := make(map[string]bool, q.Len())
	for _, a := range q.Atoms {
		rels[a.Rel] = true
	}
	// Facts of relations outside q never influence satisfaction, and their
	// choice probabilities sum to 1; restrict to the relevant blocks.
	var blocks [][]db.Fact
	for _, blk := range p.d.Blocks() {
		if rels[blk[0].Rel] {
			blocks = append(blocks, blk)
		}
	}
	one := big.NewRat(1, 1)
	total := new(big.Rat)
	world := db.New()
	var rec func(i int, weight *big.Rat)
	rec = func(i int, weight *big.Rat) {
		if weight.Sign() == 0 {
			return
		}
		if i == len(blocks) {
			if engine.Eval(q, world) {
				total.Add(total, weight)
			}
			return
		}
		// Absent block.
		absent := new(big.Rat).Set(one)
		for _, f := range blocks[i] {
			absent.Sub(absent, p.probs[f.ID()])
		}
		rec(i+1, new(big.Rat).Mul(weight, absent))
		// One fact chosen.
		for _, f := range blocks[i] {
			next := world.Clone()
			if err := next.Add(f); err != nil {
				panic(err)
			}
			saved := world
			world = next
			rec(i+1, new(big.Rat).Mul(weight, p.probs[f.ID()]))
			world = saved
		}
	}
	rec(0, new(big.Rat).Set(one))
	return total
}

// CountSatisfyingRepairs counts the repairs of d that satisfy q — the
// ♯CERTAINTY(q) problem — by enumeration.
func CountSatisfyingRepairs(q cq.Query, d *db.DB) *big.Int {
	count := new(big.Int)
	one := big.NewInt(1)
	d.EachRepair(func(r []db.Fact) bool {
		if engine.EvalRepair(q, r) {
			count.Add(count, one)
		}
		return true
	})
	return count
}

// CountViaUniform computes ♯CERTAINTY(q) as Pr(q) · (number of repairs)
// under the uniform BID distribution, using the safe-plan evaluator; exact
// (big.Rat) and polynomial for safe queries. Fails on unsafe queries.
func CountViaUniform(q cq.Query, d *db.DB) (*big.Int, error) {
	pr, err := Probability(q, Uniform(d))
	if err != nil {
		return nil, err
	}
	total := d.NumRepairs()
	// count = pr × total; exact because pr is a rational whose denominator
	// divides the product of block sizes.
	num := new(big.Int).Mul(pr.Num(), total)
	count, rem := new(big.Int).QuoRem(num, pr.Denom(), new(big.Int))
	if rem.Sign() != 0 {
		// Cannot happen: Pr(q) has the form k/total.
		panic("prob: non-integral repair count")
	}
	return count, nil
}

// CertainViaProbability decides CERTAINTY(q) on db′ (the blocks of p whose
// mass is 1) via Proposition 1: the answer to PROBABILITY(q) on p is 1 iff
// db′ ∈ CERTAINTY(q). The probability is computed by world enumeration, so
// this works for unsafe queries too (exponentially).
func CertainViaProbability(q cq.Query, p *ProbDB) bool {
	return ProbabilityByWorlds(q, p).Cmp(big.NewRat(1, 1)) == 0
}

// UniformProbability is a convenience: Pr(q) on Uniform(d) by world
// enumeration, which equals ♯sat / ♯repairs exactly.
func UniformProbability(q cq.Query, d *db.DB) *big.Rat {
	return ProbabilityByWorlds(q, Uniform(d))
}

// CountSatisfyingDecomposed counts the repairs satisfying q exactly, like
// CountSatisfyingRepairs, but factorizes the work: variable-disjoint
// components of q are satisfied independently, and blocks of relations
// outside q multiply the count without affecting satisfaction. The count
// is then
//
//	∏_i ♯sat(q_i, db_i) × ∏ (irrelevant block sizes)
//
// which beats whole-database enumeration exponentially whenever q
// decomposes. Within a component, counting still enumerates the
// component's repairs (♯CERTAINTY is ♯P-hard in general).
func CountSatisfyingDecomposed(q cq.Query, d *db.DB) *big.Int {
	comps := q.ConnectedComponents()
	total := big.NewInt(1)
	claimed := make(map[string]bool, q.Len())
	for _, comp := range comps {
		atoms := make([]cq.Atom, len(comp))
		for i, idx := range comp {
			atoms[i] = q.Atoms[idx]
			claimed[q.Atoms[idx].Rel] = true
		}
		sub := cq.Query{Atoms: atoms}
		rels := make(map[string]bool, len(atoms))
		for _, a := range atoms {
			rels[a.Rel] = true
		}
		di := d.Restrict(func(f db.Fact) bool { return rels[f.Rel] })
		total.Mul(total, CountSatisfyingRepairs(sub, di))
		if total.Sign() == 0 {
			return total
		}
	}
	for _, blk := range d.Blocks() {
		if !claimed[blk[0].Rel] {
			total.Mul(total, big.NewInt(int64(len(blk))))
		}
	}
	return total
}
