package prob

import (
	"context"
	"math/big"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/shard"
)

// shardCounts holds one data shard's exact tallies: N repairs, s of which
// satisfy the component query.
type shardCounts struct {
	repairs    *big.Int
	satisfying *big.Int
}

// countShards enumerates every shard of dec in parallel on the worker pool
// and returns the per-component tallies. Enumeration within a shard is the
// exponential ♯CERTAINTY ground truth; the decomposition is what shrinks
// each exponent from "all blocks" to "blocks of one shard".
func countShards(dec *shard.Decomposition) [][]shardCounts {
	type flatShard struct{ comp, idx int }
	var flat []flatShard
	counts := make([][]shardCounts, len(dec.Components))
	for j, shards := range dec.Shards {
		counts[j] = make([]shardCounts, len(shards))
		for i := range shards {
			flat = append(flat, flatShard{comp: j, idx: i})
		}
	}
	_ = shard.ForEach(context.Background(), len(flat), func(k int) {
		fs := flat[k]
		di := dec.Shards[fs.comp][fs.idx]
		counts[fs.comp][fs.idx] = shardCounts{
			repairs:    di.NumRepairs(),
			satisfying: CountSatisfyingRepairs(dec.Components[fs.comp], di),
		}
	})
	return counts
}

// CountSatisfyingSharded counts the repairs of d satisfying q — the same
// number as CountSatisfyingRepairs — through the shard decomposition: with
// shard i of component qⱼ holding Nᵢ repairs of which sᵢ satisfy qⱼ,
//
//	♯sat(qⱼ, dⱼ) = ∏ᵢ Nᵢ − ∏ᵢ (Nᵢ − sᵢ)
//
// (a repair of dⱼ satisfies the connected qⱼ unless every shard's part
// falsifies it), components multiply, and so do the block sizes of
// relations outside q. Shards are enumerated in parallel on the worker
// pool. maxShards caps the shards per component as in shard.Decompose;
// maxShards ≤ 0 keeps the partition as fine as possible, which here is also
// the cheapest, since enumeration cost is exponential in shard width.
func CountSatisfyingSharded(q cq.Query, d *db.DB, maxShards int) *big.Int {
	dec := shard.Decompose(q, d, maxShards)
	return combineCounts(dec, countShards(dec))
}

// combineCounts folds per-shard tallies into the total satisfying-repair
// count: ∏ᵢNᵢ − ∏ᵢ(Nᵢ−sᵢ) per component, components and irrelevant-block
// sizes multiplied. It only reads the stored big.Ints (every arithmetic
// result is freshly allocated), so tallies may be shared with a CountMemo.
func combineCounts(dec *shard.Decomposition, counts [][]shardCounts) *big.Int {
	total := big.NewInt(1)
	for _, comp := range counts {
		if len(comp) == 0 {
			// No facts for this component's relations: no repair satisfies it.
			return big.NewInt(0)
		}
		allRepairs := big.NewInt(1)
		allFalsify := big.NewInt(1)
		for _, sc := range comp {
			allRepairs.Mul(allRepairs, sc.repairs)
			allFalsify.Mul(allFalsify, new(big.Int).Sub(sc.repairs, sc.satisfying))
		}
		total.Mul(total, allRepairs.Sub(allRepairs, allFalsify))
		if total.Sign() == 0 {
			return total
		}
	}
	for _, n := range dec.IrrelevantBlocks {
		total.Mul(total, big.NewInt(int64(n)))
	}
	return total
}

// UniformProbabilitySharded computes Pr(q) under uniform repair choice —
// the same rational as UniformProbability — through the shard
// decomposition: with pᵢ = sᵢ/Nᵢ the satisfaction probability of shard i of
// component qⱼ,
//
//	Pr(qⱼ | dⱼ) = 1 − ∏ᵢ (1 − pᵢ),   Pr(q | d) = ∏ⱼ Pr(qⱼ | dⱼ).
//
// Blocks outside q's relations cancel. Exact (big.Rat); shards are
// enumerated in parallel on the worker pool.
func UniformProbabilitySharded(q cq.Query, d *db.DB, maxShards int) *big.Rat {
	dec := shard.Decompose(q, d, maxShards)
	return combineProbability(countShards(dec))
}

// combineProbability folds per-shard tallies into Pr(q): 1 − ∏ᵢ(1−sᵢ/Nᵢ)
// per component, components multiplied. Read-only on the stored big.Ints,
// like combineCounts.
func combineProbability(counts [][]shardCounts) *big.Rat {
	one := big.NewRat(1, 1)
	total := new(big.Rat).Set(one)
	for _, comp := range counts {
		if len(comp) == 0 {
			return new(big.Rat)
		}
		noneSat := new(big.Rat).Set(one)
		for _, sc := range comp {
			if sc.repairs.Sign() == 0 {
				// A relation present in the query but with an empty shard
				// cannot happen (shards are non-empty by construction); guard
				// against division by zero all the same.
				return new(big.Rat)
			}
			pi := new(big.Rat).SetFrac(sc.satisfying, sc.repairs)
			noneSat.Mul(noneSat, new(big.Rat).Sub(one, pi))
		}
		total.Mul(total, new(big.Rat).Sub(one, noneSat))
		if total.Sign() == 0 {
			return total
		}
	}
	return total
}
