package prob

import (
	"fmt"
	"math/big"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
)

// IsSafe reproduces the paper's Function IsSafe(q) verbatim for self-join-
// free Boolean conjunctive queries. Safe queries have PROBABILITY(q) in FP;
// unsafe ones are ♯P-hard (Theorem 5, after Dalvi–Ré–Suciu).
func IsSafe(q cq.Query) bool {
	if q.HasSelfJoin() {
		return false
	}
	return isSafe(q)
}

func isSafe(q cq.Query) bool {
	// The empty conjunction is trivially true with probability 1.
	if q.IsEmpty() {
		return true
	}
	// R1: a single ground atom.
	if q.Len() == 1 && q.Vars().Len() == 0 {
		return true
	}
	// R2: q = q1 ∪ q2 with disjoint variables. Splitting along connected
	// components is the finest such split and safety distributes over it.
	if comps := q.ConnectedComponents(); len(comps) > 1 {
		for _, comp := range comps {
			atoms := make([]cq.Atom, len(comp))
			for i, idx := range comp {
				atoms[i] = q.Atoms[idx]
			}
			if !isSafe(cq.Query{Atoms: atoms}) {
				return false
			}
		}
		return true
	}
	// R3: a variable in every key.
	if x, ok := commonKeyVar(q); ok {
		return isSafe(q.Substitute(cq.Valuation{x: "⊛"}))
	}
	// R4: an atom with an empty key but remaining variables.
	for _, a := range q.Atoms {
		if a.KeyVars().Len() == 0 && a.Vars().Len() > 0 {
			x := a.Vars().Sorted()[0]
			return isSafe(q.Substitute(cq.Valuation{x: "⊛"}))
		}
	}
	return false
}

// commonKeyVar returns a variable occurring in the key of every atom (the
// lexicographically smallest, for determinism).
func commonKeyVar(q cq.Query) (string, bool) {
	if q.Len() == 0 {
		return "", false
	}
	common := q.Atoms[0].KeyVars()
	for _, a := range q.Atoms[1:] {
		common = common.Intersect(a.KeyVars())
	}
	if common.Len() == 0 {
		return "", false
	}
	return common.Sorted()[0], true
}

// Probability computes Pr(q) on a BID probabilistic database for safe
// queries, mirroring the IsSafe recursion (the safe-plan evaluation of
// Dalvi–Ré–Suciu):
//
//	R1: Pr of the single ground fact;
//	R2: product over independent (variable-disjoint) components;
//	R3: x in every key ⇒ blocks with different x-values are independent:
//	    Pr(q) = 1 − ∏_{a ∈ D} (1 − Pr(q[x↦a]));
//	R4: key(F) = ∅ ⇒ the F-facts are pairwise disjoint events:
//	    Pr(q) = Σ_{a ∈ D} Pr(q[x↦a]) for any x ∈ vars(F).
//
// It fails on unsafe queries (whose PROBABILITY problem is ♯P-hard).
func Probability(q cq.Query, p *ProbDB) (*big.Rat, error) {
	if q.HasSelfJoin() {
		return nil, fmt.Errorf("prob: safe-plan evaluation requires self-join-free queries: %s", q)
	}
	dom := p.DB().ActiveDomain()
	return probability(q, p, dom)
}

func probability(q cq.Query, p *ProbDB, dom []string) (*big.Rat, error) {
	one := big.NewRat(1, 1)
	if q.IsEmpty() {
		return one, nil
	}
	// R1.
	if q.Len() == 1 && q.Vars().Len() == 0 {
		f, _ := db.FactFromAtom(q.Atoms[0])
		return p.Prob(f), nil
	}
	// R2.
	if comps := q.ConnectedComponents(); len(comps) > 1 {
		out := new(big.Rat).Set(one)
		for _, comp := range comps {
			atoms := make([]cq.Atom, len(comp))
			for i, idx := range comp {
				atoms[i] = q.Atoms[idx]
			}
			pr, err := probability(cq.Query{Atoms: atoms}, p, dom)
			if err != nil {
				return nil, err
			}
			out.Mul(out, pr)
		}
		return out, nil
	}
	// R3.
	if x, ok := commonKeyVar(q); ok {
		allFalse := new(big.Rat).Set(one)
		for _, a := range dom {
			pr, err := probability(q.Substitute(cq.Valuation{x: a}), p, dom)
			if err != nil {
				return nil, err
			}
			factor := new(big.Rat).Sub(one, pr)
			allFalse.Mul(allFalse, factor)
		}
		return new(big.Rat).Sub(one, allFalse), nil
	}
	// R4.
	for _, a := range q.Atoms {
		if a.KeyVars().Len() == 0 && a.Vars().Len() > 0 {
			x := a.Vars().Sorted()[0]
			out := new(big.Rat)
			for _, c := range dom {
				pr, err := probability(q.Substitute(cq.Valuation{x: c}), p, dom)
				if err != nil {
					return nil, err
				}
				out.Add(out, pr)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("prob: query is not safe: %s", q)
}
