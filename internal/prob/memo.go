package prob

import (
	"context"
	"math/big"
	"sync"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/lru"
	"github.com/cqa-go/certainty/internal/obs"
	"github.com/cqa-go/certainty/internal/shard"
)

// CountMemo is the counting-layer twin of the solver's ShardMemo: it maps a
// shard fingerprint (shard.Decomposition.ShardFingerprint) to the shard's
// exact tallies (N repairs, s satisfying). Both ♯CERTAINTY and PROBABILITY
// derive from the same per-shard (N, s) pairs through the product
// identities, so one memo serves both. Content addressing makes reuse
// exact: a mutation changes the touched shards' fingerprints, which then
// miss and re-enumerate, while untouched shards reuse their tallies.
//
// The stored big.Ints are shared between the memo and every caller; the
// combining algebra only reads them (Mul/Sub allocate their results), and
// callers must do the same.
//
// Safe for concurrent use.
type CountMemo struct {
	mu      sync.Mutex
	c       *lru.Cache[string, countEntry]
	byBlock map[string]map[string]struct{}
	m       *obs.CacheMetrics
}

// countEntry is one memoized shard's tallies plus its block IDs for
// eviction/invalidation unindexing.
type countEntry struct {
	repairs    *big.Int
	satisfying *big.Int
	blocks     []string
}

// NewCountMemo returns a memo holding at most size entries (size <= 0
// selects the solver's default memo size, 4096). Metrics m may be nil.
func NewCountMemo(size int, m *obs.CacheMetrics) *CountMemo {
	if size <= 0 {
		size = 4096
	}
	cm := &CountMemo{
		c:       lru.New[string, countEntry](size),
		byBlock: make(map[string]map[string]struct{}),
		m:       m,
	}
	m.SetSize(0, cm.c.Cap())
	return cm
}

func (cm *CountMemo) get(fp string) (countEntry, bool) {
	cm.mu.Lock()
	e, ok := cm.c.Get(fp)
	cm.mu.Unlock()
	if ok {
		cm.m.Hit()
	} else {
		cm.m.Miss()
	}
	return e, ok
}

func (cm *CountMemo) put(fp string, e countEntry) {
	cm.mu.Lock()
	evictedFP, evicted, wasEvicted := cm.c.PutEvicted(fp, e)
	if wasEvicted {
		cm.unindexLocked(evictedFP, evicted.blocks)
		cm.m.Evicted(1)
	}
	for _, bid := range e.blocks {
		set := cm.byBlock[bid]
		if set == nil {
			set = make(map[string]struct{})
			cm.byBlock[bid] = set
		}
		set[fp] = struct{}{}
	}
	cm.m.SetSize(cm.c.Len(), cm.c.Cap())
	cm.mu.Unlock()
}

// Invalidate drops every entry whose fingerprint covers any of the given
// block IDs, returning how many were removed. As with the verdict memo this
// is hygiene, not correctness — stale fingerprints are never looked up
// again.
func (cm *CountMemo) Invalidate(blocks []string) int {
	cm.mu.Lock()
	removed := 0
	for _, bid := range blocks {
		for fp := range cm.byBlock[bid] {
			if e, ok := cm.c.Peek(fp); ok {
				cm.c.Delete(fp)
				cm.unindexLocked(fp, e.blocks)
				removed++
			}
		}
		delete(cm.byBlock, bid)
	}
	cm.m.SetSize(cm.c.Len(), cm.c.Cap())
	cm.mu.Unlock()
	return removed
}

func (cm *CountMemo) unindexLocked(fp string, blocks []string) {
	for _, bid := range blocks {
		if set, ok := cm.byBlock[bid]; ok {
			delete(set, fp)
			if len(set) == 0 {
				delete(cm.byBlock, bid)
			}
		}
	}
}

// Len returns the number of memoized shard tallies.
func (cm *CountMemo) Len() int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.c.Len()
}

// Stats snapshots the underlying cache counters.
func (cm *CountMemo) Stats() lru.Stats {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.c.Stats()
}

// countShardsMemo is countShards with per-shard memoization: shards whose
// fingerprints hit the memo reuse their tallies, only the misses are
// enumerated (in parallel on the worker pool), and the fresh tallies are
// memoized afterwards. The returned matrix is identical to countShards'.
func countShardsMemo(dec *shard.Decomposition, d *db.DB, memo *CountMemo) [][]shardCounts {
	if memo == nil {
		return countShards(dec)
	}
	type flatShard struct {
		comp, idx int
		fp        string
	}
	var flat []flatShard
	counts := make([][]shardCounts, len(dec.Components))
	for j, shards := range dec.Shards {
		counts[j] = make([]shardCounts, len(shards))
		for i := range shards {
			fp := dec.ShardFingerprint(d, j, i)
			if e, ok := memo.get(fp); ok {
				counts[j][i] = shardCounts{repairs: e.repairs, satisfying: e.satisfying}
				continue
			}
			flat = append(flat, flatShard{comp: j, idx: i, fp: fp})
		}
	}
	_ = shard.ForEach(context.Background(), len(flat), func(k int) {
		fs := flat[k]
		di := dec.Shards[fs.comp][fs.idx]
		counts[fs.comp][fs.idx] = shardCounts{
			repairs:    di.NumRepairs(),
			satisfying: CountSatisfyingRepairs(dec.Components[fs.comp], di),
		}
	})
	for _, fs := range flat {
		sc := counts[fs.comp][fs.idx]
		memo.put(fs.fp, countEntry{
			repairs:    sc.repairs,
			satisfying: sc.satisfying,
			blocks:     dec.Blocks[fs.comp][fs.idx],
		})
	}
	return counts
}

// CountSatisfyingShardedMemo is CountSatisfyingSharded through the count
// memo: identical results (the exact ∏ᵢNᵢ − ∏ᵢ(Nᵢ−sᵢ) per component,
// components and irrelevant-block sizes multiplied), with per-shard tallies
// reused across calls and mutations wherever the shard content is
// unchanged. Irrelevant-block sizes are read from the decomposition each
// call — they are not memoized, so they always reflect the current
// database.
func CountSatisfyingShardedMemo(q cq.Query, d *db.DB, maxShards int, memo *CountMemo) *big.Int {
	dec := shard.Decompose(q, d, maxShards)
	counts := countShardsMemo(dec, d, memo)
	return combineCounts(dec, counts)
}

// UniformProbabilityShardedMemo is UniformProbabilitySharded through the
// count memo: identical rationals, per-shard tallies reused as above.
func UniformProbabilityShardedMemo(q cq.Query, d *db.DB, maxShards int, memo *CountMemo) *big.Rat {
	dec := shard.Decompose(q, d, maxShards)
	counts := countShardsMemo(dec, d, memo)
	return combineProbability(counts)
}
