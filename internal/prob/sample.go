package prob

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/govern"
)

// SampleWorld draws one possible world from the BID distribution: per
// block, a fact is chosen with its probability and the block is absent
// with the leftover mass.
func (p *ProbDB) SampleWorld(r *rand.Rand) *db.DB {
	w := db.New()
	for _, blk := range p.d.Blocks() {
		// Draw u ∈ [0,1) and walk the block's cumulative distribution.
		u := r.Float64()
		acc := 0.0
		for _, f := range blk {
			pr, _ := p.probs[f.ID()].Float64()
			acc += pr
			if u < acc {
				if err := w.Add(f); err != nil {
					panic(err)
				}
				break
			}
		}
	}
	return w
}

// SampleRepair draws a uniform random repair of d.
func SampleRepair(d *db.DB, r *rand.Rand) *db.DB {
	w := db.New()
	for _, blk := range d.Blocks() {
		if err := w.Add(blk[r.Intn(len(blk))]); err != nil {
			panic(err)
		}
	}
	return w
}

// EstimateProbability estimates Pr(q) by Monte-Carlo sampling of possible
// worlds: an unbiased estimator whose standard error is at most
// 1/(2·sqrt(samples)). Exact evaluation (Probability, or
// ProbabilityByWorlds) should be preferred whenever feasible; sampling
// covers unsafe queries on databases whose block count defeats world
// enumeration.
func (p *ProbDB) EstimateProbability(q cq.Query, samples int, seed int64) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("prob: samples must be positive, got %d", samples)
	}
	r := rand.New(rand.NewSource(seed))
	hits := 0
	for i := 0; i < samples; i++ {
		if engine.Eval(q, p.SampleWorld(r)) {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}

// EstimateSatisfactionCtx estimates by Monte-Carlo the fraction of repairs
// of d satisfying q, drawing up to the requested number of uniform repair
// samples under the governor carried by ctx (one step per sample). It is
// the graceful-degradation path of the solver stack: when the exact
// exponential search is cut off, the partial estimate stands in for the
// decision. On cutoff the samples drawn so far still yield an estimate,
// returned together with the governor's error. When a sampled repair
// falsifies q it is returned as a definitive witness refuting certainty
// (sampling keeps going, to finish the frequency estimate).
func EstimateSatisfactionCtx(ctx context.Context, q cq.Query, d *db.DB, samples int, seed int64) (estimate float64, drawn int, falsifier *db.DB, err error) {
	if samples <= 0 {
		return 0, 0, nil, fmt.Errorf("prob: samples must be positive, got %d", samples)
	}
	g := govern.From(ctx)
	r := rand.New(rand.NewSource(seed))
	hits := 0
	for i := 0; i < samples; i++ {
		if stepErr := g.Step(); stepErr != nil {
			err = stepErr
			break
		}
		rep := SampleRepair(d, r)
		if engine.Eval(q, rep) {
			hits++
		} else if falsifier == nil {
			falsifier = rep
		}
		drawn++
	}
	if drawn > 0 {
		estimate = float64(hits) / float64(drawn)
	}
	return estimate, drawn, falsifier, err
}

// EstimateCertain tests certainty statistically: it samples uniform
// repairs and reports false as soon as a falsifying repair is found. A
// true result is only evidence, not proof (one-sided Monte-Carlo); exact
// solvers should be preferred. Returns the witnessing repair when
// certainty is refuted.
func EstimateCertain(q cq.Query, d *db.DB, samples int, seed int64) (certain bool, witness *db.DB) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < samples; i++ {
		rep := SampleRepair(d, r)
		if !engine.Eval(q, rep) {
			return false, rep
		}
	}
	return true, nil
}

// exactUniform is a helper for tests: Pr(q) under Uniform as a float.
func exactUniform(q cq.Query, d *db.DB) float64 {
	v, _ := new(big.Float).SetRat(UniformProbability(q, d)).Float64()
	return v
}
