package prob

import (
	"context"
	"errors"
	"math"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/govern"
)

func TestEstimateSatisfactionCtx(t *testing.T) {
	// One two-fact block: R(k|a) satisfies q, R(k|b) does not → exact
	// satisfaction frequency 1/2.
	q := cq.MustParseQuery("R(x | 'a')")
	d := db.MustParse("R(k | a), R(k | b)")
	est, drawn, falsifier, err := EstimateSatisfactionCtx(context.Background(), q, d, 4000, 7)
	if err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	if drawn != 4000 {
		t.Fatalf("drawn = %d, want 4000", drawn)
	}
	if math.Abs(est-0.5) > 0.05 {
		t.Fatalf("estimate %v too far from 1/2", est)
	}
	if falsifier == nil {
		t.Fatal("expected a sampled falsifying repair on a not-certain instance")
	}
	if engineEval := falsifier.Has(db.NewFact("R", 1, "k", "b")); !engineEval {
		t.Fatalf("falsifier %v does not contain the refuting fact", falsifier)
	}
}

func TestEstimateSatisfactionCtxPartialOnCutoff(t *testing.T) {
	q := cq.MustParseQuery("R(x | 'a')")
	d := db.MustParse("R(k | a), R(k | b)")
	g := govern.New(context.Background(), govern.Options{Budget: 100})
	defer g.Close()
	est, drawn, _, err := EstimateSatisfactionCtx(g.Attach(), q, d, 4000, 7)
	if !errors.Is(err, govern.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if drawn != 100 {
		t.Fatalf("drawn = %d, want exactly the 100-step budget", drawn)
	}
	if est < 0 || est > 1 {
		t.Fatalf("estimate %v out of range", est)
	}
}

func TestEstimateSatisfactionCtxRejectsBadSamples(t *testing.T) {
	q := cq.MustParseQuery("R(x | 'a')")
	d := db.MustParse("R(k | a)")
	if _, _, _, err := EstimateSatisfactionCtx(context.Background(), q, d, 0, 1); err == nil {
		t.Fatal("expected error for samples <= 0")
	}
}
