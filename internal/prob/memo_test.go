package prob

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/obs"
)

// TestCountMemoEquivalence mutates a database through random insert/delete
// steps and checks that memoized sharded counting and probability — with
// block-granular invalidation between steps — stay exactly equal to the
// from-scratch ground truth, while actually reusing tallies (a hit count
// of zero would mean the memo is inert and the equality vacuous).
func TestCountMemoEquivalence(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	r := rand.New(rand.NewSource(77))
	memo := NewCountMemo(0, nil)
	d := db.New()
	facts := map[string]db.Fact{}
	randomFact := func() db.Fact {
		rel := "R"
		if r.Intn(2) == 0 {
			rel = "S"
		}
		dom := func() string { return string(rune('a' + r.Intn(4))) }
		return db.Fact{Rel: rel, KeyLen: 1, Args: []string{dom(), dom()}}
	}

	for step := 0; step < 15; step++ {
		var touched []string
		if r.Intn(3) > 0 || len(facts) == 0 {
			f := randomFact()
			if err := d.Add(f); err != nil {
				t.Fatalf("step %d: Add: %v", step, err)
			}
			facts[f.ID()] = f
			touched = []string{f.BlockID()}
		} else {
			ids := make([]string, 0, len(facts))
			for id := range facts {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			f := facts[ids[r.Intn(len(ids))]]
			d.Remove(f)
			delete(facts, f.ID())
			touched = []string{f.BlockID()}
		}
		memo.Invalidate(touched)

		wantCount := CountSatisfyingRepairs(q, d)
		if got := CountSatisfyingShardedMemo(q, d, 0, memo); got.Cmp(wantCount) != 0 {
			t.Fatalf("step %d: memoized count = %s, want %s", step, got, wantCount)
		}
		// A second call on unchanged content must serve every shard from the
		// memo and still agree.
		if got := CountSatisfyingShardedMemo(q, d, 0, memo); got.Cmp(wantCount) != 0 {
			t.Fatalf("step %d: repeat memoized count = %s, want %s", step, got, wantCount)
		}
		wantProb := UniformProbability(q, d)
		if got := UniformProbabilityShardedMemo(q, d, 0, memo); got.Cmp(wantProb) != 0 {
			t.Fatalf("step %d: memoized probability = %s, want %s", step, got, wantProb)
		}
	}
	if st := memo.Stats(); st.Hits == 0 {
		t.Fatalf("no memo hits across the whole schedule (stats %+v)", st)
	}
}

// TestCountMemoNilAndMetrics: a nil memo is a full recount; metrics count
// hits, misses, and evictions.
func TestCountMemoNilAndMetrics(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse(`R(a | b) R(a | b2) S(b | c) R(d | e) S(e | f)`)
	want := CountSatisfyingRepairs(q, d)
	if got := CountSatisfyingShardedMemo(q, d, 0, nil); got.Cmp(want) != 0 {
		t.Fatalf("nil-memo count = %s, want %s", got, want)
	}

	reg := obs.NewRegistry()
	memo := NewCountMemo(2, obs.NewCacheMetrics(reg, "count_memo"))
	if got := CountSatisfyingShardedMemo(q, d, 0, memo); got.Cmp(want) != 0 {
		t.Fatalf("cold memoized count = %s, want %s", got, want)
	}
	if got := CountSatisfyingShardedMemo(q, d, 0, memo); got.Cmp(want) != 0 {
		t.Fatalf("warm memoized count = %s, want %s", got, want)
	}
	st := memo.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v, want both hits and misses", st)
	}
	if memo.Len() > 2 {
		t.Fatalf("Len = %d exceeds capacity 2", memo.Len())
	}
}

// TestCountMemoInvalidateScope mirrors the solver memo's granularity lock
// on the counting side: invalidating one block drops only the tallies
// whose shards cover it.
func TestCountMemoInvalidateScope(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	d := db.MustParse(`R(a | b) S(b | c) R(d | e) S(e | f)`)
	memo := NewCountMemo(0, nil)
	want := CountSatisfyingRepairs(q, d)
	if got := CountSatisfyingShardedMemo(q, d, 0, memo); got.Cmp(want) != 0 {
		t.Fatalf("count = %s, want %s", got, want)
	}
	before := memo.Len()
	if before < 2 {
		t.Fatalf("memo holds %d entries, want one per shard (>= 2)", before)
	}
	bid := db.Fact{Rel: "R", KeyLen: 1, Args: []string{"a", "b"}}.BlockID()
	if removed := memo.Invalidate([]string{bid}); removed != 1 {
		t.Fatalf("Invalidate removed %d entries, want 1", removed)
	}
	if memo.Len() != before-1 {
		t.Fatalf("Len after invalidate = %d, want %d", memo.Len(), before-1)
	}
	if got := fmt.Sprint(CountSatisfyingShardedMemo(q, d, 0, memo)); got != want.String() {
		t.Fatalf("count after partial invalidation = %s, want %s", got, want)
	}
}
