package prob_test

import (
	"testing"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
)

// TestTheorem6SafeImpliesFO: safe queries have acyclic attack graphs
// (Theorem 6 + Theorem 1), checked on the catalog and random queries.
func TestTheorem6SafeImpliesFO(t *testing.T) {
	check := func(q cq.Query) {
		t.Helper()
		if !prob.IsSafe(q) || !jointree.IsAcyclic(q) || q.HasSelfJoin() {
			return
		}
		g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !g.IsAcyclic() {
			t.Errorf("safe query %s has a cyclic attack graph, contradicting Theorem 6", q)
		}
	}
	check(cq.MustParseQuery("R(x | y)"))
	check(cq.MustParseQuery("R(x | y), S(x | z)"))
	check(cq.ConferenceQuery())
	for seed := int64(0); seed < 300; seed++ {
		check(gen.RandomAcyclicQuery(seed, 4))
	}
}

// TestCorollary2Frontier: for acyclic queries with a cyclic attack graph
// (CERTAINTY not FO), the query must be unsafe (PROBABILITY ♯P-hard) —
// the contrapositive of Theorem 6 on the paper's families.
func TestCorollary2Frontier(t *testing.T) {
	for _, q := range []cq.Query{cq.Q1(), cq.Q0(), cq.Ck(2), cq.ACk(2), cq.ACk(3), cq.ACk(4), cq.TerminalCyclesQuery()} {
		g, err := core.BuildAttackGraph(q, jointree.TieBreakLex)
		if err != nil {
			t.Fatal(err)
		}
		if g.IsAcyclic() {
			t.Fatalf("%s expected cyclic attack graph", q)
		}
		if prob.IsSafe(q) {
			t.Errorf("%s has a cyclic attack graph yet is safe, contradicting Corollary 2", q)
		}
	}
}
