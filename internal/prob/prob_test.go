package prob

import (
	"math/big"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/engine"
	"github.com/cqa-go/certainty/internal/gen"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestProbDBAdd(t *testing.T) {
	p := New()
	f1 := db.NewFact("R", 1, "a", "b")
	f2 := db.NewFact("R", 1, "a", "c")
	if err := p.Add(f1, rat(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(f2, rat(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(db.NewFact("R", 1, "a", "d"), rat(1, 10)); err == nil {
		t.Error("block exceeding mass 1 must be rejected")
	}
	if err := p.Add(db.NewFact("S", 1, "x"), rat(0, 1)); err == nil {
		t.Error("zero probability must be rejected")
	}
	if err := p.Add(db.NewFact("S", 1, "x"), rat(3, 2)); err == nil {
		t.Error("probability > 1 must be rejected")
	}
	if err := p.Add(f1, rat(1, 4)); err == nil {
		t.Error("duplicate fact must be rejected")
	}
	if got := p.Prob(f1); got.Cmp(rat(1, 2)) != 0 {
		t.Errorf("Prob = %v", got)
	}
	if got := p.Prob(db.NewFact("Z", 1, "q")); got.Sign() != 0 {
		t.Errorf("absent fact must have probability 0, got %v", got)
	}
	if got := p.BlockTotal(f1); got.Cmp(rat(1, 1)) != 0 {
		t.Errorf("BlockTotal = %v", got)
	}
}

func TestUniformAndCertainSubset(t *testing.T) {
	d := gen.ConferenceDB()
	p := Uniform(d)
	if got := p.Prob(db.NewFact("C", 2, "PODS", "2016", "Rome")); got.Cmp(rat(1, 2)) != 0 {
		t.Errorf("uniform prob = %v", got)
	}
	if got := p.Prob(db.NewFact("C", 2, "KDD", "2017", "Rome")); got.Cmp(rat(1, 1)) != 0 {
		t.Errorf("singleton block prob = %v", got)
	}
	// Every block of a uniform BID database sums to 1, so db′ = db.
	if !p.CertainSubset().Equal(d) {
		t.Error("uniform CertainSubset must equal the database")
	}
	// Drop a fact's mass below 1: its block leaves db′.
	p2 := New()
	p2.Add(db.NewFact("R", 1, "a", "b"), rat(1, 2))
	p2.Add(db.NewFact("S", 1, "c", "d"), rat(1, 1))
	cs := p2.CertainSubset()
	if cs.Len() != 1 || !cs.Has(db.NewFact("S", 1, "c", "d")) {
		t.Errorf("CertainSubset = %v", cs)
	}
}

func TestIsSafeCatalog(t *testing.T) {
	cases := []struct {
		q    cq.Query
		safe bool
	}{
		{cq.MustParseQuery("R(x | y)"), true},
		{cq.MustParseQuery("R(x | y), S(x | z)"), true},  // common key var x
		{cq.MustParseQuery("R(x | y), S(u | w)"), true},  // independent
		{cq.MustParseQuery("R(x | y), S(y | z)"), false}, // join on non-key
		{cq.Q0(), false},
		{cq.Ck(2), false},
		{cq.ACk(3), false},
		{cq.Q1(), false},
		{cq.ConferenceQuery(), true}, // C(x,y|'Rome'), R(x|'A'): common key var x
		{cq.MustParseQuery("R('a', 'b')"), true},
		{cq.Query{}, true},
		{cq.TerminalCyclesQuery(), false},
	}
	for _, c := range cases {
		if got := IsSafe(c.q); got != c.safe {
			t.Errorf("IsSafe(%s) = %v, want %v", c.q, got, c.safe)
		}
	}
	sj := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", 1, cq.Var("y"), cq.Var("x")),
	}}
	if IsSafe(sj) {
		t.Error("self-joins are out of scope for IsSafe")
	}
}

func TestProbabilitySingleAtom(t *testing.T) {
	// Pr(∃x∃y R(x,y)) on two independent blocks of mass 1/2 each:
	// 1 - (1/2)(1/2) = 3/4.
	p := New()
	p.Add(db.NewFact("R", 1, "a", "b"), rat(1, 2))
	p.Add(db.NewFact("R", 1, "c", "d"), rat(1, 2))
	q := cq.MustParseQuery("R(x | y)")
	got, err := Probability(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(rat(3, 4)) != 0 {
		t.Errorf("Pr = %v, want 3/4", got)
	}
	if bw := ProbabilityByWorlds(q, p); bw.Cmp(got) != 0 {
		t.Errorf("world enumeration gives %v", bw)
	}
}

func TestProbabilityConference(t *testing.T) {
	// Uniform over the Fig. 1 database: the query holds in 3 of 4 repairs.
	d := gen.ConferenceDB()
	q := cq.ConferenceQuery()
	p := Uniform(d)
	want := rat(3, 4)
	got, err := Probability(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Errorf("Pr = %v, want %v", got, want)
	}
	if bw := ProbabilityByWorlds(q, p); bw.Cmp(want) != 0 {
		t.Errorf("world enumeration = %v", bw)
	}
}

func TestProbabilityUnsafeRejected(t *testing.T) {
	p := Uniform(gen.Q0DB(2, 2, 2, 1))
	if _, err := Probability(cq.Q0(), p); err == nil {
		t.Error("q0 is unsafe; safe-plan evaluation must fail")
	}
}

// TestProbabilitySafeAgainstWorlds cross-checks the FP evaluator against
// exact world enumeration on random instances of safe queries.
func TestProbabilitySafeAgainstWorlds(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(x | z)"),
		cq.MustParseQuery("R(x | y), S(u | w)"),
		cq.ConferenceQuery(),
		cq.MustParseQuery("R('a', 'b')"),
	}
	for _, q := range queries {
		if !IsSafe(q) {
			t.Fatalf("%s should be safe", q)
		}
		for seed := int64(0); seed < 25; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, seed)
			p := Uniform(d)
			fast, err := Probability(q, p)
			if err != nil {
				t.Fatalf("%s seed %d: %v", q, seed, err)
			}
			slow := ProbabilityByWorlds(q, p)
			if fast.Cmp(slow) != 0 {
				t.Errorf("%s seed %d: safe plan %v, worlds %v on\n%s", q, seed, fast, slow, d)
			}
		}
	}
}

// TestProbabilityNonUniform exercises blocks with mass < 1.
func TestProbabilityNonUniform(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(x | z)")
	p := New()
	p.Add(db.NewFact("R", 1, "a", "b"), rat(1, 3))
	p.Add(db.NewFact("R", 1, "a", "c"), rat(1, 3))
	p.Add(db.NewFact("S", 1, "a", "d"), rat(1, 2))
	p.Add(db.NewFact("R", 1, "e", "f"), rat(1, 4))
	p.Add(db.NewFact("S", 1, "e", "g"), rat(2, 3))
	fast, err := Probability(q, p)
	if err != nil {
		t.Fatal(err)
	}
	slow := ProbabilityByWorlds(q, p)
	if fast.Cmp(slow) != 0 {
		t.Errorf("safe plan %v, worlds %v", fast, slow)
	}
	// Pr = 1 - (1 - (2/3)(1/2)) (1 - (1/4)(2/3)) = 1 - (2/3)(5/6) = 4/9.
	if fast.Cmp(rat(4, 9)) != 0 {
		t.Errorf("Pr = %v, want 4/9", fast)
	}
}

func TestCounting(t *testing.T) {
	d := gen.ConferenceDB()
	q := cq.ConferenceQuery()
	brute := CountSatisfyingRepairs(q, d)
	if brute.Cmp(big.NewInt(3)) != 0 {
		t.Errorf("♯CERTAINTY = %v, want 3 (Fig. 1)", brute)
	}
	viaU, err := CountViaUniform(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if viaU.Cmp(brute) != 0 {
		t.Errorf("uniform counting %v, brute %v", viaU, brute)
	}
	// Unsafe query: uniform counting fails, world-based ratio still exact.
	q0 := cq.Q0()
	d0 := gen.Q0DB(2, 2, 2, 3)
	if _, err := CountViaUniform(q0, d0); err == nil {
		t.Error("unsafe query must be rejected by CountViaUniform")
	}
	ratio := UniformProbability(q0, d0)
	count := CountSatisfyingRepairs(q0, d0)
	total := d0.NumRepairs()
	want := new(big.Rat).SetFrac(count, total)
	if ratio.Cmp(want) != 0 {
		t.Errorf("uniform Pr = %v, want ♯sat/♯repairs = %v", ratio, want)
	}
}

// TestProposition1 validates the bridge: Pr(q) = 1 on p ⟺ db′ is certain.
func TestProposition1(t *testing.T) {
	q := cq.ConferenceQuery()
	for seed := int64(0); seed < 20; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, seed)
		p := Uniform(d)
		lhs := bruteCertain(q, p.CertainSubset())
		rhs := CertainViaProbability(q, p)
		if lhs != rhs {
			t.Errorf("seed %d: certainty(db′)=%v, Pr(q)=1 is %v", seed, lhs, rhs)
		}
	}
	// A block with mass < 1 must be excluded from db′ even when it could
	// satisfy q.
	p := New()
	p.Add(db.NewFact("C", 2, "PODS", "2016", "Rome"), rat(1, 2))
	p.Add(db.NewFact("R", 1, "PODS", "A"), rat(1, 1))
	if CertainViaProbability(q, p) {
		t.Error("Pr < 1 because the C block can be absent")
	}
	if bruteCertain(q, p.CertainSubset()) {
		t.Error("db′ lacks the C block, so not certain")
	}
}

// bruteCertain is a local brute-force certainty oracle (the solver package
// depends transitively on prob, so tests here cannot import it).
func bruteCertain(q cq.Query, d *db.DB) bool {
	certain := true
	d.EachRepair(func(r []db.Fact) bool {
		if !engine.EvalRepair(q, r) {
			certain = false
			return false
		}
		return true
	})
	return certain
}

// TestRandomBIDSafePlanAgainstWorlds: safe-plan evaluation matches world
// enumeration on random non-uniform BID databases.
func TestRandomBIDSafePlanAgainstWorlds(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(x | z)"),
		cq.ConferenceQuery(),
	}
	for _, q := range queries {
		for seed := int64(0); seed < 25; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, seed)
			p := RandomBID(d, seed*31)
			fast, err := Probability(q, p)
			if err != nil {
				t.Fatalf("%s seed %d: %v", q, seed, err)
			}
			slow := ProbabilityByWorlds(q, p)
			if fast.Cmp(slow) != 0 {
				t.Errorf("%s seed %d: safe plan %v, worlds %v\n%s", q, seed, fast, slow, p)
			}
			// Block masses are in (0, 1].
			for _, blk := range p.DB().Blocks() {
				total := p.BlockTotal(blk[0])
				if total.Sign() <= 0 || total.Cmp(big.NewRat(1, 1)) > 0 {
					t.Fatalf("block mass %v out of range", total)
				}
			}
		}
	}
}

// TestRandomBIDProposition1 validates Proposition 1 on non-uniform
// distributions: Pr(q) = 1 ⟺ db′ certain.
func TestRandomBIDProposition1(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(x | z)")
	for seed := int64(0); seed < 30; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 1, Domain: 2}, seed)
		p := RandomBID(d, seed*17)
		lhs := bruteCertain(q, p.CertainSubset())
		rhs := ProbabilityByWorlds(q, p).Cmp(big.NewRat(1, 1)) == 0
		if lhs != rhs {
			t.Errorf("seed %d: certain(db′)=%v Pr=1 is %v\n%s", seed, lhs, rhs, p)
		}
	}
}

// TestCountSatisfyingDecomposed agrees with plain enumeration and handles
// irrelevant relations and empty components.
func TestCountSatisfyingDecomposed(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(u | w)") // two components
	for seed := int64(0); seed < 25; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 2, Domain: 2}, seed)
		// Add an irrelevant uncertain relation.
		d.Add(db.NewFact("T", 1, "k", "1"))
		d.Add(db.NewFact("T", 1, "k", "2"))
		want := CountSatisfyingRepairs(q, d)
		got := CountSatisfyingDecomposed(q, d)
		if got.Cmp(want) != 0 {
			t.Errorf("seed %d: decomposed=%v brute=%v", seed, got, want)
		}
	}
	// A query that never holds zeroes the count.
	empty := db.MustParse("T(k | 1), T(k | 2)")
	if got := CountSatisfyingDecomposed(q, empty); got.Sign() != 0 {
		t.Errorf("no satisfying repairs expected, got %v", got)
	}
	// The empty query holds in every repair.
	if got := CountSatisfyingDecomposed(cq.Query{}, empty); got.Cmp(empty.NumRepairs()) != 0 {
		t.Errorf("empty query: %v vs %v", got, empty.NumRepairs())
	}
}
