// Package prob implements Section 7 of the paper: block-independent-
// disjoint (BID) probabilistic databases with exact rational probabilities,
// the IsSafe algorithm of Dalvi–Ré–Suciu (as reproduced in the paper), the
// FP evaluation of PROBABILITY(q) for safe queries, possible-world
// enumeration as ground truth, the Proposition 1 bridge to CERTAINTY(q),
// and repair counting (the ♯CERTAINTY(q) problem).
package prob

import (
	"fmt"
	"math/big"
	"math/rand"

	"github.com/cqa-go/certainty/internal/db"
)

// ProbDB is a BID probabilistic database: an uncertain database plus a
// probability per fact, with each block summing to at most 1. Facts of a
// block are disjoint events; facts of distinct blocks are independent. The
// efficient encoding of Theorem 2.4 in [Dalvi–Ré–Suciu] is used: Pr is
// specified per fact and determines the distribution over possible worlds.
type ProbDB struct {
	d     *db.DB
	probs map[string]*big.Rat // Fact.ID() → probability
}

// New returns an empty probabilistic database.
func New() *ProbDB {
	return &ProbDB{d: db.New(), probs: make(map[string]*big.Rat)}
}

// Add inserts a fact with the given probability. It rejects probabilities
// outside (0, 1] and blocks whose total would exceed 1.
func (p *ProbDB) Add(f db.Fact, pr *big.Rat) error {
	if pr.Sign() <= 0 || pr.Cmp(big.NewRat(1, 1)) > 0 {
		return fmt.Errorf("prob: probability %v of %s outside (0, 1]", pr, f)
	}
	if p.d.Has(f) {
		return fmt.Errorf("prob: duplicate fact %s", f)
	}
	total := new(big.Rat).Set(pr)
	for _, g := range p.d.Block(f) {
		total.Add(total, p.probs[g.ID()])
	}
	if total.Cmp(big.NewRat(1, 1)) > 0 {
		return fmt.Errorf("prob: block of %s exceeds probability 1 (total %v)", f, total)
	}
	if err := p.d.Add(f); err != nil {
		return err
	}
	p.probs[f.ID()] = new(big.Rat).Set(pr)
	return nil
}

// Uniform turns an uncertain database into a BID probabilistic database by
// assuming all repairs equally likely: every fact of a block of size m gets
// probability 1/m. Non-maximal worlds then have probability zero, so
// Pr(q) = (number of repairs satisfying q) / (number of repairs).
func Uniform(d *db.DB) *ProbDB {
	p := New()
	for _, blk := range d.Blocks() {
		pr := big.NewRat(1, int64(len(blk)))
		for _, f := range blk {
			if err := p.Add(f, pr); err != nil {
				panic(err) // cannot happen: blocks sum to exactly 1
			}
		}
	}
	return p
}

// DB returns the underlying uncertain database. It must not be modified.
func (p *ProbDB) DB() *db.DB { return p.d }

// Prob returns the probability of a fact (0 if absent).
func (p *ProbDB) Prob(f db.Fact) *big.Rat {
	if pr, ok := p.probs[f.ID()]; ok {
		return new(big.Rat).Set(pr)
	}
	return new(big.Rat)
}

// BlockTotal returns the total probability mass of the block of f.
func (p *ProbDB) BlockTotal(f db.Fact) *big.Rat {
	total := new(big.Rat)
	for _, g := range p.d.Block(f) {
		total.Add(total, p.probs[g.ID()])
	}
	return total
}

// CertainSubset returns db′ of Proposition 1: the union of the blocks whose
// probabilities sum to exactly 1 (the blocks guaranteed to contribute a
// fact to every positive-probability world).
func (p *ProbDB) CertainSubset() *db.DB {
	one := big.NewRat(1, 1)
	out := db.New()
	for _, blk := range p.d.Blocks() {
		total := new(big.Rat)
		for _, f := range blk {
			total.Add(total, p.probs[f.ID()])
		}
		if total.Cmp(one) == 0 {
			for _, f := range blk {
				if err := out.Add(f); err != nil {
					panic(err)
				}
			}
		}
	}
	return out
}

// String renders facts with their probabilities, one per line.
func (p *ProbDB) String() string {
	s := ""
	for _, blk := range p.d.Blocks() {
		for _, f := range blk {
			s += fmt.Sprintf("%s : %v\n", f, p.probs[f.ID()])
		}
	}
	return s
}

// RandomBID assigns random rational probabilities to the facts of an
// uncertain database: each block's masses are positive and sum to at most
// 1 (to exactly 1 for about half the blocks). Deterministic per seed; used
// to exercise non-uniform distributions in tests and benchmarks.
func RandomBID(d *db.DB, seed int64) *ProbDB {
	r := rand.New(rand.NewSource(seed))
	p := New()
	for _, blk := range d.Blocks() {
		den := int64(4 * len(blk))
		budget := den
		if r.Intn(2) == 0 {
			budget = den - int64(r.Intn(len(blk))+1)
		}
		weights := make([]int64, len(blk))
		for i := range weights {
			weights[i] = 1
			budget--
		}
		for budget > 0 {
			weights[r.Intn(len(weights))]++
			budget--
		}
		for i, f := range blk {
			if err := p.Add(f, big.NewRat(weights[i], den)); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// MostProbableRepair returns the repair maximizing probability under the
// BID distribution restricted to repairs (each block independently picks
// its most probable fact), together with that probability. Ties break
// toward insertion order.
func (p *ProbDB) MostProbableRepair() (*db.DB, *big.Rat) {
	out := db.New()
	pr := big.NewRat(1, 1)
	for _, blk := range p.d.Blocks() {
		best := blk[0]
		bestPr := p.probs[best.ID()]
		for _, f := range blk[1:] {
			if p.probs[f.ID()].Cmp(bestPr) > 0 {
				best, bestPr = f, p.probs[f.ID()]
			}
		}
		if err := out.Add(best); err != nil {
			panic(err)
		}
		pr.Mul(pr, bestPr)
	}
	// Normalize by the total mass of full repairs so the result is a
	// probability within the repair-conditioned distribution.
	total := new(big.Rat).SetInt64(1)
	for _, blk := range p.d.Blocks() {
		blockMass := new(big.Rat)
		for _, f := range blk {
			blockMass.Add(blockMass, p.probs[f.ID()])
		}
		total.Mul(total, blockMass)
	}
	if total.Sign() > 0 {
		pr.Quo(pr, total)
	}
	return out, pr
}
