package prob

import (
	"math/rand"
	"runtime"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

func shardedCases(t *testing.T) []struct {
	name string
	q    cq.Query
	d    *db.DB
} {
	t.Helper()
	joinQ := cq.MustParseQuery("R(x | y), S(y | z)")
	twoCompQ := cq.MustParseQuery("R(x | y), S(y | z), U(u | v)")
	selfQ := cq.MustParseQuery("R(x | y), R(y | z)")
	return []struct {
		name string
		q    cq.Query
		d    *db.DB
	}{
		{"join-chains", joinQ, db.MustParse(`
			R(a | v) R(a | v9) S(v | b)
			R(c | w) S(w | d) S(w | d2)
			S(lone | e)
			T(k | t1) T(k | t2)
		`)},
		{"two-components", twoCompQ, db.MustParse(`
			R(a | v) S(v | b)
			R(a2 | v2) S(v2 | b2)
			U(k | w) U(k | w2)
		`)},
		{"empty-relation", twoCompQ, db.MustParse(`R(a | v) S(v | b)`)},
		{"self-join", selfQ, db.MustParse(`R(a | b) R(b | c) R(d | e)`)},
		{"random", joinQ, gen.RandomDB(joinQ, gen.Config{Embeddings: 3, Noise: 3, Domain: 3}, 17)},
	}
}

// TestCountSatisfyingShardedMatches: the ∏ᵢNᵢ − ∏ᵢ(Nᵢ−sᵢ) convolution over
// the shard decomposition reproduces plain repair enumeration exactly, at
// every shard cap.
func TestCountSatisfyingShardedMatches(t *testing.T) {
	for _, tc := range shardedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want := CountSatisfyingRepairs(tc.q, tc.d)
			for _, n := range []int{0, 1, 2, runtime.NumCPU(), 1 << 10} {
				if got := CountSatisfyingSharded(tc.q, tc.d, n); got.Cmp(want) != 0 {
					t.Errorf("maxShards=%d: count %s, want %s", n, got, want)
				}
			}
		})
	}
}

// TestUniformProbabilityShardedMatches: 1 − ∏ᵢ(1−pᵢ) per component and the
// product across components reproduce exact world enumeration.
func TestUniformProbabilityShardedMatches(t *testing.T) {
	for _, tc := range shardedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want := UniformProbability(tc.q, tc.d)
			for _, n := range []int{0, 1, 2, runtime.NumCPU(), 1 << 10} {
				if got := UniformProbabilitySharded(tc.q, tc.d, n); got.Cmp(want) != 0 {
					t.Errorf("maxShards=%d: Pr %s, want %s", n, got.RatString(), want.RatString())
				}
			}
		})
	}
}

// TestShardedCountShuffleProperty is the counting half of the satellite
// property test: component-preserving fact shuffles and arbitrary shard
// counts never change the repair count or the uniform probability.
func TestShardedCountShuffleProperty(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	for seed := int64(0); seed < 3; seed++ {
		d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 4, Domain: 3}, 300+seed)
		wantCount := CountSatisfyingRepairs(q, d)
		wantPr := UniformProbability(q, d)
		r := rand.New(rand.NewSource(seed*31 + 7))
		for trial := 0; trial < 3; trial++ {
			facts := append([]db.Fact(nil), d.Facts()...)
			r.Shuffle(len(facts), func(i, j int) { facts[i], facts[j] = facts[j], facts[i] })
			perm := db.MustFromFacts(facts...)
			for _, n := range []int{1, 2, runtime.NumCPU(), 1 << 10} {
				if got := CountSatisfyingSharded(q, perm, n); got.Cmp(wantCount) != 0 {
					t.Errorf("seed %d trial %d shards %d: count %s, want %s", seed, trial, n, got, wantCount)
				}
				if got := UniformProbabilitySharded(q, perm, n); got.Cmp(wantPr) != 0 {
					t.Errorf("seed %d trial %d shards %d: Pr %s, want %s", seed, trial, n, got.RatString(), wantPr.RatString())
				}
			}
		}
	}
}
