package prob

import (
	"math"
	"math/rand"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

func TestSampleWorldRespectsBlocks(t *testing.T) {
	p := Uniform(gen.ConferenceDB())
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		w := p.SampleWorld(r)
		if !w.IsConsistent() {
			t.Fatal("sampled world must be consistent")
		}
		// Uniform blocks have mass 1, so every block is represented.
		if w.NumBlocks() != p.DB().NumBlocks() {
			t.Fatal("uniform sampling must produce repairs")
		}
	}
	// A block with mass 1/2 must sometimes be absent.
	p2 := New()
	p2.Add(db.NewFact("R", 1, "a", "b"), rat(1, 2))
	absent := 0
	for i := 0; i < 200; i++ {
		if p2.SampleWorld(r).Len() == 0 {
			absent++
		}
	}
	if absent < 50 || absent > 150 {
		t.Errorf("absence count %d/200 far from expectation 100", absent)
	}
}

func TestSampleRepairUniform(t *testing.T) {
	d := gen.ConferenceDB()
	r := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	n := 4000
	for i := 0; i < n; i++ {
		rep := SampleRepair(d, r)
		if !rep.IsConsistent() || rep.NumBlocks() != d.NumBlocks() {
			t.Fatal("sampled repair malformed")
		}
		counts[rep.String()]++
	}
	if len(counts) != 4 {
		t.Fatalf("expected all 4 repairs sampled, got %d", len(counts))
	}
	for k, c := range counts {
		if c < n/8 || c > n/2 {
			t.Errorf("repair frequency %d/%d looks non-uniform for\n%s", c, n, k)
		}
	}
}

func TestEstimateProbabilityConverges(t *testing.T) {
	d := gen.ConferenceDB()
	q := cq.ConferenceQuery()
	p := Uniform(d)
	want := exactUniform(q, d) // 0.75
	got, err := p.EstimateProbability(q, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.05 {
		t.Errorf("estimate %v too far from exact %v", got, want)
	}
	if _, err := p.EstimateProbability(q, 0, 1); err == nil {
		t.Error("nonpositive sample count must be rejected")
	}
}

func TestEstimateCertain(t *testing.T) {
	d := gen.ConferenceDB()
	q := cq.ConferenceQuery()
	certain, witness := EstimateCertain(q, d, 200, 3)
	if certain {
		t.Error("a falsifying repair exists and should be found in 200 samples (P=3/4 per sample)")
	}
	if witness == nil || witness.NumBlocks() != d.NumBlocks() {
		t.Error("witness must be a full repair")
	}
	// A certain instance never yields a witness.
	d2 := db.MustParse("C(PODS, 2016 | Rome), R(PODS | A)")
	certain2, w2 := EstimateCertain(q, d2, 50, 3)
	if !certain2 || w2 != nil {
		t.Error("consistent satisfying instance must pass")
	}
}

func TestMostProbableRepair(t *testing.T) {
	p := New()
	p.Add(db.NewFact("R", 1, "a", "x"), rat(1, 4))
	p.Add(db.NewFact("R", 1, "a", "y"), rat(3, 4))
	p.Add(db.NewFact("S", 1, "b", "u"), rat(2, 3))
	p.Add(db.NewFact("S", 1, "b", "v"), rat(1, 3))
	rep, pr := p.MostProbableRepair()
	if !rep.Has(db.NewFact("R", 1, "a", "y")) || !rep.Has(db.NewFact("S", 1, "b", "u")) {
		t.Errorf("repair = \n%s", rep)
	}
	// (3/4)(2/3) / ((1)(1)) = 1/2.
	if pr.Cmp(rat(1, 2)) != 0 {
		t.Errorf("pr = %v, want 1/2", pr)
	}
	// Uniform: every repair equally likely; probability 1/#repairs.
	u := Uniform(gen.ConferenceDB())
	_, upr := u.MostProbableRepair()
	if upr.Cmp(rat(1, 4)) != 0 {
		t.Errorf("uniform most-probable = %v, want 1/4", upr)
	}
}
