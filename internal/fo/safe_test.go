package fo

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/gen"
	"github.com/cqa-go/certainty/internal/jointree"
	"github.com/cqa-go/certainty/internal/prob"
)

// safeCatalog lists safe queries, including one whose hypergraph is cyclic
// (no join tree, hence no attack graph) — Theorem 6 still applies.
func safeCatalog() []cq.Query {
	return []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(x | z)"),
		cq.MustParseQuery("R(x | y), S(u | w)"),
		cq.ConferenceQuery(),
		cq.MustParseQuery("R('a', 'b')"),
		cq.MustParseQuery("R(x | y, y)"),
		cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)"), // cyclic hypergraph
		cq.MustParseQuery("R(x, y | z), S(x | w)"),
	}
}

func TestSafeCatalogIsSafe(t *testing.T) {
	for _, q := range safeCatalog() {
		if !prob.IsSafe(q) {
			t.Errorf("%s should be safe", q)
		}
	}
	cyclic := cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	if jointree.IsAcyclic(cyclic) {
		t.Error("the triangle query should be hypergraph-cyclic")
	}
}

// TestRewriteSafeAgainstBruteForce: the Theorem 6 rewriting decides
// certainty exactly on random instances, including for the cyclic safe
// query that RewriteAcyclic cannot express.
func TestRewriteSafeAgainstBruteForce(t *testing.T) {
	for _, q := range safeCatalog() {
		phi, err := RewriteSafe(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if FreeVars(phi).Len() != 0 {
			t.Fatalf("%s: free variables in rewriting %s", q, phi)
		}
		for seed := int64(0); seed < 20; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 2, Domain: 2}, seed)
			want := bruteCertain(q, d)
			got, err := Eval(phi, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", q, seed, err)
			}
			if got != want {
				t.Errorf("%s seed %d: safe rewriting=%v brute=%v\nφ = %s\ndb:\n%s",
					q, seed, got, want, phi, d)
			}
		}
	}
}

// TestRewriteSafeAgreesWithAcyclic: on acyclic safe queries both
// constructions decide identically.
func TestRewriteSafeAgreesWithAcyclic(t *testing.T) {
	for _, q := range safeCatalog() {
		if !jointree.IsAcyclic(q) {
			continue
		}
		phiS, err := RewriteSafe(q)
		if err != nil {
			t.Fatal(err)
		}
		phiA, err := RewriteAcyclic(q)
		if err != nil {
			t.Fatalf("%s: safe queries have acyclic attack graphs (Theorem 6): %v", q, err)
		}
		for seed := int64(50); seed < 65; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 2, Noise: 3, Domain: 3}, seed)
			a, err := Eval(phiS, d)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Eval(phiA, d)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("%s seed %d: safe=%v acyclic=%v", q, seed, a, b)
			}
		}
	}
}

func TestRewriteSafeRejects(t *testing.T) {
	for _, s := range []string{
		"R(x | y), S(y | z)", // unsafe
	} {
		if _, err := RewriteSafe(cq.MustParseQuery(s)); err == nil {
			t.Errorf("%s must be rejected", s)
		}
	}
	if _, err := RewriteSafe(cq.Q0()); err == nil {
		t.Error("q0 must be rejected")
	}
	sj := cq.Query{Atoms: []cq.Atom{
		cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y")),
		cq.NewAtom("R", 1, cq.Var("y"), cq.Var("x")),
	}}
	if _, err := RewriteSafe(sj); err == nil {
		t.Error("self-join must be rejected")
	}
	collide := cq.NewQuery(cq.NewAtom("R", 1, cq.Var("x"), cq.Const(markerPrefix+"boom")))
	if _, err := RewriteSafe(collide); err == nil {
		t.Error("marker collision must be rejected")
	}
}

func TestRewriteSafeEmpty(t *testing.T) {
	phi, err := RewriteSafe(cq.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if phi != Truth(true) {
		t.Errorf("empty query rewriting = %s", phi)
	}
}

// TestSafeRewritingNoCapture is the regression for a variable-capture bug:
// the R1 (ground fact) sub-rewriting used fixed quantifier names that could
// shadow enclosing binders, so the block-singleton equality degenerated to
// u = u. This instance has an extra T-fact in the block of the required
// one, so the query must NOT be certain.
func TestSafeRewritingNoCapture(t *testing.T) {
	q := cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)")
	d := mustDB(t, `
		R(a | b, c)
		S(a | c, d)
		T(a | d, b)
		T(a | d, e)
	`)
	if bruteCertain(q, d) {
		t.Fatal("instance should not be certain (the repair picking T(a,d,e) falsifies q)")
	}
	phi, err := RewriteSafe(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(phi, d)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Errorf("capture regression: rewriting claims certain\nφ = %s", phi)
	}
}

// TestFreeVarNameCollision: free variables that collide with generated
// quantifier names are rejected rather than silently captured.
func TestFreeVarNameCollision(t *testing.T) {
	q := cq.NewQuery(cq.NewAtom("R", 1, cq.Var("w1"), cq.Var("y")))
	if _, err := RewriteAcyclicFree(q, []string{"w1"}); err == nil {
		t.Error("free variable w1 must be rejected")
	}
}
