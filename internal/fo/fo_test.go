package fo

import (
	"errors"
	"strings"
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

func TestConstructorsSimplify(t *testing.T) {
	if NewAnd() != Truth(true) {
		t.Error("empty conjunction is true")
	}
	if NewOr() != Truth(false) {
		t.Error("empty disjunction is false")
	}
	if NewAnd(Truth(true), Truth(false)) != Truth(false) {
		t.Error("false absorbs conjunction")
	}
	if NewOr(Truth(false), Truth(true)) != Truth(true) {
		t.Error("true absorbs disjunction")
	}
	a := Eq{L: cq.Var("x"), R: cq.Const("c")}
	if got := NewAnd(a); got.String() != a.String() {
		t.Error("singleton conjunction unwraps")
	}
	nested := NewAnd(a, NewAnd(a, a))
	if and, ok := nested.(And); !ok || len(and.Fs) != 3 {
		t.Errorf("conjunction flattening: %v", nested)
	}
	if NewExists(nil, a).String() != a.String() {
		t.Error("empty quantifier prefix drops")
	}
}

func TestFreeVarsAndRename(t *testing.T) {
	f := Exists{
		Vars: []string{"x"},
		F: NewAnd(
			Atom{A: cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y"))},
			Eq{L: cq.Var("z"), R: cq.Const("c")},
		),
	}
	if got := FreeVars(f); !got.Equal(cq.NewVarSet("y", "z")) {
		t.Errorf("FreeVars = %v", got)
	}
	r := Rename(f, map[string]cq.Term{"y": cq.Const("k"), "x": cq.Const("nope")})
	if got := FreeVars(r); !got.Equal(cq.NewVarSet("z")) {
		t.Errorf("rename should respect binders: %v, %s", got, r)
	}
}

func TestEvalBasics(t *testing.T) {
	d := db.MustParse("R(a | b), R(a | c), S(b | a)")
	cases := []struct {
		f    Formula
		want bool
	}{
		{Truth(true), true},
		{Truth(false), false},
		{Atom{A: cq.NewAtom("R", 1, cq.Const("a"), cq.Const("b"))}, true},
		{Atom{A: cq.NewAtom("R", 1, cq.Const("a"), cq.Const("z"))}, false},
		{Not{F: Truth(false)}, true},
		{Exists{Vars: []string{"x"}, F: Atom{A: cq.NewAtom("S", 1, cq.Var("x"), cq.Const("a"))}}, true},
		{Forall{Vars: []string{"x"}, F: Atom{A: cq.NewAtom("R", 1, cq.Const("a"), cq.Var("x"))}}, false},
		{Exists{Vars: []string{"x", "y"}, F: NewAnd(
			Atom{A: cq.NewAtom("R", 1, cq.Var("x"), cq.Var("y"))},
			Atom{A: cq.NewAtom("S", 1, cq.Var("y"), cq.Var("x"))},
		)}, true},
		{Implies{Hyp: Truth(true), Concl: Truth(false)}, false},
		{Eq{L: cq.Const("a"), R: cq.Const("a")}, true},
	}
	for _, c := range cases {
		got, err := Eval(c.f, d)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if got != c.want {
			t.Errorf("Eval(%s) = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := Eval(Eq{L: cq.Var("x"), R: cq.Const("a")}, d); err == nil {
		t.Error("free variable must be rejected")
	}
}

func TestEvalConstantOutsideDomain(t *testing.T) {
	// A constant mentioned only in the formula still participates in
	// quantification.
	d := db.MustParse("R(a | b)")
	f := Exists{Vars: []string{"x"}, F: Eq{L: cq.Var("x"), R: cq.Const("zzz")}}
	got, err := Eval(f, d)
	if err != nil || !got {
		t.Errorf("formula constants must be quantifiable: %v %v", got, err)
	}
}

// TestRewriteAcyclicAgainstSolver is the key equivalence: evaluating the
// rewriting equals running the certain-answer procedure.
func TestRewriteAcyclicAgainstSolver(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.ConferenceQuery(),
		cq.MustParseQuery("R(x | y, z), S(y, z | w)"),
		cq.MustParseQuery("R(x | x)"),    // repeated variable
		cq.MustParseQuery("R(x, x | y)"), // repeated key variable
		cq.MustParseQuery("R(x | 'c'), S(x | y)"),
	}
	for _, q := range queries {
		phi, err := RewriteAcyclic(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if FreeVars(phi).Len() != 0 {
			t.Fatalf("%s: rewriting has free variables: %s", q, phi)
		}
		for seed := int64(0); seed < 25; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 3, Domain: 3}, seed)
			want := bruteCertain(q, d)
			got, err := Eval(phi, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", q, seed, err)
			}
			if got != want {
				t.Errorf("%s seed %d: rewriting=%v brute=%v\nφ = %s\ndb:\n%s",
					q, seed, got, want, phi, d)
			}
		}
	}
}

func TestRewriteAcyclicRejectsCyclicAttackGraph(t *testing.T) {
	if _, err := RewriteAcyclic(cq.Q1()); err == nil {
		t.Error("q1 has no certain FO rewriting (Theorem 1)")
	}
	if _, err := RewriteAcyclic(cq.Ck(2)); err == nil {
		t.Error("C(2) has no certain FO rewriting")
	}
}

func TestRewriteFact(t *testing.T) {
	a := cq.NewAtom("R", 1, cq.Const("a"), cq.Const("b"))
	phi, err := RewriteFact(a)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		db   string
		want bool
	}{
		{"R(a | b)", true},
		{"R(a | b), R(a | c)", false}, // block not a singleton
		{"R(a | c)", false},
		{"", false},
		{"R(a | b), R(x | y)", true}, // other blocks are irrelevant
	}
	for _, c := range cases {
		d := db.MustParse(c.db)
		got, err := Eval(phi, d)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%q: %v, want %v", c.db, got, c.want)
		}
		q := cq.Query{Atoms: []cq.Atom{a}}
		if want := bruteCertain(q, d); got != want {
			t.Errorf("%q: disagrees with brute force", c.db)
		}
	}
	if _, err := RewriteFact(cq.NewAtom("R", 1, cq.Var("x"))); err == nil {
		t.Error("non-ground atom must be rejected")
	}
}

func TestSQLRendering(t *testing.T) {
	q := cq.MustParseQuery("R(x | y), S(y | z)")
	phi, err := RewriteAcyclic(q)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := SQL(phi)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EXISTS", "adom", `"R"`, `"S"`, "c1 ="} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
	if _, err := SQL(Eq{L: cq.Var("x"), R: cq.Const("a")}); err == nil {
		t.Error("free variables must be rejected")
	}
	// Constant escaping.
	s, err := SQL(NewAnd(Eq{L: cq.Const("it's"), R: cq.Const("it's")}))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "'it''s'") {
		t.Errorf("single quotes must be doubled: %s", s)
	}
}

// TestSQLEscaping locks the hardened rendering: quotes double in both
// literal and identifier position, backslashes pass through verbatim
// (standard-conforming strings), quoted variable aliases cannot break out
// of identifier position, and NUL anywhere is rejected like the snapshot
// parsers reject it.
func TestSQLEscaping(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
		want string
	}{
		{"const quote", NewAnd(Eq{L: cq.Const(`a'b`), R: cq.Const(`a'b`)}), `'a''b'`},
		{"const backslash", NewAnd(Eq{L: cq.Const(`a\b`), R: cq.Const(`a\b`)}), `'a\b'`},
		{"rel quote", Atom{A: cq.NewAtom(`R"x`, 1, cq.Const("a"))}, `"R""x"`},
		{"var quote", Exists{Vars: []string{`v"x`}, F: Eq{L: cq.Var(`v"x`), R: cq.Const("a")}}, `"a_v""x"`},
	}
	for _, c := range cases {
		s, err := SQL(c.f)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !strings.Contains(s, c.want) {
			t.Errorf("%s: SQL missing %q:\n%s", c.name, c.want, s)
		}
	}

	for _, f := range []Formula{
		NewAnd(Eq{L: cq.Const("a\x00b"), R: cq.Const("c")}),
		Atom{A: cq.NewAtom("R\x00", 1, cq.Const("a"))},
		Exists{Vars: []string{"x\x00"}, F: Truth(true)},
		Forall{Vars: []string{"y"}, F: Eq{L: cq.Var("y"), R: cq.Const("\x00")}},
	} {
		if _, err := SQL(f); err == nil || !strings.Contains(err.Error(), "NUL") {
			t.Errorf("SQL(%v) = %v, want NUL rejection", f, err)
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := Exists{Vars: []string{"x"}, F: Implies{
		Hyp:   Atom{A: cq.NewAtom("R", 1, cq.Var("x"))},
		Concl: Not{F: Truth(false)},
	}}
	s := f.String()
	for _, want := range []string{"∃x", "→", "¬⊥", "R(x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestSizeAndQuantifierRank(t *testing.T) {
	phi, err := RewriteAcyclic(cq.MustParseQuery("R(x | y), S(y | z)"))
	if err != nil {
		t.Fatal(err)
	}
	if Size(phi) < 10 {
		t.Errorf("Size = %d, suspiciously small", Size(phi))
	}
	// ∃w1 (... ∀w2 (... ∃w3 (... ∀w4 ...))) — rank 4.
	if got := QuantifierRank(phi); got != 4 {
		t.Errorf("QuantifierRank = %d, want 4", got)
	}
	if Size(Truth(true)) != 1 || QuantifierRank(Truth(true)) != 0 {
		t.Error("leaf metrics")
	}
	nested := Not{F: Implies{Hyp: Truth(true), Concl: Exists{Vars: []string{"x"}, F: Truth(false)}}}
	if Size(nested) != 5 || QuantifierRank(nested) != 1 {
		t.Errorf("nested metrics: size=%d rank=%d", Size(nested), QuantifierRank(nested))
	}
}

func TestRewriteSentinelErrors(t *testing.T) {
	if _, err := RewriteAcyclic(cq.Q1()); !errors.Is(err, ErrNotRewritable) {
		t.Errorf("want ErrNotRewritable, got %v", err)
	}
	if _, err := RewriteSafe(cq.Q0()); !errors.Is(err, ErrUnsafe) {
		t.Errorf("want ErrUnsafe, got %v", err)
	}
}
