package fo

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cqa-go/certainty/internal/core"
	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/jointree"
)

// markerPrefix makes collision with user constants implausible; correctness
// is additionally guarded by an explicit scan of the query's constants.
const markerPrefix = "⁂fv:" // ⁂fv:<n>

// RewriteAcyclicFree constructs a certain first-order rewriting of a query
// with free variables: a formula φ(x̄) such that for every database db and
// tuple ā, db ∈ CERTAINTY(q[x̄↦ā]) iff db ⊨ φ(ā). It exists iff the attack
// graph of q[x̄↦ā] is acyclic; since substituting constants never adds
// attacks (Lemma 5), it suffices that q with the free variables frozen to
// fresh constants has an acyclic attack graph.
//
// The construction freezes each free variable to a marker constant, runs
// the Boolean rewriting, and reopens the markers as free variables.
func RewriteAcyclicFree(q cq.Query, free []string) (Formula, error) {
	vars := q.Vars()
	markers := make(cq.Valuation, len(free))
	reopen := make(map[string]string, len(free))
	seen := make(map[string]bool, len(free))
	for i, x := range free {
		if !vars.Has(x) {
			return nil, fmt.Errorf("fo: free variable %s does not occur in %s", x, q)
		}
		if seen[x] {
			return nil, fmt.Errorf("fo: duplicate free variable %s", x)
		}
		seen[x] = true
		if isGeneratedName(x) {
			// The rewriting introduces quantified variables named w<n>;
			// reopening a marker to such a name under one of those binders
			// would capture it.
			return nil, fmt.Errorf("fo: free variable %s collides with generated quantifier names; rename it", x)
		}
		m := markerPrefix + strconv.Itoa(i)
		markers[x] = m
		reopen[m] = x
	}
	for c := range q.Constants() {
		if strings.HasPrefix(c, markerPrefix) {
			return nil, fmt.Errorf("fo: query constant %q collides with the marker namespace", c)
		}
	}
	phi, err := RewriteAcyclic(q.Substitute(markers))
	if err != nil {
		return nil, err
	}
	return reopenMarkers(phi, reopen), nil
}

// isGeneratedName reports whether a name matches the w<n> pattern used by
// RewriteAcyclic for quantified variables.
func isGeneratedName(x string) bool {
	if len(x) < 2 || x[0] != 'w' {
		return false
	}
	for i := 1; i < len(x); i++ {
		if x[i] < '0' || x[i] > '9' {
			return false
		}
	}
	return true
}

// reopenMarkers replaces marker constants with their free variables.
func reopenMarkers(f Formula, reopen map[string]string) Formula {
	term := func(t cq.Term) cq.Term {
		if t.IsConst {
			if x, ok := reopen[t.Value]; ok {
				return cq.Var(x)
			}
		}
		return t
	}
	switch g := f.(type) {
	case Truth:
		return g
	case Atom:
		args := make([]cq.Term, len(g.A.Args))
		for i, t := range g.A.Args {
			args[i] = term(t)
		}
		return Atom{A: cq.Atom{Rel: g.A.Rel, KeyLen: g.A.KeyLen, Args: args}}
	case Eq:
		return Eq{L: term(g.L), R: term(g.R)}
	case Not:
		return Not{F: reopenMarkers(g.F, reopen)}
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = reopenMarkers(sub, reopen)
		}
		return And{Fs: fs}
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = reopenMarkers(sub, reopen)
		}
		return Or{Fs: fs}
	case Implies:
		return Implies{Hyp: reopenMarkers(g.Hyp, reopen), Concl: reopenMarkers(g.Concl, reopen)}
	case Exists:
		return Exists{Vars: g.Vars, F: reopenMarkers(g.F, reopen)}
	case Forall:
		return Forall{Vars: g.Vars, F: reopenMarkers(g.F, reopen)}
	default:
		panic(fmt.Sprintf("fo: unknown formula %T", f))
	}
}

// EvalWith evaluates a formula whose free variables are bound by env;
// every free variable must be bound. Panics on malformed hand-built
// formulas are converted into errors.
func EvalWith(f Formula, d *db.DB, env cq.Valuation) (ok bool, err error) {
	defer containPanic(&err)
	for x := range FreeVars(f) {
		if _, ok := env[x]; !ok {
			return false, fmt.Errorf("fo: unbound free variable %s", x)
		}
	}
	domain := d.ActiveDomain()
	seen := make(map[string]bool, len(domain))
	for _, c := range domain {
		seen[c] = true
	}
	add := func(c string) {
		if !seen[c] {
			seen[c] = true
			domain = append(domain, c)
		}
	}
	collectConstants(f, add)
	for _, v := range env {
		add(v)
	}
	return eval(f, d, domain, env.Clone()), nil
}

// CertainAnswersByRewriting computes the certain answers of q over the
// free variables by evaluating the certain rewriting once per candidate
// (candidates being the active-domain tuples that are possible answers is
// the caller's concern; this evaluates over all of the provided
// candidates). It exists only for FO-classified queries.
func CertainAnswersByRewriting(q cq.Query, free []string, d *db.DB, candidates []cq.Valuation) ([]cq.Valuation, error) {
	phi, err := RewriteAcyclicFree(q, free)
	if err != nil {
		return nil, err
	}
	var out []cq.Valuation
	for _, cand := range candidates {
		ok, err := EvalWith(phi, d, cand)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, cand)
		}
	}
	return out, nil
}

// frozenClassifiable reports whether the frozen query has an acyclic attack
// graph (exported for the answers fast path).
func frozenClassifiable(q cq.Query, free []string) bool {
	markers := make(cq.Valuation, len(free))
	for i, x := range free {
		markers[x] = markerPrefix + strconv.Itoa(i)
	}
	g, err := core.BuildAttackGraph(q.Substitute(markers), jointree.TieBreakLex)
	return err == nil && g.IsAcyclic()
}

// CanRewriteFree reports whether RewriteAcyclicFree will succeed for q and
// the given free variables.
func CanRewriteFree(q cq.Query, free []string) bool {
	return frozenClassifiable(q, free)
}
