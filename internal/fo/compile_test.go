package fo

import (
	"testing"

	"github.com/cqa-go/certainty/internal/cq"
	"github.com/cqa-go/certainty/internal/db"
	"github.com/cqa-go/certainty/internal/gen"
)

// TestCompiledAgreesWithInterpreter: the compiled evaluator matches Eval on
// the rewritings of the FO catalog over random databases.
func TestCompiledAgreesWithInterpreter(t *testing.T) {
	queries := []cq.Query{
		cq.MustParseQuery("R(x | y)"),
		cq.MustParseQuery("R(x | y), S(y | z)"),
		cq.ConferenceQuery(),
		cq.MustParseQuery("R(x | y, z), S(y, z | w)"),
		cq.MustParseQuery("R(x, x | y)"),
	}
	for _, q := range queries {
		phi, err := RewriteAcyclic(q)
		if err != nil {
			t.Fatal(err)
		}
		compiled, err := Compile(phi)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 20; seed++ {
			d := gen.RandomDB(q, gen.Config{Embeddings: 3, Noise: 3, Domain: 3}, seed)
			want, err := Eval(phi, d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := compiled.Eval(d)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s seed %d: compiled=%v interpreted=%v", q, seed, got, want)
			}
		}
	}
	// The Theorem 6 rewriting of the cyclic safe query also compiles.
	phi, err := RewriteSafe(cq.MustParseQuery("R(w | x, y), S(w | y, z), T(w | z, x)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(phi); err != nil {
		t.Errorf("Compile(Theorem 6 rewriting): %v", err)
	}
}

func TestCompiledFreeVariables(t *testing.T) {
	q := cq.MustParseQuery("R(x | 'A')")
	phi, err := RewriteAcyclicFree(q, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(phi)
	if err != nil {
		t.Fatal(err)
	}
	d := gen.ConferenceDB()
	if _, err := compiled.Eval(d); err == nil {
		t.Error("Eval must reject free variables")
	}
	for conf, want := range map[string]bool{"PODS": true, "KDD": false} {
		got, err := compiled.EvalWith(d, cq.Valuation{"x": conf})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("x=%s: compiled=%v want=%v", conf, got, want)
		}
	}
	if _, err := compiled.EvalWith(d, cq.Valuation{}); err == nil {
		t.Error("missing binding must fail")
	}
	// Binding a value outside the active domain still works (it joins the
	// quantification domain like a constant).
	got, err := compiled.EvalWith(d, cq.Valuation{"x": "ICDT"})
	if err != nil || got {
		t.Errorf("unknown conference: %v %v", got, err)
	}
}

func TestCompiledOrAndEq(t *testing.T) {
	f := NewOr(
		Eq{L: cq.Const("a"), R: cq.Const("b")},
		Not{F: Truth(false)},
	)
	compiled, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := compiled.Eval(db.New())
	if err != nil || !got {
		t.Errorf("Or/Eq/Not compile: %v %v", got, err)
	}
}
